// Equivalence gate for the zero-allocation logging work: the logcat text a
// campaign produces is part of the reproduction's observable output (the
// analyzer, the farm merge, and the report exports all read it), so the
// lazy-rendering hot path must emit byte-identical logs to the original
// eager fmt.Sprintf formatting. The golden file under testdata/ was
// generated from the eager implementation; regenerate with
//
//	QGJ_UPDATE_GOLDEN=1 go test -run TestLogcatDumpMatchesGolden .
//
// only when the *intended* log text changes (new log lines, new fields) —
// never to paper over a formatting regression.
package qgj_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	qgj "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/intent"
	"repro/internal/logcat"
	"repro/internal/manifest"
	"repro/internal/wearos"
)

const goldenDumpPath = "testdata/golden_dump.txt"

// buildGoldenScenario drives a deterministic reduced campaign through every
// logging surface the optimization touches: the dispatch hot path (campaign
// A), the extras path (campaign D), the eager fallback (an intent carrying
// categories, MIME type, and flags), broadcasts, and service binding.
func buildGoldenScenario(t testing.TB) *wearos.OS {
	t.Helper()
	dev := wearos.New(wearos.DefaultWatchConfig())
	fleet := qgj.BuildWearFleet(1)
	if err := fleet.InstallInto(dev); err != nil {
		t.Fatal(err)
	}
	inj := &core.Injector{Dev: dev, Cfg: experiments.QuickGen(8)}
	inj.FuzzApp(core.CampaignA, fleet.Packages[0])
	inj.FuzzApp(core.CampaignD, fleet.Packages[0])

	// Eager-fallback dispatch: categories, MIME type, flags, and extras all
	// set, so the intent cannot take the structured fast path.
	full := &intent.Intent{
		Action:    "android.intent.action.VIEW",
		Component: fleet.Packages[0].Components[0].Name,
		Type:      "text/plain",
		Flags:     intent.FlagActivityNewTask,
		SenderUID: core.QGJUID,
	}
	full.AddCategory(intent.CategoryDefault)
	full.Data, _ = intent.ParseURI("https://foo.com/")
	full.PutExtra("k", intent.StringValue("v"))
	dev.StartActivity(full)

	// Service binding and broadcast surfaces.
	for _, pkg := range fleet.Packages {
		for _, comp := range pkg.Components {
			if comp.Type == manifest.Service && comp.Exported {
				conn, thr := dev.BindService(&intent.Intent{
					Component: comp.Name, SenderUID: core.QGJUID,
				})
				if thr == nil {
					conn.Close()
				}
				dev.SendBroadcast(&intent.Intent{
					Action:    "android.intent.action.BATTERY_LOW",
					Component: comp.Name,
					SenderUID: core.QGJUID,
				})
				return dev
			}
		}
	}
	return dev
}

// TestLogcatDumpMatchesGolden pins the full logcat text of the scenario,
// byte for byte, against the dump the eager formatting produced.
func TestLogcatDumpMatchesGolden(t *testing.T) {
	dev := buildGoldenScenario(t)
	got := dev.Logcat().Dump()

	if os.Getenv("QGJ_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenDumpPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDumpPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenDumpPath, len(got))
		return
	}

	wantBytes, err := os.ReadFile(goldenDumpPath)
	if err != nil {
		t.Fatalf("missing golden file (run with QGJ_UPDATE_GOLDEN=1 to create): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	if len(gotLines) != len(wantLines) {
		t.Errorf("dump has %d lines, golden has %d", len(gotLines), len(wantLines))
	}
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	shown := 0
	for i := 0; i < n && shown < 5; i++ {
		if gotLines[i] != wantLines[i] {
			t.Errorf("line %d:\n got: %q\nwant: %q", i+1, gotLines[i], wantLines[i])
			shown++
		}
	}
	t.Fatal("logcat dump is not byte-identical to the eager-formatting golden")
}

// TestSnapshotFormatMatchesDump pins Snapshot()+Format() against Dump():
// the two read paths must render identical text for every retained entry.
func TestSnapshotFormatMatchesDump(t *testing.T) {
	dev := buildGoldenScenario(t)
	snap := dev.Logcat().Snapshot()
	var sb strings.Builder
	for _, e := range snap {
		sb.WriteString(e.Format())
		sb.WriteByte('\n')
	}
	if sb.String() != dev.Logcat().Dump() {
		t.Fatal("Snapshot()+Format() text differs from Dump()")
	}
}

// TestPooledGenerationClonesAreStable guards the intent pool's aliasing
// contract: a Clone taken inside the emit callback must stay byte-stable
// after the generator resets and reuses the pooled intent for the rest of
// the stream. Campaign D is the sharpest probe — its extras exercise the
// pooled Bundle storage that Reset recycles.
func TestPooledGenerationClonesAreStable(t *testing.T) {
	target := intent.ComponentName{Package: "com.x", Class: "com.x.ui.Main"}
	cfg := core.GeneratorConfig{Seed: 7, ActionStride: 4}
	for _, c := range core.AllCampaigns {
		var clones []*intent.Intent
		var atEmission []string
		c.Generate(target, cfg, core.QGJUID, func(in *intent.Intent) {
			clones = append(clones, in.Clone())
			atEmission = append(atEmission, in.String())
		})
		for i, cl := range clones {
			if got := cl.String(); got != atEmission[i] {
				t.Fatalf("campaign %s intent %d mutated after clone:\n at emission: %s\n       after: %s",
					c.Letter(), i, atEmission[i], got)
			}
		}
	}
}

// TestAnalysisMatchesParsedDump pins the classification equivalence: the
// streaming collector fed live entries must agree with a collector fed the
// dump text parsed back line by line (the paper's pull-then-analyze path).
func TestAnalysisMatchesParsedDump(t *testing.T) {
	dev := buildGoldenScenario(t)
	live := analysis.AnalyzeEntries(dev.Logcat().Snapshot())

	var parsed []logcat.Entry
	for _, line := range strings.Split(strings.TrimSuffix(dev.Logcat().Dump(), "\n"), "\n") {
		e, ok := logcat.ParseLine(line, 0)
		if !ok {
			t.Fatalf("dump line does not parse: %q", line)
		}
		parsed = append(parsed, e)
	}
	fromDump := analysis.AnalyzeEntries(parsed)

	if live.Entries != fromDump.Entries {
		t.Fatalf("entries: live %d, parsed %d", live.Entries, fromDump.Entries)
	}
	if live.CrashEvents != fromDump.CrashEvents ||
		live.ANREvents != fromDump.ANREvents ||
		live.SecurityEvents != fromDump.SecurityEvents {
		t.Fatalf("event counts diverge: live crash=%d anr=%d sec=%d, parsed crash=%d anr=%d sec=%d",
			live.CrashEvents, live.ANREvents, live.SecurityEvents,
			fromDump.CrashEvents, fromDump.ANREvents, fromDump.SecurityEvents)
	}
	if len(live.Components) != len(fromDump.Components) {
		t.Fatalf("component counts diverge: live %d, parsed %d",
			len(live.Components), len(fromDump.Components))
	}
	for cn, lc := range live.Components {
		pc, ok := fromDump.Components[cn]
		if !ok {
			t.Fatalf("component %s missing from parsed report", cn.FlattenToString())
		}
		if lc.Manifestation() != pc.Manifestation() || lc.Deliveries != pc.Deliveries ||
			lc.Security != pc.Security || lc.ANRs != pc.ANRs ||
			fmt.Sprint(lc.CrashRoots) != fmt.Sprint(pc.CrashRoots) ||
			fmt.Sprint(lc.Rejected) != fmt.Sprint(pc.Rejected) ||
			fmt.Sprint(lc.Caught) != fmt.Sprint(pc.Caught) {
			t.Fatalf("component %s classification diverges", cn.FlattenToString())
		}
	}
}
