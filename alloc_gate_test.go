// Allocation-regression gate for the injection hot path. These tests pin
// the allocation counts the perf work achieved so a future change cannot
// silently reintroduce per-intent garbage: the steady-state dispatch path
// must stay allocation-free, and campaign generation must stay within a
// small fixed budget per component sweep.
//
// AllocsPerRun is meaningless under the race detector (the instrumentation
// itself allocates), so the whole file is compiled out of -race runs; the
// separate non-race invocation in scripts/verify.sh keeps the gate active.
//
//go:build !race

package qgj_test

import (
	"testing"

	qgj "repro"
	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/telemetry"
	"repro/internal/wearos"
)

// TestDispatchAllocFree pins the fully-instrumented delivery path
// (permission gate, resolution, lazy logging, telemetry counters) at zero
// steady-state allocations per intent.
func TestDispatchAllocFree(t *testing.T) {
	dev := wearos.New(wearos.DefaultWatchConfig())
	pkg := &manifest.Package{
		Name: "com.bench", Category: manifest.NotHealthFitness, Origin: manifest.ThirdParty,
		Components: []*manifest.Component{{
			Name: intent.ComponentName{Package: "com.bench", Class: "com.bench.ui.Main"},
			Type: manifest.Activity, Exported: true,
		}},
	}
	if err := dev.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	in := &intent.Intent{
		Action:    "android.intent.action.VIEW",
		Component: pkg.Components[0].Name,
		SenderUID: core.QGJUID,
	}
	var ok bool
	in.Data, ok = intent.ParseURI("https://foo.com/")
	if !ok {
		t.Fatal("bad URI")
	}
	// Warm the path: first deliveries create the process entry, resolve
	// metric handles, and fill the logcat ring's backing array.
	for i := 0; i < 64; i++ {
		if res := dev.StartActivity(in); res != wearos.DeliveredNoEffect {
			t.Fatalf("delivery = %v", res)
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		dev.StartActivity(in)
	})
	// Span sampling (1 in 512 dispatches) allocates a handful of spans per
	// 2000-run batch; amortized that must stay under 0.1 allocs/op.
	if allocs > 0.1 {
		t.Fatalf("dispatch allocates %.3f objects/op, want ~0 (hot path regression)", allocs)
	}
}

// TestDispatchRecorderAllocFree pins the same delivery path with the
// flight recorder attached (the farm's triage configuration): the
// per-dispatch event record is a slot write into a preallocated ring and
// must not add a single steady-state allocation.
func TestDispatchRecorderAllocFree(t *testing.T) {
	dev := wearos.New(wearos.DefaultWatchConfig())
	pkg := &manifest.Package{
		Name: "com.bench", Category: manifest.NotHealthFitness, Origin: manifest.ThirdParty,
		Components: []*manifest.Component{{
			Name: intent.ComponentName{Package: "com.bench", Class: "com.bench.ui.Main"},
			Type: manifest.Activity, Exported: true,
		}},
	}
	if err := dev.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	dev.SetFlightRecorder(telemetry.NewRecorder(0))
	in := &intent.Intent{
		Action:    "android.intent.action.VIEW",
		Component: pkg.Components[0].Name,
		SenderUID: core.QGJUID,
	}
	var ok bool
	in.Data, ok = intent.ParseURI("https://foo.com/")
	if !ok {
		t.Fatal("bad URI")
	}
	for i := 0; i < 64; i++ {
		if res := dev.StartActivity(in); res != wearos.DeliveredNoEffect {
			t.Fatalf("delivery = %v", res)
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		dev.StartActivity(in)
	})
	if allocs > 0.1 {
		t.Fatalf("recorder-on dispatch allocates %.3f objects/op, want ~0 (flight recorder regression)", allocs)
	}
}

// TestGenerationAllocBudget bounds the allocations of a whole campaign-A
// stream for one component. The pooled working intent makes the steady
// state nearly free; the budget covers the one-time RNG split and pool
// interactions.
func TestGenerationAllocBudget(t *testing.T) {
	target := intent.ComponentName{Package: "com.bench", Class: "com.bench.ui.Main"}
	cfg := core.GeneratorConfig{Seed: 1}
	n := core.CampaignA.CountPerComponent(cfg)
	if n == 0 {
		t.Fatal("empty campaign")
	}
	// Warm the strided-catalog caches and the intent pool.
	core.CampaignA.Generate(target, cfg, core.QGJUID, func(in *intent.Intent) {})

	allocs := testing.AllocsPerRun(20, func() {
		core.CampaignA.Generate(target, cfg, core.QGJUID, func(in *intent.Intent) {})
	})
	perIntent := allocs / float64(n)
	// Budget: the per-stream fixed cost (RNG split key + source) spread over
	// the stream, and nothing per intent.
	if perIntent > 0.05 {
		t.Fatalf("campaign A generation allocates %.4f objects/intent (%.0f per stream of %d), want ~0",
			perIntent, allocs, n)
	}
}

// TestCampaignSweepAllocBudget bounds a full instrumented FuzzApp sweep —
// generation, dispatch, logging, telemetry, pacing — against the budget the
// perf pass established (~1 alloc per injected intent, dominated by the
// per-batch result map writes and sampled spans).
func TestCampaignSweepAllocBudget(t *testing.T) {
	dev := wearos.New(wearos.DefaultWatchConfig())
	fleet := qgj.BuildWearFleet(1)
	if err := fleet.InstallInto(dev); err != nil {
		t.Fatal(err)
	}
	inj := &core.Injector{Dev: dev, Cfg: core.GeneratorConfig{ActionStride: 8, SchemeStride: 8}}
	warm := inj.FuzzApp(core.CampaignA, fleet.Packages[0])
	if warm.Sent == 0 {
		t.Fatal("campaign sent nothing")
	}
	allocs := testing.AllocsPerRun(5, func() {
		inj.FuzzApp(core.CampaignA, fleet.Packages[0])
	})
	perIntent := allocs / float64(warm.Sent)
	if perIntent > 3 {
		t.Fatalf("campaign sweep allocates %.2f objects/intent (%.0f per sweep of %d), budget is 3",
			perIntent, allocs, warm.Sent)
	}
}
