// Package qgj is the public API of the Qui-Gon Jinn (QGJ) reproduction: a
// fuzz-testing study of Android Wear reliability (Barsallo Yi, Maji,
// Bagchi — DSN 2018) rebuilt as a pure-Go simulation.
//
// The package exposes four layers:
//
//   - Devices: boot simulated watches, phones, and emulators
//     (NewWatch/NewPhone/NewEmulator), install app fleets on them, and pair
//     them over a Wear MessageAPI link.
//   - The QGJ tool: the intent fuzzer (Fuzzer, campaigns A-D of Table I)
//     and the QGJ-UI Monkey mutation fuzzer (UIFuzzer).
//   - Analysis: a logcat-driven Collector that classifies outcomes into the
//     paper's four manifestations and performs root-cause analysis.
//   - Studies: one-call reproductions of every table and figure in the
//     paper's evaluation (RunWearStudy, RunPhoneStudy, RunUIStudy, Render*).
//
// Everything runs on a virtual clock: the paper's ~1.5M-intent study
// finishes in seconds, deterministically for a given seed.
package qgj

import (
	"repro/internal/adb"
	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/manifest"
	"repro/internal/notify"
	"repro/internal/telemetry"
	"repro/internal/uifuzz"
	"repro/internal/wearos"
)

// Re-exported core types. The aliases keep the public API to one import
// while the implementation stays modular under internal/.
type (
	// Device is a simulated unit (watch, phone, or emulator).
	Device = device.Device
	// OS is the simulated Android (Wear) operating system of a device.
	OS = wearos.OS
	// Fleet is a synthetic app population (Table II, phone, or emulator).
	Fleet = apps.Fleet
	// Campaign is one of the four Fuzz Intent Campaigns (Table I).
	Campaign = core.Campaign
	// GeneratorConfig scales and seeds intent generation.
	GeneratorConfig = core.GeneratorConfig
	// Fuzzer is the QGJ Fuzzer library bound to a device.
	Fuzzer = core.Injector
	// Summary is the per-app campaign summary QGJ reports.
	Summary = core.Summary
	// Collector is the streaming logcat analyzer.
	Collector = analysis.Collector
	// Report is the analyzer's aggregate outcome.
	Report = analysis.Report
	// Manifestation is the paper's four-level severity scale.
	Manifestation = analysis.Manifestation
	// Shell is an adb shell bound to a device.
	Shell = adb.Shell
	// UIFuzzer is QGJ-UI, the Monkey-based mutational fuzzer.
	UIFuzzer = uifuzz.Fuzzer
	// UIMode selects the QGJ-UI mutation strategy.
	UIMode = uifuzz.Mode
	// UIConfig parameterizes one QGJ-UI run.
	UIConfig = uifuzz.Config
	// UIOutcome is one QGJ-UI experiment result (a Table V row).
	UIOutcome = uifuzz.Outcome
	// StudyResult is a complete campaign study (wear or phone).
	StudyResult = experiments.StudyResult
	// UIStudyResult is the complete QGJ-UI study (both modes).
	UIStudyResult = experiments.UIStudyResult
	// StudyOptions configures RunWearStudy / RunPhoneStudy.
	StudyOptions = experiments.Options
	// UIStudyOptions configures RunUIStudy.
	UIStudyOptions = experiments.UIOptions
)

// Campaigns.
const (
	CampaignA = core.CampaignA
	CampaignB = core.CampaignB
	CampaignC = core.CampaignC
	CampaignD = core.CampaignD
)

// UI mutation modes.
const (
	SemiValid = uifuzz.SemiValid
	Random    = uifuzz.Random
)

// Manifestations, least to most severe.
const (
	NoEffect     = analysis.ManifestNoEffect
	Unresponsive = analysis.ManifestUnresponsive
	Crash        = analysis.ManifestCrash
	Reboot       = analysis.ManifestReboot
)

// NewWatch boots a simulated Android Wear 2.0 watch (the study's Moto 360).
func NewWatch(name string) *Device { return device.NewWatch(name) }

// NewPhone boots a simulated Android 7.1.1 phone (the study's Nexus 4/6).
func NewPhone(name string) *Device { return device.NewPhone(name) }

// NewEmulator boots the Android Watch emulator used by QGJ-UI.
func NewEmulator(name string) *Device { return device.NewEmulator(name) }

// Pair bonds two devices over the simulated Bluetooth link.
func Pair(a, b *Device) { device.Pair(a, b) }

// BuildWearFleet constructs the paper's 46-app wearable population
// (Table II) for the given seed.
func BuildWearFleet(seed uint64) *Fleet { return apps.BuildWearFleet(seed) }

// BuildPhoneFleet constructs the 63-app com.android.* phone population.
func BuildPhoneFleet(seed uint64) *Fleet { return apps.BuildPhoneFleet(seed) }

// BuildEmulatorFleet constructs the QGJ-UI emulator population (built-ins
// plus top-20 third-party apps).
func BuildEmulatorFleet(seed uint64) *Fleet { return apps.BuildEmulatorFleet(seed) }

// NewFuzzer returns the QGJ Fuzzer library bound to a device's OS.
func NewFuzzer(os *OS, cfg GeneratorConfig) *Fuzzer {
	return &core.Injector{Dev: os, Cfg: cfg}
}

// NewCollector returns a streaming logcat analyzer; subscribe it with
// os.Logcat().Subscribe(c) or feed it a pulled dump via c.ConsumeAll.
func NewCollector() *Collector { return analysis.NewCollector() }

// NewShell opens an adb shell on a device's OS.
func NewShell(os *OS) *Shell { return adb.NewShell(os) }

// NewUIFuzzer returns QGJ-UI bound to a device's OS.
func NewUIFuzzer(os *OS) *UIFuzzer { return uifuzz.New(os) }

// InstallQGJ installs the QGJ pair: QGJ Mobile on the phone and QGJ Wear on
// the watch, wired over their pairing. Returns the phone-side handle used
// to orchestrate fuzzing (Figure 1a's workflow).
func InstallQGJ(phone, watch *Device) *core.MobileApp {
	core.InstallWearApp(watch)
	return core.InstallMobileApp(phone)
}

// RunWearStudy reproduces the full QGJ-Master study on the wearable
// (Tables I-III, Figures 2-4).
func RunWearStudy(opts StudyOptions) (*StudyResult, error) {
	return experiments.RunWearStudy(opts)
}

// RunPhoneStudy reproduces the Android-phone comparison (Table IV).
func RunPhoneStudy(opts StudyOptions) (*StudyResult, error) {
	return experiments.RunPhoneStudy(opts)
}

// RunUIStudy reproduces the QGJ-UI experiment (Table V).
func RunUIStudy(opts UIStudyOptions) (*UIStudyResult, error) {
	return experiments.RunUIStudy(opts)
}

// QuickGen returns a scaled-down generator configuration (~1/k² of campaign
// A's full volume) for demos and tests.
func QuickGen(k int) GeneratorConfig { return experiments.QuickGen(k) }

// HealthFitness and NotHealthFitness re-export the app categories;
// BuiltIn/ThirdParty the origins.
const (
	HealthFitness    = manifest.HealthFitness
	NotHealthFitness = manifest.NotHealthFitness
	BuiltIn          = manifest.BuiltIn
	ThirdParty       = manifest.ThirdParty
)

// --- Telemetry surface ---------------------------------------------------------

// Telemetry aliases. Every device carries a metric registry and a span
// tracer (os.Telemetry() / os.Tracer()) unless booted with
// wearos.Config.DisableTelemetry; see docs/observability.md.
type (
	// Telemetry is a device's metric registry (counters, gauges, histograms).
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is the expvar-style JSON view of a registry.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryServer is a live exposition HTTP server.
	TelemetryServer = telemetry.Server
	// Tracer records lightweight spans across the dispatch pipeline.
	Tracer = telemetry.Tracer
)

// ServeTelemetry exposes reg (Prometheus text + JSON + pprof) on addr;
// tracer may be nil. Close the returned server when done.
func ServeTelemetry(addr string, reg *Telemetry, tracer *Tracer) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg, tracer)
}

// --- Extension surface ---------------------------------------------------------

// NotificationManager is the Wear notification service (extension; see
// DESIGN.md §7).
type NotificationManager = notify.Manager

// Notification is one posted notification with pending-intent actions.
type Notification = notify.Notification

// NewNotificationManager returns the notification service for a device.
func NewNotificationManager(os *OS) *NotificationManager { return notify.NewManager(os) }

// SeedNotifications posts one notification per installed launcher app and
// returns how many were posted.
func SeedNotifications(m *NotificationManager) int { return notify.SeedFromFleet(m) }

// FuzzNotificationActions mutates and fires every active notification
// action `rounds` times (extension experiment).
func FuzzNotificationActions(m *NotificationManager, mode notify.Mode, seed uint64, rounds int) notify.FuzzOutcome {
	return notify.FuzzActions(m, mode, seed, rounds)
}

// Notification fuzzing modes.
const (
	NotifySemiValid = notify.SemiValid
	NotifyRandom    = notify.Random
)

// RunRejuvenationStudy runs the Section IV-E mitigation counterfactual.
func RunRejuvenationStudy(seed uint64, gen GeneratorConfig) (experiments.RejuvenationStudy, error) {
	return experiments.RunRejuvenationStudy(seed, gen)
}

// RunAgingAblations runs the aging-model design-choice ablations.
func RunAgingAblations(seed uint64, gen GeneratorConfig) ([]experiments.AgingAblation, error) {
	return experiments.RunAgingAblations(seed, gen)
}

// RunLegacyPhoneStudy runs the JJB-era historical baseline study.
func RunLegacyPhoneStudy(opts StudyOptions) (*StudyResult, error) {
	return experiments.RunLegacyPhoneStudy(opts)
}
