// Command qgj runs the QGJ-Master fuzzing workflow: a simulated phone
// paired with a simulated watch carrying the paper's 46-app fleet, the QGJ
// apps installed on both, and campaigns orchestrated over the Wear
// MessageAPI — Figure 1a end to end.
//
// Usage:
//
//	qgj -list                             # list fuzzable wear components
//	qgj -app com.strava.wear -campaign B  # fuzz one app with one campaign
//	qgj -app com.strava.wear -all         # all four campaigns
//	qgj -logcat                           # dump the watch log afterwards
//	qgj -all -workers 8 -checkpoint run.ckpt   # farm the whole fleet
//	qgj -all -workers 8 -checkpoint run.ckpt -resume   # continue a killed run
//
// With -workers, -checkpoint, or -resume the run goes through the farm
// engine (internal/farm): one freshly booted device per (campaign, app)
// shard, a worker pool, an fsynced checkpoint journal, and crash triage
// (unique signatures next to raw counts). Without them qgj runs the
// paper's Figure 1a workflow on a single paired phone+watch.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qgj:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qgj", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "fleet and fuzzer seed")
	list := fs.Bool("list", false, "list fuzzable components on the wearable")
	app := fs.String("app", "", "target package on the wearable")
	campaign := fs.String("campaign", "A", "fuzz intent campaign (A-D, or F for OS fault injection)")
	all := fs.Bool("all", false, "run all four campaigns against -app")
	quick := fs.Int("quick", 0, "scale factor k (>0 shrinks campaigns; 0 = full scale)")
	logDump := fs.Bool("logcat", false, "dump the wearable's logcat after fuzzing")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /vars, /spans and /debug/pprof on this address (e.g. :9100 or :0)")
	linger := fs.Duration("linger", 0, "keep the process (and -metrics-addr endpoint) alive this long after the run")
	progressEvery := fs.Duration("progress", 2*time.Second, "interval between progress lines on stderr (0 disables)")
	workers := fs.Int("workers", 0, "farm mode: run shards on this many parallel devices (>1 enables the farm)")
	checkpoint := fs.String("checkpoint", "", "farm mode: journal completed shards to this file")
	resume := fs.Bool("resume", false, "farm mode: resume from -checkpoint instead of starting over")
	snapshotMode := fs.String("snapshot", "on", "farm mode: clone shard devices from a booted snapshot (on) or boot each fresh (off); results are identical")
	persistMode := fs.String("persist", "on", "farm mode: reuse each worker's device across shards via in-place reset (on) or clone per shard (off); results are identical")
	worker := fs.String("worker", "", "worker mode: lease and execute shards from the farmd coordinator at this URL")
	workerName := fs.String("worker-name", "", "worker mode: name reported in leases (default qgj-<pid>)")
	exitIdle := fs.Bool("exit-idle", false, "worker mode: exit when the coordinator has no pending shards")
	workerPoll := fs.Duration("poll", 500*time.Millisecond, "worker mode: idle backoff between empty lease polls")
	throttle := fs.Duration("throttle", 0, "worker mode: sleep this long after each lease before executing (testing aid)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *worker != "" {
		return runWorker(*worker, *workerName, *exitIdle, *workerPoll, *throttle)
	}
	if *snapshotMode != "on" && *snapshotMode != "off" {
		return fmt.Errorf("-snapshot must be on or off, got %q", *snapshotMode)
	}
	if *persistMode != "on" && *persistMode != "off" {
		return fmt.Errorf("-persist must be on or off, got %q", *persistMode)
	}

	sharding := core.Sharding{Workers: *workers, Checkpoint: *checkpoint, Resume: *resume,
		DisableSnapshot: *snapshotMode == "off", DisablePersist: *persistMode == "off"}
	if sharding.Enabled() {
		if *resume && *checkpoint == "" {
			return fmt.Errorf("-resume requires -checkpoint")
		}
		return runFarm(sharding, *seed, *app, *campaign, *all, *quick, *metricsAddr, *linger, *progressEvery, *logDump)
	}

	phone := device.NewPhone("nexus4")
	watch := device.NewWatch("moto360")
	device.Pair(phone, watch)
	fleet := apps.BuildWearFleet(*seed)
	if err := fleet.InstallInto(watch.OS); err != nil {
		return err
	}
	core.InstallWearApp(watch)
	mobile := core.InstallMobileApp(phone)

	tel := watch.OS.Telemetry()
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, tel, watch.OS.Tracer())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "qgj: telemetry on http://%s/metrics\n", srv.Addr)
	}
	// A streaming analyzer mirrors the manifestation taxonomy into the
	// exposition (analysis_components{manifestation=...}) while campaigns run.
	col := analysis.NewCollector().UseTelemetry(tel)
	watch.OS.Logcat().Subscribe(col)

	if *list {
		comps, err := mobile.ListWearComponents()
		if err != nil {
			return err
		}
		for _, c := range comps {
			exported := "exported"
			if !c.Exported {
				exported = "internal"
			}
			fmt.Printf("%-8s %-9s %s/%s\n", c.Type, exported, c.Package, c.Class)
		}
		fmt.Printf("%d components\n", len(comps))
		return nil
	}

	if *app == "" {
		return fmt.Errorf("missing -app (or use -list); e.g. -app com.strava.wear")
	}
	gen := core.GeneratorConfig{Seed: *seed}
	if *quick > 0 {
		gen.ActionStride = *quick
		gen.SchemeStride = (*quick + 1) / 2
		gen.RandomVariants = 1
		gen.ExtrasVariants = 1
	}

	campaigns := core.AllCampaigns
	if !*all {
		c, err := core.ParseCampaign(*campaign)
		if err != nil {
			return err
		}
		campaigns = []core.Campaign{c}
	}
	if *progressEvery > 0 {
		start := time.Now()
		stop := telemetry.Watch(os.Stderr, *progressEvery, func() string {
			snap := tel.Snapshot()
			var injected uint64
			for k, v := range snap.Counters {
				if strings.HasPrefix(k, "qgj_intents_injected_total") {
					injected += v
				}
			}
			rate := float64(injected) / time.Since(start).Seconds()
			return fmt.Sprintf("qgj: %v injected=%d (%.0f/s) crashes=%d anrs=%d reboots=%d",
				time.Since(start).Round(time.Millisecond), injected, rate,
				snap.Counters["analysis_crash_events_total"],
				snap.Counters["analysis_anr_events_total"],
				snap.Counters["analysis_reboots_total"])
		})
		defer stop()
	}
	totalSent := 0
	for _, c := range campaigns {
		sum, err := mobile.StartFuzz(*app, c, gen)
		if err != nil {
			return err
		}
		totalSent += sum.Sent
		fmt.Println(sum.String())
	}
	if totalSent == 0 {
		// A campaign that injected nothing found nothing; exiting 0 here
		// would let a mis-scoped CI invocation pass silently.
		return fmt.Errorf("campaign recorded zero injections against %s — no fuzzable components matched", *app)
	}

	if *logDump {
		fmt.Print(watch.OS.Logcat().Dump())
	}
	if *linger > 0 {
		fmt.Fprintf(os.Stderr, "qgj: lingering %v for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}

// runWorker joins a farmd coordinator as a networked farm worker: lease a
// shard, verify the plan fingerprint, execute, upload, repeat. SIGINT or
// SIGTERM drains — the in-flight shard is finished and uploaded (or, if
// execution has not started, its lease is released back to the queue)
// before the process exits; a worker killed outright instead stops
// heartbeating and the coordinator's reaper re-queues its shard.
func runWorker(coordinator, name string, exitIdle bool, poll, throttle time.Duration) error {
	if name == "" {
		name = fmt.Sprintf("qgj-%d", os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	stats, err := service.RunWorker(ctx, service.WorkerOptions{
		Coordinator:  coordinator,
		Name:         name,
		Poll:         poll,
		ExitWhenIdle: exitIdle,
		Throttle:     throttle,
		Log:          log.New(os.Stderr, "qgj-worker: ", 0),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qgj-worker: done — %d shards executed (%d intents), %d leases lost\n",
		stats.Executed, stats.Intents, stats.Lost)
	return nil
}

// runFarm executes the sharded campaign on the farm engine and prints the
// merged per-campaign summaries plus the triage roll-up.
func runFarm(sharding core.Sharding, seed uint64, app, campaign string, all bool, quick int, metricsAddr string, linger, progressEvery time.Duration, logDump bool) error {
	if logDump {
		fmt.Fprintln(os.Stderr, "qgj: -logcat is ignored in farm mode (each shard boots its own device)")
	}
	campaigns := core.AllCampaigns
	if !all {
		c, err := core.ParseCampaign(campaign)
		if err != nil {
			return err
		}
		campaigns = []core.Campaign{c}
	}
	gen := core.GeneratorConfig{}
	if quick > 0 {
		gen.ActionStride = quick
		gen.SchemeStride = (quick + 1) / 2
		gen.RandomVariants = 1
		gen.ExtrasVariants = 1
	}
	cfg := farm.Config{
		Seed:      seed,
		Fleet:     apps.WearFleet,
		Campaigns: campaigns,
		Gen:       gen,
		Sharding:  sharding,
		Telemetry: telemetry.NewRegistry(),
		Status:    farm.NewStatusBoard(),
	}
	if app != "" {
		cfg.Packages = []string{app}
	}
	if metricsAddr != "" {
		srv, err := telemetry.Serve(metricsAddr, cfg.Telemetry, nil,
			telemetry.Route{Pattern: "/farm", Handler: farm.StatusHandler(cfg.Status)})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "qgj: telemetry on http://%s/metrics\n", srv.Addr)
	}
	var prog *telemetry.Progress
	if progressEvery > 0 {
		prog = telemetry.NewProgress(os.Stderr, progressEvery)
		start := time.Now()
		cfg.Progress = func(done, total int, key farm.ShardKey, sentSoFar int) {
			rate := float64(sentSoFar) / time.Since(start).Seconds()
			prog.Tickf("qgj: shard %d/%d (%s) injected=%d (%.0f/s)", done, total, key, sentSoFar, rate)
		}
	}
	res, err := farm.Run(cfg)
	prog.Flush()
	if prog != nil {
		snap := cfg.Telemetry.Snapshot()
		hits := snap.Counters["farm_snapshot_hits_total"]
		misses := snap.Counters["farm_snapshot_misses_total"]
		line := fmt.Sprintf("qgj: snapshot hits=%d misses=%d", hits, misses)
		if clone := snap.Histograms["farm_clone_seconds"]; clone.Count > 0 {
			line += fmt.Sprintf(" clone-avg=%s",
				time.Duration(clone.Sum/float64(clone.Count)*float64(time.Second)).Round(time.Microsecond))
		}
		if reuses := snap.Counters["farm_persist_reuses_total"]; reuses > 0 {
			line += fmt.Sprintf(" persist reuses=%d retires=%d fallbacks=%d",
				reuses, snap.Counters["farm_persist_retires_total"],
				snap.Counters["farm_persist_fallbacks_total"])
			if reset := snap.Histograms["farm_reset_seconds"]; reset.Count > 0 {
				line += fmt.Sprintf(" reset-avg=%s",
					time.Duration(reset.Sum/float64(reset.Count)*float64(time.Second)).Round(time.Microsecond))
			}
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err != nil {
		return err
	}
	if res.Sent == 0 {
		return fmt.Errorf("campaign recorded zero injections across %d shards", res.Shards)
	}
	if res.Resumed > 0 {
		fmt.Fprintf(os.Stderr, "qgj: resumed %d/%d shards from %s\n", res.Resumed, res.Shards, sharding.Checkpoint)
	}
	for _, cr := range res.Campaigns {
		fmt.Printf("campaign %s: sent=%d crashes=%d anrs=%d security=%d reboots=%d\n",
			cr.Campaign.Letter(), cr.Sent, cr.Report.CrashEvents, cr.Report.ANREvents,
			cr.Report.SecurityEvents, len(cr.Report.RebootTimes))
	}
	fmt.Printf("farm: %d shards, %d workers, %d intents\n", res.Shards, res.Workers, res.Sent)
	if res.Triage != nil {
		faults := ""
		if res.Triage.Faults > 0 {
			faults = fmt.Sprintf(", %d fault verdicts", res.Triage.Faults)
		}
		fmt.Printf("triage: %d unique failure signatures (%d raw crashes, %d ANRs%s)\n",
			res.Triage.Unique(), res.Triage.Crashes-res.Triage.ANRs-res.Triage.Faults,
			res.Triage.ANRs, faults)
		for _, b := range res.Triage.Buckets {
			min := ""
			if b.Minimized != nil {
				min = " minimized=" + b.Minimized.String()
			} else if b.Exemplar != nil && b.Exemplar.Intent != nil && !b.Reproduced {
				min = " (not reproduced on fresh device)"
			}
			flight := ""
			if b.Exemplar != nil && len(b.Exemplar.Flight) > 0 {
				flight = fmt.Sprintf(" flight=%d events (trace %s)", len(b.Exemplar.Flight), b.Exemplar.Trace)
			}
			fmt.Printf("  %016x ×%-4d %s at %s%s%s\n", b.Hash, b.Count, b.Class, b.Frame, min, flight)
		}
		if rows := experiments.FaultResilienceFromTriage(res.Triage); len(rows) > 0 {
			fmt.Println("fault resilience (graceful-degradation score per fault × app):")
			for _, r := range rows {
				fmt.Printf("  %-16s %-28s windows=%-3d score=%.2f (recovered=%d stall=%d silent=%d failed=%d)\n",
					r.Fault, r.App, r.Windows, r.Score,
					r.Degraded, r.Stalls, r.SilentDrops, r.FailedRecoveries)
			}
		}
	}
	if linger > 0 {
		fmt.Fprintf(os.Stderr, "qgj: lingering %v for scrapes\n", linger)
		time.Sleep(linger)
	}
	return nil
}
