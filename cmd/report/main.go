// Command report regenerates every table and figure in the paper's
// evaluation section from a fresh simulation run.
//
// Usage:
//
//	report [-seed N] [-quick K] [-only tab1,tab2,fig3a,...]
//
// Artifacts: tab1 tab2 tab3 tab4 tab5 fig2 fig3a fig3b fig4 (default all).
// -quick K scales the campaign volume down by ~K² for fast smoke runs; the
// published numbers require the default full scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "experiment seed")
	quick := fs.Int("quick", 0, "scale factor k (>0 shrinks campaigns ~k^2; 0 = full paper scale)")
	only := fs.String("only", "", "comma-separated artifact list (tab1..tab5, fig2, fig3a, fig3b, fig4)")
	uiEvents := fs.Int("ui-events", 0, "QGJ-UI events per mode (0 = the paper's 41405)")
	ablations := fs.Bool("ablations", false, "also run the extension studies (aging ablations, rejuvenation, validation eras)")
	jsonOut := fs.String("json", "", "also write machine-readable artifacts to this file (wear+phone+ui exports)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /vars, /spans, /healthz and /farm on this address while the studies run (farm mode feeds them)")
	linger := fs.Duration("linger", 0, "keep the process (and -metrics-addr endpoint) alive this long after the run")
	progress := fs.Bool("progress", false, "print rate-limited study progress to stderr")
	workers := fs.Int("workers", 0, "run the wear/phone studies on the farm engine with this many parallel devices (>1 enables sharding)")
	checkpoint := fs.String("checkpoint", "", "farm mode: journal completed shards to this file")
	resume := fs.Bool("resume", false, "farm mode: resume from -checkpoint instead of starting over")
	snapshotMode := fs.String("snapshot", "on", "farm mode: clone shard devices from a booted snapshot (on) or boot each fresh (off); results are identical")
	persistMode := fs.String("persist", "on", "farm mode: reuse each worker's device across shards via in-place reset (on) or clone per shard (off); results are identical")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshotMode != "on" && *snapshotMode != "off" {
		return fmt.Errorf("-snapshot must be on or off, got %q", *snapshotMode)
	}
	if *persistMode != "on" && *persistMode != "off" {
		return fmt.Errorf("-persist must be on or off, got %q", *persistMode)
	}
	sharding := core.Sharding{Workers: *workers, Checkpoint: *checkpoint, Resume: *resume,
		DisableSnapshot: *snapshotMode == "off", DisablePersist: *persistMode == "off"}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	var prog *telemetry.Progress
	if *progress {
		prog = telemetry.NewProgress(os.Stderr, 2*time.Second)
	}
	progressCB := func(c core.Campaign, pkg string, sent int) {
		prog.Tickf("report: %v campaign %s app %s sent=%d",
			prog.Elapsed().Round(time.Millisecond), c.Letter(), pkg, sent)
	}

	// The live-observability surface: one registry and one shard status
	// board shared by every farm-backed study in this invocation. Serial
	// (unsharded) studies run their own per-device registries and leave
	// these empty — the endpoints still answer, which is what a scrape
	// harness wants.
	var reg *telemetry.Registry
	var board *farm.StatusBoard
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		board = farm.NewStatusBoard()
		srv, err := telemetry.Serve(*metricsAddr, reg, nil,
			telemetry.Route{Pattern: "/farm", Handler: farm.StatusHandler(board)})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "report: telemetry on http://%s/metrics\n", srv.Addr)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, a := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(a))] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	gen := core.GeneratorConfig{}
	if *quick > 0 {
		gen = experiments.QuickGen(*quick)
	}

	needWear := sel("tab2") || sel("tab3") || sel("fig2") || sel("fig3a") || sel("fig3b") || sel("fig4")
	needPhone := sel("tab4")
	needUI := sel("tab5")

	if sel("tab1") {
		fmt.Println(report.TableI(experiments.TableI(gen, 912)))
	}

	var wear *experiments.StudyResult
	if needWear {
		start := time.Now()
		var err error
		wear, err = experiments.RunWearStudy(experiments.Options{Seed: *seed, Gen: gen, Progress: progressCB, Sharding: sharding, Telemetry: reg, Status: board})
		// Flush the last rate-limited heartbeat so the final counts are not
		// swallowed when the study ends between ticks.
		prog.Flush()
		if err != nil {
			return fmt.Errorf("wear study: %w", err)
		}
		fmt.Printf("[wear study: %d intents, %d reboots, %v]\n\n",
			wear.Sent, wear.Reboots(), time.Since(start).Round(time.Millisecond))
		if wear.Triage != nil {
			fmt.Printf("[wear triage: %d unique failure signatures / %d raw crashes / %d ANRs]\n\n",
				wear.Triage.Unique(), wear.Triage.Crashes-wear.Triage.ANRs-wear.Triage.Faults,
				wear.Triage.ANRs)
			if rows := experiments.FaultResilience(wear); len(rows) > 0 {
				fmt.Println(report.FaultTable(rows))
			}
		}
	}
	if sel("tab2") {
		fmt.Println(report.TableII(experiments.TableII(wear.Fleet)))
	}
	if sel("tab3") {
		fmt.Println(report.TableIII(experiments.TableIII(wear)))
	}
	if sel("fig2") {
		fmt.Println(report.Fig2(experiments.Fig2(wear)))
	}
	if sel("fig3a") {
		fmt.Println(report.Fig3a(experiments.Fig3a(wear)))
	}
	if sel("fig3b") {
		fmt.Println(report.Fig3b(experiments.Fig3b(wear), experiments.Fig3a(wear)))
	}
	if sel("fig4") {
		fmt.Println(report.Fig4(experiments.Fig4(wear)))
	}

	if needPhone {
		start := time.Now()
		// The phone study never shares the wear study's checkpoint file — a
		// journal fingerprints exactly one shard plan.
		phoneSharding := sharding
		phoneSharding.Checkpoint = ""
		phoneSharding.Resume = false
		phone, err := experiments.RunPhoneStudy(experiments.Options{Seed: *seed, Gen: gen, Progress: progressCB, Sharding: phoneSharding, Telemetry: reg, Status: board})
		prog.Flush()
		if err != nil {
			return fmt.Errorf("phone study: %w", err)
		}
		fmt.Printf("[phone study: %d intents, %v]\n\n",
			phone.Sent, time.Since(start).Round(time.Millisecond))
		rows, others, total := experiments.TableIV(phone)
		fmt.Println(report.TableIV(rows, others, total))
	}

	if needUI {
		start := time.Now()
		ui, err := experiments.RunUIStudy(experiments.UIOptions{Seed: *seed, Events: *uiEvents})
		if err != nil {
			return fmt.Errorf("ui study: %w", err)
		}
		fmt.Printf("[ui study: %v]\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(report.TableV(experiments.TableV(ui)))
	}

	if *ablations {
		if err := runAblations(*seed, gen); err != nil {
			return err
		}
	}

	if *jsonOut != "" {
		if err := writeJSONArtifacts(*jsonOut, *seed, gen, *uiEvents, sharding); err != nil {
			return err
		}
		fmt.Printf("[machine-readable artifacts written to %s]\n", *jsonOut)
	}
	if *linger > 0 {
		fmt.Fprintf(os.Stderr, "report: lingering %v for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}

// writeJSONArtifacts re-runs the three studies and writes their exports as
// one JSON document. The export runs never reuse the CLI's checkpoint file
// (a journal fingerprints exactly one shard plan), only its worker count.
func writeJSONArtifacts(path string, seed uint64, gen core.GeneratorConfig, uiEvents int, sharding core.Sharding) error {
	sharding.Checkpoint = ""
	sharding.Resume = false
	wear, err := experiments.RunWearStudy(experiments.Options{Seed: seed, Gen: gen, Sharding: sharding})
	if err != nil {
		return fmt.Errorf("wear study for JSON export: %w", err)
	}
	phone, err := experiments.RunPhoneStudy(experiments.Options{Seed: seed, Gen: gen, Sharding: sharding})
	if err != nil {
		return fmt.Errorf("phone study for JSON export: %w", err)
	}
	ui, err := experiments.RunUIStudy(experiments.UIOptions{Seed: seed, Events: uiEvents})
	if err != nil {
		return fmt.Errorf("ui study for JSON export: %w", err)
	}
	doc := struct {
		Wear  report.StudyExport `json:"wear"`
		Phone report.StudyExport `json:"phone"`
		UI    report.UIExport    `json:"ui"`
	}{
		Wear:  report.ExportStudy(wear, seed),
		Phone: report.ExportStudy(phone, seed),
		UI:    report.ExportUI(ui),
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create JSON artifact file: %w", err)
	}
	defer f.Close()
	return report.WriteJSON(f, doc)
}

// runAblations prints the extension studies: the aging-model ablations,
// the rejuvenation counterfactual (Section IV-E's mitigation), and the
// JJB-era input-validation comparison.
func runAblations(seed uint64, gen core.GeneratorConfig) error {
	fmt.Println("EXTENSION: AGING-MODEL ABLATIONS (escalation apps + one crashy app)")
	rows, err := experiments.RunAgingAblations(seed, gen)
	if err != nil {
		return fmt.Errorf("aging ablations: %w", err)
	}
	for _, r := range rows {
		fmt.Printf("  %-18s reboots=%d (sent=%d)\n", r.Name, r.Reboots, r.Sent)
	}

	fmt.Println("\nEXTENSION: SOFTWARE REJUVENATION COUNTERFACTUAL (Section IV-E)")
	rs, err := experiments.RunRejuvenationStudy(seed, gen)
	if err != nil {
		return fmt.Errorf("rejuvenation study: %w", err)
	}
	fmt.Printf("  baseline reboots=%d, rejuvenated reboots=%d, rejuvenations=%d (sent=%d)\n",
		rs.BaselineReboots, rs.RejuvenatedReboots, rs.Rejuvenations, rs.Sent)

	fmt.Println("\nEXTENSION: INPUT-VALIDATION ERAS (JJB-era Android 2.x vs Android 7.1.1)")
	cmp, err := experiments.CompareValidationEras(experiments.Options{Seed: seed, Gen: gen})
	if err != nil {
		return fmt.Errorf("era comparison: %w", err)
	}
	fmt.Printf("  NPE share of crashes: legacy %.1f%% -> modern %.1f%%\n",
		100*cmp.LegacyNPEShare, 100*cmp.ModernNPEShare)
	fmt.Printf("  crashing components:  legacy %d -> modern %d (of %d)\n",
		cmp.LegacyCrashComp, cmp.ModernCrashComp, cmp.Components)
	return nil
}
