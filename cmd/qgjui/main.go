// Command qgjui runs the QGJ-UI experiment: Monkey-generated UI events and
// intents, mutated (semi-valid or random) and replayed through the adb
// shell utilities against the Android Watch emulator — Figure 1b end to
// end.
//
// Usage:
//
//	qgjui                      # both modes at paper scale (41405 events each)
//	qgjui -mode semi -n 5000   # one mode, smaller run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/uifuzz"
	"repro/internal/wearos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qgjui:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qgjui", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "fleet and mutation seed")
	mode := fs.String("mode", "both", "mutation mode: semi, random, or both")
	events := fs.Int("n", 0, "events per mode (0 = the paper's 41405)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var modes []uifuzz.Mode
	switch *mode {
	case "semi", "semi-valid":
		modes = []uifuzz.Mode{uifuzz.SemiValid}
	case "random":
		modes = []uifuzz.Mode{uifuzz.Random}
	case "both":
		modes = []uifuzz.Mode{uifuzz.SemiValid, uifuzz.Random}
	default:
		return fmt.Errorf("unknown -mode %q (semi|random|both)", *mode)
	}

	for _, m := range modes {
		// A fresh emulator per mode, like the paper's repeatable setup.
		fleet := apps.BuildEmulatorFleet(*seed)
		dev := wearos.New(wearos.DefaultEmulatorConfig())
		if err := fleet.InstallInto(dev); err != nil {
			return err
		}
		out := uifuzz.New(dev).Run(m, uifuzz.Config{Seed: *seed, Events: *events})
		fmt.Printf("%-10s injected=%d exceptions=%d (%.1f%%) crashes=%d (%.2f%%) systemCrashes=%d\n",
			out.Mode, out.Injected, out.ExceptionsRaised, 100*out.ExceptionRate(),
			out.Crashes, 100*out.CrashRate(), out.SystemCrashes)
	}
	return nil
}
