// Command wearsim inspects and pokes a simulated wearable directly: list
// packages and components, send a single intent through an adb-style shell,
// and dump logcat — a REPL-free debugging surface for the substrate.
//
// Usage:
//
//	wearsim -packages
//	wearsim -components com.strava.wear
//	wearsim -shell "am start -n com.strava.wear/.ui.MainActivity -a android.intent.action.VIEW -d tel:123"
//	wearsim -shell "..." -logcat
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/adb"
	"repro/internal/apps"
	"repro/internal/telemetry"
	"repro/internal/wearos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wearsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wearsim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "fleet seed")
	packages := fs.Bool("packages", false, "list installed packages")
	components := fs.String("components", "", "list components of a package")
	shell := fs.String("shell", "", "run one adb shell command")
	logDump := fs.Bool("logcat", false, "dump logcat at the end")
	dropbox := fs.Bool("dropbox", false, "dump DropBox crash/ANR/restart records at the end")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /vars, /spans and /debug/pprof on this address (e.g. :9100 or :0)")
	linger := fs.Duration("linger", 0, "keep the process (and -metrics-addr endpoint) alive this long after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fleet := apps.BuildWearFleet(*seed)
	dev := wearos.New(wearos.DefaultWatchConfig())
	if err := fleet.InstallInto(dev); err != nil {
		return err
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr, dev.Telemetry(), dev.Tracer())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "wearsim: telemetry on http://%s/metrics\n", srv.Addr)
	}

	switch {
	case *packages:
		for _, p := range dev.Registry().Packages() {
			fmt.Printf("%-40s %-20s %-12s %2d components\n",
				p.Name, p.Category, p.Origin, len(p.Components))
		}
	case *components != "":
		p := dev.Registry().Package(*components)
		if p == nil {
			return fmt.Errorf("package %q not installed", *components)
		}
		for _, c := range p.Components {
			guard := ""
			if !c.Exported {
				guard = " (not exported)"
			} else if c.Permission != "" {
				guard = " (requires " + c.Permission + ")"
			}
			fmt.Printf("%-8s %s%s\n", c.Type, c.Name.FlattenToString(), guard)
		}
	case *shell != "":
		res := adb.NewShell(dev).Run(*shell)
		if res.Output != "" {
			fmt.Println(res.Output)
		}
		if res.SentIntent != nil {
			fmt.Printf("delivery: %s\n", res.Delivery)
		}
		if res.ExitCode != 0 {
			return fmt.Errorf("shell exited %d", res.ExitCode)
		}
	default:
		fs.Usage()
	}

	if *logDump {
		fmt.Print(dev.Logcat().Dump())
	}
	if *dropbox {
		for _, e := range dev.DropBoxEntries("") {
			fmt.Printf("%s %-16s %-32s %-48s %s\n",
				e.Time.Format("15:04:05.000"), e.Tag, e.Process,
				e.Component.FlattenToString(), e.Detail)
		}
	}
	if *linger > 0 {
		fmt.Fprintf(os.Stderr, "wearsim: lingering %v for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}
