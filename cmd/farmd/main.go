// Command farmd is the distributed farm service: a long-running coordinator
// that hosts fuzzing campaigns as a durable work queue and shards them
// across networked workers (qgj -worker) over HTTP, with the same
// determinism contract as the in-process farm — the merged report is
// byte-identical to a single-process run of the same spec, no matter how
// many workers took part or died mid-lease.
//
// Usage:
//
//	farmd serve  -addr :8787 -data /var/lib/farmd     # run the coordinator
//	farmd submit -addr URL -quick 4 -campaigns AC     # host a campaign
//	farmd list   -addr URL                            # campaigns + states
//	farmd status -addr URL -id c1-...                 # one campaign's info
//	farmd wait   -addr URL -id c1-...                 # stream triage until merged
//	farmd export -addr URL -id c1-... -o out.json     # canonical merged export
//	farmd local  -quick 4 -campaigns AC -o out.json   # same spec, in-process
//
// serve drains gracefully on SIGINT/SIGTERM: no new leases, in-flight
// merges finish, every campaign journal is flushed and closed. The queue is
// durable when -data is set — a restarted coordinator replays its journals
// and re-queues exactly the unfinished shards.
//
// local runs the identical spec through the in-process farm engine and
// renders the same canonical export, producing the baseline the service's
// byte-identical-merge guarantee is checked against (scripts/verify.sh does
// exactly this: serve + two workers, one killed mid-lease, then cmp against
// local).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "farmd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: farmd <serve|submit|list|status|wait|export|local> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "serve":
		return serve(rest)
	case "submit":
		return submit(rest)
	case "list":
		return list(rest)
	case "status":
		return status(rest)
	case "wait":
		return wait(rest)
	case "export":
		return export(rest)
	case "local":
		return local(rest)
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, submit, list, status, wait, export, or local)", cmd)
	}
}

func serve(args []string) error {
	fs := flag.NewFlagSet("farmd serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8787", "listen address for the campaign API and telemetry")
	dataDir := fs.String("data", "", "durable queue directory (campaign sidecars + journals); empty = in-memory")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "lease lifetime between worker heartbeats")
	retain := fs.Int("retain", 0, "keep only the last N completed campaigns hosted; older ones archive to <data>/done/ (0 = keep all)")
	maxUploads := fs.Int("max-pending-uploads", 0, "bound on shard uploads in the fsync pipeline before 429 backpressure (0 = default 64, negative = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	coord, err := service.NewCoordinator(service.Options{
		DataDir:           *dataDir,
		LeaseTTL:          *leaseTTL,
		Retain:            *retain,
		MaxPendingUploads: *maxUploads,
		Telemetry:         reg,
	})
	if err != nil {
		return err
	}
	srv, err := telemetry.Serve(*addr, reg, nil, service.Routes(coord)...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "farmd: serving on http://%s (lease TTL %v", srv.Addr, *leaseTTL)
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, ", durable queue in %s", *dataDir)
	}
	fmt.Fprintln(os.Stderr, ")")
	for _, info := range coord.Campaigns() {
		fmt.Fprintf(os.Stderr, "farmd: restored campaign %s (%s, %d/%d shards done)\n",
			info.ID, info.State, info.Done, info.Shards)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "farmd: signal received; draining")
	srv.Close()
	if err := coord.Shutdown(); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "farmd: drained (journals flushed, queue state durable)")
	return nil
}

// specFlags registers the campaign-spec flags shared by submit and local
// and returns a builder for the parsed spec.
func specFlags(fs *flag.FlagSet) func() service.CampaignSpec {
	seed := fs.Uint64("seed", 1, "fleet and fuzzer seed")
	fleet := fs.String("fleet", "wear", "app population: wear, phone, or legacy-phone")
	campaigns := fs.String("campaigns", "", "campaign letters to run (subset of ABCD, plus F for fault injection; empty = all of A-D)")
	app := fs.String("app", "", "comma-separated package allowlist (empty = whole fleet)")
	quick := fs.Int("quick", 0, "scale factor k (>0 shrinks campaigns; 0 = full paper scale)")
	noSnapshot := fs.Bool("no-snapshot", false, "workers boot each shard fresh instead of cloning a snapshot")
	noPersist := fs.Bool("no-persist", false, "workers clone a device per shard instead of reusing one via in-place reset")
	noTriage := fs.Bool("no-triage", false, "skip crash bucketing and minimization in the merge")
	return func() service.CampaignSpec {
		spec := service.CampaignSpec{
			Seed:            *seed,
			Fleet:           *fleet,
			Campaigns:       *campaigns,
			Quick:           *quick,
			DisableSnapshot: *noSnapshot,
			DisablePersist:  *noPersist,
			DisableTriage:   *noTriage,
		}
		if *app != "" {
			spec.Packages = strings.Split(*app, ",")
		}
		return spec
	}
}

func submit(args []string) error {
	fs := flag.NewFlagSet("farmd submit", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8787", "coordinator base URL")
	spec := specFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := service.NewClient(*addr, nil).Submit(spec())
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "farmd: campaign %s submitted (%d shards, fingerprint %s)\n",
		info.ID, info.Shards, info.Fingerprint)
	fmt.Println(info.ID)
	return nil
}

func list(args []string) error {
	fs := flag.NewFlagSet("farmd list", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8787", "coordinator base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	infos, err := service.NewClient(*addr, nil).Campaigns()
	if err != nil {
		return err
	}
	for _, info := range infos {
		fmt.Printf("%-16s %-9s shards=%d done=%d leased=%d pending=%d sent=%d fp=%s\n",
			info.ID, info.State, info.Shards, info.Done, info.Leased, info.Pending,
			info.Sent, info.Fingerprint)
	}
	return nil
}

func status(args []string) error {
	fs := flag.NewFlagSet("farmd status", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8787", "coordinator base URL")
	id := fs.String("id", "", "campaign ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	info, err := service.NewClient(*addr, nil).Campaign(*id)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// wait follows the campaign's triage stream (bucket births and growth as
// shard results land) until the coordinator closes it at merge time, then
// reports the final state.
func wait(args []string) error {
	fs := flag.NewFlagSet("farmd wait", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8787", "coordinator base URL")
	id := fs.String("id", "", "campaign ID")
	quiet := fs.Bool("quiet", false, "suppress live bucket updates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	client := service.NewClient(*addr, nil)
	cursor := 0
	for {
		page, err := client.Triage(*id, cursor, true)
		if err != nil {
			return err
		}
		for _, up := range page.Updates {
			if *quiet {
				continue
			}
			tag := "      "
			if up.New {
				tag = "NEW   "
			}
			line := fmt.Sprintf("%s %016x ×%-4d %s", tag, up.Hash, up.Count, up.Class)
			if up.Frame != "" {
				line += " at " + up.Frame
			}
			if up.Exemplar != "" {
				line += fmt.Sprintf("  exemplar=%s flight=%d events", up.Exemplar, len(up.Flight))
			}
			fmt.Println(line)
		}
		cursor = page.Cursor
		if page.Closed {
			break
		}
	}
	info, err := client.Campaign(*id)
	if err != nil {
		return err
	}
	if info.State == service.CampaignFailed {
		return fmt.Errorf("campaign %s failed: %s", info.ID, info.Error)
	}
	fmt.Fprintf(os.Stderr, "farmd: campaign %s %s (%d shards, %d intents)\n",
		info.ID, info.State, info.Shards, info.Sent)
	return nil
}

func export(args []string) error {
	fs := flag.NewFlagSet("farmd export", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8787", "coordinator base URL")
	id := fs.String("id", "", "campaign ID")
	out := fs.String("o", "", "write the export here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id")
	}
	data, err := service.NewClient(*addr, nil).Export(*id)
	if err != nil {
		return err
	}
	if *out == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(*out, data, 0o644)
}

// local runs the spec through the in-process farm engine and writes the
// same canonical export the service produces — the serial baseline for the
// byte-identical-merge check.
func local(args []string) error {
	fs := flag.NewFlagSet("farmd local", flag.ContinueOnError)
	workers := fs.Int("workers", 1, "in-process farm worker count (results identical for any value)")
	out := fs.String("o", "", "write the export here instead of stdout")
	spec := specFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp := spec()
	cfg, err := sp.FarmConfig()
	if err != nil {
		return err
	}
	cfg.Sharding.Workers = *workers
	res, err := farm.Run(cfg)
	if err != nil {
		return err
	}
	data, err := service.ExportResult(res, sp.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "farmd: local run complete (%d shards, %d intents)\n", res.Shards, res.Sent)
	if *out == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(*out, data, 0o644)
}
