#!/bin/sh
# Full verification gate: vet, build, and the complete test suite with the
# race detector (the telemetry registry/exposition endpoint and the farm's
# worker pool are the concurrent surfaces; -race keeps them honest).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Allocation-regression gate: AllocsPerRun is meaningless under -race (the
# instrumentation allocates), so the ceilings in alloc_gate_test.go carry a
# !race build tag and need this separate non-race invocation.
go test -run 'AllocFree|AllocBudget' .

# Hot-path benchmark smoke: a fast -benchtime pass proving the dispatch
# benches still run (the full gate with ceilings is scripts/bench.sh).
go test -run '^$' -bench Dispatch -benchtime 100x .

# The farm is the one subsystem whose whole point is concurrency: run its
# suite again explicitly so a filtered invocation of this gate still
# exercises the worker pool, journal appends, and merge under -race.
go test -race ./internal/farm/...

# End-to-end sharded-campaign smoke: a reduced fleet slice through cmd/qgj
# with workers + checkpoint, written with snapshots and persistent mode
# disabled, then killed (journal truncated after two shard records) and
# resumed with both enabled. Asserts the farm CLI path (flags, journaling,
# cross-mode resume, triage roll-up, non-zero-injection gate) works outside
# the unit-test harness and that neither -snapshot nor -persist lands in
# the checkpoint fingerprint.
ckpt="$(mktemp -t qgj-verify-XXXXXX.ckpt)"
scrape_log="$(mktemp -t qgj-scrape-XXXXXX.log)"
scrape_pid=""
trap 'rm -f "$ckpt" "$scrape_log"; [ -n "$scrape_pid" ] && kill "$scrape_pid" 2>/dev/null || true' EXIT
go run ./cmd/qgj -app com.heartwatch.wear -all -quick 8 -progress 0 \
    -workers 4 -checkpoint "$ckpt" -snapshot=off -persist=off >/dev/null
head -n 3 "$ckpt" > "$ckpt.torn" && mv "$ckpt.torn" "$ckpt"
go run ./cmd/qgj -app com.heartwatch.wear -all -quick 8 -progress 0 \
    -workers 4 -checkpoint "$ckpt" -snapshot=on -persist=on -resume >/dev/null

# Live-scrape smoke: a lingering sharded run serves /metrics, /farm, and
# /healthz on an ephemeral port; curl each while (or just after) the farm
# runs. Asserts the observability surface works end to end — registry
# exposition, farm-wide status board, health probe — not just in httptest.
go run ./cmd/qgj -app com.heartwatch.wear -all -quick 8 -progress 0 \
    -workers 4 -metrics-addr 127.0.0.1:0 -linger 5s >/dev/null 2>"$scrape_log" &
scrape_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's#.*telemetry on http://\([^/]*\)/metrics.*#\1#p' "$scrape_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: qgj never announced its metrics address" >&2; cat "$scrape_log" >&2; exit 1; }
curl -fsS "http://$addr/healthz" | grep -q '^ok$'
for _ in $(seq 1 50); do
    if curl -fsS "http://$addr/metrics" | grep -q '^farm_shards_total'; then break; fi
    sleep 0.1
done
curl -fsS "http://$addr/metrics" | grep -q '^farm_shards_total'
curl -fsS "http://$addr/farm" | grep -q '"shards"'
wait "$scrape_pid"
scrape_pid=""

# Distributed farm-service smoke: coordinator + networked workers over real
# HTTP and real processes. A victim worker takes a lease and is SIGKILLed
# while provably holding it (-throttle parks it between lease and
# execution); two live workers drain the queue, the reaper reclaims the
# victim's shard after the 2s TTL, and the merged export must be
# byte-identical to an in-process run of the same spec. Also asserts the
# /farm campaign filter's JSON 404, the service lease metrics, worker drain
# on SIGTERM, and the coordinator's graceful SIGTERM shutdown.
# Binaries are built first: `go run` wrappers would orphan the child on
# SIGKILL and the victim must die mid-lease for real.
bindir="$(mktemp -d -t qgj-svc-bin-XXXXXX)"
svcdata="$(mktemp -d -t farmd-data-XXXXXX)"
svclog="$(mktemp -t farmd-log-XXXXXX.log)"
victimlog="$(mktemp -t farmd-victim-XXXXXX.log)"
farmd_pid=""; victim_pid=""; w1_pid=""; w2_pid=""
trap 'rm -rf "$ckpt" "$scrape_log" "$bindir" "$svcdata" "$svclog" "$victimlog"
      for p in $scrape_pid $farmd_pid $victim_pid $w1_pid $w2_pid; do kill "$p" 2>/dev/null || true; done' EXIT

go build -o "$bindir/farmd" ./cmd/farmd
go build -o "$bindir/qgj" ./cmd/qgj

"$bindir/farmd" serve -addr 127.0.0.1:0 -data "$svcdata" -lease-ttl 2s 2>"$svclog" &
farmd_pid=$!
base=""
for _ in $(seq 1 100); do
    base="$(sed -n 's#.*serving on http://\([^ ]*\) .*#http://\1#p' "$svclog")"
    [ -n "$base" ] && break
    sleep 0.1
done
[ -n "$base" ] || { echo "verify: farmd never announced its address" >&2; cat "$svclog" >&2; exit 1; }

svc_spec="-app com.heartwatch.wear,com.strava.wear -campaigns AB -quick 8"
id="$("$bindir/farmd" submit -addr "$base" $svc_spec)"

# The victim leases the largest shard and parks; kill it once the lease is
# provably held (its log announces the grant).
"$bindir/qgj" -worker "$base" -worker-name victim -throttle 60s 2>"$victimlog" &
victim_pid=$!
for _ in $(seq 1 100); do
    grep -q 'lease l' "$victimlog" && break
    sleep 0.1
done
grep -q 'lease l' "$victimlog"
"$bindir/qgj" -worker "$base" -worker-name w1 -poll 100ms 2>/dev/null &
w1_pid=$!
"$bindir/qgj" -worker "$base" -worker-name w2 -poll 100ms 2>/dev/null &
w2_pid=$!
kill -9 "$victim_pid" && wait "$victim_pid" 2>/dev/null || true
victim_pid=""

"$bindir/farmd" wait -addr "$base" -id "$id" -quiet
"$bindir/farmd" export -addr "$base" -id "$id" -o "$svcdata/distributed.json"

# Workers drain cleanly on SIGTERM (exit 0, leases released not expired).
kill -TERM "$w1_pid" "$w2_pid"
wait "$w1_pid"; wait "$w2_pid"
w1_pid=""; w2_pid=""

# The byte-identical-merge invariant across the wire, kill included.
"$bindir/farmd" local $svc_spec -workers 2 -o "$svcdata/serial.json"
cmp "$svcdata/distributed.json" "$svcdata/serial.json"

# Cross-persist-mode equivalence: the same spec with persistent-mode device
# reuse disabled must export byte-identically — which, chained with the cmp
# above, proves the distributed run (mid-lease SIGKILL included) matches a
# clone-per-shard run bit for bit.
"$bindir/farmd" local $svc_spec -workers 2 -no-persist -o "$svcdata/serial-nopersist.json"
cmp "$svcdata/serial.json" "$svcdata/serial-nopersist.json"

# /farm board per campaign, JSON 404 for unknown IDs, lease-expiry metrics.
curl -fsS "$base/farm?campaign=$id" | grep -q '"shards"'
[ "$(curl -s -o /dev/null -w '%{http_code}' "$base/farm?campaign=bogus")" = "404" ]
curl -s "$base/farm?campaign=bogus" | grep -q '"error"'
curl -fsS "$base/metrics" | grep -q '^service_leases_expired_total [1-9]'
curl -fsS "$base/api/v1/campaigns/$id/metrics" | grep -q '^campaign_shards_done_total 4'

# Fault-injection campaign smoke: campaign F through the same coordinator,
# with another mid-lease SIGKILL. The OS-fault schedule is keyed on dispatch
# sequence numbers, so the reclaimed shard's re-execution and the in-process
# run must both produce byte-identical exports, graceful-degradation
# verdicts included.
fault_spec="-app com.heartwatch.wear,com.strava.wear -campaigns F -quick 8"
fid="$("$bindir/farmd" submit -addr "$base" $fault_spec)"
: > "$victimlog"
"$bindir/qgj" -worker "$base" -worker-name fault-victim -throttle 60s 2>"$victimlog" &
victim_pid=$!
for _ in $(seq 1 100); do
    grep -q 'lease l' "$victimlog" && break
    sleep 0.1
done
grep -q 'lease l' "$victimlog"
"$bindir/qgj" -worker "$base" -worker-name fault-w1 -poll 100ms 2>/dev/null &
w1_pid=$!
kill -9 "$victim_pid" && wait "$victim_pid" 2>/dev/null || true
victim_pid=""
"$bindir/farmd" wait -addr "$base" -id "$fid" -quiet
"$bindir/farmd" export -addr "$base" -id "$fid" -o "$svcdata/fault-distributed.json"
kill -TERM "$w1_pid"
wait "$w1_pid"
w1_pid=""
"$bindir/farmd" local $fault_spec -workers 2 -o "$svcdata/fault-serial.json"
cmp "$svcdata/fault-distributed.json" "$svcdata/fault-serial.json"
grep -q '"faultResilience"' "$svcdata/fault-distributed.json"

# Coordinator drains on SIGTERM: journals flushed, clean exit.
kill -TERM "$farmd_pid"
wait "$farmd_pid"
farmd_pid=""
grep -q 'drained' "$svclog"
