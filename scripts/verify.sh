#!/bin/sh
# Full verification gate: vet, build, and the complete test suite with the
# race detector (the telemetry registry and exposition endpoint are the
# only concurrent surfaces; -race keeps them honest).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
