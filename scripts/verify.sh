#!/bin/sh
# Full verification gate: vet, build, and the complete test suite with the
# race detector (the telemetry registry/exposition endpoint and the farm's
# worker pool are the concurrent surfaces; -race keeps them honest).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Allocation-regression gate: AllocsPerRun is meaningless under -race (the
# instrumentation allocates), so the ceilings in alloc_gate_test.go carry a
# !race build tag and need this separate non-race invocation.
go test -run 'AllocFree|AllocBudget' .

# Hot-path benchmark smoke: a fast -benchtime pass proving the dispatch
# benches still run (the full gate with ceilings is scripts/bench.sh).
go test -run '^$' -bench Dispatch -benchtime 100x .

# The farm is the one subsystem whose whole point is concurrency: run its
# suite again explicitly so a filtered invocation of this gate still
# exercises the worker pool, journal appends, and merge under -race.
go test -race ./internal/farm/...

# End-to-end sharded-campaign smoke: a reduced fleet slice through cmd/qgj
# with workers + checkpoint, written with snapshots disabled, then killed
# (journal truncated after two shard records) and resumed with snapshots
# enabled. Asserts the farm CLI path (flags, journaling, cross-mode resume,
# triage roll-up, non-zero-injection gate) works outside the unit-test
# harness and that -snapshot stays out of the checkpoint fingerprint.
ckpt="$(mktemp -t qgj-verify-XXXXXX.ckpt)"
scrape_log="$(mktemp -t qgj-scrape-XXXXXX.log)"
scrape_pid=""
trap 'rm -f "$ckpt" "$scrape_log"; [ -n "$scrape_pid" ] && kill "$scrape_pid" 2>/dev/null || true' EXIT
go run ./cmd/qgj -app com.heartwatch.wear -all -quick 8 -progress 0 \
    -workers 4 -checkpoint "$ckpt" -snapshot=off >/dev/null
head -n 3 "$ckpt" > "$ckpt.torn" && mv "$ckpt.torn" "$ckpt"
go run ./cmd/qgj -app com.heartwatch.wear -all -quick 8 -progress 0 \
    -workers 4 -checkpoint "$ckpt" -snapshot=on -resume >/dev/null

# Live-scrape smoke: a lingering sharded run serves /metrics, /farm, and
# /healthz on an ephemeral port; curl each while (or just after) the farm
# runs. Asserts the observability surface works end to end — registry
# exposition, farm-wide status board, health probe — not just in httptest.
go run ./cmd/qgj -app com.heartwatch.wear -all -quick 8 -progress 0 \
    -workers 4 -metrics-addr 127.0.0.1:0 -linger 5s >/dev/null 2>"$scrape_log" &
scrape_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's#.*telemetry on http://\([^/]*\)/metrics.*#\1#p' "$scrape_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: qgj never announced its metrics address" >&2; cat "$scrape_log" >&2; exit 1; }
curl -fsS "http://$addr/healthz" | grep -q '^ok$'
for _ in $(seq 1 50); do
    if curl -fsS "http://$addr/metrics" | grep -q '^farm_shards_total'; then break; fi
    sleep 0.1
done
curl -fsS "http://$addr/metrics" | grep -q '^farm_shards_total'
curl -fsS "http://$addr/farm" | grep -q '"shards"'
wait "$scrape_pid"
scrape_pid=""
