#!/bin/sh
# Benchmark-regression gate for the injection hot path.
#
# Runs the hot-path benchmark suite, emits BENCH_4.json (machine-readable
# current numbers next to the frozen pre-optimization baseline), and fails
# if any gated benchmark regresses past its ceiling. The ceilings are set
# from the perf pass that introduced this gate, with ~40% headroom for
# machine-to-machine variance; they exist to catch order-of-magnitude
# regressions (a reintroduced per-intent allocation, an unbatched counter),
# not single-digit drift.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_4.json}"
raw="$(mktemp -t qgj-bench-XXXXXX.txt)"
trap 'rm -f "$raw"' EXIT

# -count=3: benchgate keeps per-benchmark minima, the robust estimator
# under scheduler noise (the telemetry-delta gate compares two ~300ns
# numbers and would flake on single runs).
go test -run '^$' \
    -bench 'DispatchNoEffect|DispatchNoTelemetry|CampaignInstrumented|CampaignNoTelemetry|TableI_CampaignGeneration|IntentString|LogcatAppend|LogcatFormatParse' \
    -benchmem -benchtime=1s -count=3 . | tee "$raw"

go run ./scripts/benchgate -input "$raw" -output "$out"
echo "wrote $out"
