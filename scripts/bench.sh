#!/bin/sh
# Benchmark-regression gate for the injection hot path, the snapshot farm,
# and the persistent-mode executor.
#
# Runs the hot-path benchmark suite plus the farm boot-strategy triple
# (persist/snapshot/fresh-boot) and the device-level shard-boot and
# unit-reset microbenchmark pairs, emits BENCH_10.json (machine-readable
# current numbers next to the frozen pre-optimization baselines), and fails
# if any gated benchmark regresses past its ceiling, the farm's snapshot
# speedup drops under its 2x floor, or the persistent executor's per-unit
# reset-over-clone speedup drops under its 3x floor. The ceilings are
# set from the perf passes that introduced them, with ~40-70% headroom for
# machine-to-machine variance; they exist to catch order-of-magnitude
# regressions (a reintroduced per-intent allocation, an unbatched counter,
# an eagerly allocated clone ring), not single-digit drift.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
raw="$(mktemp -t qgj-bench-XXXXXX.txt)"
trap 'rm -f "$raw"' EXIT

# -count=3: benchgate keeps per-benchmark minima, the robust estimator
# under scheduler noise (the telemetry-delta gate compares two ~300ns
# numbers and would flake on single runs).
go test -run '^$' \
    -bench 'CampaignInstrumented|CampaignNoTelemetry|TableI_CampaignGeneration|IntentString|LogcatAppend|LogcatFormatParse' \
    -benchmem -benchtime=1s -count=3 . | tee "$raw"

# The dispatch quartet feeds three ratio gates (telemetry delta <=8%,
# recorder delta <=5%, dormant fault-hook delta <=5%) comparing ~300ns
# numbers. -count=N would run each benchmark's repetitions back to back, so
# slow thermal/frequency drift lands entirely on whichever benchmark runs
# last and biases the ratios; eight separate short invocations interleave
# the quartet instead, and benchgate's per-bench minima then compare
# samples taken under like conditions (eight rounds, not five: on a shared
# host the frequency shifts span whole invocations, and each extra round is
# another chance for every member of the quartet to sample the same fast
# window instead of one of them minima-ing on a window the others missed).
for _ in 1 2 3 4 5 6 7 8; do
    go test -run '^$' -bench 'DispatchNoEffect|DispatchNoTelemetry|DispatchRecorder|DispatchFaultHooks' \
        -benchmem -benchtime=1s -count=1 . | tee -a "$raw"
done

# The farm triple feeds the snapshot and end-to-end persist speedup floors;
# the shard-boot pair isolates the device-level clone cost and the unit
# pair feeds the per-unit persist speedup floor.
go test -run '^$' -bench 'Farm8Persist|Farm8Snapshot|Farm8FreshBoot' \
    -benchmem -benchtime=1s -count=3 ./internal/farm | tee -a "$raw"
go test -run '^$' -bench 'ShardBootFresh|ShardBootClone|UnitReset|UnitClone' \
    -benchmem -benchtime=1s -count=3 ./internal/wearos | tee -a "$raw"

# The farm-service queue pair: the in-memory lease cycle and the durable
# (fsynced) result upload round trip.
go test -run '^$' -bench 'QueueLeaseCycle|QueueResultRoundTrip' \
    -benchmem -benchtime=1s -count=3 ./internal/service | tee -a "$raw"

go run ./scripts/benchgate -input "$raw" -output "$out"
echo "wrote $out"
