// Command benchgate parses `go test -bench` output, compares the hot-path
// benchmarks against the frozen pre-optimization baseline and the
// regression ceilings, writes the machine-readable BENCH_10.json artifact,
// and exits non-zero if any gated number is over its ceiling or the farm's
// snapshot or persistent-mode speedups drop under their floors.
//
// When -count>1 was used, the minimum per benchmark is kept: minima are the
// robust location estimator under scheduler and frequency noise, which on a
// shared machine easily dwarfs the single-digit-percent effects the gate
// protects (notably the telemetry delta).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// result is one benchmark's parsed (min-aggregated) numbers.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// Frozen pre-optimization numbers (the seed of this gate); zero-valued
	// fields mean the dimension was not recorded.
	BaselineNs     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocs float64 `json:"baseline_allocs_per_op,omitempty"`

	// Regression ceilings; exceeding any fails the gate.
	CeilingNs     float64 `json:"ceiling_ns_per_op,omitempty"`
	CeilingAllocs float64 `json:"ceiling_allocs_per_op,omitempty"`
}

// gates maps benchmark name -> baseline and ceilings. Baselines are the
// numbers measured immediately before the zero-allocation work landed;
// ceilings are the optimized numbers plus ~40-80% headroom so the gate
// trips on reintroduced per-intent work, not on machine variance.
var gates = map[string]*result{
	"BenchmarkDispatchNoEffect":          {BaselineNs: 1845, BaselineAllocs: 18, CeilingNs: 700, CeilingAllocs: 0.1},
	"BenchmarkDispatchNoTelemetry":       {BaselineNs: 1843, CeilingNs: 700, CeilingAllocs: 0.1},
	"BenchmarkDispatchRecorder":          {BaselineNs: 1845, CeilingNs: 735, CeilingAllocs: 0.1},
	"BenchmarkDispatchFaultHooks":        {BaselineNs: 281, CeilingNs: 735, CeilingAllocs: 0.1},
	"BenchmarkCampaignInstrumented":      {BaselineNs: 6777638, BaselineAllocs: 54226, CeilingNs: 2.3e6, CeilingAllocs: 1000},
	"BenchmarkCampaignNoTelemetry":       {BaselineNs: 6970505, BaselineAllocs: 52861, CeilingNs: 2.1e6, CeilingAllocs: 800},
	"BenchmarkTableI_CampaignGeneration": {BaselineNs: 814105, BaselineAllocs: 8798, CeilingNs: 7.2e5, CeilingAllocs: 5000},
	"BenchmarkIntentString":              {BaselineNs: 534, BaselineAllocs: 9, CeilingNs: 400, CeilingAllocs: 2},
	"BenchmarkLogcatAppend":              {BaselineNs: 23.85, CeilingNs: 90},
	"BenchmarkLogcatFormatParse":         {BaselineNs: 2419, CeilingNs: 3400},

	// Snapshot-farm gates (PR 5). Baselines are the fresh-boot-per-shard
	// numbers measured immediately before the snapshot/clone path landed;
	// ceilings carry ~70% headroom over the optimized numbers.
	"BenchmarkFarm8Snapshot":  {BaselineNs: 1.551e8, BaselineAllocs: 171484, CeilingNs: 8.0e7, CeilingAllocs: 140000},
	"BenchmarkFarm8FreshBoot": {BaselineNs: 1.551e8, BaselineAllocs: 171484, CeilingNs: 2.6e8, CeilingAllocs: 260000},
	"BenchmarkShardBootFresh": {BaselineNs: 2.38e6, CeilingNs: 4.5e6, CeilingAllocs: 100},
	"BenchmarkShardBootClone": {BaselineNs: 2.38e6, BaselineAllocs: 46, CeilingNs: 6.0e4, CeilingAllocs: 100},

	// Persistent-mode gates (PR 10). Farm8Persist's baseline is the
	// clone-per-shard Farm8 it replaces as the default; the end-to-end gain
	// at this campaign scale is bounded by campaign dispatch, so its value
	// is the ~40% allocation cut (the ceiling holds it). UnitReset's
	// baseline is the UnitClone cost the persistent executor replaces per
	// triage/minimizer re-execution; measured ~5.3 µs / 30 allocs against
	// the clone path's ~18.5 µs / 89 allocs.
	"BenchmarkFarm8Persist": {BaselineNs: 4.68e7, BaselineAllocs: 93763, CeilingNs: 8.0e7, CeilingAllocs: 120000},
	"BenchmarkUnitClone":    {CeilingNs: 4.0e4, CeilingAllocs: 150},
	"BenchmarkUnitReset":    {BaselineNs: 18565, BaselineAllocs: 89, CeilingNs: 1.2e4, CeilingAllocs: 60},

	// Farm-service queue gates (PR 7). Baselines are the numbers measured
	// when the coordinator landed: the lease cycle (grant + heartbeat +
	// release) is pure in-memory queue bookkeeping and must stay in the
	// microsecond range; the result round trip includes record validation
	// and the fsynced journal append, so its ceiling carries wide headroom
	// for disk variance while still catching an accidental re-plan or
	// decode/re-encode on the upload path.
	"BenchmarkQueueLeaseCycle":      {BaselineNs: 1220, BaselineAllocs: 6, CeilingNs: 6.0e3, CeilingAllocs: 20},
	"BenchmarkQueueResultRoundTrip": {BaselineNs: 267550, BaselineAllocs: 155, CeilingNs: 1.5e6, CeilingAllocs: 500},
}

// dispatchDeltaCeiling bounds DispatchNoEffect/DispatchNoTelemetry - 1.
// The observability budget is <5% measured as min-of-5 on a quiet machine
// (docs/performance.md); the automated gate allows 8% so residual noise in
// a min-of-3 CI run cannot flake it while an unbatched counter (~8%+ per
// atomic at current dispatch cost) still trips it.
const dispatchDeltaCeiling = 0.08

// recorderDeltaCeiling bounds DispatchRecorder/DispatchNoEffect - 1: the
// flight recorder's cost on top of the fully-instrumented dispatch path.
// Budget is <5% (one pooled ring-slot write per dispatch, clock stamp
// sampled 1-in-16); measured ~3% min-of-5. The gate uses the same 5%
// because the two benchmarks run back to back and share noise, unlike the
// telemetry pair whose ceilings predate min-of-N.
const recorderDeltaCeiling = 0.05

// faultDeltaCeiling bounds DispatchFaultHooks/DispatchNoEffect - 1: the cost
// of an attached-but-dormant fault engine on every dispatch outside a fault
// window (two hook indirections plus one cached-coordinate compare). Budget
// is <5% (docs/faults.md); measured within noise of zero min-of-5. The pair
// runs interleaved like the recorder pair, so the same 5% applies.
const faultDeltaCeiling = 0.05

// farmSpeedupFloor is the snapshot tentpole's acceptance bar: the same
// eight-worker farm run must be at least this many times faster cloning
// shard devices from a snapshot than booting each fresh. Measured min-of-3
// on the machine that set the ceilings: ~3.2x.
const farmSpeedupFloor = 2.0

// persistUnitSpeedupFloor is the persistent-mode tentpole's acceptance bar,
// measured where device provisioning dominates: one campaign unit (install
// + handler registration + crash repro — the triage oracle / minimizer
// re-execution shape) on a hot device reset in place versus on a fresh
// clone. Measured min-of-3 on the machine that set the ceilings: ~3.4x.
// The end-to-end Farm8 pair cannot show this ratio — at QuickGen(4) scale
// campaign dispatch dominates both modes — so it carries its own modest
// wall-clock floor below and the allocation ceiling above.
const persistUnitSpeedupFloor = 3.0

// persistFarmSpeedupFloor bounds the end-to-end eight-worker run: persist
// must never be slower than clone-per-shard, and on the machine that set
// the ceilings it is ~1.3x faster (the ~40% allocation cut is the bigger
// effect at this campaign scale; see docs/performance.md).
const persistFarmSpeedupFloor = 1.1

type output struct {
	GeneratedBy string             `json:"generated_by"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	Benchmarks  map[string]*result `json:"benchmarks"`
	// DispatchTelemetryDelta is instrumented/uninstrumented - 1 for the
	// single-dispatch hot path.
	DispatchTelemetryDelta        float64 `json:"dispatch_telemetry_delta"`
	DispatchTelemetryDeltaCeiling float64 `json:"dispatch_telemetry_delta_ceiling"`
	// DispatchRecorderDelta is recorder-on/recorder-off - 1 for the same
	// path (the flight recorder's marginal cost).
	DispatchRecorderDelta        float64 `json:"dispatch_recorder_delta"`
	DispatchRecorderDeltaCeiling float64 `json:"dispatch_recorder_delta_ceiling"`
	// DispatchFaultDelta is fault-hooks-attached/detached - 1 for the same
	// path (the dormant fault engine's marginal cost).
	DispatchFaultDelta        float64 `json:"dispatch_fault_delta"`
	DispatchFaultDeltaCeiling float64 `json:"dispatch_fault_delta_ceiling"`
	// FarmSnapshotSpeedup is FreshBoot ns/op over Snapshot ns/op for the
	// eight-worker farm benchmark pair.
	FarmSnapshotSpeedup      float64 `json:"farm_snapshot_speedup"`
	FarmSnapshotSpeedupFloor float64 `json:"farm_snapshot_speedup_floor"`
	// FarmPersistSpeedup is UnitClone ns/op over UnitReset ns/op: the
	// per-campaign-unit cost ratio of clone-per-execution versus the
	// persistent executor's reset-in-place, measured on the oracle-shaped
	// unit where provisioning dominates.
	FarmPersistSpeedup      float64 `json:"farm_persist_speedup"`
	FarmPersistSpeedupFloor float64 `json:"farm_persist_speedup_floor"`
	// Farm8PersistSpeedup is Farm8Snapshot ns/op over Farm8Persist ns/op:
	// the end-to-end eight-worker ratio at QuickGen(4) campaign scale,
	// where campaign dispatch bounds both modes.
	Farm8PersistSpeedup      float64  `json:"farm8_persist_speedup"`
	Farm8PersistSpeedupFloor float64  `json:"farm8_persist_speedup_floor"`
	Pass                     bool     `json:"pass"`
	Failures                 []string `json:"failures,omitempty"`
}

func main() {
	input := flag.String("input", "", "raw `go test -bench` output file")
	outPath := flag.String("output", "BENCH_10.json", "JSON artifact path")
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -input is required")
		os.Exit(2)
	}

	parsed, err := parseBench(*input)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	out := output{
		GeneratedBy:                   "scripts/bench.sh",
		GoVersion:                     runtime.Version(),
		GOOS:                          runtime.GOOS,
		GOARCH:                        runtime.GOARCH,
		Benchmarks:                    map[string]*result{},
		DispatchTelemetryDeltaCeiling: dispatchDeltaCeiling,
		DispatchRecorderDeltaCeiling:  recorderDeltaCeiling,
		DispatchFaultDeltaCeiling:     faultDeltaCeiling,
		FarmSnapshotSpeedupFloor:      farmSpeedupFloor,
		FarmPersistSpeedupFloor:       persistUnitSpeedupFloor,
		Farm8PersistSpeedupFloor:      persistFarmSpeedupFloor,
		Pass:                          true,
	}

	for name, gate := range gates {
		got, ok := parsed[name]
		if !ok {
			out.fail("%s: missing from bench output", name)
			continue
		}
		r := *gate
		r.NsPerOp, r.BytesPerOp, r.AllocsPerOp = got.NsPerOp, got.BytesPerOp, got.AllocsPerOp
		out.Benchmarks[name] = &r
		if r.CeilingNs > 0 && r.NsPerOp > r.CeilingNs {
			out.fail("%s: %.1f ns/op exceeds ceiling %.1f", name, r.NsPerOp, r.CeilingNs)
		}
		if gate.CeilingAllocs > 0 && r.AllocsPerOp > gate.CeilingAllocs {
			out.fail("%s: %.2f allocs/op exceeds ceiling %.2f", name, r.AllocsPerOp, gate.CeilingAllocs)
		}
		// A zero alloc ceiling (expressed as 0.1 to tolerate sampled spans)
		// is handled by the general case above.
	}

	inst, okA := parsed["BenchmarkDispatchNoEffect"]
	bare, okB := parsed["BenchmarkDispatchNoTelemetry"]
	if okA && okB && bare.NsPerOp > 0 {
		out.DispatchTelemetryDelta = round4(inst.NsPerOp/bare.NsPerOp - 1)
		if out.DispatchTelemetryDelta > dispatchDeltaCeiling {
			out.fail("dispatch telemetry delta %.1f%% exceeds %.0f%%",
				out.DispatchTelemetryDelta*100, dispatchDeltaCeiling*100)
		}
	}

	recOn, okR := parsed["BenchmarkDispatchRecorder"]
	if okA && okR && inst.NsPerOp > 0 {
		out.DispatchRecorderDelta = round4(recOn.NsPerOp/inst.NsPerOp - 1)
		if out.DispatchRecorderDelta > recorderDeltaCeiling {
			out.fail("dispatch recorder delta %.1f%% exceeds %.0f%%",
				out.DispatchRecorderDelta*100, recorderDeltaCeiling*100)
		}
	}

	hooks, okH := parsed["BenchmarkDispatchFaultHooks"]
	if okA && okH && inst.NsPerOp > 0 {
		out.DispatchFaultDelta = round4(hooks.NsPerOp/inst.NsPerOp - 1)
		if out.DispatchFaultDelta > faultDeltaCeiling {
			out.fail("dispatch fault-hook delta %.1f%% exceeds %.0f%%",
				out.DispatchFaultDelta*100, faultDeltaCeiling*100)
		}
	}

	snapRun, okS := parsed["BenchmarkFarm8Snapshot"]
	freshRun, okF := parsed["BenchmarkFarm8FreshBoot"]
	if okS && okF && snapRun.NsPerOp > 0 {
		out.FarmSnapshotSpeedup = round4(freshRun.NsPerOp / snapRun.NsPerOp)
		if out.FarmSnapshotSpeedup < farmSpeedupFloor {
			out.fail("farm snapshot speedup %.2fx below the %.1fx floor",
				out.FarmSnapshotSpeedup, farmSpeedupFloor)
		}
	}

	unitClone, okC := parsed["BenchmarkUnitClone"]
	unitReset, okU := parsed["BenchmarkUnitReset"]
	if okC && okU && unitReset.NsPerOp > 0 {
		out.FarmPersistSpeedup = round4(unitClone.NsPerOp / unitReset.NsPerOp)
		if out.FarmPersistSpeedup < persistUnitSpeedupFloor {
			out.fail("farm persist per-unit speedup %.2fx below the %.1fx floor",
				out.FarmPersistSpeedup, persistUnitSpeedupFloor)
		}
	}

	persistRun, okP := parsed["BenchmarkFarm8Persist"]
	if okS && okP && persistRun.NsPerOp > 0 {
		out.Farm8PersistSpeedup = round4(snapRun.NsPerOp / persistRun.NsPerOp)
		if out.Farm8PersistSpeedup < persistFarmSpeedupFloor {
			out.fail("farm8 persist speedup %.2fx below the %.2fx floor",
				out.Farm8PersistSpeedup, persistFarmSpeedupFloor)
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	if !out.Pass {
		for _, f := range out.Failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmarks within ceilings; telemetry delta %.1f%%; recorder delta %.1f%%; fault-hook delta %.1f%%; farm snapshot speedup %.2fx; persist per-unit speedup %.2fx; farm8 persist speedup %.2fx\n",
		len(out.Benchmarks), out.DispatchTelemetryDelta*100, out.DispatchRecorderDelta*100, out.DispatchFaultDelta*100, out.FarmSnapshotSpeedup, out.FarmPersistSpeedup, out.Farm8PersistSpeedup)
}

func (o *output) fail(format string, args ...any) {
	o.Pass = false
	o.Failures = append(o.Failures, fmt.Sprintf(format, args...))
}

// parseBench extracts per-benchmark minima from raw `go test -bench` text.
func parseBench(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]*result{}
	// go test prints the benchmark name first and the result columns only
	// after the run finishes, so a benchmark that logs to stdout mid-run
	// (the ring-full warning) tears its line apart: remember the last seen
	// name and accept a bare "iterations ns ns/op ..." continuation for it.
	pending := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if strings.HasPrefix(fields[0], "Benchmark") && len(fields[0]) > len("Benchmark") {
			name := fields[0]
			if i := strings.LastIndexByte(name, '-'); i > 0 {
				if _, err := strconv.Atoi(name[i+1:]); err == nil {
					name = name[:i]
				}
			}
			if len(fields) >= 4 && fields[3] == "ns/op" {
				record(out, name, fields[1:])
				pending = ""
			} else {
				pending = name
			}
			continue
		}
		if pending != "" && len(fields) >= 3 && fields[2] == "ns/op" {
			record(out, pending, fields)
			pending = ""
		}
	}
	for _, r := range out {
		if math.IsInf(r.BytesPerOp, 1) {
			r.BytesPerOp = 0
		}
		if math.IsInf(r.AllocsPerOp, 1) {
			r.AllocsPerOp = 0
		}
	}
	return out, sc.Err()
}

// record folds one "iterations ns ns/op [bytes B/op allocs allocs/op]"
// field list into the per-benchmark minima.
func record(out map[string]*result, name string, fields []string) {
	ns, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return
	}
	r := out[name]
	if r == nil {
		r = &result{NsPerOp: math.Inf(1), BytesPerOp: math.Inf(1), AllocsPerOp: math.Inf(1)}
		out[name] = r
	}
	r.NsPerOp = math.Min(r.NsPerOp, ns)
	for i := 3; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			r.BytesPerOp = math.Min(r.BytesPerOp, v)
		case "allocs/op":
			r.AllocsPerOp = math.Min(r.AllocsPerOp, v)
		}
	}
}

func round4(f float64) float64 { return math.Round(f*1e4) / 1e4 }
