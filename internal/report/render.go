// Package report renders the reproduced tables and figures as text, in the
// same structure the paper presents them. cmd/report and EXPERIMENTS.md are
// generated through these renderers.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/experiments"
	"repro/internal/manifest"
)

// table is a minimal text-table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

func pct(f float64) string  { return fmt.Sprintf("%.1f%%", 100*f) }
func pct0(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

// TableI renders the fuzz intent campaign definitions.
func TableI(rows []experiments.TableIRow) string {
	t := &table{header: []string{"Campaign", "Formula", "Per Component", "Projected Total", "Example"}}
	for _, r := range rows {
		t.add(r.Name, r.CountFormula,
			fmt.Sprintf("%d", r.PerComponent),
			fmt.Sprintf("%d", r.ProjectedTotal),
			r.Example)
	}
	return "TABLE I: FUZZ INTENT CAMPAIGNS\n" + t.String()
}

// TableII renders the application population statistics.
func TableII(rows []experiments.TableIIRow) string {
	t := &table{header: []string{"Category", "Classification", "#", "# Activities", "# Services"}}
	var apps, acts, svcs int
	for _, r := range rows {
		t.add(r.Category.String(), r.Origin.String(),
			fmt.Sprintf("%d", r.Apps), fmt.Sprintf("%d", r.Activities), fmt.Sprintf("%d", r.Services))
		apps += r.Apps
		acts += r.Activities
		svcs += r.Services
	}
	t.add("Total", "", fmt.Sprintf("%d", apps), fmt.Sprintf("%d", acts), fmt.Sprintf("%d", svcs))
	return "TABLE II: APPLICATION STATS\n" + t.String()
}

// TableIII renders the per-campaign behaviour distribution.
func TableIII(rows []experiments.TableIIIRow) string {
	t := &table{header: []string{
		"Campaign",
		"Reboot H", "Reboot NH",
		"Crash H", "Crash NH",
		"Hang H", "Hang NH",
		"NoEffect H", "NoEffect NH",
	}}
	for _, r := range rows {
		t.add(r.Campaign.Name(),
			pct0(r.Health.Reboot), pct0(r.NotHealth.Reboot),
			pct0(r.Health.Crash), pct0(r.NotHealth.Crash),
			pct0(r.Health.Hang), pct0(r.NotHealth.Hang),
			pct0(r.Health.NoEffect), pct0(r.NotHealth.NoEffect))
	}
	return "TABLE III: DISTRIBUTION OF BEHAVIORS AMONG FUZZ INTENT CAMPAIGNS\n" +
		"(H = Health/Fitness, NH = Not Health/Fitness; app-level, most severe)\n" + t.String()
}

// TableIV renders the phone crash distribution.
func TableIV(rows []experiments.TableIVRow, others experiments.TableIVRow, total int) string {
	t := &table{header: []string{"Exception", "#Crashes", "%"}}
	for _, r := range rows {
		t.add(string(r.Class), fmt.Sprintf("%d", r.Crashes), pct(r.Share))
	}
	t.add("Others", fmt.Sprintf("%d", others.Crashes), pct(others.Share))
	t.add("Total", fmt.Sprintf("%d", total), "100.0%")
	return "TABLE IV: DISTRIBUTION OF CRASHES ON ANDROID PHONE PER EXCEPTION TYPE\n" + t.String()
}

// TableV renders the QGJ-UI results.
func TableV(rows []experiments.TableVRow) string {
	t := &table{header: []string{"Experiment", "#Injected Events", "Exceptions Raised", "Crashes"}}
	for _, r := range rows {
		t.add(r.Experiment,
			fmt.Sprintf("%d", r.InjectedEvents),
			fmt.Sprintf("%d (%.1f%%)", r.Exceptions, 100*r.ExceptionRate),
			fmt.Sprintf("%d (%.2f%%)", r.Crashes, 100*r.CrashRate))
	}
	return "TABLE V: DISTRIBUTION OF EXCEPTIONS AND CRASHES DURING QGJ-UI EXPERIMENTS\n" + t.String()
}

// FaultTable renders the fault-injection resilience roll-up (campaign F):
// one row per (fault kind, app) with the per-verdict window counts and the
// graceful-degradation score.
func FaultTable(rows []experiments.FaultResilienceRow) string {
	t := &table{header: []string{
		"Fault", "App", "Windows", "Recovered", "Stall", "Silent Drop", "Failed", "Score",
	}}
	for _, r := range rows {
		t.add(r.Fault, r.App,
			fmt.Sprintf("%d", r.Windows),
			fmt.Sprintf("%d", r.Degraded),
			fmt.Sprintf("%d", r.Stalls),
			fmt.Sprintf("%d", r.SilentDrops),
			fmt.Sprintf("%d", r.FailedRecoveries),
			fmt.Sprintf("%.2f", r.Score))
	}
	return "FAULT RESILIENCE: GRACEFUL-DEGRADATION SCORE PER (FAULT, APP)\n" +
		"(1.0 = degraded and recovered visibly; 0 = subsystem never came back)\n" + t.String()
}

// bar renders a proportional ASCII bar.
func bar(share float64, width int) string {
	n := int(share*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Fig2 renders the uncaught-exception distribution grouped by component
// type.
func Fig2(s experiments.Fig2Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 2: DISTRIBUTION OF UNCAUGHT EXCEPTION TYPES BY COMPONENT TYPE\n")
	fmt.Fprintf(&sb, "(SecurityException excluded from bars; it accounts for %.1f%% of all exceptions)\n\n",
		100*s.SecurityShare)
	types := make([]string, 0, len(s.ByType))
	for ty := range s.ByType {
		types = append(types, ty)
	}
	sort.Strings(types)
	for _, ty := range types {
		counts := s.ByType[ty]
		total := 0
		for _, cc := range counts {
			total += cc.Count
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%s components (%d exception-component pairs):\n", ty, total)
		for _, cc := range counts {
			share := 0.0
			if total > 0 {
				share = float64(cc.Count) / float64(total)
			}
			fmt.Fprintf(&sb, "  %-52s %4d  %-25s %s\n",
				cc.Class.Simple(), cc.Count, bar(share, 25), pct(share))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Fig3a renders the manifestation distribution over components.
func Fig3a(counts map[analysis.Manifestation]int) string {
	total := 0
	for _, n := range counts {
		total += n
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "FIG 3a: DISTRIBUTION OF ERROR MANIFESTATIONS OVER %d COMPONENTS\n", total)
	for _, m := range []analysis.Manifestation{
		analysis.ManifestNoEffect, analysis.ManifestUnresponsive,
		analysis.ManifestCrash, analysis.ManifestReboot,
	} {
		n := counts[m]
		share := 0.0
		if total > 0 {
			share = float64(n) / float64(total)
		}
		fmt.Fprintf(&sb, "  (%d) %-14s %4d  %-30s %s\n",
			int(m), m.String(), n, bar(share, 30), pct(share))
	}
	return sb.String()
}

// Fig3b renders the blamed-exception distribution per manifestation.
func Fig3b(blame map[analysis.Manifestation][]analysis.BlameShare,
	counts map[analysis.Manifestation]int) string {
	var sb strings.Builder
	sb.WriteString("FIG 3b: DISTRIBUTION OF EXCEPTIONS BY MANIFESTATION\n")
	for _, m := range []analysis.Manifestation{
		analysis.ManifestNoEffect, analysis.ManifestUnresponsive,
		analysis.ManifestCrash, analysis.ManifestReboot,
	} {
		shares, ok := blame[m]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "\n%s (%d components):\n", m.String(), counts[m])
		for _, s := range shares {
			name := s.Class.Simple()
			if s.Class == analysis.NoExceptionClass {
				name = "(no exception)"
			}
			fmt.Fprintf(&sb, "  %-52s %-25s %s\n", name, bar(s.Share, 25), pct(s.Share))
		}
	}
	return sb.String()
}

// Fig4 renders the crash comparison by app classification.
func Fig4(s experiments.Fig4Series) string {
	var sb strings.Builder
	sb.WriteString("FIG 4: CRASH-CAUSING EXCEPTIONS BY APP CLASSIFICATION\n")
	for _, origin := range []manifest.Origin{manifest.BuiltIn, manifest.ThirdParty} {
		fmt.Fprintf(&sb, "\n%s apps — %s reported crashes:\n",
			origin.String(), pct0(s.CrashAppRate[origin]))
		for _, cc := range s.ClassCounts[origin] {
			fmt.Fprintf(&sb, "  %-52s %d app(s)\n", cc.Class.Simple(), cc.Count)
		}
	}
	return sb.String()
}
