package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/uifuzz"
)

// JSON export of the study artifacts, for downstream tooling (plotting,
// regression dashboards). The schema is stable: field names are part of
// the contract and covered by tests.

// StudyExport is the serialized form of one campaign study.
type StudyExport struct {
	Fleet     string              `json:"fleet"`
	Seed      uint64              `json:"seed"`
	Sent      int                 `json:"intentsSent"`
	Reboots   int                 `json:"reboots"`
	Campaigns []CampaignExport    `json:"campaigns"`
	Combined  CombinedExport      `json:"combined"`
	TableIII  []TableIIIExportRow `json:"tableIII"`
	TableIV   []TableIVExportRow  `json:"tableIV"`
	Fig3a     map[string]int      `json:"fig3a"`
	Fig4      map[string]float64  `json:"fig4CrashAppRate"`
	Reboot    []string            `json:"rebootComponents"`
	// Telemetry embeds the device's metric snapshot at export time, so a run
	// artifact carries its own instrumentation (counters, gauges, histogram
	// quantiles) next to the paper tables.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Sharding records how a farm-backed run executed (absent for serial
	// runs).
	Sharding *ShardingExport `json:"sharding,omitempty"`
	// Triage lists deduplicated crash signatures (farm runs only).
	Triage *TriageExport `json:"triage,omitempty"`
	// FaultResilience is the graded fault-injection table (FIC F runs only):
	// one row per (fault kind, app) with a graceful-degradation score.
	FaultResilience []FaultResilienceExportRow `json:"faultResilience,omitempty"`
}

// FaultResilienceExportRow serializes one fault-resilience row.
type FaultResilienceExportRow struct {
	Fault            string  `json:"fault"`
	App              string  `json:"app"`
	Windows          int     `json:"windows"`
	Degraded         int     `json:"degradedRecovered,omitempty"`
	Stalls           int     `json:"stalls,omitempty"`
	SilentDrops      int     `json:"silentDrops,omitempty"`
	FailedRecoveries int     `json:"failedRecoveries,omitempty"`
	Score            float64 `json:"score"`
}

// ShardingExport describes the farm execution of a study.
type ShardingExport struct {
	Workers    int    `json:"workers"`
	Shards     int    `json:"shards"`
	Resumed    int    `json:"resumed,omitempty"`
	Checkpoint string `json:"checkpoint,omitempty"`
}

// TriageExport is the deduplicated failure roll-up.
type TriageExport struct {
	RawCrashes int                  `json:"rawCrashes"`
	RawANRs    int                  `json:"rawANRs,omitempty"`
	RawFaults  int                  `json:"rawFaultVerdicts,omitempty"`
	Unique     int                  `json:"uniqueSignatures"`
	Buckets    []TriageBucketExport `json:"buckets"`
}

// TriageBucketExport is one unique failure signature.
type TriageBucketExport struct {
	Hash string `json:"hash"`
	// Kind distinguishes crash buckets from ANR buckets; empty means crash
	// (the historical default).
	Kind  string `json:"kind,omitempty"`
	Count int    `json:"count"`
	Class string `json:"class"`
	Frame string `json:"frame,omitempty"`
	// Exemplar is the first crashing intent observed for this bucket;
	// Minimized is its greedy reduction. Both render via intent.String.
	Exemplar   string `json:"exemplar,omitempty"`
	Minimized  string `json:"minimized,omitempty"`
	Reproduced bool   `json:"reproduced"`
	Trials     int    `json:"minimizerTrials,omitempty"`
	// Trace and Flight are the flight-recorder forensics attached to the
	// bucket's exemplar: the campaign/package trace ID and the window of
	// structured events that ended at the failure.
	Trace  string            `json:"trace,omitempty"`
	Flight []telemetry.Event `json:"flight,omitempty"`
}

// CampaignExport summarizes one campaign.
type CampaignExport struct {
	Campaign string `json:"campaign"`
	Sent     int    `json:"sent"`
	Crashes  int    `json:"crashEvents"`
	ANRs     int    `json:"anrEvents"`
	Security int    `json:"securityEvents"`
	Reboots  int    `json:"reboots"`
}

// CombinedExport carries the merged figures' raw series.
type CombinedExport struct {
	SecurityShare float64            `json:"securityShare"`
	Uncaught      []ClassCountExport `json:"uncaughtClasses"`
	CrashClasses  []ClassCountExport `json:"crashClasses"`
}

// ClassCountExport is one (class, count) pair.
type ClassCountExport struct {
	Class string `json:"class"`
	Count int    `json:"count"`
}

// TableIIIExportRow serializes one Table III row.
type TableIIIExportRow struct {
	Campaign string  `json:"campaign"`
	Category string  `json:"category"`
	Reboot   float64 `json:"reboot"`
	Crash    float64 `json:"crash"`
	Hang     float64 `json:"hang"`
	NoEffect float64 `json:"noEffect"`
}

// TableIVExportRow serializes one Table IV row.
type TableIVExportRow struct {
	Class   string  `json:"class"`
	Crashes int     `json:"crashes"`
	Share   float64 `json:"share"`
}

// ExportStudy converts a study result into its export form.
func ExportStudy(sr *experiments.StudyResult, seed uint64) StudyExport {
	out := StudyExport{
		Fleet:   sr.Fleet.Kind.String(),
		Seed:    seed,
		Sent:    sr.Sent,
		Reboots: sr.Reboots(),
		Fig3a:   map[string]int{},
		Fig4:    map[string]float64{},
	}
	if sr.Device != nil {
		if reg := sr.Device.Telemetry(); reg != nil {
			snap := reg.Snapshot()
			out.Telemetry = &snap
		}
	}
	if sr.Sharding != nil {
		out.Sharding = &ShardingExport{
			Workers:    sr.Sharding.Workers,
			Shards:     sr.Sharding.Shards,
			Resumed:    sr.Sharding.Resumed,
			Checkpoint: sr.Sharding.Checkpoint,
		}
	}
	if sr.Triage != nil {
		out.Triage = &TriageExport{
			RawCrashes: sr.Triage.Crashes,
			RawANRs:    sr.Triage.ANRs,
			RawFaults:  sr.Triage.Faults,
			Unique:     sr.Triage.Unique(),
		}
		for _, b := range sr.Triage.Buckets {
			be := TriageBucketExport{
				Hash:       fmt.Sprintf("%016x", b.Hash),
				Kind:       b.Kind,
				Count:      b.Count,
				Class:      b.Class,
				Frame:      b.Frame,
				Reproduced: b.Reproduced,
				Trials:     b.Trials,
			}
			if b.Exemplar != nil {
				be.Trace = b.Exemplar.Trace
				be.Flight = b.Exemplar.Flight
			}
			if b.Exemplar != nil && b.Exemplar.Intent != nil {
				be.Exemplar = b.Exemplar.Intent.String()
			}
			if b.Minimized != nil {
				be.Minimized = b.Minimized.String()
			}
			out.Triage.Buckets = append(out.Triage.Buckets, be)
		}
	}
	for _, c := range sr.Campaigns {
		out.Campaigns = append(out.Campaigns, CampaignExport{
			Campaign: c.Campaign.Letter(),
			Sent:     c.Sent,
			Crashes:  c.Report.CrashEvents,
			ANRs:     c.Report.ANREvents,
			Security: c.Report.SecurityEvents,
			Reboots:  len(c.Report.RebootTimes),
		})
	}
	out.Combined.SecurityShare = sr.Combined.SecurityShare()
	for _, cc := range sr.Combined.UncaughtClassDistribution(false) {
		out.Combined.Uncaught = append(out.Combined.Uncaught,
			ClassCountExport{Class: string(cc.Class), Count: cc.Count})
	}
	for _, cc := range sr.Combined.CrashClassTotals() {
		out.Combined.CrashClasses = append(out.Combined.CrashClasses,
			ClassCountExport{Class: string(cc.Class), Count: cc.Count})
	}
	for _, row := range experiments.TableIII(sr) {
		out.TableIII = append(out.TableIII,
			TableIIIExportRow{
				Campaign: row.Campaign.Letter(), Category: "Health/Fitness",
				Reboot: row.Health.Reboot, Crash: row.Health.Crash,
				Hang: row.Health.Hang, NoEffect: row.Health.NoEffect,
			},
			TableIIIExportRow{
				Campaign: row.Campaign.Letter(), Category: "Not Health/Fitness",
				Reboot: row.NotHealth.Reboot, Crash: row.NotHealth.Crash,
				Hang: row.NotHealth.Hang, NoEffect: row.NotHealth.NoEffect,
			})
	}
	rows, others, _ := experiments.TableIV(sr)
	for _, r := range rows {
		out.TableIV = append(out.TableIV,
			TableIVExportRow{Class: string(r.Class), Crashes: r.Crashes, Share: r.Share})
	}
	if others.Crashes > 0 {
		out.TableIV = append(out.TableIV,
			TableIVExportRow{Class: "Others", Crashes: others.Crashes, Share: others.Share})
	}
	for m, n := range experiments.Fig3a(sr) {
		out.Fig3a[m.String()] = n
	}
	for origin, rate := range experiments.Fig4(sr).CrashAppRate {
		out.Fig4[origin.String()] = rate
	}
	for _, cn := range experiments.RebootComponents(sr) {
		out.Reboot = append(out.Reboot, cn.FlattenToString())
	}
	for _, r := range experiments.FaultResilience(sr) {
		out.FaultResilience = append(out.FaultResilience, FaultResilienceExportRow{
			Fault: r.Fault, App: r.App, Windows: r.Windows,
			Degraded: r.Degraded, Stalls: r.Stalls,
			SilentDrops: r.SilentDrops, FailedRecoveries: r.FailedRecoveries,
			Score: r.Score,
		})
	}
	return out
}

// UIExport serializes a QGJ-UI study.
type UIExport struct {
	Rows []UIExportRow `json:"rows"`
}

// UIExportRow is one Table V row.
type UIExportRow struct {
	Experiment    string  `json:"experiment"`
	Injected      int     `json:"injectedEvents"`
	Exceptions    int     `json:"exceptionsRaised"`
	ExceptionRate float64 `json:"exceptionRate"`
	Crashes       int     `json:"crashes"`
	CrashRate     float64 `json:"crashRate"`
	SystemCrashes int     `json:"systemCrashes"`
}

// ExportUI converts a UI study into its export form.
func ExportUI(res *experiments.UIStudyResult) UIExport {
	row := func(o uifuzz.Outcome) UIExportRow {
		return UIExportRow{
			Experiment:    o.Mode.String(),
			Injected:      o.Injected,
			Exceptions:    o.ExceptionsRaised,
			ExceptionRate: o.ExceptionRate(),
			Crashes:       o.Crashes,
			CrashRate:     o.CrashRate(),
			SystemCrashes: o.SystemCrashes,
		}
	}
	return UIExport{Rows: []UIExportRow{row(res.SemiValid), row(res.Random)}}
}

// WriteJSON streams v as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("encode report JSON: %w", err)
	}
	return nil
}
