package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

func TestExportStudyShape(t *testing.T) {
	sr := quickStudy(t)
	exp := ExportStudy(sr, 1)
	if exp.Fleet != "wear" || exp.Seed != 1 {
		t.Fatalf("header = %+v", exp)
	}
	if len(exp.Campaigns) != 4 {
		t.Fatalf("campaigns = %d", len(exp.Campaigns))
	}
	sent := 0
	for _, c := range exp.Campaigns {
		sent += c.Sent
	}
	if sent != exp.Sent {
		t.Fatalf("campaign sent sum %d != total %d", sent, exp.Sent)
	}
	if len(exp.TableIII) != 8 { // 4 campaigns x 2 categories
		t.Fatalf("tableIII rows = %d", len(exp.TableIII))
	}
	if exp.Combined.SecurityShare <= 0 {
		t.Fatal("security share missing")
	}
	if len(exp.Fig3a) == 0 || len(exp.Fig4) == 0 {
		t.Fatal("figure series missing")
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	sr := quickStudy(t)
	exp := ExportStudy(sr, 1)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, exp); err != nil {
		t.Fatal(err)
	}
	var back StudyExport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Fleet != exp.Fleet || back.Sent != exp.Sent || len(back.Campaigns) != len(exp.Campaigns) {
		t.Fatalf("round trip diverged: %+v vs %+v", back, exp)
	}
	// Schema stability: the field names downstream tooling depends on.
	for _, key := range []string{`"fleet"`, `"intentsSent"`, `"tableIII"`, `"fig3a"`, `"fig4CrashAppRate"`, `"securityShare"`} {
		if !bytes.Contains(buf.Bytes(), []byte(key)) {
			t.Errorf("JSON missing key %s", key)
		}
	}
}

func TestExportUIShape(t *testing.T) {
	res, err := experiments.RunUIStudy(experiments.UIOptions{Seed: 1, Events: 800})
	if err != nil {
		t.Fatal(err)
	}
	exp := ExportUI(res)
	if len(exp.Rows) != 2 {
		t.Fatalf("rows = %d", len(exp.Rows))
	}
	if exp.Rows[0].Experiment != "Semi-valid" || exp.Rows[1].Experiment != "Random" {
		t.Fatalf("row order = %+v", exp.Rows)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, exp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"injectedEvents": 800`)) {
		t.Errorf("UI JSON missing event count:\n%s", buf.String())
	}
}
