package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/javalang"
	"repro/internal/manifest"
)

func quickStudy(t *testing.T) *experiments.StudyResult {
	t.Helper()
	sr, err := experiments.RunWearStudy(experiments.Options{
		Seed: 1,
		Gen:  experiments.QuickGen(6),
		Packages: []string{
			"com.google.android.apps.fitness",
			"com.whatsapp.wear",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestTableIRendering(t *testing.T) {
	out := TableI(experiments.TableI(core.GeneratorConfig{}, 912))
	for _, want := range []string{
		"TABLE I", "A: Semi-valid Action and Data", "B: Blank Action or Data",
		"C: Random Action or Data", "D: Random Extras", "|Action| x |TypeOf(Data)|",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIRendering(t *testing.T) {
	sr := quickStudy(t)
	out := TableII(experiments.TableII(sr.Fleet))
	for _, want := range []string{"Health/Fitness", "Built-in", "Third Party", "46", "514", "398", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIIRendering(t *testing.T) {
	sr := quickStudy(t)
	out := TableIII(experiments.TableIII(sr))
	for _, want := range []string{"TABLE III", "Campaign", "Reboot", "Crash", "Hang", "NoEffect"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
	if strings.Count(out, "A: Semi-valid") != 1 {
		t.Error("campaign A row missing")
	}
}

func TestTableIVRendering(t *testing.T) {
	rows := []experiments.TableIVRow{
		{Class: javalang.ClassNullPointer, Crashes: 54, Share: 0.309},
		{Class: javalang.ClassClassNotFound, Crashes: 46, Share: 0.263},
	}
	out := TableIV(rows, experiments.TableIVRow{Class: "Others", Crashes: 12, Share: 0.069}, 175)
	for _, want := range []string{"TABLE IV", "NullPointerException", "54", "30.9%", "Others", "175"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q:\n%s", want, out)
		}
	}
}

func TestTableVRendering(t *testing.T) {
	rows := []experiments.TableVRow{
		{Experiment: "Semi-valid", InjectedEvents: 41405, Exceptions: 1496, ExceptionRate: 0.036, Crashes: 22, CrashRate: 0.0005},
		{Experiment: "Random", InjectedEvents: 41405, Exceptions: 615, ExceptionRate: 0.015, Crashes: 0, CrashRate: 0},
	}
	out := TableV(rows)
	for _, want := range []string{"TABLE V", "Semi-valid", "41405", "1496 (3.6%)", "22", "Random", "0 (0.00%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table V missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderings(t *testing.T) {
	sr := quickStudy(t)
	f2 := Fig2(experiments.Fig2(sr))
	if !strings.Contains(f2, "FIG 2") || !strings.Contains(f2, "SecurityException excluded") {
		t.Errorf("Fig 2 header broken:\n%s", f2)
	}
	f3a := Fig3a(experiments.Fig3a(sr))
	for _, want := range []string{"FIG 3a", "No Effect", "Unresponsive", "Crash", "Reboot"} {
		if !strings.Contains(f3a, want) {
			t.Errorf("Fig 3a missing %q", want)
		}
	}
	f3b := Fig3b(experiments.Fig3b(sr), experiments.Fig3a(sr))
	if !strings.Contains(f3b, "FIG 3b") {
		t.Error("Fig 3b header missing")
	}
	f4 := Fig4(experiments.Fig4(sr))
	for _, want := range []string{"FIG 4", "Built-in", "Third Party", "reported crashes"} {
		if !strings.Contains(f4, want) {
			t.Errorf("Fig 4 missing %q", want)
		}
	}
}

func TestBarClamping(t *testing.T) {
	if got := bar(2.0, 10); got != strings.Repeat("#", 10) {
		t.Errorf("bar(2.0) = %q", got)
	}
	if got := bar(0, 10); got != "" {
		t.Errorf("bar(0) = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := &table{header: []string{"A", "LongHeader"}}
	tb.add("xxxxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[2]) {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestManifestationNamesUsedInFigures(t *testing.T) {
	counts := map[analysis.Manifestation]int{
		analysis.ManifestNoEffect: 10,
		analysis.ManifestCrash:    2,
	}
	out := Fig3a(counts)
	if !strings.Contains(out, "12 COMPONENTS") {
		t.Errorf("Fig 3a total wrong:\n%s", out)
	}
}

func TestFig4OriginsOrdered(t *testing.T) {
	s := experiments.Fig4Series{
		CrashAppRate: map[manifest.Origin]float64{manifest.BuiltIn: 0.64, manifest.ThirdParty: 0.46},
		ClassCounts:  map[manifest.Origin][]analysis.ClassCount{},
	}
	out := Fig4(s)
	bi := strings.Index(out, "Built-in")
	tp := strings.Index(out, "Third Party")
	if bi < 0 || tp < 0 || bi > tp {
		t.Errorf("Fig 4 origin order broken:\n%s", out)
	}
}
