// Package gfit is the simulated Google Fit API facade. Most Health/Fitness
// Wear apps reach sensors through Google Fit rather than SensorManager, so
// the paper hypothesizes that health apps "are susceptible to propagation
// errors from the Google Fit API" (Section III-C). This facade sits between
// health apps and the sensor service, and can be configured to propagate
// failures upward so the experiments can test that hypothesis.
package gfit

import (
	"sync"

	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/sensors"
)

// Client is the per-app Google Fit handle.
type Client struct {
	mu      sync.Mutex
	app     string
	svc     *sensors.Service
	log     *logcat.Logger
	pid     int
	session bool
	// faultRate in [0,1] injects spurious internal errors, used by failure
	// injection tests; 0 in normal operation.
	faultRate float64
	faultSeq  uint64
}

// NewClient returns a Google Fit client for the named app.
func NewClient(app string, pid int, svc *sensors.Service, log *logcat.Logger) *Client {
	return &Client{app: app, pid: pid, svc: svc, log: log}
}

// SetFaultRate configures the internal fault injection rate (deterministic:
// every k-th call fails when faultRate = 1/k).
func (c *Client) SetFaultRate(rate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faultRate = rate
}

func (c *Client) injectedFault() *javalang.Throwable {
	if c.faultRate <= 0 {
		return nil
	}
	c.faultSeq++
	period := uint64(1 / c.faultRate)
	if period == 0 {
		period = 1
	}
	if c.faultSeq%period == 0 {
		return javalang.New(javalang.ClassIllegalState,
			"Fitness client disconnected; call connect() before requesting data")
	}
	return nil
}

// StartSession begins a recording session, registering the app for the
// heart-rate and step sensors. Errors from the sensor layer propagate to
// the caller — this is exactly the propagation path the paper probes.
func (c *Client) StartSession() *javalang.Throwable {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.session {
		return javalang.New(javalang.ClassIllegalState, "session already started")
	}
	if thr := c.injectedFault(); thr != nil {
		return thr
	}
	for _, t := range []sensors.Type{sensors.HeartRate, sensors.StepCounter} {
		if thr := c.svc.Register("gfit:"+c.app, t); thr != nil {
			c.log.Log(c.pid, c.pid, logcat.Warn, logcat.TagGoogleFit,
				"startSession failed for %s: %s", c.app, thr.Error())
			// Wrap the sensor failure the way the Fit client surfaces it.
			return javalang.New(javalang.ClassRuntime,
				"Fitness.SensorsApi error").WithCause(thr)
		}
	}
	c.session = true
	c.log.Log(c.pid, c.pid, logcat.Info, logcat.TagGoogleFit,
		"recording session started for %s", c.app)
	return nil
}

// StopSession ends the session.
func (c *Client) StopSession() *javalang.Throwable {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.session {
		return javalang.New(javalang.ClassIllegalState, "no session in progress")
	}
	c.svc.Unregister("gfit:" + c.app)
	c.session = false
	return nil
}

// InSession reports whether a recording session is active.
func (c *Client) InSession() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// ReadDailySteps returns the step total for the day. It requires an active
// session and a live sensor service.
func (c *Client) ReadDailySteps() (int, *javalang.Throwable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.session {
		return 0, javalang.New(javalang.ClassIllegalState, "no session in progress")
	}
	if thr := c.injectedFault(); thr != nil {
		return 0, thr
	}
	v, thr := c.svc.Read("gfit:"+c.app, sensors.StepCounter)
	if thr != nil {
		return 0, javalang.New(javalang.ClassRuntime, "Fitness.HistoryApi error").WithCause(thr)
	}
	return int(v), nil
}

// ReadHeartRate returns the current heart-rate sample.
func (c *Client) ReadHeartRate() (float64, *javalang.Throwable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.session {
		return 0, javalang.New(javalang.ClassIllegalState, "no session in progress")
	}
	if thr := c.injectedFault(); thr != nil {
		return 0, thr
	}
	v, thr := c.svc.Read("gfit:"+c.app, sensors.HeartRate)
	if thr != nil {
		return 0, javalang.New(javalang.ClassRuntime, "Fitness.SensorsApi error").WithCause(thr)
	}
	return v, nil
}
