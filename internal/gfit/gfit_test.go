package gfit

import (
	"testing"
	"time"

	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/sensors"
	"repro/internal/vclock"
)

func newClient(t *testing.T) (*Client, *sensors.Service) {
	t.Helper()
	clk := vclock.NewVirtual(time.Time{})
	buf := logcat.NewBuffer(256)
	log := logcat.NewLogger(buf, clk.Now)
	svc := sensors.NewService(1199, log)
	return NewClient("com.fitwell.tracker", 2301, svc, log), svc
}

func TestSessionLifecycle(t *testing.T) {
	c, _ := newClient(t)
	if c.InSession() {
		t.Fatal("fresh client in session")
	}
	if thr := c.StartSession(); thr != nil {
		t.Fatalf("start: %v", thr)
	}
	if !c.InSession() {
		t.Fatal("not in session after start")
	}
	if thr := c.StartSession(); thr == nil || thr.Class != javalang.ClassIllegalState {
		t.Fatalf("double start: %v", thr)
	}
	if thr := c.StopSession(); thr != nil {
		t.Fatalf("stop: %v", thr)
	}
	if thr := c.StopSession(); thr == nil || thr.Class != javalang.ClassIllegalState {
		t.Fatalf("double stop: %v", thr)
	}
}

func TestReadsRequireSession(t *testing.T) {
	c, _ := newClient(t)
	if _, thr := c.ReadDailySteps(); thr == nil || thr.Class != javalang.ClassIllegalState {
		t.Fatalf("steps without session: %v", thr)
	}
	if _, thr := c.ReadHeartRate(); thr == nil || thr.Class != javalang.ClassIllegalState {
		t.Fatalf("heart rate without session: %v", thr)
	}
}

func TestReadsInSession(t *testing.T) {
	c, _ := newClient(t)
	if thr := c.StartSession(); thr != nil {
		t.Fatal(thr)
	}
	steps, thr := c.ReadDailySteps()
	if thr != nil || steps <= 0 {
		t.Fatalf("steps = %d, thr = %v", steps, thr)
	}
	hr, thr := c.ReadHeartRate()
	if thr != nil || hr <= 0 {
		t.Fatalf("hr = %v, thr = %v", hr, thr)
	}
}

func TestSensorDeathPropagatesThroughFit(t *testing.T) {
	c, svc := newClient(t)
	if thr := c.StartSession(); thr != nil {
		t.Fatal(thr)
	}
	svc.Abort(javalang.SIGABRT)
	_, thr := c.ReadHeartRate()
	if thr == nil {
		t.Fatal("read through dead sensor service succeeded")
	}
	// The Fit facade wraps the sensor failure: outer RuntimeException,
	// root cause DeadObjectException — the propagation chain the paper's
	// health-app hypothesis is about.
	if thr.Class != javalang.ClassRuntime {
		t.Fatalf("outer class = %s", thr.Class)
	}
	if root := thr.Root(); root.Class != javalang.ClassDeadObject {
		t.Fatalf("root cause = %s", root.Class)
	}
}

func TestStartSessionFailsWhenSensorsDead(t *testing.T) {
	c, svc := newClient(t)
	svc.Abort(javalang.SIGABRT)
	thr := c.StartSession()
	if thr == nil || thr.Root().Class != javalang.ClassDeadObject {
		t.Fatalf("start on dead sensors: %v", thr)
	}
	if c.InSession() {
		t.Fatal("session recorded despite failure")
	}
}

func TestFaultInjection(t *testing.T) {
	c, _ := newClient(t)
	if thr := c.StartSession(); thr != nil {
		t.Fatal(thr)
	}
	c.SetFaultRate(0.5) // every 2nd call fails deterministically
	var failures int
	for i := 0; i < 10; i++ {
		if _, thr := c.ReadDailySteps(); thr != nil {
			failures++
			if thr.Class != javalang.ClassIllegalState {
				t.Fatalf("injected fault class = %s", thr.Class)
			}
		}
	}
	if failures != 5 {
		t.Fatalf("failures = %d, want 5", failures)
	}
}
