// Package notify models the Android Wear notification surface. The paper's
// background stresses that the AW user interface is "centered on
// notifications, watch faces, native applications and voice commands"
// (Section II-B) and its related work cites Zhang & Rountev's testing of
// the AW notification mechanism. This package provides the substrate — a
// NotificationManager whose notifications carry pending-intent actions —
// plus a small mutational fuzzer over those actions, as an extension
// experiment beyond the paper's QGJ-Master/QGJ-UI pair.
package notify

import (
	"fmt"
	"sort"

	"repro/internal/intent"
	"repro/internal/logcat"
	"repro/internal/rng"
	"repro/internal/wearos"
)

// Action is one notification action button backed by a pending intent.
type Action struct {
	Title string
	// Intent fires when the user taps the action. Like a real
	// PendingIntent it is frozen at post time with the posting app's
	// identity.
	Intent *intent.Intent
}

// Notification is one posted notification.
type Notification struct {
	ID      int
	Package string
	Title   string
	Text    string
	Actions []Action
}

type notifKey struct {
	pkg string
	id  int
}

// Manager is the device's notification service.
type Manager struct {
	dev    *wearos.OS
	active map[notifKey]*Notification
	order  []notifKey
}

// NewManager returns the notification service for a device.
func NewManager(dev *wearos.OS) *Manager {
	return &Manager{dev: dev, active: make(map[notifKey]*Notification)}
}

// Post enqueues a notification. The posting package must be installed;
// actions with nil intents are rejected (the framework requires a
// PendingIntent).
func (m *Manager) Post(n Notification) error {
	if m.dev.Registry().Package(n.Package) == nil {
		return fmt.Errorf("notify: package %q not installed", n.Package)
	}
	for i, a := range n.Actions {
		if a.Intent == nil {
			return fmt.Errorf("notify: action %d of %s/%d has no pending intent", i, n.Package, n.ID)
		}
	}
	k := notifKey{pkg: n.Package, id: n.ID}
	if _, exists := m.active[k]; !exists {
		m.order = append(m.order, k)
	}
	cp := n
	cp.Actions = append([]Action(nil), n.Actions...)
	m.active[k] = &cp
	m.dev.Logger().Log(1000, 1000, logcat.Info, "NotificationService",
		"enqueue notification pkg=%s id=%d actions=%d", n.Package, n.ID, len(n.Actions))
	return nil
}

// Cancel removes a notification; it reports whether one was active.
func (m *Manager) Cancel(pkg string, id int) bool {
	k := notifKey{pkg: pkg, id: id}
	if _, ok := m.active[k]; !ok {
		return false
	}
	delete(m.active, k)
	for i, kk := range m.order {
		if kk == k {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return true
}

// Active returns the posted notifications in posting order.
func (m *Manager) Active() []Notification {
	out := make([]Notification, 0, len(m.order))
	for _, k := range m.order {
		out = append(out, *m.active[k])
	}
	return out
}

// Fire taps the actionIdx-th action of the notification: the pending
// intent dispatches through the OS with the posting app's identity.
func (m *Manager) Fire(pkg string, id, actionIdx int) (wearos.DeliveryResult, error) {
	n, ok := m.active[notifKey{pkg: pkg, id: id}]
	if !ok {
		return 0, fmt.Errorf("notify: no active notification %s/%d", pkg, id)
	}
	if actionIdx < 0 || actionIdx >= len(n.Actions) {
		return 0, fmt.Errorf("notify: notification %s/%d has no action %d", pkg, id, actionIdx)
	}
	in := n.Actions[actionIdx].Intent.Clone()
	return m.dev.StartActivity(in), nil
}

// SeedFromFleet posts one notification per installed app that has a
// launcher: a plausible "open me" notification with an action per app,
// the baseline population the fuzzer mutates.
func SeedFromFleet(m *Manager) int {
	posted := 0
	for _, p := range m.dev.Registry().Packages() {
		l := p.Launcher()
		if l == nil {
			continue
		}
		open := &intent.Intent{
			Action:    "android.intent.action.MAIN",
			Component: l.Name,
			SenderUID: wearos.UIDAppBase + 1 + posted,
		}
		open.AddCategory(intent.CategoryLauncher)
		view := open.Clone()
		view.Action = "android.intent.action.VIEW"
		view.Data = intent.SampleData("https")
		err := m.Post(Notification{
			ID:      1,
			Package: p.Name,
			Title:   p.Label,
			Text:    "You have an update",
			Actions: []Action{{Title: "Open", Intent: open}, {Title: "View", Intent: view}},
		})
		if err == nil {
			posted++
		}
	}
	return posted
}

// Mode mirrors QGJ-UI's two mutation strategies.
type Mode int

const (
	// SemiValid swaps an action's pending intent with another posted
	// notification's (valid in isolation, foreign to the target).
	SemiValid Mode = iota + 1
	// Random corrupts the pending intent's action string.
	Random
)

// FuzzOutcome tallies one notification-fuzzing pass.
type FuzzOutcome struct {
	Fired      int
	Exceptions int
	Crashes    int
	Security   int
}

// FuzzActions mutates and fires every active notification action
// `rounds` times, reading outcomes from the dispatcher (a full log-driven
// analysis can be layered on exactly as for the other experiments).
func FuzzActions(m *Manager, mode Mode, seed uint64, rounds int) FuzzOutcome {
	r := rng.New(seed).Split("notify-fuzz")
	var out FuzzOutcome

	// Donor pool for semi-valid swaps.
	var donors []*intent.Intent
	for _, n := range m.Active() {
		for _, a := range n.Actions {
			donors = append(donors, a.Intent)
		}
	}
	sort.Slice(donors, func(i, j int) bool { return donors[i].String() < donors[j].String() })

	for round := 0; round < rounds; round++ {
		for _, n := range m.Active() {
			for idx, a := range n.Actions {
				mutated := a.Intent.Clone()
				switch mode {
				case SemiValid:
					if len(donors) > 1 {
						donor := rng.Pick(r, donors)
						mutated.Action = donor.Action
						mutated.Data = donor.Data
					}
				case Random:
					mutated.Action = r.ASCII(6, 18)
					if r.Bool(0.3) {
						mutated.Data = intent.URI{Scheme: "zz" + r.ASCII(2, 4), Opaque: r.ASCII(1, 8)}
					}
				}
				// Fire the mutated pending intent directly (the tap path).
				res := m.fireMutated(n.Package, n.ID, idx, mutated)
				out.Fired++
				switch res {
				case wearos.DeliveredCrash:
					out.Crashes++
					out.Exceptions++
				case wearos.DeliveredRejected, wearos.DeliveredHandledException:
					out.Exceptions++
				case wearos.BlockedSecurity:
					out.Security++
				}
			}
		}
	}
	return out
}

// fireMutated dispatches a mutated copy of an action's intent.
func (m *Manager) fireMutated(pkg string, id, actionIdx int, in *intent.Intent) wearos.DeliveryResult {
	if _, ok := m.active[notifKey{pkg: pkg, id: id}]; !ok {
		return wearos.BlockedNotFound
	}
	return m.dev.StartActivity(in)
}
