package notify

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/wearos"
)

func newDev(t *testing.T) *wearos.OS {
	t.Helper()
	dev := wearos.New(wearos.DefaultWatchConfig())
	pkg := &manifest.Package{
		Name:     "com.notify.app",
		Category: manifest.NotHealthFitness,
		Origin:   manifest.ThirdParty,
		Components: []*manifest.Component{
			{
				Name: intent.ComponentName{Package: "com.notify.app", Class: "com.notify.app.ui.Main"},
				Type: manifest.Activity, Exported: true, MainLauncher: true,
				Filters: []*manifest.IntentFilter{{
					Actions:    []string{"android.intent.action.MAIN"},
					Categories: []string{intent.CategoryLauncher, intent.CategoryDefault},
				}},
			},
		},
	}
	if err := dev.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	return dev
}

func openIntent(dev *wearos.OS) *intent.Intent {
	return &intent.Intent{
		Action:    "android.intent.action.MAIN",
		Component: intent.ComponentName{Package: "com.notify.app", Class: "com.notify.app.ui.Main"},
		SenderUID: wearos.UIDAppBase + 5,
	}
}

func TestPostAndActive(t *testing.T) {
	dev := newDev(t)
	m := NewManager(dev)
	n := Notification{
		ID: 7, Package: "com.notify.app", Title: "Hi",
		Actions: []Action{{Title: "Open", Intent: openIntent(dev)}},
	}
	if err := m.Post(n); err != nil {
		t.Fatal(err)
	}
	act := m.Active()
	if len(act) != 1 || act[0].ID != 7 {
		t.Fatalf("active = %+v", act)
	}
	if !strings.Contains(dev.Logcat().Dump(), "enqueue notification pkg=com.notify.app id=7") {
		t.Fatal("post not logged")
	}
	// Re-posting the same (pkg, id) replaces, not duplicates.
	n.Title = "Updated"
	if err := m.Post(n); err != nil {
		t.Fatal(err)
	}
	if act := m.Active(); len(act) != 1 || act[0].Title != "Updated" {
		t.Fatalf("replacement failed: %+v", act)
	}
}

func TestPostValidation(t *testing.T) {
	dev := newDev(t)
	m := NewManager(dev)
	if err := m.Post(Notification{ID: 1, Package: "com.not.installed"}); err == nil {
		t.Fatal("posted for uninstalled package")
	}
	bad := Notification{
		ID: 2, Package: "com.notify.app",
		Actions: []Action{{Title: "nil intent"}},
	}
	if err := m.Post(bad); err == nil {
		t.Fatal("posted an action without a pending intent")
	}
}

func TestCancel(t *testing.T) {
	dev := newDev(t)
	m := NewManager(dev)
	_ = m.Post(Notification{ID: 1, Package: "com.notify.app"})
	if !m.Cancel("com.notify.app", 1) {
		t.Fatal("cancel returned false")
	}
	if m.Cancel("com.notify.app", 1) {
		t.Fatal("double cancel returned true")
	}
	if len(m.Active()) != 0 {
		t.Fatal("notification survived cancel")
	}
}

func TestFireAction(t *testing.T) {
	dev := newDev(t)
	m := NewManager(dev)
	_ = m.Post(Notification{
		ID: 3, Package: "com.notify.app",
		Actions: []Action{{Title: "Open", Intent: openIntent(dev)}},
	})
	res, err := m.Fire("com.notify.app", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res != wearos.DeliveredNoEffect {
		t.Fatalf("fire result = %v", res)
	}
	if _, err := m.Fire("com.notify.app", 3, 9); err == nil {
		t.Fatal("fired out-of-range action")
	}
	if _, err := m.Fire("com.notify.app", 99, 0); err == nil {
		t.Fatal("fired missing notification")
	}
}

func TestSeedFromFleet(t *testing.T) {
	fleet := apps.BuildWearFleet(1)
	dev := wearos.New(wearos.DefaultWatchConfig())
	if err := fleet.InstallInto(dev); err != nil {
		t.Fatal(err)
	}
	m := NewManager(dev)
	posted := SeedFromFleet(m)
	if posted != 46 {
		t.Fatalf("seeded %d notifications, want one per app (46)", posted)
	}
	for _, n := range m.Active() {
		if len(n.Actions) != 2 {
			t.Fatalf("notification %s has %d actions", n.Package, len(n.Actions))
		}
	}
}

func TestNotificationFuzzModes(t *testing.T) {
	run := func(mode Mode) FuzzOutcome {
		fleet := apps.BuildWearFleet(1)
		dev := wearos.New(wearos.DefaultWatchConfig())
		if err := fleet.InstallInto(dev); err != nil {
			t.Fatal(err)
		}
		m := NewManager(dev)
		SeedFromFleet(m)
		return FuzzActions(m, mode, 1, 3)
	}
	sv := run(SemiValid)
	rd := run(Random)
	if sv.Fired == 0 || rd.Fired == 0 {
		t.Fatalf("nothing fired: %+v %+v", sv, rd)
	}
	if sv.Fired != rd.Fired {
		t.Fatalf("modes fired different volumes: %d vs %d", sv.Fired, rd.Fired)
	}
	// The launcher components targeted here are the fleet's most robust;
	// the notification surface must not reboot the device.
	if sv.Crashes > sv.Fired/50 {
		t.Fatalf("semi-valid crash rate implausibly high: %+v", sv)
	}
	// Random corruption lands on KindRandomAction paths; some exceptions
	// but, like QGJ-UI, they stay rare.
	if rd.Exceptions == 0 && sv.Exceptions == 0 {
		t.Fatal("no exceptions from either mode; mutation is not reaching components")
	}
}

func TestFuzzDoesNotMutateStoredIntents(t *testing.T) {
	dev := newDev(t)
	m := NewManager(dev)
	in := openIntent(dev)
	_ = m.Post(Notification{
		ID: 1, Package: "com.notify.app",
		Actions: []Action{{Title: "Open", Intent: in}},
	})
	FuzzActions(m, Random, 7, 2)
	if in.Action != "android.intent.action.MAIN" {
		t.Fatalf("fuzzing mutated the stored pending intent: %q", in.Action)
	}
	got := m.Active()[0].Actions[0].Intent
	if got.Action != "android.intent.action.MAIN" {
		t.Fatalf("stored action corrupted: %q", got.Action)
	}
}
