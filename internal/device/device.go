// Package device assembles simulated hardware: a phone and a wearable
// paired over a Bluetooth-like link, exchanging messages through the
// Android Wear MessageAPI/DataAPI abstractions QGJ uses for orchestration
// ("the Android phone communicates with the wearable using the AW
// MessageAPI", Section III-A).
package device

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/wearos"
)

// Device is one simulated unit: an OS plus its pairing endpoint.
type Device struct {
	Name string
	OS   *wearos.OS

	node *Node
}

// NewWatch boots a Moto 360-style wearable.
func NewWatch(name string) *Device {
	return newDevice(name, wearos.DefaultWatchConfig())
}

// NewPhone boots a Nexus-style phone.
func NewPhone(name string) *Device {
	return newDevice(name, wearos.DefaultPhoneConfig())
}

// NewEmulator boots the Android Watch emulator used by QGJ-UI.
func NewEmulator(name string) *Device {
	return newDevice(name, wearos.DefaultEmulatorConfig())
}

func newDevice(name string, cfg wearos.Config) *Device {
	return &Device{Name: name, OS: wearos.New(cfg), node: NewNode(name)}
}

// Node returns the device's MessageAPI endpoint.
func (d *Device) Node() *Node { return d.node }

// Message is one MessageAPI datagram: a path plus an opaque payload.
type Message struct {
	Path    string
	Payload []byte
}

// Handler serves one MessageAPI path and produces a reply.
type Handler func(Message) (Message, error)

// Node is one end of a pairing. Handlers are registered per path; Send
// delivers to the peer's handler synchronously, like the blocking
// MessageApi.sendMessage + response pattern QGJ uses.
type Node struct {
	name string

	mu       sync.Mutex
	handlers map[string]Handler
	peer     *Node
}

// NewNode returns an unpaired node.
func NewNode(name string) *Node {
	return &Node{name: name, handlers: make(map[string]Handler)}
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Handle registers a handler for path.
func (n *Node) Handle(path string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[path] = h
}

// Pair links two nodes bidirectionally (Bluetooth bonding).
func Pair(a, b *Device) {
	a.node.mu.Lock()
	a.node.peer = b.node
	a.node.mu.Unlock()
	b.node.mu.Lock()
	b.node.peer = a.node
	b.node.mu.Unlock()
}

// ErrNotPaired is returned when sending without a bonded peer.
var ErrNotPaired = fmt.Errorf("device: not paired")

// Send delivers a message to the peer node's handler for the path and
// returns the reply.
func (n *Node) Send(path string, payload []byte) (Message, error) {
	n.mu.Lock()
	peer := n.peer
	n.mu.Unlock()
	if peer == nil {
		return Message{}, ErrNotPaired
	}
	peer.mu.Lock()
	h, ok := peer.handlers[path]
	peer.mu.Unlock()
	if !ok {
		return Message{}, fmt.Errorf("device: peer %s has no handler for %q", peer.name, path)
	}
	return h(Message{Path: path, Payload: payload})
}

// SendJSON marshals req, sends it, and unmarshals the reply into resp
// (resp may be nil for fire-and-forget paths).
func (n *Node) SendJSON(path string, req, resp any) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("marshal %s request: %w", path, err)
	}
	reply, err := n.Send(path, payload)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(reply.Payload, resp); err != nil {
		return fmt.Errorf("unmarshal %s reply: %w", path, err)
	}
	return nil
}

// ReplyJSON is a helper for handlers that answer with a JSON value.
func ReplyJSON(path string, v any) (Message, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return Message{}, fmt.Errorf("marshal %s reply: %w", path, err)
	}
	return Message{Path: path, Payload: payload}, nil
}
