package device

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestPairAndSend(t *testing.T) {
	phone := NewPhone("nexus4")
	watch := NewWatch("moto360")
	Pair(phone, watch)

	watch.Node().Handle("/echo", func(m Message) (Message, error) {
		return Message{Path: m.Path, Payload: append([]byte("pong:"), m.Payload...)}, nil
	})
	reply, err := phone.Node().Send("/echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Payload) != "pong:ping" {
		t.Fatalf("reply = %q", reply.Payload)
	}
}

func TestSendUnpaired(t *testing.T) {
	phone := NewPhone("lonely")
	_, err := phone.Node().Send("/x", nil)
	if !errors.Is(err, ErrNotPaired) {
		t.Fatalf("err = %v, want ErrNotPaired", err)
	}
}

func TestSendUnknownPath(t *testing.T) {
	a, b := NewPhone("a"), NewWatch("b")
	Pair(a, b)
	if _, err := a.Node().Send("/nope", nil); err == nil {
		t.Fatal("send to unknown path succeeded")
	}
}

func TestBidirectional(t *testing.T) {
	a, b := NewPhone("a"), NewWatch("b")
	Pair(a, b)
	a.Node().Handle("/fromwatch", func(m Message) (Message, error) {
		return Message{Payload: []byte("phone here")}, nil
	})
	reply, err := b.Node().Send("/fromwatch", nil)
	if err != nil || string(reply.Payload) != "phone here" {
		t.Fatalf("reply = %q err = %v", reply.Payload, err)
	}
}

func TestSendJSONRoundTrip(t *testing.T) {
	a, b := NewPhone("a"), NewWatch("b")
	Pair(a, b)
	type req struct {
		N int `json:"n"`
	}
	type resp struct {
		Sq int `json:"sq"`
	}
	b.Node().Handle("/square", func(m Message) (Message, error) {
		var r req
		if err := jsonUnmarshal(m.Payload, &r); err != nil {
			return Message{}, err
		}
		return ReplyJSON("/square", resp{Sq: r.N * r.N})
	})
	var out resp
	if err := a.Node().SendJSON("/square", req{N: 7}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sq != 49 {
		t.Fatalf("square = %d", out.Sq)
	}
	// nil resp for fire-and-forget.
	if err := a.Node().SendJSON("/square", req{N: 2}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDevicePresetsBoot(t *testing.T) {
	for _, d := range []*Device{NewPhone("p"), NewWatch("w"), NewEmulator("e")} {
		if d.OS == nil || d.OS.BootCount() != 1 {
			t.Fatalf("device %s did not boot", d.Name)
		}
		if d.Node() == nil || d.Node().Name() != d.Name {
			t.Fatalf("device %s node misconfigured", d.Name)
		}
	}
}

// jsonUnmarshal keeps the test readable without importing encoding/json at
// every call site.
func jsonUnmarshal(data []byte, v any) error {
	return json.Unmarshal(data, v)
}
