// Package javalang models the Java/Android exception semantics that the
// paper's entire measurement methodology is expressed in.
//
// Android apps are Java programs: a component that mishandles a malformed
// intent raises a Throwable, and whether that Throwable is caught decides
// whether the manifestation is "no effect", a logged-but-handled exception,
// or a process crash ("FATAL EXCEPTION: main" in logcat). The reproduction
// therefore needs a faithful — if compact — model of the Throwable class
// hierarchy, cause chains, and Java-style stack traces, because the log
// analyzer classifies outcomes by parsing exactly those artifacts.
//
// Throwables are ordinary Go error values here (components *return* them and
// the simulated OS decides their fate); we deliberately do not map them onto
// Go panics, per the house style's "don't panic" rule.
package javalang

import (
	"fmt"
	"strings"
)

// Class identifies a Java exception class by its fully qualified name.
type Class string

// The exception classes observed in the paper's experiments (Figures 2-4,
// Tables IV-V) plus the framework classes they inherit from.
const (
	ClassThrowable Class = "java.lang.Throwable"
	ClassError     Class = "java.lang.Error"
	ClassException Class = "java.lang.Exception"

	ClassRuntime              Class = "java.lang.RuntimeException"
	ClassNullPointer          Class = "java.lang.NullPointerException"
	ClassIllegalArgument      Class = "java.lang.IllegalArgumentException"
	ClassIllegalState         Class = "java.lang.IllegalStateException"
	ClassSecurity             Class = "java.lang.SecurityException"
	ClassUnsupportedOperation Class = "java.lang.UnsupportedOperationException"
	ClassArithmetic           Class = "java.lang.ArithmeticException"
	ClassClassCast            Class = "java.lang.ClassCastException"
	ClassNumberFormat         Class = "java.lang.NumberFormatException"
	ClassIndexOutOfBounds     Class = "java.lang.IndexOutOfBoundsException"
	ClassArrayIndex           Class = "java.lang.ArrayIndexOutOfBoundsException"
	ClassStringIndex          Class = "java.lang.StringIndexOutOfBoundsException"

	ClassReflectiveOperation Class = "java.lang.ReflectiveOperationException"
	ClassClassNotFound       Class = "java.lang.ClassNotFoundException"

	ClassIO         Class = "java.io.IOException"
	ClassRemote     Class = "android.os.RemoteException"
	ClassDeadObject Class = "android.os.DeadObjectException"
	ClassTxTooLarge Class = "android.os.TransactionTooLargeException"

	ClassActivityNotFound Class = "android.content.ActivityNotFoundException"
	ClassBadParcelable    Class = "android.os.BadParcelableException"
	ClassWindowBadToken   Class = "android.view.WindowManager$BadTokenException"
	ClassNotFoundRes      Class = "android.content.res.Resources$NotFoundException"

	ClassOutOfMemory    Class = "java.lang.OutOfMemoryError"
	ClassStackOverflow  Class = "java.lang.StackOverflowError"
	ClassAssertionError Class = "java.lang.AssertionError"
)

// parentOf encodes the (single-inheritance) class hierarchy. Classes missing
// from the map are treated as direct children of Throwable.
var parentOf = map[Class]Class{
	ClassError:     ClassThrowable,
	ClassException: ClassThrowable,

	ClassRuntime:              ClassException,
	ClassNullPointer:          ClassRuntime,
	ClassIllegalArgument:      ClassRuntime,
	ClassIllegalState:         ClassRuntime,
	ClassSecurity:             ClassRuntime,
	ClassUnsupportedOperation: ClassRuntime,
	ClassArithmetic:           ClassRuntime,
	ClassClassCast:            ClassRuntime,
	ClassNumberFormat:         ClassIllegalArgument,
	ClassIndexOutOfBounds:     ClassRuntime,
	ClassArrayIndex:           ClassIndexOutOfBounds,
	ClassStringIndex:          ClassIndexOutOfBounds,

	ClassReflectiveOperation: ClassException,
	ClassClassNotFound:       ClassReflectiveOperation,

	ClassIO:         ClassException,
	ClassRemote:     ClassException,
	ClassDeadObject: ClassRemote,
	ClassTxTooLarge: ClassRemote,

	ClassActivityNotFound: ClassRuntime,
	ClassBadParcelable:    ClassRuntime,
	ClassWindowBadToken:   ClassRuntime,
	ClassNotFoundRes:      ClassRuntime,

	ClassOutOfMemory:    ClassError,
	ClassStackOverflow:  ClassError,
	ClassAssertionError: ClassError,
}

// Extends reports whether c is anc or a (transitive) subclass of anc.
func (c Class) Extends(anc Class) bool {
	for cur := c; ; {
		if cur == anc {
			return true
		}
		p, ok := parentOf[cur]
		if !ok {
			return cur != ClassThrowable && anc == ClassThrowable
		}
		cur = p
	}
}

// Simple returns the class name without the package qualifier, e.g.
// "NullPointerException".
func (c Class) Simple() string {
	s := string(c)
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// IsChecked reports whether the class is a checked exception in Java terms
// (an Exception that is not a RuntimeException). Checked exceptions can only
// escape through explicit rethrow; the behaviour models use this to bias
// which classes escape uncaught.
func (c Class) IsChecked() bool {
	return c.Extends(ClassException) && !c.Extends(ClassRuntime)
}

// Frame is one Java stack-trace frame.
type Frame struct {
	Class  string
	Method string
	File   string
	Line   int
}

func (f Frame) String() string {
	return fmt.Sprintf("at %s.%s(%s:%d)", f.Class, f.Method, f.File, f.Line)
}

// Throwable is a Java exception instance: a class, a message, an optional
// cause chain, and a stack trace. It implements error so it can flow through
// ordinary Go signatures.
type Throwable struct {
	Class   Class
	Message string
	Cause   *Throwable
	Stack   []Frame
}

var _ error = (*Throwable)(nil)

// New constructs a Throwable of class c with the given message.
func New(c Class, msg string) *Throwable {
	return &Throwable{Class: c, Message: msg}
}

// Newf constructs a Throwable with a formatted message.
func Newf(c Class, format string, args ...any) *Throwable {
	return &Throwable{Class: c, Message: fmt.Sprintf(format, args...)}
}

// WithCause sets the cause chain and returns t for fluent construction.
func (t *Throwable) WithCause(cause *Throwable) *Throwable {
	t.Cause = cause
	return t
}

// WithStack sets the stack trace and returns t for fluent construction.
func (t *Throwable) WithStack(frames ...Frame) *Throwable {
	t.Stack = frames
	return t
}

// Error implements the error interface using Java's toString convention.
func (t *Throwable) Error() string {
	if t.Message == "" {
		return string(t.Class)
	}
	return string(t.Class) + ": " + t.Message
}

// Root returns the deepest cause in the chain (t itself when there is no
// cause). The paper's root-cause analysis blames the first exception in a
// temporal chain; within a single Throwable the first-raised exception is
// the root cause.
func (t *Throwable) Root() *Throwable {
	cur := t
	for cur.Cause != nil {
		cur = cur.Cause
	}
	return cur
}

// ChainClasses lists the classes from the outermost wrapper to the root
// cause.
func (t *Throwable) ChainClasses() []Class {
	var out []Class
	for cur := t; cur != nil; cur = cur.Cause {
		out = append(out, cur.Class)
	}
	return out
}

// TraceLines renders the Throwable in the format ART prints to logcat after
// a "FATAL EXCEPTION" header. The analyzer parses this exact shape.
func (t *Throwable) TraceLines() []string {
	var out []string
	prefix := ""
	for cur := t; cur != nil; cur = cur.Cause {
		out = append(out, prefix+cur.Error())
		for _, f := range cur.Stack {
			out = append(out, "\t"+f.String())
		}
		prefix = "Caused by: "
	}
	return out
}

// ParseHeader extracts the exception class from the first line of an ART
// trace ("java.lang.Foo: message" or "Caused by: java.lang.Foo: message").
// ok is false when the line does not look like an exception header.
func ParseHeader(line string) (c Class, msg string, ok bool) {
	line = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "Caused by:"))
	name, rest, found := strings.Cut(line, ":")
	if !found {
		name, rest = line, ""
	}
	name = strings.TrimSpace(name)
	if !looksLikeClassName(name) {
		return "", "", false
	}
	return Class(name), strings.TrimSpace(rest), true
}

func looksLikeClassName(s string) bool {
	if !strings.Contains(s, ".") {
		return false
	}
	lastDot := strings.LastIndexByte(s, '.')
	if lastDot == len(s)-1 {
		return false
	}
	simple := s[lastDot+1:]
	if simple[0] < 'A' || simple[0] > 'Z' {
		return false
	}
	for _, r := range s {
		if r != '.' && r != '$' && r != '_' &&
			!(r >= 'a' && r <= 'z') && !(r >= 'A' && r <= 'Z') && !(r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// Signal names used by the OS model when native processes die; the two
// reboot post-mortems in the paper involve SIGABRT (SensorService shutdown
// after an ANR) and SIGSEGV (system_server segfault).
const (
	SIGABRT = "SIGABRT"
	SIGSEGV = "SIGSEGV"
)
