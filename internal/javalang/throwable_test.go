package javalang

import (
	"strings"
	"testing"
)

func TestHierarchyExtends(t *testing.T) {
	tests := []struct {
		child, ancestor Class
		want            bool
	}{
		{ClassNullPointer, ClassRuntime, true},
		{ClassNullPointer, ClassException, true},
		{ClassNullPointer, ClassThrowable, true},
		{ClassNullPointer, ClassError, false},
		{ClassNumberFormat, ClassIllegalArgument, true},
		{ClassArrayIndex, ClassIndexOutOfBounds, true},
		{ClassDeadObject, ClassRemote, true},
		{ClassDeadObject, ClassIO, false}, // RemoteException extends Exception directly in this model
		{ClassClassNotFound, ClassReflectiveOperation, true},
		{ClassClassNotFound, ClassRuntime, false},
		{ClassActivityNotFound, ClassRuntime, true},
		{ClassOutOfMemory, ClassError, true},
		{ClassOutOfMemory, ClassException, false},
		{ClassSecurity, ClassSecurity, true},
		{ClassThrowable, ClassThrowable, true},
	}
	for _, tt := range tests {
		if got := tt.child.Extends(tt.ancestor); got != tt.want {
			t.Errorf("%s.Extends(%s) = %v, want %v", tt.child, tt.ancestor, got, tt.want)
		}
	}
}

func TestUnknownClassExtendsThrowableOnly(t *testing.T) {
	c := Class("com.example.WeirdException")
	if !c.Extends(ClassThrowable) {
		t.Error("unknown class should extend Throwable")
	}
	if c.Extends(ClassRuntime) {
		t.Error("unknown class should not extend RuntimeException")
	}
}

func TestIsChecked(t *testing.T) {
	tests := []struct {
		c    Class
		want bool
	}{
		{ClassClassNotFound, true},
		{ClassIO, true},
		{ClassRemote, true},
		{ClassDeadObject, true},
		{ClassNullPointer, false},
		{ClassSecurity, false},
		{ClassOutOfMemory, false},
	}
	for _, tt := range tests {
		if got := tt.c.IsChecked(); got != tt.want {
			t.Errorf("%s.IsChecked() = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestSimple(t *testing.T) {
	if got := ClassNullPointer.Simple(); got != "NullPointerException" {
		t.Errorf("Simple() = %q", got)
	}
	if got := Class("NoPackage").Simple(); got != "NoPackage" {
		t.Errorf("Simple() = %q", got)
	}
}

func TestErrorString(t *testing.T) {
	e := New(ClassIllegalState, "already started")
	if got, want := e.Error(), "java.lang.IllegalStateException: already started"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	if got, want := New(ClassNullPointer, "").Error(), "java.lang.NullPointerException"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

func TestNewf(t *testing.T) {
	e := Newf(ClassIllegalArgument, "bad value %d", 7)
	if e.Message != "bad value 7" {
		t.Errorf("Newf message = %q", e.Message)
	}
}

func TestCauseChain(t *testing.T) {
	root := New(ClassNullPointer, "npe")
	mid := New(ClassRuntime, "wrapping").WithCause(root)
	top := New(ClassIllegalState, "cannot deliver").WithCause(mid)

	if got := top.Root(); got != root {
		t.Fatalf("Root() = %v, want the NPE", got)
	}
	chain := top.ChainClasses()
	want := []Class{ClassIllegalState, ClassRuntime, ClassNullPointer}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %s, want %s", i, chain[i], want[i])
		}
	}
}

func TestTraceLinesFormat(t *testing.T) {
	root := New(ClassNullPointer, "Attempt to invoke virtual method").
		WithStack(Frame{Class: "com.example.App", Method: "onCreate", File: "App.java", Line: 42})
	top := New(ClassRuntime, "Unable to start activity").WithCause(root).
		WithStack(Frame{Class: "android.app.ActivityThread", Method: "performLaunchActivity", File: "ActivityThread.java", Line: 2817})

	lines := top.TraceLines()
	if len(lines) != 4 {
		t.Fatalf("TraceLines produced %d lines: %v", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], "java.lang.RuntimeException: Unable to start activity") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "\tat android.app.ActivityThread.performLaunchActivity") {
		t.Errorf("line 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "Caused by: java.lang.NullPointerException") {
		t.Errorf("line 2 = %q", lines[2])
	}
}

func TestParseHeaderRoundTrip(t *testing.T) {
	for _, c := range []Class{
		ClassNullPointer, ClassIllegalArgument, ClassSecurity,
		ClassDeadObject, ClassActivityNotFound, ClassWindowBadToken,
	} {
		e := New(c, "some message")
		got, msg, ok := ParseHeader(e.Error())
		if !ok {
			t.Fatalf("ParseHeader(%q) not ok", e.Error())
		}
		if got != c {
			t.Errorf("ParseHeader class = %s, want %s", got, c)
		}
		if msg != "some message" {
			t.Errorf("ParseHeader msg = %q", msg)
		}
	}
}

func TestParseHeaderCausedBy(t *testing.T) {
	c, _, ok := ParseHeader("Caused by: java.lang.NullPointerException: boom")
	if !ok || c != ClassNullPointer {
		t.Fatalf("ParseHeader(caused by) = %v %v", c, ok)
	}
}

func TestParseHeaderRejectsNonExceptions(t *testing.T) {
	for _, line := range []string{
		"Sending signal. PID: 1234 SIG: 9",
		"at com.example.App.onCreate(App.java:42)",
		"not a class at all",
		"lowercase.class: message",
		"",
	} {
		if _, _, ok := ParseHeader(line); ok {
			t.Errorf("ParseHeader(%q) unexpectedly ok", line)
		}
	}
}

func TestParseHeaderNoMessage(t *testing.T) {
	c, msg, ok := ParseHeader("java.lang.NullPointerException")
	if !ok || c != ClassNullPointer || msg != "" {
		t.Fatalf("ParseHeader = (%v, %q, %v)", c, msg, ok)
	}
}
