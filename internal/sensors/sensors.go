// Package sensors models the wearable's sensor stack: the native
// SensorService process (libsensorservice.so), the SensorManager framework
// API apps use, and synthetic sensor hardware (heart rate, step counter,
// accelerometer).
//
// The stack matters to the reproduction because the paper's first device
// reboot originated here: a health app that talks to the heart-rate sensor
// through SensorManager went unresponsive under a sequence of malformed
// intents, the system SIGABRT-ed the SensorService process, and the loss of
// that core service left the OS unstable enough to reboot (Section IV-B).
package sensors

import (
	"fmt"
	"sync"

	"repro/internal/javalang"
	"repro/internal/logcat"
)

// Type enumerates the hardware/software sensors the simulated watch
// carries.
type Type int

const (
	HeartRate Type = iota + 1
	StepCounter
	Accelerometer
	Gyroscope
	AmbientLight
	OffBodyDetect
)

// String returns the Android sensor name string.
func (t Type) String() string {
	switch t {
	case HeartRate:
		return "android.sensor.heart_rate"
	case StepCounter:
		return "android.sensor.step_counter"
	case Accelerometer:
		return "android.sensor.accelerometer"
	case Gyroscope:
		return "android.sensor.gyroscope"
	case AmbientLight:
		return "android.sensor.light"
	case OffBodyDetect:
		return "android.sensor.low_latency_offbody_detect"
	}
	return "android.sensor.unknown"
}

// AllTypes lists every sensor on the simulated device.
var AllTypes = []Type{HeartRate, StepCounter, Accelerometer, Gyroscope, AmbientLight, OffBodyDetect}

// ServiceState is the lifecycle state of the native SensorService process.
type ServiceState int

const (
	ServiceRunning ServiceState = iota + 1
	ServiceAborted              // killed by SIGABRT, not yet restarted
)

// FaultMode selects an injected degradation of the sensor service, used by
// the fault-injection campaigns (internal/faultinject). FaultNone is normal
// operation.
type FaultMode int

const (
	// FaultNone: normal operation.
	FaultNone FaultMode = iota
	// FaultStall: the service stops answering — reads and registrations
	// time out the way a wedged native service does.
	FaultStall
	// FaultStale: reads succeed but the service replays the last sample it
	// delivered instead of a fresh one (a silently frozen stream).
	FaultStale
)

// String names the fault mode.
func (m FaultMode) String() string {
	switch m {
	case FaultStall:
		return "stall"
	case FaultStale:
		return "stale"
	default:
		return "none"
	}
}

// Service is the native sensor service. It owns listener registrations and
// is a single point of failure: when it dies, every registered client loses
// sensor access and the system becomes unstable.
type Service struct {
	mu        sync.Mutex
	state     ServiceState
	pid       int
	listeners map[string][]Type // client process name -> registered sensors
	log       *logcat.Logger
	// onAbort notifies the system server that a core native service died;
	// wired by the OS at boot.
	onAbort func(signal string)

	fault FaultMode
	// last remembers the freshest sample per sensor so FaultStale can
	// replay it; stalled/stale count how often a fault manifested.
	last    map[Type]float64
	stalled uint64
	stale   uint64
}

// NewService returns a running sensor service with the given native PID.
func NewService(pid int, log *logcat.Logger) *Service {
	return &Service{
		state:     ServiceRunning,
		pid:       pid,
		listeners: make(map[string][]Type),
		log:       log,
	}
}

// PID returns the native process id of the service.
func (s *Service) PID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pid
}

// State returns the current lifecycle state.
func (s *Service) State() ServiceState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// OnAbort registers the system-server callback fired when the service is
// killed by a signal.
func (s *Service) OnAbort(fn func(signal string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onAbort = fn
}

// SetFaultMode installs (or, with FaultNone, lifts) an injected fault. The
// transition is logged so the fault window is visible in logcat.
func (s *Service) SetFaultMode(m FaultMode) {
	s.mu.Lock()
	prev := s.fault
	s.fault = m
	pid := s.pid
	s.mu.Unlock()
	if prev == m {
		return
	}
	if m == FaultNone {
		s.log.Log(pid, pid, logcat.Info, logcat.TagSensorService,
			"sensorservice recovered from injected %s fault", prev)
		return
	}
	s.log.Log(pid, pid, logcat.Warn, logcat.TagSensorService,
		"sensorservice entering injected %s fault", m)
}

// FaultMode returns the active injected fault.
func (s *Service) FaultMode() FaultMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fault
}

// FaultStats reports how many reads stalled and how many returned stale
// samples since boot — the fault engine's silent-degradation evidence.
func (s *Service) FaultStats() (stalled, stale uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalled, s.stale
}

// Register adds a listener for client on the sensor. It fails with
// DeadObjectException when the service is down.
func (s *Service) Register(client string, t Type) *javalang.Throwable {
	s.mu.Lock()
	if s.state != ServiceRunning {
		s.mu.Unlock()
		return javalang.Newf(javalang.ClassDeadObject, "sensorservice dead; cannot register %s", t)
	}
	if s.fault == FaultStall {
		s.stalled++
		s.mu.Unlock()
		return javalang.Newf(javalang.ClassRemote,
			"sensorservice not responding; register %s timed out after 5000ms", t)
	}
	s.listeners[client] = append(s.listeners[client], t)
	s.mu.Unlock()
	s.log.Log(s.pid, s.pid, logcat.Debug, logcat.TagSensorService,
		"registering listener for %s (client=%s)", t, client)
	return nil
}

// Unregister removes all listeners for client.
func (s *Service) Unregister(client string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, client)
}

// Listeners returns how many sensors the client has registered.
func (s *Service) Listeners(client string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.listeners[client])
}

// Read samples the sensor for client. Reading through a dead service or
// without a registration fails the way the framework does.
func (s *Service) Read(client string, t Type) (float64, *javalang.Throwable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != ServiceRunning {
		return 0, javalang.Newf(javalang.ClassDeadObject, "sensorservice dead; cannot read %s", t)
	}
	regs := s.listeners[client]
	found := false
	for _, r := range regs {
		if r == t {
			found = true
			break
		}
	}
	if !found {
		return 0, javalang.Newf(javalang.ClassIllegalState,
			"no listener registered for %s (client=%s)", t, client)
	}
	if s.fault == FaultStall {
		s.stalled++
		return 0, javalang.Newf(javalang.ClassRemote,
			"sensorservice not responding; read %s timed out after 5000ms", t)
	}
	if s.fault == FaultStale {
		// Replay the freshest delivered sample — the caller sees success
		// and a plausible value, never a new one.
		s.stale++
		if s.last == nil {
			s.last = make(map[Type]float64)
		}
		if v, ok := s.last[t]; ok {
			return v, nil
		}
	}
	// Synthetic but plausible readings; values are irrelevant to the study.
	var v float64
	switch t {
	case HeartRate:
		v = 72
	case StepCounter:
		v = 4211
	case AmbientLight:
		v = 180
	default:
		v = 0.5
	}
	if s.last == nil {
		s.last = make(map[Type]float64)
	}
	s.last[t] = v
	return v, nil
}

// Abort kills the service with the given signal (the system sends SIGABRT
// when a client wedges the service, per the paper's post-mortem). The
// system-server callback is invoked after logging the native crash dump.
func (s *Service) Abort(signal string) {
	s.mu.Lock()
	if s.state == ServiceAborted {
		s.mu.Unlock()
		return
	}
	s.state = ServiceAborted
	pid := s.pid
	cb := s.onAbort
	s.mu.Unlock()

	s.log.Log(pid, pid, logcat.Info, logcat.TagDEBUG,
		"Fatal signal %s in tid %d (sensorservice), process /system/lib/libsensorservice.so", signal, pid)
	s.log.Log(pid, pid, logcat.Error, logcat.TagSensorService,
		"sensorservice terminated by signal %s", signal)
	if cb != nil {
		cb(signal)
	}
}

// Kill terminates the service process without going through the watchdog:
// an external SIGKILL (the fault injector's service-kill window) arrives
// unannounced, so no system-server callback fires — whoever killed the
// service is expected to bring it back via Restart.
func (s *Service) Kill(signal string) {
	s.mu.Lock()
	if s.state == ServiceAborted {
		s.mu.Unlock()
		return
	}
	s.state = ServiceAborted
	pid := s.pid
	s.mu.Unlock()
	s.log.Log(pid, pid, logcat.Warn, logcat.TagSensorService,
		"sensorservice (pid %d) killed by signal %s", pid, signal)
}

// Restart brings the service back after a reboot, with a new PID. A fresh
// process carries no injected fault and no replay cache; the fault counters
// stay monotonic so observers can diff across restarts.
func (s *Service) Restart(pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = ServiceRunning
	s.pid = pid
	s.listeners = make(map[string][]Type)
	s.fault = FaultNone
	s.last = nil
}

// ResetRestart returns the service to its just-booted state with a new
// PID: Restart's semantics plus zeroed fault counters and a dropped replay
// cache. Restart deliberately keeps stalled/stale monotonic so observers
// can diff across reboots; a persistent-mode device reset instead needs
// the zeros a fresh boot starts with, so it uses this variant.
func (s *Service) ResetRestart(pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = ServiceRunning
	s.pid = pid
	clear(s.listeners)
	s.fault = FaultNone
	s.last = nil
	s.stalled, s.stale = 0, 0
}

// Manager is the framework-side SensorManager bound to one client app
// process. Health apps that bypass Google Fit use it directly.
type Manager struct {
	client string
	svc    *Service
}

// NewManager returns a SensorManager for the named client process.
func NewManager(client string, svc *Service) *Manager {
	return &Manager{client: client, svc: svc}
}

// RegisterListener registers the client for sensor t.
func (m *Manager) RegisterListener(t Type) *javalang.Throwable {
	return m.svc.Register(m.client, t)
}

// ReadSample reads one value from sensor t.
func (m *Manager) ReadSample(t Type) (float64, *javalang.Throwable) {
	return m.svc.Read(m.client, t)
}

// UnregisterAll drops the client's registrations.
func (m *Manager) UnregisterAll() { m.svc.Unregister(m.client) }

// String implements fmt.Stringer for diagnostics.
func (m *Manager) String() string {
	return fmt.Sprintf("SensorManager(client=%s)", m.client)
}
