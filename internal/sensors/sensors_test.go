package sensors

import (
	"testing"
	"time"

	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/vclock"
)

func newTestService(t *testing.T) (*Service, *logcat.Buffer) {
	t.Helper()
	clk := vclock.NewVirtual(time.Time{})
	buf := logcat.NewBuffer(256)
	log := logcat.NewLogger(buf, clk.Now)
	return NewService(1199, log), buf
}

func TestRegisterAndRead(t *testing.T) {
	svc, _ := newTestService(t)
	m := NewManager("com.fit.app", svc)
	if thr := m.RegisterListener(HeartRate); thr != nil {
		t.Fatalf("register: %v", thr)
	}
	v, thr := m.ReadSample(HeartRate)
	if thr != nil {
		t.Fatalf("read: %v", thr)
	}
	if v <= 0 {
		t.Fatalf("heart rate sample = %v", v)
	}
}

func TestReadWithoutRegistration(t *testing.T) {
	svc, _ := newTestService(t)
	m := NewManager("com.fit.app", svc)
	_, thr := m.ReadSample(StepCounter)
	if thr == nil || thr.Class != javalang.ClassIllegalState {
		t.Fatalf("expected IllegalStateException, got %v", thr)
	}
}

func TestAbortKillsService(t *testing.T) {
	svc, buf := newTestService(t)
	m := NewManager("com.fit.app", svc)
	if thr := m.RegisterListener(HeartRate); thr != nil {
		t.Fatal(thr)
	}
	var gotSignal string
	svc.OnAbort(func(sig string) { gotSignal = sig })
	svc.Abort(javalang.SIGABRT)

	if svc.State() != ServiceAborted {
		t.Fatal("service not aborted")
	}
	if gotSignal != javalang.SIGABRT {
		t.Fatalf("system server saw signal %q", gotSignal)
	}
	// Registered clients now get DeadObjectException.
	if _, thr := m.ReadSample(HeartRate); thr == nil || thr.Class != javalang.ClassDeadObject {
		t.Fatalf("expected DeadObjectException, got %v", thr)
	}
	if thr := m.RegisterListener(StepCounter); thr == nil || thr.Class != javalang.ClassDeadObject {
		t.Fatalf("register on dead service: %v", thr)
	}
	// The native crash dump must be in the log (the analyzer keys off it).
	found := false
	for _, e := range buf.Snapshot() {
		if e.Tag == logcat.TagDEBUG {
			found = true
		}
	}
	if !found {
		t.Fatal("no native crash dump logged")
	}
}

func TestAbortIsIdempotent(t *testing.T) {
	svc, _ := newTestService(t)
	n := 0
	svc.OnAbort(func(string) { n++ })
	svc.Abort(javalang.SIGABRT)
	svc.Abort(javalang.SIGABRT)
	if n != 1 {
		t.Fatalf("onAbort fired %d times", n)
	}
}

func TestRestartClearsState(t *testing.T) {
	svc, _ := newTestService(t)
	m := NewManager("c", svc)
	if thr := m.RegisterListener(HeartRate); thr != nil {
		t.Fatal(thr)
	}
	svc.Abort(javalang.SIGABRT)
	svc.Restart(2230)
	if svc.State() != ServiceRunning {
		t.Fatal("service not running after restart")
	}
	if svc.PID() != 2230 {
		t.Fatalf("PID = %d", svc.PID())
	}
	if svc.Listeners("c") != 0 {
		t.Fatal("listeners survived restart")
	}
}

func TestUnregister(t *testing.T) {
	svc, _ := newTestService(t)
	m := NewManager("c", svc)
	if thr := m.RegisterListener(HeartRate); thr != nil {
		t.Fatal(thr)
	}
	m.UnregisterAll()
	if svc.Listeners("c") != 0 {
		t.Fatal("UnregisterAll left listeners")
	}
}

func TestSensorNames(t *testing.T) {
	if HeartRate.String() != "android.sensor.heart_rate" {
		t.Errorf("HeartRate name = %q", HeartRate.String())
	}
	seen := map[string]bool{}
	for _, ty := range AllTypes {
		n := ty.String()
		if seen[n] {
			t.Errorf("duplicate sensor name %q", n)
		}
		seen[n] = true
	}
}
