// Package stats provides the small distribution-comparison toolkit the
// reproduction uses to quantify how close a measured distribution is to
// the paper's published one: total variation distance for categorical
// distributions (exception-class shares, manifestation shares) and
// rank-agreement for orderings ("NPE first, CNFE second"). The experiment
// tests use these instead of ad-hoc per-class bands where a single summary
// number is clearer.
package stats

import (
	"math"
	"sort"
)

// Dist is a categorical distribution: label -> mass. It need not be
// normalized; every operation normalizes internally.
type Dist map[string]float64

// normalize returns the distribution scaled to sum 1 (nil if empty/zero).
func (d Dist) normalize() Dist {
	var total float64
	for _, v := range d {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return nil
	}
	out := make(Dist, len(d))
	for k, v := range d {
		if v > 0 {
			out[k] = v / total
		}
	}
	return out
}

// TotalVariation returns the total variation distance between p and q in
// [0, 1]: half the L1 distance between the normalized distributions. 0
// means identical; 1 means disjoint support.
func TotalVariation(p, q Dist) float64 {
	pn, qn := p.normalize(), q.normalize()
	keys := map[string]bool{}
	for k := range pn {
		keys[k] = true
	}
	for k := range qn {
		keys[k] = true
	}
	var sum float64
	for k := range keys {
		sum += math.Abs(pn[k] - qn[k])
	}
	return sum / 2
}

// Ranking returns the labels of d ordered by descending mass (ties broken
// lexicographically for determinism).
func Ranking(d Dist) []string {
	type kv struct {
		k string
		v float64
	}
	pairs := make([]kv, 0, len(d))
	for k, v := range d {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].k < pairs[j].k
	})
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = p.k
	}
	return out
}

// TopKAgreement reports the fraction of the reference distribution's top-k
// labels that also appear in the measured distribution's top-k — the
// "same leaders" check for figures where ordering is the claim.
func TopKAgreement(reference, measured Dist, k int) float64 {
	if k <= 0 {
		return 0
	}
	ref, got := Ranking(reference), Ranking(measured)
	if len(ref) < k {
		k = len(ref)
	}
	if k == 0 {
		return 0
	}
	inGot := map[string]bool{}
	for i := 0; i < k && i < len(got); i++ {
		inGot[got[i]] = true
	}
	hits := 0
	for i := 0; i < k; i++ {
		if inGot[ref[i]] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// SpearmanFootrule computes the normalized Spearman footrule distance
// between the orderings of the two distributions over their shared labels:
// 0 = identical order, 1 = maximally displaced. Labels missing from either
// side are ignored.
func SpearmanFootrule(p, q Dist) float64 {
	rp := rankIndex(Ranking(p))
	rq := rankIndex(Ranking(q))
	var shared []string
	for k := range rp {
		if _, ok := rq[k]; ok {
			shared = append(shared, k)
		}
	}
	n := len(shared)
	if n < 2 {
		return 0
	}
	// Re-rank within the shared label set.
	sort.Slice(shared, func(i, j int) bool { return rp[shared[i]] < rp[shared[j]] })
	posP := map[string]int{}
	for i, k := range shared {
		posP[k] = i
	}
	sort.Slice(shared, func(i, j int) bool { return rq[shared[i]] < rq[shared[j]] })
	var sum, worst float64
	for i, k := range shared {
		sum += math.Abs(float64(posP[k] - i))
	}
	// Maximum footrule distance is n^2/2 for even n, (n^2-1)/2 for odd.
	worst = float64(n*n) / 2
	if n%2 == 1 {
		worst = float64(n*n-1) / 2
	}
	if worst == 0 {
		return 0
	}
	return sum / worst
}

func rankIndex(order []string) map[string]int {
	out := make(map[string]int, len(order))
	for i, k := range order {
		out[k] = i
	}
	return out
}

// FromCounts builds a Dist from integer counts.
func FromCounts(counts map[string]int) Dist {
	out := make(Dist, len(counts))
	for k, v := range counts {
		out[k] = float64(v)
	}
	return out
}
