package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTotalVariationBasics(t *testing.T) {
	p := Dist{"a": 0.5, "b": 0.5}
	if got := TotalVariation(p, p); got != 0 {
		t.Fatalf("TV(p,p) = %v", got)
	}
	q := Dist{"c": 1}
	if got := TotalVariation(p, q); math.Abs(got-1) > 1e-12 {
		t.Fatalf("TV(disjoint) = %v", got)
	}
	r := Dist{"a": 1}
	if got := TotalVariation(p, r); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TV = %v, want 0.5", got)
	}
}

func TestTotalVariationNormalizes(t *testing.T) {
	p := Dist{"a": 2, "b": 2} // = {0.5, 0.5}
	q := Dist{"a": 50, "b": 50}
	if got := TotalVariation(p, q); got != 0 {
		t.Fatalf("TV of proportional dists = %v", got)
	}
	// Negative and zero masses are ignored.
	r := Dist{"a": 1, "junk": -5, "zero": 0}
	if got := TotalVariation(r, Dist{"a": 3}); got != 0 {
		t.Fatalf("TV with junk mass = %v", got)
	}
}

// Property: TV is symmetric and within [0, 1].
func TestQuickTotalVariationProperties(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := Dist{"x": float64(a), "y": float64(b)}
		q := Dist{"x": float64(c), "y": float64(d)}
		tv := TotalVariation(p, q)
		if tv < 0 || tv > 1 {
			return false
		}
		return math.Abs(tv-TotalVariation(q, p)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRanking(t *testing.T) {
	d := Dist{"npe": 0.31, "cnfe": 0.26, "iae": 0.18, "ise": 0.06}
	got := Ranking(d)
	want := []string{"npe", "cnfe", "iae", "ise"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranking = %v", got)
		}
	}
	// Ties break lexicographically.
	tie := Ranking(Dist{"b": 1, "a": 1})
	if tie[0] != "a" || tie[1] != "b" {
		t.Fatalf("tie ranking = %v", tie)
	}
}

func TestTopKAgreement(t *testing.T) {
	ref := Dist{"npe": 0.31, "cnfe": 0.26, "iae": 0.18, "ise": 0.06}
	same := Dist{"npe": 0.35, "cnfe": 0.30, "iae": 0.20, "ise": 0.05}
	if got := TopKAgreement(ref, same, 3); got != 1 {
		t.Fatalf("agreement = %v", got)
	}
	shuffled := Dist{"ise": 0.5, "iae": 0.3, "other": 0.2}
	got := TopKAgreement(ref, shuffled, 2)
	if got != 0.5 { // of {npe, cnfe}, neither in top-2 {ise, iae}... iae is
		// ref top-2 = {npe, cnfe}; shuffled top-2 = {ise, iae} -> 0 hits.
		if got != 0 {
			t.Fatalf("agreement = %v", got)
		}
	}
	if TopKAgreement(ref, same, 0) != 0 {
		t.Fatal("k=0 should be 0")
	}
}

func TestSpearmanFootrule(t *testing.T) {
	p := Dist{"a": 4, "b": 3, "c": 2, "d": 1}
	if got := SpearmanFootrule(p, p); got != 0 {
		t.Fatalf("footrule(p,p) = %v", got)
	}
	rev := Dist{"a": 1, "b": 2, "c": 3, "d": 4}
	if got := SpearmanFootrule(p, rev); math.Abs(got-1) > 1e-12 {
		t.Fatalf("footrule(reversed) = %v, want 1", got)
	}
	// Disjoint supports have no shared labels: distance 0 by convention.
	if got := SpearmanFootrule(p, Dist{"x": 1, "y": 2}); got != 0 {
		t.Fatalf("footrule(disjoint) = %v", got)
	}
}

func TestFromCounts(t *testing.T) {
	d := FromCounts(map[string]int{"a": 3, "b": 1})
	if d["a"] != 3 || d["b"] != 1 {
		t.Fatalf("FromCounts = %v", d)
	}
}
