package wearos

import "testing"

// The shard-boot microbenchmark pair isolates the device-level half of the
// farm's snapshot win: a full boot sequence (process tables, sensor
// service, system server, boot logcat) versus stamping a clone out of a
// post-boot snapshot. Telemetry is disabled to match the farm's per-shard
// device configuration.
func benchConfig() Config {
	cfg := DefaultWatchConfig()
	cfg.DisableTelemetry = true
	return cfg
}

func BenchmarkShardBootFresh(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if New(cfg) == nil {
			b.Fatal("boot failed")
		}
	}
}

func BenchmarkShardBootClone(b *testing.B) {
	snap, err := New(benchConfig()).Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap.Clone() == nil {
			b.Fatal("clone failed")
		}
	}
}
