package wearos

import (
	"testing"

	"repro/internal/intent"
	"repro/internal/javalang"
)

// The shard-boot microbenchmark pair isolates the device-level half of the
// farm's snapshot win: a full boot sequence (process tables, sensor
// service, system server, boot logcat) versus stamping a clone out of a
// post-boot snapshot. Telemetry is disabled to match the farm's per-shard
// device configuration.
func benchConfig() Config {
	cfg := DefaultWatchConfig()
	cfg.DisableTelemetry = true
	return cfg
}

func BenchmarkShardBootFresh(b *testing.B) {
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if New(cfg) == nil {
			b.Fatal("boot failed")
		}
	}
}

func BenchmarkShardBootClone(b *testing.B) {
	snap, err := New(benchConfig()).Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap.Clone() == nil {
			b.Fatal("clone failed")
		}
	}
}

// benchUnit runs one triage-oracle-shaped campaign unit on a bare device:
// install, handler registration, and one crash repro — the short
// re-execution the minimizer and crash oracle pay per candidate, where a
// clone-per-execution strategy hurts most.
func benchUnit(b *testing.B, o *OS) {
	b.Helper()
	if err := o.InstallPackage(snapTestPackage()); err != nil {
		b.Fatal(err)
	}
	main := cn("com.test.app", "MainActivity")
	o.RegisterHandler(main, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "null object reference")}
	}, ComponentTraits{})
	if got := o.StartActivity(explicit(main, "android.intent.action.EDIT")); got != DeliveredCrash {
		b.Fatalf("crash repro = %v", got)
	}
}

// The persistent-mode microbenchmark pair: one campaign unit per op, with
// the device provisioned by cloning the snapshot (the old per-execution
// cost) versus resetting one hot device in place (the persistent executor's
// steady state). scripts/benchgate enforces the ≥3x per-unit speedup floor
// on this ratio and freezes the reset path's near-zero steady-state
// allocation budget on BenchmarkUnitReset.
func BenchmarkUnitClone(b *testing.B) {
	snap, err := New(benchConfig()).Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchUnit(b, snap.Clone())
	}
}

func BenchmarkUnitReset(b *testing.B) {
	snap, err := New(benchConfig()).Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	dev := snap.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchUnit(b, dev)
		if !dev.ResetTo(snap) {
			b.Fatal("hot device retired mid-benchmark")
		}
	}
}
