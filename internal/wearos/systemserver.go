package wearos

import (
	"math"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/logcat"
)

// AgingConfig parameterizes the system server's error-accumulation model.
//
// The paper's central reboot finding (Section IV-B) is that reboots "did not
// occur in response to a single deadly intent but rather at specific states
// of the device due to escalation of multiple errors" — i.e. software aging.
// We model that as an instability score: every crash/ANR adds to it, it
// decays exponentially with (virtual) time, core-service failures add large
// jumps, and crossing the threshold reboots the device.
type AgingConfig struct {
	// HalfLife is the exponential decay half-life of instability.
	HalfLife time.Duration
	// CrashWeight is added per third-party app crash; BuiltInCrashWeight per
	// built-in app crash (built-ins share more state with the platform).
	CrashWeight        float64
	BuiltInCrashWeight float64
	// ANRWeight is added per ANR.
	ANRWeight float64
	// CoreServiceWeight is added when a core native service (sensorservice,
	// system_server subsystem) dies. It exceeds RebootThreshold on its own:
	// losing a core service is the catastrophic step of both escalation
	// chains in the paper.
	CoreServiceWeight float64
	// RebootThreshold is the instability level that triggers a reboot.
	RebootThreshold float64
	// RepeatWindow bounds crash/ANR de-duplication: a process failing again
	// within the window contributes only RepeatCrashWeight/RepeatANRWeight.
	// Android similarly throttles crash-looping processes; without this, a
	// single badly validating component crash-looping through a campaign
	// would reboot the device, which the paper never observed.
	RepeatWindow      time.Duration
	RepeatCrashWeight float64
	RepeatANRWeight   float64
	// SensorClientANRLimit is how many ANRs a sensor-client process may
	// accumulate before the system SIGABRTs the sensor service (post-mortem
	// #1 in the paper).
	SensorClientANRLimit int
	// Rejuvenation implements the mitigation the paper's Section IV-E
	// proposes ("research on software aging and rejuvenation can help
	// detect and potentially recover from such accumulated errors"): when
	// enabled, the system proactively restarts a process whose ANR count
	// reaches RejuvenateANRLimit (before the watchdog shoots the sensor
	// service) and clears a component's start-failure streak at
	// RejuvenateCrashStreak (before the Ambient Service bind fails),
	// defusing both escalation chains.
	RejuvenationEnabled   bool
	RejuvenateANRLimit    int
	RejuvenateCrashStreak int
	// StartFailureLimit is how many consecutive failed starts of an
	// ambient-bound component are tolerated before the Ambient Service bind
	// fails and the system process segfaults (post-mortem #2).
	StartFailureLimit int
}

// DefaultAgingConfig mirrors the dynamics observed in the paper: two
// reboots over ~1.5M injections, each requiring an escalation chain.
func DefaultAgingConfig() AgingConfig {
	return AgingConfig{
		HalfLife:             45 * time.Second,
		CrashWeight:          1.0,
		BuiltInCrashWeight:   2.0,
		ANRWeight:            6.0,
		CoreServiceWeight:    70.0,
		RebootThreshold:      60.0,
		RepeatWindow:         10 * time.Second,
		RepeatCrashWeight:    0.02,
		RepeatANRWeight:      0.2,
		SensorClientANRLimit: 3,
		StartFailureLimit:    4,
		// Rejuvenation is off by default: the paper's device had none,
		// which is why it rebooted. Enable via RejuvenatedAgingConfig.
		RejuvenateANRLimit:    2,
		RejuvenateCrashStreak: 3,
	}
}

// RejuvenatedAgingConfig returns the default aging model with proactive
// rejuvenation enabled — the counterfactual study for Section IV-E's
// mitigation proposal.
func RejuvenatedAgingConfig() AgingConfig {
	cfg := DefaultAgingConfig()
	cfg.RejuvenationEnabled = true
	return cfg
}

// SystemServer tracks platform-wide health: the instability score, per-
// process ANR counts, and per-component start-failure streaks. It decides
// when the device reboots.
type SystemServer struct {
	cfg AgingConfig
	now func() time.Time
	log *logcat.Logger

	instability float64
	lastDecay   time.Time

	anrByProcess  map[string]int
	startFailures map[intent.ComponentName]int
	lastCrashAt   map[string]time.Time
	lastANRAt     map[string]time.Time

	// requestReboot is wired by the OS; calling it tears the device down.
	requestReboot func(reason string)
	// abortSensorService is wired by the OS; SIGABRTs the sensor service.
	abortSensorService func()
	// restartProcess is wired by the OS; rejuvenation kills the process so
	// it restarts fresh on next delivery.
	restartProcess func(proc string)

	rebootPending bool
	rejuvenations int
	timeline      []InstabilitySample
}

// InstabilitySample is one point of the instability timeline, recorded on
// every aging event — the raw material for software-aging analysis
// (Cotroneo et al.'s metrics suggestion in Section IV-E).
type InstabilitySample struct {
	At    time.Time
	Value float64
}

// newSystemServer builds the system server; the OS wires the callbacks
// after construction.
func newSystemServer(cfg AgingConfig, now func() time.Time, log *logcat.Logger) *SystemServer {
	return &SystemServer{
		cfg:           cfg,
		now:           now,
		log:           log,
		lastDecay:     now(),
		anrByProcess:  make(map[string]int),
		startFailures: make(map[intent.ComponentName]int),
		lastCrashAt:   make(map[string]time.Time),
		lastANRAt:     make(map[string]time.Time),
	}
}

// Instability returns the current decayed instability score.
func (s *SystemServer) Instability() float64 {
	s.decay()
	return s.instability
}

func (s *SystemServer) decay() {
	now := s.now()
	dt := now.Sub(s.lastDecay)
	if dt <= 0 {
		return
	}
	s.lastDecay = now
	if s.cfg.HalfLife <= 0 {
		return
	}
	s.instability *= math.Exp2(-float64(dt) / float64(s.cfg.HalfLife))
}

func (s *SystemServer) add(amount float64) {
	s.decay()
	s.instability += amount
	s.recordSample()
	if s.instability >= s.cfg.RebootThreshold && !s.rebootPending {
		s.rebootPending = true
	}
}

// maxTimelineSamples bounds the timeline like a metrics ring.
const maxTimelineSamples = 8192

func (s *SystemServer) recordSample() {
	s.timeline = append(s.timeline, InstabilitySample{At: s.now(), Value: s.instability})
	if len(s.timeline) > maxTimelineSamples {
		s.timeline = s.timeline[len(s.timeline)-maxTimelineSamples:]
	}
}

// InstabilityTimeline returns a copy of the recorded samples since boot.
func (s *SystemServer) InstabilityTimeline() []InstabilitySample {
	return append([]InstabilitySample(nil), s.timeline...)
}

// Rejuvenations counts proactive recoveries performed since boot.
func (s *SystemServer) Rejuvenations() int { return s.rejuvenations }

// RecordAppCrash feeds one application crash into the aging model. Repeat
// crashes of the same process inside RepeatWindow carry a much smaller
// weight (crash-loop throttling).
func (s *SystemServer) RecordAppCrash(proc string, builtIn bool) {
	now := s.now()
	w := s.cfg.CrashWeight
	if builtIn {
		w = s.cfg.BuiltInCrashWeight
	}
	if last, ok := s.lastCrashAt[proc]; ok && now.Sub(last) <= s.cfg.RepeatWindow {
		w = s.cfg.RepeatCrashWeight
	}
	s.lastCrashAt[proc] = now
	s.add(w)
}

// RecordANR feeds an ANR into the aging model. usesSensors marks processes
// that hold SensorManager registrations; enough ANRs in such a process make
// the system shoot the sensor service (SIGABRT), reproducing the paper's
// first reboot post-mortem.
func (s *SystemServer) RecordANR(proc string, usesSensors bool) {
	now := s.now()
	s.anrByProcess[proc]++
	w := s.cfg.ANRWeight
	if last, ok := s.lastANRAt[proc]; ok && now.Sub(last) <= s.cfg.RepeatWindow {
		w = s.cfg.RepeatANRWeight
	}
	s.lastANRAt[proc] = now
	s.add(w)
	if s.cfg.RejuvenationEnabled && s.cfg.RejuvenateANRLimit > 0 &&
		s.anrByProcess[proc] == s.cfg.RejuvenateANRLimit {
		s.log.Log(1000, 1000, logcat.Info, logcat.TagSystemServer,
			"rejuvenation: proactively restarting %s after %d ANRs", proc, s.anrByProcess[proc])
		s.anrByProcess[proc] = 0
		s.rejuvenations++
		if s.restartProcess != nil {
			s.restartProcess(proc)
		}
		return
	}
	if usesSensors && s.anrByProcess[proc] == s.cfg.SensorClientANRLimit {
		s.log.Log(1000, 1000, logcat.Warn, logcat.TagWatchdog,
			"Blocked in handler on sensor thread (client %s unresponsive); sending %s to sensorservice",
			proc, javalang.SIGABRT)
		if s.abortSensorService != nil {
			s.abortSensorService()
		}
	}
}

// RecordCoreServiceDown feeds the death of a core native service into the
// aging model.
func (s *SystemServer) RecordCoreServiceDown(name, signal string) {
	s.log.Log(1000, 1000, logcat.Error, logcat.TagSystemServer,
		"core service %s died (%s); system entering unstable state", name, signal)
	s.add(s.cfg.CoreServiceWeight)
}

// RecordStartFailure feeds one failed component start into the model.
// ambientBound marks components that must bind to the Ambient Service (the
// core AW low-power service); a streak of failures there segfaults the
// system process — the paper's second reboot post-mortem.
func (s *SystemServer) RecordStartFailure(cmp intent.ComponentName, ambientBound bool) {
	s.startFailures[cmp]++
	if s.cfg.RejuvenationEnabled && s.cfg.RejuvenateCrashStreak > 0 &&
		s.startFailures[cmp] == s.cfg.RejuvenateCrashStreak {
		s.log.Log(1000, 1000, logcat.Info, logcat.TagSystemServer,
			"rejuvenation: clearing crash-loop state for %s after %d consecutive start failures",
			cmp.FlattenToString(), s.startFailures[cmp])
		delete(s.startFailures, cmp)
		s.rejuvenations++
		return
	}
	if ambientBound && s.startFailures[cmp] == s.cfg.StartFailureLimit {
		s.log.Log(1000, 1000, logcat.Error, logcat.TagSystemServer,
			"unable to bind AmbientService for %s after repeated start failures", cmp.FlattenToString())
		s.log.Log(1000, 1000, logcat.Info, logcat.TagDEBUG,
			"Fatal signal %s in system_server (pid 1000)", javalang.SIGSEGV)
		s.RecordCoreServiceDown("system_server", javalang.SIGSEGV)
	}
}

// RecordStartSuccess resets the failure streak for cmp.
func (s *SystemServer) RecordStartSuccess(cmp intent.ComponentName) {
	delete(s.startFailures, cmp)
}

// MaybeReboot performs the reboot if the threshold was crossed. The OS
// calls this between deliveries so that teardown never reenters dispatch.
// It reports whether a reboot happened.
func (s *SystemServer) MaybeReboot() bool {
	if !s.rebootPending {
		return false
	}
	s.rebootPending = false
	if s.requestReboot != nil {
		s.requestReboot("error accumulation: instability threshold exceeded")
	}
	return true
}

// resetAfterBoot clears the aging state after a reboot.
func (s *SystemServer) resetAfterBoot() {
	s.instability = 0
	s.lastDecay = s.now()
	s.anrByProcess = make(map[string]int)
	s.startFailures = make(map[intent.ComponentName]int)
	s.lastCrashAt = make(map[string]time.Time)
	s.lastANRAt = make(map[string]time.Time)
	s.rebootPending = false
	s.timeline = nil
}
