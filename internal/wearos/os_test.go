package wearos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
)

func cn(pkg, cls string) intent.ComponentName {
	return intent.ComponentName{Package: pkg, Class: pkg + "." + cls}
}

// testDevice builds an OS with one app: an exported activity and an
// exported service whose behaviours the individual tests override.
func testDevice(t *testing.T) *OS {
	t.Helper()
	o := New(DefaultWatchConfig())
	pkg := &manifest.Package{
		Name:     "com.test.app",
		Label:    "Test App",
		Category: manifest.NotHealthFitness,
		Origin:   manifest.ThirdParty,
		Components: []*manifest.Component{
			{Name: cn("com.test.app", "MainActivity"), Type: manifest.Activity, Exported: true, MainLauncher: true},
			{Name: cn("com.test.app", "Worker"), Type: manifest.Service, Exported: true},
			{Name: cn("com.test.app", "Private"), Type: manifest.Service, Exported: false},
			{Name: cn("com.test.app", "Guarded"), Type: manifest.Activity, Exported: true,
				Permission: "android.permission.BODY_SENSORS"},
		},
	}
	if err := o.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	return o
}

func explicit(cnm intent.ComponentName, action string) *intent.Intent {
	return &intent.Intent{Action: action, Component: cnm, SenderUID: UIDAppBase + 100}
}

func TestNoEffectDelivery(t *testing.T) {
	o := testDevice(t)
	in := explicit(cn("com.test.app", "MainActivity"), "android.intent.action.VIEW")
	if got := o.StartActivity(in); got != DeliveredNoEffect {
		t.Fatalf("result = %v", got)
	}
	if o.Process("com.test.app") == nil {
		t.Fatal("process not started")
	}
}

func TestProtectedActionBlocked(t *testing.T) {
	o := testDevice(t)
	in := explicit(cn("com.test.app", "MainActivity"), "android.intent.action.BATTERY_LOW")
	if got := o.StartActivity(in); got != BlockedSecurity {
		t.Fatalf("result = %v, want BlockedSecurity", got)
	}
	// The SecurityException must be visible in logcat for the analyzer.
	found := false
	for _, e := range o.Logcat().Snapshot() {
		if strings.Contains(e.Message, "java.lang.SecurityException") {
			found = true
		}
	}
	if !found {
		t.Fatal("SecurityException not logged")
	}
	// The system itself may send protected actions.
	sys := explicit(cn("com.test.app", "MainActivity"), "android.intent.action.BATTERY_LOW")
	sys.SenderUID = UIDSystem
	if got := o.StartActivity(sys); got != DeliveredNoEffect {
		t.Fatalf("system sender result = %v", got)
	}
}

func TestUnknownComponentNotFound(t *testing.T) {
	o := testDevice(t)
	in := explicit(cn("com.test.app", "Missing"), "android.intent.action.VIEW")
	if got := o.StartActivity(in); got != BlockedNotFound {
		t.Fatalf("activity result = %v", got)
	}
	if got := o.StartService(in); got != BlockedNotFound {
		t.Fatalf("service result = %v", got)
	}
}

func TestNonExportedBlocked(t *testing.T) {
	o := testDevice(t)
	in := explicit(cn("com.test.app", "Private"), "")
	if got := o.StartService(in); got != BlockedSecurity {
		t.Fatalf("result = %v, want BlockedSecurity", got)
	}
}

func TestComponentPermissionEnforced(t *testing.T) {
	o := testDevice(t)
	in := explicit(cn("com.test.app", "Guarded"), "android.intent.action.VIEW")
	if got := o.StartActivity(in); got != BlockedSecurity {
		t.Fatalf("result = %v, want BlockedSecurity", got)
	}
}

func TestWrongKindDoesNotResolve(t *testing.T) {
	o := testDevice(t)
	in := explicit(cn("com.test.app", "Worker"), "")
	if got := o.StartActivity(in); got != BlockedNotFound {
		t.Fatalf("starting service as activity = %v", got)
	}
}

func TestUncaughtExceptionCrashesProcess(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{Thrown: javalang.New(javalang.ClassNullPointer,
			"Attempt to invoke virtual method on a null object reference")}
	}, ComponentTraits{})

	in := explicit(target, "android.intent.action.VIEW")
	if got := o.StartActivity(in); got != DeliveredCrash {
		t.Fatalf("result = %v", got)
	}
	if o.Process("com.test.app") != nil {
		t.Fatal("process survived FATAL EXCEPTION")
	}
	dump := o.Logcat().Dump()
	if !strings.Contains(dump, "FATAL EXCEPTION: main") {
		t.Fatal("no FATAL EXCEPTION block in logcat")
	}
	if !strings.Contains(dump, "java.lang.NullPointerException") {
		t.Fatal("exception class missing from crash block")
	}
	// Process restarts transparently on next delivery.
	o.RegisterHandler(target, nil, ComponentTraits{})
	if got := o.StartActivity(in); got != DeliveredNoEffect {
		t.Fatalf("post-crash delivery = %v", got)
	}
	if o.Process("com.test.app") == nil {
		t.Fatal("process not restarted")
	}
}

func TestCaughtExceptionIsHandled(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "Worker")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{
			Thrown: javalang.New(javalang.ClassIllegalArgument, "bad extra"),
			Caught: true,
		}
	}, ComponentTraits{})
	in := explicit(target, "")
	if got := o.StartService(in); got != DeliveredHandledException {
		t.Fatalf("result = %v", got)
	}
	if o.Process("com.test.app") == nil {
		t.Fatal("caught exception killed the process")
	}
	if !strings.Contains(o.Logcat().Dump(), "caught exception") {
		t.Fatal("handled exception not logged")
	}
}

func TestANRDetection(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{BusyFor: 12 * time.Second}
	}, ComponentTraits{})
	in := explicit(target, "android.intent.action.VIEW")
	if got := o.StartActivity(in); got != DeliveredANR {
		t.Fatalf("result = %v", got)
	}
	dump := o.Logcat().Dump()
	if !strings.Contains(dump, "ANR in com.test.app") {
		t.Fatal("ANR not logged")
	}
	p := o.Process("com.test.app")
	if p == nil || p.ANRs != 1 {
		t.Fatalf("process ANR count wrong: %+v", p)
	}
	if !p.Busy(o.Clock().Now()) {
		t.Fatal("process not marked busy")
	}
}

func TestSensorEscalationPostMortem(t *testing.T) {
	// Post-mortem #1: repeated ANRs in a SensorManager client make the
	// system SIGABRT the sensor service; that instability reboots the
	// device.
	o := testDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{BusyFor: 10 * time.Second}
	}, ComponentTraits{UsesSensorManager: true})
	in := explicit(target, "android.intent.action.VIEW")

	var last DeliveryResult
	for i := 0; i < DefaultAgingConfig().SensorClientANRLimit; i++ {
		last = o.StartActivity(in)
	}
	if last != DeviceRebooted {
		t.Fatalf("final delivery = %v, want DeviceRebooted (instability=%.1f)",
			last, o.SystemServer().Instability())
	}
	if o.BootCount() != 2 {
		t.Fatalf("BootCount = %d, want 2", o.BootCount())
	}
	dump := o.Logcat().Dump()
	for _, want := range []string{"SIGABRT", "libsensorservice", "REBOOTING", "boot #2"} {
		if !strings.Contains(dump, want) {
			t.Errorf("log missing %q", want)
		}
	}
	if o.LiveProcesses() != 0 {
		t.Fatal("processes survived reboot")
	}
}

func TestAmbientBindEscalationPostMortem(t *testing.T) {
	// Post-mortem #2: an ambient-bound built-in component that repeatedly
	// fails to start segfaults the system process and reboots the device.
	o := New(DefaultWatchConfig())
	pkg := &manifest.Package{
		Name:   "com.google.android.builtin",
		Origin: manifest.BuiltIn, Category: manifest.NotHealthFitness,
		Components: []*manifest.Component{
			{Name: cn("com.google.android.builtin", "Face"), Type: manifest.Activity, Exported: true},
		},
	}
	if err := o.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	target := cn("com.google.android.builtin", "Face")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "missing data")}
	}, ComponentTraits{AmbientBound: true})
	in := explicit(target, "android.intent.action.MAIN")

	var rebooted bool
	for i := 0; i < DefaultAgingConfig().StartFailureLimit+1 && !rebooted; i++ {
		rebooted = o.StartActivity(in) == DeviceRebooted
	}
	if !rebooted {
		t.Fatalf("no reboot after start-failure streak (instability=%.1f)",
			o.SystemServer().Instability())
	}
	dump := o.Logcat().Dump()
	for _, want := range []string{"AmbientService", "SIGSEGV", "REBOOTING"} {
		if !strings.Contains(dump, want) {
			t.Errorf("log missing %q", want)
		}
	}
}

func TestStartSuccessResetsFailureStreak(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "MainActivity")
	crash := true
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		if crash {
			return Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "x")}
		}
		return Outcome{}
	}, ComponentTraits{AmbientBound: true})
	in := explicit(target, "android.intent.action.MAIN")

	limit := DefaultAgingConfig().StartFailureLimit
	for i := 0; i < limit-1; i++ {
		if got := o.StartActivity(in); got != DeliveredCrash {
			t.Fatalf("delivery %d = %v", i, got)
		}
	}
	crash = false
	if got := o.StartActivity(in); got != DeliveredNoEffect {
		t.Fatalf("recovery delivery = %v", got)
	}
	crash = true
	// The streak restarted; one more crash must not trip the ambient path.
	if got := o.StartActivity(in); got != DeliveredCrash {
		t.Fatalf("post-recovery crash = %v", got)
	}
	if strings.Contains(o.Logcat().Dump(), "SIGSEGV") {
		t.Fatal("ambient escalation fired despite streak reset")
	}
}

func TestInstabilityDecays(t *testing.T) {
	o := testDevice(t)
	s := o.SystemServer()
	s.RecordAppCrash("com.test.app", false)
	before := s.Instability()
	if before <= 0 {
		t.Fatalf("instability after crash = %v", before)
	}
	o.Clock().Advance(DefaultAgingConfig().HalfLife)
	after := s.Instability()
	if after >= before*0.55 || after <= before*0.45 {
		t.Fatalf("decay after one half-life: %.3f -> %.3f", before, after)
	}
}

func TestCrashDoesNotRebootImmediately(t *testing.T) {
	// Single crashes must never reboot the device: the paper's reboots come
	// only from escalation chains.
	o := testDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "x")}
	}, ComponentTraits{})
	in := explicit(target, "android.intent.action.VIEW")
	for i := 0; i < 10; i++ {
		if got := o.StartActivity(in); got == DeviceRebooted {
			t.Fatal("isolated crashes rebooted the device")
		}
		// Pace like the fuzzer does; decay keeps instability bounded.
		o.Clock().Advance(100 * time.Millisecond)
	}
	if o.BootCount() != 1 {
		t.Fatalf("BootCount = %d", o.BootCount())
	}
}

func TestLastDelivered(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "Worker")
	if got := o.StartService(explicit(target, "")); got != DeliveredNoEffect {
		t.Fatalf("result = %v", got)
	}
	p := o.Process("com.test.app")
	got, ok := o.LastDelivered(p.PID)
	if !ok || got != target {
		t.Fatalf("LastDelivered = %v %v", got, ok)
	}
}

func TestDispatchLogsStartEntries(t *testing.T) {
	o := testDevice(t)
	in := explicit(cn("com.test.app", "MainActivity"), "android.intent.action.VIEW")
	o.StartActivity(in)
	dump := o.Logcat().Dump()
	if !strings.Contains(dump, "START u0 {act=android.intent.action.VIEW") {
		t.Fatalf("missing START log:\n%s", dump)
	}
	if !strings.Contains(dump, "Delivering to activity cmp=com.test.app/.MainActivity") {
		t.Fatalf("missing delivery log:\n%s", dump)
	}
}
