package wearos

import (
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
)

func TestDropBoxRecordsCrash(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		root := javalang.New(javalang.ClassNullPointer, "npe")
		return Outcome{Thrown: javalang.New(javalang.ClassRuntime, "wrap").WithCause(root)}
	}, ComponentTraits{})
	o.StartActivity(explicit(target, "android.intent.action.VIEW"))

	entries := o.DropBoxEntries(TagAppCrash)
	if len(entries) != 1 {
		t.Fatalf("crash entries = %d", len(entries))
	}
	e := entries[0]
	if e.Process != "com.test.app" || e.Component != target {
		t.Fatalf("entry = %+v", e)
	}
	// DropBox records the *root cause*, like the temporal-chain analysis.
	if e.ExceptionClass != javalang.ClassNullPointer {
		t.Fatalf("exception class = %s", e.ExceptionClass)
	}
}

func TestDropBoxRecordsANR(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "Worker")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{
			BusyFor: 10 * time.Second,
			Thrown:  javalang.New(javalang.ClassDeadObject, "binder"),
		}
	}, ComponentTraits{})
	o.StartService(explicit(target, ""))

	entries := o.DropBoxEntries(TagAppANR)
	if len(entries) != 1 {
		t.Fatalf("ANR entries = %d", len(entries))
	}
	if entries[0].ExceptionClass != javalang.ClassDeadObject {
		t.Fatalf("ANR exception class = %s", entries[0].ExceptionClass)
	}
}

func TestDropBoxRecordsReboot(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{BusyFor: 10 * time.Second}
	}, ComponentTraits{UsesSensorManager: true})
	for i := 0; i < DefaultAgingConfig().SensorClientANRLimit; i++ {
		o.StartActivity(explicit(target, "android.intent.action.VIEW"))
	}
	if o.BootCount() != 2 {
		t.Fatal("device did not reboot")
	}
	restarts := o.DropBoxEntries(TagSystemRestart)
	if len(restarts) != 1 {
		t.Fatalf("restart entries = %d", len(restarts))
	}
	// DropBox persists across the reboot (unlike process state).
	if anrs := o.DropBoxEntries(TagAppANR); len(anrs) == 0 {
		t.Fatal("ANR records lost across reboot")
	}
	// Unfiltered query returns everything.
	if all := o.DropBoxEntries(""); len(all) < 4 {
		t.Fatalf("all entries = %d", len(all))
	}
}

func TestDropBoxEviction(t *testing.T) {
	d := newDropBox()
	d.limit = 3
	for i := 0; i < 5; i++ {
		d.add(DropBoxEntry{Detail: string(rune('a' + i))})
	}
	if len(d.entries) != 3 {
		t.Fatalf("entries = %d", len(d.entries))
	}
	if d.entries[0].Detail != "c" {
		t.Fatalf("oldest retained = %q", d.entries[0].Detail)
	}
}
