package wearos

import (
	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/manifest"
)

// Service binding. startService fire-and-forgets; bindService establishes
// a Binder connection the client can transact over and get death
// notifications from — the mechanism behind the paper's second post-mortem
// ("the application crashed several times ... that prevented it from
// binding to the Ambient Service").

// Connection is a live client->service binding.
type Connection struct {
	os       *OS
	endpoint string
	comp     intent.ComponentName
	closed   bool
}

// Component returns the bound service's component name.
func (c *Connection) Component() intent.ComponentName { return c.comp }

// Transact sends a synchronous transaction to the bound service. After the
// service process dies the transaction fails with DeadObjectException —
// the signal the paper's unresponsive-column analysis surfaces.
func (c *Connection) Transact(code int, data any) (any, *javalang.Throwable) {
	if c.closed {
		return nil, javalang.New(javalang.ClassIllegalState, "connection closed")
	}
	return c.os.router.Transact(c.endpoint, code, data)
}

// OnDeath registers fn to fire when the service's process dies.
func (c *Connection) OnDeath(fn func()) error {
	return c.os.router.LinkToDeath(c.endpoint, fn)
}

// Close unbinds; subsequent transactions fail.
func (c *Connection) Close() {
	c.closed = true
}

// BindHandler serves transactions for a bound service. Components without
// a registered bind handler answer with a simple echo (a service that
// binds fine but has no custom protocol).
type BindHandler func(code int, data any) (any, *javalang.Throwable)

// RegisterBindHandler attaches the transaction protocol for a service.
func (o *OS) RegisterBindHandler(cn intent.ComponentName, h BindHandler) {
	o.bindHandlers[cn] = h
}

// BindService resolves and binds a service, returning a live connection.
// The same checks as dispatch() apply: protected action, resolution,
// export, permission. Binding starts the process if needed and publishes a
// Binder endpoint owned by it.
func (o *OS) BindService(in *intent.Intent) (*Connection, *javalang.Throwable) {
	o.logDispatch("bindService", in)

	if intent.IsProtected(in.Action) && in.SenderUID != UIDSystem {
		thr := javalang.Newf(javalang.ClassSecurity,
			"Permission Denial: not allowed to bind with %s from uid=%d", in.Action, in.SenderUID)
		o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager,
			"%s targeting %s", thr.Error(), in.Component.FlattenToString())
		return nil, thr
	}
	comp := o.reg.Resolve(in, manifest.Service)
	if comp == nil {
		return nil, javalang.Newf(javalang.ClassIllegalArgument,
			"Service not registered: %s", in.Component.FlattenToString())
	}
	if (!comp.Exported || comp.Permission != "") && in.SenderUID != UIDSystem {
		thr := javalang.Newf(javalang.ClassSecurity,
			"Permission Denial: binding %s requires permission", comp.Name.FlattenToString())
		o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager,
			"%s targeting %s", thr.Error(), comp.Name.FlattenToString())
		return nil, thr
	}

	proc := o.ensureProcess(comp.Name.Package)
	endpoint := comp.BindEndpoint()
	cn := comp.Name
	o.router.Publish(endpoint, proc.PID, func(code int, data any) (any, *javalang.Throwable) {
		if h, ok := o.bindHandlers[cn]; ok {
			return h(code, data)
		}
		return data, nil // default echo protocol
	})
	o.log.Log(1000, 1000, logcat.Info, logcat.TagActivityManager,
		"Bound %s to pid=%d", comp.Flat(), proc.PID)
	return &Connection{os: o, endpoint: endpoint, comp: comp.Name}, nil
}
