package wearos

import (
	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/manifest"
)

// Broadcast delivery. QGJ's campaigns target Activities and Services
// "because they form the large majority of the components on AW apps"
// (Section III-B), but the JJB tool QGJ descends from also fuzzes
// Broadcast Receivers, and the substrate supports them for completeness:
// protected-broadcast enforcement is where the SecurityException behaviour
// is specified in AOSP in the first place.

// BroadcastResult summarizes one broadcast: how many receivers got it and
// the worst per-receiver outcome.
type BroadcastResult struct {
	// Delivered counts receivers the broadcast reached.
	Delivered int
	// Worst is the most severe delivery result among receivers;
	// BlockedSecurity/BlockedNotFound when nothing was reachable.
	Worst DeliveryResult
}

// SendBroadcast dispatches a broadcast intent. Explicit broadcasts go to
// the named receiver; implicit ones fan out to every matching exported
// receiver. Protected actions from non-system senders are rejected exactly
// like in dispatch().
func (o *OS) SendBroadcast(in *intent.Intent) BroadcastResult {
	o.logDispatch("broadcastIntent", in)

	if intent.IsProtected(in.Action) && in.SenderUID != UIDSystem {
		thr := javalang.Newf(javalang.ClassSecurity,
			"Permission Denial: not allowed to send broadcast %s from pid=?, uid=%d", in.Action, in.SenderUID)
		o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager,
			"%s targeting %s", thr.Error(), in.Component.FlattenToString())
		return BroadcastResult{Worst: BlockedSecurity}
	}

	var targets []*manifest.Component
	if in.IsExplicit() {
		c := o.reg.Component(in.Component)
		if c == nil || c.Type != manifest.Receiver {
			o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager,
				"Unable to find receiver %s", in.Component.FlattenToString())
			return BroadcastResult{Worst: BlockedNotFound}
		}
		targets = append(targets, c)
	} else {
		for _, c := range o.reg.AllComponents(manifest.Receiver) {
			if !c.Exported {
				continue
			}
			for _, f := range c.Filters {
				if f.Matches(in) {
					targets = append(targets, c)
					break
				}
			}
		}
		if len(targets) == 0 {
			return BroadcastResult{Worst: BlockedNotFound}
		}
	}

	res := BroadcastResult{}
	for _, comp := range targets {
		if !comp.Exported && in.SenderUID != UIDSystem {
			o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager,
				"java.lang.SecurityException: Permission Denial: broadcasting to non-exported %s targeting %s",
				comp.Name.FlattenToString(), comp.Name.FlattenToString())
			res.worsen(BlockedSecurity)
			continue
		}
		if comp.Permission != "" && in.SenderUID != UIDSystem {
			o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager,
				"java.lang.SecurityException: Permission Denial: broadcast requires %s targeting %s",
				comp.Permission, comp.Name.FlattenToString())
			res.worsen(BlockedSecurity)
			continue
		}
		proc := o.ensureProcess(comp.Name.Package)
		o.lastDeliver[proc.PID] = comp.Name
		o.log.LogLazy(1000, 1000, logcat.Info, logcat.TagActivityManager, logcat.Payload{
			Op:   logcat.MsgDelivering,
			Verb: "receiver",
			Comp: comp.Name,
			PID:  proc.PID,
		})

		h := o.handlers[comp.Name]
		var out Outcome
		if h != nil {
			o.env = Env{PID: proc.PID, Clock: o.clock, Log: o.log}
			out = h(&o.env, in)
		}
		dr := o.settle(proc, comp, o.traits[comp.Name], out)
		res.Delivered++
		res.worsen(dr)
		if o.sysSrv.MaybeReboot() {
			res.worsen(DeviceRebooted)
			break
		}
	}
	return res
}

// severityRank orders DeliveryResult by badness for Worst tracking.
func severityRank(r DeliveryResult) int {
	switch r {
	case DeviceRebooted:
		return 6
	case DeliveredCrash:
		return 5
	case DeliveredANR:
		return 4
	case BlockedSecurity:
		return 3
	case DeliveredRejected:
		return 2
	case DeliveredHandledException:
		return 1
	case BlockedNotFound, DeliveredNoEffect:
		return 0
	default:
		return 0
	}
}

func (r *BroadcastResult) worsen(dr DeliveryResult) {
	if r.Worst == 0 || severityRank(dr) > severityRank(r.Worst) {
		r.Worst = dr
	}
}
