package wearos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
)

// snapTestPackage returns a fresh package value for install into one device;
// each call builds its own components so no state is shared between the
// devices a test compares.
func snapTestPackage() *manifest.Package {
	return &manifest.Package{
		Name:     "com.test.app",
		Label:    "Test App",
		Category: manifest.NotHealthFitness,
		Origin:   manifest.ThirdParty,
		Components: []*manifest.Component{
			{Name: cn("com.test.app", "MainActivity"), Type: manifest.Activity, Exported: true, MainLauncher: true},
			{Name: cn("com.test.app", "Worker"), Type: manifest.Service, Exported: true},
		},
	}
}

// driveWorkload sends the same mixed intent sequence to a device: clean
// deliveries, a crash, an ANR, and a security denial — every settle path
// that writes logcat, dropbox, process table, and aging state.
func driveWorkload(t *testing.T, o *OS) {
	t.Helper()
	if err := o.InstallPackage(snapTestPackage()); err != nil {
		t.Fatal(err)
	}
	main := cn("com.test.app", "MainActivity")
	worker := cn("com.test.app", "Worker")
	o.RegisterHandler(main, func(env *Env, in *intent.Intent) Outcome {
		switch in.Action {
		case "android.intent.action.EDIT":
			return Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "null object reference")}
		case "android.intent.action.SEARCH":
			return Outcome{BusyFor: 6 * time.Second}
		}
		return Outcome{}
	}, ComponentTraits{})
	for _, action := range []string{
		"android.intent.action.VIEW",
		"android.intent.action.EDIT",
		"android.intent.action.SEARCH",
		"android.intent.action.VIEW",
	} {
		o.StartActivity(explicit(main, action))
	}
	o.StartService(explicit(worker, ""))
	// A denial exercises the cached gate-message path.
	o.StartActivity(explicit(cn("com.test.app", "Missing"), "android.intent.action.VIEW"))
}

// TestCloneMatchesFreshBoot is the determinism contract: a clone driven
// through a workload produces a byte-identical logcat dump — and identical
// derived state — to a freshly booted device driven identically.
func TestCloneMatchesFreshBoot(t *testing.T) {
	fresh := New(DefaultWatchConfig())

	snap, err := New(DefaultWatchConfig()).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clone := snap.Clone()

	driveWorkload(t, fresh)
	driveWorkload(t, clone)

	if f, c := fresh.Logcat().Dump(), clone.Logcat().Dump(); f != c {
		t.Fatalf("logcat dumps diverge:\n--- fresh ---\n%s\n--- clone ---\n%s", f, c)
	}
	if f, c := fresh.BootCount(), clone.BootCount(); f != c {
		t.Fatalf("BootCount fresh=%d clone=%d", f, c)
	}
	if f, c := fresh.Uptime(), clone.Uptime(); f != c {
		t.Fatalf("Uptime fresh=%v clone=%v", f, c)
	}
	if f, c := fresh.LiveProcesses(), clone.LiveProcesses(); f != c {
		t.Fatalf("LiveProcesses fresh=%d clone=%d", f, c)
	}
	if f, c := fresh.SystemServer().Instability(), clone.SystemServer().Instability(); f != c {
		t.Fatalf("Instability fresh=%v clone=%v", f, c)
	}
	if f, c := len(fresh.DropBoxEntries("")), len(clone.DropBoxEntries("")); f != c {
		t.Fatalf("dropbox entries fresh=%d clone=%d", f, c)
	}
	// Process identity must match too: PID allocation on the clone continued
	// from the template's allocator state.
	fp, cp := fresh.Process("com.test.app"), clone.Process("com.test.app")
	if fp == nil || cp == nil || fp.PID != cp.PID || fp.UID != cp.UID {
		t.Fatalf("process identity fresh=%+v clone=%+v", fp, cp)
	}
}

// TestCloneIsolation verifies that mutating one clone leaks into neither
// the template device nor a sibling clone.
func TestCloneIsolation(t *testing.T) {
	template := New(DefaultWatchConfig())
	snap, err := template.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	baselineDump := template.Logcat().Dump()

	noisy := snap.Clone()
	quiet := snap.Clone()
	driveWorkload(t, noisy)

	if got := template.Logcat().Dump(); got != baselineDump {
		t.Fatal("mutating a clone changed the template's logcat")
	}
	if template.LiveProcesses() != 0 || len(template.DropBoxEntries("")) != 0 {
		t.Fatal("mutating a clone changed the template's process/dropbox state")
	}
	if got := quiet.Logcat().Dump(); got != baselineDump {
		t.Fatal("mutating a clone changed a sibling clone's logcat")
	}
	if quiet.SystemServer().Instability() != 0 {
		t.Fatal("mutating a clone aged a sibling clone")
	}
	// The sibling stays fully usable and independent afterwards.
	driveWorkload(t, quiet)
	if quiet.Logcat().Dump() != noisy.Logcat().Dump() {
		t.Fatal("identically driven siblings diverged")
	}
}

// TestCloneBootCountAfterReboot pins the BootCount accounting satellite: a
// cloned device reports the template's boot plus its own simulated reboots,
// while the template and sibling clones stay at the template's count.
func TestCloneBootCountAfterReboot(t *testing.T) {
	template := New(DefaultWatchConfig())
	snap, err := template.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clone := snap.Clone()
	if clone.BootCount() != 1 {
		t.Fatalf("clone BootCount = %d, want 1 (the template's boot)", clone.BootCount())
	}

	// Drive the core-service escalation (the paper's reboot mechanism): a
	// core service death pushes instability past the threshold and the next
	// MaybeReboot tears the device down.
	clone.SystemServer().RecordCoreServiceDown("sensorservice", javalang.SIGABRT)
	if !clone.SystemServer().MaybeReboot() {
		t.Fatal("core service death did not trigger a reboot")
	}
	if clone.BootCount() != 2 {
		t.Fatalf("clone BootCount after reboot = %d, want 2", clone.BootCount())
	}
	if len(clone.RebootTimes()) != 1 {
		t.Fatalf("clone RebootTimes = %v, want one entry", clone.RebootTimes())
	}
	if !strings.Contains(clone.Logcat().Dump(), "boot #2") {
		t.Fatal("clone's second boot banner missing from logcat")
	}
	if template.BootCount() != 1 {
		t.Fatalf("template BootCount = %d after clone reboot, want 1", template.BootCount())
	}
	if sibling := snap.Clone(); sibling.BootCount() != 1 {
		t.Fatalf("sibling BootCount = %d, want 1", sibling.BootCount())
	}

	// A fresh device pushed through the same reboot reports the same count
	// and the same log — reboot accounting under cloning is indistinguishable
	// from fresh-boot accounting.
	fresh := New(DefaultWatchConfig())
	fresh.SystemServer().RecordCoreServiceDown("sensorservice", javalang.SIGABRT)
	if !fresh.SystemServer().MaybeReboot() {
		t.Fatal("fresh device did not reboot")
	}
	if fresh.BootCount() != clone.BootCount() {
		t.Fatalf("BootCount fresh=%d clone=%d", fresh.BootCount(), clone.BootCount())
	}
	if fresh.Logcat().Dump() != clone.Logcat().Dump() {
		t.Fatal("reboot logs diverge between fresh device and clone")
	}
}

// TestSnapshotRefusesNonQuiescent pins the invalidation rule: snapshots are
// only taken right after boot, never mid-campaign.
func TestSnapshotRefusesNonQuiescent(t *testing.T) {
	o := testDevice(t)
	if _, err := o.Snapshot(); err != nil {
		t.Fatalf("installed-but-idle device should snapshot, got %v", err)
	}

	o.StartActivity(explicit(cn("com.test.app", "MainActivity"), "android.intent.action.VIEW"))
	if _, err := o.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded with a live app process")
	}

	bound := testDevice(t)
	if _, thr := bound.BindService(explicit(cn("com.test.app", "Worker"), "")); thr != nil {
		t.Fatalf("bind failed: %v", thr)
	}
	if _, err := bound.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded with a published binder endpoint")
	}

	aborted := New(DefaultWatchConfig())
	aborted.SensorService().Abort(javalang.SIGABRT)
	if _, err := aborted.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded with the sensor service down")
	}
}

// TestSnapshotCarriesInstalledPackages covers the wearos-level contract the
// farm does not use: snapshotting after installs shares the packages and
// handler tables with every clone.
func TestSnapshotCarriesInstalledPackages(t *testing.T) {
	template := New(DefaultWatchConfig())
	if err := template.InstallPackage(snapTestPackage()); err != nil {
		t.Fatal(err)
	}
	template.RegisterHandler(cn("com.test.app", "MainActivity"),
		func(env *Env, in *intent.Intent) Outcome { return Outcome{} }, ComponentTraits{})
	snap, err := template.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clone := snap.Clone()
	if clone.Registry().Package("com.test.app") == nil {
		t.Fatal("installed package missing from clone registry")
	}
	if got := clone.StartActivity(explicit(cn("com.test.app", "MainActivity"), "android.intent.action.VIEW")); got != DeliveredNoEffect {
		t.Fatalf("delivery on clone = %v", got)
	}
	if clone.Logcat().Dump() == template.Logcat().Dump() {
		t.Fatal("clone delivery did not extend its own log")
	}
}
