package wearos

import (
	"fmt"
	"os"
	"time"

	"repro/internal/binder"
	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/manifest"
	"repro/internal/sensors"
	"repro/internal/telemetry"
	"repro/internal/vclock"
)

// Config describes one simulated device.
type Config struct {
	// DeviceName appears in boot logs (e.g. "moto360", "nexus6",
	// "wear-emulator").
	DeviceName string
	// OSVersion appears in boot logs (e.g. "Android Wear 2.0", "Android 7.1.1").
	OSVersion string
	// ANRThreshold is how long the main looper may stay busy before the
	// watchdog declares an ANR. Android uses 5 s for input dispatch.
	ANRThreshold time.Duration
	// LogCapacity bounds the logcat ring buffer (0 = default).
	LogCapacity int
	// Aging parameterizes the system-server aging model.
	Aging AgingConfig
	// DisableTelemetry skips creating the device metric registry and span
	// tracer; every instrumentation site degrades to a nil-check. The zero
	// value keeps telemetry on.
	DisableTelemetry bool
}

// DefaultWatchConfig returns the Moto 360 / Android Wear 2.0 configuration
// used in the paper's QGJ-Master experiments.
func DefaultWatchConfig() Config {
	return Config{
		DeviceName:   "moto360",
		OSVersion:    "Android Wear 2.0",
		ANRThreshold: 5 * time.Second,
		Aging:        DefaultAgingConfig(),
	}
}

// DefaultPhoneConfig returns the Nexus 6 / Android 7.1.1 configuration used
// for the phone-comparison experiment (Table IV).
func DefaultPhoneConfig() Config {
	return Config{
		DeviceName:   "nexus6",
		OSVersion:    "Android 7.1.1",
		ANRThreshold: 5 * time.Second,
		Aging:        DefaultAgingConfig(),
	}
}

// DefaultEmulatorConfig returns the Android Watch emulator (API 25)
// configuration used in the QGJ-UI experiments.
func DefaultEmulatorConfig() Config {
	return Config{
		DeviceName:   "wear-emulator",
		OSVersion:    "Android 7.1.1 (API 25)",
		ANRThreshold: 5 * time.Second,
		Aging:        DefaultAgingConfig(),
	}
}

// Outcome is what a component handler reports back to the dispatcher after
// processing an intent. Handlers come from the synthetic app fleet.
type Outcome struct {
	// Thrown is the exception raised while handling the intent (nil when
	// handling was clean).
	Thrown *javalang.Throwable
	// Caught marks the exception as handled inside the app (logged, no
	// crash).
	Caught bool
	// Rejected marks the exception as thrown back across the IPC boundary
	// to the caller instead of crashing the component: the component (or
	// the framework on its behalf) validated the intent and refused it.
	// This is how the paper observes large numbers of
	// IllegalArgumentExceptions that do not crash anything: the exception
	// is uncaught by the *target* but absorbed by the *sender* (QGJ).
	Rejected bool
	// BusyFor occupies the process main looper for the given duration;
	// exceeding the ANR threshold produces an ANR.
	BusyFor time.Duration
}

// Handler executes a component's reaction to a delivered intent. Env gives
// the handler access to its process identity and the device clock.
type Handler func(env *Env, in *intent.Intent) Outcome

// Env is the execution environment the dispatcher hands to a component
// handler.
type Env struct {
	PID   int
	Clock vclock.Clock
	Log   *logcat.Logger
}

// DeliveryResult classifies what the dispatcher observed for one intent.
// This is QGJ's *summary* view; the study's ground truth comes from parsing
// logcat, like the paper.
type DeliveryResult int

const (
	// DeliveredNoEffect: handled without any visible failure.
	DeliveredNoEffect DeliveryResult = iota + 1
	// DeliveredHandledException: an exception was raised but caught by the
	// app.
	DeliveredHandledException
	// DeliveredRejected: the component threw a validation exception back to
	// the caller; no crash, intent refused.
	DeliveredRejected
	// DeliveredCrash: uncaught exception; process died (FATAL EXCEPTION).
	DeliveredCrash
	// DeliveredANR: the component wedged the main looper past the ANR
	// threshold.
	DeliveredANR
	// BlockedSecurity: the OS rejected the intent with a SecurityException.
	BlockedSecurity
	// BlockedNotFound: no such component (ActivityNotFoundException or
	// service resolution failure).
	BlockedNotFound
	// DeviceRebooted: delivering this intent pushed the device over the
	// instability threshold and it rebooted.
	DeviceRebooted
)

// String names the delivery result.
func (r DeliveryResult) String() string {
	switch r {
	case DeliveredNoEffect:
		return "no-effect"
	case DeliveredHandledException:
		return "handled-exception"
	case DeliveredRejected:
		return "rejected"
	case DeliveredCrash:
		return "crash"
	case DeliveredANR:
		return "anr"
	case BlockedSecurity:
		return "security-blocked"
	case BlockedNotFound:
		return "not-found"
	case DeviceRebooted:
		return "reboot"
	default:
		return "unknown"
	}
}

// ComponentTraits carries per-component facts the OS needs for its failure
// escalation paths; the fleet builder registers them alongside handlers.
type ComponentTraits struct {
	// UsesSensorManager marks components whose process holds SensorManager
	// registrations (post-mortem #1 escalation).
	UsesSensorManager bool
	// AmbientBound marks components that bind the Ambient Service when they
	// start (post-mortem #2 escalation).
	AmbientBound bool
}

// OS is one simulated device's operating system. Not safe for concurrent
// use; the simulation is single-threaded by design (see package comment).
type OS struct {
	cfg    Config
	clock  *vclock.Virtual
	buf    *logcat.Buffer
	log    *logcat.Logger
	reg    *manifest.Registry
	perms  *manifest.PermissionRegistry
	router *binder.Router
	procs  *processTable
	sysSrv *SystemServer
	sensor *sensors.Service

	handlers     map[intent.ComponentName]Handler
	traits       map[intent.ComponentName]ComponentTraits
	bindHandlers map[intent.ComponentName]BindHandler

	bootCount   int
	bootTime    time.Time
	rebootLog   []time.Time
	lastDeliver map[int]intent.ComponentName // pid -> last component delivered
	dropbox     *dropBox

	tel         *telemetry.Registry
	tracer      *telemetry.Tracer
	rec         *telemetry.Recorder
	osm         osMetrics
	dispatchSeq uint64
	// faultHooks bracket each dispatch when a fault-injection engine is
	// attached; both fields are nil in normal operation so the dormant cost
	// is one predicate check per dispatch (benchgate-enforced).
	faultHooks FaultHooks
	// storageFault, when set, is consulted before every DropBox write; a
	// non-nil Throwable drops the record the way a failing /data partition
	// loses dropbox entries. storageDropped counts the losses.
	storageFault   func() *javalang.Throwable
	storageDropped uint64
	// dispatchPending batches wearos_dispatch_total increments per result;
	// the batch is flushed to the shared atomics every dispatchFlushEvery
	// dispatches and by FlushTelemetry (see the constant's comment).
	dispatchPending [DeviceRebooted + 1]uint32

	// gateMsgs caches fully rendered gate-denial log lines. Denials are
	// deterministic per (component, action, uid, kind, reason), and fuzzing
	// campaigns hammer the same denials millions of times, so each distinct
	// line is formatted exactly once.
	gateMsgs map[gateKey]string
	// env is the reusable handler environment; the simulation is
	// single-threaded and handlers must not retain it past their call.
	env Env
}

// gateKey identifies one deterministic gate-denial message.
type gateKey struct {
	comp   intent.ComponentName
	action string
	uid    int
	kind   manifest.ComponentType
	reason uint8
}

// Gate denial reasons (gateKey.reason).
const (
	gateProtected uint8 = iota + 1
	gateNotFound
	gateNotExported
	gateNeedsPermission
)

// gateMsg returns the cached denial line for k, rendering it with build on
// first use.
func (o *OS) gateMsg(k gateKey, build func() string) string {
	if msg, ok := o.gateMsgs[k]; ok {
		return msg
	}
	msg := build()
	o.gateMsgs[k] = msg
	return msg
}

// spanSampleEvery is the dispatch span sampling rate (power of two). A span
// per delivery costs several allocations and tracer mutex round-trips —
// far over the telemetry overhead budget at millions of intents — so only
// every Nth dispatch is traced. Counters and histograms remain exact. The
// rate is set so the amortized span cost stays under the <5% overhead
// budget now that an uninstrumented dispatch runs in a few hundred ns.
const spanSampleEvery = 512

// dispatchFlushEvery is the batching window for the per-result
// wearos_dispatch_total counters (power of two). The simulation is
// single-threaded, so the exact tallies accumulate in a plain array and the
// shared atomics are only touched once per window; the fuzzer flushes at
// every component-run boundary so campaign-scale scrapes stay exact.
const dispatchFlushEvery = 16

// instabilitySampleEvery is how often a clean (no-effect) dispatch refreshes
// the wearos_instability gauge (power of two). Instability only rises on
// failures — which refresh the gauge immediately — so between failures the
// gauge merely tracks decay, and a sampled refresh keeps scrapes fresh
// without paying the decay computation per intent.
const instabilitySampleEvery = 16

// osMetrics caches the device-level metric handles so hot paths touch only
// atomics, never the registry map. All fields are nil (no-op) when telemetry
// is disabled.
type osMetrics struct {
	// dispatch is indexed by DeliveryResult (valid values start at 1, so
	// index 0 is unused); an array beats a map on the per-intent path.
	dispatch    [DeviceRebooted + 1]*telemetry.Counter
	procStarts  *telemetry.Counter
	procDeaths  *telemetry.Counter
	anrs        *telemetry.Counter
	reboots     *telemetry.Counter
	instability *telemetry.Gauge
	liveProcs   *telemetry.Gauge
	bootCount   *telemetry.Gauge
}

func newOSMetrics(reg *telemetry.Registry) osMetrics {
	m := osMetrics{
		procStarts:  reg.Counter("wearos_process_starts_total"),
		procDeaths:  reg.Counter("wearos_process_deaths_total"),
		anrs:        reg.Counter("wearos_anr_total"),
		reboots:     reg.Counter("wearos_reboots_total"),
		instability: reg.Gauge("wearos_instability"),
		liveProcs:   reg.Gauge("wearos_live_processes"),
		bootCount:   reg.Gauge("wearos_boot_count"),
	}
	if reg != nil {
		for r := DeliveredNoEffect; r <= DeviceRebooted; r++ {
			m.dispatch[r] = reg.Counter("wearos_dispatch_total", telemetry.L("result", r.String()))
		}
	}
	return m
}

// New boots a simulated device with the given configuration.
func New(cfg Config) *OS {
	o := newKernel(cfg, vclock.NewVirtual(time.Time{}), logcat.NewBuffer(cfg.LogCapacity))
	o.logBootSequence()
	return o
}

// newKernel wires up every OS subsystem around the provided clock and log
// buffer without logging the boot sequence. New composes it with a fresh
// clock and an eagerly allocated ring; Snapshot.Clone composes it with the
// template's frozen clock time and a lazily grown ring pre-seeded with the
// boot baseline.
func newKernel(cfg Config, clock *vclock.Virtual, buf *logcat.Buffer) *OS {
	log := logcat.NewLogger(buf, clock.Now)
	if cfg.ANRThreshold <= 0 {
		cfg.ANRThreshold = 5 * time.Second
	}
	var tel *telemetry.Registry
	var tracer *telemetry.Tracer
	if !cfg.DisableTelemetry {
		tel = telemetry.NewRegistry()
		tracer = telemetry.NewTracer(nil, telemetry.DefaultSpanCapacity)
	}
	o := &OS{
		cfg:          cfg,
		clock:        clock,
		buf:          buf,
		log:          log,
		tel:          tel,
		tracer:       tracer,
		reg:          manifest.NewRegistry(),
		perms:        manifest.NewPermissionRegistry(manifest.StandardPermissions...),
		router:       binder.NewRouter(),
		procs:        newProcessTable(2000),
		handlers:     make(map[intent.ComponentName]Handler),
		traits:       make(map[intent.ComponentName]ComponentTraits),
		bindHandlers: make(map[intent.ComponentName]BindHandler),
		lastDeliver:  make(map[int]intent.ComponentName),
		dropbox:      newDropBox(),
		gateMsgs:     make(map[gateKey]string),
	}
	o.sysSrv = newSystemServer(cfg.Aging, clock.Now, log)
	o.sysSrv.requestReboot = o.reboot
	o.sensor = sensors.NewService(o.procs.allocPID(), log)
	o.sensor.OnAbort(func(sig string) {
		o.sysSrv.RecordCoreServiceDown("sensorservice", sig)
	})
	o.sysSrv.abortSensorService = func() { o.sensor.Abort(javalang.SIGABRT) }
	o.sysSrv.restartProcess = func(proc string) {
		if p := o.procs.kill(proc); p != nil {
			o.router.SetAlive(p.PID, false)
			o.osm.procDeaths.Inc()
			o.osm.liveProcs.Set(float64(o.procs.live()))
			o.log.Log(1000, 1000, logcat.Info, logcat.TagActivityManager,
				"Killing %d:%s: rejuvenation", p.PID, proc)
		}
	}
	o.osm = newOSMetrics(tel)
	o.router.SetTelemetry(tel)
	o.buf.SetTelemetry(tel)
	o.buf.OnFirstDrop(func(capacity int) {
		fmt.Fprintf(os.Stderr,
			"wearos: logcat ring full (capacity %d): oldest lines are being dropped and stay invisible to the analyzer\n",
			capacity)
	})
	return o
}

func (o *OS) logBootSequence() {
	o.bootCount++
	o.bootTime = o.clock.Now()
	o.osm.bootCount.Set(float64(o.bootCount))
	o.log.Log(1, 1, logcat.Info, logcat.TagBoot,
		"%s booting %s (boot #%d)", o.cfg.DeviceName, o.cfg.OSVersion, o.bootCount)
	o.log.Log(1000, 1000, logcat.Info, logcat.TagSystemServer, "system_server started")
	o.log.Log(1, 1, logcat.Info, logcat.TagBoot, "BOOT_COMPLETED")
}

// Clock returns the device's virtual clock; the fuzzer advances it to pace
// injections.
func (o *OS) Clock() *vclock.Virtual { return o.clock }

// Logcat returns the device log buffer (adb logcat's source).
func (o *OS) Logcat() *logcat.Buffer { return o.buf }

// Logger returns a logger stamping entries with device time.
func (o *OS) Logger() *logcat.Logger { return o.log }

// Registry returns the package registry (the PackageManager data plane).
func (o *OS) Registry() *manifest.Registry { return o.reg }

// Permissions returns the device permission registry.
func (o *OS) Permissions() *manifest.PermissionRegistry { return o.perms }

// Binder returns the device's binder router.
func (o *OS) Binder() *binder.Router { return o.router }

// SensorService exposes the native sensor service.
func (o *OS) SensorService() *sensors.Service { return o.sensor }

// SystemServer exposes the aging model, mainly for tests and diagnostics.
func (o *OS) SystemServer() *SystemServer { return o.sysSrv }

// Telemetry returns the device metric registry, or nil when
// Config.DisableTelemetry is set. The registry is safe to scrape from other
// goroutines while the (single-threaded) simulation runs.
func (o *OS) Telemetry() *telemetry.Registry { return o.tel }

// Tracer returns the device span tracer, or nil when telemetry is disabled.
func (o *OS) Tracer() *telemetry.Tracer { return o.tracer }

// SetFlightRecorder attaches a flight recorder: the dispatcher, the gates,
// the failure oracles, and the binder router record structured events into
// it from then on. The recorder is stamped from the device clock. Passing
// nil detaches. Attachment is orthogonal to Config.DisableTelemetry so the
// farm can record flight windows on shard devices whose metric registries
// are attached (or not) separately.
func (o *OS) SetFlightRecorder(rec *telemetry.Recorder) {
	o.rec = rec
	rec.SetClock(o.clock.Now)
	o.router.SetFlightRecorder(rec)
}

// FlightRecorder returns the attached flight recorder, or nil.
func (o *OS) FlightRecorder() *telemetry.Recorder { return o.rec }

// FaultHooks bracket every dispatch for an attached fault-injection engine:
// Pre runs with the dispatch sequence number before delivery (the engine
// opens/closes fault windows on these deterministic coordinates), Post runs
// after delivery with the observed result (the engine's in-window oracle).
type FaultHooks struct {
	Pre  func(seq uint64)
	Post func(seq uint64, res DeliveryResult)
}

// SetFaultHooks attaches (or, with the zero value, detaches) the dispatch
// fault hooks. Hooks are keyed on the dispatch sequence number — a per-boot
// deterministic coordinate — never wall time, so fault schedules replay
// byte-identically.
func (o *OS) SetFaultHooks(h FaultHooks) { o.faultHooks = h }

// DispatchSeq returns the number of dispatches the device has performed.
func (o *OS) DispatchSeq() uint64 { return o.dispatchSeq }

// SetStorageFault installs (or, with nil, lifts) an injected persistent-
// storage fault: DropBox writes consult it and a non-nil Throwable drops
// the record with an I/O error logged against DropBoxManagerService.
func (o *OS) SetStorageFault(fault func() *javalang.Throwable) { o.storageFault = fault }

// StorageDropped returns how many DropBox records injected storage faults
// have destroyed since boot.
func (o *OS) StorageDropped() uint64 { return o.storageDropped }

// FileDropBox files an entry through the same storage path the failure
// oracles use, returning the injected write error if one fired. The fault
// engine's storage probes call this with a probe tag.
func (o *OS) FileDropBox(e DropBoxEntry) *javalang.Throwable {
	return o.persistDropBox(e)
}

// RestartSensorService brings the native sensor service back with a fresh
// PID — the recovery half of a kill/restart fault window (reboots perform
// the same restart as part of the boot sequence).
func (o *OS) RestartSensorService() {
	o.sensor.Restart(o.procs.allocPID())
	o.log.Log(1000, 1000, logcat.Info, logcat.TagSystemServer,
		"restarting crashed service sensorservice (pid %d)", o.sensor.PID())
}

// AttachTelemetry wires a metric registry (and optional tracer) into a
// device booted without one — the snapshot/clone path shares one immutable
// Config per template, so per-shard registries cannot ride in on Config.
// Subsystem handles are re-cached and the state gauges (boot count, live
// processes, instability) are brought current; counters start from zero at
// attach time, which is exactly what a per-shard registry wants.
func (o *OS) AttachTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) {
	o.tel = reg
	o.tracer = tracer
	o.osm = newOSMetrics(reg)
	o.router.SetTelemetry(reg)
	o.buf.SetTelemetry(reg)
	o.osm.bootCount.Set(float64(o.bootCount))
	o.osm.liveProcs.Set(float64(o.procs.live()))
	o.osm.instability.Set(o.sysSrv.Instability())
}

// BootCount returns how many times the device has booted (1 = initial
// boot; each reboot increments it).
func (o *OS) BootCount() int { return o.bootCount }

// Uptime returns time since last boot.
func (o *OS) Uptime() time.Duration { return o.clock.Now().Sub(o.bootTime) }

// RebootTimes returns the instants at which the device rebooted.
func (o *OS) RebootTimes() []time.Time { return append([]time.Time(nil), o.rebootLog...) }

// InstallPackage installs pkg and registers nothing else; handlers are
// attached via RegisterHandler.
func (o *OS) InstallPackage(pkg *manifest.Package) error {
	if err := o.reg.Install(pkg); err != nil {
		return err
	}
	o.log.Log(1000, 1000, logcat.Info, logcat.TagPackageManager,
		"Package %s installed (%d components)", pkg.Name, len(pkg.Components))
	return nil
}

// RegisterHandler attaches the behaviour handler and traits for a
// component. Components without handlers behave as graceful no-ops.
func (o *OS) RegisterHandler(cn intent.ComponentName, h Handler, tr ComponentTraits) {
	o.handlers[cn] = h
	o.traits[cn] = tr
}

// ensureProcess starts the app process on demand, like zygote forking on
// first component start.
func (o *OS) ensureProcess(pkg string) *Process {
	if p := o.procs.get(pkg); p != nil {
		return p
	}
	uid := UIDAppBase + 1 + len(o.procs.byName)
	p := o.procs.start(pkg, uid, o.clock.Now())
	o.router.SetAlive(p.PID, true)
	o.osm.procStarts.Inc()
	o.osm.liveProcs.Set(float64(o.procs.live()))
	o.log.Log(1000, 1000, logcat.Info, logcat.TagActivityManager,
		"Start proc %d:%s/u0a%d for activity", p.PID, pkg, uid-UIDAppBase)
	return p
}

// Process returns the live process for pkg, or nil.
func (o *OS) Process(pkg string) *Process { return o.procs.get(pkg) }

// LiveProcesses returns the number of live app processes.
func (o *OS) LiveProcesses() int { return o.procs.live() }

// StartActivity dispatches an intent to an Activity, applying the Android
// checks in order: protected-action permission, resolution, component
// permission/export, then handler execution.
func (o *OS) StartActivity(in *intent.Intent) DeliveryResult {
	return o.dispatch(in, manifest.Activity)
}

// StartService dispatches an intent to a Service.
func (o *OS) StartService(in *intent.Intent) DeliveryResult {
	return o.dispatch(in, manifest.Service)
}

func (o *OS) dispatch(in *intent.Intent, kind manifest.ComponentType) DeliveryResult {
	verb := "START"
	if kind == manifest.Service {
		verb = "startService"
	}
	var sp *telemetry.Span
	if o.tracer != nil && o.dispatchSeq&(spanSampleEvery-1) == 0 {
		name := "dispatch:START"
		if kind == manifest.Service {
			name = "dispatch:startService"
		}
		sp = o.tracer.Start(name)
	}
	o.dispatchSeq++
	if o.faultHooks.Pre != nil {
		o.faultHooks.Pre(o.dispatchSeq)
	}
	result := o.deliver(in, kind, verb, sp)
	if o.faultHooks.Post != nil {
		o.faultHooks.Post(o.dispatchSeq, result)
	}
	sp.End()
	if o.rec != nil {
		// Static result names and intent-owned strings: the slot write
		// allocates and formats nothing. Clean deliveries take the sampled
		// clock stamp; anything else is failure-adjacent and stamped exactly.
		if result == DeliveredNoEffect {
			o.rec.Record(telemetry.EventDispatch, in.Component.Class, in.Action, result.String())
		} else {
			o.rec.RecordNow(telemetry.EventDispatch, in.Component.Class, in.Action, result.String())
		}
	}
	o.dispatchPending[result]++
	if o.dispatchSeq&(dispatchFlushEvery-1) == 0 {
		o.flushDispatchCounters()
	}
	if result != DeliveredNoEffect || o.dispatchSeq&(instabilitySampleEvery-1) == 0 {
		o.osm.instability.Set(o.sysSrv.Instability())
	}
	return result
}

// flushDispatchCounters pushes the batched per-result dispatch tallies into
// the telemetry registry's atomics.
func (o *OS) flushDispatchCounters() {
	for r := range o.dispatchPending {
		if n := o.dispatchPending[r]; n != 0 {
			o.osm.dispatch[r].Add(uint64(n))
			o.dispatchPending[r] = 0
		}
	}
}

// FlushTelemetry makes every batched device counter current: the per-result
// dispatch tallies and the logcat append counter. The fuzzer calls it at
// component-run boundaries so exposition scrapes between runs are exact;
// mid-run scrapes may lag by at most one batching window.
func (o *OS) FlushTelemetry() {
	o.flushDispatchCounters()
	o.buf.FlushTelemetry()
}

// logDispatch emits the "<verb> u0 <intent> from uid <n>" line. Intents
// shaped like campaign traffic (no categories, MIME type, or flags — the
// only fields the lazy payload cannot carry) store structure instead of
// rendered text; anything richer falls back to eager formatting.
func (o *OS) logDispatch(verb string, in *intent.Intent) {
	if len(in.Categories) == 0 && in.Type == "" && in.Flags == 0 {
		o.log.LogLazy(1000, 1000, logcat.Info, logcat.TagActivityManager, logcat.Payload{
			Op:        logcat.MsgDispatch,
			Verb:      verb,
			Act:       in.Action,
			Data:      intent.URIText(in.Data),
			HasData:   !in.Data.IsZero(),
			Comp:      in.Component,
			HasExtras: in.Extras.Len() > 0,
			UID:       in.SenderUID,
		})
		return
	}
	o.log.Log(1000, 1000, logcat.Info, logcat.TagActivityManager,
		"%s u0 %s from uid %d", verb, in.String(), in.SenderUID)
}

// deliver runs the Android dispatch checks in order under the dispatch span;
// permission and handler stages get child spans so a stalled or slow run
// shows where time went.
func (o *OS) deliver(in *intent.Intent, kind manifest.ComponentType, verb string, sp *telemetry.Span) DeliveryResult {
	o.logDispatch(verb, in)

	var pc *telemetry.Span
	if sp != nil {
		pc = sp.Child("permission-check")
	}
	comp, blocked := o.gate(in, kind)
	pc.End()
	if blocked != 0 {
		return blocked
	}

	// 4. Process bring-up and delivery bookkeeping.
	proc := o.ensureProcess(comp.Name.Package)
	o.lastDeliver[proc.PID] = comp.Name
	o.log.LogLazy(1000, 1000, logcat.Info, logcat.TagActivityManager, logcat.Payload{
		Op:   logcat.MsgDelivering,
		Verb: comp.Type.String(),
		Comp: comp.Name,
		PID:  proc.PID,
	})

	// 5. Handler execution.
	h := o.handlers[comp.Name]
	var out Outcome
	if h != nil {
		var hs *telemetry.Span
		if sp != nil {
			hs = sp.Child("handler:" + comp.Flat())
		}
		o.env = Env{PID: proc.PID, Clock: o.clock, Log: o.log}
		out = h(&o.env, in)
		hs.End()
	}
	tr := o.traits[comp.Name]
	var ss *telemetry.Span
	if sp != nil {
		ss = sp.Child("settle")
	}
	result := o.settle(proc, comp, tr, out)
	ss.End()

	// 6. Aging consequences are applied; a pending reboot tears the device
	// down *after* the delivery completes, never mid-dispatch.
	if o.sysSrv.MaybeReboot() {
		return DeviceRebooted
	}
	return result
}

// gate applies the pre-delivery Android checks (protected action,
// resolution, export/permission) and returns either the resolved component
// or the blocking DeliveryResult (zero when delivery may proceed).
func (o *OS) gate(in *intent.Intent, kind manifest.ComponentType) (*manifest.Component, DeliveryResult) {
	// Denial lines are deterministic per (component, action, uid, kind), so
	// each distinct one is rendered once via gateMsg and then replayed from
	// the cache; Log passes a plain message through without reformatting.

	// 1. Protected actions are reserved for the OS; QGJ (an unprivileged
	// app) sending e.g. ACTION_BATTERY_LOW gets a SecurityException and the
	// intent is ignored — "the specified and secure behavior" (Section IV-A).
	if intent.IsProtected(in.Action) && in.SenderUID != UIDSystem {
		msg := o.gateMsg(gateKey{comp: in.Component, action: in.Action, uid: in.SenderUID, reason: gateProtected},
			func() string {
				thr := javalang.Newf(javalang.ClassSecurity,
					"Permission Denial: not allowed to send broadcast %s from pid=?, uid=%d", in.Action, in.SenderUID)
				return thr.Error() + " targeting " + in.Component.FlattenToString()
			})
		o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager, msg)
		o.rec.RecordNow(telemetry.EventDenial, in.Component.Class, in.Action, "protected-action")
		return nil, BlockedSecurity
	}

	// 2. Resolution.
	comp := o.reg.Resolve(in, kind)
	if comp == nil {
		msg := o.gateMsg(gateKey{comp: in.Component, kind: kind, reason: gateNotFound},
			func() string {
				if kind == manifest.Activity {
					return javalang.Newf(javalang.ClassActivityNotFound,
						"Unable to find explicit activity class %s; have you declared this activity in your AndroidManifest.xml?",
						in.Component.FlattenToString()).Error()
				}
				return "Unable to start service " + in.Component.FlattenToString() + ": not found"
			})
		o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager, msg)
		o.rec.RecordNow(telemetry.EventDenial, in.Component.Class, in.Action, "not-found")
		return nil, BlockedNotFound
	}

	// 3. Export / permission checks on the target component.
	if !comp.Exported && in.SenderUID != UIDSystem {
		msg := o.gateMsg(gateKey{comp: comp.Name, uid: in.SenderUID, reason: gateNotExported},
			func() string {
				thr := javalang.Newf(javalang.ClassSecurity,
					"Permission Denial: %s not exported from uid %d", comp.Flat(), in.SenderUID)
				return thr.Error() + " targeting " + comp.Flat()
			})
		o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager, msg)
		o.rec.RecordNow(telemetry.EventDenial, in.Component.Class, in.Action, "not-exported")
		return nil, BlockedSecurity
	}
	if comp.Permission != "" && in.SenderUID != UIDSystem {
		msg := o.gateMsg(gateKey{comp: comp.Name, uid: in.SenderUID, reason: gateNeedsPermission},
			func() string {
				thr := javalang.Newf(javalang.ClassSecurity,
					"Permission Denial: starting %s requires %s", comp.Flat(), comp.Permission)
				return thr.Error() + " targeting " + comp.Flat()
			})
		o.log.Log(1000, 1000, logcat.Warn, logcat.TagActivityManager, msg)
		o.rec.RecordNow(telemetry.EventDenial, in.Component.Class, in.Action, "needs-permission")
		return nil, BlockedSecurity
	}
	return comp, 0
}

// settle converts a handler outcome into logs, process state changes, and a
// DeliveryResult.
func (o *OS) settle(proc *Process, comp *manifest.Component, tr ComponentTraits, out Outcome) DeliveryResult {
	pkg := o.reg.Package(comp.Name.Package)
	builtIn := pkg != nil && pkg.Origin == manifest.BuiltIn

	// ANR takes precedence: the looper wedged before anything else could be
	// observed.
	if out.BusyFor > o.cfg.ANRThreshold {
		proc.busyUntil = o.clock.Now().Add(out.BusyFor)
		proc.ANRs++
		o.osm.anrs.Inc()
		o.log.Log(1000, 1000, logcat.Error, logcat.TagActivityManager,
			"ANR in %s (%s)", proc.Name, comp.Flat())
		o.log.Log(1000, 1000, logcat.Error, logcat.TagActivityManager,
			"Reason: Input dispatching timed out (Waiting to send non-key event because the touched window has not finished processing certain input events)")
		anrEntry := DropBoxEntry{
			Time: o.clock.Now(), Tag: TagAppANR,
			Process: proc.Name, Component: comp.Name,
			Detail: "ANR in " + proc.Name,
		}
		if out.Thrown != nil {
			anrEntry.ExceptionClass = out.Thrown.Class
		}
		o.persistDropBox(anrEntry)
		if out.Thrown != nil {
			// The exception that wedged the looper is visible in the log
			// even though the process did not crash.
			o.log.Block(proc.PID, proc.PID, logcat.Warn, proc.Name, out.Thrown.TraceLines())
		}
		o.sysSrv.RecordANR(proc.Name, tr.UsesSensorManager)
		o.rec.RecordNow(telemetry.EventVerdict, proc.Name, comp.Flat(), "anr")
		return DeliveredANR
	}

	switch {
	case out.Thrown == nil:
		o.sysSrv.RecordStartSuccess(comp.Name)
		return DeliveredNoEffect
	case out.Caught:
		// Handled gracefully: the app logs it and moves on.
		o.log.LogLazy(proc.PID, proc.PID, logcat.Warn, proc.Name, logcat.Payload{
			Op:  logcat.MsgCaught,
			Err: out.Thrown.Error(),
		})
		o.sysSrv.RecordStartSuccess(comp.Name)
		return DeliveredHandledException
	case out.Rejected:
		// Validation refusal: the exception crosses the IPC boundary back
		// to the sender. Logged by the system with component attribution so
		// the analyzer can count it (Fig. 2), but nothing crashes.
		o.log.LogLazy(1000, 1000, logcat.Warn, logcat.TagActivityManager, logcat.Payload{
			Op:   logcat.MsgRejected,
			Comp: comp.Name,
			Err:  out.Thrown.Error(),
		})
		o.sysSrv.RecordStartSuccess(comp.Name)
		return DeliveredRejected
	default:
		o.crashProcess(proc, comp, out.Thrown)
		o.sysSrv.RecordAppCrash(proc.Name, builtIn)
		o.sysSrv.RecordStartFailure(comp.Name, tr.AmbientBound)
		return DeliveredCrash
	}
}

// crashProcess emits the FATAL EXCEPTION block and kills the process, the
// way ART's uncaught-exception handler does.
func (o *OS) crashProcess(proc *Process, comp *manifest.Component, thr *javalang.Throwable) {
	lines := make([]string, 0, 2+len(thr.Stack)+4)
	lines = append(lines, "FATAL EXCEPTION: main")
	lines = append(lines, fmt.Sprintf("Process: %s, PID: %d", proc.Name, proc.PID))
	lines = append(lines, thr.TraceLines()...)
	o.log.Block(proc.PID, proc.PID, logcat.Error, logcat.TagAndroidRuntime, lines)
	o.log.Log(1000, 1000, logcat.Info, logcat.TagActivityManager,
		"Process %s (pid %d) has died", proc.Name, proc.PID)
	proc.Crashes++
	o.procs.kill(proc.Name)
	o.router.SetAlive(proc.PID, false)
	o.osm.procDeaths.Inc()
	o.osm.liveProcs.Set(float64(o.procs.live()))
	o.persistDropBox(DropBoxEntry{
		Time: o.clock.Now(), Tag: TagAppCrash,
		Process: proc.Name, Component: comp.Name,
		ExceptionClass: thr.Root().Class,
		Detail:         thr.Root().Error(),
	})
	o.rec.RecordNow(telemetry.EventVerdict, proc.Name, comp.Flat(), string(thr.Root().Class))
}

// reboot tears the device down and boots it again: every process dies, the
// sensor service restarts, aging state clears, and the boot sequence is
// logged. This is the paper's most severe manifestation.
func (o *OS) reboot(reason string) {
	o.log.Log(1000, 1000, logcat.Fatal, logcat.TagSystemServer,
		"!!! REBOOTING: %s !!!", reason)
	for _, p := range o.procs.killAll() {
		o.router.SetAlive(p.PID, false)
		o.osm.procDeaths.Inc()
	}
	o.osm.liveProcs.Set(float64(o.procs.live()))
	o.osm.reboots.Inc()
	o.rebootLog = append(o.rebootLog, o.clock.Now())
	o.persistDropBox(DropBoxEntry{
		Time: o.clock.Now(), Tag: TagSystemRestart,
		Process: "system_server", Detail: reason,
	})
	o.rec.RecordNow(telemetry.EventReboot, "system_server", "", reason)
	o.sysSrv.resetAfterBoot()
	o.sensor.Restart(o.procs.allocPID())
	o.lastDeliver = make(map[int]intent.ComponentName)
	// Boot takes a while even on a watch.
	o.clock.Advance(20 * time.Second)
	o.logBootSequence()
}

// LastDelivered reports the last component an intent was delivered to in
// the process with the given PID; used by diagnostics and tests (the log
// analyzer reconstructs the same mapping from ActivityManager entries).
func (o *OS) LastDelivered(pid int) (intent.ComponentName, bool) {
	cn, ok := o.lastDeliver[pid]
	return cn, ok
}
