package wearos

import (
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
)

func TestBindServiceAndTransact(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "Worker")
	o.RegisterBindHandler(target, func(code int, data any) (any, *javalang.Throwable) {
		if code == 1 {
			return "pong", nil
		}
		return nil, javalang.New(javalang.ClassUnsupportedOperation, "unknown code")
	})
	conn, thr := o.BindService(explicit(target, ""))
	if thr != nil {
		t.Fatal(thr)
	}
	if conn.Component() != target {
		t.Fatalf("bound component = %v", conn.Component())
	}
	reply, thr := conn.Transact(1, nil)
	if thr != nil || reply != "pong" {
		t.Fatalf("transact = %v, %v", reply, thr)
	}
	if _, thr := conn.Transact(2, nil); thr == nil || thr.Class != javalang.ClassUnsupportedOperation {
		t.Fatalf("unknown code: %v", thr)
	}
}

func TestBindServiceDefaultEcho(t *testing.T) {
	o := testDevice(t)
	conn, thr := o.BindService(explicit(cn("com.test.app", "Worker"), ""))
	if thr != nil {
		t.Fatal(thr)
	}
	reply, thr := conn.Transact(0, "hello")
	if thr != nil || reply != "hello" {
		t.Fatalf("echo = %v, %v", reply, thr)
	}
}

func TestBindServiceChecks(t *testing.T) {
	o := testDevice(t)
	// Unknown service.
	if _, thr := o.BindService(explicit(cn("com.test.app", "Nope"), "")); thr == nil {
		t.Fatal("bound unknown service")
	}
	// Non-exported service.
	if _, thr := o.BindService(explicit(cn("com.test.app", "Private"), "")); thr == nil ||
		thr.Class != javalang.ClassSecurity {
		t.Fatalf("non-exported bind: %v", thr)
	}
	// Protected action.
	in := explicit(cn("com.test.app", "Worker"), "android.intent.action.BATTERY_LOW")
	if _, thr := o.BindService(in); thr == nil || thr.Class != javalang.ClassSecurity {
		t.Fatalf("protected bind: %v", thr)
	}
}

func TestBindDeathNotification(t *testing.T) {
	o := testDevice(t)
	worker := cn("com.test.app", "Worker")
	conn, thr := o.BindService(explicit(worker, ""))
	if thr != nil {
		t.Fatal(thr)
	}
	died := false
	if err := conn.OnDeath(func() { died = true }); err != nil {
		t.Fatal(err)
	}
	// Crash the process through the activity path.
	main := cn("com.test.app", "MainActivity")
	o.RegisterHandler(main, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "x")}
	}, ComponentTraits{})
	if got := o.StartActivity(explicit(main, "android.intent.action.VIEW")); got != DeliveredCrash {
		t.Fatalf("crash delivery = %v", got)
	}
	if !died {
		t.Fatal("death notification did not fire")
	}
	// Transactions now fail with DeadObjectException.
	if _, thr := conn.Transact(0, nil); thr == nil || thr.Class != javalang.ClassDeadObject {
		t.Fatalf("post-death transact: %v", thr)
	}
}

func TestConnectionClose(t *testing.T) {
	o := testDevice(t)
	conn, thr := o.BindService(explicit(cn("com.test.app", "Worker"), ""))
	if thr != nil {
		t.Fatal(thr)
	}
	conn.Close()
	if _, thr := conn.Transact(0, nil); thr == nil || thr.Class != javalang.ClassIllegalState {
		t.Fatalf("closed transact: %v", thr)
	}
}

func TestBindSurvivesANRButNotReboot(t *testing.T) {
	o := testDevice(t)
	worker := cn("com.test.app", "Worker")
	conn, thr := o.BindService(explicit(worker, ""))
	if thr != nil {
		t.Fatal(thr)
	}
	// An ANR does not kill the process; the binding stays live.
	o.RegisterHandler(worker, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{BusyFor: 10 * time.Second}
	}, ComponentTraits{})
	if got := o.StartService(explicit(worker, "")); got != DeliveredANR {
		t.Fatalf("ANR delivery = %v", got)
	}
	if _, thr := conn.Transact(0, nil); thr != nil {
		t.Fatalf("binding died on ANR: %v", thr)
	}
}
