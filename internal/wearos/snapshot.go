package wearos

// Forkserver-style device snapshots. Booting a simulated device is the
// fixed cost every farm shard pays before injecting a single intent — the
// same way emulator restarts dominate Android test-generation throughput —
// so, like AFL's forkserver, the farm boots a template device once, freezes
// its post-boot state into an immutable Snapshot, and stamps out per-shard
// devices with Clone instead of re-running boot.
//
// Determinism contract: a clone is observably identical to a device freshly
// booted with the same Config. Its logcat dump, boot count, clock, PID
// allocation, aging state, and dispatch behaviour are byte-for-byte the
// same, so a farm merge built from clones is byte-identical to one built
// from fresh boots. Tests pin this (TestCloneMatchesFreshBoot and the
// farm's snapshot-vs-fresh merge equivalence test).

import (
	"fmt"
	"time"

	"repro/internal/intent"
	"repro/internal/logcat"
	"repro/internal/manifest"
	"repro/internal/sensors"
	"repro/internal/vclock"
)

// agingState is the system server's captured accumulation state.
type agingState struct {
	instability   float64
	lastDecay     time.Time
	anrByProcess  map[string]int
	startFailures map[intent.ComponentName]int
	lastCrashAt   map[string]time.Time
	lastANRAt     map[string]time.Time
	rebootPending bool
	rejuvenations int
	timeline      []InstabilitySample
}

// Snapshot is an immutable capture of a booted device. It structurally
// shares the installed packages (manifest.Package values are treated as
// read-only after template installation; interned component strings are
// write-once) and deep-copies everything mutable: the logcat baseline, the
// aging maps, dropbox records, and the handler/trait tables.
//
// Handlers registered before the snapshot are shared by reference across
// clones; they must not close over per-device mutable state. The farm
// avoids the question entirely by snapshotting bare devices and installing
// the shard's package (with fresh handlers) into each clone.
type Snapshot struct {
	cfg Config
	now time.Time

	bootCount   int
	bootTime    time.Time
	rebootLog   []time.Time
	dispatchSeq uint64

	baseline []logcat.Entry
	packages []*manifest.Package // install order
	perms    []string

	handlers     map[intent.ComponentName]Handler
	traits       map[intent.ComponentName]ComponentTraits
	bindHandlers map[intent.ComponentName]BindHandler
	gateMsgs     map[gateKey]string

	nextPID   int
	sensorPID int

	dropbox []DropBoxEntry
	aging   agingState

	// stateHash digests the template's reset-relevant state surface at
	// capture time. ResetTo recomputes the digest over the device after an
	// in-place restore and retires the device on any mismatch, so reuse can
	// never silently diverge from the template (see reset.go).
	stateHash uint64
}

// Snapshot captures the device's current state for cloning. The device must
// be quiescent — the state a device is in right after boot: no app
// processes, no published binder endpoints (their handlers are closures
// over this OS), the sensor service running, and no pending clock timers.
// A non-quiescent device returns an error; snapshotting mid-campaign is not
// a supported operation.
func (o *OS) Snapshot() (*Snapshot, error) {
	if n := len(o.procs.byName); n != 0 {
		return nil, fmt.Errorf("wearos: snapshot of non-quiescent device: %d app processes", n)
	}
	if n := o.router.Endpoints(); n != 0 {
		return nil, fmt.Errorf("wearos: snapshot of non-quiescent device: %d binder endpoints", n)
	}
	if st := o.sensor.State(); st != sensors.ServiceRunning {
		return nil, fmt.Errorf("wearos: snapshot of non-quiescent device: sensor service %v", st)
	}
	if n := o.clock.Pending(); n != 0 {
		return nil, fmt.Errorf("wearos: snapshot of non-quiescent device: %d pending timers", n)
	}

	s := &Snapshot{
		cfg:          o.cfg,
		now:          o.clock.Now(),
		bootCount:    o.bootCount,
		bootTime:     o.bootTime,
		rebootLog:    append([]time.Time(nil), o.rebootLog...),
		dispatchSeq:  o.dispatchSeq,
		baseline:     o.buf.Snapshot(),
		packages:     o.reg.Packages(),
		perms:        o.perms.List(),
		handlers:     make(map[intent.ComponentName]Handler, len(o.handlers)),
		traits:       make(map[intent.ComponentName]ComponentTraits, len(o.traits)),
		bindHandlers: make(map[intent.ComponentName]BindHandler, len(o.bindHandlers)),
		gateMsgs:     make(map[gateKey]string, len(o.gateMsgs)),
		nextPID:      o.procs.nextPID,
		sensorPID:    o.sensor.PID(),
		dropbox:      append([]DropBoxEntry(nil), o.dropbox.entries...),
		aging: agingState{
			instability:   o.sysSrv.instability,
			lastDecay:     o.sysSrv.lastDecay,
			anrByProcess:  copyMap(o.sysSrv.anrByProcess),
			startFailures: copyMap(o.sysSrv.startFailures),
			lastCrashAt:   copyMap(o.sysSrv.lastCrashAt),
			lastANRAt:     copyMap(o.sysSrv.lastANRAt),
			rebootPending: o.sysSrv.rebootPending,
			rejuvenations: o.sysSrv.rejuvenations,
			timeline:      append([]InstabilitySample(nil), o.sysSrv.timeline...),
		},
	}
	for k, v := range o.handlers {
		s.handlers[k] = v
	}
	for k, v := range o.traits {
		s.traits[k] = v
	}
	for k, v := range o.bindHandlers {
		s.bindHandlers[k] = v
	}
	for k, v := range o.gateMsgs {
		s.gateMsgs[k] = v
	}
	s.stateHash = o.resetStateHash()
	return s, nil
}

// Clone stamps out a fresh device from the snapshot without re-running
// boot. The clone shares the snapshot's package structures and gets its own
// copies of every mutable piece: clock, logcat ring (lazily grown, seeded
// with the boot baseline), process table, aging state, dropbox, and
// telemetry registry. Clones are fully independent of the snapshot and of
// each other. Safe to call concurrently.
func (s *Snapshot) Clone() *OS {
	clock := vclock.NewVirtual(s.now)
	buf := logcat.NewGrowableBuffer(s.cfg.LogCapacity)
	buf.Restore(s.baseline)
	o := newKernel(s.cfg, clock, buf)

	// Align identity allocation with the template: the kernel consumed one
	// PID for the sensor service from a fresh table; rewind to the
	// template's allocator state and sensor PID so post-clone PID sequences
	// match a fresh boot exactly.
	o.sensor.Restart(s.sensorPID)
	o.procs.nextPID = s.nextPID

	for _, pkg := range s.packages {
		// Install silently: the template's install log lines are already in
		// the restored baseline. The packages were validated when the
		// template installed them, so an error here is a programming bug.
		if err := o.reg.Install(pkg); err != nil {
			panic("wearos: clone re-install: " + err.Error())
		}
	}
	for _, p := range s.perms {
		o.perms.Register(p)
	}
	for k, v := range s.handlers {
		o.handlers[k] = v
	}
	for k, v := range s.traits {
		o.traits[k] = v
	}
	for k, v := range s.bindHandlers {
		o.bindHandlers[k] = v
	}
	for k, v := range s.gateMsgs {
		o.gateMsgs[k] = v
	}

	o.bootCount = s.bootCount
	o.bootTime = s.bootTime
	o.rebootLog = append([]time.Time(nil), s.rebootLog...)
	o.dispatchSeq = s.dispatchSeq
	o.dropbox.entries = append([]DropBoxEntry(nil), s.dropbox...)

	o.sysSrv.instability = s.aging.instability
	o.sysSrv.lastDecay = s.aging.lastDecay
	o.sysSrv.anrByProcess = copyMap(s.aging.anrByProcess)
	o.sysSrv.startFailures = copyMap(s.aging.startFailures)
	o.sysSrv.lastCrashAt = copyMap(s.aging.lastCrashAt)
	o.sysSrv.lastANRAt = copyMap(s.aging.lastANRAt)
	o.sysSrv.rebootPending = s.aging.rebootPending
	o.sysSrv.rejuvenations = s.aging.rejuvenations
	o.sysSrv.timeline = append([]InstabilitySample(nil), s.aging.timeline...)

	o.osm.bootCount.Set(float64(o.bootCount))
	return o
}

// copyMap returns a shallow copy of m.
func copyMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
