package wearos

// Persistent-mode device reset. Clone stamps out a new device per campaign
// unit; ResetTo instead rewinds an existing device back to its snapshot
// template in place, reusing every large allocation a clone would re-make
// (the logcat ring, the registry/router/process-table maps, the clock's
// timer heap). The farm's persistent executor keeps one hot device per
// worker and resets it between shards, AFL-persistent-mode style.
//
// Correctness never depends on reuse succeeding: ResetTo reports false when
// the device cannot be proven equivalent to a fresh clone, and the caller
// retires it and falls back to Clone. Retirement triggers:
//
//   - the device was built from a different Config than the snapshot;
//   - the device rebooted since it was cloned (boot count advanced) — the
//     reboot's log lines, PID churn, and aging resets make an in-place
//     rewind more fragile than a fresh clone is expensive;
//   - the post-restore state hash disagrees with the hash captured at
//     Snapshot time — the catch-all tripwire for any state surface a future
//     subsystem adds without teaching the reset about it.
//
// The gate-denial render cache (gateMsgs) is deliberately retained across
// resets: entries are a pure function of their key, so a warm cache is
// observably identical to a cold one. It is excluded from the state hash
// for the same reason.

import (
	"math"

	"repro/internal/telemetry"
)

// resetStateHash digests the reset-relevant state surface: every cheap
// scalar and count that distinguishes a just-cloned device from one that has
// run a campaign. It is an FNV-1a-style fold — not cryptographic, just
// sensitive enough that a forgotten field in ResetTo trips the equivalence
// check instead of silently leaking state between campaign units.
func (o *OS) resetStateHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h = (h ^ v) * prime64
	}
	bit := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}

	mix(uint64(o.bootCount))
	mix(uint64(o.bootTime.UnixNano()))
	mix(uint64(len(o.rebootLog)))
	mix(o.dispatchSeq)

	mix(uint64(o.clock.Now().UnixNano()))
	mix(uint64(o.clock.Pending()))

	mix(uint64(o.buf.Len()))
	mix(o.buf.Dropped())

	mix(uint64(o.reg.Count()))
	mix(uint64(o.perms.Count()))
	mix(uint64(len(o.handlers)))
	mix(uint64(len(o.traits)))
	mix(uint64(len(o.bindHandlers)))

	mix(uint64(o.procs.nextPID))
	mix(uint64(len(o.procs.byName)))
	mix(uint64(len(o.procs.byPID)))
	mix(uint64(len(o.lastDeliver)))

	mix(uint64(o.sensor.PID()))
	mix(uint64(o.sensor.State()))
	mix(uint64(o.sensor.FaultMode()))
	stalled, stale := o.sensor.FaultStats()
	mix(stalled)
	mix(stale)

	mix(uint64(o.router.Endpoints()))
	mix(o.router.TxCount())

	mix(uint64(len(o.dropbox.entries)))
	mix(o.storageDropped)

	mix(math.Float64bits(o.sysSrv.instability))
	mix(uint64(o.sysSrv.lastDecay.UnixNano()))
	mix(uint64(len(o.sysSrv.anrByProcess)))
	mix(uint64(len(o.sysSrv.startFailures)))
	mix(uint64(len(o.sysSrv.lastCrashAt)))
	mix(uint64(len(o.sysSrv.lastANRAt)))
	mix(bit(o.sysSrv.rebootPending))
	mix(uint64(o.sysSrv.rejuvenations))
	mix(uint64(len(o.sysSrv.timeline)))

	for r := range o.dispatchPending {
		mix(uint64(o.dispatchPending[r]))
	}

	// Attached-hook surface: a leftover fault hook or recorder would replay
	// a previous unit's instrumentation into the next one.
	mix(bit(o.faultHooks.Pre != nil))
	mix(bit(o.faultHooks.Post != nil))
	mix(bit(o.storageFault != nil))
	mix(bit(o.rec != nil))
	mix(bit(o.env != Env{}))

	return h
}

// ResetTo rewinds the device in place to the snapshot's state and reports
// whether the reset produced a device observably identical to s.Clone().
// On false the device must be retired — its state is unspecified — and the
// caller falls back to a fresh clone; the device itself is never left
// half-reset in a way that matters, because nothing reads it after
// retirement.
//
// The reset restores every mutable subsystem Clone would build: clock,
// logcat ring (backing array retained), telemetry registry, binder router,
// process table, sensor service, package/permission registries, handler
// tables, dropbox, and the system server's aging state. The final state
// hash comparison against the value captured at Snapshot time is the
// equivalence proof.
func (o *OS) ResetTo(s *Snapshot) bool {
	if o.cfg != s.cfg {
		return false
	}
	if o.bootCount != s.bootCount {
		// The device rebooted since it was cloned; retire it rather than
		// unwinding a reboot's worth of divergence.
		return false
	}

	o.clock.Reset(s.now)
	o.buf.ResetRetain(s.baseline)

	// Fresh telemetry per unit, mirroring newKernel: campaign metrics must
	// start from zero, not accumulate across reuses. When the device runs
	// with telemetry disabled and nothing was attached since the last reset
	// (the farm's steady state), every handle is already nil and the re-arm
	// — the only allocation in the reset path — is skipped.
	if !o.cfg.DisableTelemetry || o.tel != nil || o.tracer != nil {
		if !o.cfg.DisableTelemetry {
			o.tel = telemetry.NewRegistry()
			o.tracer = telemetry.NewTracer(nil, telemetry.DefaultSpanCapacity)
		} else {
			o.tel = nil
			o.tracer = nil
		}
		o.osm = newOSMetrics(o.tel)
		o.router.SetTelemetry(o.tel)
		o.buf.SetTelemetry(o.tel)
	}
	o.router.Reset()

	// Detach per-unit instrumentation; the next campaign attaches its own.
	o.rec = nil
	o.faultHooks = FaultHooks{}
	o.storageFault = nil
	o.storageDropped = 0
	o.dispatchPending = [DeviceRebooted + 1]uint32{}
	o.env = Env{}

	clear(o.procs.byName)
	clear(o.procs.byPID)
	o.procs.nextPID = s.nextPID
	o.sensor.ResetRestart(s.sensorPID)

	o.reg.Clear()
	for _, pkg := range s.packages {
		// Same contract as Clone: the packages were validated at template
		// install time, so an error here is a programming bug.
		if err := o.reg.Install(pkg); err != nil {
			panic("wearos: reset re-install: " + err.Error())
		}
	}
	o.perms.Reset(s.perms)

	restoreMap(o.handlers, s.handlers)
	restoreMap(o.traits, s.traits)
	restoreMap(o.bindHandlers, s.bindHandlers)
	// gateMsgs intentionally retained (see package comment).

	o.bootTime = s.bootTime
	o.rebootLog = append(o.rebootLog[:0], s.rebootLog...)
	o.dispatchSeq = s.dispatchSeq
	clear(o.lastDeliver)
	o.dropbox.entries = append(o.dropbox.entries[:0], s.dropbox...)

	o.sysSrv.instability = s.aging.instability
	o.sysSrv.lastDecay = s.aging.lastDecay
	restoreMap(o.sysSrv.anrByProcess, s.aging.anrByProcess)
	restoreMap(o.sysSrv.startFailures, s.aging.startFailures)
	restoreMap(o.sysSrv.lastCrashAt, s.aging.lastCrashAt)
	restoreMap(o.sysSrv.lastANRAt, s.aging.lastANRAt)
	o.sysSrv.rebootPending = s.aging.rebootPending
	o.sysSrv.rejuvenations = s.aging.rejuvenations
	o.sysSrv.timeline = append(o.sysSrv.timeline[:0], s.aging.timeline...)

	o.osm.bootCount.Set(float64(o.bootCount))

	return o.resetStateHash() == s.stateHash
}

// restoreMap makes dst hold exactly src's contents, reusing dst's
// allocation.
func restoreMap[K comparable, V any](dst, src map[K]V) {
	clear(dst)
	for k, v := range src {
		dst[k] = v
	}
}
