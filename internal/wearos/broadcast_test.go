package wearos

import (
	"strings"
	"testing"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
)

// receiverDevice builds an OS with one app carrying broadcast receivers.
func receiverDevice(t *testing.T) *OS {
	t.Helper()
	o := New(DefaultWatchConfig())
	pkg := &manifest.Package{
		Name:     "com.bcast.app",
		Category: manifest.NotHealthFitness,
		Origin:   manifest.ThirdParty,
		Components: []*manifest.Component{
			{
				Name: cn("com.bcast.app", "NetReceiver"), Type: manifest.Receiver, Exported: true,
				Filters: []*manifest.IntentFilter{{
					Actions: []string{"android.net.conn.CONNECTIVITY_CHANGE"},
				}},
			},
			{
				Name: cn("com.bcast.app", "PictureReceiver"), Type: manifest.Receiver, Exported: true,
				Filters: []*manifest.IntentFilter{{
					Actions: []string{"com.bcast.app.CUSTOM_EVENT"},
				}},
			},
			{Name: cn("com.bcast.app", "Hidden"), Type: manifest.Receiver, Exported: false},
		},
	}
	if err := o.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	return o
}

func bcast(action string, uid int) *intent.Intent {
	return &intent.Intent{Action: action, SenderUID: uid}
}

func TestExplicitBroadcastDelivery(t *testing.T) {
	o := receiverDevice(t)
	in := bcast("com.bcast.app.CUSTOM_EVENT", UIDAppBase+100)
	in.Component = cn("com.bcast.app", "PictureReceiver")
	res := o.SendBroadcast(in)
	if res.Delivered != 1 || res.Worst != DeliveredNoEffect {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(o.Logcat().Dump(), "Delivering to receiver") {
		t.Fatal("delivery log missing")
	}
}

func TestImplicitBroadcastFanout(t *testing.T) {
	o := receiverDevice(t)
	res := o.SendBroadcast(bcast("android.net.conn.CONNECTIVITY_CHANGE", UIDAppBase+100))
	if res.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (only the matching exported receiver)", res.Delivered)
	}
}

func TestProtectedBroadcastBlocked(t *testing.T) {
	o := receiverDevice(t)
	// BATTERY_LOW is a protected broadcast: blocked from apps, allowed
	// from the system (the paper's "specified and secure behavior").
	res := o.SendBroadcast(bcast("android.intent.action.BATTERY_LOW", UIDAppBase+100))
	if res.Worst != BlockedSecurity || res.Delivered != 0 {
		t.Fatalf("app sender: %+v", res)
	}
	sys := o.SendBroadcast(bcast("android.intent.action.BATTERY_LOW", UIDSystem))
	if sys.Worst == BlockedSecurity {
		t.Fatalf("system sender blocked: %+v", sys)
	}
}

func TestBroadcastToUnknownReceiver(t *testing.T) {
	o := receiverDevice(t)
	in := bcast("x", UIDAppBase+100)
	in.Component = cn("com.bcast.app", "Missing")
	if res := o.SendBroadcast(in); res.Worst != BlockedNotFound {
		t.Fatalf("result = %+v", res)
	}
	// Implicit with no match.
	if res := o.SendBroadcast(bcast("com.unmatched.ACTION", UIDAppBase+100)); res.Worst != BlockedNotFound {
		t.Fatalf("unmatched implicit = %+v", res)
	}
}

func TestBroadcastReceiverCrash(t *testing.T) {
	o := receiverDevice(t)
	target := cn("com.bcast.app", "PictureReceiver")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "null in onReceive")}
	}, ComponentTraits{})
	in := bcast("com.bcast.app.CUSTOM_EVENT", UIDAppBase+100)
	in.Component = target
	res := o.SendBroadcast(in)
	if res.Worst != DeliveredCrash {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(o.Logcat().Dump(), "FATAL EXCEPTION") {
		t.Fatal("receiver crash not logged")
	}
}

func TestBroadcastSeverityOrdering(t *testing.T) {
	var r BroadcastResult
	r.worsen(DeliveredNoEffect)
	r.worsen(DeliveredCrash)
	r.worsen(DeliveredHandledException)
	if r.Worst != DeliveredCrash {
		t.Fatalf("Worst = %v", r.Worst)
	}
	r.worsen(DeviceRebooted)
	if r.Worst != DeviceRebooted {
		t.Fatalf("Worst = %v", r.Worst)
	}
}
