package wearos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/javalang"
	"repro/internal/manifest"
	"repro/internal/sensors"
)

// dirtyDevice drives a device through every mutable subsystem ResetTo must
// rewind: the workload's logcat/dropbox/process/aging churn, plus a binder
// bind, sensor listeners and a fault mode, a storage fault, scheduled
// timers, a manual dropbox filing, and a late package install.
func dirtyDevice(t *testing.T, o *OS) {
	t.Helper()
	driveWorkload(t, o)
	if _, thr := o.BindService(explicit(cn("com.test.app", "Worker"), "")); thr != nil {
		t.Fatalf("bind failed: %v", thr)
	}
	if thr := o.SensorService().Register("com.test.app", sensors.HeartRate); thr != nil {
		t.Fatalf("sensor register failed: %v", thr)
	}
	o.SensorService().SetFaultMode(sensors.FaultStall)
	o.SensorService().Read("com.test.app", sensors.HeartRate)
	o.SetStorageFault(func() *javalang.Throwable {
		return javalang.New(javalang.ClassIllegalState, "disk full")
	})
	o.FileDropBox(DropBoxEntry{
		Time: o.Clock().Now(), Tag: "system_app_crash",
		Process: "com.test.app", Detail: "manual filing",
	})
	o.Clock().Schedule(time.Hour, func(time.Time) {})
	o.Clock().Advance(3 * time.Second)
	extra := &manifest.Package{
		Name: "com.test.extra", Origin: manifest.ThirdParty,
		Category: manifest.NotHealthFitness,
		Components: []*manifest.Component{
			{Name: cn("com.test.extra", "Main"), Type: manifest.Activity, Exported: true},
		},
	}
	if err := o.InstallPackage(extra); err != nil {
		t.Fatal(err)
	}
}

// TestResetMatchesClone is the persistent-mode equivalence contract: a
// device dirtied through every subsystem and then ResetTo its snapshot is
// observably identical to a fresh clone — same logcat under an identical
// follow-up workload, same derived state, same process identity.
func TestResetMatchesClone(t *testing.T) {
	template := New(DefaultWatchConfig())
	snap, err := template.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	reused := snap.Clone()
	dirtyDevice(t, reused)
	if !reused.ResetTo(snap) {
		t.Fatal("ResetTo reported retirement for a non-rebooted device")
	}

	fresh := snap.Clone()
	if r, f := reused.Logcat().Dump(), fresh.Logcat().Dump(); r != f {
		t.Fatalf("post-reset logcat differs from fresh clone:\n--- reset ---\n%s\n--- clone ---\n%s", r, f)
	}

	driveWorkload(t, reused)
	driveWorkload(t, fresh)
	if r, f := reused.Logcat().Dump(), fresh.Logcat().Dump(); r != f {
		t.Fatalf("driven logcat diverges:\n--- reset ---\n%s\n--- clone ---\n%s", r, f)
	}
	if r, f := reused.BootCount(), fresh.BootCount(); r != f {
		t.Fatalf("BootCount reset=%d clone=%d", r, f)
	}
	if r, f := reused.Uptime(), fresh.Uptime(); r != f {
		t.Fatalf("Uptime reset=%v clone=%v", r, f)
	}
	if r, f := reused.LiveProcesses(), fresh.LiveProcesses(); r != f {
		t.Fatalf("LiveProcesses reset=%d clone=%d", r, f)
	}
	if r, f := reused.SystemServer().Instability(), fresh.SystemServer().Instability(); r != f {
		t.Fatalf("Instability reset=%v clone=%v", r, f)
	}
	if r, f := len(reused.DropBoxEntries("")), len(fresh.DropBoxEntries("")); r != f {
		t.Fatalf("dropbox entries reset=%d clone=%d", r, f)
	}
	if reused.StorageDropped() != 0 {
		t.Fatalf("StorageDropped = %d after reset, want 0", reused.StorageDropped())
	}
	rp, fp := reused.Process("com.test.app"), fresh.Process("com.test.app")
	if rp == nil || fp == nil || rp.PID != fp.PID || rp.UID != fp.UID {
		t.Fatalf("process identity reset=%+v clone=%+v", rp, fp)
	}
	if reused.Registry().Package("com.test.extra") != nil {
		t.Fatal("late-installed package survived the reset")
	}
	if got := reused.SensorService().FaultMode(); got != sensors.FaultNone {
		t.Fatalf("sensor fault mode = %v after reset, want FaultNone", got)
	}
}

// TestResetRepeatedReuse drives several reset cycles on one device — the
// farm's steady state — asserting each cycle stays byte-identical to the
// first. Any state leak compounds across cycles, so three reuses catch
// drifts a single reset would hide.
func TestResetRepeatedReuse(t *testing.T) {
	snap, err := New(DefaultWatchConfig()).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dev := snap.Clone()
	var want string
	for cycle := 0; cycle < 3; cycle++ {
		dirtyDevice(t, dev)
		got := dev.Logcat().Dump()
		if cycle == 0 {
			want = got
		} else if got != want {
			t.Fatalf("cycle %d logcat diverged from cycle 0:\n--- cycle 0 ---\n%s\n--- cycle %d ---\n%s",
				cycle, want, cycle, got)
		}
		if !dev.ResetTo(snap) {
			t.Fatalf("cycle %d: ResetTo retired the device", cycle)
		}
	}
}

// TestResetRetiresRebootedDevice pins the first retirement rule: a device
// whose boot count advanced past the template's is never reused.
func TestResetRetiresRebootedDevice(t *testing.T) {
	snap, err := New(DefaultWatchConfig()).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dev := snap.Clone()
	dev.SystemServer().RecordCoreServiceDown("sensorservice", javalang.SIGABRT)
	if !dev.SystemServer().MaybeReboot() {
		t.Fatal("core service death did not reboot the device")
	}
	if dev.ResetTo(snap) {
		t.Fatal("ResetTo reused a rebooted device")
	}
	// Retirement falls back to a clone; the clone must be unaffected by the
	// retired device's history.
	if fb := snap.Clone(); fb.BootCount() != 1 || strings.Contains(fb.Logcat().Dump(), "boot #2") {
		t.Fatal("fallback clone inherited the retired device's reboot")
	}
}

// TestResetRetiresOnConfigMismatch pins the second retirement rule: a
// device built from a different Config never resets onto a foreign
// snapshot.
func TestResetRetiresOnConfigMismatch(t *testing.T) {
	snap, err := New(DefaultWatchConfig()).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := DefaultWatchConfig()
	other.DisableTelemetry = true
	if New(other).ResetTo(snap) {
		t.Fatal("ResetTo accepted a device built from a different Config")
	}
}

// TestResetHashTripwire pins the catch-all retirement rule: any
// disagreement between the post-restore state hash and the one captured at
// Snapshot time retires the device, even when the structured checks pass.
func TestResetHashTripwire(t *testing.T) {
	snap, err := New(DefaultWatchConfig()).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dev := snap.Clone()
	tampered := *snap
	tampered.stateHash ^= 1
	if dev.ResetTo(&tampered) {
		t.Fatal("ResetTo accepted a snapshot whose state hash cannot match")
	}
	// The same device resets fine against the genuine snapshot: the tripwire
	// leaves a clean device reusable.
	if !dev.ResetTo(snap) {
		t.Fatal("device unusable after a tripwire rejection")
	}
}
