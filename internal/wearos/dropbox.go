package wearos

import (
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/logcat"
)

// DropBox is Android's persistent store of crash/ANR records
// (DropBoxManager): unlike the logcat ring, it survives buffer churn and
// is what post-mortem tooling mines. The simulated OS files an entry for
// every crash, ANR, and reboot; the wearsim CLI and tests read them back.

// DropBoxTag classifies a record, mirroring AOSP's tag strings.
type DropBoxTag string

const (
	TagAppCrash      DropBoxTag = "data_app_crash"
	TagAppANR        DropBoxTag = "data_app_anr"
	TagSystemRestart DropBoxTag = "SYSTEM_RESTART"
	TagNativeCrash   DropBoxTag = "SYSTEM_TOMBSTONE"
)

// DropBoxEntry is one filed record.
type DropBoxEntry struct {
	Time      time.Time
	Tag       DropBoxTag
	Process   string
	Component intent.ComponentName
	// ExceptionClass is set for crashes (the root cause) and exception-
	// bearing ANRs.
	ExceptionClass javalang.Class
	// Detail carries the headline line of the record.
	Detail string
}

// dropBox is the bounded store; oldest entries are evicted like the real
// DropBoxManager's quota behaviour.
type dropBox struct {
	entries []DropBoxEntry
	limit   int
}

const defaultDropBoxLimit = 4096

func newDropBox() *dropBox {
	return &dropBox{limit: defaultDropBoxLimit}
}

func (d *dropBox) add(e DropBoxEntry) {
	d.entries = append(d.entries, e)
	if len(d.entries) > d.limit {
		d.entries = d.entries[len(d.entries)-d.limit:]
	}
}

// persistDropBox writes an entry through the injected-storage-fault check:
// a fault drops the record (the bounded store never sees it) and logs the
// I/O error the way DropBoxManagerService reports a failing /data write.
func (o *OS) persistDropBox(e DropBoxEntry) *javalang.Throwable {
	if o.storageFault != nil {
		if thr := o.storageFault(); thr != nil {
			o.storageDropped++
			o.log.Log(1000, 1000, logcat.Error, logcat.TagDropBox,
				"failed to write entry %s (%s): %s", e.Tag, e.Process, thr.Error())
			return thr
		}
	}
	o.dropbox.add(e)
	return nil
}

// DropBoxEntries returns the filed records, optionally filtered by tag
// (empty tag = all). The slice is a copy.
func (o *OS) DropBoxEntries(tag DropBoxTag) []DropBoxEntry {
	var out []DropBoxEntry
	for _, e := range o.dropbox.entries {
		if tag == "" || e.Tag == tag {
			out = append(out, e)
		}
	}
	return out
}
