package wearos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
)

// rejuvDevice boots a watch with the rejuvenation-enabled aging config and
// the standard test app.
func rejuvDevice(t *testing.T) *OS {
	t.Helper()
	cfg := DefaultWatchConfig()
	cfg.Aging = RejuvenatedAgingConfig()
	o := New(cfg)
	pkg := &manifest.Package{
		Name:     "com.test.app",
		Category: manifest.HealthFitness,
		Origin:   manifest.ThirdParty,
		Components: []*manifest.Component{
			{Name: cn("com.test.app", "MainActivity"), Type: manifest.Activity, Exported: true},
		},
	}
	if err := o.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestRejuvenationDefusesSensorEscalation(t *testing.T) {
	o := rejuvDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{BusyFor: 10 * time.Second}
	}, ComponentTraits{UsesSensorManager: true})

	// Many more ANRs than the SIGABRT limit: rejuvenation resets the count
	// every RejuvenateANRLimit, so the watchdog never fires.
	for i := 0; i < 10; i++ {
		if got := o.StartActivity(explicit(target, "android.intent.action.VIEW")); got == DeviceRebooted {
			t.Fatal("device rebooted despite rejuvenation")
		}
	}
	if o.BootCount() != 1 {
		t.Fatalf("BootCount = %d", o.BootCount())
	}
	if got := o.SystemServer().Rejuvenations(); got < 3 {
		t.Fatalf("rejuvenations = %d, want several", got)
	}
	dump := o.Logcat().Dump()
	if !strings.Contains(dump, "rejuvenation: proactively restarting com.test.app") {
		t.Fatal("rejuvenation not logged")
	}
	if strings.Contains(dump, "SIGABRT") {
		t.Fatal("sensor service died despite rejuvenation")
	}
}

func TestRejuvenationDefusesAmbientEscalation(t *testing.T) {
	o := rejuvDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "x")}
	}, ComponentTraits{AmbientBound: true})

	for i := 0; i < 12; i++ {
		if got := o.StartActivity(explicit(target, "android.intent.action.MAIN")); got == DeviceRebooted {
			t.Fatal("device rebooted despite rejuvenation")
		}
	}
	if strings.Contains(o.Logcat().Dump(), "SIGSEGV") {
		t.Fatal("system_server segfaulted despite rejuvenation")
	}
	if o.SystemServer().Rejuvenations() == 0 {
		t.Fatal("no crash-loop rejuvenation recorded")
	}
}

func TestInstabilityTimeline(t *testing.T) {
	o := testDevice(t)
	s := o.SystemServer()
	if len(s.InstabilityTimeline()) != 0 {
		t.Fatal("fresh device has timeline samples")
	}
	s.RecordAppCrash("a", false)
	o.Clock().Advance(time.Second)
	s.RecordAppCrash("b", true)
	tl := s.InstabilityTimeline()
	if len(tl) != 2 {
		t.Fatalf("samples = %d", len(tl))
	}
	if !tl[1].At.After(tl[0].At) {
		t.Fatal("timeline not monotonic")
	}
	if tl[1].Value <= tl[0].Value {
		t.Fatalf("instability did not grow: %v", tl)
	}
	// The returned slice is a copy.
	tl[0].Value = -1
	if s.InstabilityTimeline()[0].Value == -1 {
		t.Fatal("timeline aliased internal state")
	}
}

func TestTimelineClearsOnReboot(t *testing.T) {
	o := testDevice(t)
	target := cn("com.test.app", "MainActivity")
	o.RegisterHandler(target, func(env *Env, in *intent.Intent) Outcome {
		return Outcome{BusyFor: 10 * time.Second}
	}, ComponentTraits{UsesSensorManager: true})
	for i := 0; i < DefaultAgingConfig().SensorClientANRLimit; i++ {
		o.StartActivity(explicit(target, "android.intent.action.VIEW"))
	}
	if o.BootCount() != 2 {
		t.Fatal("no reboot")
	}
	if got := len(o.SystemServer().InstabilityTimeline()); got != 0 {
		t.Fatalf("timeline survived reboot: %d samples", got)
	}
}
