// Package wearos simulates the Android (Wear) operating system layer the
// QGJ study exercises: intent dispatch through ActivityManager, permission
// enforcement, application process lifecycle, the ANR watchdog, and the
// system server whose error-accumulation ("software aging") behaviour
// produces the paper's device reboots.
//
// The OS is intentionally single-threaded: the whole simulation is driven
// from one goroutine with a virtual clock, which keeps multi-million-intent
// campaigns deterministic. An OS value must not be shared across goroutines.
package wearos

import (
	"time"
)

// Well-known Android UIDs.
const (
	UIDSystem  = 1000
	UIDShell   = 2000
	UIDAppBase = 10000
)

// Process models one application (or native) process.
type Process struct {
	PID       int
	Name      string // process name; for apps this is the package name
	UID       int
	Alive     bool
	StartedAt time.Time

	// Crashes counts FATAL EXCEPTION deaths of this process since boot.
	Crashes int
	// ANRs counts Application-Not-Responding events since boot.
	ANRs int
	// busyUntil marks the main looper as occupied until this instant; a
	// delivery landing inside a busy window models the queueing delay that
	// precedes an ANR.
	busyUntil time.Time
}

// Busy reports whether the process's main looper is occupied at now.
func (p *Process) Busy(now time.Time) bool { return p.busyUntil.After(now) }

// processTable allocates PIDs and tracks app processes by name.
type processTable struct {
	nextPID int
	byName  map[string]*Process
	byPID   map[int]*Process
}

func newProcessTable(firstPID int) *processTable {
	return &processTable{
		nextPID: firstPID,
		byName:  make(map[string]*Process),
		byPID:   make(map[int]*Process),
	}
}

func (t *processTable) allocPID() int {
	pid := t.nextPID
	t.nextPID++
	return pid
}

// start launches (or relaunches) the named process.
func (t *processTable) start(name string, uid int, now time.Time) *Process {
	p := &Process{PID: t.allocPID(), Name: name, UID: uid, Alive: true, StartedAt: now}
	t.byName[name] = p
	t.byPID[p.PID] = p
	return p
}

// get returns the live process with the given name, or nil.
func (t *processTable) get(name string) *Process {
	p := t.byName[name]
	if p == nil || !p.Alive {
		return nil
	}
	return p
}

// kill marks the process dead; the entry stays in byPID for post-mortem
// lookups.
func (t *processTable) kill(name string) *Process {
	p := t.byName[name]
	if p == nil {
		return nil
	}
	p.Alive = false
	return p
}

// killAll marks every process dead (device reboot) and returns the victims.
func (t *processTable) killAll() []*Process {
	var out []*Process
	for _, p := range t.byName {
		if p.Alive {
			p.Alive = false
			out = append(out, p)
		}
	}
	return out
}

// live returns the number of live processes.
func (t *processTable) live() int {
	n := 0
	for _, p := range t.byName {
		if p.Alive {
			n++
		}
	}
	return n
}
