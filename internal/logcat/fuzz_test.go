package logcat

import (
	"testing"
	"time"
)

// FuzzParseLine asserts the log parser never panics and that any line it
// accepts carries consistent fields (the analyzer trusts these).
func FuzzParseLine(f *testing.F) {
	sample := Entry{
		Time: time.Date(0, 6, 1, 9, 30, 15, 123_000_000, time.UTC),
		PID:  1234, TID: 1240, Level: Error,
		Tag: TagAndroidRuntime, Message: "FATAL EXCEPTION: main",
	}
	f.Add(sample.Format())
	f.Add("06-01 09:30:15.123  1000  1000 I boot: BOOT_COMPLETED")
	f.Add("06-01 09:30:15.123  1000  1000 W Tag: nested: colons: here")
	f.Add("garbage")
	f.Add("")
	f.Add("06-01 09:30:15.123 xx yy Z Tag: msg")
	f.Fuzz(func(t *testing.T, line string) {
		e, ok := ParseLine(line, 0)
		if !ok {
			return
		}
		if e.Level < Verbose || e.Level > Fatal {
			t.Fatalf("parsed invalid level %d from %q", e.Level, line)
		}
		// Accepted entries must re-format and re-parse stably.
		e2, ok2 := ParseLine(e.Format(), 0)
		if !ok2 {
			t.Fatalf("re-parse of formatted entry failed: %q", e.Format())
		}
		if e2.PID != e.PID || e2.TID != e.TID || e2.Level != e.Level || e2.Tag != e.Tag {
			t.Fatalf("round trip diverged: %+v vs %+v", e, e2)
		}
	})
}
