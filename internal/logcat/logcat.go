// Package logcat models Android's logging facility. Every observable the
// paper measures — FATAL EXCEPTION blocks, ANR reports, SecurityExceptions,
// native signal deliveries, reboot markers — is read out of logcat; the QGJ
// workflow pulls the logs over adb and the analyzer classifies
// manifestations from them (Section III-D: "we collected all of the log
// files (over 2GB) from the wearable using logcat").
//
// At campaign scale (~1.5M intents), rendering every entry eagerly with
// fmt.Sprintf dominates the injection hot path even though the vast
// majority of lines are only ever read once at analysis time — or never.
// Entries can therefore carry a structured Payload instead of a rendered
// Message: the dispatch path stores the operands (verb, intent fields,
// component, pid) and Format/Msg render the identical text on demand.
package logcat

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/intent"
	"repro/internal/telemetry"
)

// Level is the Android log priority.
type Level int

const (
	Verbose Level = iota + 1
	Debug
	Info
	Warn
	Error
	Fatal
)

// String returns the single-letter logcat priority code.
func (l Level) String() string {
	switch l {
	case Verbose:
		return "V"
	case Debug:
		return "D"
	case Info:
		return "I"
	case Warn:
		return "W"
	case Error:
		return "E"
	case Fatal:
		return "F"
	default:
		return "?"
	}
}

// MsgOp identifies the deferred-render operation of a lazily logged entry.
// The vocabulary covers exactly the lines the injection hot path emits per
// intent; everything else (boot banners, crash blocks, watchdog notices)
// stays eager — those are rare and often multi-line.
type MsgOp uint8

const (
	// MsgEager marks a conventionally logged entry: Message holds the text.
	MsgEager MsgOp = iota
	// MsgDispatch renders "<Verb> u0 <intent> from uid <UID>" where
	// <intent> is the logcat-style flattened intent built from Act, Data,
	// Comp and HasExtras. Only intents without categories, MIME type, and
	// flags take this path (the operand set covers exactly what campaign
	// intents carry); richer intents fall back to eager formatting.
	MsgDispatch
	// MsgDelivering renders "Delivering to <Verb> cmp=<Flat> pid=<PID>".
	MsgDelivering
	// MsgRejected renders
	// "Exception thrown delivering intent to cmp=<Flat>: <Err>".
	MsgRejected
	// MsgCaught renders "caught exception while handling intent: <Err>".
	MsgCaught
)

// Payload carries the structured operands of a lazily rendered message.
// Operand strings are expected to be long-lived (interned catalog entries,
// cached component flats) so storing them allocates nothing.
type Payload struct {
	Op MsgOp
	// Verb is the dispatch verb (START, startService, bindService,
	// broadcastIntent) for MsgDispatch, or the component kind (activity,
	// service, receiver) for MsgDelivering.
	Verb string
	// Act/Data/Comp/HasExtras are the intent fields of MsgDispatch. HasData
	// distinguishes "no data" from data rendering to the empty string, the
	// way Intent.String keys off URI.IsZero.
	Act       string
	Data      string
	HasData   bool
	HasExtras bool
	// Comp is the target component, rendered as cmp=<flat> by MsgDispatch,
	// MsgDelivering and MsgRejected, and consumed structurally (parse-free)
	// by the streaming analyzer.
	Comp intent.ComponentName
	// Err is the rendered throwable ("<class>: <message>") for
	// MsgRejected/MsgCaught.
	Err string
	// UID is the sender UID of MsgDispatch; PID the target process of
	// MsgDelivering.
	UID int
	PID int
}

// appendMsg renders the payload's message text into dst. The output is
// byte-identical to what the eager fmt.Sprintf call sites produced.
func (p *Payload) appendMsg(dst []byte) []byte {
	switch p.Op {
	case MsgDispatch:
		dst = append(dst, p.Verb...)
		dst = append(dst, " u0 {"...)
		mark := len(dst)
		if p.Act != "" {
			dst = append(dst, "act="...)
			dst = append(dst, p.Act...)
		}
		if p.HasData {
			if len(dst) > mark {
				dst = append(dst, ' ')
			}
			dst = append(dst, "dat="...)
			dst = append(dst, p.Data...)
		}
		if !p.Comp.IsZero() {
			if len(dst) > mark {
				dst = append(dst, ' ')
			}
			dst = append(dst, "cmp="...)
			dst = appendFlat(dst, p.Comp)
		}
		if p.HasExtras {
			if len(dst) > mark {
				dst = append(dst, ' ')
			}
			dst = append(dst, "(has extras)"...)
		}
		dst = append(dst, "} from uid "...)
		dst = strconv.AppendInt(dst, int64(p.UID), 10)
	case MsgDelivering:
		dst = append(dst, "Delivering to "...)
		dst = append(dst, p.Verb...)
		dst = append(dst, " cmp="...)
		dst = appendFlat(dst, p.Comp)
		dst = append(dst, " pid="...)
		dst = strconv.AppendInt(dst, int64(p.PID), 10)
	case MsgRejected:
		dst = append(dst, "Exception thrown delivering intent to cmp="...)
		dst = appendFlat(dst, p.Comp)
		dst = append(dst, ": "...)
		dst = append(dst, p.Err...)
	case MsgCaught:
		dst = append(dst, "caught exception while handling intent: "...)
		dst = append(dst, p.Err...)
	}
	return dst
}

// appendFlat mirrors intent.ComponentName.FlattenToString without the
// intermediate string.
func appendFlat(dst []byte, c intent.ComponentName) []byte {
	if c.IsZero() {
		return dst
	}
	cls := c.Class
	if len(cls) > len(c.Package) && cls[len(c.Package)] == '.' && cls[:len(c.Package)] == c.Package {
		cls = cls[len(c.Package):]
	}
	dst = append(dst, c.Package...)
	dst = append(dst, '/')
	return append(dst, cls...)
}

// Entry is one log line. Entries are either eager (Message holds the text,
// Payload.Op == MsgEager) or lazy (Payload holds the operands and Message
// is empty); Msg and Format render both identically.
type Entry struct {
	Time    time.Time
	PID     int
	TID     int
	Level   Level
	Tag     string
	Message string
	Payload Payload
}

// Msg returns the entry's message text, rendering a lazy payload on demand.
func (e *Entry) Msg() string {
	if e.Payload.Op == MsgEager {
		return e.Message
	}
	return string(e.Payload.appendMsg(nil))
}

// threadtimeLayout is logcat's threadtime timestamp format (no year).
const threadtimeLayout = "01-02 15:04:05.000"

// appendPad5 appends n the way fmt's %5d renders it: right-aligned in a
// five-column space-padded field, wider numbers unpadded.
func appendPad5(dst []byte, n int) []byte {
	var scratch [20]byte
	s := strconv.AppendInt(scratch[:0], int64(n), 10)
	for i := len(s); i < 5; i++ {
		dst = append(dst, ' ')
	}
	return append(dst, s...)
}

// AppendFormat renders the entry in threadtime format into dst, exactly as
// fmt.Sprintf("%s %5d %5d %s %s: %s") used to.
func (e *Entry) AppendFormat(dst []byte) []byte {
	dst = e.Time.AppendFormat(dst, threadtimeLayout)
	dst = append(dst, ' ')
	dst = appendPad5(dst, e.PID)
	dst = append(dst, ' ')
	dst = appendPad5(dst, e.TID)
	dst = append(dst, ' ')
	dst = append(dst, e.Level.String()...)
	dst = append(dst, ' ')
	dst = append(dst, e.Tag...)
	dst = append(dst, ": "...)
	if e.Payload.Op == MsgEager {
		return append(dst, e.Message...)
	}
	return e.Payload.appendMsg(dst)
}

// Format renders the entry in logcat's threadtime format, which the pull
// path emits and the parser consumes.
func (e *Entry) Format() string {
	return string(e.AppendFormat(make([]byte, 0, 48+len(e.Tag)+len(e.Message))))
}

// Well-known tags used across the simulator, mirroring AOSP conventions.
const (
	TagActivityManager = "ActivityManager"
	TagAndroidRuntime  = "AndroidRuntime"
	TagSystemServer    = "SystemServer"
	TagSensorService   = "SensorService"
	TagWindowManager   = "WindowManager"
	TagPackageManager  = "PackageManager"
	TagWatchdog        = "Watchdog"
	TagDEBUG           = "DEBUG" // native crash dumps (debuggerd)
	TagBoot            = "boot"
	TagMonkey          = "Monkey"
	TagGoogleFit       = "GoogleFit"
	TagDropBox         = "DropBoxManagerService"
	TagFaultInject     = "FaultInject"
)

// Sink receives entries as they are appended; the streaming analyzer and
// test recorders register sinks so multi-million-entry campaigns do not have
// to retain the full log in memory. Sinks that only understand rendered
// text should read e.Msg(), never e.Message (lazy entries leave it empty).
type Sink interface {
	Consume(Entry)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Entry)

// Consume implements Sink.
func (f SinkFunc) Consume(e Entry) { f(e) }

// Buffer is a bounded ring of log entries, like the kernel log buffer
// logcat reads. Oldest entries are dropped when the buffer is full.
type Buffer struct {
	mu      sync.Mutex
	entries []Entry
	// maxCap is the retention capacity of a lazily allocated ring (see
	// NewGrowableBuffer); zero means the backing is fixed at len(entries).
	maxCap  int
	start   int // index of oldest entry
	count   int
	dropped uint64
	sinks   []Sink

	// Telemetry (optional; nil metrics no-op).
	appended     *telemetry.Counter
	droppedGauge *telemetry.Gauge
	onFirstDrop  func(capacity int)

	// total is the exact number of appends since construction; flushed is
	// the portion already added to the appended counter. Batching the
	// counter updates keeps an atomic add off the per-line append path (see
	// appendFlushEvery).
	total   uint64
	flushed uint64
}

// DefaultCapacity matches a generously sized logd buffer; campaign runs
// clear the buffer per-app the way the paper pulls logs per experiment.
const DefaultCapacity = 1 << 16

// NewBuffer returns a ring buffer holding up to capacity entries
// (DefaultCapacity when capacity <= 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Buffer{entries: make([]Entry, capacity)}
}

// Growable-ring geometry: cloned devices start with a small backing array
// and grow geometrically up to the retention capacity, so shards that log a
// few hundred lines never pay for (or zero) the full 2^16-entry ring that a
// fresh boot allocates eagerly.
const (
	growInitialCapacity = 256
	growFactor          = 4
)

// NewGrowableBuffer returns a ring buffer that retains up to capacity
// entries (DefaultCapacity when capacity <= 0) but allocates its backing
// array lazily, starting at growInitialCapacity. Retention semantics are
// identical to NewBuffer: eviction of the oldest entry begins only once
// capacity entries are held.
func NewGrowableBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	initial := growInitialCapacity
	if initial > capacity {
		initial = capacity
	}
	return &Buffer{entries: make([]Entry, initial), maxCap: capacity}
}

// Restore seeds the buffer with entries (oldest first) without fanning them
// out to sinks and without telemetry flushes — they were already observed
// and counted on the device the snapshot was taken from. Callers use it to
// replay a boot-time baseline into a fresh (typically growable) buffer
// before any sinks subscribe.
func (b *Buffer) Restore(entries []Entry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range entries {
		b.push(entries[i])
	}
	b.total += uint64(len(entries))
}

// ResetRetain returns the ring to the state Restore(baseline) leaves a
// freshly constructed buffer in, but keeps the (possibly grown) backing
// array: retention and eviction depend only on maxCap, so a pre-grown ring
// is observably identical to one that grows lazily. Sinks and telemetry
// handles are detached — the next campaign unit subscribes its own — and
// the drop accounting re-arms, including the one-shot first-drop trigger.
// The persistent-mode device reset uses it so a reused device never re-pays
// the geometric ring growth that dominates a fresh clone's allocations.
func (b *Buffer) ResetRetain(baseline []Entry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.start, b.count = 0, 0
	b.dropped = 0
	b.sinks = nil
	b.appended = nil
	b.droppedGauge = nil
	if len(baseline) <= len(b.entries) {
		// The ring already grew past the boot baseline; bulk-copy instead of
		// re-pushing entry by entry.
		copy(b.entries, baseline)
		b.count = len(baseline)
	} else {
		for i := range baseline {
			b.push(baseline[i])
		}
	}
	b.total = uint64(len(baseline))
	b.flushed = b.total
}

// grow enlarges a growable ring's backing array by growFactor (capped at
// maxCap), linearizing retained entries to the front; the caller holds b.mu.
func (b *Buffer) grow() {
	newCap := len(b.entries) * growFactor
	if newCap > b.maxCap {
		newCap = b.maxCap
	}
	fresh := make([]Entry, newCap)
	head := b.start + b.count
	if head > len(b.entries) {
		head = len(b.entries)
	}
	n := copy(fresh, b.entries[b.start:head])
	copy(fresh[n:], b.entries[:b.count-n])
	b.entries = fresh
	b.start = 0
}

// Subscribe registers a sink that observes every subsequent Append. Sinks
// are invoked synchronously in registration order.
func (b *Buffer) Subscribe(s Sink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sinks = append(b.sinks, s)
}

// SetTelemetry wires the buffer's counters into reg: logcat_entries_total
// counts appends, logcat_dropped_lines mirrors Dropped(). A nil registry
// detaches.
func (b *Buffer) SetTelemetry(reg *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.appended = reg.Counter("logcat_entries_total")
	b.droppedGauge = reg.Gauge("logcat_dropped_lines")
	b.droppedGauge.Set(float64(b.dropped))
	// Lines appended before attachment were never counted; start the batch
	// window here.
	b.flushed = b.total
}

// appendFlushEvery is the batching window for the logcat_entries_total
// counter (power of two). The exact count lives in b.total under the ring
// mutex; the shared atomic is only touched once per window (and on every
// read accessor), keeping the per-line append path free of atomics.
const appendFlushEvery = 64

// flushLocked pushes the pending append delta into the telemetry counter;
// the caller holds b.mu.
func (b *Buffer) flushLocked() {
	if d := b.total - b.flushed; d != 0 {
		b.appended.Add(d)
		b.flushed = b.total
	}
}

// FlushTelemetry makes the batched counters current, e.g. before a scrape
// at a campaign boundary.
func (b *Buffer) FlushTelemetry() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
}

// OnFirstDrop registers fn to run once, when the first entry is evicted
// for capacity. Dropped lines silently corrupt manifestation counts (the
// analyzer never sees them), so callers surface a warning here.
func (b *Buffer) OnFirstDrop(fn func(capacity int)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onFirstDrop = fn
}

// droppedGaugeEvery is the refresh cadence of the logcat_dropped_lines
// gauge (power of two). Once the ring is full — the steady state of any
// long campaign — every push evicts a line, and refreshing the gauge per
// eviction would put an atomic store and a float conversion on the hot
// append path. Dropped() stays exact; scrapes lag by at most the cadence.
const droppedGaugeEvery = 1024

// push stores e in the ring; the caller holds b.mu. It reports whether this
// push evicted the first-ever entry (the OnFirstDrop trigger).
func (b *Buffer) push(e Entry) bool {
	capN := len(b.entries)
	if b.count == capN && capN < b.maxCap {
		b.grow()
		capN = len(b.entries)
	}
	if b.count == capN {
		b.entries[b.start] = e
		if b.start++; b.start == capN {
			b.start = 0
		}
		b.dropped++
		if b.dropped == 1 || b.dropped&(droppedGaugeEvery-1) == 0 {
			b.droppedGauge.Set(float64(b.dropped))
		}
		return b.dropped == 1
	}
	idx := b.start + b.count
	if idx >= capN {
		idx -= capN
	}
	b.entries[idx] = e
	b.count++
	return false
}

// Append adds an entry to the buffer and fans it out to sinks.
func (b *Buffer) Append(e Entry) {
	b.mu.Lock()
	var firstDrop func(int)
	if b.push(e) {
		firstDrop = b.onFirstDrop
	}
	b.total++
	if b.total-b.flushed >= appendFlushEvery {
		b.flushLocked()
	}
	sinks := b.sinks
	capN := len(b.entries)
	b.mu.Unlock()
	if firstDrop != nil {
		firstDrop(capN)
	}
	for _, s := range sinks {
		s.Consume(e)
	}
}

// AppendBatch adds several entries under a single mutex acquisition —
// multi-line artifacts (stack traces, boot banners) pay the lock once
// instead of per line. Sinks still observe every entry, in order.
func (b *Buffer) AppendBatch(entries []Entry) {
	if len(entries) == 0 {
		return
	}
	b.mu.Lock()
	var firstDrop func(int)
	for i := range entries {
		if b.push(entries[i]) {
			firstDrop = b.onFirstDrop
		}
	}
	b.total += uint64(len(entries))
	if b.total-b.flushed >= appendFlushEvery {
		b.flushLocked()
	}
	sinks := b.sinks
	capN := len(b.entries)
	b.mu.Unlock()
	if firstDrop != nil {
		firstDrop(capN)
	}
	for _, s := range sinks {
		for i := range entries {
			s.Consume(entries[i])
		}
	}
}

// Len returns the number of retained entries.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
	return b.count
}

// Dropped returns how many entries were evicted due to capacity. Reading
// the exact count also re-syncs the sampled logcat_dropped_lines gauge.
func (b *Buffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
	if b.dropped > 0 {
		b.droppedGauge.Set(float64(b.dropped))
	}
	return b.dropped
}

// Snapshot returns a copy of the retained entries, oldest first. The ring
// is copied with at most two copy calls (the wrapped and unwrapped runs),
// not a per-element modulo walk.
func (b *Buffer) Snapshot() []Entry {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
	out := make([]Entry, b.count)
	head := b.start + b.count
	if head > len(b.entries) {
		head = len(b.entries)
	}
	n := copy(out, b.entries[b.start:head])
	copy(out[n:], b.entries[:b.count-n])
	return out
}

// Clear discards all retained entries (adb logcat -c).
func (b *Buffer) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.start, b.count = 0, 0
}

// Dump renders the retained entries in threadtime format, one per line.
func (b *Buffer) Dump() string {
	snap := b.Snapshot()
	buf := make([]byte, 0, len(snap)*96)
	for i := range snap {
		buf = snap[i].AppendFormat(buf)
		buf = append(buf, '\n')
	}
	return string(buf)
}

// Logger is a convenience handle that stamps entries with a clock and
// writes them to a buffer.
type Logger struct {
	buf *Buffer
	now func() time.Time
}

// NewLogger returns a logger writing to buf with timestamps from now.
func NewLogger(buf *Buffer, now func() time.Time) *Logger {
	return &Logger{buf: buf, now: now}
}

// Log appends a formatted entry.
func (l *Logger) Log(pid, tid int, level Level, tag, format string, args ...any) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	l.buf.Append(Entry{
		Time: l.now(), PID: pid, TID: tid, Level: level, Tag: tag, Message: msg,
	})
}

// LogLazy appends an entry whose message renders on demand from p. The
// injection hot path uses this to store structure instead of paying
// fmt.Sprintf per intent.
func (l *Logger) LogLazy(pid, tid int, level Level, tag string, p Payload) {
	l.buf.Append(Entry{
		Time: l.now(), PID: pid, TID: tid, Level: level, Tag: tag, Payload: p,
	})
}

// Block appends several entries sharing the same metadata — used for
// multi-line artifacts like stack traces so they stay contiguous. The lines
// land in the ring under one lock acquisition.
func (l *Logger) Block(pid, tid int, level Level, tag string, lines []string) {
	t := l.now()
	entries := make([]Entry, len(lines))
	for i, line := range lines {
		entries[i] = Entry{Time: t, PID: pid, TID: tid, Level: level, Tag: tag, Message: line}
	}
	l.buf.AppendBatch(entries)
}

// Buffer exposes the underlying ring, for pull/clear operations.
func (l *Logger) Buffer() *Buffer { return l.buf }

// ParseLine parses one threadtime-formatted line back into an Entry. The
// year is taken from the provided base year because logcat omits it. ok is
// false for lines that do not look like threadtime output.
func ParseLine(line string, year int) (Entry, bool) {
	// Format: "01-02 15:04:05.000 <pid> <tid> <L> <tag>: <message>"
	if len(line) < 19 {
		return Entry{}, false
	}
	ts, err := time.Parse(threadtimeLayout, line[:18])
	if err != nil {
		return Entry{}, false
	}
	ts = ts.AddDate(year, 0, 0)
	rest := strings.TrimSpace(line[18:])
	fields := strings.Fields(rest)
	if len(fields) < 4 {
		return Entry{}, false
	}
	var pid, tid int
	if _, err := fmt.Sscanf(fields[0], "%d", &pid); err != nil {
		return Entry{}, false
	}
	if _, err := fmt.Sscanf(fields[1], "%d", &tid); err != nil {
		return Entry{}, false
	}
	var level Level
	switch fields[2] {
	case "V":
		level = Verbose
	case "D":
		level = Debug
	case "I":
		level = Info
	case "W":
		level = Warn
	case "E":
		level = Error
	case "F":
		level = Fatal
	default:
		return Entry{}, false
	}
	// Tag runs up to the first ": " after the level field.
	idx := strings.Index(rest, fields[2]+" ")
	if idx < 0 {
		return Entry{}, false
	}
	tagAndMsg := rest[idx+2:]
	tag, msg, found := strings.Cut(tagAndMsg, ": ")
	if !found {
		tag = strings.TrimSuffix(tagAndMsg, ":")
		msg = ""
	}
	return Entry{Time: ts, PID: pid, TID: tid, Level: level, Tag: tag, Message: msg}, true
}
