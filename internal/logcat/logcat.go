// Package logcat models Android's logging facility. Every observable the
// paper measures — FATAL EXCEPTION blocks, ANR reports, SecurityExceptions,
// native signal deliveries, reboot markers — is read out of logcat; the QGJ
// workflow pulls the logs over adb and the analyzer classifies
// manifestations from them (Section III-D: "we collected all of the log
// files (over 2GB) from the wearable using logcat").
package logcat

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Level is the Android log priority.
type Level int

const (
	Verbose Level = iota + 1
	Debug
	Info
	Warn
	Error
	Fatal
)

// String returns the single-letter logcat priority code.
func (l Level) String() string {
	switch l {
	case Verbose:
		return "V"
	case Debug:
		return "D"
	case Info:
		return "I"
	case Warn:
		return "W"
	case Error:
		return "E"
	case Fatal:
		return "F"
	default:
		return "?"
	}
}

// Entry is one log line.
type Entry struct {
	Time    time.Time
	PID     int
	TID     int
	Level   Level
	Tag     string
	Message string
}

// Format renders the entry in logcat's threadtime format, which the pull
// path emits and the parser consumes.
func (e Entry) Format() string {
	return fmt.Sprintf("%s %5d %5d %s %s: %s",
		e.Time.Format("01-02 15:04:05.000"), e.PID, e.TID, e.Level, e.Tag, e.Message)
}

// Well-known tags used across the simulator, mirroring AOSP conventions.
const (
	TagActivityManager = "ActivityManager"
	TagAndroidRuntime  = "AndroidRuntime"
	TagSystemServer    = "SystemServer"
	TagSensorService   = "SensorService"
	TagWindowManager   = "WindowManager"
	TagPackageManager  = "PackageManager"
	TagWatchdog        = "Watchdog"
	TagDEBUG           = "DEBUG" // native crash dumps (debuggerd)
	TagBoot            = "boot"
	TagMonkey          = "Monkey"
	TagGoogleFit       = "GoogleFit"
)

// Sink receives entries as they are appended; the streaming analyzer and
// test recorders register sinks so multi-million-entry campaigns do not have
// to retain the full log in memory.
type Sink interface {
	Consume(Entry)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Entry)

// Consume implements Sink.
func (f SinkFunc) Consume(e Entry) { f(e) }

// Buffer is a bounded ring of log entries, like the kernel log buffer
// logcat reads. Oldest entries are dropped when the buffer is full.
type Buffer struct {
	mu      sync.Mutex
	entries []Entry
	start   int // index of oldest entry
	count   int
	dropped uint64
	sinks   []Sink

	// Telemetry (optional; nil metrics no-op).
	appended     *telemetry.Counter
	droppedGauge *telemetry.Gauge
	onFirstDrop  func(capacity int)
}

// DefaultCapacity matches a generously sized logd buffer; campaign runs
// clear the buffer per-app the way the paper pulls logs per experiment.
const DefaultCapacity = 1 << 16

// NewBuffer returns a ring buffer holding up to capacity entries
// (DefaultCapacity when capacity <= 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Buffer{entries: make([]Entry, capacity)}
}

// Subscribe registers a sink that observes every subsequent Append. Sinks
// are invoked synchronously in registration order.
func (b *Buffer) Subscribe(s Sink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sinks = append(b.sinks, s)
}

// SetTelemetry wires the buffer's counters into reg: logcat_entries_total
// counts appends, logcat_dropped_lines mirrors Dropped(). A nil registry
// detaches.
func (b *Buffer) SetTelemetry(reg *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.appended = reg.Counter("logcat_entries_total")
	b.droppedGauge = reg.Gauge("logcat_dropped_lines")
	b.droppedGauge.Set(float64(b.dropped))
}

// OnFirstDrop registers fn to run once, when the first entry is evicted
// for capacity. Dropped lines silently corrupt manifestation counts (the
// analyzer never sees them), so callers surface a warning here.
func (b *Buffer) OnFirstDrop(fn func(capacity int)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onFirstDrop = fn
}

// Append adds an entry to the buffer and fans it out to sinks.
func (b *Buffer) Append(e Entry) {
	b.mu.Lock()
	capN := len(b.entries)
	var firstDrop func(int)
	if b.count == capN {
		b.entries[b.start] = e
		b.start = (b.start + 1) % capN
		b.dropped++
		b.droppedGauge.Set(float64(b.dropped))
		if b.dropped == 1 {
			firstDrop = b.onFirstDrop
		}
	} else {
		b.entries[(b.start+b.count)%capN] = e
		b.count++
	}
	b.appended.Inc()
	sinks := b.sinks
	b.mu.Unlock()
	if firstDrop != nil {
		firstDrop(capN)
	}
	for _, s := range sinks {
		s.Consume(e)
	}
}

// Len returns the number of retained entries.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Dropped returns how many entries were evicted due to capacity.
func (b *Buffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Snapshot returns a copy of the retained entries, oldest first.
func (b *Buffer) Snapshot() []Entry {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Entry, b.count)
	for i := 0; i < b.count; i++ {
		out[i] = b.entries[(b.start+i)%len(b.entries)]
	}
	return out
}

// Clear discards all retained entries (adb logcat -c).
func (b *Buffer) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.start, b.count = 0, 0
}

// Dump renders the retained entries in threadtime format, one per line.
func (b *Buffer) Dump() string {
	snap := b.Snapshot()
	var sb strings.Builder
	for _, e := range snap {
		sb.WriteString(e.Format())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Logger is a convenience handle that stamps entries with a clock and
// writes them to a buffer.
type Logger struct {
	buf *Buffer
	now func() time.Time
}

// NewLogger returns a logger writing to buf with timestamps from now.
func NewLogger(buf *Buffer, now func() time.Time) *Logger {
	return &Logger{buf: buf, now: now}
}

// Log appends a formatted entry.
func (l *Logger) Log(pid, tid int, level Level, tag, format string, args ...any) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	l.buf.Append(Entry{
		Time: l.now(), PID: pid, TID: tid, Level: level, Tag: tag, Message: msg,
	})
}

// Block appends several entries sharing the same metadata — used for
// multi-line artifacts like stack traces so they stay contiguous.
func (l *Logger) Block(pid, tid int, level Level, tag string, lines []string) {
	t := l.now()
	for _, line := range lines {
		l.buf.Append(Entry{Time: t, PID: pid, TID: tid, Level: level, Tag: tag, Message: line})
	}
}

// Buffer exposes the underlying ring, for pull/clear operations.
func (l *Logger) Buffer() *Buffer { return l.buf }

// ParseLine parses one threadtime-formatted line back into an Entry. The
// year is taken from the provided base year because logcat omits it. ok is
// false for lines that do not look like threadtime output.
func ParseLine(line string, year int) (Entry, bool) {
	// Format: "01-02 15:04:05.000 <pid> <tid> <L> <tag>: <message>"
	if len(line) < 19 {
		return Entry{}, false
	}
	ts, err := time.Parse("01-02 15:04:05.000", line[:18])
	if err != nil {
		return Entry{}, false
	}
	ts = ts.AddDate(year, 0, 0)
	rest := strings.TrimSpace(line[18:])
	fields := strings.Fields(rest)
	if len(fields) < 4 {
		return Entry{}, false
	}
	var pid, tid int
	if _, err := fmt.Sscanf(fields[0], "%d", &pid); err != nil {
		return Entry{}, false
	}
	if _, err := fmt.Sscanf(fields[1], "%d", &tid); err != nil {
		return Entry{}, false
	}
	var level Level
	switch fields[2] {
	case "V":
		level = Verbose
	case "D":
		level = Debug
	case "I":
		level = Info
	case "W":
		level = Warn
	case "E":
		level = Error
	case "F":
		level = Fatal
	default:
		return Entry{}, false
	}
	// Tag runs up to the first ": " after the level field.
	idx := strings.Index(rest, fields[2]+" ")
	if idx < 0 {
		return Entry{}, false
	}
	tagAndMsg := rest[idx+2:]
	tag, msg, found := strings.Cut(tagAndMsg, ": ")
	if !found {
		tag = strings.TrimSuffix(tagAndMsg, ":")
		msg = ""
	}
	return Entry{Time: ts, PID: pid, TID: tid, Level: level, Tag: tag, Message: msg}, true
}
