package logcat

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vclock"
)

func TestBufferAppendAndSnapshot(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 3; i++ {
		b.Append(Entry{PID: i})
	}
	snap := b.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Len = %d", len(snap))
	}
	for i, e := range snap {
		if e.PID != i {
			t.Fatalf("snapshot out of order: %v", snap)
		}
	}
}

func TestBufferEviction(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Append(Entry{PID: i})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
	snap := b.Snapshot()
	want := []int{2, 3, 4}
	for i, e := range snap {
		if e.PID != want[i] {
			t.Fatalf("after eviction snapshot = %v", snap)
		}
	}
}

func TestBufferClear(t *testing.T) {
	b := NewBuffer(8)
	b.Append(Entry{})
	b.Clear()
	if b.Len() != 0 {
		t.Fatal("Clear left entries")
	}
	b.Append(Entry{PID: 42})
	if snap := b.Snapshot(); len(snap) != 1 || snap[0].PID != 42 {
		t.Fatalf("append after clear = %v", snap)
	}
}

// Property: for any sequence of appends, the snapshot is always the last
// min(n, cap) entries in order.
func TestQuickRingInvariant(t *testing.T) {
	f := func(pids []uint8) bool {
		const capN = 7
		b := NewBuffer(capN)
		for _, p := range pids {
			b.Append(Entry{PID: int(p)})
		}
		snap := b.Snapshot()
		n := len(pids)
		wantLen := n
		if wantLen > capN {
			wantLen = capN
		}
		if len(snap) != wantLen {
			return false
		}
		for i := range snap {
			if snap[i].PID != int(pids[n-wantLen+i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSinksObserveAppends(t *testing.T) {
	b := NewBuffer(2) // tiny: sinks must still see everything
	var seen []int
	b.Subscribe(SinkFunc(func(e Entry) { seen = append(seen, e.PID) }))
	for i := 0; i < 5; i++ {
		b.Append(Entry{PID: i})
	}
	if len(seen) != 5 {
		t.Fatalf("sink saw %d entries, want 5", len(seen))
	}
}

func TestLoggerStampsVirtualTime(t *testing.T) {
	clk := vclock.NewVirtual(time.Time{})
	b := NewBuffer(8)
	l := NewLogger(b, clk.Now)
	l.Log(100, 100, Info, TagActivityManager, "START u0 {act=%s}", "android.intent.action.VIEW")
	clk.Advance(time.Second)
	l.Log(100, 100, Error, TagAndroidRuntime, "FATAL EXCEPTION: main")
	snap := b.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Len = %d", len(snap))
	}
	if !snap[1].Time.Equal(snap[0].Time.Add(time.Second)) {
		t.Fatalf("timestamps not advancing: %v %v", snap[0].Time, snap[1].Time)
	}
	if !strings.Contains(snap[0].Message, "act=android.intent.action.VIEW") {
		t.Errorf("formatted message = %q", snap[0].Message)
	}
}

func TestBlockSharesTimestamp(t *testing.T) {
	clk := vclock.NewVirtual(time.Time{})
	b := NewBuffer(8)
	l := NewLogger(b, clk.Now)
	l.Block(7, 7, Error, TagAndroidRuntime, []string{"line1", "line2", "line3"})
	snap := b.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Block wrote %d entries", len(snap))
	}
	for _, e := range snap[1:] {
		if !e.Time.Equal(snap[0].Time) {
			t.Fatal("block entries have differing timestamps")
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	e := Entry{
		Time:    time.Date(0, 6, 1, 9, 30, 15, 123_000_000, time.UTC),
		PID:     1234,
		TID:     1240,
		Level:   Error,
		Tag:     TagAndroidRuntime,
		Message: "FATAL EXCEPTION: main",
	}
	line := e.Format()
	got, ok := ParseLine(line, 0)
	if !ok {
		t.Fatalf("ParseLine(%q) failed", line)
	}
	if got.PID != e.PID || got.TID != e.TID || got.Level != e.Level ||
		got.Tag != e.Tag || got.Message != e.Message {
		t.Fatalf("round trip: got %+v, want %+v", got, e)
	}
	if !got.Time.Equal(e.Time) {
		t.Fatalf("time round trip: got %v, want %v", got.Time, e.Time)
	}
}

func TestParseLineRejections(t *testing.T) {
	for _, line := range []string{
		"",
		"short",
		"not a timestamp at all with enough length to pass",
		"06-01 09:30:15.123 xx yy Z Tag: msg",
	} {
		if _, ok := ParseLine(line, 0); ok {
			t.Errorf("ParseLine(%q) unexpectedly ok", line)
		}
	}
}

func TestParseLineMessageWithColons(t *testing.T) {
	e := Entry{
		Time: time.Date(0, 1, 2, 3, 4, 5, 0, time.UTC), PID: 1, TID: 2,
		Level: Info, Tag: "Tag", Message: "a: b: c",
	}
	got, ok := ParseLine(e.Format(), 0)
	if !ok || got.Message != "a: b: c" || got.Tag != "Tag" {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
}

func TestDumpContainsAllLines(t *testing.T) {
	b := NewBuffer(8)
	l := NewLogger(b, func() time.Time { return vclock.Epoch })
	l.Log(1, 1, Info, "A", "first")
	l.Log(2, 2, Warn, "B", "second")
	dump := b.Dump()
	if !strings.Contains(dump, "first") || !strings.Contains(dump, "second") {
		t.Fatalf("Dump = %q", dump)
	}
	if got := strings.Count(dump, "\n"); got != 2 {
		t.Fatalf("Dump has %d lines", got)
	}
}

func TestLevelStrings(t *testing.T) {
	levels := map[Level]string{Verbose: "V", Debug: "D", Info: "I", Warn: "W", Error: "E", Fatal: "F"}
	for l, s := range levels {
		if l.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(l), l.String(), s)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := NewBuffer(0)
	if got := len(b.entries); got != DefaultCapacity {
		t.Fatalf("default capacity = %d", got)
	}
}
