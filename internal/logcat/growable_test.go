package logcat

import (
	"testing"
)

// TestGrowableBufferMatchesFixed drives a fixed and a growable ring of the
// same retention capacity through an identical append stream across every
// interesting boundary (initial backing, each growth step, full, evicting)
// and asserts identical observable state.
func TestGrowableBufferMatchesFixed(t *testing.T) {
	const capacity = growInitialCapacity * growFactor * 2
	fixed := NewBuffer(capacity)
	grow := NewGrowableBuffer(capacity)
	for i := 0; i < capacity*2+7; i++ {
		e := Entry{PID: i}
		fixed.Append(e)
		grow.Append(e)
		if fixed.Len() != grow.Len() {
			t.Fatalf("after %d appends: Len fixed=%d growable=%d", i+1, fixed.Len(), grow.Len())
		}
	}
	if f, g := fixed.Dropped(), grow.Dropped(); f != g {
		t.Fatalf("Dropped fixed=%d growable=%d", f, g)
	}
	fs, gs := fixed.Snapshot(), grow.Snapshot()
	if len(fs) != len(gs) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(fs), len(gs))
	}
	for i := range fs {
		if fs[i].PID != gs[i].PID {
			t.Fatalf("snapshot[%d]: fixed PID %d, growable PID %d", i, fs[i].PID, gs[i].PID)
		}
	}
}

// TestGrowableBufferStartsSmall pins the lazy-allocation property the farm's
// clone path depends on: a fresh growable ring must not carry the full
// retention capacity's backing array.
func TestGrowableBufferStartsSmall(t *testing.T) {
	b := NewGrowableBuffer(DefaultCapacity)
	if len(b.entries) != growInitialCapacity {
		t.Fatalf("initial backing = %d entries, want %d", len(b.entries), growInitialCapacity)
	}
	if b.maxCap != DefaultCapacity {
		t.Fatalf("maxCap = %d, want %d", b.maxCap, DefaultCapacity)
	}
	// A capacity below the initial backing clamps rather than over-allocating.
	small := NewGrowableBuffer(8)
	for i := 0; i < 20; i++ {
		small.Append(Entry{PID: i})
	}
	if small.Len() != 8 || small.Dropped() != 12 {
		t.Fatalf("small ring Len=%d Dropped=%d, want 8/12", small.Len(), small.Dropped())
	}
}

// TestRestoreSeedsWithoutFanout verifies Restore replays a baseline into
// the ring without invoking sinks or counting new appends beyond the
// restored total.
func TestRestoreSeedsWithoutFanout(t *testing.T) {
	baseline := []Entry{{PID: 1}, {PID: 2}, {PID: 3}}
	b := NewGrowableBuffer(16)
	b.Restore(baseline)
	var seen int
	b.Subscribe(SinkFunc(func(Entry) { seen++ }))
	if seen != 0 {
		t.Fatalf("Restore fanned out %d entries to sinks", seen)
	}
	b.Append(Entry{PID: 4})
	if seen != 1 {
		t.Fatalf("post-restore append fanout = %d, want 1", seen)
	}
	snap := b.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Len after restore+append = %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.PID != i+1 {
			t.Fatalf("snapshot = %v", snap)
		}
	}
}
