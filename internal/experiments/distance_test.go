package experiments

import (
	"testing"

	"repro/internal/stats"
)

// paperTableIV is the published phone crash distribution (Table IV),
// expressed as shares for distance comparison.
var paperTableIV = stats.Dist{
	"java.lang.NullPointerException":            0.309,
	"java.lang.ClassNotFoundException":          0.263,
	"java.lang.IllegalArgumentException":        0.177,
	"java.lang.IllegalStateException":           0.057,
	"java.lang.RuntimeException":                0.051,
	"android.content.ActivityNotFoundException": 0.040,
	"java.lang.UnsupportedOperationException":   0.034,
	"(others)": 0.069,
}

// TestTableIVDistanceFromPaper summarizes the whole Table IV comparison in
// two numbers: total variation distance from the published distribution
// (≤ 0.15) and top-3 ordering agreement (= 1.0).
func TestTableIVDistanceFromPaper(t *testing.T) {
	sr := fullPhone(t)
	rows, others, _ := TableIV(sr)
	measured := stats.Dist{}
	for _, r := range rows {
		measured[string(r.Class)] = r.Share
	}
	measured["(others)"] = others.Share

	if tv := stats.TotalVariation(paperTableIV, measured); tv > 0.15 {
		t.Errorf("Table IV total variation from paper = %.3f, want <= 0.15", tv)
	}
	if agree := stats.TopKAgreement(paperTableIV, measured, 3); agree < 1 {
		t.Errorf("Table IV top-3 agreement = %.2f, want 1.0 (NPE, CNFE, IAE lead)", agree)
	}
	if fr := stats.SpearmanFootrule(paperTableIV, measured); fr > 0.30 {
		t.Errorf("Table IV rank displacement = %.3f, want <= 0.30", fr)
	}
}

// paperFig3a is the manifestation split the paper describes (~90% no
// effect, crash dominant, a handful of hangs, 4 reboot components of 912).
var paperFig3a = stats.Dist{
	"No Effect":    0.90,
	"Crash":        0.085,
	"Unresponsive": 0.010,
	"Reboot":       0.005,
}

// TestFig3aDistanceFromPaper bounds the manifestation distribution's
// distance from the paper's shape.
func TestFig3aDistanceFromPaper(t *testing.T) {
	sr := fullWear(t)
	measured := stats.Dist{}
	for m, n := range Fig3a(sr) {
		measured[m.String()] = float64(n)
	}
	if tv := stats.TotalVariation(paperFig3a, measured); tv > 0.06 {
		t.Errorf("Fig 3a total variation from paper = %.3f, want <= 0.06", tv)
	}
	// Severity ordering must match exactly: no-effect > crash >
	// unresponsive >= reboot.
	rank := stats.Ranking(measured)
	if rank[0] != "No Effect" || rank[1] != "Crash" {
		t.Errorf("Fig 3a ordering = %v", rank)
	}
}
