package experiments

import (
	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
	"repro/internal/wearos"
)

// Ablations and extensions beyond the paper's headline tables. Each
// function isolates one design choice DESIGN.md calls out, so its effect
// can be measured (and benchmarked) independently.

// RunLegacyPhoneStudy runs the four campaigns against the JJB-era phone
// fleet: the Android 2.x baseline of Maji et al. 2012, against which the
// paper claims input validation improved ("Although these results are
// better compared to [8] where NullPointerExceptions contributed to 46% of
// all exceptions...", Section IV-E).
func RunLegacyPhoneStudy(opts Options) (*StudyResult, error) {
	fleet := apps.BuildLegacyPhoneFleet(opts.Seed)
	dev := wearos.New(wearos.DefaultPhoneConfig())
	return runStudy(fleet, dev, opts)
}

// ValidationEraComparison summarizes the historical contrast: NPE's share
// of crash root causes and the overall crash incidence, legacy vs modern.
type ValidationEraComparison struct {
	LegacyNPEShare  float64
	ModernNPEShare  float64
	LegacyCrashComp int // components that crashed
	ModernCrashComp int
	Components      int
}

// CompareValidationEras runs the legacy and modern phone studies under the
// same seed/scale and extracts the input-validation-improvement signal.
func CompareValidationEras(opts Options) (ValidationEraComparison, error) {
	legacy, err := RunLegacyPhoneStudy(opts)
	if err != nil {
		return ValidationEraComparison{}, err
	}
	modern, err := RunPhoneStudy(opts)
	if err != nil {
		return ValidationEraComparison{}, err
	}
	out := ValidationEraComparison{
		LegacyNPEShare: npeShare(legacy.Combined),
		ModernNPEShare: npeShare(modern.Combined),
		Components:     len(modern.Combined.Components),
	}
	for _, cr := range legacy.Combined.Components {
		if len(cr.CrashRoots) > 0 {
			out.LegacyCrashComp++
		}
	}
	for _, cr := range modern.Combined.Components {
		if len(cr.CrashRoots) > 0 {
			out.ModernCrashComp++
		}
	}
	return out, nil
}

func npeShare(r *analysis.Report) float64 {
	counts := r.CrashClassTotals()
	total, npe := 0, 0
	for _, cc := range counts {
		total += cc.Count
		if cc.Class == javalang.ClassNullPointer {
			npe = cc.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(npe) / float64(total)
}

// AgingAblation measures how many reboots one fuzzing pass produces under
// a modified aging configuration. It isolates the system-server design
// choices: crash-loop throttling (RepeatWindow), instability decay
// (HalfLife), and the catastrophic weight of core-service deaths.
type AgingAblation struct {
	Name    string
	Reboots int
	Sent    int
}

// RunAgingAblations fuzzes the two reboot-scenario apps (the paper's
// escalation carriers) plus one ordinary crashy app under several aging
// configurations and reports the reboot counts. The default configuration
// must yield exactly the paper's two reboots; removing crash-loop
// throttling or decay makes reboots epidemic — which is exactly why the
// model has them (the paper observed only two reboots over ~1.5M intents
// despite thousands of crashes).
func RunAgingAblations(seed uint64, gen core.GeneratorConfig) ([]AgingAblation, error) {
	configs := []struct {
		name   string
		mutate func(*wearos.AgingConfig)
	}{
		{"default", func(*wearos.AgingConfig) {}},
		{"no-crash-throttle", func(c *wearos.AgingConfig) {
			c.RepeatCrashWeight = c.CrashWeight
			c.RepeatANRWeight = c.ANRWeight
		}},
		{"no-decay", func(c *wearos.AgingConfig) {
			c.HalfLife = 0
			// Without decay every crash accumulates forever; keep the
			// repeat throttle so the ablation isolates decay alone.
		}},
		{"fragile-core", func(c *wearos.AgingConfig) {
			// A watch whose core services matter twice as little: the
			// escalation chains no longer reach the threshold.
			c.CoreServiceWeight = c.RebootThreshold / 2
		}},
	}
	// The two escalation carriers plus one ordinary crashy app (picked from
	// the quota so it actually crash-loops under this seed).
	targets := []string{
		"com.motorola.omni",            // sensor escalation (campaign A)
		"com.google.android.deskclock", // ambient escalation (campaign D)
	}
	probe := apps.BuildWearFleet(seed)
	for _, name := range probe.CrashyApps() {
		if name != targets[0] && name != targets[1] {
			targets = append(targets, name)
			break
		}
	}
	var out []AgingAblation
	for _, cfg := range configs {
		fleet := apps.BuildWearFleet(seed)
		devCfg := wearos.DefaultWatchConfig()
		cfg.mutate(&devCfg.Aging)
		dev := wearos.New(devCfg)
		if err := fleet.InstallInto(dev); err != nil {
			return nil, err
		}
		g := gen
		g.Seed = seed
		inj := &core.Injector{Dev: dev, Cfg: g}
		sent := 0
		for _, c := range core.AllCampaigns {
			for _, pkgName := range targets {
				pkg := dev.Registry().Package(pkgName)
				run := inj.FuzzApp(c, pkg)
				sent += run.Sent
			}
		}
		out = append(out, AgingAblation{
			Name:    cfg.name,
			Reboots: dev.BootCount() - 1,
			Sent:    sent,
		})
	}
	return out, nil
}

// PacingAblation measures the effect of QGJ's empirically chosen delays
// (100 ms between intents, 250 ms per 100): with pacing, instability
// decays between failures; without it, unrelated failures pile into the
// same aging window. Returns (rebootsWithPacing, rebootsWithoutPacing).
func PacingAblation(seed uint64, gen core.GeneratorConfig) (paced, unpaced int, err error) {
	run := func(pace bool) (int, error) {
		fleet := apps.BuildWearFleet(seed)
		dev := wearos.New(wearos.DefaultWatchConfig())
		if err := fleet.InstallInto(dev); err != nil {
			return 0, err
		}
		g := gen
		g.Seed = seed
		if !pace {
			// Same intent stream, but no inter-intent delays: deliver
			// back-to-back so instability never decays between failures.
			for _, c := range core.AllCampaigns {
				for _, pkg := range dev.Registry().Packages() {
					for _, comp := range pkg.Components {
						kind := comp.Type
						c.Generate(comp.Name, g, core.QGJUID, func(in *intent.Intent) {
							if kind == manifest.Service {
								dev.StartService(in)
							} else {
								dev.StartActivity(in)
							}
						})
					}
				}
			}
			return dev.BootCount() - 1, nil
		}
		inj := &core.Injector{Dev: dev, Cfg: g}
		for _, c := range core.AllCampaigns {
			for _, pkg := range dev.Registry().Packages() {
				inj.FuzzApp(c, pkg)
			}
		}
		return dev.BootCount() - 1, nil
	}
	if paced, err = run(true); err != nil {
		return 0, 0, err
	}
	if unpaced, err = run(false); err != nil {
		return 0, 0, err
	}
	return paced, unpaced, nil
}

// RejuvenationStudy is the counterfactual for the paper's Section IV-E
// mitigation proposal: the same fuzzing workload with and without
// proactive software rejuvenation in the system server.
type RejuvenationStudy struct {
	BaselineReboots    int
	RejuvenatedReboots int
	Rejuvenations      int
	Sent               int
}

// RunRejuvenationStudy fuzzes the two escalation-carrying apps through
// the campaigns that trip them (A for the sensor chain, D for the ambient
// chain), once under the default aging model and once with rejuvenation
// enabled. With the paper's configuration the baseline reboots twice and
// the rejuvenated run not at all.
func RunRejuvenationStudy(seed uint64, gen core.GeneratorConfig) (RejuvenationStudy, error) {
	run := func(aging wearos.AgingConfig) (reboots, rejuv, sent int, err error) {
		fleet := apps.BuildWearFleet(seed)
		devCfg := wearos.DefaultWatchConfig()
		devCfg.Aging = aging
		dev := wearos.New(devCfg)
		if err := fleet.InstallInto(dev); err != nil {
			return 0, 0, 0, err
		}
		g := gen
		g.Seed = seed
		inj := &core.Injector{Dev: dev, Cfg: g}
		for _, step := range []struct {
			campaign core.Campaign
			pkg      string
		}{
			{core.CampaignA, "com.motorola.omni"},
			{core.CampaignD, "com.google.android.deskclock"},
		} {
			pkg := dev.Registry().Package(step.pkg)
			r := inj.FuzzApp(step.campaign, pkg)
			sent += r.Sent
		}
		return dev.BootCount() - 1, dev.SystemServer().Rejuvenations(), sent, nil
	}

	out := RejuvenationStudy{}
	var err error
	if out.BaselineReboots, _, out.Sent, err = run(wearos.DefaultAgingConfig()); err != nil {
		return out, err
	}
	if out.RejuvenatedReboots, out.Rejuvenations, _, err = run(wearos.RejuvenatedAgingConfig()); err != nil {
		return out, err
	}
	return out, nil
}
