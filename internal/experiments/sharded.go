package experiments

import (
	"repro/internal/apps"
	"repro/internal/farm"
)

// runFarmStudy executes the study on the farm engine — one fresh device per
// (campaign, package) shard, a worker pool, checkpoint/resume, and crash
// triage — and adapts the merged farm result to the StudyResult shape every
// table and figure function consumes.
//
// Determinism note: a farm run with workers=1 is the farm's own serial
// baseline and is byte-identical to any other worker count for the same
// seed. It intentionally differs from the single-device runStudy path,
// where all shards share one aging device (see docs/farm.md).
func runFarmStudy(kind apps.FleetKind, opts Options) (*StudyResult, error) {
	cfg := farm.Config{
		Seed:      opts.Seed,
		Fleet:     kind,
		Campaigns: opts.Campaigns,
		Packages:  opts.Packages,
		Gen:       opts.Gen,
		Sharding:  opts.Sharding,
		Telemetry: opts.Telemetry,
		Status:    opts.Status,
	}
	if opts.Progress != nil {
		cfg.Progress = func(done, total int, key farm.ShardKey, sentSoFar int) {
			opts.Progress(key.Campaign, key.Package, sentSoFar)
		}
	}
	fres, err := farm.Run(cfg)
	if err != nil {
		return nil, err
	}
	sr := &StudyResult{
		Fleet:    fres.Fleet,
		Combined: fres.Combined,
		Sent:     fres.Sent,
		Triage:   fres.Triage,
		Sharding: &ShardingInfo{
			Workers:    fres.Workers,
			Shards:     fres.Shards,
			Resumed:    fres.Resumed,
			Checkpoint: opts.Sharding.Checkpoint,
		},
	}
	for _, cr := range fres.Campaigns {
		sr.Campaigns = append(sr.Campaigns, CampaignOutcome{
			Campaign:  cr.Campaign,
			Report:    cr.Report,
			Sent:      cr.Sent,
			Summaries: cr.Summaries,
		})
	}
	return sr, nil
}
