package experiments

import (
	"testing"

	"repro/internal/core"
)

func TestLegacyPhoneStudyRuns(t *testing.T) {
	sr, err := RunLegacyPhoneStudy(Options{
		Seed:     1,
		Gen:      QuickGen(6),
		Packages: []string{"com.android.chrome", "com.android.settings", "com.android.phone"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Sent == 0 {
		t.Fatal("legacy study sent nothing")
	}
	if sr.Fleet.Kind.String() != "legacy-phone" {
		t.Fatalf("fleet kind = %s", sr.Fleet.Kind)
	}
}

func TestValidationErasFullScale(t *testing.T) {
	// The paper's historical claim: "input validation on Android has
	// improved over the years, and fewer uncaught NullPointerException are
	// raised in Android 7.1.1 compared to results from Maji et al."
	if testing.Short() {
		t.Skip("full-scale era comparison skipped in -short mode")
	}
	cmp, err := CompareValidationEras(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Legacy NPE share near the 46% of the 2012 study; modern near 31%.
	if cmp.LegacyNPEShare < 0.38 || cmp.LegacyNPEShare > 0.56 {
		t.Errorf("legacy NPE share = %.3f, JJB-era baseline ~0.46", cmp.LegacyNPEShare)
	}
	if cmp.ModernNPEShare < 0.22 || cmp.ModernNPEShare > 0.45 {
		t.Errorf("modern NPE share = %.3f, paper 0.309", cmp.ModernNPEShare)
	}
	if cmp.ModernNPEShare >= cmp.LegacyNPEShare {
		t.Errorf("NPE share did not decline: legacy %.3f -> modern %.3f",
			cmp.LegacyNPEShare, cmp.ModernNPEShare)
	}
	// Overall crash incidence also declines era over era.
	if cmp.ModernCrashComp >= cmp.LegacyCrashComp {
		t.Errorf("crash incidence did not decline: legacy %d -> modern %d components",
			cmp.LegacyCrashComp, cmp.ModernCrashComp)
	}
}

func TestAgingAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("aging ablations skipped in -short mode")
	}
	// Full-scale generation against just the three target apps.
	rows, err := RunAgingAblations(1, core.GeneratorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AgingAblation{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The default configuration reproduces the paper's two reboots even
	// though the ordinary crashy app crash-loops thousands of times.
	if got := byName["default"].Reboots; got != 2 {
		t.Errorf("default config reboots = %d, want 2", got)
	}
	// Without crash-loop throttling, reboots become epidemic — the design
	// choice is load-bearing.
	if got := byName["no-crash-throttle"].Reboots; got <= 2 {
		t.Errorf("no-crash-throttle reboots = %d, want epidemic (>2)", got)
	}
	// Without decay, accumulated background noise eventually reboots too.
	if got := byName["no-decay"].Reboots; got < 2 {
		t.Errorf("no-decay reboots = %d, want >= 2", got)
	}
	// With weak core-service weight the escalation chains cannot trip the
	// threshold on their own.
	if got := byName["fragile-core"].Reboots; got != 0 {
		t.Errorf("fragile-core reboots = %d, want 0", got)
	}
}

func TestPacingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("pacing ablation skipped in -short mode")
	}
	// Reduced scale over the full fleet: pacing lets instability decay
	// between failures; removing it can only keep or increase reboots.
	paced, unpaced, err := PacingAblation(1, QuickGen(4))
	if err != nil {
		t.Fatal(err)
	}
	if unpaced < paced {
		t.Errorf("removing pacing reduced reboots: paced=%d unpaced=%d", paced, unpaced)
	}
}

func TestRejuvenationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("rejuvenation study skipped in -short mode")
	}
	rs, err := RunRejuvenationStudy(1, core.GeneratorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The baseline reproduces both paper reboots; rejuvenation defuses
	// both escalation chains.
	if rs.BaselineReboots != 2 {
		t.Errorf("baseline reboots = %d, want 2", rs.BaselineReboots)
	}
	if rs.RejuvenatedReboots != 0 {
		t.Errorf("rejuvenated reboots = %d, want 0", rs.RejuvenatedReboots)
	}
	if rs.Rejuvenations == 0 {
		t.Error("no rejuvenations performed")
	}
}
