package experiments

import (
	"sort"

	"repro/internal/triage"
)

// Fault-resilience roll-up for the fault-injection campaign (FIC F): the
// triage pipeline grades every fault window with a verdict — gracefully
// degraded-and-recovered, stalled, silently dropped data, or failed to
// recover — and this table folds those buckets into a per-(fault, app)
// graceful-degradation score, the campaign's analogue of Table III.

// FaultResilienceRow is one (fault kind, app) row of the resilience table.
type FaultResilienceRow struct {
	// Fault is the injected fault kind ("binder-dead", "sensor-stall", ...).
	Fault string
	// App is the package the campaign was running against when the fault's
	// windows were graded.
	App string
	// Windows is the number of graded fault windows behind this row.
	Windows int
	// Per-verdict window counts.
	Degraded         int
	Stalls           int
	SilentDrops      int
	FailedRecoveries int
	// Score is the graceful-degradation score in [0, 1]: full credit for a
	// visible failure that recovers, half for a hang-shaped one, a quarter
	// for silent data loss (the failure happened AND went unreported), and
	// none for a subsystem that never came back.
	Score float64
}

// Verdict weights behind FaultResilienceRow.Score.
const (
	scoreDegraded       = 1.0
	scoreStall          = 0.5
	scoreSilentDrop     = 0.25
	scoreFailedRecovery = 0.0
)

// FaultResilience derives the resilience table from the study's triage
// buckets; nil when the study ran no fault campaign.
func FaultResilience(sr *StudyResult) []FaultResilienceRow {
	return FaultResilienceFromTriage(sr.Triage)
}

// FaultResilienceFromTriage derives the resilience table straight from a
// triage result (the farm CLIs hold a farm.Result, not a StudyResult). Rows
// are sorted by fault kind then app, so the table is a deterministic
// function of the (already deterministic) merged triage result; nil when
// no fault buckets exist.
func FaultResilienceFromTriage(t *triage.Result) []FaultResilienceRow {
	if t == nil {
		return nil
	}
	type key struct{ fault, app string }
	acc := make(map[key]*FaultResilienceRow)
	var order []key
	for i := range t.Buckets {
		b := &t.Buckets[i]
		var w float64
		switch b.Kind {
		case triage.KindDegraded:
			w = scoreDegraded
		case triage.KindStall:
			w = scoreStall
		case triage.KindSilentDrop:
			w = scoreSilentDrop
		case triage.KindFailedRecovery:
			w = scoreFailedRecovery
		default:
			continue // crash/ANR bucket
		}
		// Fault buckets carry the injected kind in Class and the app in
		// Frame (triage.Bucketize's fault labeling).
		k := key{fault: b.Class, app: b.Frame}
		row, ok := acc[k]
		if !ok {
			row = &FaultResilienceRow{Fault: k.fault, App: k.app}
			acc[k] = row
			order = append(order, k)
		}
		row.Windows += b.Count
		row.Score += w * float64(b.Count)
		switch b.Kind {
		case triage.KindDegraded:
			row.Degraded += b.Count
		case triage.KindStall:
			row.Stalls += b.Count
		case triage.KindSilentDrop:
			row.SilentDrops += b.Count
		case triage.KindFailedRecovery:
			row.FailedRecoveries += b.Count
		}
	}
	if len(order) == 0 {
		return nil
	}
	out := make([]FaultResilienceRow, 0, len(order))
	for _, k := range order {
		row := acc[k]
		row.Score /= float64(row.Windows)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fault != out[j].Fault {
			return out[i].Fault < out[j].Fault
		}
		return out[i].App < out[j].App
	})
	return out
}
