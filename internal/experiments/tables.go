package experiments

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
)

// TableIRow describes one fuzz intent campaign (Table I).
type TableIRow struct {
	Campaign       core.Campaign
	Name           string
	CountFormula   string
	PerComponent   int
	ProjectedTotal int // over the full wear fleet (912 components)
	Example        string
}

// TableI computes the campaign characteristics for the given generator
// configuration and component count.
func TableI(gen core.GeneratorConfig, components int) []TableIRow {
	formulas := map[core.Campaign]string{
		core.CampaignA: "|Action| x |TypeOf(Data)|",
		core.CampaignB: "|Action| + |TypeOf(Data)|",
		core.CampaignC: "(|Action| + |TypeOf(Data)|) x variants",
		core.CampaignD: "|Action| x variants",
	}
	examples := map[core.Campaign]string{
		core.CampaignA: "{act=ACTION_DIAL, data=http://foo.com/, cmp=some.component.name}",
		core.CampaignB: "{data=tel:123, cmp=some.component.name}",
		core.CampaignC: "{act=ACTION_DIAL, cmp=some.component.name}",
		core.CampaignD: "{act=ACTION_DIAL, data=tel:123, cmp=some.component.name (has extras)}",
	}
	rows := make([]TableIRow, 0, len(core.AllCampaigns))
	for _, c := range core.AllCampaigns {
		per := c.CountPerComponent(gen)
		rows = append(rows, TableIRow{
			Campaign:       c,
			Name:           c.Name(),
			CountFormula:   formulas[c],
			PerComponent:   per,
			ProjectedTotal: per * components,
			Example:        examples[c],
		})
	}
	return rows
}

// TableIIRow is one population row of Table II.
type TableIIRow struct {
	Category   manifest.AppCategory
	Origin     manifest.Origin
	Apps       int
	Activities int
	Services   int
}

// TableII summarizes the fleet populations.
func TableII(fleet *apps.Fleet) []TableIIRow {
	blocks := []struct {
		cat manifest.AppCategory
		org manifest.Origin
	}{
		{manifest.HealthFitness, manifest.BuiltIn},
		{manifest.HealthFitness, manifest.ThirdParty},
		{manifest.NotHealthFitness, manifest.BuiltIn},
		{manifest.NotHealthFitness, manifest.ThirdParty},
	}
	rows := make([]TableIIRow, 0, len(blocks))
	for _, b := range blocks {
		s := fleet.Stats(b.cat, b.org)
		if s.Apps == 0 {
			continue
		}
		rows = append(rows, TableIIRow{
			Category: b.cat, Origin: b.org,
			Apps: s.Apps, Activities: s.Activities, Services: s.Services,
		})
	}
	return rows
}

// TableIIICell is the per-campaign, per-category manifestation share.
type TableIIICell struct {
	Reboot, Crash, Hang, NoEffect float64
}

// TableIIIRow is one campaign's row: Health and Not-Health cells.
type TableIIIRow struct {
	Campaign  core.Campaign
	Health    TableIIICell
	NotHealth TableIIICell
}

// TableIII computes the distribution of behaviours among campaigns,
// app-level, most severe manifestation (Section IV-B).
func TableIII(sr *StudyResult) []TableIIIRow {
	category := make(map[string]manifest.AppCategory, len(sr.Fleet.Packages))
	for _, p := range sr.Fleet.Packages {
		category[p.Name] = p.Category
	}
	rows := make([]TableIIIRow, 0, len(sr.Campaigns))
	for _, c := range sr.Campaigns {
		apps := c.Report.AppManifestations()
		// Apps that were fuzzed but show nothing in the logs still count as
		// no-effect; ensure every fleet package is represented.
		counts := map[manifest.AppCategory]map[analysis.Manifestation]int{
			manifest.HealthFitness:    {},
			manifest.NotHealthFitness: {},
		}
		totals := map[manifest.AppCategory]int{}
		for _, p := range sr.Fleet.Packages {
			m, ok := apps[p.Name]
			if !ok {
				m = analysis.ManifestNoEffect
			}
			counts[p.Category][m]++
			totals[p.Category]++
		}
		cell := func(cat manifest.AppCategory) TableIIICell {
			t := float64(totals[cat])
			if t == 0 {
				return TableIIICell{}
			}
			mm := counts[cat]
			return TableIIICell{
				Reboot:   float64(mm[analysis.ManifestReboot]) / t,
				Crash:    float64(mm[analysis.ManifestCrash]) / t,
				Hang:     float64(mm[analysis.ManifestUnresponsive]) / t,
				NoEffect: float64(mm[analysis.ManifestNoEffect]) / t,
			}
		}
		rows = append(rows, TableIIIRow{
			Campaign:  c.Campaign,
			Health:    cell(manifest.HealthFitness),
			NotHealth: cell(manifest.NotHealthFitness),
		})
	}
	return rows
}

// TableIVRow is one exception class row of the phone crash table.
type TableIVRow struct {
	Class   javalang.Class
	Crashes int
	Share   float64
}

// TableIV computes the phone crash distribution by exception type; classes
// with fewer than 5 crashes are folded into "Others" like the paper.
func TableIV(sr *StudyResult) (rows []TableIVRow, others TableIVRow, total int) {
	counts := sr.Combined.CrashClassTotals()
	for _, cc := range counts {
		total += cc.Count
	}
	if total == 0 {
		return nil, TableIVRow{Class: "Others"}, 0
	}
	for _, cc := range counts {
		if cc.Count < 5 {
			others.Crashes += cc.Count
			continue
		}
		rows = append(rows, TableIVRow{
			Class: cc.Class, Crashes: cc.Count,
			Share: float64(cc.Count) / float64(total),
		})
	}
	others.Class = "Others"
	others.Share = float64(others.Crashes) / float64(total)
	return rows, others, total
}

// Fig2Series is the uncaught-exception distribution grouped by component
// type, excluding SecurityException (the paper plots it without security,
// noting security's 81.3% share separately).
type Fig2Series struct {
	SecurityShare float64
	ByType        map[string][]analysis.ClassCount
}

// Fig2 computes the exception-type distribution.
func Fig2(sr *StudyResult) Fig2Series {
	return Fig2Series{
		SecurityShare: sr.Combined.SecurityShare(),
		ByType:        sr.Combined.UncaughtByComponentType(false),
	}
}

// Fig3a computes the component-level manifestation distribution.
func Fig3a(sr *StudyResult) map[analysis.Manifestation]int {
	return sr.Combined.ManifestationCounts()
}

// Fig3b computes the blamed-exception distribution per manifestation.
func Fig3b(sr *StudyResult) map[analysis.Manifestation][]analysis.BlameShare {
	return sr.Combined.ManifestationBlame()
}

// Fig4Series groups crash-causing exceptions by app classification.
type Fig4Series struct {
	// CrashAppRate is the fraction of apps in each origin class whose most
	// severe manifestation reached crash (the paper: built-in 64%,
	// third-party 46%).
	CrashAppRate map[manifest.Origin]float64
	// ClassCounts are the crash root-cause classes per origin.
	ClassCounts map[manifest.Origin][]analysis.ClassCount
}

// Fig4 computes the built-in vs third-party crash comparison.
func Fig4(sr *StudyResult) Fig4Series {
	origin := make(map[string]manifest.Origin, len(sr.Fleet.Packages))
	totals := map[manifest.Origin]int{}
	for _, p := range sr.Fleet.Packages {
		origin[p.Name] = p.Origin
		totals[p.Origin]++
	}
	crashed := map[manifest.Origin]int{}
	for _, pkg := range sr.Combined.AppsWithCrash() {
		crashed[origin[pkg]]++
	}
	rates := make(map[manifest.Origin]float64, 2)
	for o, t := range totals {
		if t > 0 {
			rates[o] = float64(crashed[o]) / float64(t)
		}
	}
	classes := map[manifest.Origin]map[javalang.Class]int{}
	for pkg, roots := range sr.Combined.CrashRootsByPackage() {
		o := origin[pkg]
		m, ok := classes[o]
		if !ok {
			m = make(map[javalang.Class]int)
			classes[o] = m
		}
		// Count once per (component-class) pair is already folded into
		// roots; fold to per-package class presence for the figure.
		for c := range roots {
			m[c]++
		}
	}
	cc := make(map[manifest.Origin][]analysis.ClassCount, len(classes))
	for o, m := range classes {
		pairs := make([]analysis.ClassCount, 0, len(m))
		for c, n := range m {
			pairs = append(pairs, analysis.ClassCount{Class: c, Count: n})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].Count != pairs[j].Count {
				return pairs[i].Count > pairs[j].Count
			}
			return pairs[i].Class < pairs[j].Class
		})
		cc[o] = pairs
	}
	return Fig4Series{CrashAppRate: rates, ClassCounts: cc}
}

// RebootComponents lists components involved in reboots (Fig. 3a's "4 of
// the components").
func RebootComponents(sr *StudyResult) []intent.ComponentName {
	var out []intent.ComponentName
	for _, cn := range sr.Combined.ComponentNames() {
		if sr.Combined.Components[cn].RebootInvolved {
			out = append(out, cn)
		}
	}
	return out
}
