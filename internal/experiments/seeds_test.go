package experiments

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/javalang"
	"repro/internal/manifest"
)

// TestSeedRobustness re-runs reduced-scale wear studies under several
// seeds and asserts the paper's *qualitative* findings survive re-sampling
// of the synthetic fleet: the reproduction must not hinge on one lucky
// seed. (Scenario components are seed-independent; the statistical layers
// re-sample.)
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, seed := range []uint64{2, 3, 5} {
		seed := seed
		sr, err := RunWearStudy(Options{Seed: seed, Gen: QuickGen(3)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Finding 1: SecurityException dominates all exceptions.
		if share := sr.Combined.SecurityShare(); share < 0.70 {
			t.Errorf("seed %d: security share = %.3f, want dominant", seed, share)
		}

		// Finding 2: crash is the dominant error manifestation and most
		// components are unaffected.
		mc := Fig3a(sr)
		total := 0
		for _, n := range mc {
			total += n
		}
		noEffect := float64(mc[analysis.ManifestNoEffect]) / float64(total)
		if noEffect < 0.80 {
			t.Errorf("seed %d: no-effect share = %.3f", seed, noEffect)
		}
		if mc[analysis.ManifestCrash] <= mc[analysis.ManifestUnresponsive] {
			t.Errorf("seed %d: crash %d not dominant over unresponsive %d",
				seed, mc[analysis.ManifestCrash], mc[analysis.ManifestUnresponsive])
		}

		// Finding 3: built-in apps crash at a higher rate than third-party
		// (quota-pinned, so it must hold for every seed).
		f4 := Fig4(sr)
		bi, tp := f4.CrashAppRate[manifest.BuiltIn], f4.CrashAppRate[manifest.ThirdParty]
		if bi <= tp {
			t.Errorf("seed %d: built-in rate %.2f <= third-party %.2f", seed, bi, tp)
		}

		// Finding 4: IllegalArgumentException is the top non-security
		// class (Fig. 2's ordering).
		dist := sr.Combined.UncaughtClassDistribution(false)
		if len(dist) == 0 || dist[0].Class != javalang.ClassIllegalArgument {
			t.Errorf("seed %d: top non-security class = %v", seed, dist)
		}
	}
}
