// Package experiments runs the paper's studies end-to-end: build a fleet,
// boot a simulated device, drive QGJ's campaigns against every app,
// analyze the logs, and aggregate the tables and figures. Both the
// benchmark harness (bench_test.go) and cmd/report regenerate every paper
// artifact through this package.
package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/logcat"
	"repro/internal/manifest"
	"repro/internal/telemetry"
	"repro/internal/triage"
	"repro/internal/wearos"
)

// Options configures a study run.
type Options struct {
	// Seed drives fleet construction and intent generation.
	Seed uint64
	// Gen scales generation; zero value = full paper scale.
	Gen core.GeneratorConfig
	// Packages optionally restricts the run to the named packages (tests);
	// nil fuzzes the whole fleet.
	Packages []string
	// Campaigns optionally restricts the run to the listed FICs; nil runs
	// all four in Table I order.
	Campaigns []core.Campaign
	// Progress, when non-nil, is called after each (campaign, app) unit.
	Progress func(campaign core.Campaign, pkg string, sentSoFar int)
	// Sharding, when enabled (workers > 1 or a checkpoint path), routes the
	// study through the farm engine: device-per-shard parallel execution
	// with checkpoint/resume and crash triage. See docs/farm.md for how the
	// farm's results relate to the serial single-device study.
	Sharding core.Sharding
	// Telemetry, when non-nil, receives farm execution metrics (farm mode
	// only; the serial path's device carries its own registry).
	Telemetry *telemetry.Registry
	// Status, when non-nil, is kept current with the farm's live shard
	// table (farm mode only) — serve it with farm.StatusHandler.
	Status *farm.StatusBoard
}

// CampaignOutcome holds the per-campaign view needed for Table III.
type CampaignOutcome struct {
	Campaign core.Campaign
	Report   *analysis.Report
	Sent     int
	// Summaries holds the QGJ-style per-app summaries for this campaign.
	Summaries []core.Summary
}

// StudyResult is the complete outcome of one fuzzing study.
type StudyResult struct {
	Fleet *apps.Fleet
	// Device is the single simulated device of a serial run; nil for farm
	// runs, which boot one device per shard.
	Device    *wearos.OS
	Campaigns []CampaignOutcome
	// Combined merges the per-campaign reports (Figs. 2-4, Table IV).
	Combined *analysis.Report
	Sent     int
	// Triage holds deduplicated crash buckets (farm runs only; nil for the
	// serial path).
	Triage *triage.Result
	// Sharding describes how a farm run executed; nil for serial runs.
	Sharding *ShardingInfo
}

// ShardingInfo records how a farm-backed study was executed.
type ShardingInfo struct {
	Workers    int
	Shards     int
	Resumed    int
	Checkpoint string
}

// Reboots returns how many device reboots occurred across the study.
func (sr *StudyResult) Reboots() int {
	n := 0
	for _, c := range sr.Campaigns {
		n += len(c.Report.RebootTimes)
	}
	return n
}

// CampaignOutcomeFor returns the outcome for campaign c, or nil.
func (sr *StudyResult) CampaignOutcomeFor(c core.Campaign) *CampaignOutcome {
	for i := range sr.Campaigns {
		if sr.Campaigns[i].Campaign == c {
			return &sr.Campaigns[i]
		}
	}
	return nil
}

// switchSink forwards log entries to a swappable target, so each campaign
// gets its own streaming collector without re-subscribing.
type switchSink struct {
	target logcat.Sink
}

func (s *switchSink) Consume(e logcat.Entry) {
	if s.target != nil {
		s.target.Consume(e)
	}
}

// RunWearStudy executes the QGJ-Master study on the simulated watch: all
// four campaigns against the Table II fleet. With sharding enabled the
// study runs on the farm engine instead of a single device.
func RunWearStudy(opts Options) (*StudyResult, error) {
	if opts.Sharding.Enabled() {
		return runFarmStudy(apps.WearFleet, opts)
	}
	fleet := apps.BuildWearFleet(opts.Seed)
	dev := wearos.New(wearos.DefaultWatchConfig())
	return runStudy(fleet, dev, opts)
}

// RunPhoneStudy executes the comparison study on the simulated Android
// phone (Table IV).
func RunPhoneStudy(opts Options) (*StudyResult, error) {
	if opts.Sharding.Enabled() {
		return runFarmStudy(apps.PhoneFleet, opts)
	}
	fleet := apps.BuildPhoneFleet(opts.Seed)
	dev := wearos.New(wearos.DefaultPhoneConfig())
	return runStudy(fleet, dev, opts)
}

func runStudy(fleet *apps.Fleet, dev *wearos.OS, opts Options) (*StudyResult, error) {
	if err := fleet.InstallInto(dev); err != nil {
		return nil, fmt.Errorf("install fleet: %w", err)
	}
	targets := fleet.Packages
	if len(opts.Packages) > 0 {
		allow := make(map[string]bool, len(opts.Packages))
		for _, p := range opts.Packages {
			allow[p] = true
		}
		var filtered []*manifest.Package
		for _, p := range targets {
			if allow[p.Name] {
				filtered = append(filtered, p)
			}
		}
		targets = filtered
	}

	sink := &switchSink{}
	dev.Logcat().Subscribe(sink)

	gen := opts.Gen
	gen.Seed = opts.Seed
	inj := &core.Injector{Dev: dev, Cfg: gen}

	campaigns := opts.Campaigns
	if len(campaigns) == 0 {
		campaigns = core.AllCampaigns
	}
	result := &StudyResult{Fleet: fleet, Device: dev, Combined: analysis.AnalyzeEntries(nil)}
	for _, campaign := range campaigns {
		col := analysis.NewCollector()
		sink.target = col
		outcome := CampaignOutcome{Campaign: campaign}
		for _, pkg := range targets {
			run := inj.FuzzApp(campaign, pkg)
			outcome.Sent += run.Sent
			outcome.Summaries = append(outcome.Summaries, core.Summarize(run, dev.BootCount()))
			if opts.Progress != nil {
				opts.Progress(campaign, pkg.Name, result.Sent+outcome.Sent)
			}
		}
		sink.target = nil
		outcome.Report = col.Report()
		result.Campaigns = append(result.Campaigns, outcome)
		result.Combined.Merge(outcome.Report)
		result.Sent += outcome.Sent
	}
	return result, nil
}

// QuickGen returns a scaled-down generator configuration for tests and
// fast demo runs: roughly 1/k^2 of campaign A's volume.
func QuickGen(k int) core.GeneratorConfig {
	if k < 1 {
		k = 1
	}
	return core.GeneratorConfig{
		ActionStride:   k,
		SchemeStride:   (k + 1) / 2,
		RandomVariants: 1,
		ExtrasVariants: 1,
	}
}
