package experiments

import (
	"repro/internal/apps"
	"repro/internal/uifuzz"
	"repro/internal/wearos"
)

// UIOptions configures the QGJ-UI experiment (Table V).
type UIOptions struct {
	Seed uint64
	// Events per mode; 0 = the paper's 41,405.
	Events int
}

// UIStudyResult is the outcome of both mutation modes.
type UIStudyResult struct {
	SemiValid uifuzz.Outcome
	Random    uifuzz.Outcome
}

// RunUIStudy executes the QGJ-UI experiment on a fresh Android Watch
// emulator carrying the built-in apps plus the top-20 third-party apps,
// once per mutation mode (Section III-E).
func RunUIStudy(opts UIOptions) (*UIStudyResult, error) {
	res := &UIStudyResult{}
	for _, mode := range []uifuzz.Mode{uifuzz.SemiValid, uifuzz.Random} {
		// A fresh emulator per mode keeps runs independent and repeatable,
		// the paper's stated reason for using the emulator at all.
		fleet := apps.BuildEmulatorFleet(opts.Seed)
		dev := wearos.New(wearos.DefaultEmulatorConfig())
		if err := fleet.InstallInto(dev); err != nil {
			return nil, err
		}
		f := uifuzz.New(dev)
		out := f.Run(mode, uifuzz.Config{Seed: opts.Seed, Events: opts.Events})
		switch mode {
		case uifuzz.SemiValid:
			res.SemiValid = out
		case uifuzz.Random:
			res.Random = out
		}
	}
	return res, nil
}

// TableVRow is one row of Table V.
type TableVRow struct {
	Experiment     string
	InjectedEvents int
	Exceptions     int
	ExceptionRate  float64
	Crashes        int
	CrashRate      float64
}

// TableV renders the study as Table V's rows.
func TableV(res *UIStudyResult) []TableVRow {
	row := func(o uifuzz.Outcome) TableVRow {
		return TableVRow{
			Experiment:     o.Mode.String(),
			InjectedEvents: o.Injected,
			Exceptions:     o.ExceptionsRaised,
			ExceptionRate:  o.ExceptionRate(),
			Crashes:        o.Crashes,
			CrashRate:      o.CrashRate(),
		}
	}
	return []TableVRow{row(res.SemiValid), row(res.Random)}
}
