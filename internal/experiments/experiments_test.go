package experiments

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/javalang"
	"repro/internal/manifest"
)

// fullWear runs the complete wear study once per test binary (it takes a
// few seconds) and shares the result.
var fullWearResult *StudyResult

func fullWear(t *testing.T) *StudyResult {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale wear study skipped in -short mode")
	}
	if fullWearResult == nil {
		sr, err := RunWearStudy(Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		fullWearResult = sr
	}
	return fullWearResult
}

var fullPhoneResult *StudyResult

func fullPhone(t *testing.T) *StudyResult {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale phone study skipped in -short mode")
	}
	if fullPhoneResult == nil {
		sr, err := RunPhoneStudy(Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		fullPhoneResult = sr
	}
	return fullPhoneResult
}

func TestQuickStudySubsetRuns(t *testing.T) {
	sr, err := RunWearStudy(Options{
		Seed:     2,
		Gen:      QuickGen(8),
		Packages: []string{"com.google.android.apps.fitness", "com.strava.wear"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Campaigns) != 4 {
		t.Fatalf("campaigns = %d", len(sr.Campaigns))
	}
	if sr.Sent == 0 {
		t.Fatal("nothing sent")
	}
	// Only the two requested packages appear in reports.
	for cn := range sr.Combined.Components {
		if cn.Package != "com.google.android.apps.fitness" && cn.Package != "com.strava.wear" {
			t.Fatalf("unexpected package fuzzed: %s", cn.Package)
		}
	}
}

func TestTableIVolumesMatchPaper(t *testing.T) {
	// Table I: A ≈ 1M, B ≈ 100K, C ≈ 300K, D ≈ 250K over 912 components.
	rows := TableI(core.GeneratorConfig{}, 912)
	want := map[core.Campaign]int{
		core.CampaignA: 1_000_000,
		core.CampaignB: 100_000,
		core.CampaignC: 300_000,
		core.CampaignD: 250_000,
	}
	for _, r := range rows {
		w := want[r.Campaign]
		lo, hi := int(float64(w)*0.7), int(float64(w)*1.4)
		if r.ProjectedTotal < lo || r.ProjectedTotal > hi {
			t.Errorf("campaign %s projected %d, paper ~%d", r.Campaign.Letter(), r.ProjectedTotal, w)
		}
	}
}

func TestTableIIMatchesPaperExactly(t *testing.T) {
	sr, err := RunWearStudy(Options{Seed: 1, Gen: QuickGen(30), Packages: []string{"com.strava.wear"}})
	if err != nil {
		t.Fatal(err)
	}
	rows := TableII(sr.Fleet)
	want := []TableIIRow{
		{manifest.HealthFitness, manifest.BuiltIn, 2, 81, 34},
		{manifest.HealthFitness, manifest.ThirdParty, 11, 80, 59},
		{manifest.NotHealthFitness, manifest.BuiltIn, 9, 168, 188},
		{manifest.NotHealthFitness, manifest.ThirdParty, 24, 185, 117},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

// --- Full-scale reproduction bands -----------------------------------------

func TestFullWearVolumeNearPaper(t *testing.T) {
	sr := fullWear(t)
	// "over a million and half intents were sent to over 900 components".
	if sr.Sent < 1_400_000 || sr.Sent > 2_100_000 {
		t.Fatalf("total intents = %d, want ~1.5M+", sr.Sent)
	}
	if comps := len(sr.Combined.Components); comps < 900 {
		t.Fatalf("components touched = %d, want >900", comps)
	}
}

func TestFullWearRebootsMatchPaper(t *testing.T) {
	sr := fullWear(t)
	// "During the fuzzing campaigns, the system restarted twice."
	if got := sr.Reboots(); got != 2 {
		t.Fatalf("reboots = %d, paper reports 2", got)
	}
	// Fig. 3a: reboot affects 4 of the components.
	rc := RebootComponents(sr)
	if len(rc) < 3 || len(rc) > 5 {
		t.Fatalf("reboot components = %d (%v), paper reports 4", len(rc), rc)
	}
	// One reboot is the SensorManager health app (campaign A), the other a
	// built-in app (campaign D) — Table III's reboot cells.
	rows := TableIII(sr)
	if rows[0].Health.Reboot == 0 {
		t.Error("campaign A health reboot cell is zero; paper reports 8%")
	}
	if rows[3].NotHealth.Reboot == 0 {
		t.Error("campaign D not-health reboot cell is zero; paper reports 3%")
	}
	// The escalation chains must be visible in the logs.
	sawAbort, sawSegv := false, false
	for _, c := range sr.Campaigns {
		for _, d := range c.Report.CoreServiceDeaths {
			switch d {
			case "sensorservice " + javalang.SIGABRT:
				sawAbort = true
			case "system_server " + javalang.SIGSEGV:
				sawSegv = true
			}
		}
	}
	if !sawAbort || !sawSegv {
		t.Fatalf("escalation chains missing: SIGABRT=%v SIGSEGV=%v", sawAbort, sawSegv)
	}
}

func TestFullWearFig3aShape(t *testing.T) {
	sr := fullWear(t)
	mc := Fig3a(sr)
	total := 0
	for _, n := range mc {
		total += n
	}
	noEffect := float64(mc[analysis.ManifestNoEffect]) / float64(total)
	// "almost 90% of the components are not affected at all".
	if noEffect < 0.85 || noEffect > 0.96 {
		t.Errorf("no-effect share = %.3f, paper ~0.90", noEffect)
	}
	// "crash ... is more than 8X the next error class, unresponsive".
	if mc[analysis.ManifestCrash] < 8*mc[analysis.ManifestUnresponsive] {
		t.Errorf("crash %d not >8x unresponsive %d",
			mc[analysis.ManifestCrash], mc[analysis.ManifestUnresponsive])
	}
	if mc[analysis.ManifestUnresponsive] == 0 {
		t.Error("no unresponsive components at all")
	}
}

func TestFullWearSecurityShare(t *testing.T) {
	sr := fullWear(t)
	// SecurityException represents 81.3% of all exceptions.
	share := sr.Combined.SecurityShare()
	if share < 0.75 || share > 0.88 {
		t.Fatalf("security share = %.3f, paper 0.813", share)
	}
}

func TestFullWearFig2Ordering(t *testing.T) {
	sr := fullWear(t)
	dist := sr.Combined.UncaughtClassDistribution(false)
	if len(dist) < 5 {
		t.Fatalf("too few exception classes: %v", dist)
	}
	// "After SecurityException, the second largest share belongs to
	// IllegalArgumentException."
	if dist[0].Class != javalang.ClassIllegalArgument {
		t.Errorf("largest non-security class = %s, paper says IllegalArgumentException", dist[0].Class)
	}
	// Both IllegalState and NullPointer must rank highly on wear.
	top4 := map[javalang.Class]bool{}
	for _, cc := range dist[:4] {
		top4[cc.Class] = true
	}
	if !top4[javalang.ClassNullPointer] || !top4[javalang.ClassIllegalState] {
		t.Errorf("top-4 classes = %v, want NPE and ISE present", dist[:4])
	}
}

func TestFullWearFig3bCrashBlame(t *testing.T) {
	sr := fullWear(t)
	blame := Fig3b(sr)
	crash := blame[analysis.ManifestCrash]
	if len(crash) == 0 {
		t.Fatal("no crash blame distribution")
	}
	shares := map[javalang.Class]float64{}
	for _, b := range crash {
		shares[b.Class] = b.Share
	}
	// NPE still dominates crashes but at a reduced share (paper: less than
	// the 46% of prior studies, with IAE/ISE increased).
	if shares[javalang.ClassNullPointer] < 0.15 || shares[javalang.ClassNullPointer] > 0.46 {
		t.Errorf("NPE crash share = %.3f, want dominant but <0.46", shares[javalang.ClassNullPointer])
	}
	if shares[javalang.ClassIllegalArgument] < 0.10 {
		t.Errorf("IAE crash share = %.3f, want elevated", shares[javalang.ClassIllegalArgument])
	}
	if shares[javalang.ClassIllegalState] < 0.10 {
		t.Errorf("ISE crash share = %.3f, want elevated", shares[javalang.ClassIllegalState])
	}
	// The ArithmeticException scenario (GridViewPager divide-by-zero) must
	// be visible among crash causes.
	found := false
	for _, b := range crash {
		if b.Class == javalang.ClassArithmetic {
			found = true
		}
	}
	if !found {
		t.Error("ArithmeticException missing from crash blame (GridViewPager scenario)")
	}
	// Unresponsive column: IllegalStateException dominates, DeadObject
	// present (Section IV-A).
	unresp := blame[analysis.ManifestUnresponsive]
	if len(unresp) == 0 {
		t.Fatal("no unresponsive blame distribution")
	}
	if unresp[0].Class != javalang.ClassIllegalState {
		t.Errorf("unresponsive dominated by %s, paper says IllegalStateException", unresp[0].Class)
	}
	sawDead := false
	for _, b := range unresp {
		if b.Class == javalang.ClassDeadObject {
			sawDead = true
		}
	}
	if !sawDead {
		t.Error("DeadObjectException missing from unresponsive blame")
	}
}

func TestFullWearFig4Rates(t *testing.T) {
	sr := fullWear(t)
	f4 := Fig4(sr)
	bi := f4.CrashAppRate[manifest.BuiltIn]
	tp := f4.CrashAppRate[manifest.ThirdParty]
	// Paper: built-in 64%, third-party 46%.
	if bi < 0.5 || bi > 0.78 {
		t.Errorf("built-in crash app rate = %.2f, paper 0.64", bi)
	}
	if tp < 0.33 || tp > 0.58 {
		t.Errorf("third-party crash app rate = %.2f, paper 0.46", tp)
	}
	if bi <= tp {
		t.Errorf("built-in (%.2f) must crash at a higher rate than third-party (%.2f)", bi, tp)
	}
}

func TestFullWearTableIIIShape(t *testing.T) {
	sr := fullWear(t)
	rows := TableIII(sr)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// "Both categories have no effect due to the injection at roughly
		// the same rate, 69.2% for health apps versus 74.5% for others."
		if r.Health.NoEffect < 0.45 || r.Health.NoEffect > 0.90 {
			t.Errorf("campaign %s health no-effect = %.2f", r.Campaign.Letter(), r.Health.NoEffect)
		}
		if r.NotHealth.NoEffect < 0.55 || r.NotHealth.NoEffect > 0.90 {
			t.Errorf("campaign %s not-health no-effect = %.2f", r.Campaign.Letter(), r.NotHealth.NoEffect)
		}
		// Crash is the dominant error manifestation in every campaign/category.
		if r.Health.Crash < r.Health.Hang || r.NotHealth.Crash < r.NotHealth.Hang {
			t.Errorf("campaign %s: hang exceeds crash", r.Campaign.Letter())
		}
	}
	// No clear robustness difference between health and other apps: average
	// no-effect rates within 15 points.
	var h, nh float64
	for _, r := range rows {
		h += r.Health.NoEffect
		nh += r.NotHealth.NoEffect
	}
	h, nh = h/4, nh/4
	if diff := h - nh; diff > 0.15 || diff < -0.15 {
		t.Errorf("health vs not-health no-effect gap = %.2f, paper finds no significant difference", diff)
	}
}

func TestFullPhoneTableIV(t *testing.T) {
	sr := fullPhone(t)
	rows, others, total := TableIV(sr)
	// Paper: 175 crashes.
	if total < 120 || total > 240 {
		t.Fatalf("phone crashes = %d, paper 175", total)
	}
	shares := map[javalang.Class]float64{}
	for _, r := range rows {
		shares[r.Class] = r.Share
	}
	// NPE first (30.9%), ClassNotFound second (26.3%) — the phone-specific
	// signature the paper contrasts with wear.
	if shares[javalang.ClassNullPointer] < 0.22 || shares[javalang.ClassNullPointer] > 0.45 {
		t.Errorf("phone NPE share = %.3f, paper 0.309", shares[javalang.ClassNullPointer])
	}
	if shares[javalang.ClassClassNotFound] < 0.18 || shares[javalang.ClassClassNotFound] > 0.36 {
		t.Errorf("phone CNFE share = %.3f, paper 0.263", shares[javalang.ClassClassNotFound])
	}
	if shares[javalang.ClassIllegalArgument] < 0.10 || shares[javalang.ClassIllegalArgument] > 0.28 {
		t.Errorf("phone IAE share = %.3f, paper 0.177", shares[javalang.ClassIllegalArgument])
	}
	if shares[javalang.ClassNullPointer] <= shares[javalang.ClassClassNotFound] {
		t.Error("NPE must outrank CNFE on the phone")
	}
	// The phone sees far more ClassNotFound than the wearable.
	wear := fullWear(t)
	wearDist := wear.Combined.UncaughtClassDistribution(false)
	var wearCNFE, wearTotal int
	for _, cc := range wearDist {
		wearTotal += cc.Count
		if cc.Class == javalang.ClassClassNotFound {
			wearCNFE = cc.Count
		}
	}
	wearShare := float64(wearCNFE) / float64(wearTotal)
	if wearShare >= shares[javalang.ClassClassNotFound] {
		t.Errorf("CNFE: wear share %.3f >= phone share %.3f; paper says phone-dominant",
			wearShare, shares[javalang.ClassClassNotFound])
	}
	// The phone study observed no reboots.
	if sr.Reboots() != 0 {
		t.Errorf("phone rebooted %d times", sr.Reboots())
	}
	_ = others
}

func TestFullUIStudyTableV(t *testing.T) {
	if testing.Short() {
		t.Skip("full UI study skipped in -short mode")
	}
	res, err := RunUIStudy(UIOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := TableV(res)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sv, rd := rows[0], rows[1]
	if sv.InjectedEvents != 41405 || rd.InjectedEvents != 41405 {
		t.Fatalf("injected = %d / %d, paper 41405 each", sv.InjectedEvents, rd.InjectedEvents)
	}
	// Semi-valid: 1496 (3.6%) exceptions, 22 (0.05%) crashes.
	if sv.ExceptionRate < 0.025 || sv.ExceptionRate > 0.05 {
		t.Errorf("semi-valid exception rate = %.4f, paper 0.036", sv.ExceptionRate)
	}
	if sv.Crashes < 10 || sv.Crashes > 40 {
		t.Errorf("semi-valid crashes = %d, paper 22", sv.Crashes)
	}
	// Random: 615 (1.5%) exceptions, 0 crashes.
	if rd.ExceptionRate < 0.008 || rd.ExceptionRate > 0.025 {
		t.Errorf("random exception rate = %.4f, paper 0.015", rd.ExceptionRate)
	}
	if rd.Crashes != 0 {
		t.Errorf("random crashes = %d, paper 0", rd.Crashes)
	}
	// No system crashes during UI injections.
	if res.SemiValid.SystemCrashes != 0 || res.Random.SystemCrashes != 0 {
		t.Error("UI fuzzing crashed the system; paper observed none")
	}
}

func TestStudyDeterminism(t *testing.T) {
	opts := Options{Seed: 9, Gen: QuickGen(10), Packages: []string{"com.whatsapp.wear"}}
	a, err := RunWearStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWearStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sent != b.Sent {
		t.Fatalf("sent differs: %d vs %d", a.Sent, b.Sent)
	}
	am, bm := a.Combined.ManifestationCounts(), b.Combined.ManifestationCounts()
	for _, m := range analysis.AllManifestations {
		if am[m] != bm[m] {
			t.Fatalf("manifestation %v differs: %d vs %d", m, am[m], bm[m])
		}
	}
}

func TestCampaignOutcomeForLookup(t *testing.T) {
	sr, err := RunWearStudy(Options{Seed: 1, Gen: QuickGen(30), Packages: []string{"com.strava.wear"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.CampaignOutcomeFor(core.CampaignC); got == nil || got.Campaign != core.CampaignC {
		t.Fatalf("lookup = %v", got)
	}
}
