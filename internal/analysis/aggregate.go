package analysis

import (
	"sort"

	"repro/internal/intent"
	"repro/internal/javalang"
)

// ManifestationCounts tallies components by their most severe
// manifestation (Fig. 3a).
func (r *Report) ManifestationCounts() map[Manifestation]int {
	out := make(map[Manifestation]int, 4)
	for _, cr := range r.Components {
		out[cr.Manifestation()]++
	}
	return out
}

// ClassCount is one bar of an exception-distribution figure.
type ClassCount struct {
	Class javalang.Class
	Count int
}

// sortClassCounts orders by descending count, class name as tiebreak.
func sortClassCounts(m map[javalang.Class]int) []ClassCount {
	out := make([]ClassCount, 0, len(m))
	for c, n := range m {
		out = append(out, ClassCount{Class: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// UncaughtClassDistribution counts uncaught exception classes, once per
// component per class (Fig. 2's method: "each exception is counted once
// per component, even if it was raised several times").
func (r *Report) UncaughtClassDistribution(includeSecurity bool) []ClassCount {
	m := make(map[javalang.Class]int)
	for _, cr := range r.Components {
		for _, c := range cr.UncaughtClasses(includeSecurity) {
			m[c]++
		}
	}
	return sortClassCounts(m)
}

// UncaughtByComponentType splits the Fig. 2 distribution by component type
// ("grouped by component type").
func (r *Report) UncaughtByComponentType(includeSecurity bool) map[string][]ClassCount {
	byType := map[string]map[javalang.Class]int{}
	for _, cr := range r.Components {
		t := cr.Type
		if t == "" {
			t = "unknown"
		}
		m, ok := byType[t]
		if !ok {
			m = make(map[javalang.Class]int)
			byType[t] = m
		}
		for _, c := range cr.UncaughtClasses(includeSecurity) {
			m[c]++
		}
	}
	out := make(map[string][]ClassCount, len(byType))
	for t, m := range byType {
		out[t] = sortClassCounts(m)
	}
	return out
}

// SecurityShare returns the fraction of all (component, class) uncaught
// exception pairs that are SecurityException — the paper reports 81.3%.
func (r *Report) SecurityShare() float64 {
	security, total := 0, 0
	for _, cr := range r.Components {
		classes := cr.UncaughtClasses(true)
		total += len(classes)
		for _, c := range classes {
			if c == javalang.ClassSecurity {
				security++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(security) / float64(total)
}

// BlameShare is a fractional blame assignment for Fig. 3b: when several
// exception classes are tied in an escalation ("a tight-knit pattern among
// the exceptions is deduced and one cannot be inferred to causally precede
// the others ... we assign the blame for that error manifestation equally
// among the exception classes", Section IV-A).
type BlameShare struct {
	Class javalang.Class
	Share float64
}

// ManifestationBlame computes Fig. 3b: for each manifestation, the
// distribution of blamed exception classes over components with that
// manifestation. For the no-effect bucket the pseudo-class "(none)" counts
// components without any exception.
func (r *Report) ManifestationBlame() map[Manifestation][]BlameShare {
	acc := map[Manifestation]map[javalang.Class]float64{}
	add := func(m Manifestation, cls javalang.Class, w float64) {
		mm, ok := acc[m]
		if !ok {
			mm = make(map[javalang.Class]float64)
			acc[m] = mm
		}
		mm[cls] += w
	}
	for _, cr := range r.Components {
		switch m := cr.Manifestation(); m {
		case ManifestCrash:
			// Blame the temporal root cause(s); equal split among distinct
			// roots seen for the component.
			blameEqually(cr.CrashRoots, func(c javalang.Class, w float64) { add(m, c, w) })
		case ManifestUnresponsive:
			if len(cr.ANRClasses) == 0 {
				add(m, NoExceptionClass, 1)
			} else {
				blameEqually(cr.ANRClasses, func(c javalang.Class, w float64) { add(m, c, w) })
			}
		case ManifestReboot:
			// Equal split among the classes the component contributed to
			// the escalation; a hang-only component with no trace blames
			// the pseudo-class.
			classes := make(map[javalang.Class]int)
			for c := range cr.CrashRoots {
				classes[c]++
			}
			for c := range cr.ANRClasses {
				classes[c]++
			}
			if len(classes) == 0 {
				add(m, NoExceptionClass, 1)
			} else {
				blameEqually(classes, func(c javalang.Class, w float64) { add(m, c, w) })
			}
		case ManifestNoEffect:
			if len(cr.Caught) == 0 && len(cr.Rejected) == 0 {
				add(m, NoExceptionClass, 1)
			} else {
				merged := make(map[javalang.Class]int)
				for c := range cr.Caught {
					merged[c]++
				}
				for c := range cr.Rejected {
					merged[c]++
				}
				blameEqually(merged, func(c javalang.Class, w float64) { add(m, c, w) })
			}
		}
	}
	out := make(map[Manifestation][]BlameShare, len(acc))
	for m, mm := range acc {
		shares := make([]BlameShare, 0, len(mm))
		var total float64
		for _, w := range mm {
			total += w
		}
		for c, w := range mm {
			shares = append(shares, BlameShare{Class: c, Share: w / total})
		}
		sort.Slice(shares, func(i, j int) bool {
			if shares[i].Share != shares[j].Share {
				return shares[i].Share > shares[j].Share
			}
			return shares[i].Class < shares[j].Class
		})
		out[m] = shares
	}
	return out
}

// NoExceptionClass is the pseudo-class used in Fig. 3b's no-effect column
// for components that never raised anything.
const NoExceptionClass javalang.Class = "(no exception)"

func blameEqually(m map[javalang.Class]int, add func(javalang.Class, float64)) {
	if len(m) == 0 {
		return
	}
	w := 1.0 / float64(len(m))
	for c := range m {
		add(c, w)
	}
}

// CrashClassTotals counts crash events by root-cause class (Table IV's
// #Crashes column: every (component, class) crash pair).
func (r *Report) CrashClassTotals() []ClassCount {
	m := make(map[javalang.Class]int)
	for _, cr := range r.Components {
		for c := range cr.CrashRoots {
			m[c]++
		}
	}
	return sortClassCounts(m)
}

// AppManifestations folds components into applications (by package) and
// returns each app's most severe manifestation — Table III's unit of
// reporting ("we classify the effect of the injection on an entire
// application ... we use the most severe manifestation").
func (r *Report) AppManifestations() map[string]Manifestation {
	out := make(map[string]Manifestation)
	for cn, cr := range r.Components {
		m := cr.Manifestation()
		if cur, ok := out[cn.Package]; !ok || m > cur {
			out[cn.Package] = m
		}
	}
	return out
}

// AppsWithCrash lists packages whose most severe manifestation is at least
// a crash (Fig. 4's unit: apps that reported crashes).
func (r *Report) AppsWithCrash() []string {
	var out []string
	for pkg, m := range r.AppManifestations() {
		if m >= ManifestCrash {
			out = append(out, pkg)
		}
	}
	sort.Strings(out)
	return out
}

// CrashRootsByPackage merges crash root-cause classes per package (Fig. 4
// groups crash exceptions by app classification).
func (r *Report) CrashRootsByPackage() map[string]map[javalang.Class]int {
	out := make(map[string]map[javalang.Class]int)
	for cn, cr := range r.Components {
		if len(cr.CrashRoots) == 0 {
			continue
		}
		m, ok := out[cn.Package]
		if !ok {
			m = make(map[javalang.Class]int)
			out[cn.Package] = m
		}
		for c, n := range cr.CrashRoots {
			m[c] += n
		}
	}
	return out
}

// Merge folds other into r (used to combine per-campaign reports into the
// study-wide figures). Component reports are merged field-wise.
func (r *Report) Merge(other *Report) {
	for cn, ocr := range other.Components {
		cr := r.component(cn)
		if cr.Type == "" {
			cr.Type = ocr.Type
		}
		cr.Deliveries += ocr.Deliveries
		cr.Security += ocr.Security
		cr.ANRs += ocr.ANRs
		cr.RebootInvolved = cr.RebootInvolved || ocr.RebootInvolved
		for c, n := range ocr.Rejected {
			cr.Rejected[c] += n
		}
		for c, n := range ocr.Caught {
			cr.Caught[c] += n
		}
		for c, n := range ocr.CrashRoots {
			cr.CrashRoots[c] += n
		}
		for c, n := range ocr.ANRClasses {
			cr.ANRClasses[c] += n
		}
	}
	r.RebootTimes = append(r.RebootTimes, other.RebootTimes...)
	r.CoreServiceDeaths = append(r.CoreServiceDeaths, other.CoreServiceDeaths...)
	r.CrashEvents += other.CrashEvents
	r.ANREvents += other.ANREvents
	r.SecurityEvents += other.SecurityEvents
	r.Entries += other.Entries
}

// ComponentNames returns the components in deterministic order.
func (r *Report) ComponentNames() []intent.ComponentName {
	out := make([]intent.ComponentName, 0, len(r.Components))
	for cn := range r.Components {
		out = append(out, cn)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Package != out[j].Package {
			return out[i].Package < out[j].Package
		}
		return out[i].Class < out[j].Class
	})
	return out
}
