// Package analysis reconstructs the paper's measurements from device logs.
//
// The study's ground truth is logcat: "we collected all of the log files
// (over 2GB) from the wearable using logcat ... Then, we analyzed the logs
// to gather information, and for each component classified the behavior of
// the application according to the expected scenarios" (Section III-D).
// This package implements that pipeline: a streaming Collector consumes log
// entries (either live, as a logcat sink, or from a pulled dump), tracks
// which component each process was last delivered, reassembles FATAL
// EXCEPTION blocks, associates ANR traces, performs the temporal-chain
// root-cause analysis of Section IV-A, and aggregates per-component
// reports. It never sees fuzzer or behaviour-model internals.
package analysis

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/telemetry"
)

// Manifestation is the paper's four-level severity scale (Section III-C),
// ordered so that larger values are more severe.
type Manifestation int

const (
	// ManifestNoEffect: no failure visible (possibly a handled or rejected
	// exception).
	ManifestNoEffect Manifestation = iota + 1
	// ManifestUnresponsive: ANR (hang).
	ManifestUnresponsive
	// ManifestCrash: FATAL EXCEPTION killed the process.
	ManifestCrash
	// ManifestReboot: the component participated in an escalation that
	// rebooted the device.
	ManifestReboot
)

// String names the manifestation the way the paper's figures do.
func (m Manifestation) String() string {
	switch m {
	case ManifestNoEffect:
		return "No Effect"
	case ManifestUnresponsive:
		return "Unresponsive"
	case ManifestCrash:
		return "Crash"
	case ManifestReboot:
		return "Reboot"
	default:
		return "unknown"
	}
}

// AllManifestations lists the scale from least to most severe.
var AllManifestations = []Manifestation{
	ManifestNoEffect, ManifestUnresponsive, ManifestCrash, ManifestReboot,
}

// ComponentReport accumulates everything observed about one component.
type ComponentReport struct {
	Component  intent.ComponentName
	Type       string // "activity" or "service", from delivery logs
	Deliveries int
	// Security counts SecurityException rejections by the OS.
	Security int
	// Rejected counts validation exceptions thrown back to the sender.
	Rejected map[javalang.Class]int
	// Caught counts exceptions the app handled itself.
	Caught map[javalang.Class]int
	// CrashRoots counts root-cause classes of FATAL EXCEPTION blocks
	// (temporal-chain analysis: the first-raised exception in the chain is
	// blamed).
	CrashRoots map[javalang.Class]int
	// ANRs counts hang events; ANRClasses the exception classes visible in
	// the traces that accompanied them.
	ANRs       int
	ANRClasses map[javalang.Class]int
	// RebootInvolved marks the component as part of a reboot escalation
	// window.
	RebootInvolved bool
}

func newComponentReport(cn intent.ComponentName) *ComponentReport {
	return &ComponentReport{
		Component:  cn,
		Rejected:   make(map[javalang.Class]int),
		Caught:     make(map[javalang.Class]int),
		CrashRoots: make(map[javalang.Class]int),
		ANRClasses: make(map[javalang.Class]int),
	}
}

// Manifestation returns the most severe behaviour the component exhibited
// ("If a component has different manifestations to multiple injected
// intents, we take the most severe manifestation", Section IV-A).
func (cr *ComponentReport) Manifestation() Manifestation {
	switch {
	case cr.RebootInvolved:
		return ManifestReboot
	case len(cr.CrashRoots) > 0:
		return ManifestCrash
	case cr.ANRs > 0:
		return ManifestUnresponsive
	default:
		return ManifestNoEffect
	}
}

// UncaughtClasses returns the set of exception classes that escaped the app
// for this component: security rejections, validation rejections, crash
// root causes, and ANR-associated exceptions. Caught exceptions are
// excluded — the app handled those.
func (cr *ComponentReport) UncaughtClasses(includeSecurity bool) []javalang.Class {
	set := make(map[javalang.Class]bool)
	if includeSecurity && cr.Security > 0 {
		set[javalang.ClassSecurity] = true
	}
	for c := range cr.Rejected {
		set[c] = true
	}
	for c := range cr.CrashRoots {
		set[c] = true
	}
	for c := range cr.ANRClasses {
		set[c] = true
	}
	out := make([]javalang.Class, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

// Report is the aggregate outcome of one analysis pass.
type Report struct {
	Components map[intent.ComponentName]*ComponentReport
	// RebootTimes records each device reboot seen in the log.
	RebootTimes []time.Time
	// CoreServiceDeaths lists native core-service deaths ("sensorservice
	// SIGABRT", "system_server SIGSEGV").
	CoreServiceDeaths []string
	// CrashEvents counts FATAL EXCEPTION blocks (events, not components).
	CrashEvents int
	// ANREvents counts ANR events.
	ANREvents int
	// SecurityEvents counts SecurityException rejections (events).
	SecurityEvents int
	// Entries counts consumed log lines.
	Entries int
}

func newReport() *Report {
	return &Report{Components: make(map[intent.ComponentName]*ComponentReport)}
}

func (r *Report) component(cn intent.ComponentName) *ComponentReport {
	cr, ok := r.Components[cn]
	if !ok {
		cr = newComponentReport(cn)
		r.Components[cn] = cr
	}
	return cr
}

// rebootWindow is how far back the analyzer looks for the failures that
// escalated into a reboot. The paper's post-mortems are manual; ten
// minutes of virtual time covers both escalation chains (the three sensor
// ANRs are separated by full component sweeps).
const rebootWindow = 10 * time.Minute

// blameWindow is how recent an escalation marker (Watchdog SIGABRT notice,
// AmbientService bind failure) must be to anchor reboot attribution.
const blameWindow = 2 * time.Minute

// anrTraceWindow is how close (in log time) an exception trace must follow
// an ANR entry to be associated with it.
const anrTraceWindow = 2 * time.Second

// recentFailure is a queue entry for reboot attribution.
type recentFailure struct {
	at   time.Time
	comp intent.ComponentName
}

// crashBlock reassembles one in-flight FATAL EXCEPTION block.
type crashBlock struct {
	headers []javalang.Class
}

// Collector is a streaming analyzer; it implements logcat.Sink so it can be
// subscribed directly to a device buffer, and can equally consume pulled
// dumps via ConsumeAll/AnalyzeEntries.
type Collector struct {
	report *Report

	pidComp    map[int]intent.ComponentName
	pidProc    map[int]string
	crashParse map[int]*crashBlock
	recent     []recentFailure
	lastANR    map[string]anrMark // by process name

	// Escalation markers for reboot attribution (the post-mortem anchors).
	blameProcAt time.Time
	blameProc   string
	blameCompAt time.Time
	blameComp   intent.ComponentName
	hasBlame    bool

	// Telemetry (nil = no-op). The counters mirror the Report event tallies;
	// the manifest gauges track every component's current most-severe
	// manifestation so a concurrent scrape always matches what Report()
	// would say.
	entriesTotal   *telemetry.Counter
	crashTotal     *telemetry.Counter
	anrTotal       *telemetry.Counter
	securityTotal  *telemetry.Counter
	rebootsTotal   *telemetry.Counter
	consumeSeconds *telemetry.Histogram
	manifest       map[Manifestation]*telemetry.Gauge
	levels         map[intent.ComponentName]Manifestation
}

type anrMark struct {
	at   time.Time
	comp intent.ComponentName
}

var _ logcat.Sink = (*Collector)(nil)

// NewCollector returns an empty streaming analyzer.
func NewCollector() *Collector {
	return &Collector{
		report:     newReport(),
		pidComp:    make(map[int]intent.ComponentName),
		pidProc:    make(map[int]string),
		crashParse: make(map[int]*crashBlock),
		lastANR:    make(map[string]anrMark),
	}
}

// UseTelemetry wires the collector's classification metrics into reg and
// returns c for chaining. The analysis_components{manifestation=...} gauges
// are maintained incrementally on every severity change, so they agree with
// Report() at any instant without locking the report.
func (c *Collector) UseTelemetry(reg *telemetry.Registry) *Collector {
	if reg == nil {
		return c
	}
	c.entriesTotal = reg.Counter("analysis_entries_total")
	c.crashTotal = reg.Counter("analysis_crash_events_total")
	c.anrTotal = reg.Counter("analysis_anr_events_total")
	c.securityTotal = reg.Counter("analysis_security_events_total")
	c.rebootsTotal = reg.Counter("analysis_reboots_total")
	c.consumeSeconds = reg.Histogram("analysis_consume_seconds", telemetry.DefLatencyBuckets)
	c.manifest = make(map[Manifestation]*telemetry.Gauge, len(AllManifestations))
	for _, m := range AllManifestations {
		c.manifest[m] = reg.Gauge("analysis_components", telemetry.L("manifestation", m.String()))
	}
	c.levels = make(map[intent.ComponentName]Manifestation)
	return c
}

// syncManifest re-derives the component's manifestation and moves it between
// the severity gauges when it changed (or registers it on first sight).
func (c *Collector) syncManifest(cn intent.ComponentName) {
	if c.manifest == nil {
		return
	}
	cr, ok := c.report.Components[cn]
	if !ok {
		return
	}
	cur := cr.Manifestation()
	prev, seen := c.levels[cn]
	if seen && prev == cur {
		return
	}
	if seen {
		c.manifest[prev].Add(-1)
	}
	c.manifest[cur].Add(1)
	c.levels[cn] = cur
}

// Report returns the accumulated report. The collector keeps ownership; do
// not consume further entries while reading concurrently.
func (c *Collector) Report() *Report { return c.report }

// ConsumeAll feeds a slice of entries (a pulled logcat dump) in order.
func (c *Collector) ConsumeAll(entries []logcat.Entry) {
	for _, e := range entries {
		c.Consume(e)
	}
}

// AnalyzeEntries is the one-shot convenience over a pulled dump.
func AnalyzeEntries(entries []logcat.Entry) *Report {
	c := NewCollector()
	c.ConsumeAll(entries)
	return c.Report()
}

// Consume implements logcat.Sink: one log entry at a time, in order.
func (c *Collector) Consume(e logcat.Entry) {
	defer telemetry.Time(c.consumeSeconds)()
	c.report.Entries++
	c.entriesTotal.Inc()
	if e.Payload.Op != logcat.MsgEager {
		c.consumeLazy(e)
		return
	}
	switch e.Tag {
	case logcat.TagActivityManager:
		c.consumeAM(e)
	case logcat.TagAndroidRuntime:
		c.consumeRuntime(e)
	case logcat.TagDEBUG:
		c.consumeNative(e)
	case logcat.TagSystemServer:
		c.consumeSystemServer(e)
	case logcat.TagWatchdog:
		c.consumeWatchdog(e)
	default:
		c.consumeApp(e)
	}
}

// consumeLazy classifies structurally logged entries straight from their
// payload operands, skipping both the text rendering and the re-parsing the
// eager path pays. Each case mirrors, exactly, what consumeAM/consumeApp
// would conclude from the rendered line (pinned by the dump-equivalence
// tests); entries the eager path ignores — dispatch announcements — are
// ignored here too.
func (c *Collector) consumeLazy(e logcat.Entry) {
	p := &e.Payload
	switch p.Op {
	case logcat.MsgDelivering:
		cn := p.Comp
		c.pidComp[p.PID] = cn
		cr := c.report.component(cn)
		cr.Type = p.Verb
		cr.Deliveries++
		c.syncManifest(cn)

	case logcat.MsgRejected:
		if class, _, ok := javalang.ParseHeader(p.Err); ok {
			c.report.component(p.Comp).Rejected[class]++
			c.syncManifest(p.Comp)
		}

	case logcat.MsgCaught:
		cn, ok := c.pidComp[e.PID]
		if !ok {
			return
		}
		if class, _, ok := javalang.ParseHeader(p.Err); ok {
			c.report.component(cn).Caught[class]++
			c.syncManifest(cn)
		}
	}
}

func (c *Collector) consumeAM(e logcat.Entry) {
	msg := e.Message
	switch {
	case strings.HasPrefix(msg, "Delivering to "):
		// "Delivering to activity cmp=<flat> pid=<n>"
		rest := strings.TrimPrefix(msg, "Delivering to ")
		kind, rest, ok := strings.Cut(rest, " cmp=")
		if !ok {
			return
		}
		flat, pidStr, ok := strings.Cut(rest, " pid=")
		if !ok {
			return
		}
		cn, ok := intent.UnflattenComponent(flat)
		if !ok {
			return
		}
		pid, err := strconv.Atoi(strings.TrimSpace(pidStr))
		if err != nil {
			return
		}
		c.pidComp[pid] = cn
		cr := c.report.component(cn)
		cr.Type = kind
		cr.Deliveries++
		c.syncManifest(cn)

	case strings.Contains(msg, "java.lang.SecurityException") && strings.Contains(msg, " targeting "):
		flat := msg[strings.LastIndex(msg, " targeting ")+len(" targeting "):]
		cn, ok := intent.UnflattenComponent(strings.TrimSpace(flat))
		if !ok {
			return
		}
		c.report.component(cn).Security++
		c.report.SecurityEvents++
		c.securityTotal.Inc()
		c.syncManifest(cn)

	case strings.HasPrefix(msg, "Exception thrown delivering intent to cmp="):
		rest := strings.TrimPrefix(msg, "Exception thrown delivering intent to cmp=")
		flat, header, ok := strings.Cut(rest, ": ")
		if !ok {
			return
		}
		cn, ok := intent.UnflattenComponent(flat)
		if !ok {
			return
		}
		if class, _, ok := javalang.ParseHeader(header); ok {
			c.report.component(cn).Rejected[class]++
			c.syncManifest(cn)
		}

	case strings.HasPrefix(msg, "ANR in "):
		// "ANR in <proc> (<flat>)"
		rest := strings.TrimPrefix(msg, "ANR in ")
		proc, flatParen, ok := strings.Cut(rest, " (")
		if !ok {
			return
		}
		flat := strings.TrimSuffix(flatParen, ")")
		cn, ok := intent.UnflattenComponent(flat)
		if !ok {
			return
		}
		cr := c.report.component(cn)
		cr.ANRs++
		c.report.ANREvents++
		c.anrTotal.Inc()
		c.syncManifest(cn)
		c.lastANR[proc] = anrMark{at: e.Time, comp: cn}
		c.pushRecent(e.Time, cn)

	case strings.HasPrefix(msg, "Process ") && strings.Contains(msg, "has died"):
		// Finalize a pending crash block: "Process <name> (pid <n>) has died".
		pid := parseDiedPID(msg)
		if pid <= 0 {
			return
		}
		blk, ok := c.crashParse[pid]
		if !ok {
			return
		}
		delete(c.crashParse, pid)
		cn, ok := c.pidComp[pid]
		if !ok || len(blk.headers) == 0 {
			return
		}
		// Temporal-chain root cause: the deepest "Caused by" is the first
		// exception raised, so it takes the blame (Section IV-A).
		root := blk.headers[len(blk.headers)-1]
		cr := c.report.component(cn)
		cr.CrashRoots[root]++
		c.report.CrashEvents++
		c.crashTotal.Inc()
		c.syncManifest(cn)
		c.pushRecent(e.Time, cn)
	}
}

func parseDiedPID(msg string) int {
	i := strings.Index(msg, "(pid ")
	if i < 0 {
		return 0
	}
	rest := msg[i+len("(pid "):]
	j := strings.IndexByte(rest, ')')
	if j < 0 {
		return 0
	}
	pid, err := strconv.Atoi(rest[:j])
	if err != nil {
		return 0
	}
	return pid
}

func (c *Collector) consumeRuntime(e logcat.Entry) {
	msg := e.Message
	if msg == "FATAL EXCEPTION: main" {
		c.crashParse[e.PID] = &crashBlock{}
		return
	}
	blk, ok := c.crashParse[e.PID]
	if !ok {
		return
	}
	if strings.HasPrefix(msg, "Process: ") || strings.HasPrefix(msg, "\tat ") || strings.HasPrefix(msg, "at ") {
		return
	}
	if class, _, ok := javalang.ParseHeader(msg); ok {
		blk.headers = append(blk.headers, class)
	}
}

func (c *Collector) consumeNative(e logcat.Entry) {
	msg := e.Message
	if !strings.HasPrefix(msg, "Fatal signal ") {
		return
	}
	switch {
	case strings.Contains(msg, "sensorservice"):
		sig := signalOf(msg)
		c.report.CoreServiceDeaths = append(c.report.CoreServiceDeaths, "sensorservice "+sig)
	case strings.Contains(msg, "system_server"):
		sig := signalOf(msg)
		c.report.CoreServiceDeaths = append(c.report.CoreServiceDeaths, "system_server "+sig)
	}
}

func signalOf(msg string) string {
	for _, sig := range []string{javalang.SIGABRT, javalang.SIGSEGV} {
		if strings.Contains(msg, sig) {
			return sig
		}
	}
	return "SIG?"
}

func (c *Collector) consumeWatchdog(e logcat.Entry) {
	// "Blocked in handler on sensor thread (client <proc> unresponsive);
	// sending SIGABRT to sensorservice" — the first escalation anchor.
	msg := e.Message
	i := strings.Index(msg, "(client ")
	if i < 0 {
		return
	}
	rest := msg[i+len("(client "):]
	proc, _, ok := strings.Cut(rest, " unresponsive")
	if !ok {
		return
	}
	c.blameProc, c.blameProcAt, c.hasBlame = proc, e.Time, true
}

func (c *Collector) consumeSystemServer(e logcat.Entry) {
	msg := e.Message
	if strings.HasPrefix(msg, "unable to bind AmbientService for ") {
		// The second escalation anchor names the failing component.
		rest := strings.TrimPrefix(msg, "unable to bind AmbientService for ")
		flat, _, _ := strings.Cut(rest, " after")
		if cn, ok := intent.UnflattenComponent(strings.TrimSpace(flat)); ok {
			c.blameComp, c.blameCompAt, c.hasBlame = cn, e.Time, true
		}
		return
	}
	if !strings.HasPrefix(msg, "!!! REBOOTING") {
		return
	}
	c.report.RebootTimes = append(c.report.RebootTimes, e.Time)
	c.rebootsTotal.Inc()
	c.attributeReboot(e.Time)
	c.recent = c.recent[:0]
	// Processes restart after reboot; stale PID mappings must not leak
	// attributions across the boot.
	c.pidComp = make(map[int]intent.ComponentName)
	c.crashParse = make(map[int]*crashBlock)
	c.lastANR = make(map[string]anrMark)
	c.hasBlame = false
}

// attributeReboot implements the post-mortem: when the log names the
// escalation anchor (the unresponsive sensor client, or the component that
// could not bind the Ambient Service), only that process/component's recent
// failures take the blame; otherwise every recent failure in the window
// does.
func (c *Collector) attributeReboot(at time.Time) {
	cutoff := at.Add(-rebootWindow)
	blameProc := ""
	var blameComp intent.ComponentName
	if c.hasBlame {
		if !c.blameCompAt.IsZero() && at.Sub(c.blameCompAt) <= blameWindow {
			blameComp = c.blameComp
		}
		if !c.blameProcAt.IsZero() && at.Sub(c.blameProcAt) <= blameWindow {
			blameProc = c.blameProc
		}
	}
	if !blameComp.IsZero() {
		c.report.component(blameComp).RebootInvolved = true
		c.syncManifest(blameComp)
		return
	}
	for _, f := range c.recent {
		if f.at.Before(cutoff) {
			continue
		}
		if blameProc != "" && f.comp.Package != blameProc {
			continue
		}
		c.report.component(f.comp).RebootInvolved = true
		c.syncManifest(f.comp)
	}
}

// consumeApp handles entries whose tag is an app process name: caught
// exceptions and ANR-adjacent traces.
func (c *Collector) consumeApp(e logcat.Entry) {
	msg := e.Message
	if strings.HasPrefix(msg, "caught exception while handling intent: ") {
		header := strings.TrimPrefix(msg, "caught exception while handling intent: ")
		cn, ok := c.pidComp[e.PID]
		if !ok {
			return
		}
		if class, _, ok := javalang.ParseHeader(header); ok {
			c.report.component(cn).Caught[class]++
			c.syncManifest(cn)
		}
		return
	}
	// An exception header logged by the app shortly after its ANR is the
	// trace of whatever wedged the looper (e.g. the DeadObjectException
	// hinting at garbage collection, Section IV-A).
	if mark, ok := c.lastANR[e.Tag]; ok && e.Time.Sub(mark.at) <= anrTraceWindow {
		if class, _, ok := javalang.ParseHeader(msg); ok {
			c.report.component(mark.comp).ANRClasses[class]++
		}
	}
}

func (c *Collector) pushRecent(at time.Time, cn intent.ComponentName) {
	const maxRecent = 256
	c.recent = append(c.recent, recentFailure{at: at, comp: cn})
	if len(c.recent) > maxRecent {
		c.recent = c.recent[len(c.recent)-maxRecent:]
	}
}
