package analysis

import (
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
	"repro/internal/wearos"
)

func cn(pkg, cls string) intent.ComponentName {
	return intent.ComponentName{Package: pkg, Class: pkg + "." + cls}
}

// deviceWithApp builds an OS whose log buffer feeds a Collector live, and
// installs one app with configurable handlers.
func deviceWithApp(t *testing.T) (*wearos.OS, *Collector) {
	t.Helper()
	dev := wearos.New(wearos.DefaultWatchConfig())
	col := NewCollector()
	dev.Logcat().Subscribe(col)
	pkg := &manifest.Package{
		Name:     "com.a.app",
		Category: manifest.NotHealthFitness,
		Origin:   manifest.ThirdParty,
		Components: []*manifest.Component{
			{Name: cn("com.a.app", "Main"), Type: manifest.Activity, Exported: true},
			{Name: cn("com.a.app", "Svc"), Type: manifest.Service, Exported: true},
		},
	}
	if err := dev.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	return dev, col
}

func send(dev *wearos.OS, target intent.ComponentName, kind manifest.ComponentType, action string) wearos.DeliveryResult {
	in := &intent.Intent{Action: action, Component: target, SenderUID: wearos.UIDAppBase + 100}
	if kind == manifest.Service {
		return dev.StartService(in)
	}
	return dev.StartActivity(in)
}

func TestCollectorSeesDeliveries(t *testing.T) {
	dev, col := deviceWithApp(t)
	send(dev, cn("com.a.app", "Main"), manifest.Activity, "android.intent.action.VIEW")
	send(dev, cn("com.a.app", "Svc"), manifest.Service, "")

	rep := col.Report()
	main := rep.Components[cn("com.a.app", "Main")]
	if main == nil || main.Deliveries != 1 || main.Type != "activity" {
		t.Fatalf("main report = %+v", main)
	}
	svc := rep.Components[cn("com.a.app", "Svc")]
	if svc == nil || svc.Type != "service" {
		t.Fatalf("svc report = %+v", svc)
	}
	if main.Manifestation() != ManifestNoEffect {
		t.Fatalf("manifestation = %v", main.Manifestation())
	}
}

func TestCollectorSecurityAttribution(t *testing.T) {
	dev, col := deviceWithApp(t)
	send(dev, cn("com.a.app", "Main"), manifest.Activity, "android.intent.action.BATTERY_LOW")
	rep := col.Report()
	main := rep.Components[cn("com.a.app", "Main")]
	if main == nil || main.Security != 1 {
		t.Fatalf("security = %+v", main)
	}
	if rep.SecurityEvents != 1 {
		t.Fatalf("SecurityEvents = %d", rep.SecurityEvents)
	}
	classes := main.UncaughtClasses(true)
	if len(classes) != 1 || classes[0] != javalang.ClassSecurity {
		t.Fatalf("uncaught classes = %v", classes)
	}
	if got := main.UncaughtClasses(false); len(got) != 0 {
		t.Fatalf("security leaked into non-security classes: %v", got)
	}
}

func TestCollectorCrashRootCause(t *testing.T) {
	dev, col := deviceWithApp(t)
	target := cn("com.a.app", "Main")
	dev.RegisterHandler(target, func(env *wearos.Env, in *intent.Intent) wearos.Outcome {
		root := javalang.New(javalang.ClassNullPointer, "null ref")
		top := javalang.New(javalang.ClassRuntime, "Unable to start activity").WithCause(root)
		return wearos.Outcome{Thrown: top}
	}, wearos.ComponentTraits{})
	if got := send(dev, target, manifest.Activity, "android.intent.action.VIEW"); got != wearos.DeliveredCrash {
		t.Fatalf("delivery = %v", got)
	}
	rep := col.Report()
	cr := rep.Components[target]
	if cr.Manifestation() != ManifestCrash {
		t.Fatalf("manifestation = %v", cr.Manifestation())
	}
	// Temporal chain: the NPE (deepest cause) takes the blame, not the
	// wrapping RuntimeException.
	if cr.CrashRoots[javalang.ClassNullPointer] != 1 || len(cr.CrashRoots) != 1 {
		t.Fatalf("crash roots = %v", cr.CrashRoots)
	}
	if rep.CrashEvents != 1 {
		t.Fatalf("CrashEvents = %d", rep.CrashEvents)
	}
}

func TestCollectorRejectedAndCaught(t *testing.T) {
	dev, col := deviceWithApp(t)
	target := cn("com.a.app", "Svc")
	mode := "reject"
	dev.RegisterHandler(target, func(env *wearos.Env, in *intent.Intent) wearos.Outcome {
		thr := javalang.New(javalang.ClassIllegalArgument, "bad")
		if mode == "reject" {
			return wearos.Outcome{Thrown: thr, Rejected: true}
		}
		return wearos.Outcome{Thrown: thr, Caught: true}
	}, wearos.ComponentTraits{})

	send(dev, target, manifest.Service, "")
	mode = "caught"
	send(dev, target, manifest.Service, "")

	cr := col.Report().Components[target]
	if cr.Rejected[javalang.ClassIllegalArgument] != 1 {
		t.Fatalf("rejected = %v", cr.Rejected)
	}
	if cr.Caught[javalang.ClassIllegalArgument] != 1 {
		t.Fatalf("caught = %v", cr.Caught)
	}
	// Rejected is uncaught; caught is not.
	if got := cr.UncaughtClasses(false); len(got) != 1 || got[0] != javalang.ClassIllegalArgument {
		t.Fatalf("uncaught = %v", got)
	}
	if cr.Manifestation() != ManifestNoEffect {
		t.Fatalf("manifestation = %v", cr.Manifestation())
	}
}

func TestCollectorANRWithTrace(t *testing.T) {
	dev, col := deviceWithApp(t)
	target := cn("com.a.app", "Main")
	dev.RegisterHandler(target, func(env *wearos.Env, in *intent.Intent) wearos.Outcome {
		return wearos.Outcome{
			BusyFor: 10 * time.Second,
			Thrown:  javalang.New(javalang.ClassDeadObject, "binder died"),
		}
	}, wearos.ComponentTraits{})
	if got := send(dev, target, manifest.Activity, "android.intent.action.VIEW"); got != wearos.DeliveredANR {
		t.Fatalf("delivery = %v", got)
	}
	cr := col.Report().Components[target]
	if cr.ANRs != 1 || cr.Manifestation() != ManifestUnresponsive {
		t.Fatalf("ANR report = %+v", cr)
	}
	if cr.ANRClasses[javalang.ClassDeadObject] == 0 {
		t.Fatalf("ANR classes = %v", cr.ANRClasses)
	}
}

func TestCollectorRebootAttribution(t *testing.T) {
	dev, col := deviceWithApp(t)
	target := cn("com.a.app", "Main")
	dev.RegisterHandler(target, func(env *wearos.Env, in *intent.Intent) wearos.Outcome {
		return wearos.Outcome{BusyFor: 10 * time.Second}
	}, wearos.ComponentTraits{UsesSensorManager: true})

	var last wearos.DeliveryResult
	for i := 0; i < wearos.DefaultAgingConfig().SensorClientANRLimit; i++ {
		last = send(dev, target, manifest.Activity, "android.intent.action.VIEW")
	}
	if last != wearos.DeviceRebooted {
		t.Fatalf("device did not reboot: %v", last)
	}
	rep := col.Report()
	if len(rep.RebootTimes) != 1 {
		t.Fatalf("reboots seen = %d", len(rep.RebootTimes))
	}
	cr := rep.Components[target]
	if !cr.RebootInvolved || cr.Manifestation() != ManifestReboot {
		t.Fatalf("reboot attribution missing: %+v", cr)
	}
	found := false
	for _, d := range rep.CoreServiceDeaths {
		if d == "sensorservice SIGABRT" {
			found = true
		}
	}
	if !found {
		t.Fatalf("core service deaths = %v", rep.CoreServiceDeaths)
	}
}

func TestPulledDumpMatchesStreaming(t *testing.T) {
	// The same log analyzed from a pulled dump must match the streaming
	// collector's view (the paper pulls logs over adb after the run).
	dev, streaming := deviceWithApp(t)
	target := cn("com.a.app", "Main")
	dev.RegisterHandler(target, func(env *wearos.Env, in *intent.Intent) wearos.Outcome {
		if in.Action == "" {
			return wearos.Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "x")}
		}
		return wearos.Outcome{}
	}, wearos.ComponentTraits{})
	send(dev, target, manifest.Activity, "android.intent.action.VIEW")
	send(dev, target, manifest.Activity, "")

	pulled := AnalyzeEntries(dev.Logcat().Snapshot())
	a := streaming.Report().Components[target]
	b := pulled.Components[target]
	if a == nil || b == nil {
		t.Fatal("component missing from a report")
	}
	if a.Deliveries != b.Deliveries || len(a.CrashRoots) != len(b.CrashRoots) ||
		a.Manifestation() != b.Manifestation() {
		t.Fatalf("streaming %+v != pulled %+v", a, b)
	}
}

func TestManifestationSeverityOrdering(t *testing.T) {
	if !(ManifestNoEffect < ManifestUnresponsive &&
		ManifestUnresponsive < ManifestCrash && ManifestCrash < ManifestReboot) {
		t.Fatal("severity ordering broken")
	}
}

func TestAggregations(t *testing.T) {
	rep := newReport()
	a := rep.component(cn("com.p1", "A"))
	a.Type = "activity"
	a.Security = 2
	a.CrashRoots[javalang.ClassNullPointer] = 3
	b := rep.component(cn("com.p1", "B"))
	b.Type = "service"
	b.Security = 1
	c := rep.component(cn("com.p2", "C"))
	c.Type = "activity"
	c.ANRs = 1
	c.ANRClasses[javalang.ClassIllegalState] = 1

	mc := rep.ManifestationCounts()
	if mc[ManifestCrash] != 1 || mc[ManifestNoEffect] != 1 || mc[ManifestUnresponsive] != 1 {
		t.Fatalf("manifestation counts = %v", mc)
	}

	dist := rep.UncaughtClassDistribution(true)
	total := 0
	for _, cc := range dist {
		total += cc.Count
	}
	// a: security+NPE, b: security, c: ISE → 4 pairs, 2 security.
	if total != 4 {
		t.Fatalf("distribution total = %d (%v)", total, dist)
	}
	if got := rep.SecurityShare(); got != 0.5 {
		t.Fatalf("SecurityShare = %v", got)
	}

	byType := rep.UncaughtByComponentType(false)
	if len(byType["activity"]) == 0 {
		t.Fatalf("byType = %v", byType)
	}

	apps := rep.AppManifestations()
	if apps["com.p1"] != ManifestCrash || apps["com.p2"] != ManifestUnresponsive {
		t.Fatalf("app manifestations = %v", apps)
	}
	if got := rep.AppsWithCrash(); len(got) != 1 || got[0] != "com.p1" {
		t.Fatalf("AppsWithCrash = %v", got)
	}

	blame := rep.ManifestationBlame()
	crash := blame[ManifestCrash]
	if len(crash) != 1 || crash[0].Class != javalang.ClassNullPointer || crash[0].Share != 1 {
		t.Fatalf("crash blame = %v", crash)
	}
	noEff := blame[ManifestNoEffect]
	if len(noEff) != 1 || noEff[0].Class != NoExceptionClass {
		t.Fatalf("no-effect blame = %v", noEff)
	}
}

func TestMergeReports(t *testing.T) {
	r1 := newReport()
	c1 := r1.component(cn("com.p", "A"))
	c1.Type = "activity"
	c1.Deliveries = 5
	c1.CrashRoots[javalang.ClassNullPointer] = 1
	r1.CrashEvents = 1

	r2 := newReport()
	c2 := r2.component(cn("com.p", "A"))
	c2.Deliveries = 7
	c2.ANRs = 1
	r2.ANREvents = 1
	r2.RebootTimes = []time.Time{time.Now()}

	r1.Merge(r2)
	got := r1.Components[cn("com.p", "A")]
	if got.Deliveries != 12 || got.ANRs != 1 || got.CrashRoots[javalang.ClassNullPointer] != 1 {
		t.Fatalf("merged = %+v", got)
	}
	if r1.CrashEvents != 1 || r1.ANREvents != 1 || len(r1.RebootTimes) != 1 {
		t.Fatalf("merged report counters wrong: %+v", r1)
	}
	if got.Manifestation() != ManifestCrash {
		t.Fatalf("merged manifestation = %v", got.Manifestation())
	}
}

func TestComponentNamesDeterministic(t *testing.T) {
	rep := newReport()
	rep.component(cn("com.b", "X"))
	rep.component(cn("com.a", "Z"))
	rep.component(cn("com.a", "A"))
	names := rep.ComponentNames()
	if len(names) != 3 || names[0].Package != "com.a" || names[0].Class != "com.a.A" {
		t.Fatalf("names = %v", names)
	}
}
