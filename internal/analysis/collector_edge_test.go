package analysis

import (
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/logcat"
)

// These tests feed hand-crafted log streams straight into the collector to
// cover parser edge cases the end-to-end tests rarely hit.

func entry(tag, msg string, at time.Duration) logcat.Entry {
	return logcat.Entry{
		Time: time.Unix(0, 0).Add(at), PID: 1000, TID: 1000,
		Level: logcat.Info, Tag: tag, Message: msg,
	}
}

func appEntry(pid int, tag, msg string, at time.Duration) logcat.Entry {
	return logcat.Entry{
		Time: time.Unix(0, 0).Add(at), PID: pid, TID: pid,
		Level: logcat.Warn, Tag: tag, Message: msg,
	}
}

func TestCollectorIgnoresMalformedAMEntries(t *testing.T) {
	col := NewCollector()
	for _, msg := range []string{
		"Delivering to activity",                                           // no cmp
		"Delivering to activity cmp=no-slash pid=12",                       // bad component
		"Delivering to activity cmp=com.a/.B pid=xyz",                      // bad pid
		"Delivering to activity cmp=com.a/.B",                              // no pid
		"Exception thrown delivering intent to cmp=com.a/.B",               // no header
		"Exception thrown delivering intent to cmp=nope: java.lang.X: y",   // bad component
		"Exception thrown delivering intent to cmp=com.a/.B: notaclass: z", // bad header
		"ANR in proc",                  // no component
		"ANR in proc (badflat)",        // bad component
		"Process x has died",           // no pid
		"Process x (pid abc) has died", // bad pid
		"Process x (pid 7777 has died", // unterminated
		"java.lang.SecurityException: Permission Denial targeting nope", // bad component
	} {
		col.Consume(entry(logcat.TagActivityManager, msg, 0))
	}
	rep := col.Report()
	if len(rep.Components) != 0 {
		t.Fatalf("malformed entries created components: %v", rep.ComponentNames())
	}
	if rep.Entries != 13 {
		t.Fatalf("entries counted = %d", rep.Entries)
	}
}

func TestCollectorCrashBlockWithoutDelivery(t *testing.T) {
	// A FATAL EXCEPTION whose PID was never seen in a Delivering entry
	// cannot be attributed; the collector must not panic or invent data.
	col := NewCollector()
	col.Consume(logcat.Entry{PID: 555, Tag: logcat.TagAndroidRuntime, Level: logcat.Error, Message: "FATAL EXCEPTION: main"})
	col.Consume(logcat.Entry{PID: 555, Tag: logcat.TagAndroidRuntime, Level: logcat.Error, Message: "java.lang.NullPointerException: x"})
	col.Consume(entry(logcat.TagActivityManager, "Process ghost (pid 555) has died", 0))
	if got := len(col.Report().Components); got != 0 {
		t.Fatalf("unattributable crash created %d components", got)
	}
	if col.Report().CrashEvents != 0 {
		t.Fatal("unattributable crash counted")
	}
}

func TestCollectorRuntimeLinesWithoutBlock(t *testing.T) {
	// AndroidRuntime lines arriving without a FATAL header are ignored.
	col := NewCollector()
	col.Consume(logcat.Entry{PID: 7, Tag: logcat.TagAndroidRuntime, Message: "java.lang.NullPointerException: stray"})
	if len(col.Report().Components) != 0 {
		t.Fatal("stray runtime line created a component")
	}
}

func TestCollectorANRTraceWindowExpires(t *testing.T) {
	col := NewCollector()
	col.Consume(entry(logcat.TagActivityManager, "Delivering to service cmp=com.a/.S pid=42", 0))
	col.Consume(entry(logcat.TagActivityManager, "ANR in com.a (com.a/.S)", time.Second))
	// Trace arrives too late: outside the association window.
	col.Consume(appEntry(42, "com.a", "java.lang.IllegalStateException: late", 10*time.Second))
	cr := col.Report().Components[mustCN(t, "com.a/.S")]
	if cr.ANRs != 1 {
		t.Fatalf("ANRs = %d", cr.ANRs)
	}
	if len(cr.ANRClasses) != 0 {
		t.Fatalf("late trace associated: %v", cr.ANRClasses)
	}
}

func TestCollectorNativeSignalParsing(t *testing.T) {
	col := NewCollector()
	col.Consume(entry(logcat.TagDEBUG, "Fatal signal SIGABRT in tid 99 (sensorservice), process /system/lib/libsensorservice.so", 0))
	col.Consume(entry(logcat.TagDEBUG, "Fatal signal SIGSEGV in system_server (pid 1000)", 0))
	col.Consume(entry(logcat.TagDEBUG, "not a signal line", 0))
	col.Consume(entry(logcat.TagDEBUG, "Fatal signal SIGKILL in tid 1 (other_process)", 0))
	rep := col.Report()
	if len(rep.CoreServiceDeaths) != 2 {
		t.Fatalf("deaths = %v", rep.CoreServiceDeaths)
	}
	if rep.CoreServiceDeaths[0] != "sensorservice "+javalang.SIGABRT ||
		rep.CoreServiceDeaths[1] != "system_server "+javalang.SIGSEGV {
		t.Fatalf("deaths = %v", rep.CoreServiceDeaths)
	}
}

func TestCollectorRebootFallbackAttribution(t *testing.T) {
	// No escalation anchor in the log: the reboot is attributed to every
	// recent failure in the window.
	col := NewCollector()
	col.Consume(entry(logcat.TagActivityManager, "Delivering to activity cmp=com.a/.X pid=10", 0))
	col.Consume(entry(logcat.TagActivityManager, "ANR in com.a (com.a/.X)", time.Second))
	col.Consume(entry(logcat.TagSystemServer, "!!! REBOOTING: test !!!", 2*time.Second))
	cr := col.Report().Components[mustCN(t, "com.a/.X")]
	if cr == nil || !cr.RebootInvolved {
		t.Fatal("fallback attribution failed")
	}
}

func TestCollectorBlameWindowExpiry(t *testing.T) {
	// An escalation anchor far in the past must not anchor a much later
	// reboot; fallback attribution applies instead.
	col := NewCollector()
	col.Consume(entry(logcat.TagWatchdog,
		"Blocked in handler on sensor thread (client com.old unresponsive); sending SIGABRT to sensorservice", 0))
	col.Consume(entry(logcat.TagActivityManager, "Delivering to activity cmp=com.b/.Y pid=11", 9*time.Minute))
	col.Consume(entry(logcat.TagActivityManager, "ANR in com.b (com.b/.Y)", 9*time.Minute))
	col.Consume(entry(logcat.TagSystemServer, "!!! REBOOTING: later !!!", 10*time.Minute))
	rep := col.Report()
	if cr := rep.Components[mustCN(t, "com.b/.Y")]; cr == nil || !cr.RebootInvolved {
		t.Fatal("stale anchor suppressed fallback attribution")
	}
}

func TestCollectorWatchdogMalformed(t *testing.T) {
	col := NewCollector()
	col.Consume(entry(logcat.TagWatchdog, "Blocked in handler with no client marker", 0))
	col.Consume(entry(logcat.TagWatchdog, "(client only-open", 0))
	// Nothing to assert beyond "no panic, no components".
	if len(col.Report().Components) != 0 {
		t.Fatal("malformed watchdog lines created components")
	}
}

func TestCollectorAmbientAnchorAttribution(t *testing.T) {
	col := NewCollector()
	col.Consume(entry(logcat.TagActivityManager, "Delivering to activity cmp=com.c/.Amb pid=12", 0))
	col.Consume(entry(logcat.TagActivityManager, "Delivering to activity cmp=com.c/.Other pid=13", time.Second))
	col.Consume(entry(logcat.TagActivityManager, "ANR in com.c (com.c/.Other)", 2*time.Second))
	col.Consume(entry(logcat.TagSystemServer,
		"unable to bind AmbientService for com.c/.Amb after repeated start failures", 3*time.Second))
	col.Consume(entry(logcat.TagSystemServer, "!!! REBOOTING: x !!!", 4*time.Second))
	rep := col.Report()
	// Anchored attribution: only the named component is blamed, not the
	// other recent failure.
	if cr := rep.Components[mustCN(t, "com.c/.Amb")]; cr == nil || !cr.RebootInvolved {
		t.Fatal("anchored component not blamed")
	}
	if cr := rep.Components[mustCN(t, "com.c/.Other")]; cr != nil && cr.RebootInvolved {
		t.Fatal("anchored attribution leaked to unrelated component")
	}
}

func TestCollectorCaughtWithoutMapping(t *testing.T) {
	col := NewCollector()
	col.Consume(appEntry(99, "com.a", "caught exception while handling intent: java.lang.IllegalArgumentException: x", 0))
	if len(col.Report().Components) != 0 {
		t.Fatal("caught line without pid mapping created a component")
	}
}

func mustCN(t *testing.T, flat string) intent.ComponentName {
	t.Helper()
	c, ok := intent.UnflattenComponent(flat)
	if !ok {
		t.Fatalf("bad flat %q", flat)
	}
	return c
}
