// Package binder provides a compact model of Android's Binder IPC layer:
// named endpoints owned by processes, synchronous transactions, and death
// notification. Two observations in the paper depend on Binder semantics —
// android.os.DeadObjectException appearing among the exceptions behind
// unresponsive components ("garbage collection can have the undesirable
// effect"), and the Ambient Service bind failure in the second reboot
// post-mortem.
package binder

import (
	"fmt"
	"sync"

	"repro/internal/javalang"
	"repro/internal/telemetry"
)

// Handler processes one transaction and returns a reply or a Throwable.
type Handler func(code int, data any) (reply any, thr *javalang.Throwable)

// Endpoint is a published Binder object.
type Endpoint struct {
	Name     string
	OwnerPID int
	handler  Handler
}

// Router is the Binder driver: it maps endpoint names to live endpoints and
// delivers transactions. A Router belongs to one device.
type Router struct {
	mu        sync.Mutex
	endpoints map[string]*Endpoint
	alive     map[int]bool // PID liveness, maintained by the process table
	deathSubs map[string][]func()
	// txCount counts delivered transactions, for stats/benchmarks.
	txCount uint64

	// Telemetry handles, cached at SetTelemetry time (nil = no-op).
	txOK      *telemetry.Counter
	txDead    *telemetry.Counter
	txLatency *telemetry.Histogram
	// rec receives a structured event per dead-object transaction — the
	// binder leg of the flight-recorder trail (nil = no-op).
	rec *telemetry.Recorder
	// fault, when set, is consulted on every transaction; a non-nil
	// Throwable fails the transaction without reaching the endpoint. The
	// fault-injection engine installs it for the duration of a binder fault
	// window; nil (the normal state) costs one predicate check.
	fault func(name string) *javalang.Throwable
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{
		endpoints: make(map[string]*Endpoint),
		alive:     make(map[int]bool),
		deathSubs: make(map[string][]func()),
	}
}

// Publish registers an endpoint under name, owned by ownerPID. Publishing an
// existing name replaces the endpoint (the owner restarted).
func (r *Router) Publish(name string, ownerPID int, h Handler) *Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := &Endpoint{Name: name, OwnerPID: ownerPID, handler: h}
	r.endpoints[name] = ep
	r.alive[ownerPID] = true
	return ep
}

// Unpublish removes the endpoint.
func (r *Router) Unpublish(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.endpoints, name)
}

// SetAlive updates PID liveness; the process table calls this on process
// start and death. Killing a PID fires death notifications for every
// endpoint it owns.
func (r *Router) SetAlive(pid int, alive bool) {
	r.mu.Lock()
	r.alive[pid] = alive
	var toNotify []func()
	if !alive {
		for name, ep := range r.endpoints {
			if ep.OwnerPID == pid {
				toNotify = append(toNotify, r.deathSubs[name]...)
				delete(r.deathSubs, name)
			}
		}
	}
	r.mu.Unlock()
	for _, fn := range toNotify {
		fn()
	}
}

// LinkToDeath registers fn to run when the endpoint's owner dies. Unknown
// endpoints return an error immediately (mirror of Binder's behaviour).
func (r *Router) LinkToDeath(name string, fn func()) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.endpoints[name]; !ok {
		return fmt.Errorf("binder: no endpoint %q", name)
	}
	r.deathSubs[name] = append(r.deathSubs[name], fn)
	return nil
}

// SetTelemetry wires the router's dispatch metrics into reg:
// binder_transactions_total{status} and the binder_transact_seconds
// latency histogram. A nil registry detaches (no-op metrics).
func (r *Router) SetTelemetry(reg *telemetry.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.txOK = reg.Counter("binder_transactions_total", telemetry.L("status", "ok"))
	r.txDead = reg.Counter("binder_transactions_total", telemetry.L("status", "dead"))
	r.txLatency = reg.Histogram("binder_transact_seconds", telemetry.DefLatencyBuckets)
}

// SetFlightRecorder attaches the device flight recorder; dead-object
// transaction failures record an event into it. The recorder itself is
// single-threaded like the device, so the router only ever touches it from
// the simulation goroutine.
func (r *Router) SetFlightRecorder(rec *telemetry.Recorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rec = rec
}

// SetFault installs (or, with nil, lifts) a transaction fault predicate:
// every Transact consults it and fails with the returned Throwable without
// reaching the endpoint. Used by fault-injection windows to model flaky
// binder transports (DEAD_OBJECT, TRANSACTION_TOO_LARGE, timeouts).
func (r *Router) SetFault(fault func(name string) *javalang.Throwable) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fault = fault
}

// Reset empties the router back to its NewRouter state while reusing the
// map allocations: endpoints, PID liveness, and death subscriptions drop,
// the transaction counter rewinds, and the telemetry, flight-recorder, and
// fault hooks detach (a persistent-mode campaign unit re-attaches its own).
func (r *Router) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.endpoints)
	clear(r.alive)
	clear(r.deathSubs)
	r.txCount = 0
	r.txOK, r.txDead, r.txLatency = nil, nil, nil
	r.rec = nil
	r.fault = nil
}

// Transact delivers a synchronous transaction to the named endpoint.
// Transactions against unknown endpoints or dead owners fail with
// DeadObjectException, exactly the error apps observe when a remote process
// was reclaimed.
func (r *Router) Transact(name string, code int, data any) (any, *javalang.Throwable) {
	defer telemetry.Time(r.txLatency)()
	r.mu.Lock()
	ep, ok := r.endpoints[name]
	var ownerAlive bool
	if ok {
		ownerAlive = r.alive[ep.OwnerPID]
	}
	fault := r.fault
	r.txCount++
	r.mu.Unlock()
	if fault != nil {
		if thr := fault(name); thr != nil {
			r.txDead.Inc()
			r.rec.RecordNow(telemetry.EventBinder, name, "", "fault:"+thr.Class.Simple())
			return nil, thr
		}
	}
	if !ok || !ownerAlive {
		r.txDead.Inc()
		r.rec.RecordNow(telemetry.EventBinder, name, "", "dead-object")
		return nil, javalang.Newf(javalang.ClassDeadObject,
			"Transaction failed on small parcel; remote process %q probably died", name)
	}
	r.txOK.Inc()
	return ep.handler(code, data)
}

// Lookup reports whether name is published with a live owner.
func (r *Router) Lookup(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep, ok := r.endpoints[name]
	return ok && r.alive[ep.OwnerPID]
}

// Endpoints returns the number of published endpoints. Endpoint handlers
// are closures over their owning device, so snapshotting refuses any device
// with a non-zero count.
func (r *Router) Endpoints() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.endpoints)
}

// TxCount returns the number of transactions delivered (including failed
// ones).
func (r *Router) TxCount() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.txCount
}
