package binder

import (
	"testing"

	"repro/internal/javalang"
)

func echoHandler(code int, data any) (any, *javalang.Throwable) {
	return data, nil
}

func TestTransactSuccess(t *testing.T) {
	r := NewRouter()
	r.Publish("svc.echo", 100, echoHandler)
	reply, thr := r.Transact("svc.echo", 1, "hello")
	if thr != nil {
		t.Fatalf("Transact error: %v", thr)
	}
	if reply != "hello" {
		t.Fatalf("reply = %v", reply)
	}
	if r.TxCount() != 1 {
		t.Fatalf("TxCount = %d", r.TxCount())
	}
}

func TestTransactUnknownEndpoint(t *testing.T) {
	r := NewRouter()
	_, thr := r.Transact("svc.missing", 1, nil)
	if thr == nil || thr.Class != javalang.ClassDeadObject {
		t.Fatalf("expected DeadObjectException, got %v", thr)
	}
}

func TestTransactDeadOwner(t *testing.T) {
	r := NewRouter()
	r.Publish("svc.echo", 100, echoHandler)
	r.SetAlive(100, false)
	_, thr := r.Transact("svc.echo", 1, nil)
	if thr == nil || thr.Class != javalang.ClassDeadObject {
		t.Fatalf("expected DeadObjectException, got %v", thr)
	}
	if r.Lookup("svc.echo") {
		t.Fatal("Lookup true for dead owner")
	}
}

func TestHandlerThrowablePropagates(t *testing.T) {
	r := NewRouter()
	r.Publish("svc.bad", 100, func(code int, data any) (any, *javalang.Throwable) {
		return nil, javalang.New(javalang.ClassIllegalState, "not ready")
	})
	_, thr := r.Transact("svc.bad", 1, nil)
	if thr == nil || thr.Class != javalang.ClassIllegalState {
		t.Fatalf("got %v", thr)
	}
}

func TestDeathNotification(t *testing.T) {
	r := NewRouter()
	r.Publish("svc.x", 7, echoHandler)
	died := 0
	if err := r.LinkToDeath("svc.x", func() { died++ }); err != nil {
		t.Fatal(err)
	}
	r.SetAlive(7, false)
	if died != 1 {
		t.Fatalf("death callbacks = %d, want 1", died)
	}
	// Death subscriptions are one-shot: reviving and re-killing does not
	// re-fire old callbacks.
	r.SetAlive(7, true)
	r.SetAlive(7, false)
	if died != 1 {
		t.Fatalf("death callbacks after revive/kill = %d, want 1", died)
	}
}

func TestLinkToDeathUnknownEndpoint(t *testing.T) {
	r := NewRouter()
	if err := r.LinkToDeath("nope", func() {}); err == nil {
		t.Fatal("LinkToDeath on unknown endpoint succeeded")
	}
}

func TestRepublishReplacesEndpoint(t *testing.T) {
	r := NewRouter()
	r.Publish("svc.x", 1, func(int, any) (any, *javalang.Throwable) { return "old", nil })
	r.Publish("svc.x", 2, func(int, any) (any, *javalang.Throwable) { return "new", nil })
	reply, thr := r.Transact("svc.x", 0, nil)
	if thr != nil || reply != "new" {
		t.Fatalf("reply = %v thr = %v", reply, thr)
	}
}

func TestUnpublish(t *testing.T) {
	r := NewRouter()
	r.Publish("svc.x", 1, echoHandler)
	r.Unpublish("svc.x")
	if r.Lookup("svc.x") {
		t.Fatal("endpoint survives Unpublish")
	}
	_, thr := r.Transact("svc.x", 0, nil)
	if thr == nil {
		t.Fatal("Transact on unpublished endpoint succeeded")
	}
}

func TestDeathOnlyFiresForOwnedEndpoints(t *testing.T) {
	r := NewRouter()
	r.Publish("svc.a", 1, echoHandler)
	r.Publish("svc.b", 2, echoHandler)
	var fired []string
	_ = r.LinkToDeath("svc.a", func() { fired = append(fired, "a") })
	_ = r.LinkToDeath("svc.b", func() { fired = append(fired, "b") })
	r.SetAlive(2, false)
	if len(fired) != 1 || fired[0] != "b" {
		t.Fatalf("fired = %v, want [b]", fired)
	}
}
