package adb

import (
	"strings"
	"testing"

	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/wearos"
)

func newShell(t *testing.T) (*Shell, *wearos.OS) {
	t.Helper()
	dev := wearos.New(wearos.DefaultEmulatorConfig())
	pkg := &manifest.Package{
		Name:     "com.app.one",
		Category: manifest.NotHealthFitness,
		Origin:   manifest.ThirdParty,
		Components: []*manifest.Component{
			{
				Name: intent.ComponentName{Package: "com.app.one", Class: "com.app.one.ui.Main"},
				Type: manifest.Activity, Exported: true, MainLauncher: true,
				Filters: []*manifest.IntentFilter{{
					Actions:    []string{"android.intent.action.MAIN"},
					Categories: []string{intent.CategoryLauncher, intent.CategoryDefault},
				}},
			},
			{
				Name: intent.ComponentName{Package: "com.app.one", Class: "com.app.one.svc.Sync"},
				Type: manifest.Service, Exported: true,
			},
		},
	}
	if err := dev.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	return NewShell(dev), dev
}

func TestAmStartExplicit(t *testing.T) {
	sh, _ := newShell(t)
	res := sh.Run("am start -n com.app.one/.ui.Main -a android.intent.action.VIEW -d https://foo.com/")
	if res.ExitCode != 0 {
		t.Fatalf("am failed: %s", res.Output)
	}
	if res.Delivery != wearos.DeliveredNoEffect {
		t.Fatalf("delivery = %v", res.Delivery)
	}
	if !strings.Contains(res.Output, "Starting: Intent") {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestAmAutoFillsMainLauncher(t *testing.T) {
	// Section IV-D: invoking an activity without action or category makes
	// am set {act=action.MAIN cat=category.LAUNCHER}.
	sh, _ := newShell(t)
	res := sh.Run("am start -n com.app.one/.ui.Main")
	if res.ExitCode != 0 {
		t.Fatalf("am failed: %s", res.Output)
	}
	if res.SentIntent.Action != "android.intent.action.MAIN" {
		t.Fatalf("action = %q", res.SentIntent.Action)
	}
	if !res.SentIntent.HasCategory(intent.CategoryLauncher) {
		t.Fatalf("categories = %v", res.SentIntent.Categories)
	}
}

func TestAmForwardsRandomActionStrings(t *testing.T) {
	// Section IV-D: am does NOT validate action strings; it forwards
	// 'S0me.r@ndom.$trinG' and relies on component validation.
	sh, _ := newShell(t)
	res := sh.Run("am start -n com.app.one/.ui.Main -a 'S0me.r@ndom.$trinG'")
	if res.ExitCode != 0 {
		t.Fatalf("am rejected random action: %s", res.Output)
	}
	if res.SentIntent.Action != "S0me.r@ndom.$trinG" {
		t.Fatalf("action = %q", res.SentIntent.Action)
	}
}

func TestAmStartService(t *testing.T) {
	sh, _ := newShell(t)
	res := sh.Run("am startservice -n com.app.one/.svc.Sync")
	if res.ExitCode != 0 {
		t.Fatalf("am failed: %s", res.Output)
	}
	// Services do not get the MAIN/LAUNCHER auto-fill.
	if res.SentIntent.Action != "" {
		t.Fatalf("service action = %q", res.SentIntent.Action)
	}
}

func TestAmUnknownComponent(t *testing.T) {
	sh, _ := newShell(t)
	res := sh.Run("am start -n com.app.one/.ui.Missing -a android.intent.action.VIEW")
	if res.ExitCode == 0 {
		t.Fatal("am succeeded against missing component")
	}
	if !strings.Contains(res.Output, "unable to resolve Intent") {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestAmExtras(t *testing.T) {
	sh, _ := newShell(t)
	res := sh.Run("am start -n com.app.one/.ui.Main --es key1 hello --ei key2 42 --esn key3")
	if res.ExitCode != 0 {
		t.Fatalf("am failed: %s", res.Output)
	}
	ex := res.SentIntent.Extras
	if v, ok := ex.Get("key1"); !ok || v.Str != "hello" {
		t.Fatalf("key1 = %v", v)
	}
	if v, ok := ex.Get("key2"); !ok || v.I64 != 42 {
		t.Fatalf("key2 = %v", v)
	}
	if v, ok := ex.Get("key3"); !ok || v.Kind != intent.KindNull {
		t.Fatalf("key3 = %v", v)
	}
}

func TestAmInvalidValues(t *testing.T) {
	sh, _ := newShell(t)
	for _, cmd := range []string{
		"am start -n notacomponent",
		"am start -n com.app.one/.ui.Main --ei k notanint",
		"am start -n com.app.one/.ui.Main --ef k notafloat",
		"am start -n com.app.one/.ui.Main --ez k notabool",
		"am start",
		"am bogus",
	} {
		if res := sh.Run(cmd); res.ExitCode == 0 {
			t.Errorf("command %q succeeded: %s", cmd, res.Output)
		}
	}
}

func TestPmRejectsUnknownPermission(t *testing.T) {
	// Section IV-D: pm rejects 'S0me.r@ndom.$trinG' saying no such
	// permission exists.
	sh, _ := newShell(t)
	res := sh.Run("pm grant com.app.one 'S0me.r@ndom.$trinG'")
	if res.ExitCode == 0 {
		t.Fatal("pm granted a nonexistent permission")
	}
	if !strings.Contains(res.Output, "Unknown permission") {
		t.Fatalf("output = %q", res.Output)
	}
	ok := sh.Run("pm grant com.app.one android.permission.BODY_SENSORS")
	if ok.ExitCode != 0 {
		t.Fatalf("pm rejected a real permission: %s", ok.Output)
	}
}

func TestPmUnknownPackage(t *testing.T) {
	sh, _ := newShell(t)
	res := sh.Run("pm grant com.not.installed android.permission.INTERNET")
	if res.ExitCode == 0 || !strings.Contains(res.Output, "Unknown package") {
		t.Fatalf("res = %+v", res)
	}
}

func TestPmList(t *testing.T) {
	sh, _ := newShell(t)
	res := sh.Run("pm list")
	if !strings.Contains(res.Output, "package:com.app.one") {
		t.Fatalf("pm list output = %q", res.Output)
	}
	perms := sh.Run("pm list permissions")
	if !strings.Contains(perms.Output, "android.permission.INTERNET") {
		t.Fatalf("pm list permissions output = %q", perms.Output)
	}
}

func TestInputTapValidation(t *testing.T) {
	sh, _ := newShell(t)
	// The paper's example random event: invalid (out-of-screen) floats are
	// clamped, not fatal.
	if res := sh.Run("input tap -8803.85 4668.17"); res.ExitCode != 0 {
		t.Fatalf("out-of-screen tap rejected: %s", res.Output)
	}
	if res := sh.Run("input tap abc def"); res.ExitCode == 0 {
		t.Fatal("non-numeric tap accepted")
	}
	if res := sh.Run("input tap 10"); res.ExitCode == 0 {
		t.Fatal("tap with one coordinate accepted")
	}
}

func TestInputKeyevent(t *testing.T) {
	sh, _ := newShell(t)
	if res := sh.Run("input keyevent 26"); res.ExitCode != 0 {
		t.Fatalf("numeric keyevent failed: %s", res.Output)
	}
	if res := sh.Run("input keyevent KEYCODE_HOME"); res.ExitCode != 0 {
		t.Fatalf("named keyevent failed: %s", res.Output)
	}
	if res := sh.Run("input keyevent n0tAk3y"); res.ExitCode == 0 {
		t.Fatal("garbage keyevent accepted")
	}
}

func TestLogcatDumpAndClear(t *testing.T) {
	sh, dev := newShell(t)
	sh.Run("am start -n com.app.one/.ui.Main")
	dump := sh.Run("logcat -d")
	if !strings.Contains(dump.Output, "ActivityManager") {
		t.Fatalf("logcat dump missing AM entries: %q", dump.Output[:min(120, len(dump.Output))])
	}
	sh.Run("logcat -c")
	if dev.Logcat().Len() != 0 {
		t.Fatal("logcat -c did not clear the buffer")
	}
}

func TestUnknownBinary(t *testing.T) {
	sh, _ := newShell(t)
	res := sh.Run("rm -rf /")
	if res.ExitCode != 127 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

func TestTokenizeQuotes(t *testing.T) {
	got := tokenize(`am start -a "two words" -d 'single quoted'`)
	want := []string{"am", "start", "-a", "two words", "-d", "single quoted"}
	if len(got) != len(want) {
		t.Fatalf("tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokenize[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLogcatTagFilter(t *testing.T) {
	sh, _ := newShell(t)
	sh.Run("am start -n com.app.one/.ui.Main")
	// Restrict to the ActivityManager tag.
	res := sh.Run("logcat -d -s ActivityManager")
	if !strings.Contains(res.Output, "ActivityManager") {
		t.Fatalf("filtered output missing AM entries: %q", res.Output)
	}
	if strings.Contains(res.Output, "PackageManager") {
		t.Fatal("tag filter leaked other tags")
	}
}

func TestLogcatFilterspec(t *testing.T) {
	sh, _ := newShell(t)
	// Generate a Warn entry via a protected action.
	sh.Run("am start -n com.app.one/.ui.Main -a android.intent.action.BATTERY_LOW")
	warnOnly := sh.Run("logcat -d *:W")
	for _, line := range strings.Split(strings.TrimSpace(warnOnly.Output), "\n") {
		if line == "" {
			continue
		}
		if !strings.Contains(line, " W ") && !strings.Contains(line, " E ") && !strings.Contains(line, " F ") {
			t.Fatalf("*:W let a low-priority line through: %q", line)
		}
	}
	// Per-tag spec silences everything else.
	amErrors := sh.Run("logcat -d ActivityManager:W")
	if strings.Contains(amErrors.Output, "PackageManager") {
		t.Fatal("per-tag filterspec leaked other tags")
	}
	bad := sh.Run("logcat -d ActivityManager:Z")
	if bad.ExitCode == 0 {
		t.Fatal("invalid priority accepted")
	}
}
