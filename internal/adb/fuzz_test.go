package adb

import (
	"testing"

	"repro/internal/wearos"
)

// FuzzShellRun asserts the shell never panics on arbitrary command lines —
// QGJ-UI's random mode feeds it exactly this kind of garbage — and that it
// always returns a structured Result.
func FuzzShellRun(f *testing.F) {
	for _, seed := range []string{
		"am start -n com.app.one/.ui.Main",
		"am start -a 'S0me.r@ndom.$trinG' -n com.app.one/.ui.Main",
		"am startservice -n com.app.one/.svc.Sync --esn key",
		"input tap -8803.85 4668.17",
		"input keyevent KEYCODE_HOME",
		"pm grant com.app.one android.permission.BODY_SENSORS",
		"pm list permissions",
		"logcat -d -s ActivityManager",
		"logcat ActivityManager:W *:E",
		"am",
		"am start",
		"am start --ei k",
		"input",
		"",
		"     ",
		`am start -a "two words"`,
		"rm -rf /",
		"am start -n x -d ::::",
	} {
		f.Add(seed)
	}
	dev := wearos.New(wearos.DefaultEmulatorConfig())
	sh := NewShell(dev)
	f.Fuzz(func(t *testing.T, cmd string) {
		res := sh.Run(cmd)
		if res.ExitCode < 0 || res.ExitCode > 255 {
			t.Fatalf("exit code out of range: %d for %q", res.ExitCode, cmd)
		}
		// A dispatched intent must always come with a delivery result.
		if res.SentIntent != nil && res.Delivery == 0 {
			t.Fatalf("sent intent without delivery result for %q", cmd)
		}
	})
}
