// Package adb simulates the Android Debug Bridge shell utilities QGJ-UI
// injects through: am (ActivityManager), pm (PackageManager), input, and
// logcat. Section IV-D's findings hinge on these tools' input validation —
// am silently normalizes a missing action/category to MAIN/LAUNCHER, pm
// rejects permission strings that are not registered on the device, and
// input parses coordinates strictly — so the sanitization behaviour here
// is load-bearing for Table V.
package adb

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/intent"
	"repro/internal/logcat"
	"repro/internal/telemetry"
	"repro/internal/wearos"
)

// Shell is an adb shell session bound to one device.
type Shell struct {
	dev *wearos.OS
	// cmds counts executed commands per tool (nil when device telemetry is
	// off). Unknown tools share the "other" label to bound cardinality.
	cmds map[string]*telemetry.Counter
}

// NewShell opens a shell on the device.
func NewShell(dev *wearos.OS) *Shell {
	s := &Shell{dev: dev}
	if reg := dev.Telemetry(); reg != nil {
		s.cmds = make(map[string]*telemetry.Counter)
		for _, tool := range []string{"am", "pm", "input", "logcat", "other"} {
			s.cmds[tool] = reg.Counter("adb_commands_total", telemetry.L("tool", tool))
		}
	}
	return s
}

// Result is the outcome of one shell command.
type Result struct {
	// Output is what the utility printed.
	Output string
	// ExitCode is the process exit status (0 = success).
	ExitCode int
	// Delivery is set when the command dispatched an intent.
	Delivery wearos.DeliveryResult
	// SentIntent is the intent the command dispatched, if any.
	SentIntent *intent.Intent
}

// Run parses and executes one shell command line.
func (s *Shell) Run(cmdline string) Result {
	fields := tokenize(cmdline)
	if len(fields) == 0 {
		return Result{Output: "", ExitCode: 0}
	}
	if s.cmds != nil {
		c := s.cmds[fields[0]]
		if c == nil {
			c = s.cmds["other"]
		}
		c.Inc()
	}
	switch fields[0] {
	case "am":
		return s.runAM(fields[1:])
	case "pm":
		return s.runPM(fields[1:])
	case "input":
		return s.runInput(fields[1:])
	case "logcat":
		return s.runLogcat(fields[1:])
	default:
		return Result{
			Output:   fmt.Sprintf("/system/bin/sh: %s: not found", fields[0]),
			ExitCode: 127,
		}
	}
}

// tokenize splits a command line on spaces, honoring single and double
// quotes (adb shell passes through a POSIX-ish shell).
func tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	inSingle, inDouble := false, false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == ' ' && !inSingle && !inDouble:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// runAM implements `am start`, `am startservice`, and `am start-activity`.
func (s *Shell) runAM(args []string) Result {
	if len(args) == 0 {
		return Result{Output: amUsage, ExitCode: 1}
	}
	var service bool
	switch args[0] {
	case "start", "start-activity":
	case "startservice", "start-service":
		service = true
	default:
		return Result{Output: "Error: unknown command: " + args[0], ExitCode: 1}
	}

	in := &intent.Intent{SenderUID: wearos.UIDShell}
	var parseErr string
	i := 1
	for i < len(args) {
		arg := args[i]
		next := func() (string, bool) {
			if i+1 >= len(args) {
				parseErr = "Error: option " + arg + " requires an argument"
				return "", false
			}
			i++
			return args[i], true
		}
		switch arg {
		case "-n":
			v, ok := next()
			if !ok {
				break
			}
			cn, ok := intent.UnflattenComponent(v)
			if !ok {
				parseErr = "Error: invalid component name: " + v
				break
			}
			in.Component = cn
		case "-a":
			v, ok := next()
			if !ok {
				break
			}
			// am does NOT validate action strings: "the am utility would
			// forward the string 'S0me.r@ndom.$trinG' as an action string
			// to a component and relies on the correctness of input
			// validation at the component" (Section IV-D).
			in.Action = v
		case "-d":
			v, ok := next()
			if !ok {
				break
			}
			u, ok := intent.ParseURI(v)
			if !ok {
				parseErr = "Error: Invalid URI: " + v
				break
			}
			in.Data = u
		case "-c":
			v, ok := next()
			if !ok {
				break
			}
			in.AddCategory(v)
		case "-t":
			v, ok := next()
			if !ok {
				break
			}
			in.Type = v
		case "--es":
			k, ok := next()
			if !ok {
				break
			}
			v, ok := next()
			if !ok {
				break
			}
			in.PutExtra(k, intent.StringValue(v))
		case "--ei":
			k, ok := next()
			if !ok {
				break
			}
			v, ok := next()
			if !ok {
				break
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				parseErr = "Error: Invalid int value: " + v
				break
			}
			in.PutExtra(k, intent.IntValue(n))
		case "--ef":
			k, ok := next()
			if !ok {
				break
			}
			v, ok := next()
			if !ok {
				break
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				parseErr = "Error: Invalid float value: " + v
				break
			}
			in.PutExtra(k, intent.FloatValue(f))
		case "--ez":
			k, ok := next()
			if !ok {
				break
			}
			v, ok := next()
			if !ok {
				break
			}
			b, err := strconv.ParseBool(v)
			if err != nil {
				parseErr = "Error: Invalid boolean value: " + v
				break
			}
			in.PutExtra(k, intent.BoolValue(b))
		case "--esn":
			k, ok := next()
			if !ok {
				break
			}
			in.PutExtra(k, intent.NullValue())
		default:
			parseErr = "Error: Unknown option: " + arg
		}
		if parseErr != "" {
			return Result{Output: parseErr, ExitCode: 1}
		}
		i++
	}

	if in.Component.IsZero() && in.Action == "" {
		return Result{Output: "Error: Intent has no component and no action", ExitCode: 1}
	}

	// The sanitization the paper highlights: launching without an action or
	// category makes am fill in MAIN/LAUNCHER ("am automatically sets the
	// action and category values as {act=action.MAIN cat=category.LAUNCHER}").
	if !service && in.Action == "" && len(in.Categories) == 0 {
		in.Action = "android.intent.action.MAIN"
		in.AddCategory(intent.CategoryLauncher)
	}

	var res wearos.DeliveryResult
	if service {
		res = s.dev.StartService(in)
	} else {
		res = s.dev.StartActivity(in)
	}
	out := Result{Delivery: res, SentIntent: in}
	switch res {
	case wearos.BlockedNotFound:
		out.Output = "Error: Activity not started, unable to resolve Intent " + in.String()
		out.ExitCode = 1
	case wearos.BlockedSecurity:
		out.Output = "java.lang.SecurityException: Permission Denial: starting Intent " + in.String()
		out.ExitCode = 1
	default:
		out.Output = "Starting: Intent " + in.String()
	}
	return out
}

const amUsage = "usage: am [start|startservice] [-n COMPONENT] [-a ACTION] [-d DATA] ..."

// runPM implements the pm subcommands QGJ-UI exercises: grant/revoke and
// list permissions. pm is strict: "if the pm utility is asked to send a
// random permission string ... it rejects the input string saying that no
// such permission exists" (Section IV-D).
func (s *Shell) runPM(args []string) Result {
	if len(args) == 0 {
		return Result{Output: "usage: pm [grant|revoke|list] ...", ExitCode: 1}
	}
	switch args[0] {
	case "grant", "revoke":
		if len(args) < 3 {
			return Result{Output: "Error: usage: pm " + args[0] + " PACKAGE PERMISSION", ExitCode: 1}
		}
		pkg, perm := args[1], args[2]
		if s.dev.Registry().Package(pkg) == nil {
			return Result{Output: "Error: Unknown package: " + pkg, ExitCode: 1}
		}
		if !s.dev.Permissions().Known(perm) {
			return Result{
				Output:   "Error: Unknown permission: " + perm,
				ExitCode: 1,
			}
		}
		return Result{Output: ""}
	case "list":
		if len(args) > 1 && args[1] == "permissions" {
			return Result{Output: strings.Join(s.dev.Permissions().List(), "\n")}
		}
		var names []string
		for _, p := range s.dev.Registry().Packages() {
			names = append(names, "package:"+p.Name)
		}
		return Result{Output: strings.Join(names, "\n")}
	default:
		return Result{Output: "Error: unknown command: " + args[0], ExitCode: 1}
	}
}

// Watch screen bounds for coordinate validation (a 320x320 round Wear
// display).
const (
	screenW = 320
	screenH = 320
)

// runInput implements `input tap|swipe|text|keyevent`. The input utility
// has "robust input validation and sanitization routines": coordinates
// must parse as floats; out-of-screen coordinates are clamped rather than
// forwarded (the paper's example random event `input tap -8803.85 4668.17`
// does not crash anything).
func (s *Shell) runInput(args []string) Result {
	if len(args) == 0 {
		return Result{Output: inputUsage, ExitCode: 1}
	}
	switch args[0] {
	case "tap":
		if len(args) != 3 {
			return Result{Output: "Error: tap requires exactly 2 coordinates", ExitCode: 1}
		}
		if _, _, ok := parseXY(args[1], args[2]); !ok {
			return Result{Output: "Error: invalid coordinates: " + args[1] + " " + args[2], ExitCode: 1}
		}
		// Clamped in-bounds tap: absorbed by the window manager.
		return Result{Output: ""}
	case "swipe":
		if len(args) != 5 && len(args) != 6 {
			return Result{Output: "Error: swipe requires 4 coordinates", ExitCode: 1}
		}
		if _, _, ok := parseXY(args[1], args[2]); !ok {
			return Result{Output: "Error: invalid coordinates", ExitCode: 1}
		}
		if _, _, ok := parseXY(args[3], args[4]); !ok {
			return Result{Output: "Error: invalid coordinates", ExitCode: 1}
		}
		return Result{Output: ""}
	case "text":
		if len(args) < 2 {
			return Result{Output: "Error: text requires an argument", ExitCode: 1}
		}
		return Result{Output: ""}
	case "keyevent":
		if len(args) != 2 {
			return Result{Output: "Error: keyevent requires a key code", ExitCode: 1}
		}
		if _, err := strconv.Atoi(args[1]); err != nil {
			// Key names like KEYCODE_HOME are also accepted.
			if !strings.HasPrefix(args[1], "KEYCODE_") {
				return Result{Output: "Error: invalid key code: " + args[1], ExitCode: 1}
			}
		}
		return Result{Output: ""}
	default:
		return Result{Output: "Error: unknown input source: " + args[0], ExitCode: 1}
	}
}

const inputUsage = "usage: input [tap|swipe|text|keyevent] ..."

// parseXY validates a coordinate pair, clamping into the screen like the
// input dispatcher does.
func parseXY(xs, ys string) (x, y float64, ok bool) {
	x, errX := strconv.ParseFloat(xs, 64)
	y, errY := strconv.ParseFloat(ys, 64)
	if errX != nil || errY != nil {
		return 0, 0, false
	}
	x = clamp(x, 0, screenW-1)
	y = clamp(y, 0, screenH-1)
	return x, y, true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// runLogcat implements the logcat subcommands QGJ's workflow uses:
//
//	logcat -c           clear the buffer
//	logcat [-d]         dump everything
//	logcat -s TAG ...   restrict to the given tags
//	logcat TAG:P ...    filterspecs (priority P = V/D/I/W/E/F, *:P for all)
func (s *Shell) runLogcat(args []string) Result {
	tags := map[string]bool{}
	minLevelByTag := map[string]logcat.Level{}
	var globalMin logcat.Level
	silencedDefault := false

	i := 0
	for i < len(args) {
		switch a := args[i]; a {
		case "-c":
			s.dev.Logcat().Clear()
			return Result{Output: ""}
		case "-d", "-v", "threadtime", "brief":
			// -d is implicit (we always dump and exit); format specifiers
			// are accepted and ignored — output is always threadtime.
		case "-s":
			silencedDefault = true
		default:
			if tag, prio, ok := strings.Cut(a, ":"); ok {
				lvl, err := parseLevel(prio)
				if err != nil {
					return Result{Output: "Invalid filter expression: " + a, ExitCode: 1}
				}
				if tag == "*" {
					globalMin = lvl
				} else {
					minLevelByTag[tag] = lvl
					silencedDefault = true
				}
			} else {
				tags[a] = true
			}
		}
		i++
	}

	var sb strings.Builder
	for _, e := range s.dev.Logcat().Snapshot() {
		if lvl, ok := minLevelByTag[e.Tag]; ok {
			if e.Level < lvl {
				continue
			}
		} else if silencedDefault && !tags[e.Tag] {
			continue
		}
		if globalMin != 0 && e.Level < globalMin {
			continue
		}
		sb.WriteString(e.Format())
		sb.WriteByte('\n')
	}
	return Result{Output: sb.String()}
}

func parseLevel(p string) (logcat.Level, error) {
	switch p {
	case "V":
		return logcat.Verbose, nil
	case "D":
		return logcat.Debug, nil
	case "I":
		return logcat.Info, nil
	case "W":
		return logcat.Warn, nil
	case "E":
		return logcat.Error, nil
	case "F":
		return logcat.Fatal, nil
	case "S":
		return logcat.Fatal + 1, nil // silence
	default:
		return 0, fmt.Errorf("adb: unknown priority %q", p)
	}
}
