package triage

import "repro/internal/intent"

// Oracle reports whether a candidate intent still reproduces the crash
// under reduction. The farm backs it with a freshly booted device per
// bucket; tests use plain predicates.
type Oracle func(*intent.Intent) bool

// maxMinimizePasses bounds the greedy fixpoint loop. Each pass can only
// remove fields, and an intent has at most a handful (action, data, type,
// categories, ≤5 extras), so two passes almost always converge; the bound
// is a defensive cap, not a tuning knob.
const maxMinimizePasses = 4

// Minimize greedily reduces a crashing intent: it tries to drop each extra,
// then the data URI, the MIME type, the categories, and finally the action,
// keeping every removal after which the oracle still reports a crash. The
// component is never dropped — QGJ fuzzes explicit intents and the target
// is the point. Passes repeat until a fixpoint (removals can unlock each
// other), bounded by a small constant.
//
// The original intent is never mutated. The second return value is the
// number of oracle invocations spent. If the unmodified intent does not
// reproduce (stateful crash), Minimize returns (nil, 1).
func Minimize(in *intent.Intent, crashes Oracle) (*intent.Intent, int) {
	trials := 0
	try := func(cand *intent.Intent) bool {
		trials++
		return crashes(cand)
	}
	cur := in.Clone()
	if !try(cur) {
		return nil, trials
	}
	for pass := 0; pass < maxMinimizePasses; pass++ {
		reduced := false
		// Extras first: FIC D attaches up to five and usually one (or none)
		// matters.
		for _, key := range cur.Extras.Keys() {
			cand := withoutExtra(cur, key)
			if try(cand) {
				cur = cand
				reduced = true
			}
		}
		if !cur.Data.IsZero() {
			cand := cur.Clone()
			cand.Data = intent.URI{}
			if try(cand) {
				cur = cand
				reduced = true
			}
		}
		if cur.Type != "" {
			cand := cur.Clone()
			cand.Type = ""
			if try(cand) {
				cur = cand
				reduced = true
			}
		}
		if len(cur.Categories) > 0 {
			cand := cur.Clone()
			cand.Categories = nil
			if try(cand) {
				cur = cand
				reduced = true
			}
		}
		if cur.Action != "" {
			cand := cur.Clone()
			cand.Action = ""
			if try(cand) {
				cur = cand
				reduced = true
			}
		}
		if !reduced {
			break
		}
	}
	return cur, trials
}

// withoutExtra clones in with one extra key removed (insertion order of the
// survivors preserved).
func withoutExtra(in *intent.Intent, key string) *intent.Intent {
	out := in.Clone()
	out.Extras = nil
	for _, k := range in.Extras.Keys() {
		if k == key {
			continue
		}
		v, _ := in.Extras.Get(k)
		out.PutExtra(k, v)
	}
	return out
}
