package triage

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/telemetry"
)

func streamCrash(class, frame string) *Crash {
	return &Crash{Classes: []string{class}, Frames: []string{frame}}
}

func TestStreamIncrementalUpdates(t *testing.T) {
	s := NewStream()
	npe, ise := "java.lang.NullPointerException", "java.lang.IllegalStateException"

	// Batch 1: two crashes in one bucket, one in another.
	s.Add([]*Crash{
		streamCrash(npe, "com.app.Main.onCreate"),
		streamCrash(npe, "com.app.Main.onCreate"),
		streamCrash(ise, "com.app.Sync.push"),
	})
	ups, cursor, closed := s.Since(0)
	if closed {
		t.Fatal("stream closed prematurely")
	}
	if len(ups) != 2 || cursor != 2 {
		t.Fatalf("after batch 1: %d updates, cursor %d; want 2, 2", len(ups), cursor)
	}
	for _, up := range ups {
		if !up.New {
			t.Errorf("bucket %016x not marked new on first sight", up.Hash)
		}
	}
	if ups[0].Count != 2 || ups[0].Class != npe {
		t.Errorf("first update = %+v, want count 2 class %s", ups[0], npe)
	}

	// Batch 2 grows the first bucket only; replay from the cursor sees
	// exactly one non-new update.
	s.Add([]*Crash{streamCrash(npe, "com.app.Main.onCreate")})
	ups, cursor2, _ := s.Since(cursor)
	if len(ups) != 1 || ups[0].New || ups[0].Count != 3 {
		t.Fatalf("after batch 2: ups=%+v", ups)
	}
	// A full replay returns the whole log.
	all, _, _ := s.Since(0)
	if len(all) != 3 {
		t.Fatalf("full replay has %d updates, want 3", len(all))
	}
	// Cursors beyond the log clamp instead of panicking.
	if ups, _, _ := s.Since(99); len(ups) != 0 {
		t.Fatalf("out-of-range cursor returned %d updates", len(ups))
	}

	// Totals match a one-shot Bucketize over the same crashes.
	snap := s.Snapshot()
	if snap.Crashes != 4 || snap.Unique() != 2 || snap.Buckets[0].Count != 3 {
		t.Fatalf("snapshot = crashes %d unique %d top %d", snap.Crashes, snap.Unique(), snap.Buckets[0].Count)
	}

	s.Close()
	if _, _, closed := s.Since(cursor2); !closed {
		t.Fatal("Since does not report closed")
	}
	// Adds after Close are dropped: a reclaimed lease's late upload must
	// not resurrect a finished campaign's stream.
	s.Add([]*Crash{streamCrash(npe, "com.app.Main.onCreate")})
	if ups, _, _ := s.Since(cursor2); len(ups) != 0 {
		t.Fatalf("add after close appended %d updates", len(ups))
	}
}

func TestStreamShipsExemplarOnce(t *testing.T) {
	s := NewStream()
	frame := "com.app.Main.onCreate"
	// First sighting has no reproducer intent attached.
	s.Add([]*Crash{streamCrash("java.lang.NullPointerException", frame)})
	ups, cursor, _ := s.Since(0)
	if len(ups) != 1 || ups[0].Exemplar != "" {
		t.Fatalf("first update = %+v, want no exemplar yet", ups)
	}

	// The second sighting carries the intent and a flight window: this
	// update ships them.
	it := &intent.Intent{Action: "android.intent.action.VIEW"}
	withIntent := streamCrash("java.lang.NullPointerException", frame)
	withIntent.Intent = it
	withIntent.Trace = "trace-1"
	withIntent.Flight = []telemetry.Event{{Seq: 1, Kind: telemetry.EventIntent}}
	s.Add([]*Crash{withIntent})
	ups, cursor, _ = s.Since(cursor)
	if len(ups) != 1 || ups[0].Exemplar == "" || ups[0].Trace != "trace-1" || len(ups[0].Flight) != 1 {
		t.Fatalf("exemplar update = %+v, want intent+flight attached", ups[0])
	}

	// Further growth never re-ships the exemplar payload.
	more := streamCrash("java.lang.NullPointerException", frame)
	more.Intent = it
	more.Flight = []telemetry.Event{{Seq: 1, Kind: telemetry.EventIntent}}
	s.Add([]*Crash{more})
	ups, _, _ = s.Since(cursor)
	if len(ups) != 1 || ups[0].Exemplar != "" || len(ups[0].Flight) != 0 {
		t.Fatalf("growth update = %+v, want bare count bump", ups[0])
	}
}

func TestStreamWaitWakesOnAddAndClose(t *testing.T) {
	s := NewStream()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ups, _, closed := s.Wait(context.Background(), 0)
		if len(ups) != 1 || closed {
			t.Errorf("Wait woke with ups=%d closed=%v, want 1 update on open stream", len(ups), closed)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	s.Add([]*Crash{streamCrash("java.lang.NullPointerException", "com.app.Main.onCreate")})
	wg.Wait()

	// A waiter past the end of the log wakes on Close.
	_, cursor, _ := s.Since(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ups, _, closed := s.Wait(context.Background(), cursor)
		if len(ups) != 0 || !closed {
			t.Errorf("Wait after close: ups=%d closed=%v, want closed with no updates", len(ups), closed)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	wg.Wait()

	// A cancelled context returns immediately with whatever exists.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ups, _, _ := s.Wait(ctx, 99)
	if len(ups) != 0 {
		t.Fatalf("cancelled Wait returned %d updates", len(ups))
	}
}

// TestStreamMatchesBucketize: however crashes are batched, a finished
// stream's snapshot agrees with the one-shot Bucketize pass over the same
// records (minimizer fields aside).
func TestStreamMatchesBucketize(t *testing.T) {
	crashes := []*Crash{
		streamCrash("java.lang.NullPointerException", "com.app.Main.onCreate"),
		streamCrash("java.lang.NullPointerException", "com.app.Main.onCreate"),
		streamCrash("java.lang.IllegalStateException", "com.app.Sync.push"),
		{Kind: KindANR, Process: "com.app", Component: "com.app/.Main"},
		streamCrash("java.lang.SecurityException", "com.app.Guard.check"),
	}
	want := Bucketize(crashes)

	// Feed the stream in three uneven batches (shard-completion order).
	s := NewStream()
	s.Add(crashes[:1])
	s.Add(crashes[1:4])
	s.Add(crashes[4:])
	got := s.Snapshot()

	if got.Crashes != want.Crashes || got.ANRs != want.ANRs || got.Unique() != want.Unique() {
		t.Fatalf("stream totals (%d, %d, %d) != bucketize (%d, %d, %d)",
			got.Crashes, got.ANRs, got.Unique(), want.Crashes, want.ANRs, want.Unique())
	}
	for i := range want.Buckets {
		g, w := got.Buckets[i], want.Buckets[i]
		if g.Hash != w.Hash || g.Count != w.Count || g.Class != w.Class || g.Frame != w.Frame {
			t.Errorf("bucket %d: stream %+v != bucketize %+v", i, g, w)
		}
	}
	if !reflect.DeepEqual(bucketHashes(got), bucketHashes(want)) {
		t.Errorf("bucket order differs: %v vs %v", bucketHashes(got), bucketHashes(want))
	}
}

func bucketHashes(r *Result) []uint64 {
	out := make([]uint64, len(r.Buckets))
	for i, b := range r.Buckets {
		out[i] = b.Hash
	}
	return out
}
