package triage

import (
	"strings"
	"testing"

	"repro/internal/intent"
	"repro/internal/logcat"
	"repro/internal/telemetry"
)

func crash(class, frame string) *Crash {
	return &Crash{Classes: []string{class}, Frames: []string{frame}}
}

func TestBucketizeStackHash(t *testing.T) {
	npe := "java.lang.NullPointerException"
	ise := "java.lang.IllegalStateException"
	frameA := "com.app.Main.onCreate"
	frameB := "com.app.Sync.push"

	cases := []struct {
		name    string
		crashes []*Crash
		unique  int
		// topCount is the count of the most frequent bucket.
		topCount int
	}{
		{
			name: "same root frame collapses regardless of message or process",
			crashes: []*Crash{
				{Process: "com.app", Classes: []string{npe}, Frames: []string{frameA, frameB}},
				{Process: "com.app:remote", Classes: []string{npe}, Frames: []string{frameA}},
				{Process: "com.other", Classes: []string{npe}, Frames: []string{frameA, "x.Y.z"}},
			},
			unique:   1,
			topCount: 3,
		},
		{
			name: "wrapper exceptions do not split buckets",
			crashes: []*Crash{
				{Classes: []string{"java.lang.RuntimeException", npe}, Frames: []string{frameA}},
				{Classes: []string{npe}, Frames: []string{frameA}},
			},
			unique:   1,
			topCount: 2,
		},
		{
			name:     "different root frame splits",
			crashes:  []*Crash{crash(npe, frameA), crash(npe, frameB)},
			unique:   2,
			topCount: 1,
		},
		{
			name:     "different root class splits",
			crashes:  []*Crash{crash(npe, frameA), crash(ise, frameA)},
			unique:   2,
			topCount: 1,
		},
		{
			name:     "empty input",
			crashes:  nil,
			unique:   0,
			topCount: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Bucketize(tc.crashes)
			if res.Crashes != len(tc.crashes) {
				t.Fatalf("Crashes = %d, want %d", res.Crashes, len(tc.crashes))
			}
			if res.Unique() != tc.unique {
				t.Fatalf("Unique = %d, want %d", res.Unique(), tc.unique)
			}
			if tc.unique > 0 && res.Buckets[0].Count != tc.topCount {
				t.Fatalf("top bucket count = %d, want %d", res.Buckets[0].Count, tc.topCount)
			}
		})
	}
}

func TestBucketizeOrderAndExemplar(t *testing.T) {
	withIntent := crash("java.lang.NullPointerException", "a.B.c")
	withIntent.Intent = &intent.Intent{Action: "android.intent.action.VIEW"}
	crashes := []*Crash{
		crash("java.lang.NullPointerException", "a.B.c"), // no intent
		withIntent, // same bucket, carries a reproducer
		crash("z.util.ZException", "z.Z.z"),
		crash("a.util.AException", "a.A.a"),
	}
	res := Bucketize(crashes)
	if res.Unique() != 3 {
		t.Fatalf("Unique = %d, want 3", res.Unique())
	}
	// Most frequent first; ties break by class name.
	if res.Buckets[0].Count != 2 || res.Buckets[0].Class != "java.lang.NullPointerException" {
		t.Fatalf("bucket 0 = %+v", res.Buckets[0])
	}
	if res.Buckets[1].Class != "a.util.AException" || res.Buckets[2].Class != "z.util.ZException" {
		t.Fatalf("tie-break order wrong: %q then %q", res.Buckets[1].Class, res.Buckets[2].Class)
	}
	// The exemplar upgrades to the first crash carrying a reproducer intent.
	if res.Buckets[0].Exemplar != withIntent {
		t.Fatal("exemplar must prefer a crash with a reproducer intent")
	}
}

// entries builds a synthetic FATAL EXCEPTION block the way
// wearos.crashProcess emits it, followed by the ActivityManager death line.
func crashEntries(pid int, process string, trace []string) []logcat.Entry {
	lines := append([]string{
		"FATAL EXCEPTION: main",
		"Process: " + process + ", PID: 3",
	}, trace...)
	var out []logcat.Entry
	for _, l := range lines {
		out = append(out, logcat.Entry{PID: pid, Level: logcat.Error, Tag: logcat.TagAndroidRuntime, Message: l})
	}
	out = append(out, logcat.Entry{PID: 1000, Level: logcat.Info, Tag: logcat.TagActivityManager,
		Message: "Process " + process + " (pid " + itoa(pid) + ") has died"})
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestCollectorReassemblesCausedByChain(t *testing.T) {
	c := NewCollector()
	c.ConsumeAll(crashEntries(42, "com.app", []string{
		"java.lang.RuntimeException: Unable to start activity",
		"\tat android.app.ActivityThread.performLaunchActivity(ActivityThread.java:2817)",
		"Caused by: java.lang.NullPointerException: uri must not be null",
		"\tat com.app.Main.onCreate(Main.java:51)",
		"\tat android.app.Activity.performCreate(Activity.java:6679)",
	}))
	got := c.Crashes()
	if len(got) != 1 {
		t.Fatalf("crashes = %d, want 1", len(got))
	}
	cr := got[0]
	if cr.Process != "com.app" {
		t.Fatalf("process = %q", cr.Process)
	}
	if cr.RootClass() != "java.lang.NullPointerException" {
		t.Fatalf("root class = %q", cr.RootClass())
	}
	// Frames belong to the root-cause section only, normalized.
	if cr.RootFrame() != "com.app.Main.onCreate" {
		t.Fatalf("root frame = %q", cr.RootFrame())
	}
	if len(cr.Frames) != 2 || cr.Frames[1] != "android.app.Activity.performCreate" {
		t.Fatalf("frames = %v", cr.Frames)
	}
}

func TestCollectorInterleavedPIDsAndAttachIntent(t *testing.T) {
	c := NewCollector()
	a := crashEntries(10, "com.a", []string{
		"java.lang.NullPointerException: x",
		"\tat com.a.A.run(A.java:1)",
	})
	b := crashEntries(20, "com.b", []string{
		"java.lang.IllegalStateException: y",
		"\tat com.b.B.run(B.java:2)",
	})
	// Interleave the two blocks: runtime lines of both, then both deaths.
	var mixed []logcat.Entry
	for i := 0; i < len(a)-1; i++ {
		mixed = append(mixed, a[i], b[i])
	}
	mixed = append(mixed, a[len(a)-1]) // com.a dies first
	c.ConsumeAll(mixed)

	in := &intent.Intent{Action: "android.intent.action.MAIN"}
	if !c.AttachIntent(in) {
		t.Fatal("AttachIntent must pair with the finalized com.a crash")
	}
	// A second attach before the next crash finalizes must not overwrite
	// the existing pairing.
	if c.AttachIntent(&intent.Intent{Action: "other"}) {
		t.Fatal("AttachIntent must refuse when the last record already has an intent")
	}
	c.ConsumeAll(b[len(b)-1:]) // com.b dies

	got := c.Crashes()
	if len(got) != 2 {
		t.Fatalf("crashes = %d, want 2", len(got))
	}
	if got[0].Process != "com.a" || got[0].Intent == nil || got[0].Intent.Action != in.Action {
		t.Fatalf("crash 0 = %+v", got[0])
	}
	if got[0].Intent == in {
		t.Fatal("AttachIntent must clone, not alias, the injected intent")
	}
	if got[1].Process != "com.b" || got[1].Intent != nil {
		t.Fatalf("crash 1 = %+v", got[1])
	}
}

func TestCollectorANRRecords(t *testing.T) {
	c := NewCollector()
	// The two lines wearos.settle emits for an ANR, followed by an
	// unrelated crash so ordering of c.last is exercised.
	c.Consume(logcat.Entry{PID: 1000, Level: logcat.Error, Tag: logcat.TagActivityManager,
		Message: "ANR in com.app (com.app/com.app.Main)"})
	c.Consume(logcat.Entry{PID: 1000, Level: logcat.Error, Tag: logcat.TagActivityManager,
		Message: "Reason: Input dispatching timed out (Waiting to send non-key event because the touched window has not finished processing certain input events)"})

	in := &intent.Intent{Action: "android.intent.action.VIEW"}
	if !c.AttachIntent(in) {
		t.Fatal("AttachIntent must pair with the finalized ANR record")
	}
	if !c.AttachFlight("A/com.app", []telemetry.Event{{Seq: 1, Kind: telemetry.EventVerdict, Detail: "anr"}}) {
		t.Fatal("AttachFlight must pair with the finalized ANR record")
	}
	if c.AttachFlight("A/com.app", []telemetry.Event{{Seq: 2}}) {
		t.Fatal("AttachFlight must refuse when the last record already has a window")
	}

	c.ConsumeAll(crashEntries(10, "com.app", []string{
		"java.lang.NullPointerException: x",
		"\tat com.app.A.run(A.java:1)",
	}))

	got := c.Crashes()
	if len(got) != 2 {
		t.Fatalf("records = %d, want ANR + crash", len(got))
	}
	anr := got[0]
	if !anr.IsANR() || anr.Process != "com.app" || anr.Component != "com.app/com.app.Main" {
		t.Fatalf("ANR record = %+v", anr)
	}
	if anr.Intent == nil || anr.Trace != "A/com.app" || len(anr.Flight) != 1 {
		t.Fatalf("ANR record missing attachments: %+v", anr)
	}
	if got[1].IsANR() {
		t.Fatalf("crash record mis-kinded: %+v", got[1])
	}
	if anr.Hash() == got[1].Hash() {
		t.Fatal("ANR and crash must not share a bucket")
	}

	res := Bucketize(got)
	if res.Crashes != 2 || res.ANRs != 1 || res.Unique() != 2 {
		t.Fatalf("result = %+v", res)
	}
	for _, b := range res.Buckets {
		if b.Kind == KindANR {
			if b.Class != "ANR" || b.Frame != "com.app/com.app.Main" {
				t.Fatalf("ANR bucket signature = %q/%q", b.Class, b.Frame)
			}
		}
	}
}

func TestCollectorIgnoresDeathWithoutBlock(t *testing.T) {
	c := NewCollector()
	c.Consume(logcat.Entry{PID: 1000, Tag: logcat.TagActivityManager,
		Message: "Process com.idle (pid 77) has died"})
	if len(c.Crashes()) != 0 {
		t.Fatal("a death without a FATAL EXCEPTION block is not a crash record")
	}
}

func TestMinimizeConvergesOnKnownCrash(t *testing.T) {
	// The crash reproduces iff action == "X" and extra "k" is present;
	// everything else is removable junk.
	in := &intent.Intent{
		Action:     "X",
		Type:       "text/plain",
		Categories: []string{"android.intent.category.DEFAULT"},
		Data:       intent.URI{Scheme: "content", Host: "junk"},
		Component:  intent.ComponentName{Package: "com.app", Class: "com.app.Main"},
	}
	in.PutExtra("junk1", intent.StringValue("a"))
	in.PutExtra("k", intent.StringValue("trigger"))
	in.PutExtra("junk2", intent.StringValue("b"))

	oracle := func(cand *intent.Intent) bool {
		_, hasK := cand.Extras.Get("k")
		return cand.Action == "X" && hasK
	}
	min, trials := Minimize(in, oracle)
	if min == nil {
		t.Fatal("minimizer lost a reproducing intent")
	}
	if !oracle(min) {
		t.Fatalf("minimized intent does not reproduce: %v", min)
	}
	if got := min.Extras.Keys(); len(got) != 1 || got[0] != "k" {
		t.Fatalf("extras after minimization = %v, want [k]", got)
	}
	if min.Type != "" || len(min.Categories) != 0 || !min.Data.IsZero() {
		t.Fatalf("removable fields survived: %+v", min)
	}
	if min.Action != "X" {
		t.Fatalf("load-bearing action dropped: %q", min.Action)
	}
	if min.Component != in.Component {
		t.Fatal("component must never be dropped")
	}
	// Greedy over ≤8 removable elements across ≤4 passes stays small.
	if trials < 2 || trials > 40 {
		t.Fatalf("trials = %d, outside sane bounds", trials)
	}
	// The input intent must be untouched.
	if got := in.Extras.Keys(); len(got) != 3 {
		t.Fatalf("input intent mutated: extras = %v", got)
	}
}

func TestMinimizeNonReproducing(t *testing.T) {
	in := &intent.Intent{Action: "X"}
	min, trials := Minimize(in, func(*intent.Intent) bool { return false })
	if min != nil {
		t.Fatal("a non-reproducing intent must minimize to nil")
	}
	if trials != 1 {
		t.Fatalf("trials = %d, want exactly the initial check", trials)
	}
}

func TestMinimizeBareIntentStaysBare(t *testing.T) {
	in := &intent.Intent{Component: intent.ComponentName{Package: "p", Class: "p.C"}}
	min, _ := Minimize(in, func(cand *intent.Intent) bool { return true })
	if min == nil || min.Component != in.Component {
		t.Fatalf("min = %+v", min)
	}
	if min.Action != "" || len(min.Extras.Keys()) != 0 {
		t.Fatalf("bare intent grew fields: %+v", min)
	}
}

func TestNormalizeFrame(t *testing.T) {
	cases := map[string]string{
		"\tat com.foo.Bar.baz(Bar.java:42)": "com.foo.Bar.baz",
		"at com.foo.Bar.baz(Native Method)": "com.foo.Bar.baz",
		"\tat com.foo.Bar.baz":              "com.foo.Bar.baz",
	}
	for in, want := range cases {
		got, ok := normalizeFrame(in)
		if !ok || got != want {
			t.Fatalf("normalizeFrame(%q) = %q, %v; want %q", in, got, ok, want)
		}
	}
	if _, ok := normalizeFrame("\tat ("); ok {
		t.Fatal("empty frame must not normalize")
	}
	if strings.TrimSpace("") != "" {
		t.Fatal("unreachable")
	}
}
