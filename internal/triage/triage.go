// Package triage deduplicates and reduces the crashes a fuzzing campaign
// produces. Million-intent campaigns generate far more FATAL EXCEPTION
// blocks than defects: the same root cause fires once per delivery. Large
// fault-injection studies on Android (Cotroneo et al.) make their results
// analyzable by bucketing failures by stack signature and reporting unique
// counts next to raw counts; this package implements that pipeline for the
// reproduction: a streaming logcat collector that reassembles crash records,
// stack-hash bucketing (root exception class + root stack frame), exemplar
// selection, and a greedy intent minimizer that drops extras and fields
// while the crash still reproduces.
package triage

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/telemetry"
)

// Failure record kinds (Crash.Kind). The fault kinds are the graded
// verdicts of the fault-injection campaign (FIC F); their values must match
// internal/faultinject's verdict strings, which arrive here through the
// FaultInject VERDICT logcat line.
const (
	KindCrash = "crash"
	KindANR   = "anr"
	// KindStall: a fault window manifested as timeouts/hangs.
	KindStall = "stall"
	// KindSilentDrop: no error surfaced but data was lost or frozen.
	KindSilentDrop = "silent-drop"
	// KindFailedRecovery: the subsystem stayed unhealthy after the fault
	// window ended.
	KindFailedRecovery = "failed-recovery"
	// KindDegraded: the subsystem failed visibly during the window and
	// recovered after it — graceful degradation.
	KindDegraded = "degraded-recovered"
)

// Crash is one reassembled failure record: a FATAL EXCEPTION occurrence or
// an ANR (the type name predates ANR support; both flow through the same
// bucketing pipeline, mirroring how the paper counts both manifestations).
type Crash struct {
	// Kind discriminates the record: KindCrash (or "", for records built
	// before ANRs became first-class) versus KindANR.
	Kind string
	// Process is the failing process name (from the "Process: <name>, PID"
	// trace line for crashes, the "ANR in <proc>" line for ANRs).
	Process string
	// Component is the flat component name the ANR line attributes
	// ("ANR in proc (component)"); empty for crash records, whose identity
	// is the stack, not the component.
	Component string
	// Classes lists the exception chain classes, outermost wrapper first,
	// root cause last — the order ART prints them. Empty for ANRs.
	Classes []string
	// Frames are the root-cause exception's stack frames, innermost first,
	// normalized to "pkg.Class.method" (file/line stripped: line numbers
	// shift between builds, the frame identity does not).
	Frames []string
	// Fault is the injected fault kind behind a fault-verdict record
	// ("binder-dead", "sensor-stall", ...); empty for crashes and ANRs.
	Fault string
	// Intent, when non-nil, is the injected intent that produced this crash
	// (attached by the injector's Observe hook; reproducer for the
	// minimizer).
	Intent *intent.Intent
	// Trace is the campaign trace ID active when the failure happened
	// (attached with Flight).
	Trace string
	// Flight is the flight-recorder window snapshotted at the failure:
	// the structured events leading up to and ending at it.
	Flight []telemetry.Event
}

// IsANR reports whether the record is an ANR rather than a crash.
func (c *Crash) IsANR() bool { return c.Kind == KindANR }

// IsFault reports whether the record is a graded fault-injection verdict
// rather than an exception-style failure.
func (c *Crash) IsFault() bool {
	switch c.Kind {
	case KindStall, KindSilentDrop, KindFailedRecovery, KindDegraded:
		return true
	}
	return false
}

// RootClass returns the root-cause exception class ("" for an empty record).
func (c *Crash) RootClass() string {
	if len(c.Classes) == 0 {
		return ""
	}
	return c.Classes[len(c.Classes)-1]
}

// RootFrame returns the top frame of the root-cause exception ("" when the
// trace carried no frames).
func (c *Crash) RootFrame() string {
	if len(c.Frames) == 0 {
		return ""
	}
	return c.Frames[0]
}

// Hash is the record's bucket signature. Crashes hash FNV-64a over the
// root exception class and the root stack frame: two crashes with the same
// root frame bucket together regardless of message text, wrapper
// exceptions, or which component crashed. ANRs have no stack; they hash
// over the "anr" sentinel and the wedged component, so each component that
// ANRs gets its own bucket. Fault verdicts hash over (verdict, fault, app),
// so each (fault, app) pair buckets per graded outcome. Crash and ANR
// hashes are unchanged by fault support.
func (c *Crash) Hash() uint64 {
	h := fnv.New64a()
	if c.IsANR() {
		_, _ = h.Write([]byte(KindANR))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(c.Component))
		return h.Sum64()
	}
	if c.IsFault() {
		_, _ = h.Write([]byte(c.Kind))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(c.Fault))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(c.Process))
		return h.Sum64()
	}
	_, _ = h.Write([]byte(c.RootClass()))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(c.RootFrame()))
	return h.Sum64()
}

// Bucket is one deduplicated failure signature.
type Bucket struct {
	Hash  uint64
	Count int
	// Kind mirrors the exemplar's record kind (KindCrash / KindANR).
	Kind string
	// Class and Frame are the shared root signature. ANR buckets, which
	// have no stack, show "ANR" and the wedged component instead.
	Class string
	Frame string
	// Exemplar is the first crash (in input order) that hit this bucket.
	Exemplar *Crash
	// Minimized is the reduced reproducer (set by a Minimize pass; nil when
	// the exemplar carried no intent or did not reproduce).
	Minimized *intent.Intent
	// Trials counts oracle invocations the minimizer spent on this bucket.
	Trials int
	// Reproduced reports whether the exemplar intent re-triggered the same
	// bucket on a fresh device.
	Reproduced bool
}

// Result is the outcome of a triage pass over a campaign's failures.
type Result struct {
	// Crashes is the raw failure record count — FATAL EXCEPTION events plus
	// ANRs plus fault verdicts — so Unique() <= Crashes always holds.
	Crashes int
	// ANRs is how many of those records are ANRs.
	ANRs int
	// Faults is how many of those records are graded fault-injection
	// verdicts (FIC F).
	Faults int
	// Buckets are the unique signatures, most frequent first (class, frame,
	// hash break ties deterministically).
	Buckets []Bucket
}

// Unique returns the number of distinct crash signatures.
func (r *Result) Unique() int {
	if r == nil {
		return 0
	}
	return len(r.Buckets)
}

// Bucketize groups crashes by stack hash. Exemplars are chosen by input
// order (first occurrence wins), preferring an exemplar that carries a
// reproducer intent; output order is deterministic for any permutation-free
// input order.
func Bucketize(crashes []*Crash) *Result {
	byHash := make(map[uint64]*Bucket)
	var order []uint64
	anrs, faults := 0, 0
	for _, c := range crashes {
		if c.IsANR() {
			anrs++
		}
		if c.IsFault() {
			faults++
		}
		h := c.Hash()
		b, ok := byHash[h]
		if !ok {
			b = &Bucket{Hash: h, Kind: c.Kind, Class: c.RootClass(), Frame: c.RootFrame(), Exemplar: c}
			if c.IsANR() {
				b.Class, b.Frame = "ANR", c.Component
			}
			if c.IsFault() {
				// Fault buckets have no stack either: show the injected fault
				// kind where crashes show the exception class, and the app
				// the verdict was graded against where crashes show a frame.
				b.Class, b.Frame = c.Fault, c.Process
			}
			byHash[h] = b
			order = append(order, h)
		}
		b.Count++
		// Upgrade the exemplar to the first crash with a reproducer.
		if b.Exemplar.Intent == nil && c.Intent != nil {
			b.Exemplar = c
		}
	}
	out := &Result{Crashes: len(crashes), ANRs: anrs, Faults: faults}
	for _, h := range order {
		out.Buckets = append(out.Buckets, *byHash[h])
	}
	sortBuckets(out.Buckets)
	return out
}

// sortBuckets orders buckets most-frequent first with deterministic
// tie-breaks (class, frame, hash) — shared by Bucketize and Stream.Snapshot.
func sortBuckets(buckets []Bucket) {
	sort.SliceStable(buckets, func(i, j int) bool {
		bi, bj := &buckets[i], &buckets[j]
		if bi.Count != bj.Count {
			return bi.Count > bj.Count
		}
		if bi.Class != bj.Class {
			return bi.Class < bj.Class
		}
		if bi.Frame != bj.Frame {
			return bi.Frame < bj.Frame
		}
		return bi.Hash < bj.Hash
	})
}

// block is one in-flight FATAL EXCEPTION reassembly.
type block struct {
	process string
	classes []string
	// frames holds the frames of the *current* (most recently opened)
	// exception section; each new "Caused by:" header resets it, so when the
	// block finalizes it holds the root cause's frames.
	frames []string
}

// Collector is a streaming crash reassembler; it implements logcat.Sink so
// it can run next to the analysis collector on a live device buffer, and can
// equally consume pulled dumps via ConsumeAll.
type Collector struct {
	crashes []*Crash
	blocks  map[int]*block // by PID
	last    *Crash         // most recently finalized record
}

var _ logcat.Sink = (*Collector)(nil)

// NewCollector returns an empty streaming crash collector.
func NewCollector() *Collector {
	return &Collector{blocks: make(map[int]*block)}
}

// Crashes returns the finalized records in log order. The collector keeps
// ownership of the slice.
func (c *Collector) Crashes() []*Crash { return c.crashes }

// AttachIntent pairs the injected intent with the most recently finalized
// crash record, when that record does not already carry one. The injector's
// Observe hook calls this right after a delivery settles as a crash: the
// simulation is synchronous, so the last FATAL EXCEPTION block belongs to
// that intent. The intent is cloned; ok reports whether a record took it.
func (c *Collector) AttachIntent(in *intent.Intent) bool {
	if c.last == nil || c.last.Intent != nil || in == nil {
		return false
	}
	c.last.Intent = in.Clone()
	return true
}

// AttachFlight pairs a flight-recorder window (and its trace ID) with the
// most recently finalized record, when that record does not already carry
// one — same contract and timing as AttachIntent. The caller hands over
// ownership of events (Recorder.Window already returns a private copy).
func (c *Collector) AttachFlight(trace string, events []telemetry.Event) bool {
	if c.last == nil || c.last.Flight != nil || len(events) == 0 {
		return false
	}
	c.last.Trace = trace
	c.last.Flight = events
	return true
}

// ConsumeAll feeds a slice of entries (a pulled logcat dump) in order.
func (c *Collector) ConsumeAll(entries []logcat.Entry) {
	for _, e := range entries {
		c.Consume(e)
	}
}

// Consume implements logcat.Sink.
func (c *Collector) Consume(e logcat.Entry) {
	// Triage only reads FATAL EXCEPTION blocks and process-death notices,
	// which are always logged eagerly; lazily rendered dispatch traffic
	// cannot match and is skipped without touching its text.
	if e.Payload.Op != logcat.MsgEager {
		return
	}
	switch e.Tag {
	case logcat.TagAndroidRuntime:
		c.consumeRuntime(e)
	case logcat.TagActivityManager:
		switch {
		case strings.HasPrefix(e.Message, "Process ") && strings.Contains(e.Message, "has died"):
			c.finalize(diedPID(e.Message))
		case strings.HasPrefix(e.Message, "ANR in "):
			c.consumeANR(e.Message)
		}
	case logcat.TagFaultInject:
		if strings.HasPrefix(e.Message, "VERDICT ") {
			c.consumeFaultVerdict(e.Message)
		}
	}
}

// consumeFaultVerdict parses the fault engine's graded-outcome line
// ("VERDICT verdict=<v> fault=<k> target=<t> app=<pkg> window=<a>-<b>
// probes=<f>/<n>") into a finalized fault record. Like ANRs these are
// single-line and complete (attachable) immediately.
func (c *Collector) consumeFaultVerdict(msg string) {
	var verdict, fault, target, app string
	for _, f := range strings.Fields(msg) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "verdict":
			verdict = v
		case "fault":
			fault = v
		case "target":
			target = v
		case "app":
			app = v
		}
	}
	if verdict == "" || fault == "" {
		return
	}
	rec := &Crash{Kind: verdict, Fault: fault, Process: app, Component: target}
	if !rec.IsFault() {
		return
	}
	c.crashes = append(c.crashes, rec)
	c.last = rec
}

// consumeANR turns an "ANR in <proc> (<component>)" line into a finalized
// ANR record. Unlike crashes, ANRs are single-line: there is no block to
// reassemble, so the record is complete (and attachable) immediately.
func (c *Collector) consumeANR(msg string) {
	rest := strings.TrimPrefix(msg, "ANR in ")
	proc, comp, ok := strings.Cut(rest, " (")
	if !ok {
		return
	}
	comp = strings.TrimSuffix(comp, ")")
	if proc == "" || comp == "" {
		return
	}
	rec := &Crash{Kind: KindANR, Process: proc, Component: comp}
	c.crashes = append(c.crashes, rec)
	c.last = rec
}

func (c *Collector) consumeRuntime(e logcat.Entry) {
	msg := e.Message
	if msg == "FATAL EXCEPTION: main" {
		c.blocks[e.PID] = &block{}
		return
	}
	blk, ok := c.blocks[e.PID]
	if !ok {
		return
	}
	switch {
	case strings.HasPrefix(msg, "Process: "):
		// "Process: <name>, PID: <n>"
		rest := strings.TrimPrefix(msg, "Process: ")
		name, _, _ := strings.Cut(rest, ",")
		blk.process = strings.TrimSpace(name)
	case strings.HasPrefix(msg, "\tat ") || strings.HasPrefix(msg, "at "):
		if f, ok := normalizeFrame(msg); ok {
			blk.frames = append(blk.frames, f)
		}
	default:
		if class, _, ok := javalang.ParseHeader(msg); ok {
			blk.classes = append(blk.classes, string(class))
			// A new exception section starts: the frames that follow belong
			// to it, so the root cause (last section) ends up owning frames.
			blk.frames = nil
		}
	}
}

func (c *Collector) finalize(pid int) {
	blk, ok := c.blocks[pid]
	if !ok || pid <= 0 {
		return
	}
	delete(c.blocks, pid)
	if len(blk.classes) == 0 {
		return
	}
	rec := &Crash{Kind: KindCrash, Process: blk.process, Classes: blk.classes, Frames: blk.frames}
	c.crashes = append(c.crashes, rec)
	c.last = rec
}

// normalizeFrame reduces an ART frame line to its "pkg.Class.method"
// identity: "\tat com.foo.Bar.baz(Bar.java:42)" -> "com.foo.Bar.baz".
func normalizeFrame(line string) (string, bool) {
	s := strings.TrimSpace(line)
	s = strings.TrimPrefix(s, "at ")
	if i := strings.IndexByte(s, '('); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return "", false
	}
	return s, true
}

func diedPID(msg string) int {
	i := strings.Index(msg, "(pid ")
	if i < 0 {
		return 0
	}
	rest := msg[i+len("(pid "):]
	j := strings.IndexByte(rest, ')')
	if j < 0 {
		return 0
	}
	pid, err := strconv.Atoi(rest[:j])
	if err != nil {
		return 0
	}
	return pid
}
