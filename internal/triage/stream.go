// Incremental bucket streaming: the farm service wants triage buckets on
// the wire as shard results land, not only in the final merged report. A
// Stream folds batches of crash records (one batch per completed shard)
// into the same stack-hash buckets Bucketize builds and publishes an
// append-only update log that HTTP handlers replay from any cursor —
// long-poll or chunked, both reduce to "give me everything after N".
//
// The stream is a live view, not the scientific record: batches arrive in
// shard *completion* order, so counts observed mid-run depend on worker
// scheduling. The canonical, deterministic triage result is still produced
// by the post-merge Bucketize pass over canonical shard order; a finished
// stream and the final result agree on the bucket set and totals, just not
// on discovery order.
package triage

import (
	"context"
	"sync"

	"repro/internal/telemetry"
)

// BucketUpdate is one entry of the stream's update log: a bucket was born
// or grew. Updates carry everything a dashboard needs to render the bucket
// without a second request — including, on first sight, the exemplar's
// reproducer intent and flight-recorder window.
type BucketUpdate struct {
	// Cursor is this update's position in the log (first update = 1).
	// Replays are exclusive: Since(c) returns updates with Cursor > c.
	Cursor int `json:"cursor"`
	// Hash is the bucket's stack signature (Crash.Hash).
	Hash uint64 `json:"hash"`
	// New marks the bucket's first occurrence.
	New bool `json:"new,omitempty"`
	// Kind, Class, Frame mirror Bucket's signature fields.
	Kind  string `json:"kind,omitempty"`
	Class string `json:"class"`
	Frame string `json:"frame,omitempty"`
	// Count is the bucket's cumulative size after this update.
	Count int `json:"count"`
	// Exemplar renders the first reproducer intent seen for the bucket
	// (set when New, or on the update that first attaches one).
	Exemplar string `json:"exemplar,omitempty"`
	// Trace and Flight are the exemplar's flight-recorder forensics,
	// attached on the same update that carries the exemplar.
	Trace  string            `json:"trace,omitempty"`
	Flight []telemetry.Event `json:"flight,omitempty"`
}

// Stream folds crash batches into buckets incrementally and logs one
// update per batch-and-bucket. Safe for concurrent producers (shard
// completions) and consumers (HTTP watchers).
type Stream struct {
	mu     sync.Mutex
	byHash map[uint64]*Bucket
	order  []uint64 // discovery order, for Snapshot
	// announced tracks per-bucket shipping state (see the *Sent consts) so
	// each exemplar's flight window crosses the wire exactly once.
	announced map[uint64]int
	crashes   int
	anrs      int
	log       []BucketUpdate
	closed    bool
	// waiters are woken (channel close) whenever the log grows or the
	// stream closes.
	waiters []chan struct{}
}

// NewStream returns an empty triage stream.
func NewStream() *Stream {
	return &Stream{byHash: make(map[uint64]*Bucket), announced: make(map[uint64]int)}
}

// Add folds one batch of crash records (typically one shard's crashes)
// into the buckets and appends one update per touched bucket. Empty
// batches append nothing and wake nobody.
func (s *Stream) Add(crashes []*Crash) {
	if len(crashes) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	touched := make(map[uint64]bool)
	var touchOrder []uint64
	for _, c := range crashes {
		s.crashes++
		if c.IsANR() {
			s.anrs++
		}
		h := c.Hash()
		b, ok := s.byHash[h]
		if !ok {
			b = &Bucket{Hash: h, Kind: c.Kind, Class: c.RootClass(), Frame: c.RootFrame(), Exemplar: c}
			if c.IsANR() {
				b.Class, b.Frame = "ANR", c.Component
			}
			s.byHash[h] = b
			s.order = append(s.order, h)
		}
		b.Count++
		if b.Exemplar.Intent == nil && c.Intent != nil {
			b.Exemplar = c
		}
		if !touched[h] {
			touched[h] = true
			touchOrder = append(touchOrder, h)
		}
	}
	for _, h := range touchOrder {
		b := s.byHash[h]
		up := BucketUpdate{
			Cursor: len(s.log) + 1,
			Hash:   h,
			New:    s.announced[h] == 0,
			Kind:   b.Kind,
			Class:  b.Class,
			Frame:  b.Frame,
			Count:  b.Count,
		}
		// Ship the exemplar (intent + flight window) the first time the
		// bucket has one to ship.
		if s.announced[h] < exemplarSent && b.Exemplar != nil && b.Exemplar.Intent != nil {
			up.Exemplar = b.Exemplar.Intent.String()
			up.Trace = b.Exemplar.Trace
			up.Flight = b.Exemplar.Flight
			s.announced[h] = exemplarSent
		} else if s.announced[h] == 0 {
			s.announced[h] = bucketSent
		}
		s.log = append(s.log, up)
	}
	s.wakeLocked()
}

// announced states (zero value = bucket never announced).
const (
	bucketSent   = 1 // bucket announced, exemplar not yet shipped
	exemplarSent = 2 // exemplar intent + flight shipped
)

// Since returns every update after cursor plus the new cursor and whether
// the stream is closed (no further updates will ever arrive).
func (s *Stream) Since(cursor int) ([]BucketUpdate, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(s.log) {
		cursor = len(s.log)
	}
	ups := make([]BucketUpdate, len(s.log)-cursor)
	copy(ups, s.log[cursor:])
	return ups, len(s.log), s.closed
}

// Wait blocks until an update after cursor exists, the stream closes, or
// ctx is done; it then behaves as Since. The returned closed flag lets a
// long-poll handler distinguish "no news yet" from "campaign over".
func (s *Stream) Wait(ctx context.Context, cursor int) ([]BucketUpdate, int, bool) {
	for {
		s.mu.Lock()
		if len(s.log) > cursor || s.closed {
			s.mu.Unlock()
			return s.Since(cursor)
		}
		ch := make(chan struct{})
		s.waiters = append(s.waiters, ch)
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return s.Since(cursor)
		}
	}
}

// Close marks the stream complete and wakes every waiter. Further Adds are
// no-ops (a reclaimed lease's late result must not resurrect a finished
// campaign's stream).
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.wakeLocked()
}

// Closed reports whether Close was called.
func (s *Stream) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Snapshot returns the buckets accumulated so far as a Result, sorted with
// Bucketize's deterministic order (count desc, then class/frame/hash). The
// minimizer fields are zero: minimization only runs in the post-merge pass.
func (s *Stream) Snapshot() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &Result{Crashes: s.crashes, ANRs: s.anrs}
	for _, h := range s.order {
		out.Buckets = append(out.Buckets, *s.byHash[h])
	}
	sortBuckets(out.Buckets)
	return out
}

// wakeLocked closes all waiter channels; callers hold s.mu.
func (s *Stream) wakeLocked() {
	for _, ch := range s.waiters {
		close(ch)
	}
	s.waiters = nil
}
