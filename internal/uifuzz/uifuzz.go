// Package uifuzz implements QGJ-UI, the mutational UI-event fuzzer of
// Section III-E: run Monkey on the target device, parse its log for the UI
// events and intents it produced, mutate their arguments (semi-valid or
// random), and replay the mutated events through the adb shell utilities.
// Outcomes are read from logcat like every other experiment (Table V).
package uifuzz

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/adb"
	"repro/internal/analysis"
	"repro/internal/monkey"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/wearos"
)

// Mode selects the mutation strategy (Table V's two experiments).
type Mode int

const (
	// SemiValid replaces an event argument with another *valid* value
	// observed for that argument position during the run.
	SemiValid Mode = iota + 1
	// Random replaces arguments "with a random ASCII string or a float
	// value (depending on type)" — e.g. `input tap -8803.85 4668.17`.
	Random
)

// String names the mode the way Table V labels its rows.
func (m Mode) String() string {
	switch m {
	case SemiValid:
		return "Semi-valid"
	case Random:
		return "Random"
	default:
		return "unknown"
	}
}

// Config parameterizes one QGJ-UI experiment.
type Config struct {
	Seed uint64
	// Events is the number of injected (mutated) events; the paper ran
	// 41,405 per mode.
	Events int
	// IntentRatio forwards to the Monkey generator.
	IntentRatio float64
}

// PaperEventCount is Table V's per-mode event volume.
const PaperEventCount = 41405

// Outcome tallies one experiment the way Table V reports it.
type Outcome struct {
	Mode Mode
	// Injected is the number of mutated events sent.
	Injected int
	// ExceptionsRaised counts events whose handling raised any exception
	// (1496 / 615 in the paper).
	ExceptionsRaised int
	// Crashes counts events that crashed an app (22 / 0 in the paper).
	Crashes int
	// SystemCrashes counts device reboots (the paper observed none).
	SystemCrashes int
	// Report is the full log-derived analysis for deeper inspection.
	Report *analysis.Report
}

// ExceptionRate returns ExceptionsRaised / Injected.
func (o Outcome) ExceptionRate() float64 {
	if o.Injected == 0 {
		return 0
	}
	return float64(o.ExceptionsRaised) / float64(o.Injected)
}

// CrashRate returns Crashes / Injected.
func (o Outcome) CrashRate() float64 {
	if o.Injected == 0 {
		return 0
	}
	return float64(o.Crashes) / float64(o.Injected)
}

// Fuzzer drives the QGJ-UI workflow against one device.
type Fuzzer struct {
	dev   *wearos.OS
	shell *adb.Shell
}

// New builds a fuzzer for the device.
func New(dev *wearos.OS) *Fuzzer {
	return &Fuzzer{dev: dev, shell: adb.NewShell(dev)}
}

// Run executes the full QGJ-UI pipeline for one mode.
func (f *Fuzzer) Run(mode Mode, cfg Config) Outcome {
	if cfg.Events <= 0 {
		cfg.Events = PaperEventCount
	}
	tel := f.dev.Telemetry()
	var evTotal, excTotal, crashTotal *telemetry.Counter
	if tel != nil {
		ml := telemetry.L("mode", mode.String())
		evTotal = tel.Counter("uifuzz_events_total", ml)
		excTotal = tel.Counter("uifuzz_exceptions_total", ml)
		crashTotal = tel.Counter("uifuzz_crashes_total", ml)
	}
	runSpan := f.dev.Tracer().Start("uifuzz:" + mode.String())

	// Step 5: run Monkey to produce the baseline event stream and log.
	genSpan := runSpan.Child("monkey-generate")
	gen := monkey.NewGenerator(f.dev, monkey.Config{
		Seed:        cfg.Seed,
		Events:      cfg.Events,
		IntentRatio: cfg.IntentRatio,
	})
	log := monkey.RenderLog(gen.Generate())
	genSpan.End()

	// Step 6: parse the Monkey log back into events.
	events := monkey.ParseLog(log)

	// Mutate and replay through adb; observe through logcat.
	mut := newMutator(mode, cfg.Seed, events)
	col := analysis.NewCollector().UseTelemetry(tel)
	f.dev.Logcat().Subscribe(col)

	replaySpan := runSpan.Child("mutate-replay")
	out := Outcome{Mode: mode}
	for _, ev := range events {
		mutated := mut.mutate(ev)
		crashesBefore := col.Report().CrashEvents
		exceptionsBefore := countExceptions(col.Report())
		rebootsBefore := len(col.Report().RebootTimes)

		f.replay(mutated)
		out.Injected++
		evTotal.Inc()

		if col.Report().CrashEvents > crashesBefore {
			out.Crashes++
			crashTotal.Inc()
		}
		if countExceptions(col.Report()) > exceptionsBefore {
			out.ExceptionsRaised++
			excTotal.Inc()
		}
		if len(col.Report().RebootTimes) > rebootsBefore {
			out.SystemCrashes++
		}
		// Light pacing: Monkey throttles between events.
		f.dev.Clock().Advance(10 * time.Millisecond)
	}
	replaySpan.End()
	runSpan.End()
	out.Report = col.Report()
	return out
}

// countExceptions totals every exception observation in the report
// (rejected, caught, crash roots, ANR traces, security).
func countExceptions(r *analysis.Report) int {
	n := r.SecurityEvents
	for _, cr := range r.Components {
		for _, c := range cr.Rejected {
			n += c
		}
		for _, c := range cr.Caught {
			n += c
		}
		for _, c := range cr.CrashRoots {
			n += c
		}
		for _, c := range cr.ANRClasses {
			n += c
		}
	}
	return n
}

// replay sends one (mutated) event through the adb utilities.
func (f *Fuzzer) replay(ev monkey.Event) adb.Result {
	if ev.IsIntent() {
		return f.shell.Run("am " + strings.Join(ev.Intent, " "))
	}
	switch ev.Type {
	case monkey.Touch, monkey.Motion:
		if len(ev.Args) >= 3 {
			return f.shell.Run("input tap " + ev.Args[1] + " " + ev.Args[2])
		}
	case monkey.Trackball, monkey.Nav, monkey.MajorNav:
		if len(ev.Args) >= 4 {
			return f.shell.Run("input swipe 100 100 " + ev.Args[1] + " " + ev.Args[3])
		}
	case monkey.SysKeys:
		if len(ev.Args) >= 1 {
			return f.shell.Run("input keyevent " + ev.Args[0])
		}
	case monkey.Permission:
		if len(ev.Args) >= 1 {
			// Monkey's permission events grant/revoke app permissions; pm
			// validates the permission string strictly.
			pkgs := f.dev.Registry().Packages()
			if len(pkgs) > 0 {
				return f.shell.Run("pm grant " + pkgs[0].Name + " " + ev.Args[0])
			}
		}
	case monkey.FlipKeyboard, monkey.Rotation:
		// Absorbed by the window manager; nothing to replay through adb.
	}
	return adb.Result{}
}

// mutator implements the two argument-mutation strategies.
type mutator struct {
	mode Mode
	r    *rng.Source
	// observed collects valid values per argument position, the semi-valid
	// donor pool ("the arguments for an event are randomly replaced by
	// another valid value for that argument that had been observed during
	// the experiment").
	observedActions []string
	observedComps   []string
	observedCoords  []string
	observedPerms   []string
	observedKeys    []string
}

func newMutator(mode Mode, seed uint64, events []monkey.Event) *mutator {
	m := &mutator{mode: mode, r: rng.New(seed).Split("ui-mutator")}
	seenA, seenC := map[string]bool{}, map[string]bool{}
	for _, ev := range events {
		if ev.IsIntent() {
			for i := 0; i+1 < len(ev.Intent); i++ {
				switch ev.Intent[i] {
				case "-a":
					if !seenA[ev.Intent[i+1]] {
						seenA[ev.Intent[i+1]] = true
						m.observedActions = append(m.observedActions, ev.Intent[i+1])
					}
				case "-n":
					if !seenC[ev.Intent[i+1]] {
						seenC[ev.Intent[i+1]] = true
						m.observedComps = append(m.observedComps, ev.Intent[i+1])
					}
				}
			}
		}
		switch ev.Type {
		case monkey.Touch, monkey.Motion:
			if len(ev.Args) >= 3 {
				m.observedCoords = append(m.observedCoords, ev.Args[1], ev.Args[2])
			}
		case monkey.Permission:
			if len(ev.Args) >= 1 {
				m.observedPerms = append(m.observedPerms, ev.Args[0])
			}
		case monkey.SysKeys:
			if len(ev.Args) >= 1 {
				m.observedKeys = append(m.observedKeys, ev.Args[0])
			}
		}
	}
	return m
}

// mutate returns a mutated copy of the event.
func (m *mutator) mutate(ev monkey.Event) monkey.Event {
	out := monkey.Event{Type: ev.Type}
	out.Args = append([]string(nil), ev.Args...)
	out.Intent = append([]string(nil), ev.Intent...)

	if out.IsIntent() {
		m.mutateIntent(&out)
		return out
	}
	switch ev.Type {
	case monkey.Touch, monkey.Motion:
		if len(out.Args) >= 3 {
			out.Args[1] = m.mutateCoord(out.Args[1])
			out.Args[2] = m.mutateCoord(out.Args[2])
		}
	case monkey.Trackball, monkey.Nav, monkey.MajorNav:
		if len(out.Args) >= 4 {
			out.Args[1] = m.mutateCoord(out.Args[1])
			out.Args[3] = m.mutateCoord(out.Args[3])
		}
	case monkey.SysKeys:
		if len(out.Args) >= 1 {
			out.Args[0] = m.mutateKey(out.Args[0])
		}
	case monkey.Permission:
		if len(out.Args) >= 1 {
			out.Args[0] = m.mutatePermission(out.Args[0])
		}
	}
	return out
}

func (m *mutator) mutateIntent(ev *monkey.Event) {
	for i := 0; i+1 < len(ev.Intent); i++ {
		switch ev.Intent[i] {
		case "-a":
			if m.mode == SemiValid && len(m.observedActions) > 1 {
				ev.Intent[i+1] = rng.Pick(m.r, m.observedActions)
			} else if m.mode == Random {
				ev.Intent[i+1] = m.r.ASCII(6, 20) // 'S0me.r@ndom.$trinG'
			}
		case "-n":
			if m.mode == SemiValid && len(m.observedComps) > 1 {
				ev.Intent[i+1] = rng.Pick(m.r, m.observedComps)
			}
			// Random mode keeps the component: am needs *some* resolvable
			// target, and the paper's finding is that am forwards the
			// random action string to it.
		}
	}
	// Semi-valid component swaps can orphan the action: launching another
	// app's launcher with a foreign action is exactly the semi-valid
	// corruption QGJ-UI induces. Additionally attach a datum sometimes.
	if m.mode == SemiValid && m.r.Bool(0.35) {
		donors := []string{"-d", "tel:123", "-d", "https://foo.com/", "--esn", "android.intent.extra.STREAM"}
		k := m.r.Intn(3) * 2
		ev.Intent = append(ev.Intent, donors[k], donors[k+1])
	}
	if m.mode == Random && m.r.Bool(0.25) {
		ev.Intent = append(ev.Intent, "-d", m.r.ASCII(4, 12))
	}
}

func (m *mutator) mutateCoord(cur string) string {
	if m.mode == SemiValid && len(m.observedCoords) > 1 {
		return rng.Pick(m.r, m.observedCoords)
	}
	// Random float, often far outside the screen.
	v := (m.r.Float64() - 0.5) * 20000
	return strconv.FormatFloat(v, 'f', 2, 64)
}

func (m *mutator) mutateKey(cur string) string {
	if m.mode == SemiValid && len(m.observedKeys) > 1 {
		return rng.Pick(m.r, m.observedKeys)
	}
	return m.r.ASCII(3, 10)
}

func (m *mutator) mutatePermission(cur string) string {
	if m.mode == SemiValid && len(m.observedPerms) > 1 {
		return rng.Pick(m.r, m.observedPerms)
	}
	return "S0me.r@ndom." + m.r.ASCII(4, 8)
}
