package uifuzz

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/monkey"
	"repro/internal/wearos"
)

func newEmulator(t *testing.T) *wearos.OS {
	t.Helper()
	fleet := apps.BuildEmulatorFleet(1)
	dev := wearos.New(wearos.DefaultEmulatorConfig())
	if err := fleet.InstallInto(dev); err != nil {
		t.Fatal(err)
	}
	return dev
}

func TestRunSemiValidSmallScale(t *testing.T) {
	dev := newEmulator(t)
	out := New(dev).Run(SemiValid, Config{Seed: 1, Events: 3000})
	if out.Injected != 3000 {
		t.Fatalf("injected = %d", out.Injected)
	}
	if out.ExceptionsRaised == 0 {
		t.Fatal("semi-valid fuzzing raised no exceptions at all")
	}
	rate := out.ExceptionRate()
	if rate < 0.01 || rate > 0.08 {
		t.Fatalf("semi-valid exception rate = %.4f, want a few percent", rate)
	}
	if out.SystemCrashes != 0 {
		t.Fatalf("UI fuzzing rebooted the device %d times", out.SystemCrashes)
	}
}

func TestRunRandomNeverCrashes(t *testing.T) {
	dev := newEmulator(t)
	out := New(dev).Run(Random, Config{Seed: 1, Events: 5000})
	if out.Crashes != 0 {
		t.Fatalf("random mode crashed %d times, paper reports 0", out.Crashes)
	}
	if out.ExceptionsRaised == 0 {
		t.Fatal("random fuzzing raised no exceptions")
	}
	if out.ExceptionRate() >= 0.05 {
		t.Fatalf("random exception rate = %.4f, should be low", out.ExceptionRate())
	}
}

func TestSemiValidExceedsRandom(t *testing.T) {
	// Table V's shape: semi-valid raises more exceptions than random
	// (random mutations die in adb sanitization).
	sv := New(newEmulator(t)).Run(SemiValid, Config{Seed: 2, Events: 4000})
	rd := New(newEmulator(t)).Run(Random, Config{Seed: 2, Events: 4000})
	if sv.ExceptionsRaised <= rd.ExceptionsRaised {
		t.Fatalf("semi-valid %d <= random %d exceptions", sv.ExceptionsRaised, rd.ExceptionsRaised)
	}
}

func TestOutcomesAreDeterministic(t *testing.T) {
	a := New(newEmulator(t)).Run(SemiValid, Config{Seed: 3, Events: 2000})
	b := New(newEmulator(t)).Run(SemiValid, Config{Seed: 3, Events: 2000})
	if a.ExceptionsRaised != b.ExceptionsRaised || a.Crashes != b.Crashes {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestMutatorSemiValidUsesObservedValues(t *testing.T) {
	events := []monkey.Event{
		{Type: monkey.AppSwitch, Args: []string{"(to launcher)"},
			Intent: []string{"start", "-n", "com.a/.Main", "-a", "android.intent.action.MAIN"}},
		{Type: monkey.AppSwitch, Args: []string{"(to launcher)"},
			Intent: []string{"start", "-n", "com.b/.Main", "-a", "android.intent.action.VIEW"}},
		{Type: monkey.Touch, Args: []string{"(ACTION_DOWN)", "10.00", "20.00"}},
	}
	m := newMutator(SemiValid, 1, events)
	observed := map[string]bool{"android.intent.action.MAIN": true, "android.intent.action.VIEW": true}
	for i := 0; i < 50; i++ {
		out := m.mutate(events[0])
		for j := 0; j+1 < len(out.Intent); j++ {
			if out.Intent[j] == "-a" && !observed[out.Intent[j+1]] {
				t.Fatalf("semi-valid produced unobserved action %q", out.Intent[j+1])
			}
		}
	}
}

func TestMutatorRandomProducesGarbage(t *testing.T) {
	events := []monkey.Event{
		{Type: monkey.AppSwitch, Intent: []string{"start", "-n", "com.a/.Main", "-a", "android.intent.action.MAIN"}},
	}
	m := newMutator(Random, 1, events)
	sawGarbage := false
	for i := 0; i < 20; i++ {
		out := m.mutate(events[0])
		for j := 0; j+1 < len(out.Intent); j++ {
			if out.Intent[j] == "-a" && out.Intent[j+1] != "android.intent.action.MAIN" {
				sawGarbage = true
			}
		}
	}
	if !sawGarbage {
		t.Fatal("random mode never mutated the action")
	}
}

func TestMutatorDoesNotAliasInput(t *testing.T) {
	ev := monkey.Event{Type: monkey.Touch, Args: []string{"(ACTION_DOWN)", "1.00", "2.00"}}
	m := newMutator(Random, 1, []monkey.Event{ev})
	out := m.mutate(ev)
	out.Args[1] = "mutated-more"
	if ev.Args[1] != "1.00" {
		t.Fatal("mutate aliased the input event's args")
	}
}

func TestModeStrings(t *testing.T) {
	if SemiValid.String() != "Semi-valid" || Random.String() != "Random" {
		t.Fatal("mode strings broken")
	}
}
