package intent

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseURIHierarchical(t *testing.T) {
	u, ok := ParseURI("https://foo.com:8443/path/x?q=1#frag")
	if !ok {
		t.Fatal("parse failed")
	}
	if u.Scheme != "https" || u.Host != "foo.com" || u.Port != "8443" ||
		u.Path != "/path/x" || u.Query != "q=1" || u.Fragment != "frag" {
		t.Fatalf("parsed %+v", u)
	}
}

func TestParseURIOpaque(t *testing.T) {
	u, ok := ParseURI("tel:123")
	if !ok {
		t.Fatal("parse failed")
	}
	if u.Scheme != "tel" || u.Opaque != "123" || u.Host != "" {
		t.Fatalf("parsed %+v", u)
	}
}

func TestParseURIRejections(t *testing.T) {
	for _, s := range []string{"", "noscheme", "1bad:scheme", "spa ce:x", ":empty"} {
		if _, ok := ParseURI(s); ok {
			t.Errorf("ParseURI(%q) unexpectedly ok", s)
		}
	}
}

func TestParseURISchemeCaseInsensitive(t *testing.T) {
	u, ok := ParseURI("HTTP://Foo.Com/")
	if !ok || u.Scheme != "http" {
		t.Fatalf("scheme = %q ok=%v", u.Scheme, ok)
	}
}

func TestURIStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"https://foo.com/",
		"https://foo.com:8443/path?q=1#frag",
		"tel:123",
		"mailto:user@foo.com",
		"content://com.android.contacts/contacts/1",
		"market://details?id=com.example.app",
		"geo:40.4237,-86.9212",
		"file:///sdcard/sample.txt",
	} {
		u, ok := ParseURI(s)
		if !ok {
			t.Fatalf("parse %q failed", s)
		}
		u2, ok := ParseURI(u.String())
		if !ok {
			t.Fatalf("re-parse %q failed", u.String())
		}
		if u != u2 {
			t.Errorf("round trip %q: %+v != %+v", s, u, u2)
		}
	}
}

func TestSampleDataParsesForAllSchemes(t *testing.T) {
	if len(Schemes) != 12 {
		t.Fatalf("scheme catalog has %d entries, paper specifies 12", len(Schemes))
	}
	for _, sc := range Schemes {
		u := SampleData(sc)
		if u.Scheme != sc {
			t.Errorf("SampleData(%q).Scheme = %q", sc, u.Scheme)
		}
		if u.IsZero() {
			t.Errorf("SampleData(%q) is zero", sc)
		}
		if _, ok := ParseURI(u.String()); !ok {
			t.Errorf("SampleData(%q) does not re-parse: %q", sc, u.String())
		}
	}
}

func TestActionCatalogSize(t *testing.T) {
	if len(Actions) <= 100 {
		t.Fatalf("action catalog has %d entries, paper specifies over 100", len(Actions))
	}
	seen := map[string]bool{}
	for _, a := range Actions {
		if seen[a] {
			t.Errorf("duplicate action %q", a)
		}
		seen[a] = true
	}
}

func TestProtectedActions(t *testing.T) {
	if !IsProtected("android.intent.action.BATTERY_LOW") {
		t.Error("BATTERY_LOW should be protected")
	}
	if IsProtected("android.intent.action.VIEW") {
		t.Error("VIEW should not be protected")
	}
	// Every protected action must be in the catalog.
	n := 0
	for _, a := range Actions {
		if IsProtected(a) {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no protected actions in catalog")
	}
	if !KnownAction("android.intent.action.VIEW") || KnownAction("com.made.up.ACTION") {
		t.Error("KnownAction misbehaves")
	}
}

func TestComponentNameFlattenUnflatten(t *testing.T) {
	tests := []struct {
		c    ComponentName
		flat string
	}{
		{ComponentName{"com.foo", "com.foo.Bar"}, "com.foo/.Bar"},
		{ComponentName{"com.foo", "com.other.Bar"}, "com.foo/com.other.Bar"},
	}
	for _, tt := range tests {
		if got := tt.c.FlattenToString(); got != tt.flat {
			t.Errorf("Flatten(%v) = %q, want %q", tt.c, got, tt.flat)
		}
		back, ok := UnflattenComponent(tt.flat)
		if !ok || back != tt.c {
			t.Errorf("Unflatten(%q) = %v ok=%v, want %v", tt.flat, back, ok, tt.c)
		}
	}
}

func TestUnflattenRejections(t *testing.T) {
	for _, s := range []string{"", "nopkg", "/onlyclass", "pkg/"} {
		if _, ok := UnflattenComponent(s); ok {
			t.Errorf("UnflattenComponent(%q) unexpectedly ok", s)
		}
	}
}

func TestIntentString(t *testing.T) {
	in := &Intent{
		Action:    "android.intent.action.DIAL",
		Component: ComponentName{"some.component", "some.component.name"},
	}
	d, _ := ParseURI("tel:123")
	in.Data = d
	in.PutExtra("k", StringValue("v"))
	s := in.String()
	for _, want := range []string{"act=android.intent.action.DIAL", "dat=tel:123", "cmp=some.component/.name", "(has extras)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Intent.String() = %q missing %q", s, want)
		}
	}
}

func TestIntentCloneIsDeep(t *testing.T) {
	in := &Intent{Action: "a", Categories: []string{CategoryDefault}}
	in.PutExtra("k", IntValue(1))
	cp := in.Clone()
	cp.Categories[0] = "changed"
	cp.PutExtra("k2", IntValue(2))
	if in.Categories[0] != CategoryDefault {
		t.Error("clone shares categories slice")
	}
	if in.Extras.Len() != 1 {
		t.Error("clone shares extras bundle")
	}
}

func TestBundleBasics(t *testing.T) {
	b := NewBundle()
	b.Put("a", StringValue("x"))
	b.Put("b", IntValue(7))
	b.Put("a", StringValue("y")) // replace keeps order, single key
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	v, ok := b.Get("a")
	if !ok || v.Str != "y" {
		t.Fatalf("Get(a) = %v %v", v, ok)
	}
	if _, ok := b.Get("zzz"); ok {
		t.Error("Get on absent key ok")
	}
	if got := b.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Keys() = %v", got)
	}
}

func TestBundleNullDetection(t *testing.T) {
	b := NewBundle()
	b.Put("x", StringValue("v"))
	if b.HasNull() {
		t.Error("HasNull on non-null bundle")
	}
	b.Put("y", NullValue())
	if !b.HasNull() {
		t.Error("HasNull missed the null extra")
	}
}

func TestBundleCloneIndependence(t *testing.T) {
	b := NewBundle()
	b.Put("x", BoolValue(true))
	cp := b.Clone()
	cp.Put("y", FloatValue(1.5))
	if b.Len() != 1 {
		t.Error("clone mutated the original")
	}
	var nilBundle *Bundle
	if nilBundle.Clone() != nil {
		t.Error("nil bundle clone should be nil")
	}
	if nilBundle.Len() != 0 || nilBundle.HasNull() {
		t.Error("nil bundle accessors should be zero-valued")
	}
}

func TestValueStrings(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{StringValue("hi"), "hi"},
		{IntValue(-3), "-3"},
		{LongValue(1 << 40), "1099511627776"},
		{BoolValue(true), "true"},
		{NullValue(), "null"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Value.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestDefectFlags(t *testing.T) {
	d := DefectMissingAction | DefectNullExtra
	if !d.Has(DefectMissingAction) || !d.Has(DefectNullExtra) || d.Has(DefectRandomAction) {
		t.Fatalf("defect flag logic broken: %v", d)
	}
	if DefectNone.String() != "none" {
		t.Errorf("DefectNone.String() = %q", DefectNone.String())
	}
	if s := d.String(); !strings.Contains(s, "missing-action") || !strings.Contains(s, "null-extra") {
		t.Errorf("Defect.String() = %q", s)
	}
}

func TestHasAddCategory(t *testing.T) {
	in := &Intent{}
	in.AddCategory(CategoryDefault)
	in.AddCategory(CategoryDefault)
	if len(in.Categories) != 1 {
		t.Fatalf("AddCategory duplicated: %v", in.Categories)
	}
	if !in.HasCategory(CategoryDefault) || in.HasCategory(CategoryHome) {
		t.Error("HasCategory misbehaves")
	}
}

// Property: flattening then unflattening any component name built from
// plausible identifiers is the identity.
func TestQuickComponentRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(a, b uint8) bool {
		pkg := "com.pkg" + string(rune('a'+a%26))
		cls := pkg + ".Cls" + string(rune('A'+b%26))
		c := ComponentName{Package: pkg, Class: cls}
		back, ok := UnflattenComponent(c.FlattenToString())
		return ok && back == c
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
