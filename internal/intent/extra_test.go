package intent

import (
	"strings"
	"testing"
)

func TestValueStringRemainingKinds(t *testing.T) {
	u, _ := ParseURI("https://foo.com/")
	tests := []struct {
		v    Value
		want string
	}{
		{FloatValue(1.5), "1.5"},
		{URIValue(u), "https://foo.com/"},
		{BoolValue(false), "false"},
		{Value{}, "?"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Value.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := map[Kind]string{
		KindString: "string", KindInt: "int", KindLong: "long",
		KindFloat: "float", KindBool: "boolean", KindURI: "uri",
		KindNull: "null", Kind(99): "unknown",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestBundleString(t *testing.T) {
	b := NewBundle()
	if got := b.String(); got != "Bundle[]" {
		t.Errorf("empty bundle = %q", got)
	}
	b.Put("a", StringValue("x"))
	b.Put("b", NullValue())
	s := b.String()
	for _, want := range []string{"a=x(string)", "b=null(null)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Bundle.String() = %q missing %q", s, want)
		}
	}
}

func TestBundleSortedKeys(t *testing.T) {
	b := NewBundle()
	b.Put("z", IntValue(1))
	b.Put("a", IntValue(2))
	ks := b.SortedKeys()
	if len(ks) != 2 || ks[0] != "a" || ks[1] != "z" {
		t.Fatalf("SortedKeys = %v", ks)
	}
}

func TestIntentStringWithTypeAndFlags(t *testing.T) {
	in := &Intent{
		Action: "android.intent.action.SEND",
		Type:   "text/plain",
		Flags:  FlagActivityNewTask,
	}
	in.AddCategory(CategoryDefault)
	s := in.String()
	for _, want := range []string{"typ=text/plain", "flg=0x10000000", "cat=" + CategoryDefault} {
		if !strings.Contains(s, want) {
			t.Errorf("Intent.String() = %q missing %q", s, want)
		}
	}
}

func TestComponentNameString(t *testing.T) {
	c := ComponentName{Package: "com.x", Class: "com.x.Y"}
	if got := c.String(); got != "ComponentInfo{com.x/com.x.Y}" {
		t.Errorf("String() = %q", got)
	}
	if got := (ComponentName{}).String(); got != "ComponentInfo{}" {
		t.Errorf("zero String() = %q", got)
	}
}

func TestURIStringZeroAndFragment(t *testing.T) {
	if got := (URI{}).String(); got != "" {
		t.Errorf("zero URI String = %q", got)
	}
	u, ok := ParseURI("tel:123#frag")
	if !ok {
		t.Fatal("parse failed")
	}
	if u.Fragment != "frag" {
		t.Fatalf("fragment = %q", u.Fragment)
	}
	if got := u.String(); got != "tel:123#frag" {
		t.Errorf("String = %q", got)
	}
}

func TestIsOpaqueScheme(t *testing.T) {
	if !IsOpaqueScheme("tel") || IsOpaqueScheme("https") {
		t.Error("IsOpaqueScheme misbehaves")
	}
}

func TestCompatTableConsistency(t *testing.T) {
	// Every action in the compat table must exist in the catalog, and
	// every scheme it references must be one of the 12.
	for _, a := range Actions {
		if !ActionExpectsData(a) {
			continue
		}
		found := false
		for _, s := range Schemes {
			if ActionAcceptsScheme(a, s) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("data-expecting action %q accepts no catalog scheme", a)
		}
	}
	// Spot-check pairs the generator relies on.
	if !ActionAcceptsScheme("android.intent.action.DIAL", "tel") {
		t.Error("DIAL must accept tel")
	}
	if ActionAcceptsScheme("android.intent.action.DIAL", "https") {
		t.Error("DIAL must not accept https")
	}
	if ActionAcceptsScheme("android.intent.action.MAIN", "https") {
		t.Error("MAIN expects no data")
	}
	if !KnownScheme("tel") || KnownScheme("zz9q") {
		t.Error("KnownScheme misbehaves")
	}
}
