package intent

import (
	"fmt"
	"strconv"
	"strings"
)

// ComponentName identifies a concrete component (Activity or Service) the
// way Android does: package plus class. QGJ fuzzes *explicit* intents, so
// nearly every generated intent carries a ComponentName.
type ComponentName struct {
	Package string
	Class   string
}

// IsZero reports whether the component name is unset (implicit intent).
func (c ComponentName) IsZero() bool { return c.Package == "" && c.Class == "" }

// FlattenToString renders pkg/class shorthand ("com.foo/.Bar" when the class
// lives under the package namespace), the format `am start -n` accepts.
func (c ComponentName) FlattenToString() string {
	if c.IsZero() {
		return ""
	}
	cls := c.Class
	if len(cls) > len(c.Package) && cls[len(c.Package)] == '.' && cls[:len(c.Package)] == c.Package {
		cls = cls[len(c.Package):]
	}
	return c.Package + "/" + cls
}

// UnflattenComponent parses the pkg/class shorthand back into a
// ComponentName. ok is false for malformed input.
func UnflattenComponent(s string) (ComponentName, bool) {
	pkg, cls, found := strings.Cut(s, "/")
	if !found || pkg == "" || cls == "" {
		return ComponentName{}, false
	}
	if strings.HasPrefix(cls, ".") {
		cls = pkg + cls
	}
	return ComponentName{Package: pkg, Class: cls}, true
}

// String implements fmt.Stringer using the ComponentInfo format.
func (c ComponentName) String() string {
	if c.IsZero() {
		return "ComponentInfo{}"
	}
	return fmt.Sprintf("ComponentInfo{%s/%s}", c.Package, c.Class)
}

// Intent is the Android intent data structure: an abstract description of an
// operation to be performed (Section II-A).
type Intent struct {
	Action     string
	Data       URI
	Categories []string
	Type       string // explicit MIME type
	Component  ComponentName
	Extras     *Bundle
	Flags      uint32

	// SenderUID is the UID of the process that sends the intent; the
	// dispatcher uses it for permission checks. It is transport metadata,
	// not part of the serialized intent.
	SenderUID int
}

// Intent flags (subset).
const (
	FlagActivityNewTask     uint32 = 0x10000000
	FlagActivityClearTop    uint32 = 0x04000000
	FlagIncludeStoppedPkgs  uint32 = 0x00000020
	FlagGrantReadPermission uint32 = 0x00000001
)

// IsExplicit reports whether the intent names a target component.
func (in *Intent) IsExplicit() bool { return !in.Component.IsZero() }

// HasCategory reports whether the intent carries the category.
func (in *Intent) HasCategory(cat string) bool {
	for _, c := range in.Categories {
		if c == cat {
			return true
		}
	}
	return false
}

// AddCategory appends a category if not already present.
func (in *Intent) AddCategory(cat string) {
	if !in.HasCategory(cat) {
		in.Categories = append(in.Categories, cat)
	}
}

// PutExtra adds a typed extra, allocating the bundle lazily.
func (in *Intent) PutExtra(key string, v Value) {
	if in.Extras == nil {
		in.Extras = NewBundle()
	}
	in.Extras.Put(key, v)
}

// Clone returns a deep copy of the intent.
func (in *Intent) Clone() *Intent {
	cp := *in
	cp.Categories = append([]string(nil), in.Categories...)
	cp.Extras = in.Extras.Clone()
	return &cp
}

// Reset clears the intent for reuse, retaining the Categories and Extras
// storage so pooled intents stop allocating after warm-up. The campaign
// generator owns the reset/reuse contract; callbacks that retain an intent
// past their scope must Clone it.
func (in *Intent) Reset() {
	in.Action = ""
	in.Data = URI{}
	in.Categories = in.Categories[:0]
	in.Type = ""
	in.Component = ComponentName{}
	in.Extras.Reset()
	in.Flags = 0
	in.SenderUID = 0
}

// String renders the intent in the logcat style the paper quotes, e.g.
// {act=android.intent.action.DIAL dat=tel:123 cmp=com.foo/.Bar (has extras)}.
func (in *Intent) String() string {
	buf := make([]byte, 0, 96)
	buf = append(buf, '{')
	mark := len(buf)
	if in.Action != "" {
		buf = append(buf, "act="...)
		buf = append(buf, in.Action...)
	}
	if !in.Data.IsZero() {
		if len(buf) > mark {
			buf = append(buf, ' ')
		}
		buf = append(buf, "dat="...)
		buf = append(buf, URIText(in.Data)...)
	}
	for _, c := range in.Categories {
		if len(buf) > mark {
			buf = append(buf, ' ')
		}
		buf = append(buf, "cat="...)
		buf = append(buf, c...)
	}
	if in.Type != "" {
		if len(buf) > mark {
			buf = append(buf, ' ')
		}
		buf = append(buf, "typ="...)
		buf = append(buf, in.Type...)
	}
	if !in.Component.IsZero() {
		if len(buf) > mark {
			buf = append(buf, ' ')
		}
		buf = append(buf, "cmp="...)
		buf = append(buf, in.Component.FlattenToString()...)
	}
	if in.Flags != 0 {
		if len(buf) > mark {
			buf = append(buf, ' ')
		}
		buf = append(buf, "flg=0x"...)
		buf = strconv.AppendUint(buf, uint64(in.Flags), 16)
	}
	if in.Extras.Len() > 0 {
		if len(buf) > mark {
			buf = append(buf, ' ')
		}
		buf = append(buf, "(has extras)"...)
	}
	buf = append(buf, '}')
	return string(buf)
}

// Defect flags describe, from the *generator's* point of view, what is
// malformed about a fuzzed intent. The behaviour models key off these to
// decide which validation path a component exercises. The analyzer never
// sees them — it works from logs only, like the paper.
type Defect uint16

const (
	// DefectNone marks a fully well-formed intent.
	DefectNone Defect = 0
	// DefectMismatchedPair: action and data are individually valid but the
	// combination is invalid (FIC A).
	DefectMismatchedPair Defect = 1 << iota
	// DefectMissingAction: no action set (FIC B).
	DefectMissingAction
	// DefectMissingData: no data URI set (FIC B).
	DefectMissingData
	// DefectRandomAction: action is a random string (FIC C).
	DefectRandomAction
	// DefectRandomData: data is a random string (FIC C).
	DefectRandomData
	// DefectRandomExtras: extras carry random keys/values (FIC D).
	DefectRandomExtras
	// DefectNullExtra: at least one extra is an explicit null (FIC D).
	DefectNullExtra
	// DefectWrongComponentKind: intent targeted a Service API at an Activity
	// or vice versa.
	DefectWrongComponentKind
)

// Has reports whether d contains flag f.
func (d Defect) Has(f Defect) bool { return d&f != 0 }

// String lists the defect flags for logging/debug.
func (d Defect) String() string {
	if d == DefectNone {
		return "none"
	}
	var names []string
	for _, e := range []struct {
		f Defect
		n string
	}{
		{DefectMismatchedPair, "mismatched-pair"},
		{DefectMissingAction, "missing-action"},
		{DefectMissingData, "missing-data"},
		{DefectRandomAction, "random-action"},
		{DefectRandomData, "random-data"},
		{DefectRandomExtras, "random-extras"},
		{DefectNullExtra, "null-extra"},
		{DefectWrongComponentKind, "wrong-component-kind"},
	} {
		if d.Has(e.f) {
			names = append(names, e.n)
		}
	}
	return strings.Join(names, "|")
}
