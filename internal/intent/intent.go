package intent

import (
	"fmt"
	"strings"
)

// ComponentName identifies a concrete component (Activity or Service) the
// way Android does: package plus class. QGJ fuzzes *explicit* intents, so
// nearly every generated intent carries a ComponentName.
type ComponentName struct {
	Package string
	Class   string
}

// IsZero reports whether the component name is unset (implicit intent).
func (c ComponentName) IsZero() bool { return c.Package == "" && c.Class == "" }

// FlattenToString renders pkg/class shorthand ("com.foo/.Bar" when the class
// lives under the package namespace), the format `am start -n` accepts.
func (c ComponentName) FlattenToString() string {
	if c.IsZero() {
		return ""
	}
	cls := c.Class
	if strings.HasPrefix(cls, c.Package+".") {
		cls = cls[len(c.Package):]
	}
	return c.Package + "/" + cls
}

// UnflattenComponent parses the pkg/class shorthand back into a
// ComponentName. ok is false for malformed input.
func UnflattenComponent(s string) (ComponentName, bool) {
	pkg, cls, found := strings.Cut(s, "/")
	if !found || pkg == "" || cls == "" {
		return ComponentName{}, false
	}
	if strings.HasPrefix(cls, ".") {
		cls = pkg + cls
	}
	return ComponentName{Package: pkg, Class: cls}, true
}

// String implements fmt.Stringer using the ComponentInfo format.
func (c ComponentName) String() string {
	if c.IsZero() {
		return "ComponentInfo{}"
	}
	return fmt.Sprintf("ComponentInfo{%s/%s}", c.Package, c.Class)
}

// Intent is the Android intent data structure: an abstract description of an
// operation to be performed (Section II-A).
type Intent struct {
	Action     string
	Data       URI
	Categories []string
	Type       string // explicit MIME type
	Component  ComponentName
	Extras     *Bundle
	Flags      uint32

	// SenderUID is the UID of the process that sends the intent; the
	// dispatcher uses it for permission checks. It is transport metadata,
	// not part of the serialized intent.
	SenderUID int
}

// Intent flags (subset).
const (
	FlagActivityNewTask     uint32 = 0x10000000
	FlagActivityClearTop    uint32 = 0x04000000
	FlagIncludeStoppedPkgs  uint32 = 0x00000020
	FlagGrantReadPermission uint32 = 0x00000001
)

// IsExplicit reports whether the intent names a target component.
func (in *Intent) IsExplicit() bool { return !in.Component.IsZero() }

// HasCategory reports whether the intent carries the category.
func (in *Intent) HasCategory(cat string) bool {
	for _, c := range in.Categories {
		if c == cat {
			return true
		}
	}
	return false
}

// AddCategory appends a category if not already present.
func (in *Intent) AddCategory(cat string) {
	if !in.HasCategory(cat) {
		in.Categories = append(in.Categories, cat)
	}
}

// PutExtra adds a typed extra, allocating the bundle lazily.
func (in *Intent) PutExtra(key string, v Value) {
	if in.Extras == nil {
		in.Extras = NewBundle()
	}
	in.Extras.Put(key, v)
}

// Clone returns a deep copy of the intent.
func (in *Intent) Clone() *Intent {
	cp := *in
	cp.Categories = append([]string(nil), in.Categories...)
	cp.Extras = in.Extras.Clone()
	return &cp
}

// String renders the intent in the logcat style the paper quotes, e.g.
// {act=android.intent.action.DIAL dat=tel:123 cmp=com.foo/.Bar (has extras)}.
func (in *Intent) String() string {
	var parts []string
	if in.Action != "" {
		parts = append(parts, "act="+in.Action)
	}
	if !in.Data.IsZero() {
		parts = append(parts, "dat="+in.Data.String())
	}
	for _, c := range in.Categories {
		parts = append(parts, "cat="+c)
	}
	if in.Type != "" {
		parts = append(parts, "typ="+in.Type)
	}
	if !in.Component.IsZero() {
		parts = append(parts, "cmp="+in.Component.FlattenToString())
	}
	if in.Flags != 0 {
		parts = append(parts, fmt.Sprintf("flg=0x%x", in.Flags))
	}
	if in.Extras.Len() > 0 {
		parts = append(parts, "(has extras)")
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Defect flags describe, from the *generator's* point of view, what is
// malformed about a fuzzed intent. The behaviour models key off these to
// decide which validation path a component exercises. The analyzer never
// sees them — it works from logs only, like the paper.
type Defect uint16

const (
	// DefectNone marks a fully well-formed intent.
	DefectNone Defect = 0
	// DefectMismatchedPair: action and data are individually valid but the
	// combination is invalid (FIC A).
	DefectMismatchedPair Defect = 1 << iota
	// DefectMissingAction: no action set (FIC B).
	DefectMissingAction
	// DefectMissingData: no data URI set (FIC B).
	DefectMissingData
	// DefectRandomAction: action is a random string (FIC C).
	DefectRandomAction
	// DefectRandomData: data is a random string (FIC C).
	DefectRandomData
	// DefectRandomExtras: extras carry random keys/values (FIC D).
	DefectRandomExtras
	// DefectNullExtra: at least one extra is an explicit null (FIC D).
	DefectNullExtra
	// DefectWrongComponentKind: intent targeted a Service API at an Activity
	// or vice versa.
	DefectWrongComponentKind
)

// Has reports whether d contains flag f.
func (d Defect) Has(f Defect) bool { return d&f != 0 }

// String lists the defect flags for logging/debug.
func (d Defect) String() string {
	if d == DefectNone {
		return "none"
	}
	var names []string
	for _, e := range []struct {
		f Defect
		n string
	}{
		{DefectMismatchedPair, "mismatched-pair"},
		{DefectMissingAction, "missing-action"},
		{DefectMissingData, "missing-data"},
		{DefectRandomAction, "random-action"},
		{DefectRandomData, "random-data"},
		{DefectRandomExtras, "random-extras"},
		{DefectNullExtra, "null-extra"},
		{DefectWrongComponentKind, "wrong-component-kind"},
	} {
		if d.Has(e.f) {
			names = append(names, e.n)
		}
	}
	return strings.Join(names, "|")
}
