// Package intent models Android's Intent messaging abstraction: the passive
// data structure (action, data URI, category, MIME type, component, extras)
// that QGJ mutates and injects. The fuzzer, the OS dispatcher, and the adb
// `am` shell utility all operate on this package's types.
package intent

import (
	"strings"
)

// URI is a parsed android.net.Uri-style reference. Android URIs can be
// hierarchical (scheme://authority/path?query#fragment) or opaque
// (scheme:opaque-part), and intent data is matched primarily on the scheme.
type URI struct {
	Scheme   string
	Opaque   string // opaque schemes (tel:, mailto:, sms:) keep the raw part
	Host     string
	Port     string
	Path     string
	Query    string
	Fragment string
}

// The 12 data URI schemes the QGJ fuzzer has configured (Section III-B:
// "over 100 different Actions and 12 types of data URI (e.g., https, http,
// tel)").
var Schemes = []string{
	"http", "https", "tel", "file", "content", "mailto",
	"geo", "sms", "smsto", "market", "ftp", "voicemail",
}

// opaqueSchemes use scheme:data form without the // authority marker.
var opaqueSchemes = map[string]bool{
	"tel": true, "mailto": true, "sms": true, "smsto": true,
	"geo": true, "voicemail": true,
}

// IsOpaqueScheme reports whether the scheme conventionally uses the opaque
// (non-hierarchical) form.
func IsOpaqueScheme(scheme string) bool { return opaqueSchemes[scheme] }

// ParseURI parses s into a URI. It is intentionally permissive, like
// android.net.Uri: almost any string parses, and only the empty string and
// strings without a scheme separator are rejected. ok is false on rejection.
func ParseURI(s string) (URI, bool) {
	if s == "" {
		return URI{}, false
	}
	scheme, rest, found := strings.Cut(s, ":")
	if !found || scheme == "" {
		return URI{}, false
	}
	// Scheme must be a plausible token (letters, digits, +, -, .), starting
	// with a letter; android.net.Uri accepts this grammar from RFC 3986.
	if !validScheme(scheme) {
		return URI{}, false
	}
	u := URI{Scheme: strings.ToLower(scheme)}
	if !strings.HasPrefix(rest, "//") {
		u.Opaque = rest
		if i := strings.IndexByte(u.Opaque, '#'); i >= 0 {
			u.Opaque, u.Fragment = u.Opaque[:i], u.Opaque[i+1:]
		}
		return u, true
	}
	rest = rest[2:]
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		rest, u.Fragment = rest[:i], rest[i+1:]
	}
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		rest, u.Query = rest[:i], rest[i+1:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest, u.Path = rest[:i], rest[i:]
	}
	// Split authority into host[:port].
	if i := strings.LastIndexByte(rest, ':'); i >= 0 && !strings.Contains(rest[i+1:], "]") {
		u.Host, u.Port = rest[:i], rest[i+1:]
	} else {
		u.Host = rest
	}
	return u, true
}

func validScheme(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case i > 0 && (r >= '0' && r <= '9' || r == '+' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return s != ""
}

// String re-assembles the URI into its textual form.
func (u URI) String() string {
	if u.Scheme == "" {
		return ""
	}
	var b strings.Builder
	b.WriteString(u.Scheme)
	b.WriteByte(':')
	if u.Opaque != "" || (u.Host == "" && u.Path == "" && u.Query == "" && IsOpaqueScheme(u.Scheme)) {
		b.WriteString(u.Opaque)
	} else {
		b.WriteString("//")
		b.WriteString(u.Host)
		if u.Port != "" {
			b.WriteByte(':')
			b.WriteString(u.Port)
		}
		b.WriteString(u.Path)
		if u.Query != "" {
			b.WriteByte('?')
			b.WriteString(u.Query)
		}
	}
	if u.Fragment != "" {
		b.WriteByte('#')
		b.WriteString(u.Fragment)
	}
	return b.String()
}

// IsZero reports whether the URI is unset.
func (u URI) IsZero() bool { return u.Scheme == "" && u.Opaque == "" && u.Host == "" && u.Path == "" }

// uriTexts interns the rendered text of the catalog's sample data URIs.
// Campaign generation draws data almost exclusively from SampleData, so the
// dispatch hot path can hand out a shared string instead of re-assembling
// the same dozen URIs millions of times. URI is comparable (all fields are
// strings), so the table is a plain map lookup.
var uriTexts = func() map[URI]string {
	m := make(map[URI]string, len(Schemes))
	for _, s := range Schemes {
		u := SampleData(s)
		m[u] = u.String()
	}
	return m
}()

// URIText returns the textual form of u, serving catalog sample URIs from
// an intern table and falling back to String() for everything else.
func URIText(u URI) string {
	if s, ok := uriTexts[u]; ok {
		return s
	}
	return u.String()
}

// SampleData returns a well-formed example datum for each configured scheme,
// mirroring the paper's examples ("data=http://foo.com/", "data=tel:123").
// Unknown schemes get a generic hierarchical form.
func SampleData(scheme string) URI {
	switch scheme {
	case "http", "https", "ftp":
		return URI{Scheme: scheme, Host: "foo.com", Path: "/"}
	case "tel", "voicemail":
		return URI{Scheme: scheme, Opaque: "123"}
	case "mailto":
		return URI{Scheme: scheme, Opaque: "user@foo.com"}
	case "sms", "smsto":
		return URI{Scheme: scheme, Opaque: "5551234"}
	case "geo":
		return URI{Scheme: scheme, Opaque: "40.4237,-86.9212"}
	case "file":
		return URI{Scheme: scheme, Path: "/sdcard/sample.txt"}
	case "content":
		return URI{Scheme: scheme, Host: "com.android.contacts", Path: "/contacts/1"}
	case "market":
		return URI{Scheme: scheme, Host: "details", Query: "id=com.example.app"}
	default:
		return URI{Scheme: scheme, Host: "example.com", Path: "/x"}
	}
}
