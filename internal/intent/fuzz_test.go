package intent

import (
	"testing"
)

// Fuzz targets double as robustness tests: `go test` runs the seed corpus;
// `go test -fuzz=FuzzParseURI ./internal/intent` explores further. The
// invariants mirror android.net.Uri's contract: parsing never panics, and
// anything that parses re-parses to the same value after String().

func FuzzParseURI(f *testing.F) {
	for _, seed := range []string{
		"https://foo.com:8443/p?q=1#f",
		"tel:123",
		"mailto:user@foo.com",
		"content://authority/path",
		"file:///sdcard/x",
		"market://details?id=x",
		":",
		"::",
		"a:",
		"A:B:C",
		"1bad:x",
		"spa ce:x",
		"scheme+ext.1-2:opaque#frag",
		"s:#",
		"h://",
		"h://host:port/path",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		u, ok := ParseURI(s)
		if !ok {
			return
		}
		if u.Scheme == "" {
			t.Fatalf("ParseURI(%q) ok with empty scheme", s)
		}
		// Round-trip stability: String() must re-parse to the same URI.
		s2 := u.String()
		u2, ok2 := ParseURI(s2)
		if !ok2 {
			t.Fatalf("re-parse of %q (from %q) failed", s2, s)
		}
		if u != u2 {
			t.Fatalf("round trip diverged: %q -> %+v -> %q -> %+v", s, u, s2, u2)
		}
	})
}

func FuzzUnflattenComponent(f *testing.F) {
	for _, seed := range []string{
		"com.foo/.Bar",
		"com.foo/com.foo.Bar",
		"a/b",
		"/x",
		"x/",
		"",
		"com.foo/.Bar/extra",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cn, ok := UnflattenComponent(s)
		if !ok {
			return
		}
		if cn.Package == "" || cn.Class == "" {
			t.Fatalf("UnflattenComponent(%q) ok with empty fields: %+v", s, cn)
		}
		// Flatten/unflatten closes: the flattened form re-parses to the
		// same component.
		back, ok2 := UnflattenComponent(cn.FlattenToString())
		if !ok2 || back != cn {
			t.Fatalf("flatten round trip diverged: %q -> %+v -> %q -> %+v (%v)",
				s, cn, cn.FlattenToString(), back, ok2)
		}
	})
}
