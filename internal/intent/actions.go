package intent

// Action catalogs. Section III-B: "The fuzzer has over 100 different Actions
// and 12 types of data URI configured. Combinations of these are used in the
// intents generated during various FICs."
//
// The catalog below contains 104 actions split into ordinary activity/
// broadcast actions and protected (privileged) actions. Protected actions
// reproduce the paper's dominant observation: intents reserved for the OS
// (e.g. ACTION_BATTERY_LOW) raise a SecurityException when sent by an
// unprivileged app and account for ~81% of all exceptions observed.

// Activity-style actions (deliverable by ordinary apps).
var ActivityActions = []string{
	"android.intent.action.MAIN",
	"android.intent.action.VIEW",
	"android.intent.action.EDIT",
	"android.intent.action.DIAL",
	"android.intent.action.CALL_BUTTON",
	"android.intent.action.PICK",
	"android.intent.action.PICK_ACTIVITY",
	"android.intent.action.CHOOSER",
	"android.intent.action.GET_CONTENT",
	"android.intent.action.ATTACH_DATA",
	"android.intent.action.INSERT",
	"android.intent.action.INSERT_OR_EDIT",
	"android.intent.action.DELETE",
	"android.intent.action.RUN",
	"android.intent.action.SYNC",
	"android.intent.action.SEND",
	"android.intent.action.SENDTO",
	"android.intent.action.SEND_MULTIPLE",
	"android.intent.action.ANSWER",
	"android.intent.action.SEARCH",
	"android.intent.action.WEB_SEARCH",
	"android.intent.action.ASSIST",
	"android.intent.action.VOICE_COMMAND",
	"android.intent.action.SET_WALLPAPER",
	"android.intent.action.CREATE_SHORTCUT",
	"android.intent.action.CREATE_DOCUMENT",
	"android.intent.action.OPEN_DOCUMENT",
	"android.intent.action.OPEN_DOCUMENT_TREE",
	"android.intent.action.PROCESS_TEXT",
	"android.intent.action.QUICK_VIEW",
	"android.intent.action.SHOW_APP_INFO",
	"android.intent.action.TRANSLATE",
	"android.intent.action.DEFINE",
	"android.intent.action.MANAGE_NETWORK_USAGE",
	"android.intent.action.POWER_USAGE_SUMMARY",
	"android.intent.action.APPLICATION_PREFERENCES",
	"android.intent.action.PASTE",
	"android.intent.action.SYSTEM_TUTORIAL",
	"android.media.action.IMAGE_CAPTURE",
	"android.media.action.VIDEO_CAPTURE",
	"android.media.action.MEDIA_PLAY_FROM_SEARCH",
	"android.media.action.DISPLAY_AUDIO_EFFECT_CONTROL_PANEL",
	"android.settings.SETTINGS",
	"android.settings.BLUETOOTH_SETTINGS",
	"android.settings.WIFI_SETTINGS",
	"android.settings.DISPLAY_SETTINGS",
	"android.settings.SOUND_SETTINGS",
	"android.settings.DATE_SETTINGS",
	"android.settings.LOCALE_SETTINGS",
	"android.settings.APPLICATION_DETAILS_SETTINGS",
	"com.google.android.wearable.action.STOPWATCH",
	"com.google.android.wearable.action.SET_TIMER",
	"com.google.android.wearable.action.SHOW_ALARMS",
	"com.google.android.clockwork.settings.ACTION_AMBIENT",
	"vnd.google.fitness.TRACK",
	"vnd.google.fitness.VIEW",
	"vnd.google.fitness.VIEW_GOAL",
	"android.intent.action.ALL_APPS",
	"android.intent.action.BUG_REPORT",
	"android.intent.action.CALL",
	"android.intent.action.EVENT_REMINDER",
	"android.intent.action.FACTORY_TEST",
	"android.intent.action.INSTALL_PACKAGE",
	"android.intent.action.UNINSTALL_PACKAGE",
	"android.intent.action.MANAGE_APP_PERMISSIONS",
	"android.intent.action.MUSIC_PLAYER",
	"android.intent.action.SEARCH_LONG_PRESS",
	"android.intent.action.VIEW_DOWNLOADS",
	"android.intent.action.VIEW_PERMISSION_USAGE",
	"android.intent.action.SHOW_WORK_APPS",
}

// BroadcastActions includes both ordinary and protected broadcast actions.
// The protected subset can only legitimately originate from system
// processes; delivery attempts from an unprivileged UID raise a
// SecurityException in the dispatcher.
var BroadcastActions = []string{
	"android.intent.action.AIRPLANE_MODE",
	"android.intent.action.BATTERY_CHANGED",
	"android.intent.action.BATTERY_LOW",
	"android.intent.action.BATTERY_OKAY",
	"android.intent.action.BOOT_COMPLETED",
	"android.intent.action.LOCKED_BOOT_COMPLETED",
	"android.intent.action.ACTION_POWER_CONNECTED",
	"android.intent.action.ACTION_POWER_DISCONNECTED",
	"android.intent.action.ACTION_SHUTDOWN",
	"android.intent.action.REBOOT",
	"android.intent.action.DEVICE_STORAGE_LOW",
	"android.intent.action.DEVICE_STORAGE_OK",
	"android.intent.action.CONFIGURATION_CHANGED",
	"android.intent.action.LOCALE_CHANGED",
	"android.intent.action.TIMEZONE_CHANGED",
	"android.intent.action.TIME_SET",
	"android.intent.action.TIME_TICK",
	"android.intent.action.DATE_CHANGED",
	"android.intent.action.SCREEN_ON",
	"android.intent.action.SCREEN_OFF",
	"android.intent.action.USER_PRESENT",
	"android.intent.action.DREAMING_STARTED",
	"android.intent.action.DREAMING_STOPPED",
	"android.intent.action.PACKAGE_ADDED",
	"android.intent.action.PACKAGE_REMOVED",
	"android.intent.action.PACKAGE_REPLACED",
	"android.intent.action.PACKAGE_FIRST_LAUNCH",
	"android.intent.action.PACKAGES_SUSPENDED",
	"android.intent.action.UID_REMOVED",
	"android.intent.action.MY_PACKAGE_REPLACED",
	"android.intent.action.NEW_OUTGOING_CALL",
	"android.net.conn.CONNECTIVITY_CHANGE",
	"android.bluetooth.adapter.action.STATE_CHANGED",
	"android.hardware.action.NEW_PICTURE",
}

// protectedActions is the subset of BroadcastActions that only the system
// may send (AOSP's "protected-broadcast" list, abridged to the actions the
// catalog carries).
var protectedActions = map[string]bool{
	"android.intent.action.AIRPLANE_MODE":             true,
	"android.intent.action.BATTERY_CHANGED":           true,
	"android.intent.action.BATTERY_LOW":               true,
	"android.intent.action.BATTERY_OKAY":              true,
	"android.intent.action.BOOT_COMPLETED":            true,
	"android.intent.action.LOCKED_BOOT_COMPLETED":     true,
	"android.intent.action.ACTION_POWER_CONNECTED":    true,
	"android.intent.action.ACTION_POWER_DISCONNECTED": true,
	"android.intent.action.ACTION_SHUTDOWN":           true,
	"android.intent.action.REBOOT":                    true,
	"android.intent.action.DEVICE_STORAGE_LOW":        true,
	"android.intent.action.DEVICE_STORAGE_OK":         true,
	"android.intent.action.CONFIGURATION_CHANGED":     true,
	"android.intent.action.LOCALE_CHANGED":            true,
	"android.intent.action.TIMEZONE_CHANGED":          true,
	"android.intent.action.TIME_SET":                  true,
	"android.intent.action.TIME_TICK":                 true,
	"android.intent.action.DATE_CHANGED":              true,
	"android.intent.action.SCREEN_ON":                 true,
	"android.intent.action.SCREEN_OFF":                true,
	"android.intent.action.USER_PRESENT":              true,
	"android.intent.action.DREAMING_STARTED":          true,
	"android.intent.action.DREAMING_STOPPED":          true,
	"android.intent.action.PACKAGE_ADDED":             true,
	"android.intent.action.PACKAGE_REMOVED":           true,
	"android.intent.action.PACKAGE_REPLACED":          true,
	"android.intent.action.PACKAGE_FIRST_LAUNCH":      true,
	"android.intent.action.PACKAGES_SUSPENDED":        true,
	"android.intent.action.UID_REMOVED":               true,
	"android.intent.action.MY_PACKAGE_REPLACED":       true,
	"android.hardware.action.NEW_PICTURE":             true,
}

// Actions is the full fuzzing catalog: activity actions plus broadcast
// actions (104 entries, satisfying the paper's "over 100").
var Actions = buildActions()

func buildActions() []string {
	out := make([]string, 0, len(ActivityActions)+len(BroadcastActions))
	out = append(out, ActivityActions...)
	out = append(out, BroadcastActions...)
	return out
}

// IsProtected reports whether action may only be sent by privileged OS
// processes. Sending a protected action from an ordinary app raises a
// SecurityException, the paper's dominant exception class (81.3%).
func IsProtected(action string) bool { return protectedActions[action] }

// KnownAction reports whether action is registered in the catalog; the adb
// `pm`-style strict validation and the dispatcher's "no such action" path
// use this.
func KnownAction(action string) bool {
	return knownActions[action]
}

var knownActions = func() map[string]bool {
	m := make(map[string]bool, len(Actions))
	for _, a := range Actions {
		m[a] = true
	}
	return m
}()

// Common intent categories.
const (
	CategoryDefault   = "android.intent.category.DEFAULT"
	CategoryLauncher  = "android.intent.category.LAUNCHER"
	CategoryBrowsable = "android.intent.category.BROWSABLE"
	CategoryHome      = "android.intent.category.HOME"
	CategoryWearable  = "com.google.android.wearable.category.DEFAULT"
)

// MIME types the generator can attach to the Type field.
var MimeTypes = []string{
	"text/plain", "text/html", "image/png", "image/jpeg",
	"audio/mpeg", "video/mp4", "application/json",
	"application/vnd.android.package-archive",
	"vnd.android.cursor.item/contact", "*/*",
}
