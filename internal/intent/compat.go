package intent

// Action/data compatibility. FIC A's defining defect is a *semantically
// invalid combination* of an individually valid action and an individually
// valid data URI ("Valid Action and valid Data URI are generated
// separately, but the combination of them may be invalid", Table I). This
// table records which schemes each data-taking action legitimately
// operates on; it is shared by the fuzzer (to pick valid pairs for FIC D)
// and by the app behaviour models (to detect mismatches the way a
// component's validation code would).
var actionSchemes = map[string][]string{
	"android.intent.action.VIEW":                  {"http", "https", "content", "file", "geo", "market", "tel"},
	"android.intent.action.EDIT":                  {"content"},
	"android.intent.action.PICK":                  {"content"},
	"android.intent.action.GET_CONTENT":           {"content"},
	"android.intent.action.INSERT":                {"content"},
	"android.intent.action.INSERT_OR_EDIT":        {"content"},
	"android.intent.action.DELETE":                {"content", "file"},
	"android.intent.action.ATTACH_DATA":           {"content", "file"},
	"android.intent.action.DIAL":                  {"tel"},
	"android.intent.action.CALL":                  {"tel"},
	"android.intent.action.SENDTO":                {"mailto", "sms", "smsto"},
	"android.intent.action.SEND":                  {"content", "file", "mailto"},
	"android.intent.action.SEND_MULTIPLE":         {"content", "file"},
	"android.intent.action.WEB_SEARCH":            {"http", "https"},
	"android.intent.action.INSTALL_PACKAGE":       {"content", "file", "market"},
	"android.intent.action.UNINSTALL_PACKAGE":     {"market", "content"},
	"android.intent.action.VIEW_DOWNLOADS":        {"content", "file"},
	"android.intent.action.RUN":                   {"file"},
	"android.media.action.MEDIA_PLAY_FROM_SEARCH": {"content", "http", "https"},
	"android.intent.action.MUSIC_PLAYER":          {"content", "file", "http"},
	"android.intent.action.NEW_OUTGOING_CALL":     {"tel"},
	// ALL_APPS on Wear carries a complication-provider reference; the
	// paper's Google Fit crash is this action arriving without it.
	"android.intent.action.ALL_APPS": {"content"},
	"vnd.google.fitness.TRACK":       {"content"},
	"vnd.google.fitness.VIEW":        {"content"},
	"vnd.google.fitness.VIEW_GOAL":   {"content"},
}

// ActionAcceptsScheme reports whether the action can legitimately carry
// data with the given scheme. Actions without a data expectation accept
// only "no data", so any scheme is a mismatch for them.
func ActionAcceptsScheme(action, scheme string) bool {
	ss, ok := actionSchemes[action]
	if !ok {
		return false
	}
	for _, s := range ss {
		if s == scheme {
			return true
		}
	}
	return false
}

// ActionExpectsData reports whether the action has any data expectation.
func ActionExpectsData(action string) bool {
	_, ok := actionSchemes[action]
	return ok
}

// KnownScheme reports whether s is one of the fuzzer's 12 configured data
// URI schemes.
func KnownScheme(s string) bool {
	for _, sc := range Schemes {
		if sc == s {
			return true
		}
	}
	return false
}
