package intent

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value types a Bundle entry can carry. The set mirrors
// the extra types the `am` shell utility accepts (--es, --ei, --ef, --ez,
// --el, --eu).
type Kind int

const (
	KindString Kind = iota + 1
	KindInt
	KindLong
	KindFloat
	KindBool
	KindURI
	KindNull // an extra key explicitly mapped to null — a classic NPE trigger
)

// String returns the am-style flag mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindLong:
		return "long"
	case KindFloat:
		return "float"
	case KindBool:
		return "boolean"
	case KindURI:
		return "uri"
	case KindNull:
		return "null"
	default:
		return "unknown"
	}
}

// Value is a typed bundle value.
type Value struct {
	Kind Kind
	Str  string
	I64  int64
	F64  float64
	B    bool
	URI  URI
}

// String renders the value the way Intent.toString would.
func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindInt, KindLong:
		return strconv.FormatInt(v.I64, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F64, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindURI:
		return v.URI.String()
	case KindNull:
		return "null"
	default:
		return "?"
	}
}

// Convenience constructors.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }
func IntValue(i int64) Value     { return Value{Kind: KindInt, I64: i} }
func LongValue(i int64) Value    { return Value{Kind: KindLong, I64: i} }
func FloatValue(f float64) Value { return Value{Kind: KindFloat, F64: f} }
func BoolValue(b bool) Value     { return Value{Kind: KindBool, B: b} }
func URIValue(u URI) Value       { return Value{Kind: KindURI, URI: u} }
func NullValue() Value           { return Value{Kind: KindNull} }

// Bundle is an ordered set of typed key/value extras. Android's Bundle is a
// string-keyed map; we keep insertion order so flattened intents are
// reproducible.
type Bundle struct {
	keys   []string
	values map[string]Value
}

// NewBundle returns an empty bundle.
func NewBundle() *Bundle {
	return &Bundle{values: make(map[string]Value)}
}

// Put inserts or replaces the value for key.
func (b *Bundle) Put(key string, v Value) {
	if b.values == nil {
		b.values = make(map[string]Value)
	}
	if _, exists := b.values[key]; !exists {
		b.keys = append(b.keys, key)
	}
	b.values[key] = v
}

// Get returns the value for key; ok is false when absent.
func (b *Bundle) Get(key string) (Value, bool) {
	if b == nil || b.values == nil {
		return Value{}, false
	}
	v, ok := b.values[key]
	return v, ok
}

// Len returns the number of extras.
func (b *Bundle) Len() int {
	if b == nil {
		return 0
	}
	return len(b.keys)
}

// Keys returns the keys in insertion order (a copy).
func (b *Bundle) Keys() []string {
	if b == nil {
		return nil
	}
	return append([]string(nil), b.keys...)
}

// HasNull reports whether any extra carries an explicit null value.
func (b *Bundle) HasNull() bool {
	if b == nil {
		return false
	}
	for _, v := range b.values {
		if v.Kind == KindNull {
			return true
		}
	}
	return false
}

// Reset empties the bundle in place, retaining the key slice and map
// storage so a pooled bundle stops allocating once warmed up.
func (b *Bundle) Reset() {
	if b == nil {
		return
	}
	b.keys = b.keys[:0]
	clear(b.values)
}

// Clone returns a deep copy of the bundle.
func (b *Bundle) Clone() *Bundle {
	if b == nil {
		return nil
	}
	out := &Bundle{
		keys:   append([]string(nil), b.keys...),
		values: make(map[string]Value, len(b.values)),
	}
	for k, v := range b.values {
		out.values[k] = v
	}
	return out
}

// String renders the bundle content deterministically: insertion order for
// human display, with kind annotations.
func (b *Bundle) String() string {
	if b.Len() == 0 {
		return "Bundle[]"
	}
	var sb strings.Builder
	sb.WriteString("Bundle[")
	for i, k := range b.keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		v := b.values[k]
		fmt.Fprintf(&sb, "%s=%s(%s)", k, v.String(), v.Kind)
	}
	sb.WriteByte(']')
	return sb.String()
}

// SortedKeys returns keys in lexicographic order; used by tests that compare
// bundles structurally.
func (b *Bundle) SortedKeys() []string {
	ks := b.Keys()
	sort.Strings(ks)
	return ks
}
