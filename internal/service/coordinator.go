package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"encoding/json"

	"repro/internal/farm"
	"repro/internal/telemetry"
	"repro/internal/triage"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrNoWork means every shard is done or leased — workers back off.
	ErrNoWork = errors.New("service: no pending shards")
	// ErrShuttingDown means the coordinator is draining; no new leases.
	ErrShuttingDown = errors.New("service: coordinator is shutting down")
	// ErrLeaseGone means the lease was reclaimed, released, completed, or
	// never existed — the worker's claim on the shard is void.
	ErrLeaseGone = errors.New("service: lease is gone")
	// ErrBadRecord means an upload contradicted its lease (fingerprint or
	// shard-key mismatch) and was rejected.
	ErrBadRecord = errors.New("service: rejected shard record")
	// ErrNotFound means the campaign ID is unknown.
	ErrNotFound = errors.New("service: unknown campaign")
	// ErrNotComplete means the export was requested before the merge.
	ErrNotComplete = errors.New("service: campaign is not complete")
	// ErrThrottled means the coordinator's pending-upload queue is full —
	// uploads are arriving faster than the journal can fsync them. The
	// HTTP layer answers 429 with a Retry-After hint; the client's retry
	// loop honors it transparently.
	ErrThrottled = errors.New("service: upload queue is full, retry later")
)

// Options configures a Coordinator.
type Options struct {
	// DataDir, when set, makes every campaign durable: a spec sidecar and
	// the fsynced JSONL shard journal live there, and a restarted
	// coordinator re-queues exactly the unfinished work. Empty runs the
	// queue in memory only.
	DataDir string
	// LeaseTTL is how long a granted lease lives between heartbeats before
	// the reaper returns its shard to the queue. Default 30s.
	LeaseTTL time.Duration
	// Telemetry receives the service-level metrics; nil creates a private
	// registry (reachable via Coordinator.Telemetry).
	Telemetry *telemetry.Registry
	// MaxPendingUploads bounds how many shard uploads may sit in the
	// journal's fsync pipeline at once. When workers outrun the fsync
	// budget, further uploads answer ErrThrottled (HTTP 429 + Retry-After)
	// instead of queueing unboundedly. Default 64; negative disables the
	// bound.
	MaxPendingUploads int
	// Retain keeps only the last Retain completed campaigns hosted in
	// memory; older ones are archived — their spec sidecar and journal
	// move to DataDir/done/ and they list with state "archived". 0 keeps
	// everything.
	Retain int
	// Clock overrides time.Now for lease-expiry tests.
	Clock func() time.Time
}

// Campaign states reported by CampaignInfo.State.
const (
	CampaignRunning  = "running"
	CampaignMerging  = "merging"
	CampaignComplete = "complete"
	CampaignFailed   = "failed"
	// CampaignArchived marks a completed campaign evicted by the retention
	// window: its journal and sidecar live in DataDir/done/ and only its
	// listing survives in memory.
	CampaignArchived = "archived"
)

// CampaignInfo is the public view of one hosted campaign.
type CampaignInfo struct {
	ID          string       `json:"id"`
	Spec        CampaignSpec `json:"spec"`
	Fingerprint string       `json:"fingerprint"`
	State       string       `json:"state"`
	Shards      int          `json:"shards"`
	Pending     int          `json:"pending"`
	Leased      int          `json:"leased"`
	Done        int          `json:"done"`
	Resumed     int          `json:"resumed,omitempty"`
	Sent        int          `json:"intentsSent"`
	Created     time.Time    `json:"created"`
	Error       string       `json:"error,omitempty"`
}

// LeaseGrant is the coordinator's answer to a lease request: one shard of
// one campaign, plus everything the worker needs to verify and execute it.
type LeaseGrant struct {
	LeaseID    string        `json:"leaseId"`
	CampaignID string        `json:"campaignId"`
	Shard      int           `json:"shard"`
	Key        farm.ShardKey `json:"key"`
	// Fingerprint is the plan fingerprint (%016x). The worker re-plans the
	// spec locally and must refuse the lease when its own fingerprint
	// differs — the shard would belong to a different run.
	Fingerprint string       `json:"fingerprint"`
	Spec        CampaignSpec `json:"spec"`
	// TTLSeconds is the heartbeat deadline: miss it and the shard is
	// re-queued for someone else.
	TTLSeconds float64 `json:"ttlSeconds"`
}

// shardState is one queue slot's lifecycle.
type shardState uint8

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

type lease struct {
	id      string
	camp    *campaign
	shard   int
	worker  string
	granted time.Time
	expires time.Time
}

// campaign is one hosted run: plan, queue slots, journal, live boards.
type campaign struct {
	id      string
	spec    CampaignSpec
	plan    *farm.Plan
	created time.Time

	states  []shardState
	results []*farm.ShardResult
	// reclaimed marks shards whose lease expired at least once; granting
	// one again counts as a steal.
	reclaimed []bool
	leases    map[int]*lease // shard -> active lease
	journal   *farm.ShardJournal
	board     *farm.StatusBoard
	reg       *telemetry.Registry
	stream    *triage.Stream
	done      int
	resumed   int
	sent      int

	merging  bool
	result   *farm.Result
	export   []byte
	mergeErr error
	// finished closes when the merge (or its failure) lands.
	finished chan struct{}

	// per-campaign metric handles
	intentsC *telemetry.Counter
	shardsC  *telemetry.Counter
	crashesC *telemetry.Counter
	leasesC  *telemetry.Counter
}

// svcMetrics caches the coordinator's service-level metric handles.
type svcMetrics struct {
	campaigns     *telemetry.Counter
	leasesGranted *telemetry.Counter
	leasesExpired *telemetry.Counter
	leasesStolen  *telemetry.Counter
	leasesFreed   *telemetry.Counter
	heartbeats    *telemetry.Counter
	results       *telemetry.Counter
	resultsDup    *telemetry.Counter
	resultsRej    *telemetry.Counter
	throttled     *telemetry.Counter
	archived      *telemetry.Counter
}

func newSvcMetrics(reg *telemetry.Registry) svcMetrics {
	return svcMetrics{
		campaigns:     reg.Counter("service_campaigns_submitted_total"),
		leasesGranted: reg.Counter("service_leases_granted_total"),
		leasesExpired: reg.Counter("service_leases_expired_total"),
		leasesStolen:  reg.Counter("service_leases_stolen_total"),
		leasesFreed:   reg.Counter("service_leases_released_total"),
		heartbeats:    reg.Counter("service_heartbeats_total"),
		results:       reg.Counter("service_results_total"),
		resultsDup:    reg.Counter("service_results_duplicate_total"),
		resultsRej:    reg.Counter("service_results_rejected_total"),
		throttled:     reg.Counter("service_uploads_throttled_total"),
		archived:      reg.Counter("service_campaigns_archived_total"),
	}
}

// Coordinator hosts campaigns and serves the lease/heartbeat/result
// protocol. All methods are safe for concurrent use.
type Coordinator struct {
	opts Options
	reg  *telemetry.Registry
	met  svcMetrics
	now  func() time.Time

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string
	leases    map[string]*lease
	workers   map[string]time.Time
	seq       int
	leaseSeq  uint64
	shutdown  bool
	// pendingUploads counts Complete calls currently in the decode +
	// journal-fsync pipeline; the backpressure bound caps it.
	pendingUploads int
	// archived lists evicted campaigns (retention), newest last. Only
	// their identity survives; the artifacts live in DataDir/done/.
	archived []CampaignInfo

	reaperStop chan struct{}
	merges     sync.WaitGroup
}

// NewCoordinator builds a coordinator, restoring any durable campaigns
// found in Options.DataDir (their journals replay exactly like -resume:
// completed shards are restored, the rest re-queued).
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.MaxPendingUploads == 0 {
		opts.MaxPendingUploads = 64
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Coordinator{
		opts:       opts,
		reg:        reg,
		met:        newSvcMetrics(reg),
		now:        opts.Clock,
		campaigns:  make(map[string]*campaign),
		leases:     make(map[string]*lease),
		workers:    make(map[string]time.Time),
		reaperStop: make(chan struct{}),
	}
	if c.now == nil {
		c.now = time.Now
	}
	// Derived queue gauges refresh at scrape time instead of riding the
	// lease hot path.
	depthG := reg.Gauge("service_queue_depth")
	leasedG := reg.Gauge("service_shards_leased")
	activeG := reg.Gauge("service_campaigns_active")
	completeG := reg.Gauge("service_campaigns_complete")
	workersG := reg.Gauge("service_workers_live")
	reg.OnCollect(func() {
		pending, leased, active, complete, live := c.poolStats()
		depthG.Set(float64(pending))
		leasedG.Set(float64(leased))
		activeG.Set(float64(active))
		completeG.Set(float64(complete))
		workersG.Set(float64(live))
	})
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: data dir: %w", err)
		}
		if err := c.restore(); err != nil {
			return nil, err
		}
	}
	go c.reaper()
	return c, nil
}

// Telemetry returns the service-level metric registry.
func (c *Coordinator) Telemetry() *telemetry.Registry { return c.reg }

// LeaseTTL returns the configured lease lifetime.
func (c *Coordinator) LeaseTTL() time.Duration { return c.opts.LeaseTTL }

// poolStats aggregates queue depth and liveness for the derived gauges.
func (c *Coordinator) poolStats() (pending, leased, active, complete, live int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, camp := range c.campaigns {
		campPending := 0
		for _, st := range camp.states {
			switch st {
			case shardPending:
				campPending++
			case shardLeased:
				leased++
			}
		}
		pending += campPending
		if camp.result != nil || camp.mergeErr != nil {
			complete++
		} else {
			active++
		}
	}
	horizon := c.now().Add(-3 * c.opts.LeaseTTL)
	for _, seen := range c.workers {
		if seen.After(horizon) {
			live++
		}
	}
	return
}

// specFile and journalFile name a campaign's durable artifacts.
func (c *Coordinator) specFile(id string) string {
	return filepath.Join(c.opts.DataDir, id+".spec.json")
}
func (c *Coordinator) journalFile(id string) string {
	return filepath.Join(c.opts.DataDir, id+".ckpt")
}

// doneDir is where archived campaign artifacts move.
func (c *Coordinator) doneDir() string { return filepath.Join(c.opts.DataDir, "done") }

// specSidecar is the durable submission record next to the journal.
type specSidecar struct {
	ID      string       `json:"id"`
	Spec    CampaignSpec `json:"spec"`
	Created time.Time    `json:"created"`
}

// restore re-hosts every campaign whose sidecar survives in DataDir.
func (c *Coordinator) restore() error {
	entries, err := os.ReadDir(c.opts.DataDir)
	if err != nil {
		return fmt.Errorf("service: scan data dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".spec.json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(c.opts.DataDir, name))
		if err != nil {
			return fmt.Errorf("service: read sidecar %s: %w", name, err)
		}
		var side specSidecar
		if err := json.Unmarshal(data, &side); err != nil {
			return fmt.Errorf("service: parse sidecar %s: %w", name, err)
		}
		if _, err := c.host(side.ID, side.Spec, side.Created, true); err != nil {
			return fmt.Errorf("service: restore %s: %w", side.ID, err)
		}
		if n := parseSeq(side.ID); n >= c.seq {
			c.seq = n
		}
	}
	// Archived campaigns keep their listing across restarts: each eviction
	// left an info snapshot in done/.
	if doneEntries, err := os.ReadDir(c.doneDir()); err == nil {
		for _, e := range doneEntries {
			if !strings.HasSuffix(e.Name(), ".info.json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(c.doneDir(), e.Name()))
			if err != nil {
				continue
			}
			var info CampaignInfo
			if json.Unmarshal(data, &info) != nil || info.ID == "" {
				continue
			}
			info.State = CampaignArchived
			c.archived = append(c.archived, info)
			if n := parseSeq(info.ID); n >= c.seq {
				c.seq = n
			}
		}
		sort.Slice(c.archived, func(i, j int) bool {
			return c.archived[i].Created.Before(c.archived[j].Created)
		})
	}
	return nil
}

// enforceRetain archives completed campaigns beyond the retention window,
// oldest first. No-op when Options.Retain is 0 (keep everything).
func (c *Coordinator) enforceRetain() {
	if c.opts.Retain <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var complete []*campaign
	for _, id := range c.order {
		camp := c.campaigns[id]
		if camp.result != nil || camp.mergeErr != nil {
			complete = append(complete, camp)
		}
	}
	for len(complete) > c.opts.Retain {
		c.archiveLocked(complete[0])
		complete = complete[1:]
	}
}

// archiveLocked evicts one completed campaign: its journal is closed, the
// sidecar/journal pair moves to DataDir/done/ alongside an info snapshot,
// and only its listing stays in memory. Callers hold c.mu.
func (c *Coordinator) archiveLocked(camp *campaign) {
	info := c.infoLocked(camp)
	info.State = CampaignArchived
	if camp.journal != nil {
		camp.journal.Close()
		camp.journal = nil
	}
	if c.opts.DataDir != "" {
		if err := os.MkdirAll(c.doneDir(), 0o755); err == nil {
			os.Rename(c.specFile(camp.id), filepath.Join(c.doneDir(), camp.id+".spec.json"))
			os.Rename(c.journalFile(camp.id), filepath.Join(c.doneDir(), camp.id+".ckpt"))
			if data, err := json.MarshalIndent(info, "", "  "); err == nil {
				os.WriteFile(filepath.Join(c.doneDir(), camp.id+".info.json"), append(data, '\n'), 0o644)
			}
		}
	}
	delete(c.campaigns, camp.id)
	for i, id := range c.order {
		if id == camp.id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.archived = append(c.archived, info)
	c.met.archived.Inc()
}

// parseSeq extracts the numeric sequence from a campaign ID ("c7-..." -> 7).
func parseSeq(id string) int {
	rest, ok := strings.CutPrefix(id, "c")
	if !ok {
		return 0
	}
	numStr, _, ok := strings.Cut(rest, "-")
	if !ok {
		return 0
	}
	n := 0
	for _, r := range numStr {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// Submit plans and hosts a new campaign, returning its info. With a data
// dir, the spec sidecar and journal are created before Submit returns, so
// an accepted campaign survives any later crash.
func (c *Coordinator) Submit(spec CampaignSpec) (CampaignInfo, error) {
	c.mu.Lock()
	if c.shutdown {
		c.mu.Unlock()
		return CampaignInfo{}, ErrShuttingDown
	}
	c.seq++
	seq := c.seq
	c.mu.Unlock()

	// Plan outside the lock — fleet construction is the slow part.
	plan, err := spec.Plan()
	if err != nil {
		return CampaignInfo{}, err
	}
	id := fmt.Sprintf("c%d-%08x", seq, uint32(plan.Fingerprint()))
	created := c.now().UTC()
	if c.opts.DataDir != "" {
		side, err := json.MarshalIndent(specSidecar{ID: id, Spec: spec, Created: created}, "", "  ")
		if err != nil {
			return CampaignInfo{}, err
		}
		if err := os.WriteFile(c.specFile(id), append(side, '\n'), 0o644); err != nil {
			return CampaignInfo{}, fmt.Errorf("service: write sidecar: %w", err)
		}
	}
	camp, err := c.host(id, spec, created, false)
	if err != nil {
		return CampaignInfo{}, err
	}
	c.met.campaigns.Inc()
	return c.info(camp), nil
}

// host builds the in-memory campaign (planning it if needed) and, with a
// data dir, opens its durable journal (resuming when restore is set).
func (c *Coordinator) host(id string, spec CampaignSpec, created time.Time, restore bool) (*campaign, error) {
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	n := len(plan.Shards())
	camp := &campaign{
		id:        id,
		spec:      spec,
		plan:      plan,
		created:   created,
		states:    make([]shardState, n),
		results:   make([]*farm.ShardResult, n),
		reclaimed: make([]bool, n),
		leases:    make(map[int]*lease),
		board:     farm.NewStatusBoard(),
		reg:       telemetry.NewRegistry(),
		stream:    triage.NewStream(),
		finished:  make(chan struct{}),
	}
	camp.board.Track(plan.Shards(), 0)
	camp.intentsC = camp.reg.Counter("campaign_intents_total")
	camp.shardsC = camp.reg.Counter("campaign_shards_done_total")
	camp.crashesC = camp.reg.Counter("campaign_crashes_total")
	camp.leasesC = camp.reg.Counter("campaign_leases_granted_total")
	camp.reg.Gauge("campaign_shards_total").Set(float64(n))

	if c.opts.DataDir != "" {
		jnl, restored, resumed, err := plan.OpenJournal(c.journalFile(id), restore)
		if err != nil {
			return nil, err
		}
		camp.journal = jnl
		camp.resumed = resumed
		for idx, sr := range restored {
			if sr == nil {
				continue
			}
			camp.states[idx] = shardDone
			camp.results[idx] = sr
			camp.done++
			camp.sent += sr.Sent
			camp.board.MarkResumed(idx, sr.Sent)
			camp.stream.Add(sr.Crashes)
			camp.intentsC.Add(uint64(sr.Sent))
			camp.shardsC.Inc()
			camp.crashesC.Add(uint64(len(sr.Crashes)))
		}
	}

	c.mu.Lock()
	c.campaigns[id] = camp
	c.order = append(c.order, id)
	allDone := camp.done == n
	if allDone && !camp.merging {
		camp.merging = true
	}
	c.mu.Unlock()
	if allDone {
		c.merges.Add(1)
		go c.finalize(camp)
	}
	return camp, nil
}

// info renders a campaign's public view; callers must not hold c.mu.
func (c *Coordinator) info(camp *campaign) CampaignInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.infoLocked(camp)
}

func (c *Coordinator) infoLocked(camp *campaign) CampaignInfo {
	inf := CampaignInfo{
		ID:          camp.id,
		Spec:        camp.spec,
		Fingerprint: fmt.Sprintf("%016x", camp.plan.Fingerprint()),
		Shards:      len(camp.states),
		Resumed:     camp.resumed,
		Sent:        camp.sent,
		Created:     camp.created,
	}
	for _, st := range camp.states {
		switch st {
		case shardPending:
			inf.Pending++
		case shardLeased:
			inf.Leased++
		case shardDone:
			inf.Done++
		}
	}
	switch {
	case camp.mergeErr != nil:
		inf.State = CampaignFailed
		inf.Error = camp.mergeErr.Error()
	case camp.result != nil:
		inf.State = CampaignComplete
	case camp.merging:
		inf.State = CampaignMerging
	default:
		inf.State = CampaignRunning
	}
	return inf
}

// Campaigns lists hosted campaigns in submission order, archived evictions
// first (oldest campaigns lead either way).
func (c *Coordinator) Campaigns() []CampaignInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CampaignInfo, 0, len(c.archived)+len(c.order))
	out = append(out, c.archived...)
	for _, id := range c.order {
		out = append(out, c.infoLocked(c.campaigns[id]))
	}
	return out
}

// Campaign returns one campaign's info.
func (c *Coordinator) Campaign(id string) (CampaignInfo, error) {
	c.mu.Lock()
	camp := c.campaigns[id]
	c.mu.Unlock()
	if camp == nil {
		return CampaignInfo{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return c.info(camp), nil
}

// Status returns one campaign's live shard table.
func (c *Coordinator) Status(id string) (farm.StatusSnapshot, error) {
	c.mu.Lock()
	camp := c.campaigns[id]
	c.mu.Unlock()
	if camp == nil {
		return farm.StatusSnapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return camp.board.Status(), nil
}

// CampaignTelemetry returns one campaign's private metric registry.
func (c *Coordinator) CampaignTelemetry(id string) (*telemetry.Registry, error) {
	c.mu.Lock()
	camp := c.campaigns[id]
	c.mu.Unlock()
	if camp == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return camp.reg, nil
}

// Lease grants the next pending shard: campaigns in submission order,
// shards within a campaign largest-first (the same LPT policy the
// in-process farm schedules by), reclaiming any expired leases first.
func (c *Coordinator) Lease(worker string) (LeaseGrant, error) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shutdown {
		return LeaseGrant{}, ErrShuttingDown
	}
	c.workers[worker] = now
	c.reapLocked(now)
	for _, id := range c.order {
		camp := c.campaigns[id]
		best, bestCost := -1, -1
		for idx, st := range camp.states {
			if st != shardPending {
				continue
			}
			if cost := camp.plan.EstimatedIntents(idx); cost > bestCost {
				best, bestCost = idx, cost
			}
		}
		if best < 0 {
			continue
		}
		c.leaseSeq++
		l := &lease{
			id:      fmt.Sprintf("l%d-%s-%d", c.leaseSeq, camp.id, best),
			camp:    camp,
			shard:   best,
			worker:  worker,
			granted: now,
			expires: now.Add(c.opts.LeaseTTL),
		}
		camp.states[best] = shardLeased
		camp.leases[best] = l
		c.leases[l.id] = l
		camp.board.MarkRunning(best, now.Sub(camp.created))
		c.met.leasesGranted.Inc()
		camp.leasesC.Inc()
		if camp.reclaimed[best] {
			c.met.leasesStolen.Inc()
		}
		return LeaseGrant{
			LeaseID:     l.id,
			CampaignID:  camp.id,
			Shard:       best,
			Key:         camp.plan.Shards()[best],
			Fingerprint: fmt.Sprintf("%016x", camp.plan.Fingerprint()),
			Spec:        camp.spec,
			TTLSeconds:  c.opts.LeaseTTL.Seconds(),
		}, nil
	}
	return LeaseGrant{}, ErrNoWork
}

// Heartbeat extends a live lease to now+TTL. A reclaimed, released, or
// completed lease answers ErrLeaseGone — the worker must abandon the shard
// (its result would be rejected anyway).
func (c *Coordinator) Heartbeat(leaseID string) (time.Time, error) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	l := c.leases[leaseID]
	if l == nil {
		return time.Time{}, ErrLeaseGone
	}
	l.expires = now.Add(c.opts.LeaseTTL)
	c.workers[l.worker] = now
	c.met.heartbeats.Inc()
	return l.expires, nil
}

// Release returns a lease's shard to the queue — the graceful-shutdown
// path for a worker that cannot finish its shard.
func (c *Coordinator) Release(leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[leaseID]
	if l == nil {
		return ErrLeaseGone
	}
	delete(c.leases, leaseID)
	delete(l.camp.leases, l.shard)
	l.camp.states[l.shard] = shardPending
	l.camp.board.MarkPending(l.shard)
	c.met.leasesFreed.Inc()
	return nil
}

// Complete accepts a shard result upload: the journal wire form plus the
// uploader's plan fingerprint. The record must match the lease (fingerprint,
// shard index, shard key); accepted records are fsynced to the campaign
// journal before the shard is marked done. Completing the last shard
// triggers the canonical merge in the background.
func (c *Coordinator) Complete(leaseID string, fingerprint string, record []byte) error {
	now := c.now()
	// Backpressure gate, before any lease-state mutation: if the fsync
	// pipeline is saturated the upload is refused outright and the lease is
	// untouched, so the worker can retry the identical request after
	// Retry-After without any protocol consequence.
	c.mu.Lock()
	if c.opts.MaxPendingUploads > 0 && c.pendingUploads >= c.opts.MaxPendingUploads {
		c.met.throttled.Inc()
		c.mu.Unlock()
		return ErrThrottled
	}
	c.pendingUploads++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.pendingUploads--
		c.mu.Unlock()
	}()

	idx, sr, err := farm.DecodeShardRecord(record)
	if err != nil {
		c.met.resultsRej.Inc()
		return fmt.Errorf("%w: %v", ErrBadRecord, err)
	}

	c.mu.Lock()
	c.reapLocked(now)
	l := c.leases[leaseID]
	if l == nil {
		c.met.resultsDup.Inc()
		c.mu.Unlock()
		return ErrLeaseGone
	}
	camp := l.camp
	c.workers[l.worker] = now
	wantFP := fmt.Sprintf("%016x", camp.plan.Fingerprint())
	if fingerprint != wantFP || idx != l.shard || sr.Key != camp.plan.Shards()[idx] {
		// The upload contradicts the lease: refuse it and re-queue the
		// shard — a confused worker must not poison the merge.
		delete(c.leases, leaseID)
		delete(camp.leases, l.shard)
		camp.states[l.shard] = shardPending
		camp.board.MarkPending(l.shard)
		c.met.resultsRej.Inc()
		c.mu.Unlock()
		return fmt.Errorf("%w: fingerprint %s / shard %d does not match lease (want %s / %d)",
			ErrBadRecord, fingerprint, idx, wantFP, l.shard)
	}
	delete(c.leases, leaseID)
	delete(camp.leases, idx)
	camp.states[idx] = shardDone
	camp.results[idx] = sr
	camp.done++
	camp.sent += sr.Sent
	camp.board.MarkDone(idx, sr.Sent, now.Sub(l.granted), l.worker)
	camp.intentsC.Add(uint64(sr.Sent))
	camp.shardsC.Inc()
	camp.crashesC.Add(uint64(len(sr.Crashes)))
	c.met.results.Inc()
	jnl := camp.journal
	allDone := camp.done == len(camp.states)
	if allDone {
		camp.merging = true
	}
	c.mu.Unlock()

	// Durability before acknowledgment: the fsynced journal line is what
	// makes a restart not lose this shard.
	if jnl != nil {
		if err := jnl.AppendEncoded(record); err != nil {
			return err
		}
	}
	camp.stream.Add(sr.Crashes)
	if allDone {
		c.merges.Add(1)
		go c.finalize(camp)
	}
	return nil
}

// finalize merges a finished campaign in canonical plan order, runs triage,
// and renders the canonical export. Runs off the request path; Result and
// Export block on camp.finished.
func (c *Coordinator) finalize(camp *campaign) {
	defer c.merges.Done()
	res, err := camp.plan.Merge(camp.results)
	var export []byte
	if err == nil {
		res.Workers = 0 // execution detail; remote workers are not pool workers
		res.Resumed = camp.resumed
		export, err = ExportResult(res, camp.spec.Seed)
	}
	c.mu.Lock()
	if err != nil {
		camp.mergeErr = err
	} else {
		camp.result = res
		camp.export = export
	}
	c.mu.Unlock()
	camp.stream.Close()
	close(camp.finished)
	c.enforceRetain()
}

// Export returns the canonical merged export of a complete campaign. It
// answers ErrNotComplete while shards are outstanding and blocks only for
// an in-flight merge.
func (c *Coordinator) Export(id string) ([]byte, error) {
	c.mu.Lock()
	camp := c.campaigns[id]
	var merging bool
	if camp != nil {
		merging = camp.merging
	}
	c.mu.Unlock()
	if camp == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !merging {
		return nil, fmt.Errorf("%w: %s", ErrNotComplete, id)
	}
	<-camp.finished
	c.mu.Lock()
	defer c.mu.Unlock()
	if camp.mergeErr != nil {
		return nil, camp.mergeErr
	}
	return camp.export, nil
}

// Result returns the merged farm.Result of a complete campaign (in-process
// callers; the HTTP surface serves Export).
func (c *Coordinator) Result(id string) (*farm.Result, error) {
	c.mu.Lock()
	camp := c.campaigns[id]
	var merging bool
	if camp != nil {
		merging = camp.merging
	}
	c.mu.Unlock()
	if camp == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !merging {
		return nil, fmt.Errorf("%w: %s", ErrNotComplete, id)
	}
	<-camp.finished
	c.mu.Lock()
	defer c.mu.Unlock()
	if camp.mergeErr != nil {
		return nil, camp.mergeErr
	}
	return camp.result, nil
}

// TriageStream returns a campaign's incremental bucket stream.
func (c *Coordinator) TriageStream(id string) (*triage.Stream, error) {
	c.mu.Lock()
	camp := c.campaigns[id]
	c.mu.Unlock()
	if camp == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return camp.stream, nil
}

// reapLocked returns every expired lease's shard to the queue. Callers
// hold c.mu.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if !now.After(l.expires) {
			continue
		}
		delete(c.leases, id)
		delete(l.camp.leases, l.shard)
		l.camp.states[l.shard] = shardPending
		l.camp.reclaimed[l.shard] = true
		l.camp.board.MarkPending(l.shard)
		c.met.leasesExpired.Inc()
	}
}

// reaper periodically reclaims expired leases so shards held by dead
// workers re-queue even while no other worker is polling.
func (c *Coordinator) reaper() {
	interval := c.opts.LeaseTTL / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.reaperStop:
			return
		case <-t.C:
			c.mu.Lock()
			c.reapLocked(c.now())
			c.mu.Unlock()
		}
	}
}

// Shutdown drains the coordinator: new leases and submissions are refused,
// in-flight merges are awaited, and every campaign journal is flushed and
// closed. Outstanding leases are left to the journal's durability story —
// their shards were never recorded done, so a restart re-queues them,
// which is exactly "released" from the workers' point of view.
func (c *Coordinator) Shutdown() error {
	c.mu.Lock()
	if c.shutdown {
		c.mu.Unlock()
		return nil
	}
	c.shutdown = true
	c.mu.Unlock()
	close(c.reaperStop)
	c.merges.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	for _, camp := range c.campaigns {
		if err := camp.journal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		camp.journal = nil
	}
	return firstErr
}
