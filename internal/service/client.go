package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client speaks the coordinator's HTTP API — the worker loop and the farmd
// CLI subcommands share it. Methods translate protocol status codes back
// into the coordinator's sentinel errors (404 -> ErrNotFound, 410 ->
// ErrLeaseGone, 409 -> ErrBadRecord/ErrNotComplete, 503 -> ErrShuttingDown),
// so remote callers branch on the same errors in-process callers do.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://127.0.0.1:8787"). A nil http.Client gets a sane default with a
// timeout suited to the lease protocol.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	return &Client{base: base, hc: hc}
}

// apiError decodes the JSON error envelope and maps status to a sentinel.
func apiError(status int, body []byte) error {
	var eb errorBody
	msg := ""
	if json.Unmarshal(body, &eb) == nil {
		msg = eb.Error
	}
	var base error
	switch status {
	case http.StatusNotFound:
		base = ErrNotFound
	case http.StatusGone:
		base = ErrLeaseGone
	case http.StatusConflict:
		base = ErrBadRecord
	case http.StatusServiceUnavailable:
		base = ErrShuttingDown
	}
	if base != nil {
		if msg != "" {
			return fmt.Errorf("%w (%s)", base, msg)
		}
		return base
	}
	if msg == "" {
		msg = http.StatusText(status)
	}
	return fmt.Errorf("service: http %d: %s", status, msg)
}

// do issues one request; out (when non-nil) receives the decoded 2xx body.
// It returns the raw body and status for callers that need them.
func (c *Client) do(method, path string, in, out any) ([]byte, int, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, 0, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		return data, resp.StatusCode, apiError(resp.StatusCode, data)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(data, out); err != nil {
			return data, resp.StatusCode, fmt.Errorf("service: decode response: %w", err)
		}
	}
	return data, resp.StatusCode, nil
}

// Submit posts a campaign spec and returns the hosted campaign's info.
func (c *Client) Submit(spec CampaignSpec) (CampaignInfo, error) {
	var info CampaignInfo
	_, _, err := c.do(http.MethodPost, "/api/v1/campaigns", spec, &info)
	return info, err
}

// Campaigns lists hosted campaigns in submission order.
func (c *Client) Campaigns() ([]CampaignInfo, error) {
	var infos []CampaignInfo
	_, _, err := c.do(http.MethodGet, "/api/v1/campaigns", nil, &infos)
	return infos, err
}

// Campaign fetches one campaign's info.
func (c *Client) Campaign(id string) (CampaignInfo, error) {
	var info CampaignInfo
	_, _, err := c.do(http.MethodGet, "/api/v1/campaigns/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Export fetches the canonical merged export bytes of a complete campaign.
func (c *Client) Export(id string) ([]byte, error) {
	data, _, err := c.do(http.MethodGet, "/api/v1/campaigns/"+url.PathEscape(id)+"/export", nil, nil)
	return data, err
}

// Triage reads the incremental bucket stream after cursor; wait long-polls.
func (c *Client) Triage(id string, cursor int, wait bool) (TriagePage, error) {
	var page TriagePage
	path := "/api/v1/campaigns/" + url.PathEscape(id) + "/triage?cursor=" + strconv.Itoa(cursor)
	if wait {
		path += "&wait=1"
	}
	_, _, err := c.do(http.MethodGet, path, nil, &page)
	return page, err
}

// Lease requests work. It returns (nil, nil) when the queue is empty — the
// worker should back off and poll again.
func (c *Client) Lease(worker string) (*LeaseGrant, error) {
	var grant LeaseGrant
	_, status, err := c.do(http.MethodPost, "/api/v1/leases", leaseRequest{Worker: worker}, &grant)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &grant, nil
}

// Heartbeat extends a lease; ErrLeaseGone means the shard was reclaimed.
func (c *Client) Heartbeat(leaseID string) error {
	_, _, err := c.do(http.MethodPost, "/api/v1/leases/"+url.PathEscape(leaseID)+"/heartbeat", struct{}{}, nil)
	return err
}

// Release returns the lease's shard to the queue.
func (c *Client) Release(leaseID string) error {
	_, _, err := c.do(http.MethodPost, "/api/v1/leases/"+url.PathEscape(leaseID)+"/release", struct{}{}, nil)
	return err
}

// Complete uploads an encoded shard record under the lease.
func (c *Client) Complete(leaseID, fingerprint string, record []byte) error {
	up := resultUpload{Fingerprint: fingerprint, Record: json.RawMessage(record)}
	_, _, err := c.do(http.MethodPost, "/api/v1/leases/"+url.PathEscape(leaseID)+"/result", up, nil)
	return err
}
