package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client speaks the coordinator's HTTP API — the worker loop and the farmd
// CLI subcommands share it. Methods translate protocol status codes back
// into the coordinator's sentinel errors (404 -> ErrNotFound, 410 ->
// ErrLeaseGone, 409 -> ErrBadRecord/ErrNotComplete, 429 -> ErrThrottled,
// 503 -> ErrShuttingDown), so remote callers branch on the same errors
// in-process callers do.
//
// Transient failures retry transparently with exponential backoff and
// jitter: transport errors (connection refused, reset, timeout), 5xx
// responses other than 503, and 429 throttling (honoring the Retry-After
// header). 503 is the coordinator's drain signal and is never retried —
// a draining coordinator wants its workers to exit, not to hammer it.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	// sleep and jitter are test seams; production uses time.Sleep and
	// rand.Float64.
	sleep  func(time.Duration)
	jitter func() float64
}

// RetryPolicy bounds the client's transparent retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 5; 1 disables retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the doubling (default 5s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// backoff is the delay before retry number n (0-based): base·2ⁿ capped at
// MaxDelay, jittered uniformly over [d/2, d] so a restarted coordinator is
// not met by all its workers in lockstep.
func (p RetryPolicy) backoff(n int, jitter func() float64) time.Duration {
	d := p.BaseDelay << n
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(jitter()*float64(d)/2)
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://127.0.0.1:8787"). A nil http.Client gets a sane default with a
// timeout suited to the lease protocol.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	return &Client{
		base:   base,
		hc:     hc,
		retry:  RetryPolicy{}.withDefaults(),
		sleep:  time.Sleep,
		jitter: rand.Float64,
	}
}

// WithRetry overrides the client's retry policy and returns the client.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p.withDefaults()
	return c
}

// apiError decodes the JSON error envelope and maps status to a sentinel.
func apiError(status int, body []byte) error {
	var eb errorBody
	msg := ""
	if json.Unmarshal(body, &eb) == nil {
		msg = eb.Error
	}
	var base error
	switch status {
	case http.StatusNotFound:
		base = ErrNotFound
	case http.StatusGone:
		base = ErrLeaseGone
	case http.StatusConflict:
		base = ErrBadRecord
	case http.StatusTooManyRequests:
		base = ErrThrottled
	case http.StatusServiceUnavailable:
		base = ErrShuttingDown
	}
	if base != nil {
		if msg != "" {
			return fmt.Errorf("%w (%s)", base, msg)
		}
		return base
	}
	if msg == "" {
		msg = http.StatusText(status)
	}
	return fmt.Errorf("service: http %d: %s", status, msg)
}

// do issues one request with transparent retries; out (when non-nil)
// receives the decoded 2xx body. It returns the raw body and status for
// callers that need them.
func (c *Client) do(method, path string, in, out any) ([]byte, int, error) {
	var data []byte
	var status int
	var retryAfter time.Duration
	var err error
	for attempt := 0; ; attempt++ {
		data, status, retryAfter, err = c.once(method, path, in, out)
		if !retryableFailure(status, err) || attempt+1 >= c.retry.MaxAttempts {
			return data, status, err
		}
		// A Retry-After hint from the coordinator (429 backpressure)
		// overrides the exponential schedule — the server knows its own
		// fsync budget better than our guess does.
		wait := retryAfter
		if wait <= 0 {
			wait = c.retry.backoff(attempt, c.jitter)
		}
		c.sleep(wait)
	}
}

// retryableFailure reports whether a request outcome is worth retrying:
// transport errors (status 0) and transient server-side failures. 503 is
// the drain signal — retrying it would keep a worker alive exactly when
// the coordinator asked it to go away — and 4xx other than 429 are
// protocol outcomes, not failures.
func retryableFailure(status int, err error) bool {
	if err == nil {
		return false
	}
	switch status {
	case 0: // transport: connection refused, reset, timeout
		return true
	case http.StatusTooManyRequests:
		return true
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// once issues a single HTTP exchange. retryAfter carries the parsed
// Retry-After header (seconds form) when the server sent one.
func (c *Client) once(method, path string, in, out any) ([]byte, int, time.Duration, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, 0, 0, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, 0, 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, retryAfter, err
	}
	if resp.StatusCode >= 400 {
		return data, resp.StatusCode, retryAfter, apiError(resp.StatusCode, data)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(data, out); err != nil {
			return data, resp.StatusCode, retryAfter, fmt.Errorf("service: decode response: %w", err)
		}
	}
	return data, resp.StatusCode, retryAfter, nil
}

// Submit posts a campaign spec and returns the hosted campaign's info.
func (c *Client) Submit(spec CampaignSpec) (CampaignInfo, error) {
	var info CampaignInfo
	_, _, err := c.do(http.MethodPost, "/api/v1/campaigns", spec, &info)
	return info, err
}

// Campaigns lists hosted campaigns in submission order.
func (c *Client) Campaigns() ([]CampaignInfo, error) {
	var infos []CampaignInfo
	_, _, err := c.do(http.MethodGet, "/api/v1/campaigns", nil, &infos)
	return infos, err
}

// Campaign fetches one campaign's info.
func (c *Client) Campaign(id string) (CampaignInfo, error) {
	var info CampaignInfo
	_, _, err := c.do(http.MethodGet, "/api/v1/campaigns/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Export fetches the canonical merged export bytes of a complete campaign.
func (c *Client) Export(id string) ([]byte, error) {
	data, _, err := c.do(http.MethodGet, "/api/v1/campaigns/"+url.PathEscape(id)+"/export", nil, nil)
	return data, err
}

// Triage reads the incremental bucket stream after cursor; wait long-polls.
func (c *Client) Triage(id string, cursor int, wait bool) (TriagePage, error) {
	var page TriagePage
	path := "/api/v1/campaigns/" + url.PathEscape(id) + "/triage?cursor=" + strconv.Itoa(cursor)
	if wait {
		path += "&wait=1"
	}
	_, _, err := c.do(http.MethodGet, path, nil, &page)
	return page, err
}

// Lease requests work. It returns (nil, nil) when the queue is empty — the
// worker should back off and poll again.
func (c *Client) Lease(worker string) (*LeaseGrant, error) {
	var grant LeaseGrant
	_, status, err := c.do(http.MethodPost, "/api/v1/leases", leaseRequest{Worker: worker}, &grant)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &grant, nil
}

// Heartbeat extends a lease; ErrLeaseGone means the shard was reclaimed.
func (c *Client) Heartbeat(leaseID string) error {
	_, _, err := c.do(http.MethodPost, "/api/v1/leases/"+url.PathEscape(leaseID)+"/heartbeat", struct{}{}, nil)
	return err
}

// Release returns the lease's shard to the queue.
func (c *Client) Release(leaseID string) error {
	_, _, err := c.do(http.MethodPost, "/api/v1/leases/"+url.PathEscape(leaseID)+"/release", struct{}{}, nil)
	return err
}

// Complete uploads an encoded shard record under the lease.
func (c *Client) Complete(leaseID, fingerprint string, record []byte) error {
	up := resultUpload{Fingerprint: fingerprint, Record: json.RawMessage(record)}
	_, _, err := c.do(http.MethodPost, "/api/v1/leases/"+url.PathEscape(leaseID)+"/result", up, nil)
	return err
}
