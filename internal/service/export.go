package service

import (
	"encoding/json"

	"repro/internal/experiments"
	"repro/internal/farm"
	"repro/internal/report"
)

// ExportResult renders a merged farm result as the canonical
// machine-readable study export (internal/report's stable JSON schema),
// with the execution metadata (sharding section) omitted: the scientific
// outputs — campaign counts, combined figures, triage buckets with their
// flight windows — are functions of the spec alone, so this rendering is
// byte-identical whether the campaign ran on one process, one worker, or a
// fleet of workers with mid-run deaths. The service's acceptance tests and
// the verify.sh smoke diff exactly these bytes.
func ExportResult(res *farm.Result, seed uint64) ([]byte, error) {
	sr := &experiments.StudyResult{
		Fleet:    res.Fleet,
		Combined: res.Combined,
		Sent:     res.Sent,
		Triage:   res.Triage,
	}
	for _, cr := range res.Campaigns {
		sr.Campaigns = append(sr.Campaigns, experiments.CampaignOutcome{
			Campaign:  cr.Campaign,
			Report:    cr.Report,
			Sent:      cr.Sent,
			Summaries: cr.Summaries,
		})
	}
	exp := report.ExportStudy(sr, seed)
	data, err := json.MarshalIndent(exp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
