// Package service turns the single-process fuzzing farm into
// fuzzing-as-a-service: a long-running coordinator that hosts many
// concurrent campaigns and a worker protocol that shards them across the
// network.
//
// The split preserves the farm's determinism contract end to end:
//
//   - The coordinator plans each submitted campaign with farm.NewPlan —
//     the same canonical (campaign, package) shard order and the same plan
//     fingerprint the checkpoint journal uses.
//   - Workers lease shards over HTTP. Every lease embeds the plan
//     fingerprint and the full campaign spec; the worker re-derives the
//     plan locally and refuses the lease if its fingerprint disagrees, so
//     a worker can never execute a shard from the wrong run.
//   - Shard results cross the wire in the checkpoint journal's own record
//     format, and the coordinator appends the uploaded bytes verbatim to
//     the campaign's fsynced JSONL journal — the journal IS the durable
//     work queue. A coordinator restart replays it exactly like -resume.
//   - Leases expire: a worker that dies mid-shard simply stops
//     heartbeating, the reaper returns the shard to the queue, and another
//     worker re-executes it. Re-execution is harmless because shard
//     results are pure functions of (plan, shard index).
//   - When the last shard lands the coordinator merges in canonical plan
//     order and runs triage, exactly like farm.Run — so the merged report
//     is byte-identical to a single-process run of the same spec, however
//     many workers took part and however many died.
//
// Triage buckets additionally stream while the campaign runs: each
// uploaded shard's crash records feed a triage.Stream whose update log
// (bucket births and growth, with exemplar intents and flight-recorder
// windows) is served incrementally over HTTP.
package service

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/farm"
)

// CampaignSpec is the submission body: everything that identifies a
// campaign's work. Two specs that normalize equal produce equal plans and
// equal fingerprints — and therefore byte-identical merged reports.
type CampaignSpec struct {
	// Seed drives fleet construction and per-shard generator splits.
	Seed uint64 `json:"seed"`
	// Fleet selects the population: "wear" (default), "phone", or
	// "legacy-phone" (the intent-campaign fleets the farm supports).
	Fleet string `json:"fleet,omitempty"`
	// Campaigns is a subset of "ABCDF" (e.g. "AC", or "F" for the fault
	// injection campaign); empty means the paper's four (A-D).
	Campaigns string `json:"campaigns,omitempty"`
	// Packages restricts the run to the named packages; empty fuzzes the
	// whole fleet.
	Packages []string `json:"packages,omitempty"`
	// Quick scales generation down like the CLIs' -quick flag (k shrinks
	// campaign volume ~k²); 0 means full paper scale. Ignored when Gen is
	// set.
	Quick int `json:"quick,omitempty"`
	// Gen sets explicit generator strides, overriding Quick.
	Gen *GenSpec `json:"gen,omitempty"`
	// DisableSnapshot forces workers onto the fresh-boot path (results are
	// identical; exists for benchmarking, like the CLI flag).
	DisableSnapshot bool `json:"disableSnapshot,omitempty"`
	// DisablePersist turns off the workers' hot-device reuse between leased
	// shards (results are identical; exists for benchmarking and bisection,
	// like the CLI flag).
	DisablePersist bool `json:"disablePersist,omitempty"`
	// DisableTriage skips crash bucketing and minimization.
	DisableTriage bool `json:"disableTriage,omitempty"`
}

// GenSpec mirrors core.GeneratorConfig's scaling knobs (the seed is never
// part of a spec: shard seeds derive from CampaignSpec.Seed).
type GenSpec struct {
	ActionStride   int `json:"actionStride,omitempty"`
	SchemeStride   int `json:"schemeStride,omitempty"`
	RandomVariants int `json:"randomVariants,omitempty"`
	ExtrasVariants int `json:"extrasVariants,omitempty"`
}

// parseFleet maps a spec's fleet name to the farm-supported kinds.
func parseFleet(name string) (apps.FleetKind, error) {
	switch strings.TrimSpace(name) {
	case "", "wear":
		return apps.WearFleet, nil
	case "phone":
		return apps.PhoneFleet, nil
	case "legacy-phone":
		return apps.LegacyPhoneFleet, nil
	default:
		return 0, fmt.Errorf("service: unsupported fleet %q (want wear, phone, or legacy-phone)", name)
	}
}

// FarmConfig converts the spec into the farm.Config both sides plan from.
// The conversion is deterministic: coordinator and worker derive the same
// plan (and fingerprint) from the same spec.
func (s CampaignSpec) FarmConfig() (farm.Config, error) {
	kind, err := parseFleet(s.Fleet)
	if err != nil {
		return farm.Config{}, err
	}
	var campaigns []core.Campaign
	for _, r := range strings.ToUpper(strings.TrimSpace(s.Campaigns)) {
		c, err := core.ParseCampaign(string(r))
		if err != nil {
			return farm.Config{}, fmt.Errorf("service: campaigns %q: %w", s.Campaigns, err)
		}
		campaigns = append(campaigns, c)
	}
	gen := core.GeneratorConfig{}
	switch {
	case s.Gen != nil:
		gen.ActionStride = s.Gen.ActionStride
		gen.SchemeStride = s.Gen.SchemeStride
		gen.RandomVariants = s.Gen.RandomVariants
		gen.ExtrasVariants = s.Gen.ExtrasVariants
	case s.Quick > 0:
		gen.ActionStride = s.Quick
		gen.SchemeStride = (s.Quick + 1) / 2
		gen.RandomVariants = 1
		gen.ExtrasVariants = 1
	}
	return farm.Config{
		Seed:          s.Seed,
		Fleet:         kind,
		Campaigns:     campaigns,
		Packages:      s.Packages,
		Gen:           gen,
		Sharding:      core.Sharding{DisableSnapshot: s.DisableSnapshot, DisablePersist: s.DisablePersist},
		DisableTriage: s.DisableTriage,
	}, nil
}

// Plan builds the canonical shard plan for the spec. Both the coordinator
// (to seed the queue) and workers (to verify leases and execute shards)
// call this; equal specs yield equal plans.
func (s CampaignSpec) Plan() (*farm.Plan, error) {
	cfg, err := s.FarmConfig()
	if err != nil {
		return nil, err
	}
	return farm.NewPlan(cfg)
}
