package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"repro/internal/farm"
)

// WorkerOptions configures one worker process's lease loop.
type WorkerOptions struct {
	// Coordinator is the base URL of the farmd API.
	Coordinator string
	// Name identifies this worker in leases and liveness metrics.
	Name string
	// Poll is the idle backoff between empty lease polls (default 500ms).
	Poll time.Duration
	// ExitWhenIdle stops the loop the first time the queue answers "no
	// work" — the batch mode scripts use (a service worker keeps polling).
	ExitWhenIdle bool
	// Throttle sleeps after each lease grant before executing the shard.
	// It exists so tests and demos can widen the mid-lease window (e.g. to
	// kill the worker while it provably holds a lease); production leaves
	// it zero.
	Throttle time.Duration
	// Log receives progress lines; nil discards them.
	Log *log.Logger
	// client overrides the HTTP client (tests).
	client *Client
}

// WorkerStats summarizes one RunWorker loop.
type WorkerStats struct {
	// Executed counts shards completed and accepted by the coordinator.
	Executed int
	// Lost counts shards whose lease was reclaimed before upload (the
	// result was discarded; another worker re-executes the shard).
	Lost int
	// Intents totals intents sent across accepted shards.
	Intents int
}

// RunWorker executes the worker side of the lease protocol until ctx is
// cancelled or (with ExitWhenIdle) the queue drains:
//
//	lease -> verify fingerprint -> execute -> upload, heartbeating throughout.
//
// The worker re-plans every campaign spec locally and refuses a lease whose
// fingerprint differs from its own plan's — executing a shard from the
// wrong run is impossible by construction, not by trust. Plans are cached
// by fingerprint, so a campaign's fleet is built once per worker, not once
// per shard.
//
// Cancelling ctx drains: the in-flight shard is finished and uploaded
// (results are never thrown away at shutdown), pending-but-unstarted leases
// are released back to the queue, and the loop returns. A worker killed
// outright instead simply stops heartbeating and the reaper re-queues its
// shard — drain is the polite fast path, expiry the crash-safe slow path.
func RunWorker(ctx context.Context, opts WorkerOptions) (WorkerStats, error) {
	var stats WorkerStats
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Name == "" {
		opts.Name = "worker"
	}
	logger := opts.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	client := opts.client
	if client == nil {
		client = NewClient(opts.Coordinator, nil)
	}
	// One persistent executor per campaign fingerprint: the worker executes
	// leased shards one at a time, so each campaign's shards share a locally
	// re-planned fleet AND a hot device that is reset in place between
	// leases (farm persistent mode).
	executors := make(map[string]*farm.Executor)

	for {
		if ctx.Err() != nil {
			return stats, nil
		}
		grant, err := client.Lease(opts.Name)
		if err != nil {
			if errors.Is(err, ErrShuttingDown) {
				logger.Printf("coordinator draining; worker exiting")
				return stats, nil
			}
			return stats, fmt.Errorf("service: lease: %w", err)
		}
		if grant == nil {
			if opts.ExitWhenIdle {
				return stats, nil
			}
			select {
			case <-ctx.Done():
				return stats, nil
			case <-time.After(opts.Poll):
			}
			continue
		}

		executor := executors[grant.Fingerprint]
		if executor == nil {
			p, err := grant.Spec.Plan()
			if err != nil {
				client.Release(grant.LeaseID)
				return stats, fmt.Errorf("service: plan campaign %s: %w", grant.CampaignID, err)
			}
			if fp := fmt.Sprintf("%016x", p.Fingerprint()); fp != grant.Fingerprint {
				// The lease belongs to a different run than the spec
				// plans to — refuse it rather than upload foreign data.
				client.Release(grant.LeaseID)
				return stats, fmt.Errorf("service: lease %s fingerprint %s does not match local plan %s",
					grant.LeaseID, grant.Fingerprint, fp)
			}
			executor = p.NewExecutor()
			executors[grant.Fingerprint] = executor
		}

		logger.Printf("lease %s: campaign %s shard %d (%s)", grant.LeaseID, grant.CampaignID, grant.Shard, grant.Key)
		if opts.Throttle > 0 {
			select {
			case <-time.After(opts.Throttle):
			case <-ctx.Done():
				// Drain: nothing executed yet, so hand the shard straight
				// back instead of making the queue wait out the TTL.
				client.Release(grant.LeaseID)
				logger.Printf("released lease %s (drain before execution)", grant.LeaseID)
				return stats, nil
			}
		}

		// Heartbeat for as long as the shard runs — even through a drain,
		// since the result is still going to be uploaded.
		hbCtx, stopHB := context.WithCancel(context.Background())
		var hbWG sync.WaitGroup
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			interval := time.Duration(grant.TTLSeconds * float64(time.Second) / 3)
			if interval <= 0 {
				interval = time.Second
			}
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-t.C:
					if err := client.Heartbeat(grant.LeaseID); err != nil {
						logger.Printf("heartbeat %s: %v", grant.LeaseID, err)
						if errors.Is(err, ErrLeaseGone) {
							return
						}
					}
				}
			}
		}()

		sr, execErr := executor.ExecuteShard(grant.Shard)
		stopHB()
		hbWG.Wait()
		if execErr != nil {
			client.Release(grant.LeaseID)
			return stats, fmt.Errorf("service: execute shard %d of %s: %w", grant.Shard, grant.CampaignID, execErr)
		}
		record, err := farm.EncodeShardRecord(grant.Shard, sr)
		if err != nil {
			client.Release(grant.LeaseID)
			return stats, fmt.Errorf("service: encode shard record: %w", err)
		}
		switch err := client.Complete(grant.LeaseID, grant.Fingerprint, record); {
		case err == nil:
			stats.Executed++
			stats.Intents += sr.Sent
			logger.Printf("completed shard %d (%s): %d intents", grant.Shard, grant.Key, sr.Sent)
		case errors.Is(err, ErrLeaseGone):
			// Reclaimed mid-run (slow shard, short TTL, or a coordinator
			// restart). The shard is someone else's now; the re-execution
			// produces identical bytes, so dropping this copy is safe.
			stats.Lost++
			logger.Printf("lost lease %s before upload: %v", grant.LeaseID, err)
		default:
			return stats, fmt.Errorf("service: upload shard %d of %s: %w", grant.Shard, grant.CampaignID, err)
		}

		if ctx.Err() != nil {
			logger.Printf("drained; worker exiting after %d shards", stats.Executed)
			return stats, nil
		}
	}
}
