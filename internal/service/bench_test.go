package service

import (
	"fmt"
	"testing"

	"repro/internal/farm"
)

// benchSpec plans two shards so completing one never triggers the final
// merge (the benchmark cycles a single shard forever).
func benchSpec() CampaignSpec {
	return CampaignSpec{
		Seed:      1,
		Campaigns: "A",
		Packages:  []string{"com.heartwatch.wear", "com.strava.wear"},
		Quick:     10,
	}
}

// requeueForBench returns a completed shard to the pending state so the
// upload benchmark can cycle it. Benchmark plumbing only.
func (c *Coordinator) requeueForBench(campID string, idx int, sent int) {
	c.mu.Lock()
	camp := c.campaigns[campID]
	camp.states[idx] = shardPending
	camp.results[idx] = nil
	camp.done--
	camp.sent -= sent
	c.mu.Unlock()
}

// BenchmarkQueueLeaseCycle measures the coordinator's queue hot path — one
// grant + heartbeat + release round trip on an in-memory queue. This is the
// per-shard protocol overhead a worker pays on top of shard execution;
// scripts/bench.sh gates it so queue bookkeeping stays microseconds while
// shard execution stays milliseconds.
func BenchmarkQueueLeaseCycle(b *testing.B) {
	c, err := NewCoordinator(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Shutdown()
	if _, err := c.Submit(benchSpec()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := c.Lease("bench")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Heartbeat(g.LeaseID); err != nil {
			b.Fatal(err)
		}
		if err := c.Release(g.LeaseID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueResultRoundTrip measures the durable upload path: grant a
// lease, upload a pre-executed shard record (validated, fsynced to the
// campaign journal, folded into the triage stream), then requeue. The fsync
// dominates — this is the floor on coordinator result throughput.
func BenchmarkQueueResultRoundTrip(b *testing.B) {
	c, err := NewCoordinator(Options{DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Shutdown()
	info, err := c.Submit(benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	// Execute the shard the LPT policy will grant first, once, up front.
	g, err := c.Lease("bench")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := g.Spec.Plan()
	if err != nil {
		b.Fatal(err)
	}
	sr, err := plan.ExecuteShard(g.Shard)
	if err != nil {
		b.Fatal(err)
	}
	record, err := farm.EncodeShardRecord(g.Shard, sr)
	if err != nil {
		b.Fatal(err)
	}
	fp := fmt.Sprintf("%016x", plan.Fingerprint())
	if err := c.Release(g.LeaseID); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := c.Lease("bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Complete(g.LeaseID, fp, record); err != nil {
			b.Fatal(err)
		}
		c.requeueForBench(info.ID, g.Shard, sr.Sent)
	}
}
