package service

// Internal tests for the client's retry loop and the coordinator's upload
// backpressure: they reach the sleep/jitter seams and the pending-upload
// counter directly, which the external protocol tests cannot.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farm"
)

// stubbedClient returns a client whose backoff sleeps are recorded instead
// of slept and whose jitter is pinned to the top of the range.
func stubbedClient(base string, p RetryPolicy) (*Client, *[]time.Duration) {
	var slept []time.Duration
	c := NewClient(base, nil).WithRetry(p)
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.jitter = func() float64 { return 1.0 }
	return c, &slept
}

func TestClientRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("[]"))
	}))
	defer ts.Close()

	c, slept := stubbedClient(ts.URL, RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second})
	if _, err := c.Campaigns(); err != nil {
		t.Fatalf("campaigns after transient errors: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3", calls.Load())
	}
	// Exponential schedule with jitter pinned high: 10ms then 20ms.
	if len(*slept) != 2 || (*slept)[0] != 10*time.Millisecond || (*slept)[1] != 20*time.Millisecond {
		t.Fatalf("backoffs = %v, want [10ms 20ms]", *slept)
	}
}

func TestClientRetriesConnectionRefused(t *testing.T) {
	// A server that has already closed: every dial is refused.
	ts := httptest.NewServer(http.NotFoundHandler())
	base := ts.URL
	ts.Close()

	c, slept := stubbedClient(base, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Second})
	_, err := c.Campaigns()
	if err == nil {
		t.Fatal("expected transport error")
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2 (3 attempts)", len(*slept))
	}
}

func TestClientDoesNotRetryDrain(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrShuttingDown)
	}))
	defer ts.Close()

	c, slept := stubbedClient(ts.URL, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Second})
	_, err := c.Lease("w1")
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("err = %v, want ErrShuttingDown", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("drain signal was retried: %d calls, %d sleeps", calls.Load(), len(*slept))
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			writeError(w, http.StatusTooManyRequests, ErrThrottled)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	c, slept := stubbedClient(ts.URL, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Second})
	if err := c.Heartbeat("l1"); err != nil {
		t.Fatalf("heartbeat after throttle: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Fatalf("backoffs = %v, want the server's 2s Retry-After hint", *slept)
	}
}

func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}.withDefaults()
	low := func() float64 { return 0 }
	high := func() float64 { return 1 }
	if got := p.backoff(0, low); got != 50*time.Millisecond {
		t.Errorf("backoff(0, low) = %v, want 50ms", got)
	}
	if got := p.backoff(0, high); got != 100*time.Millisecond {
		t.Errorf("backoff(0, high) = %v, want 100ms", got)
	}
	// Far past the doubling range the delay pins to MaxDelay.
	if got := p.backoff(40, high); got != time.Second {
		t.Errorf("backoff(40, high) = %v, want the 1s cap", got)
	}
}

// TestUploadBackpressure saturates the pending-upload gate and checks the
// whole path: ErrThrottled at the coordinator, 429 + Retry-After on the
// wire, the throttle counter, and acceptance of the retried identical
// upload once the pipeline drains.
func TestUploadBackpressure(t *testing.T) {
	coord, err := NewCoordinator(Options{MaxPendingUploads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown()
	spec := CampaignSpec{Seed: 1, Campaigns: "A", Packages: []string{"com.heartwatch.wear"}, Quick: 10}
	if _, err := coord.Submit(spec); err != nil {
		t.Fatal(err)
	}
	grant, err := coord.Lease("w1")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := grant.Spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := plan.ExecuteShard(grant.Shard)
	if err != nil {
		t.Fatal(err)
	}
	record, err := farm.EncodeShardRecord(grant.Shard, sr)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(Handler(coord))
	defer ts.Close()
	client, slept := stubbedClient(ts.URL, RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Second})

	// Saturate the gate, then upload: the first attempt must answer 429
	// with the Retry-After hint, and the client-level retry must succeed
	// once the pipeline drains.
	coord.mu.Lock()
	coord.pendingUploads = 1
	coord.mu.Unlock()
	go func() {
		time.Sleep(50 * time.Millisecond)
		coord.mu.Lock()
		coord.pendingUploads = 0
		coord.mu.Unlock()
	}()
	realSleep := *slept
	client.sleep = func(d time.Duration) {
		realSleep = append(realSleep, d)
		time.Sleep(100 * time.Millisecond) // let the drain goroutine run
	}
	if err := client.Complete(grant.LeaseID, grant.Fingerprint, record); err != nil {
		t.Fatalf("upload after throttle: %v", err)
	}
	if len(realSleep) != 1 || realSleep[0] != time.Second {
		t.Fatalf("backoffs = %v, want the 1s Retry-After hint", realSleep)
	}
	snap := coord.Telemetry().Snapshot()
	if snap.Counters["service_uploads_throttled_total"] != 1 {
		t.Fatalf("throttle counter = %d, want 1", snap.Counters["service_uploads_throttled_total"])
	}
	// The throttled attempt must not have touched the lease: the retried
	// upload was accepted under the same lease ID.
	info, err := coord.Campaign(grant.CampaignID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Done != 1 {
		t.Fatalf("done = %d, want 1", info.Done)
	}
}
