package service_test

// External-protocol tests for the robustness satellites: workers surviving
// a flaky coordinator, campaign retention/archiving, and the fault-injection
// campaign running end to end through the service.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/service"
)

// flakyHandler wraps h and fails each distinct (method, path) its first
// `failures` times with a 500 before it reaches the coordinator — the shape
// of a proxy hiccup or an overloaded accept queue. Keying by request rather
// than a global counter keeps the injection deterministic: every call
// succeeds within failures+1 attempts no matter how requests interleave.
func flakyHandler(h http.Handler, failures int) (http.Handler, *atomic.Int64) {
	var mu sync.Mutex
	seen := make(map[string]int)
	var injected atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Method + " " + r.URL.Path
		mu.Lock()
		n := seen[key]
		seen[key]++
		mu.Unlock()
		if n < failures {
			injected.Add(1)
			http.Error(w, `{"error":"injected transient failure"}`, http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}), &injected
}

// TestWorkerSurvivesFlakyCoordinator runs the full distributed protocol
// through a coordinator that 500s the first two hits of every endpoint: the
// client's retry loop must absorb every injected failure and the merged
// export must still be byte-identical to the single-process run.
func TestWorkerSurvivesFlakyCoordinator(t *testing.T) {
	coord := newCoordinator(t, service.Options{LeaseTTL: 2 * time.Second})
	flaky, injected := flakyHandler(service.Handler(coord), 2)
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	// The CLI client talks through the same flaky front door.
	client := service.NewClient(ts.URL, nil).
		WithRetry(service.RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	info, err := client.Submit(testSpec())
	if err != nil {
		t.Fatalf("submit through flaky coordinator: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan service.WorkerStats, 1)
	go func() {
		s, err := service.RunWorker(ctx, service.WorkerOptions{
			Coordinator: ts.URL,
			Name:        "flaky-w",
			Poll:        20 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("worker: %v", err)
		}
		done <- s
	}()

	waitForState(t, func() (service.CampaignInfo, error) { return client.Campaign(info.ID) }, service.CampaignComplete)
	cancel()
	stats := <-done
	if stats.Executed != 4 {
		t.Errorf("worker executed %d shards, want 4", stats.Executed)
	}
	if injected.Load() == 0 {
		t.Fatal("the flaky handler never injected a failure; the test proves nothing")
	}

	got, err := client.Export(info.ID)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	want, err := serialBaseline()
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("export through flaky coordinator differs from single-process run")
	}
	t.Logf("worker survived %d injected failures", injected.Load())
}

// TestRetentionArchivesCompletedCampaigns checks the -retain window: the
// oldest completed campaign's artifacts move to DataDir/done/, its listing
// survives in memory and across a coordinator restart.
func TestRetentionArchivesCompletedCampaigns(t *testing.T) {
	dir := t.TempDir()
	coord := newCoordinator(t, service.Options{DataDir: dir, Retain: 1})

	complete := func(spec service.CampaignSpec) service.CampaignInfo {
		t.Helper()
		info, err := coord.Submit(spec)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		grant, err := coord.Lease("w1")
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if err := coord.Complete(grant.LeaseID, grant.Fingerprint, executeShard(t, grant)); err != nil {
			t.Fatalf("complete: %v", err)
		}
		return waitForState(t, func() (service.CampaignInfo, error) { return coord.Campaign(info.ID) }, service.CampaignComplete)
	}

	first := complete(tinySpec())
	spec2 := tinySpec()
	spec2.Seed = 2
	second, err := coord.Submit(spec2)
	if err != nil {
		t.Fatalf("submit second: %v", err)
	}
	grant, err := coord.Lease("w1")
	if err != nil {
		t.Fatalf("lease second: %v", err)
	}
	if err := coord.Complete(grant.LeaseID, grant.Fingerprint, executeShard(t, grant)); err != nil {
		t.Fatalf("complete second: %v", err)
	}

	// The second campaign's merge evicts the first; archiving runs after
	// finalize, so poll the listing.
	archived := waitForArchived(t, coord, first.ID)
	if archived.Shards != first.Shards || archived.Sent != first.Sent {
		t.Errorf("archived listing lost its tallies: %+v vs %+v", archived, first)
	}

	for _, name := range []string{first.ID + ".spec.json", first.ID + ".ckpt", first.ID + ".info.json"} {
		if _, err := os.Stat(filepath.Join(dir, "done", name)); err != nil {
			t.Errorf("archived artifact missing: %v", err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, first.ID+".spec.json")); !os.IsNotExist(err) {
		t.Errorf("archived sidecar still in the live dir (err=%v)", err)
	}
	if _, err := coord.Export(first.ID); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Errorf("export of archived campaign: err = %v, want unknown campaign", err)
	}
	// The survivor is untouched.
	if _, err := coord.Export(second.ID); err != nil {
		t.Errorf("export of retained campaign: %v", err)
	}

	// A restarted coordinator still lists the archived ID.
	if err := coord.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	restarted := newCoordinator(t, service.Options{DataDir: dir, Retain: 1})
	if got := waitForArchived(t, restarted, first.ID); got.Created.IsZero() {
		t.Errorf("restarted listing lost the archive timestamp: %+v", got)
	}
}

// waitForArchived polls the campaign listing until id shows state archived.
func waitForArchived(t *testing.T, coord *service.Coordinator, id string) service.CampaignInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		for _, info := range coord.Campaigns() {
			if info.ID == id && info.State == service.CampaignArchived {
				return info
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached state archived: %+v", id, coord.Campaigns())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDistributedFaultCampaign runs campaign F through the coordinator and
// networked workers and checks the merged export is byte-identical to the
// in-process run, with the fault-resilience table populated.
func TestDistributedFaultCampaign(t *testing.T) {
	spec := service.CampaignSpec{
		Seed:      1,
		Campaigns: "F",
		Packages:  []string{"com.heartwatch.wear", "com.strava.wear"},
		Quick:     10,
	}
	cfg, err := spec.FarmConfig()
	if err != nil {
		t.Fatalf("farm config: %v", err)
	}
	cfg.Sharding.Workers = 1
	res, err := farm.Run(cfg)
	if err != nil {
		t.Fatalf("serial fault run: %v", err)
	}
	want, err := service.ExportResult(res, spec.Seed)
	if err != nil {
		t.Fatalf("serial export: %v", err)
	}
	if !strings.Contains(string(want), `"faultResilience"`) {
		t.Fatal("serial fault export carries no faultResilience table")
	}

	coord := newCoordinator(t, service.Options{})
	ts := httptest.NewServer(service.Handler(coord))
	defer ts.Close()
	client := service.NewClient(ts.URL, nil)
	info, err := client.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go service.RunWorker(ctx, service.WorkerOptions{
			Coordinator: ts.URL,
			Name:        "fw",
			Poll:        20 * time.Millisecond,
		})
	}
	waitForState(t, func() (service.CampaignInfo, error) { return client.Campaign(info.ID) }, service.CampaignComplete)
	cancel()

	got, err := client.Export(info.ID)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("distributed fault export differs from single-process run:\n--- serial ---\n%s\n--- distributed ---\n%s", want, got)
	}
}
