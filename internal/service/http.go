package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/farm"
	"repro/internal/telemetry"
	"repro/internal/triage"
)

// HTTP surface. All non-2xx responses carry a JSON error body
// {"error": "..."}; protocol outcomes map onto status codes:
//
//	POST /api/v1/campaigns                submit a CampaignSpec       -> 201 CampaignInfo
//	GET  /api/v1/campaigns                list campaigns              -> 200 [CampaignInfo]
//	GET  /api/v1/campaigns/{id}           one campaign                -> 200 CampaignInfo | 404
//	GET  /api/v1/campaigns/{id}/export    canonical merged export     -> 200 | 404 | 409 (not complete)
//	GET  /api/v1/campaigns/{id}/triage    bucket stream since ?cursor -> 200 TriagePage (long-poll with ?wait=1)
//	GET  /api/v1/campaigns/{id}/metrics   per-campaign registry       -> 200 Prometheus text | 404
//	GET  /farm?campaign={id}              live shard board            -> 200 | 404 (also ?letter= filter)
//	POST /api/v1/leases                   request work {worker}       -> 200 LeaseGrant | 204 (no work) | 503 (draining)
//	POST /api/v1/leases/{id}/heartbeat    extend lease                -> 200 {expires} | 410 (reclaimed)
//	POST /api/v1/leases/{id}/release      return shard to queue       -> 204 | 410
//	POST /api/v1/leases/{id}/result       upload shard record         -> 204 | 409 (mismatch) | 410 | 429 (+Retry-After)
//
// The service routes compose with the telemetry server: Routes returns
// telemetry.Route entries for telemetry.Serve, so farmd's one listener
// serves /metrics, /healthz, the farm board, and the campaign API together.

// leaseRequest is the body of POST /api/v1/leases.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// resultUpload is the body of POST /api/v1/leases/{id}/result. Record holds
// the EncodeShardRecord bytes verbatim (json.RawMessage keeps them
// byte-exact through the envelope), so the coordinator journals exactly
// what the worker encoded.
type resultUpload struct {
	Fingerprint string          `json:"fingerprint"`
	Record      json.RawMessage `json:"record"`
}

// heartbeatResponse answers a successful heartbeat.
type heartbeatResponse struct {
	Expires time.Time `json:"expires"`
}

// TriagePage is one read of the incremental bucket stream.
type TriagePage struct {
	Updates []triage.BucketUpdate `json:"updates"`
	// Cursor resumes the next read (pass as ?cursor=).
	Cursor int `json:"cursor"`
	// Closed means the campaign is merged: no further updates will arrive.
	Closed bool `json:"closed"`
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeServiceError maps the coordinator's sentinel errors to status codes.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrLeaseGone):
		writeError(w, http.StatusGone, err)
	case errors.Is(err, ErrBadRecord), errors.Is(err, ErrNotComplete):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrThrottled):
		// Backpressure: tell the uploader when to come back. The hint is
		// deliberately short — the fsync pipeline drains in well under a
		// second; the client's jittered backoff spreads the herd.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// Handler returns the coordinator's full HTTP API as one handler.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	for _, r := range Routes(c) {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// Routes returns the API as telemetry server routes, so farmd mounts the
// campaign API, the live farm board, and /metrics on a single listener.
func Routes(c *Coordinator) []telemetry.Route {
	return []telemetry.Route{
		{Pattern: "POST /api/v1/campaigns", Handler: http.HandlerFunc(c.handleSubmit)},
		{Pattern: "GET /api/v1/campaigns", Handler: http.HandlerFunc(c.handleList)},
		{Pattern: "GET /api/v1/campaigns/{id}", Handler: http.HandlerFunc(c.handleCampaign)},
		{Pattern: "GET /api/v1/campaigns/{id}/export", Handler: http.HandlerFunc(c.handleExport)},
		{Pattern: "GET /api/v1/campaigns/{id}/triage", Handler: http.HandlerFunc(c.handleTriage)},
		{Pattern: "GET /api/v1/campaigns/{id}/metrics", Handler: http.HandlerFunc(c.handleCampaignMetrics)},
		{Pattern: "GET /farm", Handler: http.HandlerFunc(c.handleFarm)},
		{Pattern: "POST /api/v1/leases", Handler: http.HandlerFunc(c.handleLease)},
		{Pattern: "POST /api/v1/leases/{id}/heartbeat", Handler: http.HandlerFunc(c.handleHeartbeat)},
		{Pattern: "POST /api/v1/leases/{id}/release", Handler: http.HandlerFunc(c.handleRelease)},
		{Pattern: "POST /api/v1/leases/{id}/result", Handler: http.HandlerFunc(c.handleResult)},
	}
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: parse spec: %w", err))
		return
	}
	info, err := c.Submit(spec)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Campaigns())
}

func (c *Coordinator) handleCampaign(w http.ResponseWriter, r *http.Request) {
	info, err := c.Campaign(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleExport(w http.ResponseWriter, r *http.Request) {
	data, err := c.Export(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (c *Coordinator) handleTriage(w http.ResponseWriter, r *http.Request) {
	stream, err := c.TriageStream(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	cursor, _ := strconv.Atoi(r.URL.Query().Get("cursor"))
	var page TriagePage
	if r.URL.Query().Get("wait") != "" {
		page.Updates, page.Cursor, page.Closed = stream.Wait(r.Context(), cursor)
	} else {
		page.Updates, page.Cursor, page.Closed = stream.Since(cursor)
	}
	writeJSON(w, http.StatusOK, page)
}

func (c *Coordinator) handleCampaignMetrics(w http.ResponseWriter, r *http.Request) {
	reg, err := c.CampaignTelemetry(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w)
}

// handleFarm serves the live shard board. ?campaign= selects a campaign by
// ID (default: the most recently submitted); unknown IDs answer 404 with a
// JSON error body. The per-campaign board itself understands ?letter= for
// filtering down to one campaign letter's shards.
func (c *Coordinator) handleFarm(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("campaign")
	c.mu.Lock()
	if id == "" && len(c.order) > 0 {
		id = c.order[len(c.order)-1]
	}
	camp := c.campaigns[id]
	c.mu.Unlock()
	if camp == nil {
		if id == "" {
			writeError(w, http.StatusNotFound, errors.New("service: no campaigns hosted yet"))
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrNotFound, id))
		return
	}
	// farm.StatusHandler's own filter parameter is ?campaign= (a campaign
	// letter); the service claims that name for campaign IDs, so translate
	// ?letter= into the board's query.
	if letter := r.URL.Query().Get("letter"); letter != "" {
		q := r.URL.Query()
		q.Set("campaign", letter)
		r = r.Clone(r.Context())
		r.URL.RawQuery = q.Encode()
	} else if id != "" {
		q := r.URL.Query()
		q.Del("campaign")
		r = r.Clone(r.Context())
		r.URL.RawQuery = q.Encode()
	}
	farm.StatusHandler(camp.board).ServeHTTP(w, r)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: parse lease request: %w", err))
		return
	}
	if req.Worker == "" {
		req.Worker = "anonymous"
	}
	grant, err := c.Lease(req.Worker)
	switch {
	case errors.Is(err, ErrNoWork):
		w.WriteHeader(http.StatusNoContent)
	case err != nil:
		writeServiceError(w, err)
	default:
		writeJSON(w, http.StatusOK, grant)
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	expires, err := c.Heartbeat(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, heartbeatResponse{Expires: expires})
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	if err := c.Release(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var up resultUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: parse result upload: %w", err))
		return
	}
	if err := c.Complete(r.PathValue("id"), up.Fingerprint, up.Record); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
