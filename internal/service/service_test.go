package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// testSpec is the campaign the distributed tests shard: two packages, two
// campaigns -> four shards, small enough to execute many times per test run.
func testSpec() service.CampaignSpec {
	return service.CampaignSpec{
		Seed:      1,
		Campaigns: "AB",
		Packages:  []string{"com.heartwatch.wear", "com.strava.wear"},
		Quick:     10,
	}
}

// tinySpec plans exactly one shard — the unit the lease edge-case table
// operates on.
func tinySpec() service.CampaignSpec {
	return service.CampaignSpec{
		Seed:      1,
		Campaigns: "A",
		Packages:  []string{"com.heartwatch.wear"},
		Quick:     10,
	}
}

// serialBaseline runs testSpec through the in-process farm engine once per
// test binary and returns the canonical export — the bytes every
// distributed execution must reproduce exactly.
var serialBaseline = sync.OnceValues(func() ([]byte, error) {
	spec := testSpec()
	cfg, err := spec.FarmConfig()
	if err != nil {
		return nil, err
	}
	cfg.Sharding.Workers = 1
	res, err := farm.Run(cfg)
	if err != nil {
		return nil, err
	}
	return service.ExportResult(res, spec.Seed)
})

// fakeClock drives lease expiry without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newCoordinator(t *testing.T, opts service.Options) *service.Coordinator {
	t.Helper()
	c, err := service.NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(func() { c.Shutdown() })
	return c
}

// executeShard runs one shard of the lease's campaign locally and returns
// the journal-form record a worker would upload.
func executeShard(t *testing.T, grant service.LeaseGrant) []byte {
	t.Helper()
	plan, err := grant.Spec.Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	sr, err := plan.ExecuteShard(grant.Shard)
	if err != nil {
		t.Fatalf("execute shard %d: %v", grant.Shard, err)
	}
	record, err := farm.EncodeShardRecord(grant.Shard, sr)
	if err != nil {
		t.Fatalf("encode record: %v", err)
	}
	return record
}

func counterValue(reg *telemetry.Registry, name string) uint64 {
	return reg.Snapshot().Counters[name]
}

func waitForState(t *testing.T, fetch func() (service.CampaignInfo, error), state string) service.CampaignInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, err := fetch()
		if err != nil {
			t.Fatalf("campaign info: %v", err)
		}
		if info.State == state {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck in state %q (want %q): %+v", info.State, state, info)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLeaseEdgeCases drives the lease protocol through its corner states
// with a fake clock: expiry mid-shard, the double-grant race, heartbeats
// after reclamation, and fingerprint-mismatch rejection.
func TestLeaseEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		spec service.CampaignSpec
		run  func(t *testing.T, c *service.Coordinator, clk *fakeClock, reg *telemetry.Registry)
	}{
		{
			name: "expiry mid-shard reclaims and re-grants",
			spec: tinySpec(),
			run: func(t *testing.T, c *service.Coordinator, clk *fakeClock, reg *telemetry.Registry) {
				victim, err := c.Lease("victim")
				if err != nil {
					t.Fatalf("victim lease: %v", err)
				}
				// Shard is held: nothing for a second worker.
				if _, err := c.Lease("thief"); !errors.Is(err, service.ErrNoWork) {
					t.Fatalf("lease while held = %v, want ErrNoWork", err)
				}
				clk.Advance(c.LeaseTTL() + time.Second)
				stolen, err := c.Lease("thief")
				if err != nil {
					t.Fatalf("lease after expiry: %v", err)
				}
				if stolen.Shard != victim.Shard {
					t.Fatalf("thief got shard %d, want reclaimed shard %d", stolen.Shard, victim.Shard)
				}
				// The victim finishes late: its upload must be refused — the
				// shard belongs to the thief now.
				record := executeShard(t, victim)
				if err := c.Complete(victim.LeaseID, victim.Fingerprint, record); !errors.Is(err, service.ErrLeaseGone) {
					t.Fatalf("late Complete = %v, want ErrLeaseGone", err)
				}
				if err := c.Complete(stolen.LeaseID, stolen.Fingerprint, record); err != nil {
					t.Fatalf("thief Complete: %v", err)
				}
				if got := counterValue(reg, "service_leases_expired_total"); got != 1 {
					t.Errorf("leases_expired = %d, want 1", got)
				}
				if got := counterValue(reg, "service_leases_stolen_total"); got != 1 {
					t.Errorf("leases_stolen = %d, want 1", got)
				}
			},
		},
		{
			name: "double-grant race hands out distinct shards",
			spec: testSpec(),
			run: func(t *testing.T, c *service.Coordinator, clk *fakeClock, reg *telemetry.Registry) {
				const racers = 8
				grants := make(chan service.LeaseGrant, racers)
				var wg sync.WaitGroup
				for i := 0; i < racers; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						if g, err := c.Lease(fmt.Sprintf("racer-%d", i)); err == nil {
							grants <- g
						}
					}(i)
				}
				wg.Wait()
				close(grants)
				seen := map[int]string{}
				for g := range grants {
					if prev, dup := seen[g.Shard]; dup {
						t.Fatalf("shard %d granted twice (%s and %s)", g.Shard, prev, g.LeaseID)
					}
					seen[g.Shard] = g.LeaseID
				}
				if len(seen) != 4 {
					t.Fatalf("granted %d shards, want all 4", len(seen))
				}
				if _, err := c.Lease("straggler"); !errors.Is(err, service.ErrNoWork) {
					t.Fatalf("lease on drained queue = %v, want ErrNoWork", err)
				}
			},
		},
		{
			name: "heartbeat after reclamation answers gone",
			spec: tinySpec(),
			run: func(t *testing.T, c *service.Coordinator, clk *fakeClock, reg *telemetry.Registry) {
				g, err := c.Lease("w1")
				if err != nil {
					t.Fatalf("lease: %v", err)
				}
				if _, err := c.Heartbeat(g.LeaseID); err != nil {
					t.Fatalf("live heartbeat: %v", err)
				}
				clk.Advance(c.LeaseTTL() + time.Second)
				if _, err := c.Heartbeat(g.LeaseID); !errors.Is(err, service.ErrLeaseGone) {
					t.Fatalf("heartbeat after expiry = %v, want ErrLeaseGone", err)
				}
				// Heartbeats extend: a lease kept warm survives any number
				// of TTL windows.
				g2, err := c.Lease("w2")
				if err != nil {
					t.Fatalf("re-lease: %v", err)
				}
				for i := 0; i < 5; i++ {
					clk.Advance(c.LeaseTTL() / 2)
					if _, err := c.Heartbeat(g2.LeaseID); err != nil {
						t.Fatalf("heartbeat %d: %v", i, err)
					}
				}
			},
		},
		{
			name: "fingerprint mismatch rejects upload and requeues",
			spec: tinySpec(),
			run: func(t *testing.T, c *service.Coordinator, clk *fakeClock, reg *telemetry.Registry) {
				g, err := c.Lease("w1")
				if err != nil {
					t.Fatalf("lease: %v", err)
				}
				record := executeShard(t, g)
				if err := c.Complete(g.LeaseID, "00000000deadbeef", record); !errors.Is(err, service.ErrBadRecord) {
					t.Fatalf("mismatched Complete = %v, want ErrBadRecord", err)
				}
				if got := counterValue(reg, "service_results_rejected_total"); got != 1 {
					t.Errorf("results_rejected = %d, want 1", got)
				}
				// The rejected upload voided the lease and requeued the
				// shard; a clean retry completes it.
				if err := c.Complete(g.LeaseID, g.Fingerprint, record); !errors.Is(err, service.ErrLeaseGone) {
					t.Fatalf("Complete on voided lease = %v, want ErrLeaseGone", err)
				}
				g2, err := c.Lease("w2")
				if err != nil {
					t.Fatalf("re-lease after reject: %v", err)
				}
				if g2.Shard != g.Shard {
					t.Fatalf("requeued shard = %d, want %d", g2.Shard, g.Shard)
				}
				if err := c.Complete(g2.LeaseID, g2.Fingerprint, record); err != nil {
					t.Fatalf("clean retry: %v", err)
				}
			},
		},
		{
			name: "wrong shard index in record is rejected",
			spec: tinySpec(),
			run: func(t *testing.T, c *service.Coordinator, clk *fakeClock, reg *telemetry.Registry) {
				g, err := c.Lease("w1")
				if err != nil {
					t.Fatalf("lease: %v", err)
				}
				plan, err := g.Spec.Plan()
				if err != nil {
					t.Fatalf("plan: %v", err)
				}
				sr, err := plan.ExecuteShard(g.Shard)
				if err != nil {
					t.Fatalf("execute: %v", err)
				}
				record, err := farm.EncodeShardRecord(g.Shard+7, sr)
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
				if err := c.Complete(g.LeaseID, g.Fingerprint, record); !errors.Is(err, service.ErrBadRecord) {
					t.Fatalf("wrong-index Complete = %v, want ErrBadRecord", err)
				}
			},
		},
		{
			name: "release returns the shard immediately",
			spec: tinySpec(),
			run: func(t *testing.T, c *service.Coordinator, clk *fakeClock, reg *telemetry.Registry) {
				g, err := c.Lease("w1")
				if err != nil {
					t.Fatalf("lease: %v", err)
				}
				if err := c.Release(g.LeaseID); err != nil {
					t.Fatalf("release: %v", err)
				}
				if err := c.Release(g.LeaseID); !errors.Is(err, service.ErrLeaseGone) {
					t.Fatalf("double release = %v, want ErrLeaseGone", err)
				}
				if _, err := c.Lease("w2"); err != nil {
					t.Fatalf("re-lease after release: %v", err)
				}
				if got := counterValue(reg, "service_leases_released_total"); got != 1 {
					t.Errorf("leases_released = %d, want 1", got)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			reg := telemetry.NewRegistry()
			c := newCoordinator(t, service.Options{Telemetry: reg, Clock: clk.Now})
			if _, err := c.Submit(tc.spec); err != nil {
				t.Fatalf("submit: %v", err)
			}
			tc.run(t, c, clk, reg)
		})
	}
}

// TestDistributedMergeByteIdentical is the acceptance invariant end to end:
// a campaign sharded over HTTP across two workers — with a third "worker"
// killed mid-lease so its shard is reclaimed and re-executed — merges to an
// export byte-identical to the single-process farm run of the same spec.
func TestDistributedMergeByteIdentical(t *testing.T) {
	reg := telemetry.NewRegistry()
	coord := newCoordinator(t, service.Options{
		DataDir:   t.TempDir(),
		LeaseTTL:  200 * time.Millisecond,
		Telemetry: reg,
	})
	ts := httptest.NewServer(service.Handler(coord))
	defer ts.Close()
	client := service.NewClient(ts.URL, nil)

	info, err := client.Submit(testSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if info.Shards != 4 {
		t.Fatalf("shards = %d, want 4", info.Shards)
	}

	// The victim takes the largest shard and dies: no heartbeat, no upload.
	victim, err := client.Lease("victim")
	if err != nil {
		t.Fatalf("victim lease: %v", err)
	}
	t.Logf("victim holds shard %d (%s); killing it", victim.Shard, victim.Key)

	// Two live workers chew through the queue; the victim's shard joins it
	// once the reaper notices the missing heartbeats.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	stats := make([]service.WorkerStats, 2)
	for i := range stats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := service.RunWorker(ctx, service.WorkerOptions{
				Coordinator: ts.URL,
				Name:        fmt.Sprintf("w%d", i),
				Poll:        20 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			stats[i] = s
		}(i)
	}

	final := waitForState(t, func() (service.CampaignInfo, error) { return client.Campaign(info.ID) }, service.CampaignComplete)
	cancel()
	wg.Wait()

	if got := stats[0].Executed + stats[1].Executed; got != 4 {
		t.Errorf("live workers executed %d shards, want 4 (victim's shard re-executed)", got)
	}
	if counterValue(reg, "service_leases_expired_total") == 0 {
		t.Error("victim's lease never expired")
	}
	if counterValue(reg, "service_leases_stolen_total") == 0 {
		t.Error("victim's shard was never re-granted")
	}
	if final.Done != 4 || final.Pending != 0 || final.Leased != 0 {
		t.Errorf("final tallies = %+v", final)
	}

	got, err := client.Export(info.ID)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	want, err := serialBaseline()
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("distributed export differs from single-process run:\n--- serial ---\n%s\n--- distributed ---\n%s", want, got)
	}

	// The triage stream is closed and its bucket totals agree with the
	// merged export's triage section.
	page, err := client.Triage(info.ID, 0, false)
	if err != nil {
		t.Fatalf("triage stream: %v", err)
	}
	if !page.Closed {
		t.Error("triage stream still open after merge")
	}
	var exp struct {
		Triage struct {
			Buckets []struct {
				Hash  string `json:"hash"`
				Count int    `json:"count"`
			} `json:"buckets"`
		} `json:"triage"`
	}
	if err := json.Unmarshal(got, &exp); err != nil {
		t.Fatalf("parse export: %v", err)
	}
	streamCounts := map[uint64]int{}
	for _, up := range page.Updates {
		streamCounts[up.Hash] = up.Count
	}
	if len(exp.Triage.Buckets) == 0 {
		t.Fatal("export has no triage buckets; the test fleet should crash")
	}
	if len(streamCounts) != len(exp.Triage.Buckets) {
		t.Errorf("stream saw %d buckets, export has %d", len(streamCounts), len(exp.Triage.Buckets))
	}
}

// TestCoordinatorRestartResumes proves the queue is durable: a coordinator
// shut down mid-campaign comes back with completed shards restored from the
// journal, hands out only the remainder, and still merges byte-identically.
func TestCoordinatorRestartResumes(t *testing.T) {
	dir := t.TempDir()
	first := newCoordinator(t, service.Options{DataDir: dir})
	info, err := first.Submit(testSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Complete two of four shards, then stop the coordinator.
	for i := 0; i < 2; i++ {
		g, err := first.Lease("pre-restart")
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if err := first.Complete(g.LeaseID, g.Fingerprint, executeShard(t, g)); err != nil {
			t.Fatalf("complete %d: %v", i, err)
		}
	}
	if err := first.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	second := newCoordinator(t, service.Options{DataDir: dir})
	infos := second.Campaigns()
	if len(infos) != 1 || infos[0].ID != info.ID {
		t.Fatalf("restored campaigns = %+v, want [%s]", infos, info.ID)
	}
	if infos[0].Done != 2 || infos[0].Resumed != 2 || infos[0].Pending != 2 {
		t.Fatalf("restored tallies = %+v, want 2 done (resumed), 2 pending", infos[0])
	}

	ts := httptest.NewServer(service.Handler(second))
	defer ts.Close()
	stats, err := service.RunWorker(context.Background(), service.WorkerOptions{
		Coordinator:  ts.URL,
		Name:         "post-restart",
		ExitWhenIdle: true,
	})
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	if stats.Executed != 2 {
		t.Errorf("post-restart worker executed %d shards, want exactly the 2 missing", stats.Executed)
	}

	client := service.NewClient(ts.URL, nil)
	waitForState(t, func() (service.CampaignInfo, error) { return client.Campaign(info.ID) }, service.CampaignComplete)
	got, err := client.Export(info.ID)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	want, err := serialBaseline()
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}
	if string(got) != string(want) {
		t.Error("post-restart export differs from single-process run")
	}
}

// TestWorkerDrainReleasesLease: a worker cancelled before it starts
// executing hands its lease back instead of letting the TTL run out.
func TestWorkerDrainReleasesLease(t *testing.T) {
	reg := telemetry.NewRegistry()
	coord := newCoordinator(t, service.Options{Telemetry: reg})
	ts := httptest.NewServer(service.Handler(coord))
	defer ts.Close()
	client := service.NewClient(ts.URL, nil)

	info, err := client.Submit(tinySpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := service.RunWorker(ctx, service.WorkerOptions{
			Coordinator: ts.URL,
			Name:        "drainer",
			Poll:        10 * time.Millisecond,
			Throttle:    time.Hour, // park the worker between lease and execution
		})
		done <- err
	}()

	// Wait until the worker holds the lease, then drain it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		inf, err := client.Campaign(info.ID)
		if err != nil {
			t.Fatalf("info: %v", err)
		}
		if inf.Leased == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never took the lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	inf, err := client.Campaign(info.ID)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if inf.Leased != 0 || inf.Pending != 1 {
		t.Errorf("after drain: %d leased, %d pending; want the shard released", inf.Leased, inf.Pending)
	}
	if got := counterValue(reg, "service_leases_released_total"); got != 1 {
		t.Errorf("leases_released = %d, want 1", got)
	}
	if got := counterValue(reg, "service_leases_expired_total"); got != 0 {
		t.Errorf("leases_expired = %d, want 0 (drain must not rely on expiry)", got)
	}
}

// TestSubmitValidation rejects malformed specs with useful errors.
func TestSubmitValidation(t *testing.T) {
	coord := newCoordinator(t, service.Options{})
	cases := []struct {
		name string
		spec service.CampaignSpec
	}{
		{"unknown fleet", service.CampaignSpec{Seed: 1, Fleet: "tablet", Quick: 10}},
		{"bad campaign letter", service.CampaignSpec{Seed: 1, Campaigns: "AX", Quick: 10}},
		{"unknown package", service.CampaignSpec{Seed: 1, Packages: []string{"com.nope"}, Quick: 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := coord.Submit(tc.spec); err == nil {
				t.Fatal("submit accepted an invalid spec")
			}
		})
	}
}

// TestHTTPProtocolSurface pins the API's error contract: JSON error bodies
// with the documented status codes, 204 on an empty queue, and the /farm
// board with its campaign filter.
func TestHTTPProtocolSurface(t *testing.T) {
	coord := newCoordinator(t, service.Options{})
	ts := httptest.NewServer(service.Handler(coord))
	defer ts.Close()

	getJSON := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if len(body) > 0 {
			if err := json.Unmarshal(body, &m); err != nil {
				t.Fatalf("GET %s: non-JSON body %q", path, body)
			}
		}
		return resp.StatusCode, m
	}

	// Empty service: unknown campaign and empty board both 404 with JSON.
	if code, m := getJSON("/api/v1/campaigns/nope"); code != http.StatusNotFound || m["error"] == "" {
		t.Errorf("unknown campaign: code=%d body=%v", code, m)
	}
	if code, m := getJSON("/farm"); code != http.StatusNotFound || m["error"] == "" {
		t.Errorf("empty /farm: code=%d body=%v", code, m)
	}

	// Empty queue: lease answers 204.
	resp, err := http.Post(ts.URL+"/api/v1/leases", "application/json", strings.NewReader(`{"worker":"w"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("lease on empty queue: %d, want 204", resp.StatusCode)
	}

	client := service.NewClient(ts.URL, nil)
	info, err := client.Submit(testSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Export before completion is a conflict.
	if _, err := client.Export(info.ID); !errors.Is(err, service.ErrBadRecord) {
		t.Errorf("early export error = %v, want 409-mapped error", err)
	}

	// Heartbeat on a never-granted lease is gone.
	if err := client.Heartbeat("l999-bogus"); !errors.Is(err, service.ErrLeaseGone) {
		t.Errorf("bogus heartbeat = %v, want ErrLeaseGone", err)
	}

	// The board serves the submitted campaign, by default and by ID, and
	// filters by campaign letter via ?letter=.
	if code, m := getJSON("/farm"); code != http.StatusOK || m["total"] != float64(4) {
		t.Errorf("/farm: code=%d total=%v", code, m["total"])
	}
	if code, _ := getJSON("/farm?campaign=" + info.ID); code != http.StatusOK {
		t.Errorf("/farm?campaign=%s: code=%d", info.ID, code)
	}
	if code, m := getJSON("/farm?campaign=bogus"); code != http.StatusNotFound || m["error"] == "" {
		t.Errorf("/farm?campaign=bogus: code=%d body=%v", code, m)
	}
	if code, m := getJSON("/farm?campaign=" + info.ID + "&letter=A"); code != http.StatusOK || m["total"] != float64(2) {
		t.Errorf("/farm letter filter: code=%d total=%v", code, m["total"])
	}
	if code, m := getJSON("/farm?campaign=" + info.ID + "&letter=Z"); code != http.StatusNotFound || m["error"] == "" {
		t.Errorf("/farm letter=Z: code=%d body=%v", code, m)
	}

	// Per-campaign metrics expose in Prometheus text form.
	mresp, err := http.Get(ts.URL + "/api/v1/campaigns/" + info.ID + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || !strings.Contains(string(mbody), "campaign_shards_total") {
		t.Errorf("campaign metrics: code=%d body=%q", mresp.StatusCode, mbody)
	}
}
