// Package monkey simulates the Android UI/Application Exerciser Monkey,
// the stress tool QGJ-UI builds on. Monkey generates a stream of
// pseudo-random UI events (touch, trackball, app switch, permission, ...)
// against the device; QGJ-UI runs it first, parses its log to learn the
// events and intents it produced, then mutates and replays them
// (Section III-E, workflow steps 5-6 of Figure 1b).
package monkey

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/manifest"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/wearos"
)

// EventType enumerates Monkey's event categories. QGJ-UI specifies "equal
// percentages for different types of events (e.g. touch, trackball, app
// switch, permission etc.)".
type EventType int

const (
	Touch EventType = iota + 1
	Motion
	Trackball
	Nav
	MajorNav
	SysKeys
	AppSwitch
	FlipKeyboard
	Permission
	Rotation
)

// AllEventTypes lists the generated categories.
var AllEventTypes = []EventType{
	Touch, Motion, Trackball, Nav, MajorNav,
	SysKeys, AppSwitch, FlipKeyboard, Permission, Rotation,
}

// String names the event type the way Monkey's verbose log does.
func (t EventType) String() string {
	switch t {
	case Touch:
		return "Touch"
	case Motion:
		return "Motion"
	case Trackball:
		return "Trackball"
	case Nav:
		return "Nav"
	case MajorNav:
		return "MajorNav"
	case SysKeys:
		return "SysKeys"
	case AppSwitch:
		return "AppSwitch"
	case FlipKeyboard:
		return "FlipKeyboard"
	case Permission:
		return "Permission"
	case Rotation:
		return "Rotation"
	default:
		return "Unknown"
	}
}

// Event is one generated UI event with its (stringly typed) arguments, the
// way they appear in the Monkey log and get replayed through adb.
type Event struct {
	Type EventType
	// Args are the event's textual arguments (coordinates, key codes,
	// permission strings, component names) in log order.
	Args []string
	// Intent is the am-style argument list when the event caused Monkey to
	// emit an intent (AppSwitch events and a share of others).
	Intent []string
}

// IsIntent reports whether the event carries an intent to replay via am.
func (e Event) IsIntent() bool { return len(e.Intent) > 0 }

// LogLines renders the event in Monkey's verbose format.
func (e Event) LogLines() []string {
	var out []string
	out = append(out, fmt.Sprintf(":Sending %s: %s", e.Type, strings.Join(e.Args, " ")))
	if e.IsIntent() {
		out = append(out, "    // Sending intent: am "+strings.Join(e.Intent, " "))
	}
	return out
}

// Config parameterizes a Monkey run.
type Config struct {
	Seed uint64
	// Events is the number of UI events to generate.
	Events int
	// IntentRatio is the probability an event also emits an intent line
	// (app switches always do). Default 0.25.
	IntentRatio float64
}

// Generator produces the event stream for one device's app population.
type Generator struct {
	cfg       Config
	r         *rng.Source
	launchers []string // flattened launcher components
	perms     []string
	generated *telemetry.Counter
}

// NewGenerator builds a generator against the device's installed apps.
func NewGenerator(dev *wearos.OS, cfg Config) *Generator {
	if cfg.IntentRatio <= 0 {
		cfg.IntentRatio = 0.25
	}
	g := &Generator{cfg: cfg, r: rng.New(cfg.Seed).Split("monkey")}
	g.generated = dev.Telemetry().Counter("monkey_events_total")
	for _, p := range dev.Registry().Packages() {
		if l := p.Launcher(); l != nil {
			g.launchers = append(g.launchers, l.Name.FlattenToString())
		}
	}
	g.perms = dev.Permissions().List()
	return g
}

// Generate produces the full event stream.
func (g *Generator) Generate() []Event {
	out := make([]Event, 0, g.cfg.Events)
	for i := 0; i < g.cfg.Events; i++ {
		t := AllEventTypes[i%len(AllEventTypes)] // equal percentages
		out = append(out, g.event(t))
		g.generated.Inc()
	}
	return out
}

func (g *Generator) event(t EventType) Event {
	e := Event{Type: t}
	switch t {
	case Touch, Motion:
		x := g.r.IntBetween(0, 319)
		y := g.r.IntBetween(0, 319)
		e.Args = []string{"(ACTION_DOWN)", coord(float64(x)), coord(float64(y))}
	case Trackball, Nav, MajorNav:
		e.Args = []string{"(dx)", coord(g.r.NormFloat64() * 5), "(dy)", coord(g.r.NormFloat64() * 5)}
	case SysKeys:
		keys := []string{"KEYCODE_HOME", "KEYCODE_BACK", "KEYCODE_POWER", "KEYCODE_WAKEUP"}
		e.Args = []string{rng.Pick(g.r, keys)}
	case AppSwitch:
		e.Args = []string{"(to launcher)"}
		if len(g.launchers) > 0 {
			cmp := rng.Pick(g.r, g.launchers)
			e.Intent = []string{"start", "-n", cmp}
		}
	case FlipKeyboard:
		e.Args = []string{"(open)"}
	case Permission:
		if len(g.perms) > 0 {
			e.Args = []string{rng.Pick(g.r, g.perms)}
		} else {
			e.Args = []string{"android.permission.INTERNET"}
		}
	case Rotation:
		e.Args = []string{"degree=" + strconv.Itoa(g.r.Intn(4)*90)}
	}
	// A share of non-app-switch events also surfaces intents ("These UI
	// events may trigger monkey to generate some intents").
	if !e.IsIntent() && t != AppSwitch && len(g.launchers) > 0 && g.r.Bool(g.cfg.IntentRatio) {
		cmp := rng.Pick(g.r, g.launchers)
		actions := []string{
			"android.intent.action.MAIN",
			"android.intent.action.VIEW",
			"android.intent.action.SEND",
		}
		e.Intent = []string{"start", "-n", cmp, "-a", rng.Pick(g.r, actions)}
	}
	return e
}

func coord(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// RenderLog produces the Monkey verbose log for a run; QGJ-UI parses this
// back (workflow step 6).
func RenderLog(events []Event) string {
	var sb strings.Builder
	sb.WriteString(":Monkey: seed=? count=" + strconv.Itoa(len(events)) + "\n")
	for _, e := range events {
		for _, l := range e.LogLines() {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("// Monkey finished\n")
	return sb.String()
}

// ParseLog reads a Monkey verbose log back into events. Unparseable lines
// are skipped, like QGJ-UI's tolerant log scraper.
func ParseLog(log string) []Event {
	var out []Event
	var last *Event
	for _, line := range strings.Split(log, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, ":Sending "):
			rest := strings.TrimPrefix(trimmed, ":Sending ")
			name, args, ok := strings.Cut(rest, ": ")
			if !ok {
				continue
			}
			t, ok := eventTypeByName(name)
			if !ok {
				continue
			}
			out = append(out, Event{Type: t, Args: strings.Fields(args)})
			last = &out[len(out)-1]
		case strings.HasPrefix(trimmed, "// Sending intent: am "):
			if last == nil {
				continue
			}
			last.Intent = strings.Fields(strings.TrimPrefix(trimmed, "// Sending intent: am "))
		}
	}
	return out
}

func eventTypeByName(name string) (EventType, bool) {
	for _, t := range AllEventTypes {
		if t.String() == name {
			return t, true
		}
	}
	return 0, false
}

// LauncherTargets lists the launcher components Monkey can reach — QGJ-UI
// "only sends intents to launcher activities of various applications"
// (Section IV-D).
func LauncherTargets(dev *wearos.OS) []*manifest.Component {
	var out []*manifest.Component
	for _, p := range dev.Registry().Packages() {
		if l := p.Launcher(); l != nil {
			out = append(out, l)
		}
	}
	return out
}
