package monkey

import (
	"strings"
	"testing"

	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/wearos"
)

func newDevWithLaunchers(t *testing.T, n int) *wearos.OS {
	t.Helper()
	dev := wearos.New(wearos.DefaultEmulatorConfig())
	for i := 0; i < n; i++ {
		pkg := "com.app" + string(rune('a'+i))
		p := &manifest.Package{
			Name:     pkg,
			Category: manifest.NotHealthFitness,
			Origin:   manifest.ThirdParty,
			Components: []*manifest.Component{
				{
					Name: intent.ComponentName{Package: pkg, Class: pkg + ".ui.Main"},
					Type: manifest.Activity, Exported: true, MainLauncher: true,
				},
			},
		}
		if err := dev.InstallPackage(p); err != nil {
			t.Fatal(err)
		}
	}
	return dev
}

func TestGenerateEqualPercentages(t *testing.T) {
	dev := newDevWithLaunchers(t, 3)
	g := NewGenerator(dev, Config{Seed: 1, Events: 1000})
	events := g.Generate()
	if len(events) != 1000 {
		t.Fatalf("generated %d events", len(events))
	}
	counts := map[EventType]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	for _, ty := range AllEventTypes {
		if counts[ty] != 100 {
			t.Errorf("event type %s count = %d, want 100 (equal percentages)", ty, counts[ty])
		}
	}
}

func TestAppSwitchCarriesIntent(t *testing.T) {
	dev := newDevWithLaunchers(t, 2)
	g := NewGenerator(dev, Config{Seed: 2, Events: 100})
	for _, e := range g.Generate() {
		if e.Type == AppSwitch && !e.IsIntent() {
			t.Fatal("AppSwitch event without intent")
		}
	}
}

func TestIntentRatio(t *testing.T) {
	dev := newDevWithLaunchers(t, 2)
	g := NewGenerator(dev, Config{Seed: 3, Events: 10000, IntentRatio: 0.25})
	intents := 0
	events := g.Generate()
	for _, e := range events {
		if e.IsIntent() {
			intents++
		}
	}
	share := float64(intents) / float64(len(events))
	// AppSwitch (10%) always + 25% of the remaining 90% ≈ 32.5%.
	if share < 0.28 || share < 0.25 || share > 0.38 {
		t.Fatalf("intent share = %.3f, want ~0.325", share)
	}
}

func TestLogRoundTrip(t *testing.T) {
	dev := newDevWithLaunchers(t, 2)
	g := NewGenerator(dev, Config{Seed: 4, Events: 200})
	events := g.Generate()
	log := RenderLog(events)
	parsed := ParseLog(log)
	if len(parsed) != len(events) {
		t.Fatalf("parsed %d events, generated %d", len(parsed), len(events))
	}
	for i := range events {
		if parsed[i].Type != events[i].Type {
			t.Fatalf("event %d type = %v, want %v", i, parsed[i].Type, events[i].Type)
		}
		if parsed[i].IsIntent() != events[i].IsIntent() {
			t.Fatalf("event %d intent presence mismatch", i)
		}
		if parsed[i].IsIntent() && strings.Join(parsed[i].Intent, " ") != strings.Join(events[i].Intent, " ") {
			t.Fatalf("event %d intent = %v, want %v", i, parsed[i].Intent, events[i].Intent)
		}
	}
}

func TestParseLogSkipsGarbage(t *testing.T) {
	log := ":Monkey: seed=1\n" +
		"garbage line\n" +
		":Sending Touch: (ACTION_DOWN) 10.00 20.00\n" +
		":Sending Unknowable: x\n" +
		"    // Sending intent: am start -n com.appa/.ui.Main\n" +
		"// Monkey finished\n"
	events := ParseLog(log)
	if len(events) != 1 {
		t.Fatalf("parsed %d events, want 1", len(events))
	}
	if events[0].Type != Touch || !events[0].IsIntent() {
		t.Fatalf("event = %+v", events[0])
	}
}

func TestLauncherTargets(t *testing.T) {
	dev := newDevWithLaunchers(t, 4)
	targets := LauncherTargets(dev)
	if len(targets) != 4 {
		t.Fatalf("launchers = %d", len(targets))
	}
	for _, c := range targets {
		if !c.MainLauncher {
			t.Fatalf("non-launcher target %v", c.Name)
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	dev := newDevWithLaunchers(t, 2)
	a := NewGenerator(dev, Config{Seed: 7, Events: 50}).Generate()
	b := NewGenerator(dev, Config{Seed: 7, Events: 50}).Generate()
	for i := range a {
		if strings.Join(a[i].Args, " ") != strings.Join(b[i].Args, " ") {
			t.Fatalf("event %d args differ", i)
		}
	}
}
