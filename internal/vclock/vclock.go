// Package vclock provides a deterministic virtual clock used to drive the
// simulated Android Wear device and the fuzzing campaigns.
//
// The paper paces injections with wall-clock delays (100 ms between intents,
// 250 ms after every 100 intents) and several OS mechanisms are time based
// (ANR watchdog timeouts, software-aging decay). Running ~1.5M intents in
// real time would take days, so every time-dependent part of the simulator
// reads time through the Clock interface and tests/experiments plug in a
// Virtual clock whose time advances only when the simulation sleeps.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the simulator.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep advances time by d (virtually or in real time).
	Sleep(d time.Duration)
}

// Epoch is the default start instant for virtual clocks. The concrete value
// is arbitrary but fixed so that log output is reproducible.
var Epoch = time.Date(2017, time.June, 1, 9, 0, 0, 0, time.UTC)

// Virtual is a manually advanced clock with support for scheduled callbacks.
// The zero value is not usable; construct with NewVirtual.
//
// Virtual is safe for concurrent use, but callbacks fire synchronously on the
// goroutine that advances time, which keeps the whole simulation
// deterministic and single threaded.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	seq    int64
	timers timerHeap
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock starting at start. If start is the zero
// time, Epoch is used.
func NewVirtual(start time.Time) *Virtual {
	if start.IsZero() {
		start = Epoch
	}
	return &Virtual{now: start}
}

// Reset rewinds the clock to start (Epoch if start is zero), dropping
// every scheduled timer and the timer sequence counter. The clock ends in
// the exact state NewVirtual(start) constructs; the persistent-mode device
// reset uses it to reuse the clock allocation across campaign units.
func (v *Virtual) Reset(start time.Time) {
	if start.IsZero() {
		start = Epoch
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = start
	v.seq = 0
	for i := range v.timers {
		v.timers[i] = nil
	}
	v.timers = v.timers[:0]
}

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances virtual time by d, firing any timers that become due, in
// order. Negative or zero durations only fire timers already due.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the clock forward by d and fires due timers in timestamp
// order (FIFO among equal timestamps).
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	target := v.now.Add(d)
	v.mu.Unlock()
	v.runUntil(target)
}

// AdvanceTo moves the clock forward to the instant t (no-op if t is in the
// past) and fires due timers.
func (v *Virtual) AdvanceTo(t time.Time) { v.runUntil(t) }

// Schedule registers fn to run when the clock reaches now+delay. It returns
// a cancel function; cancelling after the timer fired is a no-op. A
// non-positive delay fires on the next Advance/Sleep call.
func (v *Virtual) Schedule(delay time.Duration, fn func(now time.Time)) (cancel func()) {
	if delay < 0 {
		delay = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	t := &timer{at: v.now.Add(delay), seq: v.seq, fn: fn}
	heap.Push(&v.timers, t)
	return func() {
		v.mu.Lock()
		defer v.mu.Unlock()
		t.cancelled = true
	}
}

// Pending reports the number of timers that have been scheduled but not yet
// fired or cancelled.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range v.timers {
		if !t.cancelled {
			n++
		}
	}
	return n
}

func (v *Virtual) runUntil(target time.Time) {
	for {
		v.mu.Lock()
		if target.After(v.now) {
			// Nothing due before target? Jump straight to target.
			if len(v.timers) == 0 || v.timers[0].at.After(target) {
				v.now = target
				v.mu.Unlock()
				return
			}
			t := heap.Pop(&v.timers).(*timer)
			if t.at.After(v.now) {
				v.now = t.at
			}
			v.mu.Unlock()
			if !t.cancelled {
				t.fn(t.at)
			}
			continue
		}
		// target <= now: fire timers that are already due.
		if len(v.timers) == 0 || v.timers[0].at.After(v.now) {
			v.mu.Unlock()
			return
		}
		t := heap.Pop(&v.timers).(*timer)
		v.mu.Unlock()
		if !t.cancelled {
			t.fn(t.at)
		}
	}
}

type timer struct {
	at        time.Time
	seq       int64
	fn        func(time.Time)
	cancelled bool
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}

func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *timerHeap) Push(x any) { *h = append(*h, x.(*timer)) }

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// System is a Clock backed by the real time package. It is used by the CLI
// tools when running against wall-clock pacing.
type System struct{}

var _ Clock = System{}

// Now returns time.Now().
func (System) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep(d).
func (System) Sleep(d time.Duration) { time.Sleep(d) }
