package vclock

import (
	"testing"
	"time"
)

func TestVirtualStartsAtEpochByDefault(t *testing.T) {
	v := NewVirtual(time.Time{})
	if got := v.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	v.Sleep(150 * time.Millisecond)
	if got, want := v.Now().Sub(start), 150*time.Millisecond; got != want {
		t.Fatalf("advanced %v, want %v", got, want)
	}
}

func TestVirtualNegativeSleepIsNoop(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	v.Sleep(-time.Second)
	if !v.Now().Equal(start) {
		t.Fatalf("negative sleep moved the clock: %v -> %v", start, v.Now())
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	v := NewVirtual(time.Time{})
	var order []int
	v.Schedule(30*time.Millisecond, func(time.Time) { order = append(order, 3) })
	v.Schedule(10*time.Millisecond, func(time.Time) { order = append(order, 1) })
	v.Schedule(20*time.Millisecond, func(time.Time) { order = append(order, 2) })

	v.Advance(25 * time.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("after 25ms fired %v, want [1 2]", order)
	}
	v.Advance(10 * time.Millisecond)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("after 35ms fired %v, want [1 2 3]", order)
	}
}

func TestScheduleEqualDeadlinesFIFO(t *testing.T) {
	v := NewVirtual(time.Time{})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		v.Schedule(time.Millisecond, func(time.Time) { order = append(order, i) })
	}
	v.Advance(time.Millisecond)
	for i, got := range order {
		if got != i {
			t.Fatalf("equal-deadline timers fired out of order: %v", order)
		}
	}
}

func TestScheduleCancel(t *testing.T) {
	v := NewVirtual(time.Time{})
	fired := false
	cancel := v.Schedule(time.Millisecond, func(time.Time) { fired = true })
	cancel()
	v.Advance(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	// Cancelling twice must be safe.
	cancel()
}

func TestTimerSeesCorrectFireTime(t *testing.T) {
	v := NewVirtual(time.Time{})
	start := v.Now()
	var at time.Time
	v.Schedule(42*time.Millisecond, func(now time.Time) { at = now })
	v.Advance(time.Second)
	if want := start.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("timer fired at %v, want %v", at, want)
	}
}

func TestClockIsMonotonicWhileFiring(t *testing.T) {
	v := NewVirtual(time.Time{})
	var seen []time.Time
	for i := 1; i <= 10; i++ {
		v.Schedule(time.Duration(i)*time.Millisecond, func(time.Time) {
			seen = append(seen, v.Now())
		})
	}
	v.Advance(20 * time.Millisecond)
	for i := 1; i < len(seen); i++ {
		if seen[i].Before(seen[i-1]) {
			t.Fatalf("clock went backwards: %v then %v", seen[i-1], seen[i])
		}
	}
	if len(seen) != 10 {
		t.Fatalf("fired %d timers, want 10", len(seen))
	}
}

func TestTimerSchedulingFromWithinCallback(t *testing.T) {
	v := NewVirtual(time.Time{})
	var fired []string
	v.Schedule(time.Millisecond, func(time.Time) {
		fired = append(fired, "outer")
		v.Schedule(time.Millisecond, func(time.Time) {
			fired = append(fired, "inner")
		})
	})
	v.Advance(5 * time.Millisecond)
	if len(fired) != 2 || fired[0] != "outer" || fired[1] != "inner" {
		t.Fatalf("fired %v, want [outer inner]", fired)
	}
}

func TestPendingCount(t *testing.T) {
	v := NewVirtual(time.Time{})
	cancel := v.Schedule(time.Millisecond, func(time.Time) {})
	v.Schedule(2*time.Millisecond, func(time.Time) {})
	if got := v.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	cancel()
	if got := v.Pending(); got != 1 {
		t.Fatalf("Pending() after cancel = %d, want 1", got)
	}
	v.Advance(time.Second)
	if got := v.Pending(); got != 0 {
		t.Fatalf("Pending() after advance = %d, want 0", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	v := NewVirtual(time.Time{})
	target := Epoch.Add(time.Hour)
	v.AdvanceTo(target)
	if !v.Now().Equal(target) {
		t.Fatalf("AdvanceTo: now = %v, want %v", v.Now(), target)
	}
	// Moving to the past is a no-op.
	v.AdvanceTo(Epoch)
	if !v.Now().Equal(target) {
		t.Fatalf("AdvanceTo(past) moved clock to %v", v.Now())
	}
}
