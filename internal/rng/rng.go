// Package rng implements a deterministic, splittable pseudo-random source
// used by every stochastic part of the reproduction (fuzz generators, app
// validation profiles, Monkey event streams).
//
// Determinism matters here for two reasons: the experiment tables in the
// paper must be regenerable bit-for-bit from a seed, and the synthetic app
// fleet must behave identically across runs so that calibration tests are
// stable. The generator is SplitMix64, which is small, fast, and has
// well-understood statistical quality for simulation workloads.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic PRNG stream. The zero value is a valid stream
// seeded with zero, but callers normally use New or Split so that distinct
// subsystems draw from independent streams.
//
// Source is NOT safe for concurrent use; split one stream per goroutine.
type Source struct {
	state uint64
}

// New returns a source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream from the parent stream and a
// label. Splitting does not disturb the parent's sequence, so adding a new
// consumer with a fresh label never perturbs existing consumers — a property
// the calibration tests rely on.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return &Source{state: mix(s.state ^ h.Sum64())}
}

// State returns the stream's internal position for a later Restore. The
// persistent-mode reset path records a behaviour stream's post-sample
// position once and rewinds to it between campaign units instead of
// resampling the whole fleet.
func (s *Source) State() uint64 { return s.state }

// Restore rewinds the stream to a position previously returned by State.
func (s *Source) Restore(state uint64) { s.state = state }

// Uint64 returns the next 64 pseudo-random bits (SplitMix64 step).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand semantics; all call sites pass validated constants.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// IntBetween returns a uniform int in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("rng: IntBetween with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (s *Source) NormFloat64() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := s.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice; all call sites guarantee non-empty catalogs.
func Pick[T any](s *Source, xs []T) T {
	return xs[s.Intn(len(xs))]
}

// Shuffle permutes xs in place (Fisher-Yates).
func Shuffle[T any](s *Source, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// WeightedIndex returns an index into weights with probability proportional
// to the weight. Zero and negative weights never win. If all weights are
// non-positive it returns 0.
func (s *Source) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// asciiPrintable spans the printable ASCII range used for random string
// mutation; it intentionally includes shell-hostile characters like $, @ and
// quotes because QGJ-UI's random mode feeds strings to adb shell utilities.
const asciiPrintable = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789" +
	"!#$%&'()*+,-./:;<=>?@[]^_`{|}~"

// ASCII returns a random printable-ASCII string with length uniform in
// [minLen, maxLen].
func (s *Source) ASCII(minLen, maxLen int) string {
	n := s.IntBetween(minLen, maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = asciiPrintable[s.Intn(len(asciiPrintable))]
	}
	return string(b)
}

// Digits returns a random decimal digit string with length uniform in
// [minLen, maxLen].
func (s *Source) Digits(minLen, maxLen int) string {
	n := s.IntBetween(minLen, maxLen)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + s.Intn(10))
	}
	return string(b)
}
