package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 collisions between independent streams", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	childA := parent.Split("fuzzer")
	childB := parent.Split("apps")
	// Children with distinct labels produce distinct streams.
	if childA.Uint64() == childB.Uint64() {
		t.Fatal("children with distinct labels produced identical first values")
	}
	// Splitting does not consume parent state: re-splitting with the same
	// label reproduces the same child stream.
	childA2 := parent.Split("fuzzer")
	childA3 := New(7).Split("fuzzer")
	childA3.Uint64() // consume the value childA already produced
	v2 := childA2.Uint64()
	v1 := New(7).Split("fuzzer").Uint64()
	if v1 != v2 {
		t.Fatalf("re-split stream diverged: %d != %d", v1, v2)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntBetweenInclusive(t *testing.T) {
	s := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntBetween(2, 4)
		if v < 2 || v > 4 {
			t.Fatalf("IntBetween(2,4) = %d", v)
		}
		seen[v] = true
	}
	for want := 2; want <= 4; want++ {
		if !seen[want] {
			t.Errorf("IntBetween(2,4) never produced %d", want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(9)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f, want ~0.30", got)
	}
}

func TestWeightedIndexDistribution(t *testing.T) {
	s := New(13)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedIndex(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestWeightedIndexAllZero(t *testing.T) {
	s := New(17)
	if got := s.WeightedIndex([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("WeightedIndex(all zero) = %d, want 0", got)
	}
}

func TestPickCoversAllElements(t *testing.T) {
	s := New(19)
	xs := []string{"a", "b", "c", "d"}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[Pick(s, xs)] = true
	}
	if len(seen) != len(xs) {
		t.Fatalf("Pick covered %d/%d elements", len(seen), len(xs))
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	cp := append([]int(nil), xs...)
	Shuffle(s, cp)
	counts := map[int]int{}
	for _, v := range cp {
		counts[v]++
	}
	for _, v := range xs {
		if counts[v] != 1 {
			t.Fatalf("shuffle lost element %d: %v", v, cp)
		}
	}
}

func TestASCIIProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		str := s.ASCII(3, 12)
		if len(str) < 3 || len(str) > 12 {
			return false
		}
		for _, r := range str {
			if r < '!' || r > '~' {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigits(t *testing.T) {
	s := New(29)
	for i := 0; i < 100; i++ {
		d := s.Digits(1, 6)
		if len(d) < 1 || len(d) > 6 {
			t.Fatalf("Digits length %d out of range", len(d))
		}
		for _, r := range d {
			if r < '0' || r > '9' {
				t.Fatalf("Digits produced non-digit %q", d)
			}
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(31)
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %.4f, want ~1", variance)
	}
}
