package apps

import (
	"testing"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
	"repro/internal/rng"
	"repro/internal/wearos"
)

func newTestOS(t *testing.T) *wearos.OS {
	t.Helper()
	return wearos.New(wearos.DefaultWatchConfig())
}

func testCN() intent.ComponentName {
	return intent.ComponentName{Package: "com.x", Class: "com.x.ui.MainActivity"}
}

func mkBehavior(k DefectKind, r reaction) *behavior {
	return &behavior{
		name:      testCN(),
		reactions: map[DefectKind]reaction{k: r},
		draw:      rng.New(1),
	}
}

func mismatchIntent() *intent.Intent {
	in := &intent.Intent{Action: "android.intent.action.DIAL", Component: testCN(), SenderUID: 10100}
	in.Data, _ = intent.ParseURI("https://foo.com/")
	return in
}

func validIntent() *intent.Intent {
	in := &intent.Intent{Action: "android.intent.action.DIAL", Component: testCN(), SenderUID: 10100}
	in.Data, _ = intent.ParseURI("tel:123")
	return in
}

func TestHandlerIgnoresValidIntents(t *testing.T) {
	b := mkBehavior(KindMismatch, reaction{kind: reactCrash, class: javalang.ClassNullPointer})
	h := b.handler(manifest.Activity)
	out := h(nil, validIntent())
	if out.Thrown != nil || out.BusyFor != 0 {
		t.Fatalf("valid intent triggered %+v", out)
	}
}

func TestHandlerCrashReaction(t *testing.T) {
	b := mkBehavior(KindMismatch, reaction{kind: reactCrash, class: javalang.ClassIllegalState})
	out := b.handler(manifest.Activity)(nil, mismatchIntent())
	if out.Thrown == nil || out.Caught || out.Rejected {
		t.Fatalf("crash outcome = %+v", out)
	}
	if out.Thrown.Class != javalang.ClassIllegalState {
		t.Fatalf("class = %s", out.Thrown.Class)
	}
	if len(out.Thrown.Stack) == 0 {
		t.Fatal("crash throwable lacks a stack trace")
	}
	if out.Thrown.Stack[0].Class != testCN().Class {
		t.Fatalf("top frame = %+v", out.Thrown.Stack[0])
	}
}

func TestHandlerRejectAndCatchReactions(t *testing.T) {
	rej := mkBehavior(KindMismatch, reaction{kind: reactReject, class: javalang.ClassIllegalArgument})
	out := rej.handler(manifest.Service)(nil, mismatchIntent())
	if out.Thrown == nil || !out.Rejected || out.Caught {
		t.Fatalf("reject outcome = %+v", out)
	}
	cat := mkBehavior(KindMismatch, reaction{kind: reactCatch, class: javalang.ClassIllegalArgument})
	out = cat.handler(manifest.Service)(nil, mismatchIntent())
	if out.Thrown == nil || !out.Caught || out.Rejected {
		t.Fatalf("catch outcome = %+v", out)
	}
}

func TestHandlerHangReaction(t *testing.T) {
	b := mkBehavior(KindMismatch, reaction{kind: reactHang, busy: scenarioHangBusy, class: javalang.ClassIllegalState})
	out := b.handler(manifest.Service)(nil, mismatchIntent())
	if out.BusyFor != scenarioHangBusy {
		t.Fatalf("BusyFor = %v", out.BusyFor)
	}
	if out.Thrown == nil || out.Thrown.Class != javalang.ClassIllegalState {
		t.Fatalf("hang exception = %v", out.Thrown)
	}
}

func TestStochasticReactionProbability(t *testing.T) {
	b := mkBehavior(KindMismatch, reaction{
		kind: reactCatch, class: javalang.ClassIllegalArgument, prob: 0.25,
	})
	b.draw = rng.New(42)
	h := b.handler(manifest.Activity)
	fired := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if out := h(nil, mismatchIntent()); out.Thrown != nil {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.20 || got > 0.30 {
		t.Fatalf("stochastic reaction fired %.3f, want ~0.25", got)
	}
}

func TestSampleBehaviorNonCrashyNeverCrashes(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		b := sampleBehavior(testCN(), &wearThirdPartyParams, false, r.Split(string(rune(i))))
		for k, rc := range b.reactions {
			if rc.kind == reactCrash {
				t.Fatalf("non-crashy component sampled a crash reaction for %v", k)
			}
		}
	}
}

func TestSampleBehaviorCrashRateInBand(t *testing.T) {
	// Third-party crashy components should crash on at least one kind with
	// probability ~1-(1-q)^7 for the blended qs; verify the Monte Carlo
	// rate is in a plausible band (15-35%).
	r := rng.New(11)
	crashComps := 0
	const n = 2000
	for i := 0; i < n; i++ {
		b := sampleBehavior(testCN(), &wearThirdPartyParams, true, r.Split(string(rune(i))))
		for _, rc := range b.reactions {
			if rc.kind == reactCrash {
				crashComps++
				break
			}
		}
	}
	got := float64(crashComps) / n
	if got < 0.15 || got > 0.35 {
		t.Fatalf("crashy third-party component crash rate = %.3f", got)
	}
}

func TestMessageShapes(t *testing.T) {
	in := mismatchIntent()
	if got := message(javalang.ClassArithmetic, KindMismatch, in); got != "divide by zero" {
		t.Errorf("arithmetic message = %q", got)
	}
	if got := message(javalang.ClassNullPointer, KindNullExtra, in); got == "" {
		t.Error("empty NPE message")
	}
}

func TestUIBehaviorShape(t *testing.T) {
	r := rng.New(3)
	sawCrashPath, sawCatchPath := false, false
	for i := 0; i < 50; i++ {
		b := uiBehavior(testCN(), r.Split(string(rune('a'+i))))
		if !b.uiProfile {
			t.Fatal("uiBehavior did not set uiProfile")
		}
		for _, rc := range b.reactions {
			switch rc.kind {
			case reactCrash:
				sawCrashPath = true
				if rc.prob != uiIntentCrashProbSemiValid {
					t.Fatalf("UI crash prob = %v", rc.prob)
				}
			case reactCatch:
				sawCatchPath = true
				if rc.prob <= 0 {
					t.Fatal("UI catch reaction is deterministic")
				}
			case reactReject, reactHang:
				t.Fatalf("UI profile sampled unexpected reaction %v", rc.kind)
			}
		}
	}
	if !sawCrashPath || !sawCatchPath {
		t.Fatalf("UI profiles missing paths: crash=%v catch=%v", sawCrashPath, sawCatchPath)
	}
}

func TestEndToEndCrashThroughOS(t *testing.T) {
	f := BuildWearFleet(1)
	dev := newTestOS(t)
	if err := f.InstallInto(dev); err != nil {
		t.Fatal(err)
	}
	// The Google Fit scenario component crashes with IAE on an ALL_APPS
	// intent that lacks its expected payload (the paper's concrete case).
	cn := f.nthComponent("com.google.android.apps.fitness", manifest.Activity, 2)
	in := &intent.Intent{
		Action:    "android.intent.action.ALL_APPS", // expects data; none given
		Component: cn,
		SenderUID: wearos.UIDAppBase + 100,
	}
	if got := dev.StartActivity(in); got != wearos.DeliveredCrash {
		t.Fatalf("delivery = %v, want crash", got)
	}
}
