package apps

import (
	"reflect"
	"sync"
	"testing"
)

// TestFleetTemplateMatchesBuildFleetPackage pins the snapshot farm's fleet
// path: instantiating a package from a shared template must produce the
// exact behaviour model, traits, and manifest state that the per-shard
// BuildFleetPackage build produces, for every package of every
// intent-fuzzed population.
func TestFleetTemplateMatchesBuildFleetPackage(t *testing.T) {
	const seed = 7
	for _, kind := range []FleetKind{WearFleet, PhoneFleet, LegacyPhoneFleet} {
		tmpl, err := NewFleetTemplate(kind, seed)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if tmpl.Kind() != kind {
			t.Fatalf("template kind = %s, want %s", tmpl.Kind(), kind)
		}
		ref, err := newSparseFleet(kind, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ref.Packages {
			want, err := BuildFleetPackage(kind, seed, p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, p.Name, err)
			}
			got, err := tmpl.Instantiate(p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, p.Name, err)
			}
			wp, gp := want.Package(p.Name), got.Package(p.Name)
			if len(wp.Components) != len(gp.Components) {
				t.Fatalf("%s/%s: component counts diverge", kind, p.Name)
			}
			for i, wc := range wp.Components {
				gc := gp.Components[i]
				if wc.Name != gc.Name || wc.Type != gc.Type ||
					wc.Exported != gc.Exported || wc.Permission != gc.Permission {
					t.Errorf("%s/%s: manifest diverges for %v:\nfresh:    %+v\ntemplate: %+v",
						kind, p.Name, wc.Name, wc, gc)
				}
				wb, gb := want.Behavior(wc.Name), got.Behavior(gc.Name)
				if gb == nil {
					t.Fatalf("%s/%s: no behaviour sampled for %v", kind, p.Name, wc.Name)
				}
				if !reflect.DeepEqual(wb.reactions, gb.reactions) {
					t.Errorf("%s/%s: reactions diverge for %v", kind, p.Name, wc.Name)
				}
				if wb.draw.Uint64() != gb.draw.Uint64() {
					t.Errorf("%s/%s: private stream diverges for %v", kind, p.Name, wc.Name)
				}
				if want.Traits(wc.Name) != got.Traits(gc.Name) {
					t.Errorf("%s/%s: traits diverge for %v", kind, p.Name, wc.Name)
				}
			}
		}
		if _, err := tmpl.Instantiate("com.missing"); err == nil {
			t.Fatal("unknown package must fail")
		}
	}
	if _, err := NewFleetTemplate(EmulatorFleet, seed); err == nil {
		t.Fatal("emulator fleet has no template build")
	}
}

// TestFleetTemplateConcurrentInstantiate exercises the shared-package
// structural sharing under the race detector: concurrent Instantiate calls
// over every package must never write shared manifest state.
func TestFleetTemplateConcurrentInstantiate(t *testing.T) {
	tmpl, err := NewFleetTemplate(WearFleet, 7)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newSparseFleet(WearFleet, 7)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range ref.Packages {
				if _, err := tmpl.Instantiate(p.Name); err != nil {
					t.Errorf("%s: %v", p.Name, err)
				}
			}
		}()
	}
	wg.Wait()
}
