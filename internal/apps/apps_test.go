package apps

import (
	"reflect"
	"testing"

	"repro/internal/intent"
	"repro/internal/manifest"
)

func TestWearFleetMatchesTableII(t *testing.T) {
	f := BuildWearFleet(1)
	tests := []struct {
		cat    manifest.AppCategory
		origin manifest.Origin
		apps   int
		acts   int
		svcs   int
	}{
		{manifest.HealthFitness, manifest.BuiltIn, 2, 81, 34},
		{manifest.HealthFitness, manifest.ThirdParty, 11, 80, 59},
		{manifest.NotHealthFitness, manifest.BuiltIn, 9, 168, 188},
		{manifest.NotHealthFitness, manifest.ThirdParty, 24, 185, 117},
	}
	for _, tt := range tests {
		s := f.Stats(tt.cat, tt.origin)
		if s.Apps != tt.apps || s.Activities != tt.acts || s.Services != tt.svcs {
			t.Errorf("%s/%s: got %+v, want {%d %d %d}",
				tt.cat, tt.origin, s, tt.apps, tt.acts, tt.svcs)
		}
	}
	total := f.Stats(0, 0)
	if total.Apps != 46 || total.Activities != 514 || total.Services != 398 {
		t.Fatalf("total = %+v, want 46 apps, 514 activities, 398 services", total)
	}
}

func TestPhoneFleetMatchesPaper(t *testing.T) {
	f := BuildPhoneFleet(1)
	s := f.Stats(0, 0)
	if s.Apps != 63 || s.Activities != 595 || s.Services != 218 {
		t.Fatalf("phone fleet = %+v, want 63 apps, 595 activities, 218 services", s)
	}
	for _, p := range f.Packages {
		if len(p.Name) < 12 || p.Name[:12] != "com.android." {
			t.Fatalf("phone package %q lacks com.android. prefix", p.Name)
		}
	}
}

func TestEmulatorFleetComposition(t *testing.T) {
	f := BuildEmulatorFleet(1)
	builtIn, third := 0, 0
	for _, p := range f.Packages {
		if p.Origin == manifest.BuiltIn {
			builtIn++
		} else {
			third++
			if p.Downloads < 1_000_000 {
				t.Errorf("third-party app %s has %d downloads (<1M)", p.Name, p.Downloads)
			}
		}
	}
	if builtIn != 11 {
		t.Errorf("emulator built-in apps = %d, want 11", builtIn)
	}
	if third != 20 {
		t.Errorf("emulator third-party apps = %d, want top 20", third)
	}
	// Every emulator component carries a UI profile.
	for _, p := range f.Packages {
		for _, c := range p.Components {
			b := f.Behavior(c.Name)
			if b == nil || !b.uiProfile {
				t.Fatalf("component %s lacks UI profile", c.Name.FlattenToString())
			}
		}
	}
}

func TestFleetDeterminism(t *testing.T) {
	a, b := BuildWearFleet(7), BuildWearFleet(7)
	if len(a.Packages) != len(b.Packages) {
		t.Fatal("package counts differ")
	}
	for i := range a.Packages {
		pa, pb := a.Packages[i], b.Packages[i]
		if pa.Name != pb.Name || pa.Downloads != pb.Downloads || len(pa.Components) != len(pb.Components) {
			t.Fatalf("package %d differs: %s vs %s", i, pa.Name, pb.Name)
		}
		for j := range pa.Components {
			ca, cb := pa.Components[j], pb.Components[j]
			if ca.Name != cb.Name || ca.Exported != cb.Exported || ca.Permission != cb.Permission {
				t.Fatalf("component differs: %v vs %v", ca.Name, cb.Name)
			}
			ba, bb := a.Behavior(ca.Name), b.Behavior(cb.Name)
			if len(ba.reactions) != len(bb.reactions) {
				t.Fatalf("reaction table sizes differ for %v", ca.Name)
			}
			for k, ra := range ba.reactions {
				rb, ok := bb.reactions[k]
				if !ok || ra.kind != rb.kind || ra.class != rb.class {
					t.Fatalf("reaction differs for %v kind %v", ca.Name, k)
				}
			}
		}
	}
	// Different seeds must differ somewhere in the behaviour tables.
	c := BuildWearFleet(8)
	diff := false
	for cn, ba := range a.behaviors {
		bc := c.Behavior(cn)
		if bc == nil || len(ba.reactions) != len(bc.reactions) {
			diff = true
			break
		}
		for k, ra := range ba.reactions {
			if rc, ok := bc.reactions[k]; !ok || rc.kind != ra.kind || rc.class != ra.class {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("seeds 7 and 8 produced identical fleets")
	}
}

func TestQuotaCrashyFractions(t *testing.T) {
	f := BuildWearFleet(3)
	crashy := map[string]bool{}
	for _, name := range f.CrashyApps() {
		crashy[name] = true
	}
	countBy := func(origin manifest.Origin) (crashyN, total int) {
		for _, p := range f.Packages {
			if p.Origin != origin {
				continue
			}
			total++
			if crashy[p.Name] {
				crashyN++
			}
		}
		return
	}
	bi, biTotal := countBy(manifest.BuiltIn)
	tp, tpTotal := countBy(manifest.ThirdParty)
	// Quota: 64% of 11 built-in = 7; 46% of 35 third-party = 16. Scenario
	// overrides can add at most a couple of extra crashy apps.
	if bi < 6 || bi > 9 {
		t.Errorf("crashy built-in apps = %d/%d, want ~7", bi, biTotal)
	}
	if tp < 14 || tp > 19 {
		t.Errorf("crashy third-party apps = %d/%d, want ~16", tp, tpTotal)
	}
}

func TestAnalyzeIntentKinds(t *testing.T) {
	mk := func(action, data string) *intent.Intent {
		in := &intent.Intent{Action: action}
		if data != "" {
			u, ok := intent.ParseURI(data)
			if !ok {
				// Simulate a raw unparseable datum as an unknown scheme.
				u = intent.URI{Scheme: "x-raw", Opaque: data}
			}
			in.Data = u
		}
		return in
	}
	tests := []struct {
		name string
		in   *intent.Intent
		want DefectKind
	}{
		{"valid view", mk("android.intent.action.VIEW", "https://foo.com/"), KindNone},
		{"valid dial", mk("android.intent.action.DIAL", "tel:123"), KindNone},
		{"mismatch", mk("android.intent.action.DIAL", "https://foo.com/"), KindMismatch},
		{"missing action", mk("", "tel:123"), KindMissingAction},
		{"missing data", mk("android.intent.action.DIAL", ""), KindMissingData},
		{"no data expected", mk("android.intent.action.MAIN", ""), KindNone},
		{"random action", mk("S0me.r@ndom.ACTION", "tel:123"), KindRandomAction},
		{"random data", mk("android.intent.action.VIEW", "zz9q:junk"), KindRandomData},
		{"blank everything", mk("", ""), KindMissingAction},
	}
	for _, tt := range tests {
		if got := AnalyzeIntent(tt.in); got != tt.want {
			t.Errorf("%s: AnalyzeIntent = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestAnalyzeIntentExtras(t *testing.T) {
	in := &intent.Intent{Action: "android.intent.action.VIEW"}
	in.Data, _ = intent.ParseURI("https://foo.com/")
	in.PutExtra("android.intent.extra.TEXT", intent.StringValue("hi"))
	if got := AnalyzeIntent(in); got != KindNone {
		t.Fatalf("expected extras accepted, got %v", got)
	}
	in2 := in.Clone()
	in2.PutExtra("fuzzKey1", intent.StringValue("junk"))
	if got := AnalyzeIntent(in2); got != KindRandomExtras {
		t.Fatalf("unexpected key: got %v", got)
	}
	in3 := in.Clone()
	in3.PutExtra("android.intent.extra.STREAM", intent.NullValue())
	if got := AnalyzeIntent(in3); got != KindNullExtra {
		t.Fatalf("null extra: got %v", got)
	}
}

func TestScenarioOverridesPresent(t *testing.T) {
	f := BuildWearFleet(1)

	// Sensor post-mortem: three Moto Body services hang on mismatch and use
	// SensorManager.
	hangs := 0
	for i := 0; i < 3; i++ {
		cn := f.nthComponent("com.motorola.omni", manifest.Service, i)
		b := f.Behavior(cn)
		if r, ok := b.reactions[KindMismatch]; ok && r.kind == reactHang {
			hangs++
		}
		if !f.Traits(cn).UsesSensorManager {
			t.Errorf("omni service %d lacks SensorManager trait", i)
		}
	}
	if hangs != 3 {
		t.Errorf("omni hang components = %d, want 3", hangs)
	}

	// Ambient post-mortem: one Clock activity crashes on random extras and
	// is ambient bound.
	clock := f.nthComponent("com.google.android.deskclock", manifest.Activity, 1)
	if r, ok := f.Behavior(clock).reactions[KindRandomExtras]; !ok || r.kind != reactCrash {
		t.Error("deskclock ambient crash override missing")
	}
	if !f.Traits(clock).AmbientBound {
		t.Error("deskclock component not ambient bound")
	}

	// Google Fit IAE crash on missing data.
	gfit := f.nthComponent("com.google.android.apps.fitness", manifest.Activity, 2)
	if r, ok := f.Behavior(gfit).reactions[KindMissingData]; !ok || r.kind != reactCrash {
		t.Error("Google Fit crash override missing")
	}

	// GridViewPager arithmetic crash in a health third-party app.
	hw := f.nthComponent("com.heartwatch.wear", manifest.Activity, 0)
	if r, ok := f.Behavior(hw).reactions[KindMismatch]; !ok || r.kind != reactCrash {
		t.Error("heartwatch arithmetic override missing")
	} else if r.class.Simple() != "ArithmeticException" {
		t.Errorf("heartwatch crash class = %s", r.class)
	}
}

func TestInstallIntoDevice(t *testing.T) {
	f := BuildWearFleet(1)
	dev := newTestOS(t)
	if err := f.InstallInto(dev); err != nil {
		t.Fatal(err)
	}
	s := dev.Registry().StatsFor(0, 0)
	if s.Apps != 46 {
		t.Fatalf("installed apps = %d", s.Apps)
	}
}

func TestLauncherComponentsExist(t *testing.T) {
	f := BuildWearFleet(1)
	for _, p := range f.Packages {
		if p.Launcher() == nil {
			t.Errorf("package %s has no launcher activity", p.Name)
		}
	}
}

// TestBuildFleetPackageMatchesFullBuild pins the farm's shard-fleet
// optimization: sampling behaviour for a single package must produce the
// exact model the full fleet build produces for that package, for every
// package of every intent-fuzzed population.
func TestBuildFleetPackageMatchesFullBuild(t *testing.T) {
	const seed = 7
	builders := map[FleetKind]func(uint64) *Fleet{
		WearFleet:        BuildWearFleet,
		PhoneFleet:       BuildPhoneFleet,
		LegacyPhoneFleet: BuildLegacyPhoneFleet,
	}
	for kind, build := range builders {
		full := build(seed)
		for _, p := range full.Packages {
			sparse, err := BuildFleetPackage(kind, seed, p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, p.Name, err)
			}
			for _, c := range p.Components {
				want := full.Behavior(c.Name)
				got := sparse.Behavior(c.Name)
				if got == nil {
					t.Fatalf("%s/%s: no behaviour sampled for %v", kind, p.Name, c.Name)
				}
				if !reflect.DeepEqual(want.reactions, got.reactions) {
					t.Errorf("%s/%s: reactions diverge for %v:\nfull:   %+v\nsparse: %+v",
						kind, p.Name, c.Name, want.reactions, got.reactions)
				}
				if want.draw.Uint64() != got.draw.Uint64() {
					t.Errorf("%s/%s: private stream diverges for %v", kind, p.Name, c.Name)
				}
				if sparse.Traits(c.Name) != full.Traits(c.Name) {
					t.Errorf("%s/%s: traits diverge for %v", kind, p.Name, c.Name)
				}
			}
		}
	}
	if _, err := BuildFleetPackage(WearFleet, seed, "com.missing"); err == nil {
		t.Fatal("unknown package must fail")
	}
	if _, err := BuildFleetPackage(EmulatorFleet, seed, "com.x"); err == nil {
		t.Fatal("emulator fleet has no single-package build")
	}
}
