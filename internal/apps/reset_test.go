package apps

import (
	"testing"
)

// TestFleetTemplateResetRewindsDrawStreams pins the persistent executor's
// fleet-reuse contract: a fleet whose behaviour draw streams were consumed
// by a campaign, then Reset, replays the exact stream a fresh Instantiate
// produces — for every component of every intent-fuzzed population.
func TestFleetTemplateResetRewindsDrawStreams(t *testing.T) {
	const seed = 7
	for _, kind := range []FleetKind{WearFleet, PhoneFleet, LegacyPhoneFleet} {
		tmpl, err := NewFleetTemplate(kind, seed)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		ref, err := newSparseFleet(kind, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ref.Packages {
			fresh, err := tmpl.Instantiate(p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, p.Name, err)
			}
			reused, err := tmpl.Instantiate(p.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, p.Name, err)
			}
			// Consume an uneven number of draws per component — the campaign's
			// footprint the reset must erase.
			for i, c := range p.Components {
				b := reused.Behavior(c.Name)
				for range i%3 + 1 {
					b.draw.Uint64()
				}
			}
			if !tmpl.Reset(reused, p.Name) {
				t.Fatalf("%s/%s: Reset refused its own instantiation", kind, p.Name)
			}
			for _, c := range p.Components {
				fb, rb := fresh.Behavior(c.Name), reused.Behavior(c.Name)
				if f, r := fb.draw.Uint64(), rb.draw.Uint64(); f != r {
					t.Errorf("%s/%s: draw stream for %v diverges after reset: fresh=%d reset=%d",
						kind, p.Name, c.Name, f, r)
				}
			}
		}
	}
}

// TestFleetTemplateResetSanityChecks pins the refusal cases: Reset must
// report false — leaving the fleet usable — whenever the fleet was not
// produced by this template for this package.
func TestFleetTemplateResetSanityChecks(t *testing.T) {
	tmpl, err := NewFleetTemplate(WearFleet, 7)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newSparseFleet(WearFleet, 7)
	if err != nil {
		t.Fatal(err)
	}
	pkg := ref.Packages[0].Name
	f, err := tmpl.Instantiate(pkg)
	if err != nil {
		t.Fatal(err)
	}

	if tmpl.Reset(nil, pkg) {
		t.Error("Reset accepted a nil fleet")
	}
	if tmpl.Reset(f, "com.missing") {
		t.Error("Reset accepted an unknown package")
	}
	if len(ref.Packages) > 1 {
		// f sampled behaviour for pkg only; another package's components have
		// no behaviours to rewind.
		if tmpl.Reset(f, ref.Packages[1].Name) {
			t.Error("Reset accepted a package the fleet never sampled")
		}
	}

	otherSeed, err := NewFleetTemplate(WearFleet, 8)
	if err != nil {
		t.Fatal(err)
	}
	if otherSeed.Reset(f, pkg) {
		t.Error("Reset accepted a fleet from a different seed")
	}
	otherKind, err := NewFleetTemplate(PhoneFleet, 7)
	if err != nil {
		t.Fatal(err)
	}
	if otherKind.Reset(f, pkg) {
		t.Error("Reset accepted a fleet from a different kind")
	}

	// The refused fleet stays usable: its own template still resets it.
	if !tmpl.Reset(f, pkg) {
		t.Error("fleet unusable after refused resets")
	}
}
