package apps

import (
	"fmt"

	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/rng"
)

// appSpec names one synthetic app and its population slot.
type appSpec struct {
	pkg      string
	label    string
	category manifest.AppCategory
	origin   manifest.Origin
	// usesGoogleFit / usesSensorManager wire the health-app substrate
	// dependencies (Section III-C).
	usesGoogleFit     bool
	usesSensorManager bool
}

// Table II populations. Component totals per block:
//
//	Health/Fitness   Built-in     2 apps,  81 activities,  34 services
//	Health/Fitness   Third Party 11 apps,  80 activities,  59 services
//	Not Health/Fit.  Built-in     9 apps, 168 activities, 188 services
//	Not Health/Fit.  Third Party 24 apps, 185 activities, 117 services
//	Total                        46 apps, 514 activities, 398 services
type populationBlock struct {
	specs      []appSpec
	activities int
	services   int
}

func wearPopulation() []populationBlock {
	hb := manifest.HealthFitness
	nh := manifest.NotHealthFitness
	bi := manifest.BuiltIn
	tp := manifest.ThirdParty
	return []populationBlock{
		{
			activities: 81, services: 34,
			specs: []appSpec{
				{pkg: "com.google.android.apps.fitness", label: "Google Fit", category: hb, origin: bi, usesGoogleFit: true},
				{pkg: "com.motorola.omni", label: "Moto Body", category: hb, origin: bi, usesSensorManager: true},
			},
		},
		{
			activities: 80, services: 59,
			specs: []appSpec{
				{pkg: "com.runtastic.wear", label: "Runtastic", category: hb, origin: tp, usesGoogleFit: true},
				{pkg: "com.strava.wear", label: "Strava", category: hb, origin: tp, usesGoogleFit: true},
				{pkg: "com.fitbit.wear", label: "Fitbit", category: hb, origin: tp},
				{pkg: "com.endomondo.wear", label: "Endomondo", category: hb, origin: tp, usesGoogleFit: true},
				{pkg: "com.myfitnesspal.wear", label: "MyFitnessPal", category: hb, origin: tp, usesGoogleFit: true},
				{pkg: "com.nike.runclub.wear", label: "Nike Run Club", category: hb, origin: tp},
				{pkg: "com.sevenmins.wear", label: "7 Minute Workout", category: hb, origin: tp, usesGoogleFit: true},
				{pkg: "com.sleepcycle.wear", label: "Sleep Cycle", category: hb, origin: tp},
				{pkg: "com.heartwatch.wear", label: "HeartWatch", category: hb, origin: tp, usesGoogleFit: true},
				{pkg: "com.pedometer.stepcounter.wear", label: "Pedometer", category: hb, origin: tp, usesGoogleFit: true},
				{pkg: "com.fitify.workouts.wear", label: "Fitify", category: hb, origin: tp, usesGoogleFit: true},
			},
		},
		{
			activities: 168, services: 188,
			specs: []appSpec{
				{pkg: "com.google.android.wearable.app", label: "Wear OS Core", category: nh, origin: bi},
				{pkg: "com.google.android.deskclock", label: "Clock", category: nh, origin: bi},
				{pkg: "com.google.android.apps.messaging", label: "Messages", category: nh, origin: bi},
				{pkg: "com.google.android.gm", label: "Gmail", category: nh, origin: bi},
				{pkg: "com.google.android.calendar", label: "Calendar", category: nh, origin: bi},
				{pkg: "com.google.android.apps.maps", label: "Maps", category: nh, origin: bi},
				{pkg: "com.google.android.music", label: "Play Music", category: nh, origin: bi},
				{pkg: "com.google.android.googlequicksearchbox", label: "Assistant", category: nh, origin: bi},
				{pkg: "com.google.android.wearable.watchfaces", label: "Watch Faces", category: nh, origin: bi},
			},
		},
		{
			activities: 185, services: 117,
			specs: []appSpec{
				{pkg: "org.telegram.wear", label: "Telegram", category: nh, origin: tp},
				{pkg: "com.whatsapp.wear", label: "WhatsApp", category: nh, origin: tp},
				{pkg: "com.spotify.wear", label: "Spotify", category: nh, origin: tp},
				{pkg: "com.ubercab.wear", label: "Uber", category: nh, origin: tp},
				{pkg: "com.lyft.wear", label: "Lyft", category: nh, origin: tp},
				{pkg: "com.facebook.orca.wear", label: "Messenger", category: nh, origin: tp},
				{pkg: "com.twitter.wear", label: "Twitter", category: nh, origin: tp},
				{pkg: "com.instagram.wear", label: "Instagram", category: nh, origin: tp},
				{pkg: "com.shazam.wear", label: "Shazam", category: nh, origin: tp},
				{pkg: "com.evernote.wear", label: "Evernote", category: nh, origin: tp},
				{pkg: "com.todoist.wear", label: "Todoist", category: nh, origin: tp},
				{pkg: "com.citymapper.wear", label: "Citymapper", category: nh, origin: tp},
				{pkg: "com.accuweather.wear", label: "AccuWeather", category: nh, origin: tp},
				{pkg: "com.wunderground.wear", label: "Weather Underground", category: nh, origin: tp},
				{pkg: "com.ifttt.wear", label: "IFTTT", category: nh, origin: tp},
				{pkg: "com.duolingo.wear", label: "Duolingo", category: nh, origin: tp},
				{pkg: "com.foursquare.wear", label: "Foursquare", category: nh, origin: tp},
				{pkg: "com.glide.wear", label: "Glide", category: nh, origin: tp},
				{pkg: "com.robinhood.wear", label: "Robinhood", category: nh, origin: tp},
				{pkg: "com.paypal.wear", label: "PayPal", category: nh, origin: tp},
				{pkg: "com.banjo.wear", label: "Banjo", category: nh, origin: tp},
				{pkg: "com.flipboard.wear", label: "Flipboard", category: nh, origin: tp},
				{pkg: "com.pocketcasts.wear", label: "Pocket Casts", category: nh, origin: tp},
				{pkg: "com.wearfacesplus", label: "Watch Faces Plus", category: nh, origin: tp},
			},
		},
	}
}

// phonePopulation builds the Nexus 6 comparison fleet: 63 com.android.*
// apps with 595 Activities and 218 Services (Section III-D).
func phonePopulation() []populationBlock {
	named := []string{
		"chrome", "vending", "settings", "systemui", "phone", "contacts",
		"mms", "email", "calendar", "deskclock", "calculator", "camera2",
		"gallery3d", "music", "documentsui", "downloads", "keychain",
		"launcher3", "nfc", "printspooler", "providers.calendar",
		"providers.contacts", "providers.downloads", "providers.media",
		"providers.settings", "providers.telephony", "bluetooth",
		"certinstaller", "packageinstaller", "externalstorage",
		"inputmethod.latin", "managedprovisioning", "proxyhandler",
		"sharedstoragebackup", "shell", "statementservice", "stk",
		"wallpaper.livepicker", "wallpapercropper", "webview", "dialer",
		"carrierconfig", "cellbroadcastreceiver", "captiveportallogin",
		"backupconfirm", "defcontainer", "dreams.basic", "emergency",
		"facelock", "hotspot2", "htmlviewer", "inputdevices",
		"location.fused", "mtp", "musicfx", "onetimeinitializer",
		"pacprocessor", "providers.blockednumber", "providers.userdictionary",
		"server.telecom", "soundrecorder", "theme", "vpndialogs",
	}
	specs := make([]appSpec, 0, len(named))
	for _, n := range named {
		specs = append(specs, appSpec{
			pkg:      "com.android." + n,
			label:    n,
			category: manifest.NotHealthFitness,
			origin:   manifest.BuiltIn,
		})
	}
	return []populationBlock{{specs: specs, activities: 595, services: 218}}
}

// splitCounts distributes total across n slots as evenly as possible,
// deterministically (earlier slots get the remainder).
func splitCounts(total, n int) []int {
	out := make([]int, n)
	if n == 0 {
		return out
	}
	base, rem := total/n, total%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// componentClassNames generates plausible Android class names.
var activityNames = []string{
	"MainActivity", "SettingsActivity", "DetailActivity", "OnboardingActivity",
	"LoginActivity", "ProfileActivity", "HistoryActivity", "ShareActivity",
	"SearchActivity", "NotificationActivity", "PickerActivity", "PairActivity",
	"SummaryActivity", "GoalActivity", "WorkoutActivity", "MapActivity",
	"EditActivity", "AboutActivity", "HelpActivity", "PermissionActivity",
	"ComplicationConfigActivity", "WatchFaceConfigActivity", "SyncActivity",
	"AlarmActivity", "TimerActivity", "StopwatchActivity", "MediaActivity",
	"BrowserActivity", "ComposeActivity", "CallActivity", "ContactsActivity",
	"GalleryActivity", "PlayerActivity", "QueueActivity", "StatsActivity",
	"TrendsActivity", "SessionActivity", "RouteActivity", "BadgeActivity",
	"ChallengeActivity", "FriendActivity", "FeedActivity", "InboxActivity",
	"VoiceActivity", "TutorialActivity", "WidgetConfigActivity",
}

var serviceNames = []string{
	"SyncService", "NotificationListenerService", "DataLayerListenerService",
	"ComplicationProviderService", "WatchFaceService", "TrackingService",
	"UploadService", "DownloadService", "MessagingService", "LocationService",
	"SensorListenerService", "HeartRateService", "StepCounterService",
	"MediaPlaybackService", "AlarmService", "TileProviderService",
	"WearableListenerService", "BackupService", "AnalyticsService",
	"GeofenceService", "VoiceCommandService", "JobService", "FetchService",
	"ChannelService", "AmbientUpdateService", "BootService", "WidgetService",
	"CacheService", "AuthService", "TokenRefreshService", "PushService",
	"ExportService", "ImportService", "CleanupService", "SessionService",
}

// buildPackages materializes a population into manifest packages with
// deterministic component name assignment and synthetic download counts.
func buildPackages(blocks []populationBlock, seed *rng.Source) []*manifest.Package {
	var out []*manifest.Package
	for _, blk := range blocks {
		actPer := splitCounts(blk.activities, len(blk.specs))
		svcPer := splitCounts(blk.services, len(blk.specs))
		for i, spec := range blk.specs {
			r := seed.Split("pkg:" + spec.pkg)
			pkg := &manifest.Package{
				Name:              spec.pkg,
				Label:             spec.label,
				Category:          spec.category,
				Origin:            spec.origin,
				UsesGoogleFit:     spec.usesGoogleFit,
				UsesSensorManager: spec.usesSensorManager,
			}
			if spec.origin == manifest.ThirdParty {
				// Selection criterion: >1M downloads (Section III-C).
				pkg.Downloads = int64(1_000_000 + r.Intn(49_000_000))
			}
			for a := 0; a < actPer[i]; a++ {
				name := activityNames[a%len(activityNames)]
				if a >= len(activityNames) {
					name = fmt.Sprintf("%s%d", name, a/len(activityNames)+1)
				}
				comp := &manifest.Component{
					Name:     intent.ComponentName{Package: spec.pkg, Class: spec.pkg + ".ui." + name},
					Type:     manifest.Activity,
					Exported: true,
				}
				if a == 0 {
					comp.MainLauncher = true
					comp.Filters = []*manifest.IntentFilter{{
						Actions:    []string{"android.intent.action.MAIN"},
						Categories: []string{intent.CategoryLauncher, intent.CategoryDefault},
					}}
				}
				// A small share of components is unexported or permission
				// guarded, like real manifests; these produce the
				// "specified and secure" SecurityException path.
				switch {
				case a > 0 && r.Bool(0.06):
					comp.Exported = false
				case a > 0 && r.Bool(0.04):
					comp.Permission = rng.Pick(r, manifest.StandardPermissions)
				}
				pkg.Components = append(pkg.Components, comp)
			}
			for s := 0; s < svcPer[i]; s++ {
				name := serviceNames[s%len(serviceNames)]
				if s >= len(serviceNames) {
					name = fmt.Sprintf("%s%d", name, s/len(serviceNames)+1)
				}
				comp := &manifest.Component{
					Name:     intent.ComponentName{Package: spec.pkg, Class: spec.pkg + ".svc." + name},
					Type:     manifest.Service,
					Exported: true,
				}
				switch {
				case r.Bool(0.06):
					comp.Exported = false
				case r.Bool(0.04):
					comp.Permission = rng.Pick(r, manifest.StandardPermissions)
				}
				pkg.Components = append(pkg.Components, comp)
			}
			out = append(out, pkg)
		}
	}
	return out
}
