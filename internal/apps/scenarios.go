package apps

import (
	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
	"repro/internal/wearos"
)

// applyWearScenarios overrides sampled behaviour for the specific incidents
// the paper narrates. These are deterministic, named failure modes — not
// statistical calibration — and each maps to a sentence in Section IV.
//
// Every scenario reaction is *gated* to particular intent contents: the
// paper's escalations fired "at specific states of the device", not on
// every malformed intent of a kind, and ungated reactions would fire
// thousands of times per campaign sweep.
func (f *Fleet) applyWearScenarios() {
	f.scenarioSensorReboot()
	f.scenarioAmbientReboot()
	f.scenarioGoogleFitCrash()
	f.scenarioGridViewPagerArithmetic()
	f.scenarioFitifyHangs()
}

// override replaces (or installs) one reaction entry on a component.
func (f *Fleet) override(cn intent.ComponentName, kind DefectKind, r reaction) {
	b := f.behaviors[cn]
	if b == nil {
		return
	}
	b.reactions[kind] = r
}

// scrubCrashes removes every sampled crash reaction from all of a
// package's components, so the scenario apps' failure stories stay exactly
// as narrated (and reboot attribution stays surgical).
func (f *Fleet) scrubCrashes(pkg string) {
	p := f.Package(pkg)
	if p == nil {
		return
	}
	for _, c := range p.Components {
		b := f.behaviors[c.Name]
		if b == nil {
			continue
		}
		for k, r := range b.reactions {
			if r.kind == reactCrash || r.kind == reactHang {
				delete(b.reactions, k)
			}
		}
	}
}

// ensureReachable strips export/permission guards from a scenario
// component: the paper's incidents all involved components QGJ could
// actually reach, and the population sampler may have guarded this slot.
func (f *Fleet) ensureReachable(cn intent.ComponentName) {
	p := f.Package(cn.Package)
	if p == nil {
		return
	}
	for _, c := range p.Components {
		if c.Name == cn {
			// Write-once: scenario packages may be structurally shared across
			// concurrently instantiated fleets (FleetTemplate), and the
			// template applied these strips before publishing the packages.
			if !c.Exported {
				c.Exported = true
			}
			if c.Permission != "" {
				c.Permission = ""
			}
			return
		}
	}
}

// nthComponent returns the package's i-th component of the given type, or
// a zero name when out of range.
func (f *Fleet) nthComponent(pkg string, t manifest.ComponentType, i int) intent.ComponentName {
	p := f.Package(pkg)
	if p == nil {
		return intent.ComponentName{}
	}
	comps := p.ComponentsOf(t)
	if i >= len(comps) {
		return intent.ComponentName{}
	}
	return comps[i].Name
}

// scenarioSensorReboot wires the paper's first reboot post-mortem
// (Section IV-B): a health app that talks to the heart-rate sensor through
// SensorManager goes unresponsive under a sequence of malformed intents;
// the system SIGABRTs the SensorService process; losing that core service
// reboots the watch. "There were no exceptions raised before the crash."
//
// Three Moto Body services each hang on exactly one semi-valid combination
// (fitness TRACK action paired with a scheme it does not accept), so
// campaign A produces exactly three ANRs in the process — the system
// server's SIGABRT limit.
func (f *Fleet) scenarioSensorReboot() {
	const pkg = "com.motorola.omni"
	f.scrubCrashes(pkg)
	schemes := []string{"http", "tel", "geo"}
	for i, scheme := range schemes {
		cn := f.nthComponent(pkg, manifest.Service, i)
		if cn.IsZero() {
			continue
		}
		f.ensureReachable(cn)
		f.override(cn, KindMismatch, reaction{
			kind:        reactHang,
			busy:        scenarioHangBusy,
			onlyActions: []string{"vnd.google.fitness.TRACK"},
			onlyScheme:  scheme,
		})
		f.traits[cn] = wearos.ComponentTraits{UsesSensorManager: true}
	}
}

// scenarioAmbientReboot wires the second post-mortem: a built-in app
// component repeatedly fails to start on malformed intents, cannot bind
// the Ambient Service, and the system process segfaults.
//
// One Clock activity crashes with an NPE on FIC D's poisoned extras, but
// only for two adjacent catalog actions — six consecutive intents in the
// campaign D sweep, enough for the start-failure streak (4) to trip the
// SIGSEGV exactly once; after the reboot the remaining two intents cannot
// re-trip it.
func (f *Fleet) scenarioAmbientReboot() {
	const pkg = "com.google.android.deskclock"
	f.scrubCrashes(pkg)
	cn := f.nthComponent(pkg, manifest.Activity, 1)
	if cn.IsZero() {
		return
	}
	f.ensureReachable(cn)
	gate := []string{"android.intent.action.VIEW", "android.intent.action.EDIT"}
	crash := reaction{kind: reactCrash, class: javalang.ClassNullPointer, onlyActions: gate}
	f.override(cn, KindRandomExtras, crash)
	f.override(cn, KindNullExtra, crash)
	f.traits[cn] = wearos.ComponentTraits{AmbientBound: true}
}

// scenarioGoogleFitCrash reproduces the concrete crash the paper quotes:
// Google Fit crashed on an ALL_APPS-style intent sent without the expected
// complication-provider payload — an IllegalArgumentException that should
// have been handled.
func (f *Fleet) scenarioGoogleFitCrash() {
	const pkg = "com.google.android.apps.fitness"
	cn := f.nthComponent(pkg, manifest.Activity, 2)
	if cn.IsZero() {
		return
	}
	f.ensureReachable(cn)
	f.override(cn, KindMissingData, reaction{
		kind:        reactCrash,
		class:       javalang.ClassIllegalArgument,
		onlyActions: []string{"android.intent.action.ALL_APPS"},
	})
	// One semi-valid combination also trips the same unvalidated path.
	f.override(cn, KindMismatch, reaction{
		kind:        reactCrash,
		class:       javalang.ClassIllegalArgument,
		onlyActions: []string{"android.intent.action.ALL_APPS"},
		onlyScheme:  "tel",
	})
}

// scenarioGridViewPagerArithmetic reproduces the deprecated-widget crash:
// a Health & Fitness app still using the AW 1.x GridViewPager layout class
// crashes with a divide-by-zero ArithmeticException.
func (f *Fleet) scenarioGridViewPagerArithmetic() {
	const pkg = "com.heartwatch.wear"
	cn := f.nthComponent(pkg, manifest.Activity, 0)
	if cn.IsZero() {
		return
	}
	f.ensureReachable(cn)
	// VIEW accepts most schemes; sms is one it does not, so (VIEW, sms) is
	// a genuine semi-valid mismatch that campaign A generates exactly once
	// per sweep of this component.
	f.override(cn, KindMismatch, reaction{
		kind:        reactCrash,
		class:       javalang.ClassArithmetic,
		onlyActions: []string{"android.intent.action.VIEW"},
		onlyScheme:  "sms",
	})
}

// scenarioFitifyHangs places the remaining unresponsive components in a
// second health app so Table III shows a hanging health app in campaigns
// A, C and D without any reboot (no SensorManager, so no SIGABRT
// escalation), and Fig. 3b's unresponsive column is dominated by
// IllegalStateException with android.os.DeadObjectException present.
func (f *Fleet) scenarioFitifyHangs() {
	const pkg = "com.fitify.workouts.wear"
	f.scrubCrashes(pkg)
	hangs := []struct {
		typ    manifest.ComponentType
		idx    int
		kinds  []DefectKind
		class  javalang.Class
		action string
		scheme string
	}{
		// Campaign C (random action, valid data): gate on the valid scheme.
		{manifest.Service, 0, []DefectKind{KindRandomAction}, javalang.ClassIllegalState, "", "tel"},
		{manifest.Service, 1, []DefectKind{KindRandomAction}, javalang.ClassIllegalState, "", "geo"},
		// Campaign D (poisoned extras): gate on one action each. Both extras
		// kinds trigger — whether the bundle's poison is a null or a junk
		// key, the component's getExtra path wedges the same way.
		{manifest.Service, 2, []DefectKind{KindNullExtra, KindRandomExtras}, javalang.ClassIllegalState, "android.intent.action.SEARCH", ""},
		{manifest.Service, 3, []DefectKind{KindNullExtra, KindRandomExtras}, javalang.ClassDeadObject, "android.intent.action.ASSIST", ""},
		// Campaign A (mismatch): gate on one combo each.
		{manifest.Service, 4, []DefectKind{KindMismatch}, javalang.ClassIllegalState, "android.intent.action.DIAL", "geo"},
		{manifest.Activity, 1, []DefectKind{KindMismatch}, javalang.ClassDeadObject, "android.intent.action.SENDTO", "http"},
	}
	for _, h := range hangs {
		cn := f.nthComponent(pkg, h.typ, h.idx)
		if cn.IsZero() {
			continue
		}
		f.ensureReachable(cn)
		r := reaction{kind: reactHang, busy: scenarioHangBusy, class: h.class, onlyScheme: h.scheme}
		if h.action != "" {
			r.onlyActions = []string{h.action}
		}
		for _, k := range h.kinds {
			f.override(cn, k, r)
		}
		// Fitify does not touch SensorManager; its ANRs age the system but
		// never shoot sensorservice.
		f.traits[cn] = wearos.ComponentTraits{}
	}
}
