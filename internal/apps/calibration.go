package apps

import (
	"time"

	"repro/internal/javalang"
)

// This file concentrates every tunable constant of the synthetic behaviour
// models. Each constant encodes a specific quantitative statement from the
// paper; the comment cites it. The calibration is validated end-to-end by
// the experiment tests (internal/experiments) which run the calibration-
// blind pipeline and compare the measured tables/figures against the
// paper's values within tolerance bands.

// classWeights is a discrete distribution over exception classes.
type classWeights struct {
	classes []javalang.Class
	weights []float64
}

// populationParams parameterizes one app population's validation quality.
type populationParams struct {
	// appCrashyFrac: fraction of apps in the population that crash at all
	// (quota-sampled so the fraction is exact). Fig. 4: built-in apps
	// reported crashes at 64%, third-party apps at 46%.
	appCrashyFrac float64
	// crashKindProb[k]: for a component of a crashy app, the probability
	// that defect kind k escapes as an *uncaught* exception (crash). FIC A
	// (mismatch) is solved separately from B/C/D kinds so that per-campaign
	// app-crash rates land near Table III's ~23-33%.
	crashKindProb map[DefectKind]float64
	// rejectKindProb: probability a component validates kind k and throws
	// the exception back to the sender (no crash). Drives the large
	// non-crashing IllegalArgumentException population in Fig. 2.
	rejectKindProb float64
	// catchKindProb: probability the component catches its own exception
	// for kind k (Fig. 3b "no effect": ~10% of cases threw an exception
	// that was handled gracefully).
	catchKindProb float64
	// crashMix / rejectMix / catchMix: per-defect-kind exception class
	// distributions.
	crashMix  map[DefectKind]classWeights
	rejectMix map[DefectKind]classWeights
}

// --- Wear fleet calibration -------------------------------------------------

// Table III targets per-campaign app-crash rates of roughly 23-33%. With
// quota-crashy apps (64% built-in, 46% third-party) a crashy app must crash
// in ~60% of campaigns. Built-in apps average ~43 components, third-party
// ~12.6, which yields the per-(component, kind) probabilities below
// (1-(1-q)^(n*kinds) = 0.6).
var wearBuiltInParams = populationParams{
	appCrashyFrac: 0.64, // Fig. 4
	crashKindProb: map[DefectKind]float64{
		KindMismatch:      0.021, // campaign A: 1 kind over ~43 comps
		KindMissingAction: 0.011, // campaign B: 2 kinds
		KindMissingData:   0.011,
		KindRandomAction:  0.011, // campaign C: 2 kinds
		KindRandomData:    0.011,
		KindRandomExtras:  0.011, // campaign D: 2 kinds
		KindNullExtra:     0.011,
	},
	rejectKindProb: 0.020, // Fig. 2: ~13% of components show a reject class
	catchKindProb:  0.014, // Fig. 3b no-effect: ~10% handled exceptions
	crashMix:       wearCrashMix,
	rejectMix:      wearRejectMix,
}

// Third-party parameters are split by app category to land Table III's
// per-campaign rows: the paper's health apps crash most in campaigns B/C
// (~31%) and least in D (15%), while the other apps sit at ~30% in A/C/D.
var wearHealthThirdPartyParams = populationParams{
	appCrashyFrac: 0.46, // Fig. 4
	crashKindProb: map[DefectKind]float64{
		KindMismatch:      0.042, // campaign A: 23%
		KindMissingAction: 0.022, // campaign B: 31%
		KindMissingData:   0.022,
		KindRandomAction:  0.036, // campaign C: 31%
		KindRandomData:    0.036,
		KindRandomExtras:  0.015, // campaign D: 15%
		KindNullExtra:     0.015,
	},
	rejectKindProb: 0.020,
	catchKindProb:  0.014,
	crashMix:       wearCrashMix,
	rejectMix:      wearRejectMix,
}

var wearThirdPartyParams = populationParams{
	appCrashyFrac: 0.46, // Fig. 4
	crashKindProb: map[DefectKind]float64{
		KindMismatch:      0.120, // campaign A: 30%
		KindMissingAction: 0.036, // campaign B: 24%
		KindMissingData:   0.036,
		KindRandomAction:  0.068, // campaign C: 33%
		KindRandomData:    0.068,
		KindRandomExtras:  0.050, // campaign D: 30%
		KindNullExtra:     0.050,
	},
	rejectKindProb: 0.020,
	catchKindProb:  0.014,
	crashMix:       wearCrashMix,
	rejectMix:      wearRejectMix,
}

// wearCrashMix encodes Fig. 3b's crash column: NullPointerException still
// dominates "but the relative proportion is less" than prior Android
// studies, with the decrease taken up by IllegalArgumentException and
// IllegalStateException (Section IV-A).
var wearCrashMix = map[DefectKind]classWeights{
	KindMismatch: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassIllegalState, javalang.ClassNullPointer, javalang.ClassUnsupportedOperation, javalang.ClassRuntime},
		weights: []float64{0.40, 0.28, 0.18, 0.09, 0.05},
	},
	KindMissingAction: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassIllegalState, javalang.ClassIllegalArgument, javalang.ClassRuntime},
		weights: []float64{0.45, 0.28, 0.18, 0.09},
	},
	KindMissingData: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassIllegalArgument, javalang.ClassIllegalState, javalang.ClassActivityNotFound},
		weights: []float64{0.52, 0.24, 0.17, 0.07},
	},
	KindRandomAction: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassUnsupportedOperation, javalang.ClassActivityNotFound, javalang.ClassIllegalState, javalang.ClassClassNotFound},
		weights: []float64{0.33, 0.19, 0.16, 0.17, 0.15},
	},
	KindRandomData: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassNullPointer, javalang.ClassNumberFormat, javalang.ClassIllegalState, javalang.ClassStringIndex},
		weights: []float64{0.34, 0.27, 0.15, 0.14, 0.10},
	},
	KindRandomExtras: {
		classes: []javalang.Class{javalang.ClassClassCast, javalang.ClassIllegalState, javalang.ClassBadParcelable, javalang.ClassNullPointer, javalang.ClassIllegalArgument},
		weights: []float64{0.28, 0.26, 0.18, 0.16, 0.12},
	},
	KindNullExtra: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassIllegalState, javalang.ClassIllegalArgument},
		weights: []float64{0.76, 0.13, 0.11},
	},
}

// wearRejectMix: Fig. 2 — "After SecurityException, the second largest
// share belongs to IllegalArgumentException ... raised because of the
// mismatch on the data contained in an injected intent and what is expected
// by the component."
var wearRejectMix = map[DefectKind]classWeights{
	KindMismatch: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassIllegalState, javalang.ClassUnsupportedOperation},
		weights: []float64{0.62, 0.24, 0.14},
	},
	KindMissingAction: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassNullPointer, javalang.ClassIllegalState},
		weights: []float64{0.48, 0.30, 0.22},
	},
	KindMissingData: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassNullPointer, javalang.ClassIllegalState},
		weights: []float64{0.50, 0.31, 0.19},
	},
	KindRandomAction: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassUnsupportedOperation, javalang.ClassClassNotFound},
		weights: []float64{0.55, 0.25, 0.20},
	},
	KindRandomData: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassNumberFormat, javalang.ClassNullPointer},
		weights: []float64{0.58, 0.22, 0.20},
	},
	KindRandomExtras: {
		classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassClassCast, javalang.ClassBadParcelable},
		weights: []float64{0.46, 0.30, 0.24},
	},
	KindNullExtra: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassIllegalArgument},
		weights: []float64{0.70, 0.30},
	},
}

// --- Phone fleet calibration -------------------------------------------------

// Table IV: 175 crashes over 63 apps / 813 components (21.5% of
// components), with NPE 30.9%, ClassNotFound 26.3%, IllegalArgument 17.7%,
// IllegalState 5.7%, Runtime 5.1%, ActivityNotFound 4.0%,
// UnsupportedOperation 3.4%, others 6.9%. ClassNotFoundException is far
// more common on the phone than on the watch — phone apps load classes
// reflectively from intent payloads much more often.
var phoneParams = populationParams{
	appCrashyFrac: 1.0, // the phone table aggregates over all apps
	crashKindProb: map[DefectKind]float64{
		KindMismatch:      0.072,
		KindMissingAction: 0.035,
		KindMissingData:   0.035,
		KindRandomAction:  0.046,
		KindRandomData:    0.035,
		KindRandomExtras:  0.035,
		KindNullExtra:     0.035,
	},
	rejectKindProb: 0.020,
	catchKindProb:  0.014,
	crashMix:       phoneCrashMix,
	rejectMix:      wearRejectMix,
}

var phoneCrashMix = map[DefectKind]classWeights{
	KindMismatch: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassClassNotFound, javalang.ClassIllegalArgument, javalang.ClassIllegalState, javalang.ClassRuntime},
		weights: []float64{0.30, 0.26, 0.23, 0.11, 0.10},
	},
	KindMissingAction: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassClassNotFound, javalang.ClassIllegalArgument, javalang.ClassRuntime},
		weights: []float64{0.40, 0.25, 0.20, 0.15},
	},
	KindMissingData: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassClassNotFound, javalang.ClassIllegalArgument, javalang.ClassActivityNotFound},
		weights: []float64{0.42, 0.22, 0.20, 0.16},
	},
	KindRandomAction: {
		classes: []javalang.Class{javalang.ClassClassNotFound, javalang.ClassUnsupportedOperation, javalang.ClassIllegalArgument, javalang.ClassNullPointer, javalang.ClassActivityNotFound},
		weights: []float64{0.38, 0.22, 0.15, 0.13, 0.12},
	},
	KindRandomData: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassIllegalArgument, javalang.ClassClassNotFound, javalang.ClassNumberFormat},
		weights: []float64{0.32, 0.27, 0.25, 0.16},
	},
	KindRandomExtras: {
		classes: []javalang.Class{javalang.ClassClassNotFound, javalang.ClassNullPointer, javalang.ClassRuntime, javalang.ClassIllegalArgument, javalang.ClassClassCast},
		weights: []float64{0.28, 0.26, 0.18, 0.15, 0.13},
	},
	KindNullExtra: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassRuntime, javalang.ClassIllegalState},
		weights: []float64{0.68, 0.17, 0.15},
	},
}

// --- QGJ-UI (emulator) calibration -------------------------------------------

// Table V: 41,405 injected events per mode. Semi-valid: 1,496 exceptions
// (3.6%) and 22 crashes (0.05%). Random: 615 exceptions (1.5%) and 0
// crashes. QGJ-UI only reaches launcher activities, which "are also simpler
// and therefore tend to be more reliable" (Section IV-D), so launcher
// handlers use small per-delivery probabilities rather than deterministic
// per-kind reactions. The probabilities below are conditioned on the event
// actually reaching a component (an `am` event); input/key/motion events
// are absorbed by the adb utilities' sanitization.
const (
	// uiIntentExceptionProbSemiValid: P(exception | am event, semi-valid
	// mutation). With ~30% of Monkey events carrying intents this lands at
	// ~3.6% of all events.
	uiIntentExceptionProbSemiValid = 0.270
	// uiIntentCrashProbSemiValid: P(crash | am event, semi-valid). 22 of
	// 41,405 events = 0.053%; conditioned on the intent share that is
	// ~0.18%.
	uiIntentCrashProbSemiValid = 0.0135
	// uiIntentExceptionProbRandom: random mutations mostly die in input
	// sanitization before reaching a component; the rest raise fewer
	// exceptions (1.5% of all events) and all are handled.
	uiIntentExceptionProbRandom = 0.092
)

// uiExceptionMix is the class mix for launcher-activity exceptions during
// UI fuzzing (all handled; Section IV-D reports zero system crashes).
var uiExceptionMix = classWeights{
	classes: []javalang.Class{javalang.ClassIllegalArgument, javalang.ClassIllegalState, javalang.ClassNullPointer, javalang.ClassActivityNotFound},
	weights: []float64{0.40, 0.25, 0.20, 0.15},
}

// uiCrashMix is the class mix for the rare launcher crashes (semi-valid
// mode only).
var uiCrashMix = classWeights{
	classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassIllegalState, javalang.ClassIllegalArgument},
	weights: []float64{0.45, 0.30, 0.25},
}

// --- Scenario constants -------------------------------------------------------

const (
	// scenarioHangBusy is how long a wedged handler occupies the main
	// looper; anything over the 5 s ANR threshold works.
	scenarioHangBusy = 12 * time.Second
)

// --- Legacy (JJB-era) calibration ---------------------------------------------

// The paper repeatedly contrasts its findings against the original
// JarJarBinks study (Maji et al., DSN 2012) on Android 2.x, "where
// NullPointerExceptions contributed to 46% of all exceptions" (Section
// IV-E) — the baseline for the claim that input validation improved over
// the years. legacyPhoneParams models that era: a much higher crash
// incidence and an NPE-dominated mix, used by the ablation study and the
// historical-comparison bench.
var legacyPhoneParams = populationParams{
	appCrashyFrac: 1.0,
	crashKindProb: map[DefectKind]float64{
		KindMismatch:      0.135,
		KindMissingAction: 0.070,
		KindMissingData:   0.070,
		KindRandomAction:  0.080,
		KindRandomData:    0.070,
		KindRandomExtras:  0.070,
		KindNullExtra:     0.070,
	},
	rejectKindProb: 0.012, // weaker framework-side validation back then
	catchKindProb:  0.008,
	crashMix:       legacyCrashMix,
	rejectMix:      wearRejectMix,
}

var legacyCrashMix = map[DefectKind]classWeights{
	KindMismatch: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassIllegalArgument, javalang.ClassRuntime, javalang.ClassIllegalState},
		weights: []float64{0.50, 0.22, 0.16, 0.12},
	},
	KindMissingAction: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassRuntime, javalang.ClassIllegalArgument},
		weights: []float64{0.58, 0.24, 0.18},
	},
	KindMissingData: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassRuntime, javalang.ClassIllegalArgument},
		weights: []float64{0.60, 0.22, 0.18},
	},
	KindRandomAction: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassClassNotFound, javalang.ClassIllegalArgument, javalang.ClassRuntime},
		weights: []float64{0.35, 0.28, 0.20, 0.17},
	},
	KindRandomData: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassNumberFormat, javalang.ClassIllegalArgument},
		weights: []float64{0.48, 0.28, 0.24},
	},
	KindRandomExtras: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassClassCast, javalang.ClassRuntime},
		weights: []float64{0.42, 0.32, 0.26},
	},
	KindNullExtra: {
		classes: []javalang.Class{javalang.ClassNullPointer, javalang.ClassRuntime},
		weights: []float64{0.85, 0.15},
	},
}
