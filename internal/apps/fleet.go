package apps

import (
	"fmt"
	"sort"

	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/rng"
	"repro/internal/wearos"
)

// FleetKind selects one of the three experimental populations.
type FleetKind int

const (
	// WearFleet is the Moto 360 population of Table II (QGJ-Master study).
	WearFleet FleetKind = iota + 1
	// PhoneFleet is the Nexus 6 com.android.* population (Table IV).
	PhoneFleet
	// EmulatorFleet is the QGJ-UI population: all built-in apps plus the
	// top-20 most popular third-party apps, with launcher-centric
	// behaviour profiles (Table V).
	EmulatorFleet
	// LegacyPhoneFleet is the same 63-app phone population with the
	// JJB-era (Android 2.x) robustness calibration: the historical
	// baseline against which the paper measures input-validation
	// improvement (Section IV-E).
	LegacyPhoneFleet
)

// String names the fleet kind.
func (k FleetKind) String() string {
	switch k {
	case WearFleet:
		return "wear"
	case PhoneFleet:
		return "phone"
	case EmulatorFleet:
		return "emulator"
	case LegacyPhoneFleet:
		return "legacy-phone"
	default:
		return "unknown"
	}
}

// Fleet is a fully materialized app population: manifests plus behaviour
// models, ready to install into a simulated device.
type Fleet struct {
	Kind     FleetKind
	Seed     uint64
	Packages []*manifest.Package

	behaviors map[intent.ComponentName]*behavior
	traits    map[intent.ComponentName]wearos.ComponentTraits
}

// BuildWearFleet constructs the 46-app wearable population.
func BuildWearFleet(seed uint64) *Fleet {
	f := newFleet(WearFleet, seed, wearPopulation())
	f.sampleAll()
	f.applyWearScenarios()
	return f
}

// BuildPhoneFleet constructs the 63-app phone population.
func BuildPhoneFleet(seed uint64) *Fleet {
	f := newFleet(PhoneFleet, seed, phonePopulation())
	f.sampleAll()
	return f
}

// BuildLegacyPhoneFleet constructs the same phone population with the
// JJB-era (Android 2.x) robustness calibration, for the historical
// input-validation comparison the paper draws against Maji et al. 2012.
func BuildLegacyPhoneFleet(seed uint64) *Fleet {
	f := newFleet(LegacyPhoneFleet, seed, phonePopulation())
	f.sampleAll()
	return f
}

// BuildEmulatorFleet constructs the QGJ-UI population: the wear fleet's
// built-in apps plus its top-20 third-party apps by downloads, with all
// components re-profiled for UI fuzzing.
func BuildEmulatorFleet(seed uint64) *Fleet {
	base := newFleet(EmulatorFleet, seed, wearPopulation())
	var builtIn, third []*manifest.Package
	for _, p := range base.Packages {
		if p.Origin == manifest.BuiltIn {
			builtIn = append(builtIn, p)
		} else {
			third = append(third, p)
		}
	}
	sort.Slice(third, func(i, j int) bool { return third[i].Downloads > third[j].Downloads })
	if len(third) > 20 {
		third = third[:20]
	}
	base.Packages = append(builtIn, third...)
	r := rng.New(seed).Split("ui-profiles")
	for _, p := range base.Packages {
		for _, c := range p.Components {
			base.behaviors[c.Name] = uiBehavior(c.Name, r.Split(c.Name.FlattenToString()))
			base.traits[c.Name] = wearos.ComponentTraits{}
		}
	}
	return base
}

func newFleet(kind FleetKind, seed uint64, blocks []populationBlock) *Fleet {
	r := rng.New(seed).Split("population")
	return &Fleet{
		Kind:      kind,
		Seed:      seed,
		Packages:  buildPackages(blocks, r),
		behaviors: make(map[intent.ComponentName]*behavior),
		traits:    make(map[intent.ComponentName]wearos.ComponentTraits),
	}
}

// params returns the population parameters for a package of this fleet.
func (f *Fleet) params(p *manifest.Package) *populationParams {
	if f.Kind == PhoneFleet {
		return &phoneParams
	}
	if f.Kind == LegacyPhoneFleet {
		return &legacyPhoneParams
	}
	if p.Origin == manifest.BuiltIn {
		return &wearBuiltInParams
	}
	if p.Category == manifest.HealthFitness {
		return &wearHealthThirdPartyParams
	}
	return &wearThirdPartyParams
}

// sampleAll quota-selects the crashy apps per population block and samples
// every component's behaviour.
//
// Quota sampling (rather than per-app coin flips) pins the app-level crash
// fractions to Fig. 4's 64% (built-in) and 46% (third-party) exactly, while
// the *which components, which defects, which exception classes* remain
// stochastic under the fleet seed.
func (f *Fleet) sampleAll() {
	crashy := f.crashyQuota()
	for _, p := range f.Packages {
		f.samplePackage(p, crashy[p.Name])
	}
}

// sampleOnly samples behaviour for just the named package. The crashy
// quota draw still covers the whole population — it decides whether this
// package is crashy — but the per-component sampling, the expensive step,
// is skipped for everything else. Component streams are label-split from
// the seed, not sequence-dependent, so the sampled behaviour is identical
// to what a full sampleAll produces for the same package.
func (f *Fleet) sampleOnly(name string) error {
	p := f.Package(name)
	if p == nil {
		return fmt.Errorf("package %q not in the %s fleet", name, f.Kind)
	}
	f.samplePackage(p, f.crashyQuota()[p.Name])
	return nil
}

// crashyQuota runs the per-origin quota draw over the whole population.
func (f *Fleet) crashyQuota() map[string]bool {
	r := rng.New(f.Seed).Split("behaviors")

	// Partition apps by origin for the quota draw.
	byOrigin := map[manifest.Origin][]*manifest.Package{}
	for _, p := range f.Packages {
		byOrigin[p.Origin] = append(byOrigin[p.Origin], p)
	}
	crashy := make(map[string]bool)
	for origin, pkgs := range byOrigin {
		frac := f.params(pkgs[0]).appCrashyFrac
		quota := int(frac*float64(len(pkgs)) + 0.5)
		order := append([]*manifest.Package(nil), pkgs...)
		rng.Shuffle(r.Split(fmt.Sprintf("crashy-quota-%d", origin)), order)
		for i := 0; i < quota && i < len(order); i++ {
			crashy[order[i].Name] = true
		}
	}
	return crashy
}

// samplePackage samples every component of one package.
func (f *Fleet) samplePackage(p *manifest.Package, crashy bool) {
	r := rng.New(f.Seed).Split("behaviors")
	params := f.params(p)
	for _, c := range p.Components {
		cr := r.Split("comp:" + c.Name.FlattenToString())
		f.behaviors[c.Name] = sampleBehavior(c.Name, params, crashy, cr)
		f.traits[c.Name] = wearos.ComponentTraits{
			UsesSensorManager: p.UsesSensorManager,
		}
	}
}

// newSparseFleet materializes the population of the given kind without
// sampling any behaviour. Only the fleet kinds with a single-device
// population support it (EmulatorFleet restructures the package list).
func newSparseFleet(kind FleetKind, seed uint64) (*Fleet, error) {
	switch kind {
	case WearFleet:
		return newFleet(WearFleet, seed, wearPopulation()), nil
	case PhoneFleet:
		return newFleet(PhoneFleet, seed, phonePopulation()), nil
	case LegacyPhoneFleet:
		return newFleet(LegacyPhoneFleet, seed, phonePopulation()), nil
	default:
		return nil, fmt.Errorf("apps: no single-package build for fleet kind %s", kind)
	}
}

// BuildFleetPackage materializes the population of the given kind with
// behaviour sampled only for the named package. Farm shards fuzz one
// package per freshly booted device; skipping the rest of the population's
// behaviour sampling cuts shard startup cost while keeping the target's
// behaviour bit-identical to the full build (asserted by
// TestBuildFleetPackageMatchesFullBuild).
func BuildFleetPackage(kind FleetKind, seed uint64, pkg string) (*Fleet, error) {
	f, err := newSparseFleet(kind, seed)
	if err != nil {
		return nil, err
	}
	if err := f.sampleOnly(pkg); err != nil {
		return nil, err
	}
	if kind == WearFleet {
		f.applyWearScenarios()
	}
	return f, nil
}

// FleetTemplate is the population built once and shared across every shard
// of a farm run: the manifest packages (structurally shared, treated as
// read-only after construction) plus the population-wide crashy quota draw.
// Instantiate stamps out a per-shard Fleet that shares the packages but
// samples behaviour for just one target package — the same result as
// BuildFleetPackage without rebuilding 46 manifests and re-running the
// quota draw per shard (asserted by TestFleetTemplateMatchesBuildFleetPackage).
type FleetTemplate struct {
	kind     FleetKind
	seed     uint64
	packages []*manifest.Package
	crashy   map[string]bool
}

// NewFleetTemplate builds the shared population once. Safe to share across
// goroutines afterwards; Instantiate may be called concurrently.
func NewFleetTemplate(kind FleetKind, seed uint64) (*FleetTemplate, error) {
	f, err := newSparseFleet(kind, seed)
	if err != nil {
		return nil, err
	}
	crashy := f.crashyQuota()
	if kind == WearFleet {
		// The scenarios' manifest-level effects (ensureReachable's export/
		// permission strips) land here, once, while the packages are still
		// private; the behaviour overrides no-op on the empty behaviour maps
		// and are re-applied by each Instantiate.
		f.applyWearScenarios()
	}
	// Pre-warm the interned component strings so concurrent installs into
	// device clones only ever read them (Install's writes are conditional).
	for _, p := range f.Packages {
		for _, c := range p.Components {
			c.Flat()
			c.BindEndpoint()
		}
	}
	return &FleetTemplate{kind: kind, seed: seed, packages: f.Packages, crashy: crashy}, nil
}

// Kind returns the template's fleet kind.
func (t *FleetTemplate) Kind() FleetKind { return t.kind }

// Instantiate returns a fleet sharing the template's packages with
// behaviour sampled for just the named package — bit-identical to
// BuildFleetPackage(t.kind, t.seed, pkg). Safe to call concurrently.
func (t *FleetTemplate) Instantiate(pkg string) (*Fleet, error) {
	f := &Fleet{
		Kind:      t.kind,
		Seed:      t.seed,
		Packages:  t.packages,
		behaviors: make(map[intent.ComponentName]*behavior),
		traits:    make(map[intent.ComponentName]wearos.ComponentTraits),
	}
	p := f.Package(pkg)
	if p == nil {
		return nil, fmt.Errorf("package %q not in the %s fleet", pkg, f.Kind)
	}
	f.samplePackage(p, t.crashy[pkg])
	if t.kind == WearFleet {
		f.applyWearScenarios()
	}
	return f, nil
}

// Reset rewinds a previously Instantiated fleet back to the state
// Instantiate(pkg) produces, without resampling: every component behaviour's
// stochastic draw stream returns to its post-sample position, and the wear
// scenario overrides re-apply (they are idempotent — reactions are otherwise
// never mutated after instantiation). It reports false when f was not
// produced by this template for this package, in which case the caller must
// instantiate fresh; f is left untouched on the sanity-check failures and
// remains usable either way.
func (t *FleetTemplate) Reset(f *Fleet, pkg string) bool {
	if f == nil || f.Kind != t.kind || f.Seed != t.seed || len(f.Packages) != len(t.packages) {
		return false
	}
	for i := range f.Packages {
		if f.Packages[i] != t.packages[i] {
			return false
		}
	}
	p := f.Package(pkg)
	if p == nil {
		return false
	}
	for _, c := range p.Components {
		b := f.behaviors[c.Name]
		if b == nil {
			return false
		}
		b.draw.Restore(b.drawInit)
	}
	if t.kind == WearFleet {
		f.applyWearScenarios()
	}
	return true
}

// Behavior exposes a component's behaviour model (tests and scenario
// wiring).
func (f *Fleet) Behavior(cn intent.ComponentName) *behavior { return f.behaviors[cn] }

// Traits exposes a component's OS traits.
func (f *Fleet) Traits(cn intent.ComponentName) wearos.ComponentTraits { return f.traits[cn] }

// CrashyApps lists package names whose components carry at least one crash
// reaction (diagnostics and calibration tests).
func (f *Fleet) CrashyApps() []string {
	seen := map[string]bool{}
	for cn, b := range f.behaviors {
		for _, rc := range b.reactions {
			if rc.kind == reactCrash {
				seen[cn.Package] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Package returns the fleet package with the given name, or nil.
func (f *Fleet) Package(name string) *manifest.Package {
	for _, p := range f.Packages {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Stats aggregates the fleet the way Table II does.
func (f *Fleet) Stats(cat manifest.AppCategory, origin manifest.Origin) manifest.Stats {
	var s manifest.Stats
	for _, p := range f.Packages {
		if cat != 0 && p.Category != cat {
			continue
		}
		if origin != 0 && p.Origin != origin {
			continue
		}
		s.Apps++
		for _, c := range p.Components {
			switch c.Type {
			case manifest.Activity:
				s.Activities++
			case manifest.Service:
				s.Services++
			}
		}
	}
	return s
}

// InstallInto installs every package and registers every behaviour handler
// on the device.
func (f *Fleet) InstallInto(dev *wearos.OS) error {
	for _, p := range f.Packages {
		if err := f.installPackage(dev, p); err != nil {
			return err
		}
	}
	return nil
}

// InstallPackageInto installs a single fleet package (and its handlers) on
// the device. Farm shards fuzz exactly one package per device, so they skip
// the other installs; the package's sampled behaviour is identical either
// way because every component's model derives from its own RNG split.
func (f *Fleet) InstallPackageInto(dev *wearos.OS, name string) (*manifest.Package, error) {
	p := f.Package(name)
	if p == nil {
		return nil, fmt.Errorf("package %q not in the %s fleet", name, f.Kind)
	}
	if err := f.installPackage(dev, p); err != nil {
		return nil, err
	}
	return p, nil
}

func (f *Fleet) installPackage(dev *wearos.OS, p *manifest.Package) error {
	if err := dev.InstallPackage(p); err != nil {
		return fmt.Errorf("install %s: %w", p.Name, err)
	}
	for _, c := range p.Components {
		b := f.behaviors[c.Name]
		if b == nil {
			continue
		}
		dev.RegisterHandler(c.Name, b.handler(c.Type), f.traits[c.Name])
	}
	return nil
}
