// Package apps builds the synthetic application fleets the reproduction
// fuzzes: the 46 Android Wear apps of Table II, the 63 com.android.* phone
// apps of Section III-D, and the emulator fleet of the QGJ-UI experiment.
//
// Because the real APKs cannot execute outside Android, each component gets
// a *validation behaviour model*: a deterministic mapping from the kind of
// malformation an incoming intent carries to a reaction (ignore, reject
// with an exception, catch and log, crash, or hang). The mapping is sampled
// from per-population distributions whose constants (calibration.go) encode
// the paper's aggregate findings. Everything downstream — QGJ, logcat, the
// analyzer — is calibration-blind and measures outcomes through logs only,
// exactly as the paper does.
package apps

import (
	"strings"

	"repro/internal/intent"
)

// DefectKind is the behaviour model's view of what is wrong with an intent.
// It is recomputed from the intent's actual fields (the way a component's
// validation code would see them), not taken from generator metadata.
type DefectKind int

const (
	// KindNone: the intent is well formed and the action/data combination
	// is compatible.
	KindNone DefectKind = iota
	// KindMismatch: action and data are individually valid but the
	// combination is invalid (FIC A's signature defect).
	KindMismatch
	// KindMissingAction: no action (FIC B).
	KindMissingAction
	// KindMissingData: action present but no data URI (FIC B).
	KindMissingData
	// KindRandomAction: the action is not a registered action string (FIC C).
	KindRandomAction
	// KindRandomData: the data URI has an unknown scheme or failed to parse
	// (FIC C).
	KindRandomData
	// KindRandomExtras: extras with unexpected keys/values (FIC D).
	KindRandomExtras
	// KindNullExtra: at least one extra maps to an explicit null (FIC D).
	KindNullExtra
)

// AllDefectKinds lists the non-None kinds in priority order (highest first):
// the order a validation routine would trip over them.
var AllDefectKinds = []DefectKind{
	KindNullExtra, KindRandomExtras, KindRandomAction, KindRandomData,
	KindMissingAction, KindMissingData, KindMismatch,
}

// String names the kind for diagnostics.
func (k DefectKind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindMismatch:
		return "mismatch"
	case KindMissingAction:
		return "missing-action"
	case KindMissingData:
		return "missing-data"
	case KindRandomAction:
		return "random-action"
	case KindRandomData:
		return "random-data"
	case KindRandomExtras:
		return "random-extras"
	case KindNullExtra:
		return "null-extra"
	default:
		return "unknown"
	}
}

// expectedExtraPrefixes are key namespaces a component's own code plausibly
// reads; anything else is an unexpected extra.
var expectedExtraPrefixes = []string{
	"android.intent.extra.",
	"android.app.extra.",
	"com.google.android.wearable.extra.",
}

func extraKeyExpected(key string) bool {
	for _, p := range expectedExtraPrefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// AnalyzeIntent derives the dominant defect of in from its actual fields,
// mirroring the order of checks a component's validation code performs.
// Only the highest-priority defect is returned: real validation code throws
// at the first check that fails.
func AnalyzeIntent(in *intent.Intent) DefectKind {
	// Extras are inspected first: unmarshalling the bundle happens before
	// the component looks at action/data, and a poisoned bundle trips
	// getExtra() calls immediately.
	if in.Extras.Len() > 0 {
		if in.Extras.HasNull() {
			return KindNullExtra
		}
		unexpected := false
		for _, k := range in.Extras.Keys() {
			if !extraKeyExpected(k) {
				unexpected = true
				break
			}
		}
		if unexpected {
			return KindRandomExtras
		}
	}
	hasAction := in.Action != ""
	hasData := !in.Data.IsZero()
	if hasAction && !intent.KnownAction(in.Action) {
		return KindRandomAction
	}
	if hasData && !intent.KnownScheme(in.Data.Scheme) {
		return KindRandomData
	}
	if !hasAction {
		return KindMissingAction
	}
	if !hasData {
		if intent.ActionExpectsData(in.Action) {
			return KindMissingData
		}
		return KindNone // action legitimately takes no data
	}
	if !intent.ActionAcceptsScheme(in.Action, in.Data.Scheme) {
		return KindMismatch
	}
	return KindNone
}
