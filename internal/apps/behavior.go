package apps

import (
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
	"repro/internal/rng"
	"repro/internal/wearos"
)

// reactionKind is what a component does when it sees a given defect.
type reactionKind int

const (
	reactIgnore reactionKind = iota // graceful: no visible effect
	reactReject                     // throw back to the caller, no crash
	reactCatch                      // catch and log inside the app
	reactCrash                      // uncaught exception, FATAL EXCEPTION
	reactHang                       // wedge the main looper past the ANR bar
)

// reaction is one (possibly stochastic) response entry.
type reaction struct {
	kind  reactionKind
	class javalang.Class
	busy  time.Duration
	// prob < 1 makes the reaction fire stochastically per delivery (used by
	// launcher components during UI fuzzing); 0 means always fire.
	prob float64
	// onlyActions / onlyScheme gate the reaction to specific intent
	// contents (scenario overrides: the paper's escalation chains fire on
	// particular malformed intents, not on every intent of a kind).
	onlyActions []string
	onlyScheme  string
}

// matches reports whether the reaction's content gates admit the intent.
func (r reaction) matches(in *intent.Intent) bool {
	if len(r.onlyActions) > 0 {
		ok := false
		for _, a := range r.onlyActions {
			if in.Action == a {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if r.onlyScheme != "" && in.Data.Scheme != r.onlyScheme {
		return false
	}
	return true
}

// behavior is the full validation model of one component.
type behavior struct {
	name      intent.ComponentName
	reactions map[DefectKind]reaction
	// draw is the component's private random stream, used only for
	// stochastic reactions; deterministic per fleet seed.
	draw *rng.Source
	// drawInit is draw's position right after sampling; FleetTemplate.Reset
	// rewinds the stream here so a reused fleet replays the same per-delivery
	// draws a freshly instantiated one would.
	drawInit uint64
	// uiProfile switches the component to the launcher-style probabilistic
	// model for QGJ-UI runs.
	uiProfile bool
}

// stackFor fabricates a plausible Java stack for an exception escaping the
// component; the analyzer only needs the top frames to look right.
func stackFor(cn intent.ComponentName, kind manifest.ComponentType, class javalang.Class) []javalang.Frame {
	entry := "onCreate"
	file := "Activity.java"
	if kind == manifest.Service {
		entry = "onStartCommand"
		file = "Service.java"
	}
	simple := cn.Class
	if i := lastDot(simple); i >= 0 {
		simple = simple[i+1:]
	}
	return []javalang.Frame{
		{Class: cn.Class, Method: entry, File: simple + ".java", Line: 40 + len(simple)},
		{Class: "android.app.ActivityThread", Method: "performLaunchActivity", File: file, Line: 2817},
		{Class: "android.os.Handler", Method: "dispatchMessage", File: "Handler.java", Line: 102},
		{Class: "android.os.Looper", Method: "loop", File: "Looper.java", Line: 154},
	}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// message fabricates a defect-appropriate exception message.
func message(class javalang.Class, kind DefectKind, in *intent.Intent) string {
	switch class {
	case javalang.ClassNullPointer:
		return "Attempt to invoke virtual method on a null object reference"
	case javalang.ClassIllegalArgument:
		return "Unexpected value in intent " + in.String()
	case javalang.ClassIllegalState:
		return "Fragment host has been destroyed; cannot handle " + kind.String()
	case javalang.ClassClassNotFound:
		return "Didn't find class referenced by intent extra on path: DexPathList"
	case javalang.ClassClassCast:
		return "java.lang.String cannot be cast to android.os.Parcelable"
	case javalang.ClassArithmetic:
		return "divide by zero"
	case javalang.ClassActivityNotFound:
		return "No Activity found to handle " + in.String()
	case javalang.ClassNumberFormat:
		return "For input string: \"" + in.Data.Opaque + "\""
	case javalang.ClassBadParcelable:
		return "Parcelable protocol requires a CREATOR object"
	case javalang.ClassUnsupportedOperation:
		return "Operation not supported for action " + in.Action
	default:
		return "error while processing intent"
	}
}

// handler adapts the behaviour model to the OS Handler signature.
func (b *behavior) handler(compType manifest.ComponentType) wearos.Handler {
	return func(env *wearos.Env, in *intent.Intent) wearos.Outcome {
		kind := AnalyzeIntent(in)
		if kind == KindNone {
			return wearos.Outcome{}
		}
		r, ok := b.reactions[kind]
		if !ok {
			return wearos.Outcome{}
		}
		if !r.matches(in) {
			return wearos.Outcome{}
		}
		if r.prob > 0 && !b.draw.Bool(r.prob) {
			return wearos.Outcome{}
		}
		switch r.kind {
		case reactIgnore:
			return wearos.Outcome{}
		case reactReject:
			return wearos.Outcome{
				Thrown:   javalang.New(r.class, message(r.class, kind, in)),
				Rejected: true,
			}
		case reactCatch:
			return wearos.Outcome{
				Thrown: javalang.New(r.class, message(r.class, kind, in)),
				Caught: true,
			}
		case reactCrash:
			thr := javalang.New(r.class, message(r.class, kind, in)).
				WithStack(stackFor(b.name, compType, r.class)...)
			return wearos.Outcome{Thrown: thr}
		case reactHang:
			var thr *javalang.Throwable
			if r.class != "" {
				thr = javalang.New(r.class, message(r.class, kind, in))
			}
			return wearos.Outcome{Thrown: thr, BusyFor: r.busy}
		default:
			return wearos.Outcome{}
		}
	}
}

// sampleBehavior draws a component's reaction table from the population
// parameters. crashy marks components of quota-selected crashy apps.
func sampleBehavior(cn intent.ComponentName, p *populationParams, crashy bool, r *rng.Source) *behavior {
	b := &behavior{
		name:      cn,
		reactions: make(map[DefectKind]reaction),
		draw:      r.Split("draw"),
	}
	b.drawInit = b.draw.State()
	for _, kind := range AllDefectKinds {
		switch {
		case crashy && r.Bool(p.crashKindProb[kind]):
			mix := p.crashMix[kind]
			b.reactions[kind] = reaction{
				kind:  reactCrash,
				class: mix.classes[r.WeightedIndex(mix.weights)],
			}
		case r.Bool(p.rejectKindProb):
			mix := p.rejectMix[kind]
			b.reactions[kind] = reaction{
				kind:  reactReject,
				class: mix.classes[r.WeightedIndex(mix.weights)],
			}
		case r.Bool(p.catchKindProb):
			mix := p.rejectMix[kind]
			b.reactions[kind] = reaction{
				kind:  reactCatch,
				class: mix.classes[r.WeightedIndex(mix.weights)],
			}
		}
	}
	return b
}

// uiBehavior builds the launcher-activity profile used by the QGJ-UI
// experiment: per-delivery stochastic reactions keyed on the mutation style
// visible in the intent (semi-valid mutations arrive as mismatch/missing
// kinds; random mutations as random-action/random-data kinds).
func uiBehavior(cn intent.ComponentName, r *rng.Source) *behavior {
	b := &behavior{
		name:      cn,
		reactions: make(map[DefectKind]reaction),
		draw:      r.Split("ui-draw"),
		uiProfile: true,
	}
	b.drawInit = b.draw.State()
	semiValidKinds := []DefectKind{KindMismatch, KindMissingAction, KindMissingData, KindRandomExtras, KindNullExtra}
	for _, kind := range semiValidKinds {
		// Crash and reject compete; crash is drawn first with its tiny
		// probability by giving the reject entry the remaining mass.
		if r.Bool(0.30) { // not every launcher validates every path
			continue
		}
		b.reactions[kind] = reaction{
			kind:  reactCatch,
			class: uiExceptionMix.classes[r.WeightedIndex(uiExceptionMix.weights)],
			prob:  uiIntentExceptionProbSemiValid,
		}
	}
	// A couple of launchers carry a genuine crash path for semi-valid
	// mutations (Table V: 22 crashes of 41,405 semi-valid events).
	if r.Bool(0.5) {
		b.reactions[KindMismatch] = reaction{
			kind:  reactCrash,
			class: uiCrashMix.classes[r.WeightedIndex(uiCrashMix.weights)],
			prob:  uiIntentCrashProbSemiValid,
		}
	}
	for _, kind := range []DefectKind{KindRandomAction, KindRandomData} {
		b.reactions[kind] = reaction{
			kind:  reactCatch,
			class: uiExceptionMix.classes[r.WeightedIndex(uiExceptionMix.weights)],
			prob:  uiIntentExceptionProbRandom,
		}
	}
	return b
}
