// Package telemetry is the observability substrate for the QGJ pipeline:
// an atomic counter/gauge registry, fixed-bucket latency histograms with
// quantile estimation, and lightweight spans with parent linkage. It is
// dependency-free (standard library only) so every layer — core, binder,
// wearos, logcat, analysis, adb, uifuzz — can import it without cycles.
//
// Design notes:
//
//   - Hot paths cache metric handles (a *Counter, *Gauge, *Histogram) once
//     and then touch only atomics; the registry map is consulted only at
//     wiring time.
//   - Everything is nil-safe: a nil *Registry returns nil metrics, and all
//     metric operations on nil receivers are no-ops. Disabling telemetry is
//     therefore just "don't create a registry" — the uninstrumented hot
//     path costs a single nil check (see BenchmarkCampaignNoTelemetry).
//   - Values are exposed three ways: Prometheus-style text exposition
//     (WritePrometheus), an expvar-style JSON snapshot (Snapshot), and an
//     HTTP endpoint bundling both with net/http/pprof (Serve).
//
// Metric naming follows Prometheus conventions: snake_case names,
// `_total` suffix for counters, `_seconds` for latency histograms, and
// labels for dimensions like the campaign letter or delivery result (see
// docs/observability.md for the full catalog).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. campaign="A", kind="activity").
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64. The zero value is ready to use;
// a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// kind discriminates registry entries.
type kind int

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// entry is one registered metric instance (a unique name+labels pair).
type entry struct {
	name   string
	labels []Label
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Get-or-create methods are safe for
// concurrent use; returned handles are cached by callers and touched with
// atomics only. A nil *Registry no-ops everywhere and hands out nil
// metrics, which are themselves no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*entry
	hooks   []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

// metricKey renders the canonical identity of name+labels. Labels are
// sorted so that {a,b} and {b,a} are the same metric.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(l.Value)
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup get-or-creates the entry, enforcing kind consistency.
func (r *Registry) lookup(name string, k kind, labels []Label) *entry {
	labels = sortLabels(labels)
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[key]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", key, e.kind, k))
		}
		return e
	}
	e := &entry{name: name, labels: labels, kind: k}
	r.metrics[key] = e
	return e
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindCounter, labels)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindGauge, labels)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket upper bounds on first use (bounds are ignored on later
// lookups of the same metric). Pass nil bounds for DefLatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindHistogram, labels)
	if e.hist == nil {
		e.hist = NewHistogram(bounds)
	}
	return e.hist
}

// OnCollect registers fn to run before every exposition (WritePrometheus
// or Snapshot) — the hook refreshes gauges whose source of truth lives
// elsewhere. Hooks run outside the registry lock and may call Gauge/Set.
func (r *Registry) OnCollect(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// collect runs the registered hooks.
func (r *Registry) collect() {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// entries returns a sorted snapshot of the registered metric entries.
func (r *Registry) entries() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.metrics))
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, r.metrics[k])
	}
	r.mu.Unlock()
	return out
}
