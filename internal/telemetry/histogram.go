package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets covers 1µs..10s, the range of interest for both the
// simulator's per-intent wall-clock cost (sub-microsecond to tens of
// microseconds) and end-to-end batch operations.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with atomic bucket counts. A value
// v lands in the first bucket whose upper bound satisfies v <= bound; values
// above the last bound land in the implicit +Inf overflow bucket. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (nil or empty defaults to DefLatencyBuckets). The bounds slice is copied
// and sorted defensively.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the configured upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns the per-bucket counts; the last element is the +Inf
// overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket that contains the target rank — the standard
// fixed-bucket estimator. Observations in the overflow bucket clamp to the
// largest bound. Returns 0 when empty or NaN input.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		if i == len(counts)-1 {
			// Overflow bucket: clamp to the largest finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - cum) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// nop is the shared no-op stopper returned by Time for nil histograms, so
// disabled telemetry allocates nothing.
var nop = func() {}

// Time starts a wall-clock timer and returns the function that stops it
// and records the elapsed seconds into h. Instrumentation stays one line
// at call sites:
//
//	defer telemetry.Time(h)()
func Time(h *Histogram) func() {
	if h == nil {
		return nop
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}
