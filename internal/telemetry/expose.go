package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): TYPE comments, one sample per line,
// histograms as cumulative _bucket/_sum/_count families. Collect hooks run
// first so derived gauges are fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.collect()
	var lastName string
	for _, e := range r.entries() {
		if e.name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
			lastName = e.name
		}
		if err := writeEntry(w, e); err != nil {
			return err
		}
	}
	return nil
}

func writeEntry(w io.Writer, e *entry) error {
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", sampleName(e.name, e.labels, nil), e.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", sampleName(e.name, e.labels, nil), formatFloat(e.gauge.Value()))
		return err
	case kindHistogram:
		return writeHistogram(w, e)
	default:
		return nil
	}
}

func writeHistogram(w io.Writer, e *entry) error {
	h := e.hist
	bounds := h.Bounds()
	counts := h.BucketCounts()
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		le := Label{Key: "le", Value: formatFloat(b)}
		if _, err := fmt.Fprintf(w, "%s %d\n",
			sampleName(e.name+"_bucket", e.labels, &le), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	inf := Label{Key: "le", Value: "+Inf"}
	if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(e.name+"_bucket", e.labels, &inf), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", sampleName(e.name+"_sum", e.labels, nil), formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", sampleName(e.name+"_count", e.labels, nil), h.Count())
	return err
}

// sampleName renders name{labels...} with an optional extra label (le).
// Label values are escaped per the text exposition format so values like
// the manifestation "No Effect" (or anything carrying quotes, backslashes,
// or newlines) survive a scrape-and-parse round trip.
func sampleName(name string, labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		writeEscapedLabelValue(&sb, l.Value)
		sb.WriteString(`"`)
	}
	if extra != nil {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra.Key)
		sb.WriteString(`="`)
		writeEscapedLabelValue(&sb, extra.Value)
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// writeEscapedLabelValue writes v with backslash, double-quote, and
// line-feed escaped as \\, \", and \n — exactly the three escapes the
// Prometheus text format (0.0.4) defines for label values. The common case
// (no special characters) takes the single-pass fast path.
func writeEscapedLabelValue(sb *strings.Builder, v string) {
	if !strings.ContainsAny(v, "\\\"\n") {
		sb.WriteString(v)
		return
	}
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramSnapshot is the JSON view of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is the expvar-style JSON view of a registry: every metric keyed
// by its canonical name{labels} identity.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric. Collect
// hooks run first. A nil registry returns a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.collect()
	for _, e := range r.entries() {
		key := metricKey(e.name, e.labels)
		switch e.kind {
		case kindCounter:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[key] = e.counter.Value()
		case kindGauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]float64)
			}
			s.Gauges[key] = e.gauge.Value()
		case kindHistogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[key] = HistogramSnapshot{
				Count: e.hist.Count(),
				Sum:   e.hist.Sum(),
				P50:   e.hist.Quantile(0.50),
				P95:   e.hist.Quantile(0.95),
				P99:   e.hist.Quantile(0.99),
			}
		}
	}
	return s
}
