package telemetry

import (
	"testing"
	"time"
)

// fakeClock is a deterministic time source for span tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestSpanParentChildOrdering(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := NewTracer(clk.now, 16)

	root := tr.Start("dispatch")
	child := root.Child("handler")
	grand := child.Child("exception")
	if tr.Active() != 3 {
		t.Fatalf("active = %d, want 3", tr.Active())
	}
	grand.End()
	child.End()
	root.End()

	recs := tr.Finished()
	if len(recs) != 3 {
		t.Fatalf("finished = %d, want 3", len(recs))
	}
	// Finished order is end order: innermost first.
	if recs[0].Name != "exception" || recs[1].Name != "handler" || recs[2].Name != "dispatch" {
		t.Fatalf("order = %q %q %q", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	// Parent linkage.
	if recs[1].ParentID != recs[2].ID {
		t.Fatalf("handler parent = %d, want root id %d", recs[1].ParentID, recs[2].ID)
	}
	if recs[0].ParentID != recs[1].ID {
		t.Fatalf("exception parent = %d, want handler id %d", recs[0].ParentID, recs[1].ID)
	}
	if recs[2].ParentID != 0 {
		t.Fatalf("root parent = %d, want 0", recs[2].ParentID)
	}
	// Children start after their parent and end before it.
	if !recs[1].Start.After(recs[2].Start) || !recs[2].End.After(recs[1].End) {
		t.Fatal("child span must nest inside parent")
	}
	if recs[0].Duration() <= 0 {
		t.Fatal("span duration must be positive under a ticking clock")
	}
	if tr.Active() != 0 {
		t.Fatalf("active after all ends = %d", tr.Active())
	}
}

func TestSpanRingEviction(t *testing.T) {
	tr := NewTracer(nil, 4)
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	if got := len(tr.Finished()); got != 4 {
		t.Fatalf("retained = %d, want 4", got)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestSpanNilAndDoubleEndSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	sp.End() // no panic
	if sp.Child("y") != nil {
		t.Fatal("nil span child must be nil")
	}
	if tr.Finished() != nil || tr.Active() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors must be zero")
	}

	real := NewTracer(nil, 2)
	s := real.Start("once")
	s.End()
	s.End() // double end is a no-op
	if got := len(real.Finished()); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}
