package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress rate-limits one-line status output: Tickf prints at most once
// per interval, Final always prints. Safe for concurrent use. Long
// campaigns call Tickf from their progress callbacks and get a heartbeat
// on stderr without flooding it.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	start time.Time
	last  time.Time
	// pending buffers the most recent suppressed line so Flush can emit it
	// when the campaign ends between intervals.
	pending string
}

// NewProgress returns a progress printer writing to w at most once per
// every (2s when every <= 0). The first Tickf always prints, so a run
// shorter than the interval still produces one line of feedback.
func NewProgress(w io.Writer, every time.Duration) *Progress {
	if every <= 0 {
		every = 2 * time.Second
	}
	now := time.Now()
	return &Progress{w: w, every: every, start: now, last: now.Add(-every)}
}

// Elapsed returns the wall time since the printer was created.
func (p *Progress) Elapsed() time.Duration {
	if p == nil {
		return 0
	}
	return time.Since(p.start)
}

// Tickf prints the formatted line if the interval elapsed since the last
// print; it reports whether it printed. A nil Progress no-ops.
func (p *Progress) Tickf(format string, args ...any) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	now := time.Now()
	if now.Sub(p.last) < p.every {
		// Keep the freshest suppressed line; a run that ends before the
		// next interval flushes it instead of losing the final state.
		p.pending = fmt.Sprintf(format, args...)
		p.mu.Unlock()
		return false
	}
	p.last = now
	p.pending = ""
	p.mu.Unlock()
	fmt.Fprintf(p.w, format+"\n", args...)
	return true
}

// Flush prints the most recent line Tickf suppressed, if any, and reports
// whether it printed. Campaigns call it on completion so the last heartbeat
// (the one carrying the final counts) is never swallowed by rate limiting.
func (p *Progress) Flush() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	line := p.pending
	p.pending = ""
	if line != "" {
		p.last = time.Now()
	}
	p.mu.Unlock()
	if line == "" {
		return false
	}
	fmt.Fprintln(p.w, line)
	return true
}

// Final prints unconditionally and drops any pending suppressed line — the
// final line supersedes it.
func (p *Progress) Final(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.pending = ""
	p.mu.Unlock()
	fmt.Fprintf(p.w, format+"\n", args...)
}

// Watch starts a background goroutine printing line() to w every interval
// until the returned stop function is called (which prints one last line).
// line returning "" skips that tick. Used by cmd/qgj for the periodic
// campaign heartbeat built from registry counters.
func Watch(w io.Writer, every time.Duration, line func() string) (stop func()) {
	if every <= 0 {
		every = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if s := line(); s != "" {
					fmt.Fprintln(w, s)
				}
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			if s := line(); s != "" {
				fmt.Fprintln(w, s)
			}
		})
	}
}
