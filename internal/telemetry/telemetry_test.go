package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", L("campaign", "A"))
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterHandleIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", L("k", "1"))
	b := reg.Counter("x_total", L("k", "1"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("x_total", L("k", "2"))
	if a == c {
		t.Fatal("different labels must return distinct counters")
	}
	// Label order must not matter.
	d := reg.Counter("y_total", L("a", "1"), L("b", "2"))
	e := reg.Counter("y_total", L("b", "2"), L("a", "1"))
	if d != e {
		t.Fatal("label order must not create distinct metrics")
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge")
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
	g.Set(-3.5)
	if got := g.Value(); got != -3.5 {
		t.Fatalf("gauge after Set = %v", got)
	}
}

func TestNilRegistryAndMetricsNoop(t *testing.T) {
	var reg *Registry
	c := reg.Counter("a_total")
	g := reg.Gauge("b")
	h := reg.Histogram("c_seconds", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	Time(h)()
	reg.OnCollect(func() { t.Fatal("hook on nil registry must not run") })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must stay zero")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", sb.String(), err)
	}
	if s := reg.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("dual")
}

func TestOnCollectRefreshesGauges(t *testing.T) {
	reg := NewRegistry()
	source := 0
	reg.OnCollect(func() { reg.Gauge("derived").Set(float64(source)) })
	source = 42
	s := reg.Snapshot()
	if s.Gauges["derived"] != 42 {
		t.Fatalf("collect hook did not refresh gauge: %v", s.Gauges)
	}
	source = 43
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "derived 43") {
		t.Fatalf("exposition missing refreshed gauge:\n%s", sb.String())
	}
}
