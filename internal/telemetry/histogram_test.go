package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// v <= bound lands in that bucket: a value exactly on a boundary counts
	// into the boundary's own bucket, not the next one.
	h.Observe(0.5) // bucket le=1
	h.Observe(1)   // bucket le=1 (boundary)
	h.Observe(1.5) // bucket le=2
	h.Observe(2)   // bucket le=2 (boundary)
	h.Observe(4)   // bucket le=4 (boundary)
	h.Observe(9)   // overflow (+Inf)
	got := h.BucketCounts()
	want := []uint64{2, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-18.0) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	// Uniform 1..100: quantiles should interpolate to ~q*100.
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	cases := []struct{ q, want, tol float64 }{
		{0.50, 50, 5},
		{0.90, 90, 5},
		{0.99, 99, 5},
		{1.00, 100, 1e-9},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Fatalf("q%v = %v, want ~%v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(100) // overflow only
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow-only quantile = %v, want clamp to largest bound 2", got)
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("NaN quantile = %v", got)
	}
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatal("q<0 must clamp to 0")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	const goroutines, perG = 8, 4000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(0.25)
				h.Observe(0.75)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2*goroutines*perG {
		t.Fatalf("count = %d", h.Count())
	}
	counts := h.BucketCounts()
	if counts[0] != goroutines*perG || counts[1] != goroutines*perG {
		t.Fatalf("buckets = %v", counts)
	}
	want := float64(goroutines*perG) * (0.25 + 0.75)
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestHistogramDefaultBucketsAndSort(t *testing.T) {
	h := NewHistogram(nil)
	if len(h.Bounds()) != len(DefLatencyBuckets) {
		t.Fatal("nil bounds must default to DefLatencyBuckets")
	}
	// Unsorted input bounds are sorted defensively.
	h2 := NewHistogram([]float64{3, 1, 2})
	b := h2.Bounds()
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Fatalf("bounds not sorted: %v", b)
	}
}

func TestTimerObserves(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	stop := Time(h)
	time.Sleep(time.Millisecond)
	stop()
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatalf("sum = %v, want > 0", h.Sum())
	}
	// Nil histogram: shared no-op, no panic.
	Time(nil)()
}
