package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestRecorderWindowOrderAndWrap(t *testing.T) {
	r := NewRecorder(4)
	r.BeginTrace("A/com.foo")
	for i := 0; i < 6; i++ {
		r.Record(EventIntent, "com.foo/.Main", "android.intent.action.VIEW", "")
	}
	r.RecordNow(EventVerdict, "com.foo", "", "crash")

	w := r.Window()
	if len(w) != 4 {
		t.Fatalf("window length = %d, want capacity 4", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i].Seq != w[i-1].Seq+1 {
			t.Fatalf("window not sequential: %d then %d", w[i-1].Seq, w[i].Seq)
		}
	}
	if last := w[len(w)-1]; last.Kind != EventVerdict || last.Detail != "crash" {
		t.Fatalf("window does not end at the failure: %+v", last)
	}
	if w[0].Seq != 4 {
		t.Fatalf("oldest retained seq = %d, want 4 (7 recorded, capacity 4)", w[0].Seq)
	}
	for _, e := range w {
		if e.Trace != "A/com.foo" {
			t.Fatalf("event missing trace ID: %+v", e)
		}
	}
	if r.Recorded() != 7 {
		t.Fatalf("Recorded() = %d, want 7", r.Recorded())
	}

	// The window is a copy: later records must not mutate it.
	r.Record(EventIntent, "overwrite", "", "")
	if w[0].Subject == "overwrite" {
		t.Fatal("Window aliases the live ring")
	}
}

func TestRecorderBeginTraceResetsWindow(t *testing.T) {
	r := NewRecorder(8)
	r.BeginTrace("A/one")
	r.Record(EventIntent, "x", "", "")
	r.BeginTrace("B/two")
	r.Record(EventIntent, "y", "", "")

	w := r.Window()
	if len(w) != 1 || w[0].Trace != "B/two" || w[0].Subject != "y" {
		t.Fatalf("window after BeginTrace = %+v, want only the new trace's events", w)
	}
	if r.Trace() != "B/two" {
		t.Fatalf("Trace() = %q", r.Trace())
	}
	// Seq keeps running across traces.
	if w[0].Seq != 2 {
		t.Fatalf("seq after trace reset = %d, want 2", w[0].Seq)
	}
}

func TestRecorderClockStamps(t *testing.T) {
	now := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	r := NewRecorder(32)
	r.SetClock(func() time.Time { return now })

	r.Record(EventIntent, "a", "", "") // seq 0 -> exact sample
	now = now.Add(time.Second)
	r.Record(EventIntent, "b", "", "") // within the sampling window: stale stamp
	r.RecordNow(EventVerdict, "c", "", "anr")

	w := r.Window()
	if !w[0].Time.Equal(time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("first stamp = %v", w[0].Time)
	}
	if !w[1].Time.Equal(w[0].Time) {
		t.Fatalf("sampled stamp refreshed too eagerly: %v", w[1].Time)
	}
	if !w[2].Time.Equal(now) {
		t.Fatalf("RecordNow stamp = %v, want exact %v", w[2].Time, now)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.BeginTrace("x")
	r.Record(EventIntent, "a", "b", "c")
	r.RecordNow(EventVerdict, "a", "b", "c")
	r.SetClock(time.Now)
	if r.Window() != nil || r.Recorded() != 0 || r.Trace() != "" {
		t.Fatal("nil recorder must no-op")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{
		Seq:     9,
		Time:    time.Date(1, 1, 1, 0, 0, 42, 500, time.UTC),
		Kind:    EventDenial,
		Trace:   "C/com.bar",
		Subject: "com.bar/.Svc",
		Action:  "android.intent.action.SEND",
		Detail:  "not-exported",
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	// The journal's byte-identity contract needs marshal(unmarshal(x)) ==
	// marshal(x), too.
	again, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-marshal differs:\n%s\n%s", data, again)
	}
	var bad Event
	if err := json.Unmarshal([]byte(`{"seq":1,"kind":"nope"}`), &bad); err == nil {
		t.Fatal("unknown kind must fail to parse")
	}
}

func TestRecorderRecordAllocFree(t *testing.T) {
	r := NewRecorder(16)
	r.SetClock(func() time.Time { return time.Time{} })
	r.BeginTrace("A/com.foo")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(EventDispatch, "com.foo/.Main", "android.intent.action.VIEW", "no-effect")
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.2f per op, want 0", allocs)
	}
}

func TestRegistryAbsorb(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("dispatch_total", L("result", "crash")).Add(2)

	src := NewRegistry()
	src.Counter("dispatch_total", L("result", "crash")).Add(3)
	src.Counter("dispatch_total", L("result", "anr")).Add(1)
	src.Gauge("live_processes").Set(4)
	src.Histogram("lat_seconds", []float64{1, 2}).Observe(1.5)
	hookRan := false
	src.OnCollect(func() { hookRan = true; src.Gauge("derived").Set(7) })

	dst.Absorb(src)
	if !hookRan {
		t.Fatal("Absorb must run src's collect hooks first")
	}
	if v := dst.Counter("dispatch_total", L("result", "crash")).Value(); v != 5 {
		t.Fatalf("crash counter = %d, want 5", v)
	}
	if v := dst.Counter("dispatch_total", L("result", "anr")).Value(); v != 1 {
		t.Fatalf("anr counter = %d, want 1", v)
	}
	if v := dst.Gauge("live_processes").Value(); v != 4 {
		t.Fatalf("gauge = %v, want 4", v)
	}
	if v := dst.Gauge("derived").Value(); v != 7 {
		t.Fatalf("derived gauge = %v, want 7", v)
	}
	h := dst.Histogram("lat_seconds", []float64{1, 2})
	if h.Count() != 1 || h.Sum() != 1.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}

	// Absorbing a second shard is additive and commutative.
	src2 := NewRegistry()
	src2.Counter("dispatch_total", L("result", "crash")).Add(10)
	src2.Histogram("lat_seconds", []float64{1, 2}).Observe(0.5)
	dst.Absorb(src2)
	if v := dst.Counter("dispatch_total", L("result", "crash")).Value(); v != 15 {
		t.Fatalf("crash counter after second absorb = %d, want 15", v)
	}
	if h.Count() != 2 || h.Sum() != 2 {
		t.Fatalf("histogram after second absorb count=%d sum=%v", h.Count(), h.Sum())
	}

	// Nil receivers and sources no-op.
	var nilReg *Registry
	nilReg.Absorb(src)
	dst.Absorb(nil)
}
