package telemetry

import "math"

// Merge folds src's observations into h. Both histograms must share the
// same bucket bounds (the farm absorbs per-shard registries whose metrics
// are created from identical wiring, so mismatched bounds indicate a bug
// and the merge is dropped rather than producing a corrupt distribution).
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	if len(h.bounds) != len(src.bounds) {
		return
	}
	for i := range h.bounds {
		if h.bounds[i] != src.bounds[i] {
			return
		}
	}
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	if s := src.Sum(); s != 0 {
		for {
			old := h.sumBits.Load()
			nw := math.Float64bits(math.Float64frombits(old) + s)
			if h.sumBits.CompareAndSwap(old, nw) {
				break
			}
		}
	}
}

// Absorb folds every metric registered in src into r, creating metrics in
// r on first sight: counters add, gauges add, histograms merge bucket by
// bucket. src's collect hooks run first so derived gauges are current.
// Absorbing is commutative, so the farm can fold per-shard registries into
// the campaign-wide registry in completion order and still expose the same
// totals for any worker count. Summing is the right aggregation for every
// per-shard gauge the pipeline registers (component counts, dropped lines,
// boot counts); a gauge that must not be summed belongs on the farm
// registry directly, not on a shard. Absorbing a metric whose name is
// registered in r under a different kind panics, like any registry lookup.
func (r *Registry) Absorb(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.collect()
	for _, e := range src.entries() {
		switch e.kind {
		case kindCounter:
			if v := e.counter.Value(); v != 0 {
				r.Counter(e.name, e.labels...).Add(v)
			} else {
				r.Counter(e.name, e.labels...)
			}
		case kindGauge:
			if v := e.gauge.Value(); v != 0 {
				r.Gauge(e.name, e.labels...).Add(v)
			} else {
				r.Gauge(e.name, e.labels...)
			}
		case kindHistogram:
			r.Histogram(e.name, e.hist.Bounds(), e.labels...).Merge(e.hist)
		}
	}
}
