package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Route mounts an extra handler on the exposition endpoint; the caller
// owns the pattern namespace (e.g. the farm mounts its live shard table
// on "/farm").
type Route struct {
	Pattern string
	Handler http.Handler
}

// Handler returns the exposition endpoint for a registry:
//
//	/metrics        Prometheus text exposition
//	/vars           expvar-style JSON snapshot
//	/spans          finished spans as JSON (when a tracer is attached)
//	/healthz        liveness probe ("ok")
//	/debug/pprof/*  the standard Go profiling handlers
//
// tracer may be nil. Extra routes are mounted verbatim and listed by the
// root index.
func Handler(reg *Registry, tracer *Tracer, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	if tracer != nil {
		mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Active   int          `json:"active"`
				Dropped  uint64       `json:"dropped"`
				Finished []SpanRecord `json:"finished"`
			}{tracer.Active(), tracer.Dropped(), tracer.Finished()})
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	index := "qgj telemetry: /metrics /vars /spans /healthz"
	for _, rt := range extra {
		index += " " + rt.Pattern
		mux.Handle(rt.Pattern, rt.Handler)
	}
	index += " /debug/pprof/"
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, index)
	})
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr (e.g. ":9090" or ":0" for an ephemeral port) and serves
// the exposition handler in a background goroutine until Close.
func Serve(addr string, reg *Registry, tracer *Tracer, extra ...Route) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, tracer, extra...), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
