package telemetry

import (
	"encoding/json"
	"fmt"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

const (
	// EventIntent: the fuzzer generated an intent and is about to send it.
	EventIntent EventKind = iota + 1
	// EventDispatch: the OS finished delivering an intent; Detail carries
	// the DeliveryResult name.
	EventDispatch
	// EventDenial: a pre-delivery gate rejected the intent; Detail carries
	// the denial reason.
	EventDenial
	// EventReboot: the device rebooted; Detail carries the reboot reason.
	EventReboot
	// EventVerdict: an oracle observed a failure; Detail is "anr" for an
	// ANR and the root exception class for a crash.
	EventVerdict
	// EventBinder: a binder transaction failed against a dead process.
	EventBinder
	// EventFault: a fault-injection window opened or closed, or a probe
	// inside one observed degradation; Detail carries the fault phase
	// ("begin", "end", probe outcome, or the window's verdict).
	EventFault
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventIntent:
		return "intent"
	case EventDispatch:
		return "dispatch"
	case EventDenial:
		return "denial"
	case EventReboot:
		return "reboot"
	case EventVerdict:
		return "verdict"
	case EventBinder:
		return "binder"
	case EventFault:
		return "fault"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the kind as its name so journals and report artifacts
// stay readable and stable if the enum is ever reordered.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the kind name written by MarshalJSON.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for c := EventIntent; c <= EventFault; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", s)
}

// Event is one structured flight-recorder entry. All fields are plain
// values (no lazy references), so a snapshotted window stays valid after
// the device that produced it is gone.
type Event struct {
	// Seq is the recorder-local sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// Time is the device-clock stamp. Bulk events (intent, dispatch) carry
	// a sampled stamp that may lag by up to stampSampleEvery events; rare
	// events (denial, verdict, reboot, binder death) are stamped exactly.
	Time time.Time `json:"time"`
	Kind EventKind `json:"kind"`
	// Trace is the campaign trace ID active when the event was recorded
	// (e.g. "A/com.heartwatch.wear").
	Trace string `json:"trace,omitempty"`
	// Subject is what the event is about: a component for intents and
	// dispatches, a process for verdicts, a binder endpoint for deaths.
	Subject string `json:"subject,omitempty"`
	// Action is the intent action in flight, when one applies.
	Action string `json:"action,omitempty"`
	// Detail carries the kind-specific outcome (delivery result, denial
	// reason, verdict, reboot reason).
	Detail string `json:"detail,omitempty"`
}

// String renders the event for humans. Rendering is deliberately not done
// at record time — the hot path stores fields and formats nothing.
func (e *Event) String() string {
	return fmt.Sprintf("#%d %s %s subject=%q action=%q detail=%q",
		e.Seq, e.Time.Format(time.RFC3339), e.Kind, e.Subject, e.Action, e.Detail)
}

// DefaultRecorderCapacity bounds the event ring when capacity <= 0: large
// enough to show the run-up to a failure, small enough that attaching a
// window to every triage record stays cheap.
const DefaultRecorderCapacity = 64

// stampSampleEvery is how often a bulk Record call refreshes the cached
// clock stamp (power of two). Reading the virtual clock takes a mutex; at
// a few hundred ns per dispatch an exact stamp per event would blow the
// <5% recorder budget, and between injections the virtual clock only moves
// in fuzzer pacing steps anyway. The sampling counter is part of recorder
// state, so stamps are deterministic for a deterministic event stream.
const stampSampleEvery = 16

// Recorder is a fixed-capacity flight recorder: a ring of pooled event
// slots that always holds the most recent window of structured events.
// Record writes in place and allocates nothing; Window copies the ring out
// when a failure makes the history worth keeping. Like the device it
// instruments, a Recorder is single-threaded; a nil *Recorder no-ops.
type Recorder struct {
	events []Event
	mask   int // len(events)-1; capacity is always a power of two
	start  int // index of oldest retained event
	count  int
	seq    uint64
	trace  string
	now    func() time.Time
	stamp  time.Time
}

// NewRecorder returns a recorder retaining the last capacity events
// (DefaultRecorderCapacity when capacity <= 0; rounded up to a power of
// two so ring indexing is a mask, not a division). The slot pool is
// allocated up front so recording never grows it.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	pow := 1
	for pow < capacity {
		pow <<= 1
	}
	return &Recorder{events: make([]Event, pow), mask: pow - 1}
}

// SetClock attaches the time source used to stamp events (typically the
// device's virtual clock). Without one, events carry zero times.
func (r *Recorder) SetClock(now func() time.Time) {
	if r != nil {
		r.now = now
	}
}

// BeginTrace starts a new trace window: subsequent events carry the given
// trace ID and the retained window is reset, so a snapshot never mixes
// events from two campaigns. The sequence counter keeps running.
func (r *Recorder) BeginTrace(id string) {
	if r == nil {
		return
	}
	r.trace = id
	r.start, r.count = 0, 0
}

// Trace returns the active trace ID ("" for nil or before BeginTrace).
func (r *Recorder) Trace() string {
	if r == nil {
		return ""
	}
	return r.trace
}

// Record appends a bulk event (sampled clock stamp). The write lands in a
// pooled ring slot: no allocation, no formatting.
func (r *Recorder) Record(kind EventKind, subject, action, detail string) {
	if r == nil {
		return
	}
	if r.seq&(stampSampleEvery-1) == 0 && r.now != nil {
		r.stamp = r.now()
	}
	r.record(kind, subject, action, detail)
}

// RecordNow appends an event with an exact clock stamp. Failure-adjacent
// sites (denials, verdicts, reboots, binder deaths) use it so the tail of
// a snapshotted window is precisely timed.
func (r *Recorder) RecordNow(kind EventKind, subject, action, detail string) {
	if r == nil {
		return
	}
	if r.now != nil {
		r.stamp = r.now()
	}
	r.record(kind, subject, action, detail)
}

func (r *Recorder) record(kind EventKind, subject, action, detail string) {
	var slot *Event
	if r.count < len(r.events) {
		slot = &r.events[(r.start+r.count)&r.mask]
		r.count++
	} else {
		slot = &r.events[r.start]
		r.start = (r.start + 1) & r.mask
	}
	r.seq++
	slot.Seq = r.seq
	slot.Time = r.stamp
	slot.Kind = kind
	slot.Trace = r.trace
	slot.Subject = subject
	slot.Action = action
	slot.Detail = detail
}

// Window returns a copy of the retained events, oldest first. The copy is
// independent of the ring: safe to attach to a triage record while the
// recorder keeps running.
func (r *Recorder) Window() []Event {
	if r == nil || r.count == 0 {
		return nil
	}
	out := make([]Event, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.events[(r.start+i)&r.mask]
	}
	return out
}

// Recorded returns the total number of events ever recorded (including
// those evicted from the ring).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}
