package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("qgj_intents_injected_total", L("campaign", "A"), L("result", "crash")).Add(7)
	reg.Gauge("wearos_instability").Set(12.5)
	h := reg.Histogram("binder_transact_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE qgj_intents_injected_total counter",
		`qgj_intents_injected_total{campaign="A",result="crash"} 7`,
		"# TYPE wearos_instability gauge",
		"wearos_instability 12.5",
		"# TYPE binder_transact_seconds histogram",
		`binder_transact_seconds_bucket{le="0.001"} 1`,
		`binder_transact_seconds_bucket{le="0.01"} 1`,
		`binder_transact_seconds_bucket{le="+Inf"} 2`,
		"binder_transact_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusLabelEscaping pins the text-format escaping contract:
// label values containing spaces, quotes, backslashes, or newlines must
// round-trip through a standards-conforming parser. The manifestation
// labels ("No Effect", "Crash only") are the values that hit this in
// practice.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("analysis_components", L("manifestation", "No Effect")).Set(42)
	reg.Counter("odd_total", L("v", `back\slash "quoted"`+"\nnext")).Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`analysis_components{manifestation="No Effect"} 42`,
		`odd_total{v="back\\slash \"quoted\"\nnext"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every sample line must stay a single line: the raw newline in the
	// label value may not split it.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") || strings.Count(line, `"`)%2 != 0 {
			t.Fatalf("malformed sample line %q in:\n%s", line, out)
		}
	}
	// Round-trip per the exposition format's escape rules.
	i := strings.Index(out, `odd_total{v="`)
	if i < 0 {
		t.Fatalf("odd_total sample missing:\n%s", out)
	}
	rest := out[i+len(`odd_total{v="`):]
	j := strings.Index(rest, `"}`)
	if j < 0 {
		t.Fatalf("odd_total sample unterminated:\n%s", out)
	}
	unescaped := strings.NewReplacer(`\\`, "\\", `\"`, `"`, `\n`, "\n").Replace(rest[:j])
	if want := `back\slash "quoted"` + "\nnext"; unescaped != want {
		t.Fatalf("label value round-trip = %q, want %q", unescaped, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(3)
	reg.Gauge("b", L("x", "y")).Set(1.25)
	reg.Histogram("c_seconds", []float64{1, 2}).Observe(1.5)

	snap := reg.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 3 {
		t.Fatalf("counters = %v", back.Counters)
	}
	if back.Gauges[`b{x="y"}`] != 1.25 {
		t.Fatalf("gauges = %v", back.Gauges)
	}
	hs, ok := back.Histograms["c_seconds"]
	if !ok || hs.Count != 1 || hs.Sum != 1.5 {
		t.Fatalf("histograms = %v", back.Histograms)
	}
	if hs.P50 < 1 || hs.P50 > 2 {
		t.Fatalf("p50 = %v, want within the observed bucket", hs.P50)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total").Inc()
	tr := NewTracer(nil, 8)
	tr.Start("boot").End()

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path, wantType string) string {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if wantType != "" {
			if ct := resp.Header.Get("Content-Type"); ct != wantType {
				t.Fatalf("GET %s: Content-Type %q, want %q", path, ct, wantType)
			}
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics", "text/plain; version=0.0.4; charset=utf-8"); !strings.Contains(out, "served_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/vars", "application/json; charset=utf-8"); !strings.Contains(out, `"served_total": 1`) {
		t.Fatalf("/vars missing counter:\n%s", out)
	}
	if out := get("/spans", "application/json; charset=utf-8"); !strings.Contains(out, `"boot"`) {
		t.Fatalf("/spans missing span:\n%s", out)
	}
	if out := get("/healthz", "text/plain; charset=utf-8"); strings.TrimSpace(out) != "ok" {
		t.Fatalf("/healthz = %q, want ok", out)
	}
	if out := get("/", "text/plain; charset=utf-8"); !strings.Contains(out, "/healthz") {
		t.Fatalf("root index missing /healthz:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline", ""); len(out) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestHandlerExtraRoutes pins the Route extension point: a mounted route
// serves and is listed by the root index.
func TestHandlerExtraRoutes(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, nil, Route{
		Pattern: "/farm",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_, _ = w.Write([]byte(`{"shards":[]}`))
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + srv.Addr + "/farm")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"shards"`) {
		t.Fatalf("GET /farm: status %d body %q", resp.StatusCode, body)
	}
	resp, err = client.Get("http://" + srv.Addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "/farm") {
		t.Fatalf("root index missing /farm: %q", body)
	}
}
