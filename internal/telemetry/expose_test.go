package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("qgj_intents_injected_total", L("campaign", "A"), L("result", "crash")).Add(7)
	reg.Gauge("wearos_instability").Set(12.5)
	h := reg.Histogram("binder_transact_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE qgj_intents_injected_total counter",
		`qgj_intents_injected_total{campaign="A",result="crash"} 7`,
		"# TYPE wearos_instability gauge",
		"wearos_instability 12.5",
		"# TYPE binder_transact_seconds histogram",
		`binder_transact_seconds_bucket{le="0.001"} 1`,
		`binder_transact_seconds_bucket{le="0.01"} 1`,
		`binder_transact_seconds_bucket{le="+Inf"} 2`,
		"binder_transact_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(3)
	reg.Gauge("b", L("x", "y")).Set(1.25)
	reg.Histogram("c_seconds", []float64{1, 2}).Observe(1.5)

	snap := reg.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 3 {
		t.Fatalf("counters = %v", back.Counters)
	}
	if back.Gauges[`b{x="y"}`] != 1.25 {
		t.Fatalf("gauges = %v", back.Gauges)
	}
	hs, ok := back.Histograms["c_seconds"]
	if !ok || hs.Count != 1 || hs.Sum != 1.5 {
		t.Fatalf("histograms = %v", back.Histograms)
	}
	if hs.P50 < 1 || hs.P50 > 2 {
		t.Fatalf("p50 = %v, want within the observed bucket", hs.P50)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served_total").Inc()
	tr := NewTracer(nil, 8)
	tr.Start("boot").End()

	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "served_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/vars"); !strings.Contains(out, `"served_total": 1`) {
		t.Fatalf("/vars missing counter:\n%s", out)
	}
	if out := get("/spans"); !strings.Contains(out, `"boot"`) {
		t.Fatalf("/spans missing span:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
