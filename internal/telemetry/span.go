package telemetry

import (
	"sync"
	"time"
)

// SpanRecord is one finished span.
type SpanRecord struct {
	ID       uint64    `json:"id"`
	ParentID uint64    `json:"parentId,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
}

// Duration returns End - Start.
func (r SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// Tracer records lightweight spans: start/end pairs with parent linkage,
// kept in a bounded ring of finished spans (oldest evicted first). Safe
// for concurrent use; a nil *Tracer is a no-op and hands out nil spans.
type Tracer struct {
	mu       sync.Mutex
	now      func() time.Time
	nextID   uint64
	capacity int // max ring size; finished grows toward it on demand
	finished []SpanRecord
	start    int // ring: index of oldest finished record
	count    int
	active   int
	dropped  uint64
}

// DefaultSpanCapacity bounds the finished-span ring when capacity <= 0.
const DefaultSpanCapacity = 4096

// NewTracer returns a tracer stamping spans with now (time.Now when nil)
// and retaining up to capacity finished spans.
func NewTracer(now func() time.Time, capacity int) *Tracer {
	if now == nil {
		now = time.Now
	}
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	// The ring is grown on demand (see Span.End): a device that records only
	// a handful of sampled spans should not pay for a full-capacity ring.
	return &Tracer{now: now, capacity: capacity}
}

// Span is one in-flight operation. End it exactly once.
type Span struct {
	t        *Tracer
	id       uint64
	parentID uint64
	name     string
	startAt  time.Time
	ended    bool
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	return t.open(name, 0)
}

func (t *Tracer) open(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.active++
	at := t.now()
	t.mu.Unlock()
	return &Span{t: t, id: id, parentID: parent, name: name, startAt: at}
}

// Child opens a span parented to s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.open(name, s.id)
}

// ID returns the span id (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End finishes the span and records it in the tracer's ring. Ending a nil
// or already-ended span is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.t
	t.mu.Lock()
	rec := SpanRecord{
		ID: s.id, ParentID: s.parentID, Name: s.name,
		Start: s.startAt, End: t.now(),
	}
	if t.count == len(t.finished) && t.count < t.capacity {
		// Grow the ring (doubling, bounded by capacity), unrolling it so the
		// oldest record lands back at index 0.
		grown := 2 * len(t.finished)
		if grown == 0 {
			grown = 64
		}
		if grown > t.capacity {
			grown = t.capacity
		}
		next := make([]SpanRecord, grown)
		for i := 0; i < t.count; i++ {
			next[i] = t.finished[(t.start+i)%len(t.finished)]
		}
		t.finished = next
		t.start = 0
	}
	capN := len(t.finished)
	if t.count == capN {
		t.finished[t.start] = rec
		t.start = (t.start + 1) % capN
		t.dropped++
	} else {
		t.finished[(t.start+t.count)%capN] = rec
		t.count++
	}
	t.active--
	t.mu.Unlock()
}

// Finished returns a copy of the retained finished spans, oldest first
// (in end order).
func (t *Tracer) Finished() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.finished[(t.start+i)%len(t.finished)]
	}
	return out
}

// Active returns the number of started-but-unfinished spans — the "where
// is the run stuck" signal.
func (t *Tracer) Active() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// Dropped returns how many finished spans were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
