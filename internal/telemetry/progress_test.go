package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestProgressFirstTickPrints(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, time.Hour)
	if !p.Tickf("tick %d", 1) {
		t.Fatal("first Tickf must print even before the interval elapses")
	}
	if p.Tickf("tick %d", 2) {
		t.Fatal("second Tickf inside the interval must be suppressed")
	}
	if got := sb.String(); got != "tick 1\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestProgressFinalAlwaysPrints(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, time.Hour)
	p.Tickf("tick")
	p.Final("done %d", 9)
	if !strings.HasSuffix(sb.String(), "done 9\n") {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	if p.Tickf("x") {
		t.Fatal("nil Progress must not print")
	}
	p.Final("x")
	if p.Elapsed() != 0 {
		t.Fatal("nil Progress Elapsed must be zero")
	}
}

func TestWatchPrintsFinalLineOnStop(t *testing.T) {
	var sb strings.Builder
	stop := Watch(&sb, time.Hour, func() string { return "beat" })
	stop()
	stop() // idempotent
	if got := sb.String(); got != "beat\n" {
		t.Fatalf("output = %q", got)
	}
}
