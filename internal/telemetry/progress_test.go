package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestProgressFirstTickPrints(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, time.Hour)
	if !p.Tickf("tick %d", 1) {
		t.Fatal("first Tickf must print even before the interval elapses")
	}
	if p.Tickf("tick %d", 2) {
		t.Fatal("second Tickf inside the interval must be suppressed")
	}
	if got := sb.String(); got != "tick 1\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestProgressFinalAlwaysPrints(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, time.Hour)
	p.Tickf("tick")
	p.Final("done %d", 9)
	if !strings.HasSuffix(sb.String(), "done 9\n") {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	if p.Tickf("x") {
		t.Fatal("nil Progress must not print")
	}
	p.Final("x")
	if p.Flush() {
		t.Fatal("nil Progress Flush must not print")
	}
	if p.Elapsed() != 0 {
		t.Fatal("nil Progress Elapsed must be zero")
	}
}

func TestProgressFlushEmitsSwallowedFinalTick(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, time.Hour)
	p.Tickf("tick %d", 1) // prints
	p.Tickf("tick %d", 2) // suppressed
	p.Tickf("tick %d", 3) // suppressed; becomes the pending line
	if !p.Flush() {
		t.Fatal("Flush must print the pending suppressed line")
	}
	if got := sb.String(); got != "tick 1\ntick 3\n" {
		t.Fatalf("output = %q, want the first tick plus the flushed last tick", got)
	}
	if p.Flush() {
		t.Fatal("second Flush must be a no-op")
	}
}

func TestProgressFlushNothingPending(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, time.Hour)
	p.Tickf("tick") // prints; nothing suppressed after it
	if p.Flush() {
		t.Fatal("Flush with nothing pending must not print")
	}
	if got := sb.String(); got != "tick\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestProgressFinalDropsPending(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, time.Hour)
	p.Tickf("tick 1") // prints
	p.Tickf("tick 2") // suppressed
	p.Final("done")
	if p.Flush() {
		t.Fatal("Final must supersede the pending heartbeat")
	}
	if got := sb.String(); got != "tick 1\ndone\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestWatchPrintsFinalLineOnStop(t *testing.T) {
	var sb strings.Builder
	stop := Watch(&sb, time.Hour, func() string { return "beat" })
	stop()
	stop() // idempotent
	if got := sb.String(); got != "beat\n" {
		t.Fatalf("output = %q", got)
	}
}
