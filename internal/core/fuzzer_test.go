package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/manifest"
	"repro/internal/wearos"
)

func newFuzzTestDevice(t *testing.T) (*wearos.OS, *manifest.Package) {
	t.Helper()
	dev := wearos.New(wearos.DefaultWatchConfig())
	pkg := &manifest.Package{
		Name:     "com.fuzz.target",
		Category: manifest.NotHealthFitness,
		Origin:   manifest.ThirdParty,
		Components: []*manifest.Component{
			{Name: intent.ComponentName{Package: "com.fuzz.target", Class: "com.fuzz.target.ui.Main"},
				Type: manifest.Activity, Exported: true, MainLauncher: true},
			{Name: intent.ComponentName{Package: "com.fuzz.target", Class: "com.fuzz.target.svc.Sync"},
				Type: manifest.Service, Exported: true},
		},
	}
	if err := dev.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	return dev, pkg
}

func TestFuzzComponentCountsAndPacing(t *testing.T) {
	dev, pkg := newFuzzTestDevice(t)
	inj := &Injector{Dev: dev, Cfg: GeneratorConfig{ActionStride: 10, SchemeStride: 4}}
	start := dev.Clock().Now()
	run := inj.FuzzComponent(CampaignB, pkg.Components[0])

	want := CampaignB.CountPerComponent(inj.Cfg)
	if run.Sent != want {
		t.Fatalf("Sent = %d, want %d", run.Sent, want)
	}
	// Pacing: 100 ms per intent plus 250 ms per full batch of 100.
	wantDur := time.Duration(want)*InterIntentDelay + time.Duration(want/BatchSize)*BatchPause
	if got := dev.Clock().Now().Sub(start); got != wantDur {
		t.Fatalf("virtual time advanced %v, want %v", got, wantDur)
	}
	total := 0
	for _, n := range run.Results {
		total += n
	}
	if total != run.Sent {
		t.Fatalf("results sum %d != sent %d", total, run.Sent)
	}
}

func TestFuzzAppCoversBothComponentTypes(t *testing.T) {
	dev, pkg := newFuzzTestDevice(t)
	inj := &Injector{Dev: dev, Cfg: GeneratorConfig{ActionStride: 20, SchemeStride: 6}}
	run := inj.FuzzApp(CampaignA, pkg)
	if len(run.Components) != 2 {
		t.Fatalf("fuzzed %d components, want 2", len(run.Components))
	}
	types := map[manifest.ComponentType]bool{}
	for _, cr := range run.Components {
		types[cr.Type] = true
	}
	if !types[manifest.Activity] || !types[manifest.Service] {
		t.Fatal("both Activities and Services must be fuzzed")
	}
}

func TestSecurityExceptionsObserved(t *testing.T) {
	// Campaign A sweeps every action, including protected ones, so the
	// security-blocked count must be positive and the exception visible in
	// logcat (the 81.3% population in the paper).
	dev, pkg := newFuzzTestDevice(t)
	inj := &Injector{Dev: dev, Cfg: GeneratorConfig{SchemeStride: 12}}
	run := inj.FuzzComponent(CampaignA, pkg.Components[0])
	if run.Results[wearos.BlockedSecurity] == 0 {
		t.Fatal("no security-blocked deliveries despite protected actions in sweep")
	}
	if !strings.Contains(dev.Logcat().Dump(), "SecurityException") {
		t.Fatal("SecurityException missing from logcat")
	}
}

func TestCrashObservedThroughFuzzer(t *testing.T) {
	dev, pkg := newFuzzTestDevice(t)
	target := pkg.Components[0]
	dev.RegisterHandler(target.Name, func(env *wearos.Env, in *intent.Intent) wearos.Outcome {
		if in.Action == "" && !in.Data.IsZero() {
			return wearos.Outcome{Thrown: javalang.New(javalang.ClassNullPointer, "no action")}
		}
		return wearos.Outcome{}
	}, wearos.ComponentTraits{})
	inj := &Injector{Dev: dev, Cfg: GeneratorConfig{}}
	run := inj.FuzzComponent(CampaignB, target)
	// FIC B sends 12 data-only intents; each crashes the restarted process.
	if got := run.Results[wearos.DeliveredCrash]; got != len(intent.Schemes) {
		t.Fatalf("crashes = %d, want %d", got, len(intent.Schemes))
	}
}

func TestFuzzAppAllCampaignsOrder(t *testing.T) {
	dev, pkg := newFuzzTestDevice(t)
	inj := &Injector{Dev: dev, Cfg: GeneratorConfig{ActionStride: 50, SchemeStride: 6, RandomVariants: 1, ExtrasVariants: 1}}
	runs := inj.FuzzAppAllCampaigns(pkg)
	if len(runs) != 4 {
		t.Fatalf("ran %d campaigns", len(runs))
	}
	for i, want := range AllCampaigns {
		if runs[i].Campaign != want {
			t.Fatalf("campaign %d = %v, want %v", i, runs[i].Campaign, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	dev, pkg := newFuzzTestDevice(t)
	inj := &Injector{Dev: dev, Cfg: GeneratorConfig{ActionStride: 25, SchemeStride: 4}}
	run := inj.FuzzApp(CampaignB, pkg)
	s := Summarize(run, dev.BootCount())
	if s.Package != pkg.Name || s.Campaign != "B" {
		t.Fatalf("summary header = %+v", s)
	}
	if s.Sent != run.Sent {
		t.Fatalf("summary sent = %d, want %d", s.Sent, run.Sent)
	}
	if s.NoEffect+s.Handled+s.Rejected+s.Crashes+s.ANRs+s.Security+s.NotFound+s.Reboots != s.Sent {
		t.Fatalf("summary buckets do not add up: %+v", s)
	}
	if !strings.Contains(s.String(), "campaign B") {
		t.Errorf("summary string = %q", s.String())
	}
}

func TestProgressCallback(t *testing.T) {
	dev, pkg := newFuzzTestDevice(t)
	var calls int
	inj := &Injector{
		Dev: dev, Cfg: GeneratorConfig{ActionStride: 50, SchemeStride: 12},
		Progress: func(sent int) { calls++ },
	}
	run := inj.FuzzComponent(CampaignB, pkg.Components[0])
	if calls != run.Sent {
		t.Fatalf("progress calls = %d, want %d", calls, run.Sent)
	}
}
