package core

import (
	"fmt"
	"time"

	"repro/internal/intent"
	"repro/internal/manifest"
	"repro/internal/telemetry"
	"repro/internal/wearos"
)

// QGJUID is the (unprivileged) UID the QGJ Wear app runs under; the tool
// deliberately needs no root or system privileges (Section III-A).
const QGJUID = wearos.UIDAppBase + 100

// Pacing constants from Section III-D: "we insert two delays: (a) 100 ms
// between successive intents similar to JJB; and (b) 250 ms after every 100
// intents. It was empirically determined ... that these delays were
// required to ensure the device is not overloaded."
const (
	InterIntentDelay = 100 * time.Millisecond
	BatchPause       = 250 * time.Millisecond
	BatchSize        = 100
)

// injSampleEvery is the 1-in-N sampling rate for the qgj_injection_seconds
// latency histogram (power of two; the first injection of every component
// run is always sampled). Counters are never sampled.
const injSampleEvery = 16

// Injector is the Fuzzer library: it generates campaign intents and injects
// them into components on the target device, pacing the device's virtual
// clock the way the real tool paces wall-clock time.
type Injector struct {
	Dev *wearos.OS
	Cfg GeneratorConfig
	// SenderUID defaults to QGJUID when zero.
	SenderUID int
	// Progress, when non-nil, receives a callback after every injection
	// (UI feedback in the QGJ apps; cheap counters in the experiments).
	Progress func(sent int)
	// Observe, when non-nil, receives every injected intent together with
	// its delivery result, after the delivery settled. The farm's triage
	// pipeline uses it to pair crashing intents with the FATAL EXCEPTION
	// block they produced. The intent must be treated as read-only; clone it
	// to retain it beyond the callback.
	Observe func(in *intent.Intent, res wearos.DeliveryResult)

	// mets caches resolved metric handles per campaign. A registry lookup
	// sorts and renders labels — cheap per scrape, far too hot per component
	// run at farm scale (hundreds of runs per app sweep).
	mets map[Campaign]*campaignMetrics
}

// campaignMetrics is the per-campaign set of resolved metric handles.
type campaignMetrics struct {
	generated   *telemetry.Counter
	injSecs     *telemetry.Histogram
	progress    *telemetry.Gauge
	compsFuzzed *telemetry.Counter
	// byResult is indexed by DeliveryResult (values start at 1); entries
	// are resolved lazily as result kinds first appear.
	byResult [wearos.DeviceRebooted + 1]*telemetry.Counter
}

// metrics resolves (once) the campaign's metric handles; nil when the
// device runs without telemetry.
func (inj *Injector) metrics(c Campaign) *campaignMetrics {
	tel := inj.Dev.Telemetry()
	if tel == nil {
		return nil
	}
	if m := inj.mets[c]; m != nil {
		return m
	}
	campaign := telemetry.L("campaign", c.Letter())
	m := &campaignMetrics{
		generated:   tel.Counter("qgj_intents_generated_total", campaign),
		injSecs:     tel.Histogram("qgj_injection_seconds", telemetry.DefLatencyBuckets, campaign),
		progress:    tel.Gauge("qgj_component_progress"),
		compsFuzzed: tel.Counter("qgj_components_fuzzed_total"),
	}
	if inj.mets == nil {
		inj.mets = make(map[Campaign]*campaignMetrics, len(AllCampaigns))
	}
	inj.mets[c] = m
	return m
}

// ComponentRun summarizes the injections against one component.
type ComponentRun struct {
	Component intent.ComponentName
	Type      manifest.ComponentType
	Campaign  Campaign
	Sent      int
	Results   map[wearos.DeliveryResult]int
}

// Rebooted reports whether any injection in this run rebooted the device.
func (cr ComponentRun) Rebooted() bool { return cr.Results[wearos.DeviceRebooted] > 0 }

// AppRun summarizes one campaign against one application.
type AppRun struct {
	Package    string
	Campaign   Campaign
	Sent       int
	Components []ComponentRun
}

// Results aggregates delivery results over all components.
func (ar AppRun) Results() map[wearos.DeliveryResult]int {
	out := make(map[wearos.DeliveryResult]int, 8)
	for _, cr := range ar.Components {
		for k, v := range cr.Results {
			out[k] += v
		}
	}
	return out
}

func (inj *Injector) uid() int {
	if inj.SenderUID != 0 {
		return inj.SenderUID
	}
	return QGJUID
}

// FuzzComponent runs one campaign against one component.
func (inj *Injector) FuzzComponent(c Campaign, comp *manifest.Component) ComponentRun {
	run := ComponentRun{
		Component: comp.Name,
		Type:      comp.Type,
		Campaign:  c,
		Results:   make(map[wearos.DeliveryResult]int, 8),
	}
	clock := inj.Dev.Clock()

	// Metric handles come from the per-campaign cache. The per-intent
	// counters (generated, injected-by-result) are not touched per intent at
	// all: run.Sent and run.Results already tally them exactly, and the
	// registry atomics are settled once at the end of the run — the
	// granularity at which the exposition endpoint's exactness is specified.
	// Only the sampled latency histogram and the progress gauge remain on
	// the per-intent path.
	m := inj.metrics(c)
	var (
		injSecs  *telemetry.Histogram
		progress *telemetry.Gauge
	)
	if m != nil {
		injSecs = m.injSecs
		progress = m.progress
	}
	sp := inj.Dev.Tracer().Start("fuzz:" + c.Letter() + ":" + comp.Flat())

	// The flight recorder sees every generated intent before it is sent;
	// comp.Flat() is cached on the component, so the per-intent record is a
	// slot write of existing strings.
	rec := inj.Dev.FlightRecorder()
	flat := ""
	if rec != nil {
		flat = comp.Flat()
	}

	c.Generate(comp.Name, inj.Cfg, inj.uid(), func(in *intent.Intent) {
		rec.Record(telemetry.EventIntent, flat, in.Action, "")
		// Latency is sampled 1-in-injSampleEvery: two wall-clock reads per
		// intent are the single most expensive instruction in this callback,
		// and the histogram only needs a representative population, not a
		// census. Counters stay exact.
		timed := injSecs != nil && run.Sent&(injSampleEvery-1) == 0
		var start time.Time
		if timed {
			start = time.Now()
		}
		var res wearos.DeliveryResult
		if comp.Type == manifest.Service {
			res = inj.Dev.StartService(in)
		} else {
			res = inj.Dev.StartActivity(in)
		}
		if timed {
			injSecs.Observe(time.Since(start).Seconds())
		}
		run.Results[res]++
		run.Sent++
		if inj.Observe != nil {
			inj.Observe(in, res)
		}
		clock.Advance(InterIntentDelay)
		if run.Sent%BatchSize == 0 {
			progress.Set(float64(run.Sent))
			clock.Advance(BatchPause)
		}
		if inj.Progress != nil {
			inj.Progress(run.Sent)
		}
	})
	sp.End()
	progress.Set(float64(run.Sent))
	if m != nil {
		m.generated.Add(uint64(run.Sent))
		for res, n := range run.Results {
			rc := m.byResult[res]
			if rc == nil {
				rc = inj.Dev.Telemetry().Counter("qgj_intents_injected_total",
					telemetry.L("campaign", c.Letter()), telemetry.L("result", res.String()))
				m.byResult[res] = rc
			}
			rc.Add(uint64(n))
		}
		m.compsFuzzed.Inc()
	}
	// Batched device counters (dispatch results, logcat appends) become
	// exact at every component-run boundary.
	inj.Dev.FlushTelemetry()
	return run
}

// FuzzApp runs one campaign against every Activity and Service of the
// package, in manifest order — the granularity at which the paper's
// workflow operates ("we choose a particular wearable application ... and
// begin the experiments").
func (inj *Injector) FuzzApp(c Campaign, pkg *manifest.Package) AppRun {
	run := AppRun{Package: pkg.Name, Campaign: c}
	// One trace per (campaign, app): the flight recorder's window and every
	// event in it carry this ID, which is also the farm's shard key — the
	// thread that links a triage bucket back to the campaign that hit it.
	if rec := inj.Dev.FlightRecorder(); rec != nil {
		rec.BeginTrace(c.Letter() + "/" + pkg.Name)
	}
	for _, comp := range pkg.Components {
		if comp.Type != manifest.Activity && comp.Type != manifest.Service {
			continue
		}
		cr := inj.FuzzComponent(c, comp)
		run.Sent += cr.Sent
		run.Components = append(run.Components, cr)
	}
	inj.Dev.Telemetry().Counter("qgj_apps_fuzzed_total").Inc()
	return run
}

// FuzzAppAllCampaigns executes all four campaigns back to back against one
// app ("All 4 campaigns are executed one after another", Section III-D).
func (inj *Injector) FuzzAppAllCampaigns(pkg *manifest.Package) []AppRun {
	out := make([]AppRun, 0, len(AllCampaigns))
	for _, c := range AllCampaigns {
		out = append(out, inj.FuzzApp(c, pkg))
	}
	return out
}

// Summary is the compact result view the QGJ Wear app sends back to the
// phone over the MessageAPI.
type Summary struct {
	Package   string `json:"package"`
	Campaign  string `json:"campaign"`
	Sent      int    `json:"sent"`
	NoEffect  int    `json:"noEffect"`
	Handled   int    `json:"handled"`
	Rejected  int    `json:"rejected"`
	Crashes   int    `json:"crashes"`
	ANRs      int    `json:"anrs"`
	Security  int    `json:"security"`
	NotFound  int    `json:"notFound"`
	Reboots   int    `json:"reboots"`
	BootCount int    `json:"bootCount"`
}

// Summarize converts an AppRun into the wire summary.
func Summarize(ar AppRun, bootCount int) Summary {
	res := ar.Results()
	return Summary{
		Package:   ar.Package,
		Campaign:  ar.Campaign.Letter(),
		Sent:      ar.Sent,
		NoEffect:  res[wearos.DeliveredNoEffect],
		Handled:   res[wearos.DeliveredHandledException],
		Rejected:  res[wearos.DeliveredRejected],
		Crashes:   res[wearos.DeliveredCrash],
		ANRs:      res[wearos.DeliveredANR],
		Security:  res[wearos.BlockedSecurity],
		NotFound:  res[wearos.BlockedNotFound],
		Reboots:   res[wearos.DeviceRebooted],
		BootCount: bootCount,
	}
}

// String renders the summary for the QGJ Mobile UI.
func (s Summary) String() string {
	return fmt.Sprintf(
		"%s campaign %s: sent=%d noEffect=%d handled=%d rejected=%d crash=%d anr=%d security=%d notFound=%d reboot=%d",
		s.Package, s.Campaign, s.Sent, s.NoEffect, s.Handled, s.Rejected,
		s.Crashes, s.ANRs, s.Security, s.NotFound, s.Reboots)
}
