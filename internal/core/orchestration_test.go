package core

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/device"
)

// pairWithFleet boots a phone and a watch, installs a small wear fleet on
// the watch, installs QGJ on both, and returns the phone-side handle.
func pairWithFleet(t *testing.T) (*MobileApp, *device.Device) {
	t.Helper()
	phone := device.NewPhone("nexus4")
	watch := device.NewWatch("moto360")
	device.Pair(phone, watch)

	fleet := apps.BuildWearFleet(1)
	if err := fleet.InstallInto(watch.OS); err != nil {
		t.Fatal(err)
	}
	InstallWearApp(watch)
	return InstallMobileApp(phone), watch
}

func TestListWearComponents(t *testing.T) {
	mobile, watch := pairWithFleet(t)
	comps, err := mobile.ListWearComponents()
	if err != nil {
		t.Fatal(err)
	}
	want := len(watch.OS.Registry().AllComponents())
	if len(comps) != want {
		t.Fatalf("listed %d components, watch has %d", len(comps), want)
	}
	// The list is sorted and carries both kinds.
	sawActivity, sawService := false, false
	for i := 1; i < len(comps); i++ {
		if comps[i-1].Package > comps[i].Package {
			t.Fatal("component list not sorted")
		}
	}
	for _, c := range comps {
		switch c.Type {
		case "activity":
			sawActivity = true
		case "service":
			sawService = true
		}
	}
	if !sawActivity || !sawService {
		t.Fatal("component list missing a kind")
	}
}

func TestStartFuzzOverMessageAPI(t *testing.T) {
	mobile, watch := pairWithFleet(t)
	gen := GeneratorConfig{Seed: 1, ActionStride: 20, SchemeStride: 4}
	sum, err := mobile.StartFuzz("com.strava.wear", CampaignB, gen)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Package != "com.strava.wear" || sum.Campaign != "B" {
		t.Fatalf("summary header = %+v", sum)
	}
	if sum.Sent == 0 {
		t.Fatal("no intents sent")
	}
	// The watch's logcat carries the evidence of the run.
	if !strings.Contains(watch.OS.Logcat().Dump(), "com.strava.wear") {
		t.Fatal("watch log has no trace of the fuzzed app")
	}
}

func TestStartFuzzUnknownPackage(t *testing.T) {
	mobile, _ := pairWithFleet(t)
	_, err := mobile.StartFuzz("com.not.installed", CampaignA, GeneratorConfig{})
	if err == nil {
		t.Fatal("fuzzing a missing package succeeded")
	}
	if !strings.Contains(err.Error(), "not installed") {
		t.Fatalf("err = %v", err)
	}
}

func TestStartFuzzUnpairedPhone(t *testing.T) {
	phone := device.NewPhone("lonely")
	mobile := InstallMobileApp(phone)
	if _, err := mobile.ListWearComponents(); err == nil {
		t.Fatal("unpaired list succeeded")
	}
	if _, err := mobile.StartFuzz("x", CampaignA, GeneratorConfig{}); err == nil {
		t.Fatal("unpaired fuzz succeeded")
	}
}

func TestFullWorkflowAllCampaignsOneApp(t *testing.T) {
	// The paper's workflow: pick an app from the phone, run all four
	// campaigns one after another, read the summaries.
	mobile, watch := pairWithFleet(t)
	gen := GeneratorConfig{Seed: 3, ActionStride: 26, SchemeStride: 6, RandomVariants: 1, ExtrasVariants: 1}
	var total int
	for _, c := range AllCampaigns {
		sum, err := mobile.StartFuzz("com.spotify.wear", c, gen)
		if err != nil {
			t.Fatalf("campaign %s: %v", c.Letter(), err)
		}
		total += sum.Sent
		if sum.BootCount < 1 {
			t.Fatalf("summary bootCount = %d", sum.BootCount)
		}
	}
	if total == 0 {
		t.Fatal("nothing sent across campaigns")
	}
	if watch.OS.BootCount() < 1 {
		t.Fatal("watch lost its boot count")
	}
}
