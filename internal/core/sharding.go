package core

// Sharding configures parallel campaign execution. The campaign engines
// themselves stay single-threaded (one simulated device is not safe for
// concurrent use); sharding instead partitions a study into independent
// (campaign, package) work units that internal/farm executes on a pool of
// independently-booted devices. The zero value means "serial, no
// checkpointing" and preserves the historical behaviour.
type Sharding struct {
	// Workers is the number of concurrent shard executors. 0 means unset
	// (serial legacy path unless a Checkpoint is given); an explicit 1 runs
	// the farm's serial baseline — same shard plan and merge, one device at
	// a time.
	Workers int
	// Checkpoint, when non-empty, is the journal file progress is written to
	// after every completed shard — the moral equivalent of the paper's
	// scripted 1000-intent chunks that survive device reboots.
	Checkpoint string
	// Resume loads the Checkpoint journal and skips shards it already
	// records, so a killed run continues exactly where it stopped.
	Resume bool
	// DisableSnapshot forces every shard onto the fresh-boot path instead of
	// cloning a booted template device. The merged result is byte-identical
	// either way; the switch exists for benchmarking the speedup and for
	// bisecting suspected snapshot bugs. Like Workers, it is an execution
	// strategy, not part of the work's identity: it is excluded from the
	// checkpoint fingerprint, so journals written in either mode resume
	// cleanly in the other.
	DisableSnapshot bool
	// DisablePersist turns off the persistent executor: every shard gets its
	// own clone of the template device instead of each worker resetting one
	// hot device in place between the shards it leases. Meaningless when
	// DisableSnapshot is set (the fresh-boot path never reuses anything).
	// Like DisableSnapshot, it is an execution strategy, not part of the
	// work's identity: the merged result is byte-identical either way
	// (reset validity is hash-checked, with transparent fallback to a fresh
	// clone), and it is excluded from the checkpoint fingerprint, so
	// journals written in either mode resume cleanly in the other.
	DisablePersist bool
}

// Enabled reports whether the study should be routed through the farm
// (parallel workers or a checkpoint journal were requested).
func (s Sharding) Enabled() bool {
	return s.Workers > 0 || s.Checkpoint != "" || s.Resume
}

// NormalizedWorkers returns the effective worker count (minimum 1).
func (s Sharding) NormalizedWorkers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}
