package core

import (
	"testing"

	"repro/internal/intent"
)

var target = intent.ComponentName{Package: "com.x", Class: "com.x.ui.Main"}

func collect(c Campaign, cfg GeneratorConfig) []*intent.Intent {
	var out []*intent.Intent
	// Generate reuses one pooled intent across the stream; retaining it past
	// the callback requires a Clone.
	c.Generate(target, cfg, QGJUID, func(in *intent.Intent) { out = append(out, in.Clone()) })
	return out
}

func TestCountPerComponentMatchesTableI(t *testing.T) {
	cfg := GeneratorConfig{}
	nA, nS := len(intent.Actions), len(intent.Schemes)
	tests := []struct {
		c    Campaign
		want int
	}{
		{CampaignA, nA * nS},
		{CampaignB, nA + nS},
		{CampaignC, (nA + nS) * 3},
		{CampaignD, nA * 3},
	}
	for _, tt := range tests {
		if got := tt.c.CountPerComponent(cfg); got != tt.want {
			t.Errorf("%s count = %d, want %d", tt.c.Name(), got, tt.want)
		}
		// Prediction must match actual generation.
		if got := len(collect(tt.c, cfg)); got != tt.want {
			t.Errorf("%s generated %d, predicted %d", tt.c.Name(), got, tt.want)
		}
	}
}

func TestCampaignAShape(t *testing.T) {
	ins := collect(CampaignA, GeneratorConfig{ActionStride: 10, SchemeStride: 3})
	for _, in := range ins {
		if in.Action == "" || in.Data.IsZero() {
			t.Fatalf("FIC A intent missing action or data: %v", in)
		}
		if !intent.KnownAction(in.Action) {
			t.Fatalf("FIC A action not from catalog: %q", in.Action)
		}
		if !intent.KnownScheme(in.Data.Scheme) {
			t.Fatalf("FIC A scheme not from catalog: %q", in.Data.Scheme)
		}
		if in.Component != target {
			t.Fatal("FIC A intent lost its explicit component")
		}
		if in.Extras.Len() != 0 {
			t.Fatal("FIC A intent has extras")
		}
	}
	// The cartesian product must include semantically invalid combinations.
	mismatches := 0
	for _, in := range ins {
		if !intent.ActionAcceptsScheme(in.Action, in.Data.Scheme) {
			mismatches++
		}
	}
	if mismatches == 0 {
		t.Fatal("FIC A produced no invalid combinations")
	}
}

func TestCampaignBShape(t *testing.T) {
	ins := collect(CampaignB, GeneratorConfig{})
	actionOnly, dataOnly := 0, 0
	for _, in := range ins {
		hasAction, hasData := in.Action != "", !in.Data.IsZero()
		switch {
		case hasAction && !hasData:
			actionOnly++
		case !hasAction && hasData:
			dataOnly++
		default:
			t.Fatalf("FIC B intent has both or neither: %v", in)
		}
		if in.Extras.Len() != 0 || in.Type != "" || len(in.Categories) != 0 {
			t.Fatalf("FIC B intent has non-blank optional fields: %v", in)
		}
	}
	if actionOnly != len(intent.Actions) || dataOnly != len(intent.Schemes) {
		t.Fatalf("FIC B split = %d/%d, want %d/%d",
			actionOnly, dataOnly, len(intent.Actions), len(intent.Schemes))
	}
}

func TestCampaignCShape(t *testing.T) {
	ins := collect(CampaignC, GeneratorConfig{ActionStride: 5, RandomVariants: 2})
	randData, randAction := 0, 0
	for _, in := range ins {
		validAction := intent.KnownAction(in.Action)
		validData := !in.Data.IsZero() && intent.KnownScheme(in.Data.Scheme)
		switch {
		case validAction && !validData:
			randData++
		case !validAction && validData:
			randAction++
		default:
			t.Fatalf("FIC C intent not exactly half-random: act=%q dat=%q", in.Action, in.Data.String())
		}
	}
	if randData == 0 || randAction == 0 {
		t.Fatalf("FIC C missing a side: randData=%d randAction=%d", randData, randAction)
	}
}

func TestCampaignDShape(t *testing.T) {
	ins := collect(CampaignD, GeneratorConfig{ActionStride: 4})
	sawNull := false
	for _, in := range ins {
		if !intent.KnownAction(in.Action) {
			t.Fatalf("FIC D action invalid: %q", in.Action)
		}
		n := in.Extras.Len()
		if n < 1 || n > 5 {
			t.Fatalf("FIC D intent has %d extras, want 1-5", n)
		}
		// The {Action, Data} pair must be valid: either a compatible scheme
		// or no data for data-less actions.
		if !in.Data.IsZero() && !intent.ActionAcceptsScheme(in.Action, in.Data.Scheme) {
			t.Fatalf("FIC D pair invalid: %q + %q", in.Action, in.Data.String())
		}
		if in.Data.IsZero() && intent.ActionExpectsData(in.Action) {
			t.Fatalf("FIC D dropped data for %q", in.Action)
		}
		if in.Extras.HasNull() {
			sawNull = true
		}
	}
	if !sawNull {
		t.Fatal("FIC D never produced a null extra")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Seed: 99, ActionStride: 7}
	a := collect(CampaignC, cfg)
	b := collect(CampaignC, cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("intent %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
	// Different seeds change the random parts.
	c := collect(CampaignC, GeneratorConfig{Seed: 100, ActionStride: 7})
	same := true
	for i := range a {
		if a[i].String() != c[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical FIC C streams")
	}
}

func TestFullScaleTotalsNearPaper(t *testing.T) {
	// Table I: A ~1M, B ~100K, C ~300K, D ~250K over ~912 components.
	const comps = 912
	cfg := GeneratorConfig{}
	totals := map[Campaign]int{}
	for _, c := range AllCampaigns {
		totals[c] = c.CountPerComponent(cfg) * comps
	}
	within := func(got, want int, tol float64) bool {
		diff := float64(got - want)
		if diff < 0 {
			diff = -diff
		}
		return diff <= tol*float64(want)
	}
	if !within(totals[CampaignA], 1_000_000, 0.25) {
		t.Errorf("campaign A total = %d, want ~1M", totals[CampaignA])
	}
	if !within(totals[CampaignB], 100_000, 0.25) {
		t.Errorf("campaign B total = %d, want ~100K", totals[CampaignB])
	}
	if !within(totals[CampaignC], 300_000, 0.25) {
		t.Errorf("campaign C total = %d, want ~300K", totals[CampaignC])
	}
	if !within(totals[CampaignD], 250_000, 0.30) {
		t.Errorf("campaign D total = %d, want ~250K", totals[CampaignD])
	}
	grand := totals[CampaignA] + totals[CampaignB] + totals[CampaignC] + totals[CampaignD]
	if grand < 1_300_000 || grand > 2_000_000 {
		t.Errorf("grand total = %d, want ~1.5M", grand)
	}
}

func TestParseCampaign(t *testing.T) {
	for _, s := range []string{"A", "b", "C", "d"} {
		if _, err := ParseCampaign(s); err != nil {
			t.Errorf("ParseCampaign(%q) failed: %v", s, err)
		}
	}
	if _, err := ParseCampaign("E"); err == nil {
		t.Error("ParseCampaign(E) succeeded")
	}
}

func TestCampaignNames(t *testing.T) {
	if CampaignA.Name() != "A: Semi-valid Action and Data" {
		t.Errorf("A name = %q", CampaignA.Name())
	}
	letters := map[Campaign]string{CampaignA: "A", CampaignB: "B", CampaignC: "C", CampaignD: "D"}
	for c, l := range letters {
		if c.Letter() != l {
			t.Errorf("%v letter = %q", c, c.Letter())
		}
	}
}
