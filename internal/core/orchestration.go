package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/manifest"
)

// MessageAPI paths used by the QGJ pair (Figure 1a's workflow: the phone
// retrieves the wearable's component list (1), sends the chosen target and
// campaign over the MessageAPI (2), the wear app forwards to the Fuzzer
// library (3), which injects intents into the target (4)).
const (
	PathListComponents = "/qgj/components"
	PathStartFuzz      = "/qgj/start"
)

// ComponentInfo is the wire form of one fuzzable component.
type ComponentInfo struct {
	Package  string `json:"package"`
	Class    string `json:"class"`
	Type     string `json:"type"` // "activity" or "service"
	Exported bool   `json:"exported"`
}

// listReply is the reply to PathListComponents.
type listReply struct {
	Components []ComponentInfo `json:"components"`
}

// startRequest asks the wearable to fuzz one app with one campaign.
type startRequest struct {
	Package  string `json:"package"`
	Campaign string `json:"campaign"`
	Seed     uint64 `json:"seed"`
	// Strides scale the run (0 = full scale).
	ActionStride   int `json:"actionStride"`
	SchemeStride   int `json:"schemeStride"`
	RandomVariants int `json:"randomVariants"`
	ExtrasVariants int `json:"extrasVariants"`
}

// startReply carries the per-app summary back to the phone.
type startReply struct {
	Summary Summary `json:"summary"`
	Error   string  `json:"error,omitempty"`
}

// WearApp is QGJ Wear: the watch-side application. It registers MessageAPI
// handlers and runs the Fuzzer library locally on request.
type WearApp struct {
	dev *device.Device
}

// InstallWearApp installs QGJ Wear on the wearable.
func InstallWearApp(dev *device.Device) *WearApp {
	app := &WearApp{dev: dev}
	dev.Node().Handle(PathListComponents, app.handleList)
	dev.Node().Handle(PathStartFuzz, app.handleStart)
	return app
}

func (w *WearApp) handleList(msg device.Message) (device.Message, error) {
	var infos []ComponentInfo
	for _, c := range w.dev.OS.Registry().AllComponents(manifest.Activity, manifest.Service) {
		infos = append(infos, ComponentInfo{
			Package:  c.Name.Package,
			Class:    c.Name.Class,
			Type:     c.Type.String(),
			Exported: c.Exported,
		})
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Package != infos[j].Package {
			return infos[i].Package < infos[j].Package
		}
		return infos[i].Class < infos[j].Class
	})
	return device.ReplyJSON(msg.Path, listReply{Components: infos})
}

func (w *WearApp) handleStart(msg device.Message) (device.Message, error) {
	var req startRequest
	if err := unmarshalJSON(msg.Payload, &req); err != nil {
		return device.ReplyJSON(msg.Path, startReply{Error: err.Error()})
	}
	campaign, err := ParseCampaign(req.Campaign)
	if err != nil {
		return device.ReplyJSON(msg.Path, startReply{Error: err.Error()})
	}
	pkg := w.dev.OS.Registry().Package(req.Package)
	if pkg == nil {
		return device.ReplyJSON(msg.Path, startReply{
			Error: fmt.Sprintf("package %q not installed on wearable", req.Package),
		})
	}
	inj := &Injector{
		Dev: w.dev.OS,
		Cfg: GeneratorConfig{
			Seed:           req.Seed,
			ActionStride:   req.ActionStride,
			SchemeStride:   req.SchemeStride,
			RandomVariants: req.RandomVariants,
			ExtrasVariants: req.ExtrasVariants,
		},
	}
	run := inj.FuzzApp(campaign, pkg)
	return device.ReplyJSON(msg.Path, startReply{
		Summary: Summarize(run, w.dev.OS.BootCount()),
	})
}

// MobileApp is QGJ Mobile: the phone-side application offering the UI to
// pick a target and campaign, and showing the result summary.
type MobileApp struct {
	dev *device.Device
}

// InstallMobileApp installs QGJ Mobile on the phone.
func InstallMobileApp(dev *device.Device) *MobileApp {
	return &MobileApp{dev: dev}
}

// ListWearComponents retrieves the wearable's fuzzable components (step 1
// of the workflow).
func (m *MobileApp) ListWearComponents() ([]ComponentInfo, error) {
	var reply listReply
	if err := m.dev.Node().SendJSON(PathListComponents, struct{}{}, &reply); err != nil {
		return nil, fmt.Errorf("list wear components: %w", err)
	}
	return reply.Components, nil
}

// StartFuzz orchestrates one campaign against one wearable app and returns
// the summary the watch reports back (steps 2-4).
func (m *MobileApp) StartFuzz(pkg string, campaign Campaign, gen GeneratorConfig) (Summary, error) {
	req := startRequest{
		Package:        pkg,
		Campaign:       campaign.Letter(),
		Seed:           gen.Seed,
		ActionStride:   gen.ActionStride,
		SchemeStride:   gen.SchemeStride,
		RandomVariants: gen.RandomVariants,
		ExtrasVariants: gen.ExtrasVariants,
	}
	var reply startReply
	if err := m.dev.Node().SendJSON(PathStartFuzz, req, &reply); err != nil {
		return Summary{}, fmt.Errorf("start fuzz: %w", err)
	}
	if reply.Error != "" {
		return Summary{}, fmt.Errorf("wearable rejected fuzz request: %s", reply.Error)
	}
	return reply.Summary, nil
}

// unmarshalJSON is a tiny indirection so orchestration handlers return
// structured errors instead of panicking on malformed payloads.
func unmarshalJSON(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}
