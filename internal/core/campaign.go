// Package core implements QGJ itself — the paper's primary contribution:
// the generational intent fuzzer (QGJ-Master) with its four Fuzz Intent
// Campaigns, the shared Fuzzer library that injects intents on the target
// device, and the phone↔watch orchestration over the Wear MessageAPI.
package core

import (
	"fmt"
	"sync"

	"repro/internal/intent"
	"repro/internal/rng"
)

// Campaign identifies one of the four Fuzz Intent Campaigns of Table I.
type Campaign int

const (
	// CampaignA "Semi-valid Action and Data": valid action and valid data
	// URI generated separately; the combination may be invalid.
	// |Action| x |TypeOf(Data)| intents per component (~1M overall).
	CampaignA Campaign = iota + 1
	// CampaignB "Blank Action or Data": either action OR data is set, all
	// other fields blank. |Action| + |TypeOf(Data)| per component (~100K).
	CampaignB
	// CampaignC "Random Action or Data": one side valid, the other random.
	// (|Action| + |TypeOf(Data)|) x variants per component (~300K).
	CampaignC
	// CampaignD "Random Extras": a valid {Action, Data} pair plus 1-5 Extra
	// fields with random values. |Action| x variants per component (~250K).
	CampaignD
	// CampaignF "Fault Injection" extends the paper's severity scale below
	// the app layer: a stream of well-formed intents keeps each component
	// busy while internal/faultinject perturbs the OS underneath it (binder
	// failures, sensor stalls, killed services, storage errors) on a seeded
	// schedule. |Action| per component — the workload is deliberately small
	// and valid-leaning so observed failures are attributable to the
	// injected faults, not the intents.
	CampaignF
)

// AllCampaigns lists the campaigns in execution order ("All 4 campaigns are
// executed one after another", Section III-D).
var AllCampaigns = []Campaign{CampaignA, CampaignB, CampaignC, CampaignD}

// Name returns the Table I row label.
func (c Campaign) Name() string {
	switch c {
	case CampaignA:
		return "A: Semi-valid Action and Data"
	case CampaignB:
		return "B: Blank Action or Data"
	case CampaignC:
		return "C: Random Action or Data"
	case CampaignD:
		return "D: Random Extras"
	case CampaignF:
		return "F: Fault Injection"
	default:
		return "unknown"
	}
}

// Letter returns the single-letter campaign id.
func (c Campaign) Letter() string {
	switch c {
	case CampaignA:
		return "A"
	case CampaignB:
		return "B"
	case CampaignC:
		return "C"
	case CampaignD:
		return "D"
	case CampaignF:
		return "F"
	default:
		return "?"
	}
}

// ParseCampaign converts a letter ("A".."D", case-insensitive) to a
// Campaign.
func ParseCampaign(s string) (Campaign, error) {
	switch s {
	case "A", "a":
		return CampaignA, nil
	case "B", "b":
		return CampaignB, nil
	case "C", "c":
		return CampaignC, nil
	case "D", "d":
		return CampaignD, nil
	case "F", "f":
		return CampaignF, nil
	default:
		return 0, fmt.Errorf("core: unknown campaign %q", s)
	}
}

// GeneratorConfig scales and seeds intent generation. The zero value means
// "full paper scale"; tests shrink ActionStride/SchemeStride to run fast.
type GeneratorConfig struct {
	// Seed drives random actions, data, and extras.
	Seed uint64
	// ActionStride takes every k-th action from the catalog (1 or 0 = all).
	ActionStride int
	// SchemeStride takes every k-th data scheme (1 or 0 = all).
	SchemeStride int
	// RandomVariants is how many random variants FIC C generates per
	// catalog entry (default 3; chosen so the per-campaign volume matches
	// Table I's ~300K).
	RandomVariants int
	// ExtrasVariants is how many extras sets FIC D generates per action
	// (default 3; ~250K overall in Table I).
	ExtrasVariants int
}

func (cfg GeneratorConfig) normalized() GeneratorConfig {
	if cfg.ActionStride < 1 {
		cfg.ActionStride = 1
	}
	if cfg.SchemeStride < 1 {
		cfg.SchemeStride = 1
	}
	if cfg.RandomVariants < 1 {
		cfg.RandomVariants = 3
	}
	if cfg.ExtrasVariants < 1 {
		cfg.ExtrasVariants = 3
	}
	return cfg
}

// actionCache/schemeCache memoize the strided catalog views. Generate runs
// once per (campaign, component) — hundreds of thousands of times at farm
// scale — and the catalogs are immutable, so each stride is materialized
// once. Callers treat the returned slices as read-only.
var (
	actionCache sync.Map // int (stride) -> []string
	schemeCache sync.Map // int (stride) -> []string
)

func stridedCatalog(cache *sync.Map, all []string, stride int) []string {
	if v, ok := cache.Load(stride); ok {
		return v.([]string)
	}
	out := make([]string, 0, len(all)/stride+1)
	for i := 0; i < len(all); i += stride {
		out = append(out, all[i])
	}
	cache.Store(stride, out)
	return out
}

func (cfg GeneratorConfig) actions() []string {
	return stridedCatalog(&actionCache, intent.Actions, cfg.ActionStride)
}

func (cfg GeneratorConfig) schemes() []string {
	return stridedCatalog(&schemeCache, intent.Schemes, cfg.SchemeStride)
}

// CountPerComponent predicts how many intents the campaign generates for
// one component under cfg — the |Action| x |TypeOf(Data)| arithmetic of
// Table I.
func (c Campaign) CountPerComponent(cfg GeneratorConfig) int {
	cfg = cfg.normalized()
	nA, nS := len(cfg.actions()), len(cfg.schemes())
	switch c {
	case CampaignA:
		return nA * nS
	case CampaignB:
		return nA + nS
	case CampaignC:
		return (nA + nS) * cfg.RandomVariants
	case CampaignD:
		return nA * cfg.ExtrasVariants
	case CampaignF:
		return nA
	default:
		return 0
	}
}

// fuzzExtraKeys are the random-looking keys FIC D attaches; none fall in a
// namespace a component expects.
var fuzzExtraKeys = []string{
	"fuzzKey", "qgj.extra", "payload", "random_field", "x", "data1",
	"extra_junk", "blob", "argv", "opt",
}

// maxExtras is FIC D's upper bound on extras per intent ("1-5 Extra fields").
const maxExtras = 5

// fuzzExtraKeyNumbered precomputes every "<key><index>" string FIC D can
// attach, so generation never runs fmt.Sprintf per extra.
var fuzzExtraKeyNumbered = func() [][maxExtras]string {
	out := make([][maxExtras]string, len(fuzzExtraKeys))
	for i, k := range fuzzExtraKeys {
		for e := 0; e < maxExtras; e++ {
			out[i][e] = fmt.Sprintf("%s%d", k, e)
		}
	}
	return out
}()

// intentPool recycles the campaign generators' working intents (and,
// transitively, their category and extras storage) across Generate calls —
// including concurrent ones from farm shards.
var intentPool = sync.Pool{New: func() any { return new(intent.Intent) }}

// Generate streams the campaign's intents for one target component into
// emit, in deterministic order. senderUID stamps the intents with QGJ's
// (unprivileged) identity.
//
// The *intent.Intent passed to emit is only valid for the duration of the
// callback: the generator reuses one pooled intent for the whole stream,
// resetting it between emissions. Callbacks that retain an intent (or its
// Extras) past their return must Clone it.
func (c Campaign) Generate(target intent.ComponentName, cfg GeneratorConfig, senderUID int, emit func(*intent.Intent)) {
	cfg = cfg.normalized()
	r := rng.New(cfg.Seed).Split("campaign-" + c.Letter() + "-" + target.FlattenToString())
	actions := cfg.actions()
	schemes := cfg.schemes()

	in := intentPool.Get().(*intent.Intent)
	defer func() {
		in.Reset()
		intentPool.Put(in)
	}()
	base := func() *intent.Intent {
		in.Reset()
		in.Component = target
		in.SenderUID = senderUID
		return in
	}

	switch c {
	case CampaignA:
		// Cartesian product of valid actions and valid data; many pairs are
		// semantically incompatible — exactly the defect FIC A probes.
		for _, a := range actions {
			for _, s := range schemes {
				in := base()
				in.Action = a
				in.Data = intent.SampleData(s)
				emit(in)
			}
		}
	case CampaignB:
		// Action XOR data; everything else blank.
		for _, a := range actions {
			in := base()
			in.Action = a
			emit(in)
		}
		for _, s := range schemes {
			in := base()
			in.Data = intent.SampleData(s)
			emit(in)
		}
	case CampaignC:
		// Valid action with random data, then random action with valid
		// data, RandomVariants times each.
		for _, a := range actions {
			for v := 0; v < cfg.RandomVariants; v++ {
				in := base()
				in.Action = a
				in.Data = randomURI(r)
				emit(in)
			}
		}
		for _, s := range schemes {
			for v := 0; v < cfg.RandomVariants; v++ {
				in := base()
				in.Action = randomAction(r)
				in.Data = intent.SampleData(s)
				emit(in)
			}
		}
	case CampaignD:
		// Valid {Action, Data} pair plus 1-5 random extras.
		for _, a := range actions {
			for v := 0; v < cfg.ExtrasVariants; v++ {
				in := base()
				in.Action = a
				if s, ok := validSchemeFor(a, schemes); ok {
					in.Data = intent.SampleData(s)
				}
				nExtras := r.IntBetween(1, 5)
				for e := 0; e < nExtras; e++ {
					// Same RNG consumption as rng.Pick(r, fuzzExtraKeys),
					// but the numbered key comes from the precomputed table.
					ki := r.Intn(len(fuzzExtraKeys))
					in.PutExtra(fuzzExtraKeyNumbered[ki][e], randomExtraValue(r))
				}
				emit(in)
			}
		}
	case CampaignF:
		// Well-formed traffic for the fault campaign: every catalog action,
		// with a scheme the action legitimately accepts when one exists.
		// Failures under FIC F come from the injected OS faults, so the
		// intents themselves stay as benign as the generator can make them.
		for _, a := range actions {
			in := base()
			in.Action = a
			if s, ok := validSchemeFor(a, schemes); ok {
				in.Data = intent.SampleData(s)
			}
			emit(in)
		}
	}
}

// randomAction fabricates a non-catalog action string like the paper's
// 'S0me.r@ndom.$trinG'.
func randomAction(r *rng.Source) string {
	return r.ASCII(4, 10) + "." + r.ASCII(3, 8) + "." + r.ASCII(3, 12)
}

// randomURI fabricates a syntactically parseable URI with a non-catalog
// scheme.
func randomURI(r *rng.Source) intent.URI {
	scheme := randomSchemeToken(r)
	return intent.URI{Scheme: scheme, Opaque: r.ASCII(1, 16)}
}

func randomSchemeToken(r *rng.Source) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	n := r.IntBetween(2, 8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	// Keep regenerating shouldn't be needed: a random 2-8 letter token
	// colliding with one of the 12 catalog schemes is rare and harmless
	// (the intent simply counts as semi-valid for that delivery).
	return string(b)
}

// validSchemeFor picks a scheme the action legitimately accepts, preferring
// the catalog order for determinism. ok is false for data-less actions.
func validSchemeFor(action string, schemes []string) (string, bool) {
	for _, s := range schemes {
		if intent.ActionAcceptsScheme(action, s) {
			return s, true
		}
	}
	return "", false
}

// randomExtraValue draws a random typed extra; roughly a quarter are
// explicit nulls, the classic NPE trigger.
func randomExtraValue(r *rng.Source) intent.Value {
	switch r.Intn(8) {
	case 0, 1:
		return intent.NullValue()
	case 2, 3, 4:
		return intent.StringValue(r.ASCII(1, 24))
	case 5:
		return intent.IntValue(int64(r.Uint64()))
	case 6:
		return intent.FloatValue(r.NormFloat64() * 1e4)
	default:
		return intent.BoolValue(r.Bool(0.5))
	}
}
