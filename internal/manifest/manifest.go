// Package manifest models AndroidManifest.xml-level metadata: packages,
// application components (Activities, Services, Receivers), intent filters,
// and permissions.
//
// The QGJ study targets Activities and Services "because they form the large
// majority of the components on AW apps" (Section III-B); the PackageManager
// model resolves explicit intents against this metadata and enforces the
// exported/permission attributes that produce the SecurityExceptions the
// paper measures.
package manifest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/intent"
)

// ComponentType enumerates the Android component kinds relevant to the
// study.
type ComponentType int

const (
	Activity ComponentType = iota + 1
	Service
	Receiver
)

// String returns the manifest tag name for the component type.
func (t ComponentType) String() string {
	switch t {
	case Activity:
		return "activity"
	case Service:
		return "service"
	case Receiver:
		return "receiver"
	default:
		return "unknown"
	}
}

// AppCategory is the paper's primary application split (Table II).
type AppCategory int

const (
	HealthFitness AppCategory = iota + 1
	NotHealthFitness
)

// String renders the category the way Table II labels it.
func (c AppCategory) String() string {
	switch c {
	case HealthFitness:
		return "Health/Fitness"
	case NotHealthFitness:
		return "Not Health/Fitness"
	default:
		return "unknown"
	}
}

// Origin is the paper's orthogonal classification: built-in (pre-installed,
// developed by Google/vendor) versus third party (Play Store).
type Origin int

const (
	BuiltIn Origin = iota + 1
	ThirdParty
)

// String renders the origin the way Table II labels it.
func (o Origin) String() string {
	switch o {
	case BuiltIn:
		return "Built-in"
	case ThirdParty:
		return "Third Party"
	default:
		return "unknown"
	}
}

// IntentFilter matches implicit intents against a component, following
// Android's three-part test: action match, category match (every category in
// the intent must be declared by the filter), and data match (scheme / MIME).
type IntentFilter struct {
	Actions     []string
	Categories  []string
	DataSchemes []string
	MimeTypes   []string
}

// Matches applies the Android intent-filter test to in.
func (f *IntentFilter) Matches(in *intent.Intent) bool {
	if !f.matchAction(in.Action) {
		return false
	}
	if !f.matchCategories(in.Categories) {
		return false
	}
	return f.matchData(in)
}

func (f *IntentFilter) matchAction(action string) bool {
	// A filter with no actions matches nothing (Android semantics).
	if len(f.Actions) == 0 {
		return false
	}
	// An intent with no action passes the action test against any filter.
	if action == "" {
		return true
	}
	for _, a := range f.Actions {
		if a == action {
			return true
		}
	}
	return false
}

func (f *IntentFilter) matchCategories(cats []string) bool {
	for _, c := range cats {
		found := false
		for _, fc := range f.Categories {
			if fc == c {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (f *IntentFilter) matchData(in *intent.Intent) bool {
	hasData := !in.Data.IsZero()
	hasType := in.Type != ""
	if len(f.DataSchemes) == 0 && len(f.MimeTypes) == 0 {
		// Filter declares no data: only intents without data/type match.
		return !hasData && !hasType
	}
	if hasData {
		ok := false
		for _, s := range f.DataSchemes {
			if s == in.Data.Scheme {
				ok = true
				break
			}
		}
		if len(f.DataSchemes) > 0 && !ok {
			return false
		}
	}
	if hasType {
		ok := false
		for _, m := range f.MimeTypes {
			if mimeMatches(m, in.Type) {
				ok = true
				break
			}
		}
		if len(f.MimeTypes) > 0 && !ok {
			return false
		}
	}
	return true
}

func mimeMatches(pattern, typ string) bool {
	if pattern == "*/*" || pattern == typ {
		return true
	}
	if strings.HasSuffix(pattern, "/*") {
		return strings.HasPrefix(typ, strings.TrimSuffix(pattern, "*"))
	}
	return false
}

// Component is one declared component of a package.
type Component struct {
	Name       intent.ComponentName
	Type       ComponentType
	Exported   bool
	Permission string // required caller permission; empty means none
	Filters    []*IntentFilter
	// MainLauncher marks the entry activity (MAIN/LAUNCHER filter); QGJ-UI
	// only targets launcher activities (Section IV-D).
	MainLauncher bool

	// flat and bindEndpoint cache the rendered component identity strings;
	// Registry.Install precomputes them so the dispatch hot path never
	// re-flattens a long-lived component. Lazily filled on first use for
	// components that never pass through a registry.
	flat         string
	bindEndpoint string
}

// Flat returns the cached Name.FlattenToString().
func (c *Component) Flat() string {
	if c.flat == "" {
		c.flat = c.Name.FlattenToString()
	}
	return c.flat
}

// BindEndpoint returns the cached "svc:<flat>" connection endpoint handed to
// ServiceConnection callbacks.
func (c *Component) BindEndpoint() string {
	if c.bindEndpoint == "" {
		c.bindEndpoint = "svc:" + c.Flat()
	}
	return c.bindEndpoint
}

// Package is one installed application.
type Package struct {
	Name       string // e.g. com.fitwell.tracker
	Label      string // human-readable app name
	Category   AppCategory
	Origin     Origin
	Downloads  int64 // Play Store downloads (3rd-party selection criterion)
	Components []*Component
	// UsesGoogleFit marks Health/Fitness apps that talk to the Google Fit
	// facade (the paper's error-propagation hypothesis).
	UsesGoogleFit bool
	// UsesSensorManager marks apps that use SensorManager directly (the
	// first reboot post-mortem involves such an app).
	UsesSensorManager bool
}

// ComponentsOf returns the package's components of the given type.
func (p *Package) ComponentsOf(t ComponentType) []*Component {
	var out []*Component
	for _, c := range p.Components {
		if c.Type == t {
			out = append(out, c)
		}
	}
	return out
}

// Launcher returns the package's MAIN/LAUNCHER activity, or nil.
func (p *Package) Launcher() *Component {
	for _, c := range p.Components {
		if c.MainLauncher {
			return c
		}
	}
	return nil
}

// Registry indexes installed packages and resolves component lookups; it is
// the PackageManager's data plane.
type Registry struct {
	packages map[string]*Package
	byName   map[intent.ComponentName]*Component
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		packages: make(map[string]*Package),
		byName:   make(map[intent.ComponentName]*Component),
	}
}

// Install adds pkg to the registry. Reinstalling a package name replaces the
// previous version. It returns an error when a component is declared under a
// different package than its own.
func (r *Registry) Install(pkg *Package) error {
	if pkg.Name == "" {
		return fmt.Errorf("manifest: package with empty name")
	}
	for _, c := range pkg.Components {
		if c.Name.Package != pkg.Name {
			return fmt.Errorf("manifest: component %s declared in package %s", c.Name, pkg.Name)
		}
	}
	if old, ok := r.packages[pkg.Name]; ok {
		for _, c := range old.Components {
			delete(r.byName, c.Name)
		}
	} else {
		r.order = append(r.order, pkg.Name)
	}
	r.packages[pkg.Name] = pkg
	for _, c := range pkg.Components {
		r.byName[c.Name] = c
		// The interned strings are write-once: packages structurally shared
		// across device clones are installed concurrently, and rewriting an
		// already-cached value would race with readers on sibling devices.
		if c.flat == "" {
			c.flat = c.Name.FlattenToString()
		}
		if c.bindEndpoint == "" {
			c.bindEndpoint = "svc:" + c.flat
		}
	}
	return nil
}

// Uninstall removes the named package; it reports whether it was installed.
func (r *Registry) Uninstall(name string) bool {
	pkg, ok := r.packages[name]
	if !ok {
		return false
	}
	for _, c := range pkg.Components {
		delete(r.byName, c.Name)
	}
	delete(r.packages, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// Clear removes every installed package, returning the registry to its
// NewRegistry state while reusing the map allocations. The persistent-mode
// device reset clears and reinstalls the snapshot's package set in place.
func (r *Registry) Clear() {
	clear(r.packages)
	clear(r.byName)
	r.order = r.order[:0]
}

// Package returns the named package, or nil.
func (r *Registry) Package(name string) *Package { return r.packages[name] }

// Count returns the number of installed packages.
func (r *Registry) Count() int { return len(r.order) }

// Packages returns all installed packages in installation order.
func (r *Registry) Packages() []*Package {
	out := make([]*Package, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.packages[n])
	}
	return out
}

// Component resolves an explicit component name; nil when unknown.
func (r *Registry) Component(name intent.ComponentName) *Component {
	return r.byName[name]
}

// Resolve returns the component an intent resolves to. Explicit intents
// resolve by component name; implicit intents resolve to the best filter
// match (first installed package wins ties, matching the paper's
// explicit-intent focus where implicit resolution is rarely exercised).
func (r *Registry) Resolve(in *intent.Intent, want ComponentType) *Component {
	if in.IsExplicit() {
		c := r.byName[in.Component]
		if c == nil || c.Type != want {
			return nil
		}
		return c
	}
	for _, name := range r.order {
		for _, c := range r.packages[name].Components {
			if c.Type != want || !c.Exported {
				continue
			}
			for _, f := range c.Filters {
				if f.Matches(in) {
					return c
				}
			}
		}
	}
	return nil
}

// Stats summarizes the registry the way Table II does.
type Stats struct {
	Apps       int
	Activities int
	Services   int
	Receivers  int
}

// StatsFor aggregates component counts for packages matching the category
// and origin. Pass zero values to aggregate over everything.
func (r *Registry) StatsFor(cat AppCategory, origin Origin) Stats {
	var s Stats
	for _, name := range r.order {
		p := r.packages[name]
		if cat != 0 && p.Category != cat {
			continue
		}
		if origin != 0 && p.Origin != origin {
			continue
		}
		s.Apps++
		for _, c := range p.Components {
			switch c.Type {
			case Activity:
				s.Activities++
			case Service:
				s.Services++
			case Receiver:
				s.Receivers++
			}
		}
	}
	return s
}

// AllComponents returns every installed component of the given types in
// deterministic order.
func (r *Registry) AllComponents(types ...ComponentType) []*Component {
	allow := make(map[ComponentType]bool, len(types))
	for _, t := range types {
		allow[t] = true
	}
	var out []*Component
	for _, name := range r.order {
		for _, c := range r.packages[name].Components {
			if len(allow) == 0 || allow[c.Type] {
				out = append(out, c)
			}
		}
	}
	return out
}

// PermissionRegistry records the permission strings known to the device;
// `pm` rejects permission strings not registered here (Section IV-D).
type PermissionRegistry struct {
	known map[string]bool
}

// NewPermissionRegistry returns a registry pre-loaded with the given
// permissions.
func NewPermissionRegistry(perms ...string) *PermissionRegistry {
	m := make(map[string]bool, len(perms))
	for _, p := range perms {
		m[p] = true
	}
	return &PermissionRegistry{known: m}
}

// Register adds a permission string.
func (pr *PermissionRegistry) Register(perm string) { pr.known[perm] = true }

// Reset replaces the contents with exactly perms, reusing the map
// allocation.
func (pr *PermissionRegistry) Reset(perms []string) {
	clear(pr.known)
	for _, p := range perms {
		pr.known[p] = true
	}
}

// Known reports whether perm is registered on the device.
func (pr *PermissionRegistry) Known(perm string) bool { return pr.known[perm] }

// Count returns the number of registered permissions.
func (pr *PermissionRegistry) Count() int { return len(pr.known) }

// List returns all registered permissions, sorted.
func (pr *PermissionRegistry) List() []string {
	out := make([]string, 0, len(pr.known))
	for p := range pr.known {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Standard Android permissions used by the simulated fleets.
var StandardPermissions = []string{
	"android.permission.BODY_SENSORS",
	"android.permission.ACTIVITY_RECOGNITION",
	"android.permission.INTERNET",
	"android.permission.ACCESS_FINE_LOCATION",
	"android.permission.ACCESS_COARSE_LOCATION",
	"android.permission.WAKE_LOCK",
	"android.permission.VIBRATE",
	"android.permission.RECEIVE_BOOT_COMPLETED",
	"android.permission.READ_CONTACTS",
	"android.permission.CALL_PHONE",
	"android.permission.RECORD_AUDIO",
	"android.permission.CAMERA",
	"android.permission.BLUETOOTH",
	"android.permission.BLUETOOTH_ADMIN",
	"android.permission.READ_EXTERNAL_STORAGE",
	"android.permission.WRITE_EXTERNAL_STORAGE",
}
