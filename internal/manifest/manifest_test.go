package manifest

import (
	"testing"

	"repro/internal/intent"
)

func cn(pkg, cls string) intent.ComponentName {
	return intent.ComponentName{Package: pkg, Class: pkg + "." + cls}
}

func samplePackage() *Package {
	pkg := "com.example.fit"
	return &Package{
		Name:     pkg,
		Label:    "Example Fit",
		Category: HealthFitness,
		Origin:   ThirdParty,
		Components: []*Component{
			{
				Name: cn(pkg, "MainActivity"), Type: Activity, Exported: true, MainLauncher: true,
				Filters: []*IntentFilter{{
					Actions:    []string{"android.intent.action.MAIN"},
					Categories: []string{intent.CategoryLauncher, intent.CategoryDefault},
				}},
			},
			{
				Name: cn(pkg, "ShareActivity"), Type: Activity, Exported: true,
				Filters: []*IntentFilter{{
					Actions:     []string{"android.intent.action.SEND"},
					Categories:  []string{intent.CategoryDefault},
					MimeTypes:   []string{"text/*"},
					DataSchemes: nil,
				}},
			},
			{Name: cn(pkg, "SyncService"), Type: Service, Exported: true},
			{Name: cn(pkg, "HiddenService"), Type: Service, Exported: false},
		},
	}
}

func TestInstallAndResolveExplicit(t *testing.T) {
	r := NewRegistry()
	if err := r.Install(samplePackage()); err != nil {
		t.Fatal(err)
	}
	in := &intent.Intent{Component: cn("com.example.fit", "SyncService")}
	if got := r.Resolve(in, Service); got == nil || got.Name != in.Component {
		t.Fatalf("Resolve explicit service = %v", got)
	}
	// Wrong component type must not resolve.
	if got := r.Resolve(in, Activity); got != nil {
		t.Fatalf("service resolved as activity: %v", got)
	}
	// Unknown components must not resolve.
	in2 := &intent.Intent{Component: cn("com.example.fit", "Nope")}
	if got := r.Resolve(in2, Service); got != nil {
		t.Fatalf("unknown component resolved: %v", got)
	}
}

func TestInstallRejectsForeignComponents(t *testing.T) {
	r := NewRegistry()
	bad := &Package{
		Name:       "com.a",
		Components: []*Component{{Name: cn("com.b", "X"), Type: Activity}},
	}
	if err := r.Install(bad); err == nil {
		t.Fatal("Install accepted a component from another package")
	}
	if err := r.Install(&Package{}); err == nil {
		t.Fatal("Install accepted an empty package name")
	}
}

func TestReinstallReplaces(t *testing.T) {
	r := NewRegistry()
	p1 := samplePackage()
	if err := r.Install(p1); err != nil {
		t.Fatal(err)
	}
	p2 := &Package{
		Name:       p1.Name,
		Components: []*Component{{Name: cn(p1.Name, "OnlyOne"), Type: Activity, Exported: true}},
	}
	if err := r.Install(p2); err != nil {
		t.Fatal(err)
	}
	if got := r.Component(cn(p1.Name, "MainActivity")); got != nil {
		t.Fatal("old component survived reinstall")
	}
	if got := r.Component(cn(p1.Name, "OnlyOne")); got == nil {
		t.Fatal("new component not registered")
	}
	if n := len(r.Packages()); n != 1 {
		t.Fatalf("package count after reinstall = %d", n)
	}
}

func TestUninstall(t *testing.T) {
	r := NewRegistry()
	p := samplePackage()
	if err := r.Install(p); err != nil {
		t.Fatal(err)
	}
	if !r.Uninstall(p.Name) {
		t.Fatal("Uninstall returned false")
	}
	if r.Uninstall(p.Name) {
		t.Fatal("second Uninstall returned true")
	}
	if r.Component(cn(p.Name, "MainActivity")) != nil {
		t.Fatal("component survived uninstall")
	}
}

func TestImplicitResolution(t *testing.T) {
	r := NewRegistry()
	if err := r.Install(samplePackage()); err != nil {
		t.Fatal(err)
	}
	in := &intent.Intent{
		Action:     "android.intent.action.SEND",
		Type:       "text/plain",
		Categories: []string{intent.CategoryDefault},
	}
	got := r.Resolve(in, Activity)
	if got == nil || got.Name.Class != "com.example.fit.ShareActivity" {
		t.Fatalf("implicit resolve = %v", got)
	}
	// Non-exported components must not match implicit intents.
	in2 := &intent.Intent{Action: "anything"}
	if got := r.Resolve(in2, Service); got != nil {
		t.Fatalf("resolved non-exported or non-matching service: %v", got)
	}
}

func TestFilterActionSemantics(t *testing.T) {
	f := &IntentFilter{Actions: []string{"A"}, Categories: []string{intent.CategoryDefault}}
	// Intent with no action passes the action test.
	if !f.Matches(&intent.Intent{}) {
		t.Error("empty-action intent should match")
	}
	if f.Matches(&intent.Intent{Action: "B"}) {
		t.Error("mismatched action matched")
	}
	// Filter with no actions matches nothing.
	empty := &IntentFilter{}
	if empty.Matches(&intent.Intent{}) {
		t.Error("action-less filter matched")
	}
}

func TestFilterCategorySemantics(t *testing.T) {
	f := &IntentFilter{
		Actions:    []string{"A"},
		Categories: []string{intent.CategoryDefault, intent.CategoryBrowsable},
	}
	ok := &intent.Intent{Action: "A", Categories: []string{intent.CategoryDefault}}
	if !f.Matches(ok) {
		t.Error("subset categories should match")
	}
	bad := &intent.Intent{Action: "A", Categories: []string{intent.CategoryHome}}
	if f.Matches(bad) {
		t.Error("undeclared category matched")
	}
}

func TestFilterDataSemantics(t *testing.T) {
	f := &IntentFilter{Actions: []string{"A"}, DataSchemes: []string{"https"}}
	withData := &intent.Intent{Action: "A"}
	withData.Data, _ = intent.ParseURI("https://foo.com/")
	if !f.Matches(withData) {
		t.Error("scheme match failed")
	}
	wrong := &intent.Intent{Action: "A"}
	wrong.Data, _ = intent.ParseURI("tel:123")
	if f.Matches(wrong) {
		t.Error("wrong scheme matched")
	}
	// Filter without data only matches intents without data.
	noData := &IntentFilter{Actions: []string{"A"}}
	if noData.Matches(withData) {
		t.Error("data intent matched data-less filter")
	}
	if !noData.Matches(&intent.Intent{Action: "A"}) {
		t.Error("data-less intent should match data-less filter")
	}
}

func TestMimeWildcards(t *testing.T) {
	tests := []struct {
		pattern, typ string
		want         bool
	}{
		{"text/plain", "text/plain", true},
		{"text/*", "text/html", true},
		{"text/*", "image/png", false},
		{"*/*", "application/json", true},
		{"image/png", "image/jpeg", false},
	}
	for _, tt := range tests {
		if got := mimeMatches(tt.pattern, tt.typ); got != tt.want {
			t.Errorf("mimeMatches(%q, %q) = %v, want %v", tt.pattern, tt.typ, got, tt.want)
		}
	}
}

func TestStatsFor(t *testing.T) {
	r := NewRegistry()
	if err := r.Install(samplePackage()); err != nil {
		t.Fatal(err)
	}
	other := &Package{
		Name: "com.other.app", Category: NotHealthFitness, Origin: BuiltIn,
		Components: []*Component{
			{Name: cn("com.other.app", "A"), Type: Activity},
			{Name: cn("com.other.app", "S"), Type: Service},
		},
	}
	if err := r.Install(other); err != nil {
		t.Fatal(err)
	}
	all := r.StatsFor(0, 0)
	if all.Apps != 2 || all.Activities != 3 || all.Services != 3 {
		t.Fatalf("all stats = %+v", all)
	}
	health := r.StatsFor(HealthFitness, 0)
	if health.Apps != 1 || health.Activities != 2 || health.Services != 2 {
		t.Fatalf("health stats = %+v", health)
	}
	builtin := r.StatsFor(0, BuiltIn)
	if builtin.Apps != 1 || builtin.Activities != 1 {
		t.Fatalf("builtin stats = %+v", builtin)
	}
}

func TestAllComponentsFiltering(t *testing.T) {
	r := NewRegistry()
	if err := r.Install(samplePackage()); err != nil {
		t.Fatal(err)
	}
	acts := r.AllComponents(Activity)
	if len(acts) != 2 {
		t.Fatalf("activities = %d, want 2", len(acts))
	}
	both := r.AllComponents(Activity, Service)
	if len(both) != 4 {
		t.Fatalf("activities+services = %d, want 4", len(both))
	}
	everything := r.AllComponents()
	if len(everything) != 4 {
		t.Fatalf("all = %d, want 4", len(everything))
	}
}

func TestLauncherLookup(t *testing.T) {
	p := samplePackage()
	l := p.Launcher()
	if l == nil || !l.MainLauncher {
		t.Fatalf("Launcher() = %v", l)
	}
	q := &Package{Name: "com.nolauncher"}
	if q.Launcher() != nil {
		t.Fatal("launcher found in launcher-less package")
	}
}

func TestPermissionRegistry(t *testing.T) {
	pr := NewPermissionRegistry(StandardPermissions...)
	if !pr.Known("android.permission.BODY_SENSORS") {
		t.Error("standard permission unknown")
	}
	if pr.Known("S0me.r@ndom.$trinG") {
		t.Error("random permission string known")
	}
	pr.Register("com.example.CUSTOM")
	if !pr.Known("com.example.CUSTOM") {
		t.Error("registered permission unknown")
	}
	list := pr.List()
	if len(list) != len(StandardPermissions)+1 {
		t.Errorf("List() has %d entries", len(list))
	}
}

func TestEnumStrings(t *testing.T) {
	if Activity.String() != "activity" || Service.String() != "service" {
		t.Error("ComponentType.String broken")
	}
	if HealthFitness.String() != "Health/Fitness" || NotHealthFitness.String() != "Not Health/Fitness" {
		t.Error("AppCategory.String broken")
	}
	if BuiltIn.String() != "Built-in" || ThirdParty.String() != "Third Party" {
		t.Error("Origin.String broken")
	}
}
