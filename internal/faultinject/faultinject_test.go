package faultinject_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/faultinject"
	"repro/internal/triage"
	"repro/internal/wearos"
)

func TestNewPlanDeterministic(t *testing.T) {
	a := faultinject.NewPlan(42, 500)
	b := faultinject.NewPlan(42, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same (seed, budget) produced different plans:\n%+v\n%+v", a, b)
	}
	if len(a.Windows) == 0 {
		t.Fatal("budget 500 produced an empty schedule")
	}
	c := faultinject.NewPlan(43, 500)
	if reflect.DeepEqual(a.Windows, c.Windows) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPlanScheduleShape(t *testing.T) {
	p := faultinject.NewPlan(7, 1000)
	kinds := map[faultinject.Kind]bool{}
	var prevEnd uint64
	for i, w := range p.Windows {
		if w.End <= w.Start {
			t.Fatalf("window %d: end %d <= start %d", i, w.End, w.Start)
		}
		if i > 0 && w.Start <= prevEnd {
			t.Fatalf("window %d overlaps previous (start %d <= prev end %d)", i, w.Start, prevEnd)
		}
		if w.End >= uint64(p.Budget) {
			t.Fatalf("window %d: end %d outruns budget %d", i, w.End, p.Budget)
		}
		kinds[w.Kind] = true
		prevEnd = w.End
	}
	if len(kinds) != len(faultinject.AllKinds) {
		t.Fatalf("budget 1000 covered %d fault kinds, want all %d", len(kinds), len(faultinject.AllKinds))
	}
}

// drive runs the engine over a hand-built plan by walking the dispatch
// sequence directly — the same coordinates the OS hooks would feed it.
func drive(eng *faultinject.Engine, through uint64) {
	for seq := uint64(1); seq <= through; seq++ {
		eng.Pre(seq)
		eng.Post(seq, wearos.DeliveredNoEffect)
	}
	eng.Finish()
}

// TestEngineManifestations pins each fault kind's graded outcome and its
// logcat manifestation on a real device.
func TestEngineManifestations(t *testing.T) {
	cases := []struct {
		kind    faultinject.Kind
		recover bool
		want    string
	}{
		// Prompt binder errors degrade visibly and recover.
		{faultinject.BinderDead, true, faultinject.VerdictDegradedRecovered},
		{faultinject.BinderTooLarge, true, faultinject.VerdictDegradedRecovered},
		// Timeouts and stalls are hang-shaped.
		{faultinject.BinderTimeout, true, faultinject.VerdictStall},
		{faultinject.SensorStall, true, faultinject.VerdictStall},
		// A frozen sensor stream raises no error anywhere: only the
		// freshness oracle catches it.
		{faultinject.SensorStale, true, faultinject.VerdictSilentDrop},
		// A killed service errors until restarted, then comes back.
		{faultinject.ServiceKill, true, faultinject.VerdictDegradedRecovered},
		// Failed storage writes lose the record silently.
		{faultinject.StorageIO, true, faultinject.VerdictSilentDrop},
		// A fault that out-lives its window grades failed-recovery.
		{faultinject.BinderDead, false, faultinject.VerdictFailedRecovery},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/recover=%v", tc.kind, tc.recover), func(t *testing.T) {
			watch := device.NewWatch("faultwatch")
			col := triage.NewCollector()
			watch.OS.Logcat().Subscribe(col)
			plan := &faultinject.Plan{Seed: 1, Budget: 20, Windows: []faultinject.Window{
				{Kind: tc.kind, Start: 3, End: 6, Recover: tc.recover},
			}}
			eng := faultinject.NewEngine(watch.OS, plan, "com.example.wear")
			drive(eng, 10)

			vs := eng.Verdicts()
			if len(vs) != 1 {
				t.Fatalf("got %d verdicts, want 1: %+v", len(vs), vs)
			}
			v := vs[0]
			if v.Verdict != tc.want {
				t.Errorf("verdict = %s, want %s (probes %d failed / %d ok)", v.Verdict, tc.want, v.Failed, v.OK)
			}
			if v.Fault != tc.kind.String() || v.Target != tc.kind.Target() || v.App != "com.example.wear" {
				t.Errorf("verdict identity = %+v", v)
			}
			if tc.kind != faultinject.SensorStale && v.Failed == 0 {
				t.Errorf("no probe failed inside a %s window", tc.kind)
			}

			dump := watch.OS.Logcat().Dump()
			openLine := fmt.Sprintf("opening %s fault window", tc.kind)
			if !strings.Contains(dump, openLine) {
				t.Errorf("logcat missing %q", openLine)
			}
			verdictLine := fmt.Sprintf("VERDICT verdict=%s fault=%s", tc.want, tc.kind)
			if !strings.Contains(dump, verdictLine) {
				t.Errorf("logcat missing %q in:\n%s", verdictLine, dump)
			}

			// The VERDICT line must round-trip through triage into a fault
			// record in the same pipeline crashes ride.
			var fault *triage.Crash
			for _, c := range col.Crashes() {
				if c.IsFault() {
					fault = c
				}
			}
			if fault == nil {
				t.Fatal("triage collector captured no fault record")
			}
			if fault.Kind != tc.want || fault.Fault != tc.kind.String() || fault.Process != "com.example.wear" {
				t.Errorf("triage record = kind %s fault %s process %s", fault.Kind, fault.Fault, fault.Process)
			}
		})
	}
}

// TestEngineFollowsSchedule runs a multi-window plan and checks every
// window is graded exactly once, in schedule order.
func TestEngineFollowsSchedule(t *testing.T) {
	watch := device.NewWatch("schedwatch")
	plan := faultinject.NewPlan(11, 120)
	if len(plan.Windows) < 3 {
		t.Fatalf("schedule too short for the test: %d windows", len(plan.Windows))
	}
	eng := faultinject.NewEngine(watch.OS, plan, "com.example.wear")
	drive(eng, 120)
	vs := eng.Verdicts()
	if len(vs) != len(plan.Windows) {
		t.Fatalf("graded %d windows, want %d", len(vs), len(plan.Windows))
	}
	for i, v := range vs {
		w := plan.Windows[i]
		if v.Fault != w.Kind.String() || v.Start != w.Start || v.End != w.End {
			t.Errorf("verdict %d = %+v, want window %+v", i, v, w)
		}
	}
}
