// Package faultinject is the OS-level fault-injection engine behind
// campaign F (FIC F): it perturbs the simulated device *underneath* the
// application layer — binder transaction failures, sensor-service stalls
// and silently frozen streams, killed system services, storage I/O errors —
// on a seeded, dispatch-sequence-keyed schedule, and grades how gracefully
// the system degrades and recovers.
//
// The paper's campaigns probe the app layer's robustness to hostile
// *inputs*; FIC F probes the same fleet's robustness to a degraded
// *platform*, the other half of the dependability question for a wearable
// (sensors drop out, the watch's flash wears, core services get reclaimed
// under memory pressure). Large fault-injection studies on Android
// (Cotroneo et al.) use exactly this shape: a deterministic fault load plus
// oracles that distinguish crash, hang, silent data loss, and failed
// recovery.
//
// Determinism contract: a Plan is a pure function of (seed, budget). Fault
// windows open and close on dispatch sequence numbers — per-device
// deterministic coordinates — never wall time, and every probe the engine
// performs happens at a window edge or inside the Post hook of a dispatch,
// so a fault campaign replays byte-identically across worker counts and
// kill/resume (each farm shard derives its fault seed by splitting the
// study seed on the shard key).
package faultinject

import (
	"repro/internal/javalang"
	"repro/internal/logcat"
	"repro/internal/rng"
	"repro/internal/sensors"
	"repro/internal/telemetry"
	"repro/internal/wearos"
)

// Kind enumerates the injectable OS faults.
type Kind int

const (
	// BinderDead: every binder transaction fails with DeadObjectException,
	// as if the remote process was reclaimed mid-call.
	BinderDead Kind = iota + 1
	// BinderTooLarge: transactions fail with TransactionTooLargeException —
	// the binder buffer is exhausted.
	BinderTooLarge
	// BinderTimeout: transactions hang until the caller's deadline and fail
	// with a RemoteException timeout.
	BinderTimeout
	// SensorStall: the sensor service stops answering; registrations and
	// reads time out.
	SensorStall
	// SensorStale: sensor reads succeed but replay the last delivered
	// sample — a silently frozen stream, invisible without a freshness
	// oracle.
	SensorStale
	// ServiceKill: the sensor service process is SIGKILLed outside the
	// watchdog's view; recovery requires an explicit restart.
	ServiceKill
	// StorageIO: persistent-storage writes (DropBox filings) fail with an
	// I/O error and the record is lost.
	StorageIO
)

// AllKinds lists every fault kind in schedule rotation order.
var AllKinds = []Kind{
	BinderDead, BinderTooLarge, BinderTimeout,
	SensorStall, SensorStale, ServiceKill, StorageIO,
}

// String returns the fault's stable identifier (used in logcat VERDICT
// lines, triage buckets, and report tables).
func (k Kind) String() string {
	switch k {
	case BinderDead:
		return "binder-dead"
	case BinderTooLarge:
		return "binder-toolarge"
	case BinderTimeout:
		return "binder-timeout"
	case SensorStall:
		return "sensor-stall"
	case SensorStale:
		return "sensor-stale"
	case ServiceKill:
		return "svc-kill"
	case StorageIO:
		return "storage-io"
	default:
		return "unknown"
	}
}

// Target names the subsystem the fault degrades.
func (k Kind) Target() string {
	switch k {
	case BinderDead, BinderTooLarge, BinderTimeout:
		return "binder"
	case SensorStall, SensorStale, ServiceKill:
		return "sensorservice"
	case StorageIO:
		return "dropbox"
	default:
		return "unknown"
	}
}

// Verdict strings for graded fault outcomes. They double as triage record
// kinds (triage parses them back out of the VERDICT logcat line), so the
// vocabulary here and triage's fault-kind constants must match.
const (
	// VerdictDegradedRecovered: the subsystem failed visibly during the
	// window and came back healthy after it — graceful degradation.
	VerdictDegradedRecovered = "degraded-recovered"
	// VerdictStall: the degradation manifested as timeouts (hangs from the
	// caller's perspective) rather than prompt errors.
	VerdictStall = "stall"
	// VerdictSilentDrop: no error surfaced anywhere, but data was lost or
	// frozen — the worst kind of sensor failure for a health wearable.
	VerdictSilentDrop = "silent-drop"
	// VerdictFailedRecovery: the subsystem was still unhealthy after the
	// window ended (or the fault was configured to out-live it).
	VerdictFailedRecovery = "failed-recovery"
)

// Window is one scheduled fault: Kind is injected when the device's
// dispatch sequence reaches Start and lifted after End (inclusive).
type Window struct {
	Kind  Kind   `json:"kind"`
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Recover is false for windows whose fault deliberately out-lives the
	// schedule — the engine grades them failed-recovery before re-arming
	// the device, deterministically populating that bucket.
	Recover bool `json:"recover"`
}

// Plan is a deterministic fault schedule: non-overlapping windows in
// ascending Start order with cool-down gaps between them.
type Plan struct {
	Seed    uint64   `json:"seed"`
	Budget  int      `json:"budget"`
	Windows []Window `json:"windows"`
}

// Schedule-shape constants: windows are short (a handful of dispatches)
// and separated by gaps so each one's recovery is observable in isolation.
const (
	minGap, maxGap   = 2, 6
	minLen, maxLen   = 3, 8
	minCool, maxCool = 2, 4
	// recoverP is the probability a window recovers when its schedule says
	// so; the remainder model faults that wedge the subsystem for good.
	recoverP = 0.85
)

// NewPlan derives the fault schedule for a run expected to perform about
// budget dispatches. The schedule is a pure function of (seed, budget):
// fault kinds rotate so every kind appears once the budget allows, and all
// randomness comes from one SplitMix64 stream split off the seed.
func NewPlan(seed uint64, budget int) *Plan {
	p := &Plan{Seed: seed, Budget: budget}
	r := rng.New(seed).Split("fault-schedule")
	// The rotation starts at a seeded offset: short schedules (quick runs)
	// only fit a few windows each, and without the offset every shard would
	// exercise the same first kinds — the offset spreads kind coverage
	// across shards, whose fault seeds differ by construction.
	off := r.IntBetween(0, len(AllKinds)-1)
	cursor := uint64(1)
	for i := 0; ; i++ {
		gap := uint64(r.IntBetween(minGap, maxGap))
		length := uint64(r.IntBetween(minLen, maxLen))
		cool := uint64(r.IntBetween(minCool, maxCool))
		recover := r.Bool(recoverP)
		start := cursor + gap
		end := start + length
		if end+cool > uint64(budget) {
			break
		}
		p.Windows = append(p.Windows, Window{
			Kind: AllKinds[(off+i)%len(AllKinds)], Start: start, End: end, Recover: recover,
		})
		cursor = end + cool
	}
	return p
}

// Verdict is one graded fault outcome.
type Verdict struct {
	Fault   string `json:"fault"`
	Verdict string `json:"verdict"`
	Target  string `json:"target"`
	App     string `json:"app"`
	Start   uint64 `json:"start"`
	End     uint64 `json:"end"`
	// Failed/OK count in-window probes by outcome.
	Failed int `json:"failed"`
	OK     int `json:"ok"`
}

// probeEndpoint is the binder endpoint the engine publishes for its own
// health probes; probePID is its synthetic owner (below the process table's
// PID range, so it never collides with an app process and survives reboots).
const (
	probeEndpoint = "faultinject.probe"
	probePID      = 3
	probeClient   = "faultinject.probe"
)

// active tracks the currently open window and its probe tallies.
type active struct {
	w          Window
	failed, ok int
}

// Engine drives a Plan against one device: it brackets every dispatch via
// the OS fault hooks, opens/closes windows on schedule, probes the faulted
// subsystem from inside each window, and grades the outcome when the window
// closes. Like the device it instruments, an Engine is single-threaded.
type Engine struct {
	dev  *wearos.OS
	plan *Plan
	app  string
	log  *logcat.Logger
	rec  *telemetry.Recorder

	next int
	// nextStart caches plan.Windows[next].Start (MaxUint64 once the schedule
	// is exhausted) so the dormant Pre hook — the overwhelmingly common case,
	// every dispatch outside a window — is a single compare instead of a
	// slice walk. Campaign F's hot-path budget depends on it.
	nextStart uint64
	cur       *active
	verdicts  []Verdict
	fresh     bool

	// Baselines captured at window open, diffed at close to detect silent
	// degradation the probes cannot see as errors.
	staleBase uint64
	dropBase  uint64
}

// NewEngine attaches a fault engine to the device and installs the dispatch
// hooks. Attach after any snapshot/clone step: the engine publishes a binder
// probe endpoint, and snapshotting refuses devices with live endpoints.
func NewEngine(dev *wearos.OS, plan *Plan, app string) *Engine {
	e := &Engine{dev: dev, plan: plan, app: app, log: dev.Logger(), rec: dev.FlightRecorder()}
	e.setNextStart()
	dev.SetFaultHooks(wearos.FaultHooks{Pre: e.Pre, Post: e.Post})
	e.ensureProbes()
	return e
}

// setNextStart refreshes the cached start coordinate of the next scheduled
// window.
func (e *Engine) setNextStart() {
	if e.next < len(e.plan.Windows) {
		e.nextStart = e.plan.Windows[e.next].Start
	} else {
		e.nextStart = ^uint64(0)
	}
}

// Plan returns the engine's schedule.
func (e *Engine) Plan() *Plan { return e.plan }

// Verdicts returns the graded windows so far (engine keeps ownership).
func (e *Engine) Verdicts() []Verdict { return e.verdicts }

// TakeVerdict reports whether a verdict was emitted since the last call and
// clears the flag — the farm's Observe hook uses it to pair the in-flight
// intent and flight-recorder window with the triage record the verdict's
// logcat line just produced.
func (e *Engine) TakeVerdict() bool {
	f := e.fresh
	e.fresh = false
	return f
}

// Pre runs before each delivery: it closes an expired window and opens the
// next due one, both on the dispatch-sequence coordinate.
func (e *Engine) Pre(seq uint64) {
	if e.cur != nil && seq > e.cur.w.End {
		e.close()
	}
	if e.cur == nil && seq >= e.nextStart {
		w := e.plan.Windows[e.next]
		e.next++
		e.setNextStart()
		e.open(w)
	}
}

// Post runs after each delivery; inside a window it probes the faulted
// subsystem so the during-fault behaviour is observed, not assumed.
func (e *Engine) Post(seq uint64, res wearos.DeliveryResult) {
	if e.cur == nil {
		return
	}
	ok, detail := e.probe(e.cur.w.Kind)
	if ok {
		e.cur.ok++
	} else {
		e.cur.failed++
	}
	e.rec.Record(telemetry.EventFault, e.cur.w.Kind.Target(), "", "probe:"+detail)
}

// Finish closes a window still open when the campaign ends (its scheduled
// End was never reached) and grades it. Call once after the last dispatch.
func (e *Engine) Finish() {
	if e.cur != nil {
		e.close()
	}
}

func (e *Engine) open(w Window) {
	e.ensureProbes()
	e.staleBase, e.dropBase = e.baselines()
	e.log.Log(1000, 1000, logcat.Warn, logcat.TagFaultInject,
		"opening %s fault window [%d,%d] on %s", w.Kind, w.Start, w.End, w.Kind.Target())
	e.rec.RecordNow(telemetry.EventFault, w.Kind.Target(), "", "begin:"+w.Kind.String())
	e.install(w.Kind)
	e.cur = &active{w: w}
}

func (e *Engine) close() {
	a := e.cur
	e.cur = nil
	w := a.w
	if w.Recover {
		e.restore(w.Kind)
	}
	// Post-window health check: with Recover the fault is lifted and this
	// asks "did the subsystem come back?"; without it the fault is still
	// installed and the check documents the stuck state.
	ok, detail := e.probe(w.Kind)
	stale, dropped := e.baselines()

	verdict := VerdictDegradedRecovered
	switch {
	case !w.Recover || !ok:
		verdict = VerdictFailedRecovery
	case w.Kind == SensorStale && stale > e.staleBase,
		w.Kind == StorageIO && dropped > e.dropBase:
		verdict = VerdictSilentDrop
	case (w.Kind == SensorStall || w.Kind == BinderTimeout) && a.failed > 0:
		verdict = VerdictStall
	}
	if !w.Recover {
		// The window modelled a fault that never heals on its own; now that
		// it is graded, re-arm the device so the campaign can continue.
		e.restore(w.Kind)
	}

	e.log.Log(1000, 1000, logcat.Info, logcat.TagFaultInject,
		"closing %s fault window [%d,%d]: post-restore probe %s", w.Kind, w.Start, w.End, detail)
	// The VERDICT line is the oracle hand-off: triage's collector parses it
	// synchronously (logcat sinks fire within Append) into a non-exception
	// failure record, the same pipeline crashes and ANRs ride.
	e.log.Log(1000, 1000, logcat.Info, logcat.TagFaultInject,
		"VERDICT verdict=%s fault=%s target=%s app=%s window=%d-%d probes=%d/%d",
		verdict, w.Kind, w.Kind.Target(), e.app, w.Start, w.End,
		a.failed, a.failed+a.ok)
	e.rec.RecordNow(telemetry.EventFault, w.Kind.Target(), "", "verdict:"+verdict)
	e.verdicts = append(e.verdicts, Verdict{
		Fault: w.Kind.String(), Verdict: verdict, Target: w.Kind.Target(),
		App: e.app, Start: w.Start, End: w.End, Failed: a.failed, OK: a.ok,
	})
	e.fresh = true
}

// baselines samples the silent-degradation counters (stale sensor reads,
// dropped storage records).
func (e *Engine) baselines() (stale, dropped uint64) {
	_, stale = e.dev.SensorService().FaultStats()
	return stale, e.dev.StorageDropped()
}

// install arms the fault.
func (e *Engine) install(k Kind) {
	switch k {
	case BinderDead, BinderTooLarge, BinderTimeout:
		e.dev.Binder().SetFault(func(name string) *javalang.Throwable {
			return binderThrowable(k, name)
		})
	case SensorStall:
		e.dev.SensorService().SetFaultMode(sensors.FaultStall)
	case SensorStale:
		e.dev.SensorService().SetFaultMode(sensors.FaultStale)
	case ServiceKill:
		e.dev.SensorService().Kill("SIGKILL")
	case StorageIO:
		e.dev.SetStorageFault(func() *javalang.Throwable {
			return javalang.New(javalang.ClassIO,
				"write failed: EIO (I/O error) on /data/system/dropbox")
		})
	}
}

// restore lifts the fault and heals the subsystem.
func (e *Engine) restore(k Kind) {
	switch k {
	case BinderDead, BinderTooLarge, BinderTimeout:
		e.dev.Binder().SetFault(nil)
	case SensorStall, SensorStale:
		e.dev.SensorService().SetFaultMode(sensors.FaultNone)
	case ServiceKill:
		if e.dev.SensorService().State() != sensors.ServiceRunning {
			e.dev.RestartSensorService()
		}
	case StorageIO:
		e.dev.SetStorageFault(nil)
	}
}

// binderThrowable fabricates the per-kind transaction failure.
func binderThrowable(k Kind, name string) *javalang.Throwable {
	switch k {
	case BinderTooLarge:
		return javalang.Newf(javalang.ClassTxTooLarge,
			"data parcel size 1052672 bytes exceeds binder buffer (endpoint %s)", name)
	case BinderTimeout:
		return javalang.Newf(javalang.ClassRemote,
			"binder transaction to %s timed out after 5000ms", name)
	default:
		return javalang.Newf(javalang.ClassDeadObject,
			"Transaction failed on small parcel; remote process %q probably died", name)
	}
}

// probe actively exercises the fault's target subsystem and reports health.
// detail is "ok" or the failing Throwable's simple class name.
func (e *Engine) probe(k Kind) (ok bool, detail string) {
	switch k.Target() {
	case "binder":
		e.ensureProbes()
		if _, thr := e.dev.Binder().Transact(probeEndpoint, 0, nil); thr != nil {
			return false, thr.Class.Simple()
		}
		return true, "ok"
	case "sensorservice":
		svc := e.dev.SensorService()
		_, thr := svc.Read(probeClient, sensors.HeartRate)
		if thr != nil && thr.Class == javalang.ClassIllegalState {
			// The service restarted (fault recovery or a device reboot) and
			// dropped the probe's registration; re-register and retry once.
			if rthr := svc.Register(probeClient, sensors.HeartRate); rthr != nil {
				return false, rthr.Class.Simple()
			}
			_, thr = svc.Read(probeClient, sensors.HeartRate)
		}
		if thr != nil {
			return false, thr.Class.Simple()
		}
		return true, "ok"
	default: // dropbox
		thr := e.dev.FileDropBox(wearos.DropBoxEntry{
			Time: e.dev.Clock().Now(), Tag: "faultinject_probe",
			Process: "faultinject", Detail: "storage probe",
		})
		if thr != nil {
			return false, thr.Class.Simple()
		}
		return true, "ok"
	}
}

// ensureProbes (re-)publishes the binder probe endpoint and the sensor
// probe registration. Both can vanish legitimately mid-campaign — a reboot
// restarts the sensor service, a service-kill window drops registrations —
// so every probe site re-arms lazily instead of assuming attach-time state.
func (e *Engine) ensureProbes() {
	if !e.dev.Binder().Lookup(probeEndpoint) {
		e.dev.Binder().Publish(probeEndpoint, probePID,
			func(code int, data any) (any, *javalang.Throwable) { return "pong", nil })
	}
	svc := e.dev.SensorService()
	if svc.State() == sensors.ServiceRunning && svc.Listeners(probeClient) == 0 &&
		svc.FaultMode() == sensors.FaultNone {
		_ = svc.Register(probeClient, sensors.HeartRate)
	}
}
