package farm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/farm"
)

// The benchmark pair quantifies the farm's reason to exist: the same
// campaign, serial versus eight workers. Triage is disabled so the numbers
// measure shard execution and merge, not minimization.
var benchPackages = []string{
	"com.heartwatch.wear", "com.strava.wear", "com.whatsapp.wear",
	"com.endomondo.wear", "com.evernote.wear", "com.accuweather.wear",
	"com.citymapper.wear", "com.duolingo.wear",
}

func runBench(b *testing.B, workers int, freshBoot bool) {
	b.Helper()
	cfg := farm.Config{
		Seed:          1,
		Packages:      benchPackages,
		Gen:           experiments.QuickGen(4),
		Sharding:      core.Sharding{Workers: workers, DisableSnapshot: freshBoot},
		DisableTriage: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := farm.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sent == 0 {
			b.Fatal("benchmark campaign sent nothing")
		}
		b.ReportMetric(float64(res.Sent), "intents/op")
	}
}

func BenchmarkCampaign_Serial(b *testing.B) { runBench(b, 1, false) }

func BenchmarkCampaign_Farm8(b *testing.B) { runBench(b, 8, false) }

// The snapshot acceptance pair: identical run, snapshot clones versus a
// fresh boot + fleet rebuild per shard. scripts/benchgate enforces the ≥2x
// speedup floor on this ratio.
func BenchmarkFarm8Snapshot(b *testing.B) { runBench(b, 8, false) }

func BenchmarkFarm8FreshBoot(b *testing.B) { runBench(b, 8, true) }
