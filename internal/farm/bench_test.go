package farm_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/farm"
)

// The benchmark pair quantifies the farm's reason to exist: the same
// campaign, serial versus eight workers. Triage is disabled so the numbers
// measure shard execution and merge, not minimization.
var benchPackages = []string{
	"com.heartwatch.wear", "com.strava.wear", "com.whatsapp.wear",
	"com.endomondo.wear", "com.evernote.wear", "com.accuweather.wear",
	"com.citymapper.wear", "com.duolingo.wear",
}

func runBench(b *testing.B, sharding core.Sharding) {
	b.Helper()
	cfg := farm.Config{
		Seed:          1,
		Packages:      benchPackages,
		Gen:           experiments.QuickGen(4),
		Sharding:      sharding,
		DisableTriage: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := farm.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sent == 0 {
			b.Fatal("benchmark campaign sent nothing")
		}
		b.ReportMetric(float64(res.Sent), "intents/op")
	}
}

func BenchmarkCampaign_Serial(b *testing.B) { runBench(b, core.Sharding{Workers: 1}) }

func BenchmarkCampaign_Farm8(b *testing.B) { runBench(b, core.Sharding{Workers: 8}) }

// The boot-strategy acceptance triple: the identical run executed three
// ways. Persist (the default) keeps one hot device per worker and resets it
// in place between shards; Snapshot clones a device per shard; FreshBoot
// boots and rebuilds the fleet per shard. scripts/benchgate enforces the
// ≥2x snapshot-over-fresh and ≥3x persist-over-snapshot speedup floors on
// these ratios.
func BenchmarkFarm8Persist(b *testing.B) { runBench(b, core.Sharding{Workers: 8}) }

func BenchmarkFarm8Snapshot(b *testing.B) {
	runBench(b, core.Sharding{Workers: 8, DisablePersist: true})
}

func BenchmarkFarm8FreshBoot(b *testing.B) {
	runBench(b, core.Sharding{Workers: 8, DisableSnapshot: true})
}
