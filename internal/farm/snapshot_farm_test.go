package farm_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/telemetry"
)

// TestSnapshotMatchesFreshBootMerge is the tentpole's acceptance gate: the
// snapshot-clone path must produce a byte-identical merged study for any
// worker count, compared against the fresh-boot path. The fresh-boot serial
// run is the reference; every other (mode, workers) combination must match.
func TestSnapshotMatchesFreshBootMerge(t *testing.T) {
	want := exportForCompare(t, runStudy(t, core.Sharding{Workers: 1, DisableSnapshot: true}))
	for _, tc := range []struct {
		name     string
		sharding core.Sharding
	}{
		// The zero Sharding value runs persistent mode (snapshot clones plus
		// hot-device reuse), so the workers=N rows also prove the persistent
		// executor's reuse path merges byte-identically.
		{"persist/workers=1", core.Sharding{Workers: 1}},
		{"persist/workers=4", core.Sharding{Workers: 4}},
		{"persist/workers=8", core.Sharding{Workers: 8}},
		{"clone-per-shard/workers=1", core.Sharding{Workers: 1, DisablePersist: true}},
		{"clone-per-shard/workers=8", core.Sharding{Workers: 8, DisablePersist: true}},
		{"freshboot/workers=4", core.Sharding{Workers: 4, DisableSnapshot: true}},
	} {
		if got := exportForCompare(t, runStudy(t, tc.sharding)); got != want {
			t.Errorf("%s export differs from fresh-boot serial run:\n--- fresh serial ---\n%s\n--- %s ---\n%s",
				tc.name, want, tc.name, got)
		}
	}
}

// TestCheckpointCrossSnapshotModes pins that DisableSnapshot stays out of
// the checkpoint fingerprint: a journal written by a fresh-boot run resumes
// cleanly under the snapshot path (and vice versa) with identical output.
func TestCheckpointCrossSnapshotModes(t *testing.T) {
	dir := t.TempDir()
	offJournal := filepath.Join(dir, "off.ckpt")
	killed := filepath.Join(dir, "killed.ckpt")

	uninterrupted := runStudy(t, core.Sharding{Workers: 2, Checkpoint: offJournal, DisableSnapshot: true})
	want := exportForCompare(t, uninterrupted)

	// Tear the fresh-boot journal after three shards (header + 3 records +
	// a torn partial line), then resume it with snapshots enabled.
	data, err := os.ReadFile(offJournal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	const keep = 3
	if len(lines) < keep+2 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	torn := strings.Join(lines[:1+keep], "\n") + "\n" + `{"index":5,"key":{"camp`
	if err := os.WriteFile(killed, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	killedNoPersist := filepath.Join(dir, "killed-no-persist.ckpt")
	if err := os.WriteFile(killedNoPersist, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true})
	if got := exportForCompare(t, resumed); got != want {
		t.Errorf("snapshot-mode resume of a fresh-boot journal differs:\n--- fresh-boot full ---\n%s\n--- resumed ---\n%s", want, got)
	}
	if resumed.Sharding.Resumed != keep {
		t.Fatalf("resumed = %d shards, want %d", resumed.Sharding.Resumed, keep)
	}

	// DisablePersist likewise stays out of the fingerprint: the same torn
	// fresh-boot journal resumes under clone-per-shard mode with identical
	// output (the resume above already exercised persistent mode).
	resumedNoPersist := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killedNoPersist, Resume: true, DisablePersist: true})
	if got := exportForCompare(t, resumedNoPersist); got != want {
		t.Error("clone-per-shard resume of a fresh-boot journal differs")
	}
	if resumedNoPersist.Sharding.Resumed != keep {
		t.Fatalf("no-persist resumed = %d shards, want %d", resumedNoPersist.Sharding.Resumed, keep)
	}

	// The opposite direction: the journal completed under snapshots replays
	// fully under fresh boots.
	replayed := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true, DisableSnapshot: true})
	if got := exportForCompare(t, replayed); got != want {
		t.Error("fresh-boot replay of a snapshot-completed journal differs")
	}
	if replayed.Sharding.Resumed != replayed.Sharding.Shards {
		t.Fatalf("replay resumed %d of %d shards", replayed.Sharding.Resumed, replayed.Sharding.Shards)
	}
}

// TestSnapshotTelemetry verifies the farm boot metrics across the three
// execution modes. Persistent mode: every shard records one cache outcome
// and one queue wait, and comes up either by hot-device reuse (one reset
// latency) or by a fallback clone (one clone latency) — the two must
// account for every shard. Clone-per-shard mode (persist off): one clone
// latency per shard and no persist outcomes. Fresh-boot mode: none of the
// above. The boot cache is process-global (earlier tests may have warmed
// it), so the hit/miss split is not asserted — only the total.
func TestSnapshotTelemetry(t *testing.T) {
	run := func(sharding core.Sharding) telemetry.Snapshot {
		sharding.Workers = 4
		reg := telemetry.NewRegistry()
		res, err := farm.Run(farm.Config{
			Seed:      1,
			Packages:  testPackages,
			Gen:       testGen(),
			Sharding:  sharding,
			Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Shards != 4*len(testPackages) {
			t.Fatalf("shards = %d, want %d", res.Shards, 4*len(testPackages))
		}
		return reg.Snapshot()
	}
	shards := uint64(4 * len(testPackages))

	snap := run(core.Sharding{})
	hits := snap.Counters["farm_snapshot_hits_total"]
	misses := snap.Counters["farm_snapshot_misses_total"]
	if hits+misses != shards {
		t.Fatalf("snapshot hits(%d)+misses(%d) = %d, want %d (one outcome per shard)",
			hits, misses, hits+misses, shards)
	}
	reuses := snap.Counters["farm_persist_reuses_total"]
	retires := snap.Counters["farm_persist_retires_total"]
	fallbacks := snap.Counters["farm_persist_fallbacks_total"]
	if reuses+fallbacks != shards {
		t.Fatalf("persist reuses(%d)+fallbacks(%d) = %d, want %d (every shard reuses or clones)",
			reuses, fallbacks, reuses+fallbacks, shards)
	}
	if reuses == 0 {
		t.Fatal("persistent run recorded zero hot-device reuses")
	}
	if got := snap.Histograms["farm_clone_seconds"].Count; got != fallbacks {
		t.Fatalf("farm_clone_seconds count = %d, want %d (one per fallback clone)", got, fallbacks)
	}
	if got := snap.Histograms["farm_reset_seconds"].Count; got != reuses+retires {
		t.Fatalf("farm_reset_seconds count = %d, want %d (one per reset attempt)", got, reuses+retires)
	}
	if got := snap.Histograms["farm_shard_queue_wait_seconds"].Count; got != shards {
		t.Fatalf("farm_shard_queue_wait_seconds count = %d, want %d", got, shards)
	}

	noPersist := run(core.Sharding{DisablePersist: true})
	if got := noPersist.Histograms["farm_clone_seconds"].Count; got != shards {
		t.Fatalf("farm_clone_seconds count = %d, want %d", got, shards)
	}
	if n := noPersist.Counters["farm_persist_reuses_total"] +
		noPersist.Counters["farm_persist_retires_total"] +
		noPersist.Counters["farm_persist_fallbacks_total"]; n != 0 {
		t.Fatalf("persist-off run recorded %d persist outcomes", n)
	}

	off := run(core.Sharding{DisableSnapshot: true})
	if n := off.Counters["farm_snapshot_hits_total"] + off.Counters["farm_snapshot_misses_total"]; n != 0 {
		t.Fatalf("fresh-boot run recorded %d snapshot cache outcomes", n)
	}
	if got := off.Histograms["farm_clone_seconds"].Count; got != 0 {
		t.Fatalf("fresh-boot run recorded %d clone latencies", got)
	}
	if n := off.Counters["farm_persist_reuses_total"] + off.Counters["farm_persist_fallbacks_total"]; n != 0 {
		t.Fatalf("fresh-boot run recorded %d persist outcomes", n)
	}
}

// TestRebootManifestsOnClonedShard is the BootCount regression test for the
// FIC reboot-manifestation path: the full-scale campaign A run against
// com.motorola.omni drives the paper's sensor-service escalation to a
// device reboot. A cloned shard device must report the same reboot and the
// same BootCount (template boot + its own reboot) as a fresh boot.
func TestRebootManifestsOnClonedShard(t *testing.T) {
	run := func(disable bool) *farm.Result {
		res, err := farm.Run(farm.Config{
			Seed:      1,
			Packages:  []string{"com.motorola.omni"},
			Campaigns: []core.Campaign{core.CampaignA},
			// Zero Gen = full paper scale; the reboot needs the full action
			// matrix to accumulate three sensor-listener ANRs.
			Gen:      core.GeneratorConfig{},
			Sharding: core.Sharding{Workers: 1, DisableSnapshot: disable},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	snapRes, freshRes := run(false), run(true)
	for name, res := range map[string]*farm.Result{"snapshot": snapRes, "fresh-boot": freshRes} {
		cr := res.Campaigns[0]
		if len(cr.Report.RebootTimes) != 1 {
			t.Fatalf("%s: reboots = %d, want 1 (sensor-service escalation)", name, len(cr.Report.RebootTimes))
		}
		sum := cr.Summaries[0]
		if sum.Reboots != 1 {
			t.Fatalf("%s: summary reboots = %d, want 1", name, sum.Reboots)
		}
		if sum.BootCount != 2 {
			t.Fatalf("%s: shard BootCount = %d, want 2 (template boot + campaign reboot)", name, sum.BootCount)
		}
	}
	if !reflect.DeepEqual(snapRes.Campaigns[0].Summaries, freshRes.Campaigns[0].Summaries) {
		t.Errorf("shard summaries diverge:\nsnapshot:   %+v\nfresh-boot: %+v",
			snapRes.Campaigns[0].Summaries, freshRes.Campaigns[0].Summaries)
	}
	snapJSON, _ := json.Marshal(snapRes.Campaigns[0].Report)
	freshJSON, _ := json.Marshal(freshRes.Campaigns[0].Report)
	if string(snapJSON) != string(freshJSON) {
		t.Errorf("campaign reports diverge:\nsnapshot:   %s\nfresh-boot: %s", snapJSON, freshJSON)
	}
}
