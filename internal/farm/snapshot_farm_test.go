package farm_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/telemetry"
)

// TestSnapshotMatchesFreshBootMerge is the tentpole's acceptance gate: the
// snapshot-clone path must produce a byte-identical merged study for any
// worker count, compared against the fresh-boot path. The fresh-boot serial
// run is the reference; every other (mode, workers) combination must match.
func TestSnapshotMatchesFreshBootMerge(t *testing.T) {
	want := exportForCompare(t, runStudy(t, core.Sharding{Workers: 1, DisableSnapshot: true}))
	for _, tc := range []struct {
		name     string
		sharding core.Sharding
	}{
		{"snapshot/workers=1", core.Sharding{Workers: 1}},
		{"snapshot/workers=4", core.Sharding{Workers: 4}},
		{"snapshot/workers=8", core.Sharding{Workers: 8}},
		{"freshboot/workers=4", core.Sharding{Workers: 4, DisableSnapshot: true}},
	} {
		if got := exportForCompare(t, runStudy(t, tc.sharding)); got != want {
			t.Errorf("%s export differs from fresh-boot serial run:\n--- fresh serial ---\n%s\n--- %s ---\n%s",
				tc.name, want, tc.name, got)
		}
	}
}

// TestCheckpointCrossSnapshotModes pins that DisableSnapshot stays out of
// the checkpoint fingerprint: a journal written by a fresh-boot run resumes
// cleanly under the snapshot path (and vice versa) with identical output.
func TestCheckpointCrossSnapshotModes(t *testing.T) {
	dir := t.TempDir()
	offJournal := filepath.Join(dir, "off.ckpt")
	killed := filepath.Join(dir, "killed.ckpt")

	uninterrupted := runStudy(t, core.Sharding{Workers: 2, Checkpoint: offJournal, DisableSnapshot: true})
	want := exportForCompare(t, uninterrupted)

	// Tear the fresh-boot journal after three shards (header + 3 records +
	// a torn partial line), then resume it with snapshots enabled.
	data, err := os.ReadFile(offJournal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	const keep = 3
	if len(lines) < keep+2 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	torn := strings.Join(lines[:1+keep], "\n") + "\n" + `{"index":5,"key":{"camp`
	if err := os.WriteFile(killed, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true})
	if got := exportForCompare(t, resumed); got != want {
		t.Errorf("snapshot-mode resume of a fresh-boot journal differs:\n--- fresh-boot full ---\n%s\n--- resumed ---\n%s", want, got)
	}
	if resumed.Sharding.Resumed != keep {
		t.Fatalf("resumed = %d shards, want %d", resumed.Sharding.Resumed, keep)
	}

	// The opposite direction: the journal completed under snapshots replays
	// fully under fresh boots.
	replayed := runStudy(t, core.Sharding{Workers: 2, Checkpoint: killed, Resume: true, DisableSnapshot: true})
	if got := exportForCompare(t, replayed); got != want {
		t.Error("fresh-boot replay of a snapshot-completed journal differs")
	}
	if replayed.Sharding.Resumed != replayed.Sharding.Shards {
		t.Fatalf("replay resumed %d of %d shards", replayed.Sharding.Resumed, replayed.Sharding.Shards)
	}
}

// TestSnapshotTelemetry verifies the new farm metrics: every shard records
// exactly one cache outcome, one clone latency, and one queue wait when
// snapshots are on, and none of those when they are off. The boot cache is
// process-global (earlier tests may have warmed it), so the hit/miss split
// is not asserted — only the total.
func TestSnapshotTelemetry(t *testing.T) {
	run := func(disable bool) telemetry.Snapshot {
		reg := telemetry.NewRegistry()
		res, err := farm.Run(farm.Config{
			Seed:      1,
			Packages:  testPackages,
			Gen:       testGen(),
			Sharding:  core.Sharding{Workers: 4, DisableSnapshot: disable},
			Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Shards != 4*len(testPackages) {
			t.Fatalf("shards = %d, want %d", res.Shards, 4*len(testPackages))
		}
		return reg.Snapshot()
	}

	snap := run(false)
	shards := uint64(4 * len(testPackages))
	hits := snap.Counters["farm_snapshot_hits_total"]
	misses := snap.Counters["farm_snapshot_misses_total"]
	if hits+misses != shards {
		t.Fatalf("snapshot hits(%d)+misses(%d) = %d, want %d (one outcome per shard)",
			hits, misses, hits+misses, shards)
	}
	if got := snap.Histograms["farm_clone_seconds"].Count; got != shards {
		t.Fatalf("farm_clone_seconds count = %d, want %d", got, shards)
	}
	if got := snap.Histograms["farm_shard_queue_wait_seconds"].Count; got != shards {
		t.Fatalf("farm_shard_queue_wait_seconds count = %d, want %d", got, shards)
	}

	off := run(true)
	if n := off.Counters["farm_snapshot_hits_total"] + off.Counters["farm_snapshot_misses_total"]; n != 0 {
		t.Fatalf("fresh-boot run recorded %d snapshot cache outcomes", n)
	}
	if got := off.Histograms["farm_clone_seconds"].Count; got != 0 {
		t.Fatalf("fresh-boot run recorded %d clone latencies", got)
	}
}

// TestRebootManifestsOnClonedShard is the BootCount regression test for the
// FIC reboot-manifestation path: the full-scale campaign A run against
// com.motorola.omni drives the paper's sensor-service escalation to a
// device reboot. A cloned shard device must report the same reboot and the
// same BootCount (template boot + its own reboot) as a fresh boot.
func TestRebootManifestsOnClonedShard(t *testing.T) {
	run := func(disable bool) *farm.Result {
		res, err := farm.Run(farm.Config{
			Seed:      1,
			Packages:  []string{"com.motorola.omni"},
			Campaigns: []core.Campaign{core.CampaignA},
			// Zero Gen = full paper scale; the reboot needs the full action
			// matrix to accumulate three sensor-listener ANRs.
			Gen:      core.GeneratorConfig{},
			Sharding: core.Sharding{Workers: 1, DisableSnapshot: disable},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	snapRes, freshRes := run(false), run(true)
	for name, res := range map[string]*farm.Result{"snapshot": snapRes, "fresh-boot": freshRes} {
		cr := res.Campaigns[0]
		if len(cr.Report.RebootTimes) != 1 {
			t.Fatalf("%s: reboots = %d, want 1 (sensor-service escalation)", name, len(cr.Report.RebootTimes))
		}
		sum := cr.Summaries[0]
		if sum.Reboots != 1 {
			t.Fatalf("%s: summary reboots = %d, want 1", name, sum.Reboots)
		}
		if sum.BootCount != 2 {
			t.Fatalf("%s: shard BootCount = %d, want 2 (template boot + campaign reboot)", name, sum.BootCount)
		}
	}
	if !reflect.DeepEqual(snapRes.Campaigns[0].Summaries, freshRes.Campaigns[0].Summaries) {
		t.Errorf("shard summaries diverge:\nsnapshot:   %+v\nfresh-boot: %+v",
			snapRes.Campaigns[0].Summaries, freshRes.Campaigns[0].Summaries)
	}
	snapJSON, _ := json.Marshal(snapRes.Campaigns[0].Report)
	freshJSON, _ := json.Marshal(freshRes.Campaigns[0].Report)
	if string(snapJSON) != string(freshJSON) {
		t.Errorf("campaign reports diverge:\nsnapshot:   %s\nfresh-boot: %s", snapJSON, freshJSON)
	}
}
