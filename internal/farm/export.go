package farm

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/intent"
	"repro/internal/javalang"
	"repro/internal/telemetry"
	"repro/internal/triage"
)

// Checkpoint wire forms. The journal must round-trip everything a completed
// shard contributes to the final merge — the analysis report, the QGJ
// summary, and the triage crash records — so a resumed run never re-executes
// finished work. analysis.Report is not directly JSON-serializable (its
// component map is keyed by a struct), so the farm flattens it here. Field
// names are part of the checkpoint format contract (docs/farm.md).

// reportJSON is the flattened analysis.Report.
type reportJSON struct {
	Components        []componentJSON `json:"components"`
	RebootTimes       []time.Time     `json:"rebootTimes,omitempty"`
	CoreServiceDeaths []string        `json:"coreServiceDeaths,omitempty"`
	CrashEvents       int             `json:"crashEvents"`
	ANREvents         int             `json:"anrEvents"`
	SecurityEvents    int             `json:"securityEvents"`
	Entries           int             `json:"entries"`
}

// componentJSON is one flattened analysis.ComponentReport.
type componentJSON struct {
	Package        string                 `json:"package"`
	Class          string                 `json:"class"`
	Type           string                 `json:"type,omitempty"`
	Deliveries     int                    `json:"deliveries"`
	Security       int                    `json:"security,omitempty"`
	ANRs           int                    `json:"anrs,omitempty"`
	RebootInvolved bool                   `json:"rebootInvolved,omitempty"`
	Rejected       map[javalang.Class]int `json:"rejected,omitempty"`
	Caught         map[javalang.Class]int `json:"caught,omitempty"`
	CrashRoots     map[javalang.Class]int `json:"crashRoots,omitempty"`
	ANRClasses     map[javalang.Class]int `json:"anrClasses,omitempty"`
}

// exportReport flattens r with components in deterministic order.
func exportReport(r *analysis.Report) reportJSON {
	out := reportJSON{
		RebootTimes:       r.RebootTimes,
		CoreServiceDeaths: r.CoreServiceDeaths,
		CrashEvents:       r.CrashEvents,
		ANREvents:         r.ANREvents,
		SecurityEvents:    r.SecurityEvents,
		Entries:           r.Entries,
	}
	for _, cn := range r.ComponentNames() {
		cr := r.Components[cn]
		out.Components = append(out.Components, componentJSON{
			Package:        cn.Package,
			Class:          cn.Class,
			Type:           cr.Type,
			Deliveries:     cr.Deliveries,
			Security:       cr.Security,
			ANRs:           cr.ANRs,
			RebootInvolved: cr.RebootInvolved,
			Rejected:       dropEmpty(cr.Rejected),
			Caught:         dropEmpty(cr.Caught),
			CrashRoots:     dropEmpty(cr.CrashRoots),
			ANRClasses:     dropEmpty(cr.ANRClasses),
		})
	}
	return out
}

func dropEmpty(m map[javalang.Class]int) map[javalang.Class]int {
	if len(m) == 0 {
		return nil
	}
	return m
}

// restore rebuilds the analysis.Report.
func (rj reportJSON) restore() *analysis.Report {
	r := analysis.AnalyzeEntries(nil)
	r.RebootTimes = rj.RebootTimes
	r.CoreServiceDeaths = rj.CoreServiceDeaths
	r.CrashEvents = rj.CrashEvents
	r.ANREvents = rj.ANREvents
	r.SecurityEvents = rj.SecurityEvents
	r.Entries = rj.Entries
	for _, cj := range rj.Components {
		cn := intent.ComponentName{Package: cj.Package, Class: cj.Class}
		cr := &analysis.ComponentReport{
			Component:      cn,
			Type:           cj.Type,
			Deliveries:     cj.Deliveries,
			Security:       cj.Security,
			ANRs:           cj.ANRs,
			RebootInvolved: cj.RebootInvolved,
			Rejected:       orEmpty(cj.Rejected),
			Caught:         orEmpty(cj.Caught),
			CrashRoots:     orEmpty(cj.CrashRoots),
			ANRClasses:     orEmpty(cj.ANRClasses),
		}
		r.Components[cn] = cr
	}
	return r
}

func orEmpty(m map[javalang.Class]int) map[javalang.Class]int {
	if m == nil {
		return make(map[javalang.Class]int)
	}
	return m
}

// intentJSON is the serialized reproducer intent. Bundles keep insertion
// order, so extras serialize as an ordered list.
type intentJSON struct {
	Action     string               `json:"action,omitempty"`
	Data       intent.URI           `json:"data"`
	Categories []string             `json:"categories,omitempty"`
	Type       string               `json:"type,omitempty"`
	Component  intent.ComponentName `json:"component"`
	Flags      uint32               `json:"flags,omitempty"`
	Extras     []extraJSON          `json:"extras,omitempty"`
}

// extraJSON is one ordered bundle entry.
type extraJSON struct {
	Key   string       `json:"key"`
	Value intent.Value `json:"value"`
}

func exportIntent(in *intent.Intent) *intentJSON {
	if in == nil {
		return nil
	}
	out := &intentJSON{
		Action:     in.Action,
		Data:       in.Data,
		Categories: in.Categories,
		Type:       in.Type,
		Component:  in.Component,
		Flags:      in.Flags,
	}
	for _, k := range in.Extras.Keys() {
		v, _ := in.Extras.Get(k)
		out.Extras = append(out.Extras, extraJSON{Key: k, Value: v})
	}
	return out
}

func (ij *intentJSON) restore() *intent.Intent {
	if ij == nil {
		return nil
	}
	in := &intent.Intent{
		Action:     ij.Action,
		Data:       ij.Data,
		Categories: ij.Categories,
		Type:       ij.Type,
		Component:  ij.Component,
		Flags:      ij.Flags,
	}
	for _, e := range ij.Extras {
		in.PutExtra(e.Key, e.Value)
	}
	return in
}

// crashJSON is one serialized triage record (crash or ANR), including the
// flight-recorder window captured at the failure. telemetry.Event already
// round-trips byte-identically through JSON, so the window serializes
// as-is; Kind is omitted for plain crashes (the zero value) to keep v1-era
// records readable in spirit, though the journal version still gates them.
type crashJSON struct {
	Kind      string            `json:"kind,omitempty"`
	Process   string            `json:"process,omitempty"`
	Component string            `json:"component,omitempty"`
	Classes   []string          `json:"classes,omitempty"`
	Frames    []string          `json:"frames,omitempty"`
	Fault     string            `json:"fault,omitempty"`
	Intent    *intentJSON       `json:"intent,omitempty"`
	Trace     string            `json:"trace,omitempty"`
	Flight    []telemetry.Event `json:"flight,omitempty"`
}

func exportCrashes(crashes []*triage.Crash) []crashJSON {
	out := make([]crashJSON, 0, len(crashes))
	for _, c := range crashes {
		out = append(out, crashJSON{
			Kind:      c.Kind,
			Process:   c.Process,
			Component: c.Component,
			Classes:   c.Classes,
			Frames:    c.Frames,
			Fault:     c.Fault,
			Intent:    exportIntent(c.Intent),
			Trace:     c.Trace,
			Flight:    c.Flight,
		})
	}
	return out
}

func restoreCrashes(cjs []crashJSON) []*triage.Crash {
	out := make([]*triage.Crash, 0, len(cjs))
	for _, cj := range cjs {
		out = append(out, &triage.Crash{
			Kind:      cj.Kind,
			Process:   cj.Process,
			Component: cj.Component,
			Classes:   cj.Classes,
			Frames:    cj.Frames,
			Fault:     cj.Fault,
			Intent:    cj.Intent.restore(),
			Trace:     cj.Trace,
			Flight:    cj.Flight,
		})
	}
	return out
}
