// Live shard status: a StatusBoard mirrors the farm scheduler's view of
// every shard (pending, running, done, resumed, failed) so operators can
// watch a long sweep from the /farm HTTP endpoint while it runs. The board
// is presentation-only — the farm updates it with fire-and-forget marks and
// never reads it back, so it cannot perturb the determinism contract.
package farm

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Shard states as reported on ShardStatus.State.
const (
	StatePending = "pending"
	StateRunning = "running"
	StateDone    = "done"
	StateResumed = "resumed"
	StateFailed  = "failed"
)

// ShardStatus is one row of the live shard table.
type ShardStatus struct {
	Key   ShardKey `json:"key"`
	State string   `json:"state"`
	// Source is the boot path ("reuse", "clone" or "fresh-boot"); empty until the
	// shard completes. Resumed shards report no source — they were never
	// booted in this process.
	Source string `json:"source,omitempty"`
	// QueueWait is how long the shard sat in the queue before a worker
	// picked it up, in seconds.
	QueueWait float64 `json:"queueWaitSeconds,omitempty"`
	// Seconds is the shard's execution time once done.
	Seconds float64 `json:"seconds,omitempty"`
	// Sent is the number of intents the shard injected.
	Sent int `json:"sent,omitempty"`
	// Throughput is Sent/Seconds for executed shards.
	Throughput float64 `json:"intentsPerSecond,omitempty"`
}

// StatusSnapshot is the aggregated view served by StatusHandler.
type StatusSnapshot struct {
	Workers int           `json:"workers"`
	Total   int           `json:"total"`
	Pending int           `json:"pending"`
	Running int           `json:"running"`
	Done    int           `json:"done"`
	Resumed int           `json:"resumed"`
	Failed  int           `json:"failed"`
	Shards  []ShardStatus `json:"shards"`
	// IntentsTotal counts intents injected by shards executed in this
	// process (resumed shards contribute too — their work is part of the
	// run's output even though another process performed it).
	IntentsTotal int `json:"intentsTotal"`
	// IntentsPerSecond is the run-level throughput: intents executed in
	// this process over elapsed wall-clock time.
	IntentsPerSecond float64 `json:"intentsPerSecond"`
	ElapsedSeconds   float64 `json:"elapsedSeconds"`
	// ETASeconds estimates time to drain the remaining shards: remaining
	// count × mean executed-shard seconds ÷ workers. Zero until at least
	// one shard has executed.
	ETASeconds float64 `json:"etaSeconds"`
}

// StatusBoard tracks per-shard progress for a single farm run. The zero
// value is unusable; create one with NewStatusBoard and pass it in
// Config.Status. All methods are safe for concurrent use and nil-safe, so
// the farm can mark unconditionally.
type StatusBoard struct {
	mu      sync.Mutex
	workers int
	start   time.Time
	shards  []ShardStatus
	// execSeconds/execCount average executed (non-resumed) shard duration
	// for the ETA estimate.
	execSeconds float64
	execCount   int
	intents     int
}

// NewStatusBoard returns an empty board; the farm populates it via
// Config.Status at Run time.
func NewStatusBoard() *StatusBoard { return &StatusBoard{} }

// reset initializes the board for a new plan. Run calls it before any
// shard starts, including on resume.
func (b *StatusBoard) reset(plan []ShardKey, workers int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.workers = workers
	b.start = time.Now()
	b.shards = make([]ShardStatus, len(plan))
	for i, k := range plan {
		b.shards[i] = ShardStatus{Key: k, State: StatePending}
	}
	b.execSeconds, b.execCount, b.intents = 0, 0, 0
}

// markResumed records a shard restored from the checkpoint journal.
func (b *StatusBoard) markResumed(idx, sent int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.shards) {
		return
	}
	b.shards[idx].State = StateResumed
	b.shards[idx].Sent = sent
	b.intents += sent
}

// markRunning records a worker picking the shard up after wait in queue.
func (b *StatusBoard) markRunning(idx int, wait time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.shards) {
		return
	}
	b.shards[idx].State = StateRunning
	b.shards[idx].QueueWait = wait.Seconds()
}

// markDone records a completed shard: intents sent, execution time, and
// which boot path produced its device.
func (b *StatusBoard) markDone(idx, sent int, dur time.Duration, source string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.shards) {
		return
	}
	s := &b.shards[idx]
	s.State = StateDone
	s.Sent = sent
	s.Seconds = dur.Seconds()
	s.Source = source
	if s.Seconds > 0 {
		s.Throughput = float64(sent) / s.Seconds
	}
	b.execSeconds += s.Seconds
	b.execCount++
	b.intents += sent
}

// markFailed records a shard whose worker returned an error.
func (b *StatusBoard) markFailed(idx int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.shards) {
		return
	}
	b.shards[idx].State = StateFailed
}

// markPending returns a shard to the queue — the service coordinator's
// lease-reclamation path (a worker died holding the shard; its work is
// discarded and the shard becomes grantable again).
func (b *StatusBoard) markPending(idx int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.shards) {
		return
	}
	b.shards[idx] = ShardStatus{Key: b.shards[idx].Key, State: StatePending}
}

// Exported mark surface. farm.Run drives a board itself; the service
// coordinator owns shard scheduling (leases instead of goroutines), so it
// needs the same marks as first-class API. All are nil-safe like the
// unexported forms.

// Track (re)initializes the board for a shard plan — the exported form of
// the reset farm.Run performs.
func (b *StatusBoard) Track(plan []ShardKey, workers int) { b.reset(plan, workers) }

// MarkPending returns a shard to the pending state (lease reclaimed).
func (b *StatusBoard) MarkPending(idx int) { b.markPending(idx) }

// MarkRunning records the shard being picked up after wait in queue.
func (b *StatusBoard) MarkRunning(idx int, wait time.Duration) { b.markRunning(idx, wait) }

// MarkDone records a completed shard.
func (b *StatusBoard) MarkDone(idx, sent int, dur time.Duration, source string) {
	b.markDone(idx, sent, dur, source)
}

// MarkResumed records a shard restored from the durable journal.
func (b *StatusBoard) MarkResumed(idx, sent int) { b.markResumed(idx, sent) }

// MarkFailed records a shard whose execution errored.
func (b *StatusBoard) MarkFailed(idx int) { b.markFailed(idx) }

// Status returns an aggregated snapshot of the board. The Shards slice is
// a copy; callers may retain it.
func (b *StatusBoard) Status() StatusSnapshot {
	if b == nil {
		return StatusSnapshot{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := StatusSnapshot{
		Workers:      b.workers,
		Total:        len(b.shards),
		Shards:       append([]ShardStatus(nil), b.shards...),
		IntentsTotal: b.intents,
	}
	for _, s := range b.shards {
		switch s.State {
		case StatePending:
			snap.Pending++
		case StateRunning:
			snap.Running++
		case StateDone:
			snap.Done++
		case StateResumed:
			snap.Resumed++
		case StateFailed:
			snap.Failed++
		}
	}
	if !b.start.IsZero() {
		snap.ElapsedSeconds = time.Since(b.start).Seconds()
	}
	if snap.ElapsedSeconds > 0 {
		snap.IntentsPerSecond = float64(b.intents) / snap.ElapsedSeconds
	}
	if b.execCount > 0 {
		remaining := snap.Pending + snap.Running
		workers := b.workers
		if workers < 1 {
			workers = 1
		}
		mean := b.execSeconds / float64(b.execCount)
		snap.ETASeconds = float64(remaining) * mean / float64(workers)
	}
	return snap
}

// FilterCampaign narrows the snapshot to the shards of one campaign
// letter (case-insensitive). ok reports whether the plan contains that
// campaign at all; when it does, the aggregate tallies (total, state
// counts, intents, throughput, ETA) are recomputed over the filtered rows
// so the view reads as a self-consistent per-campaign table.
func (s StatusSnapshot) FilterCampaign(letter string) (StatusSnapshot, bool) {
	want := strings.ToUpper(strings.TrimSpace(letter))
	out := StatusSnapshot{Workers: s.Workers, ElapsedSeconds: s.ElapsedSeconds}
	var execSeconds float64
	execCount := 0
	for _, sh := range s.Shards {
		if sh.Key.Campaign.Letter() != want {
			continue
		}
		out.Shards = append(out.Shards, sh)
		out.Total++
		switch sh.State {
		case StatePending:
			out.Pending++
		case StateRunning:
			out.Running++
		case StateDone:
			out.Done++
			execSeconds += sh.Seconds
			execCount++
		case StateResumed:
			out.Resumed++
		case StateFailed:
			out.Failed++
		}
		out.IntentsTotal += sh.Sent
	}
	if out.Total == 0 {
		return out, false
	}
	if out.ElapsedSeconds > 0 {
		out.IntentsPerSecond = float64(out.IntentsTotal) / out.ElapsedSeconds
	}
	if execCount > 0 {
		workers := s.Workers
		if workers < 1 {
			workers = 1
		}
		mean := execSeconds / float64(execCount)
		out.ETASeconds = float64(out.Pending+out.Running) * mean / float64(workers)
	}
	return out, true
}

// StatusHandler serves the board as indented JSON — mount it on the
// telemetry server as the /farm route. A nil board serves the zero
// snapshot, so wiring can be unconditional. A ?campaign=<letter> query
// narrows the table to one campaign's shards; a letter the plan does not
// contain answers 404 with a JSON error body.
func StatusHandler(b *StatusBoard) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := b.Status()
		if letter := r.URL.Query().Get("campaign"); letter != "" {
			filtered, ok := snap.FilterCampaign(letter)
			if !ok {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{
					"error": fmt.Sprintf("unknown campaign %q: not in this run's shard plan", letter),
				})
				return
			}
			snap = filtered
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}
