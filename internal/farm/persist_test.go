package farm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/javalang"
)

// TestSnapshotCacheEvictsOneEntry is the cache-overflow regression test:
// hitting cacheLimit must evict a single resident entry, never drop the
// whole map. The old behaviour (nil the map on overflow) left exactly one
// entry after the overflowing insert; single-entry eviction keeps the map
// full.
func TestSnapshotCacheEvictsOneEntry(t *testing.T) {
	var c snapshotCache

	base := deviceConfig(apps.WearFleet)
	for i := 0; i < cacheLimit+3; i++ {
		cfg := base
		cfg.LogCapacity = 1000 + i
		if _, hit, err := c.deviceSnapshot(cfg); err != nil {
			t.Fatal(err)
		} else if hit {
			t.Fatalf("insert %d reported a hit", i)
		}
		if len(c.devs) > cacheLimit {
			t.Fatalf("device cache grew to %d entries (limit %d)", len(c.devs), cacheLimit)
		}
		if _, hit, err := c.deviceSnapshot(cfg); err != nil || !hit {
			t.Fatalf("entry %d not retained after its own insert (hit=%v err=%v)", i, hit, err)
		}
	}
	if len(c.devs) != cacheLimit {
		t.Fatalf("device cache has %d entries after overflow, want %d (single-entry eviction)",
			len(c.devs), cacheLimit)
	}

	for i := 0; i < cacheLimit+3; i++ {
		seed := uint64(1000 + i)
		if _, hit, err := c.fleetTemplate(apps.WearFleet, seed); err != nil {
			t.Fatal(err)
		} else if hit {
			t.Fatalf("insert %d reported a hit", i)
		}
		if len(c.fleets) > cacheLimit {
			t.Fatalf("fleet cache grew to %d entries (limit %d)", len(c.fleets), cacheLimit)
		}
		if _, hit, err := c.fleetTemplate(apps.WearFleet, seed); err != nil || !hit {
			t.Fatalf("entry %d not retained after its own insert (hit=%v err=%v)", i, hit, err)
		}
	}
	if len(c.fleets) != cacheLimit {
		t.Fatalf("fleet cache has %d entries after overflow, want %d (single-entry eviction)",
			len(c.fleets), cacheLimit)
	}
}

// TestUnitExecutorReusesHotDevice pins the persistent executor's lifecycle
// against a real boot sequence: clone on cold start, reuse (same device,
// same fleet) while the device stays clean, retire-and-fall-back after the
// device reboots, and recover to reuse on the shard after that.
func TestUnitExecutorReusesHotDevice(t *testing.T) {
	const pkg = "com.heartwatch.wear"
	cfg := Config{Seed: 1}
	ex := newUnitExecutor()

	fleet1, dev1, src1, err := ex.boot(cfg, apps.WearFleet, pkg, farmMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	if src1 != BootClone {
		t.Fatalf("cold-start source = %q, want %q", src1, BootClone)
	}

	fleet2, dev2, src2, err := ex.boot(cfg, apps.WearFleet, pkg, farmMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	if src2 != BootReuse {
		t.Fatalf("second boot source = %q, want %q", src2, BootReuse)
	}
	if dev2 != dev1 {
		t.Fatal("reuse produced a different device")
	}
	if fleet2 != fleet1 {
		t.Fatal("reuse re-instantiated the fleet instead of rewinding it")
	}

	// A rebooted device must never be reused.
	dev2.SystemServer().RecordCoreServiceDown("sensorservice", javalang.SIGABRT)
	if !dev2.SystemServer().MaybeReboot() {
		t.Fatal("core service death did not reboot the device")
	}
	_, dev3, src3, err := ex.boot(cfg, apps.WearFleet, pkg, farmMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	if src3 != BootClone {
		t.Fatalf("post-reboot source = %q, want %q (retire + fallback)", src3, BootClone)
	}
	if dev3 == dev2 {
		t.Fatal("rebooted device was reused")
	}
	if dev3.BootCount() != 1 {
		t.Fatalf("fallback clone BootCount = %d, want 1", dev3.BootCount())
	}

	// The fallback clone becomes the new hot device.
	_, dev4, src4, err := ex.boot(cfg, apps.WearFleet, pkg, farmMetrics{})
	if err != nil {
		t.Fatal(err)
	}
	if src4 != BootReuse || dev4 != dev3 {
		t.Fatalf("executor did not recover after retirement (source=%q)", src4)
	}

	// A nil executor and disabled modes take the plain clone path.
	var nilEx *unitExecutor
	if _, _, src, err := nilEx.boot(cfg, apps.WearFleet, pkg, farmMetrics{}); err != nil || src != BootClone {
		t.Fatalf("nil executor: source=%q err=%v, want %q", src, err, BootClone)
	}
	off := cfg
	off.Sharding.DisablePersist = true
	if _, _, src, err := ex.boot(off, apps.WearFleet, pkg, farmMetrics{}); err != nil || src != BootClone {
		t.Fatalf("persist off: source=%q err=%v, want %q", src, err, BootClone)
	}
}
