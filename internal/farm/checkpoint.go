package farm

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"sync"

	"repro/internal/core"
)

// The checkpoint journal mirrors the paper's reboot-resume scripts: the real
// study ran 1000-intent chunks and a watchdog script restarted the campaign
// from the last completed chunk after every device reboot. Here a chunk is
// one shard (campaign × package on a fresh device); the coordinator appends
// one fsynced JSON line per completed shard, so a SIGKILL at any instant
// loses at most the shard in flight, and -resume replays the journal instead
// of re-executing finished shards.
//
// Format (JSON lines):
//
//	line 1:  journalHeader — version, plan fingerprint, shard count
//	line 2+: journalRecord — one completed shard with its full merge inputs
//
// A truncated final line (the SIGKILL artifact) is detected and ignored on
// load. The header fingerprint covers everything that shapes the shard plan
// (seed, fleet, campaigns, targets, generator scaling), so a journal can
// never be resumed against a run it does not describe.

// journalVersion is bumped on any incompatible format change. v2 added
// flight-recorder windows (kind/component/trace/flight) to crash records.
const journalVersion = 2

// journalHeader is the first line of a checkpoint file.
type journalHeader struct {
	Version     int    `json:"v"`
	Fingerprint uint64 `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Seed        uint64 `json:"seed"`
	Fleet       string `json:"fleet"`
}

// journalRecord is one completed shard.
type journalRecord struct {
	Index     int          `json:"index"`
	Key       ShardKey     `json:"key"`
	Seed      uint64       `json:"seed"`
	Sent      int          `json:"sent"`
	BootCount int          `json:"bootCount"`
	Summary   core.Summary `json:"summary"`
	Report    reportJSON   `json:"report"`
	Crashes   []crashJSON  `json:"crashes,omitempty"`
}

// fingerprint hashes the run parameters that determine the shard plan and
// per-shard outcomes. Workers is deliberately excluded: the determinism
// contract makes results independent of worker count, so a journal written
// by -workers 8 resumes fine under -workers 1 and vice versa.
func fingerprint(seed uint64, fleet string, shards []ShardKey, gen core.GeneratorConfig) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|seed=%d|fleet=%s|gen=%d,%d,%d,%d|", journalVersion, seed, fleet,
		gen.ActionStride, gen.SchemeStride, gen.RandomVariants, gen.ExtrasVariants)
	for _, k := range shards {
		if k.Campaign == core.CampaignF {
			// Fault shards fold the fault-engine schedule version in: a
			// journal written under a different fault model must not resume.
			fmt.Fprintf(h, "fault=v1|")
			break
		}
	}
	for _, k := range shards {
		fmt.Fprintf(h, "%s;", k.String())
	}
	return h.Sum64()
}

// journal is the append-side of a checkpoint file. Safe for concurrent
// appends from worker goroutines.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// createJournal starts a fresh checkpoint file (truncating any previous
// content) and writes the header.
func createJournal(path string, h journalHeader) (*journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("farm: create checkpoint: %w", err)
	}
	j := &journal{f: f}
	if err := j.appendLine(h); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// openJournalAppend reopens an existing checkpoint for further records,
// first truncating it to validLen so a torn trailing record from the killed
// run cannot run into the next append.
func openJournalAppend(path string, validLen int64) (*journal, error) {
	if err := os.Truncate(path, validLen); err != nil {
		return nil, fmt.Errorf("farm: trim torn checkpoint tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: reopen checkpoint: %w", err)
	}
	return &journal{f: f}, nil
}

// appendLine marshals v, appends it as one line, and fsyncs so the record
// survives a SIGKILL (durability is the whole point of the journal).
func (j *journal) appendLine(v any) error {
	data, err := encodeJournalLine(v)
	if err != nil {
		return err
	}
	return j.appendRaw(data)
}

// appendRaw appends one pre-encoded record line (sans newline) and fsyncs.
func (j *journal) appendRaw(data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("farm: write checkpoint record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("farm: sync checkpoint: %w", err)
	}
	return nil
}

// encodeJournalLine renders one record in the journal's wire form.
func encodeJournalLine(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("farm: encode checkpoint record: %w", err)
	}
	return data, nil
}

// decodeJournalLine parses one journal-form record.
func decodeJournalLine(data []byte, v any) error {
	return json.Unmarshal(data, v)
}

func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// isNotExist reports whether err means the checkpoint file is absent (a
// -resume against a path that was never written starts a fresh run).
func isNotExist(err error) bool { return os.IsNotExist(err) }

// loadJournal reads a checkpoint file, tolerating a truncated tail: the
// first malformed or unterminated line ends the replay (everything after it
// was in flight when the run died). Records for the same shard index keep
// the last occurrence. validLen is the byte length of the durable prefix;
// the resume path truncates the file to it before appending, so a torn
// partial record never corrupts the next journal line.
func loadJournal(path string) (journalHeader, map[int]journalRecord, int64, error) {
	var hdr journalHeader
	data, err := os.ReadFile(path)
	if err != nil {
		return hdr, nil, 0, err
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return hdr, nil, 0, fmt.Errorf("farm: checkpoint %s is empty", path)
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		return hdr, nil, 0, fmt.Errorf("farm: checkpoint %s: bad header: %w", path, err)
	}
	if hdr.Version != journalVersion {
		return hdr, nil, 0, fmt.Errorf("farm: checkpoint %s: version %d, want %d", path, hdr.Version, journalVersion)
	}
	done := make(map[int]journalRecord)
	validLen := int64(len(lines[0]))
	for _, line := range lines[1:] {
		// appendLine writes record+newline in one call, so an unterminated
		// line is by definition a torn write — even if it happens to parse.
		if !strings.HasSuffix(line, "\n") {
			break
		}
		if strings.TrimSpace(line) == "" {
			validLen += int64(len(line))
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// Truncated tail: the run was killed mid-append. Everything up
			// to here is durable; the partial record is re-executed.
			break
		}
		done[rec.Index] = rec
		validLen += int64(len(line))
	}
	return hdr, done, validLen, nil
}
